// Package hw defines the hardware gold standard of the reproduction:
// the stand-in for the 16-processor FLASH machine of Table 1.
//
// Because no FLASH hardware exists to measure, the reference is the
// maximum-fidelity configuration of the same substrate the simulators
// under study share: the MXS out-of-order core with every R10000
// corner-case effect enabled (address interlocks, 65-cycle TLB refills,
// secondary-cache interface occupancy, coprocessor pipeline flushes),
// the FlashLite-class memory system with the as-built ("Verilog
// extracted") timing constants, an IRIX-like OS model with
// virtual-address page coloring, and a small seeded run-to-run jitter so
// that, as in the methodology, measurements are averaged over several
// runs. See DESIGN.md §1 for why this substitution preserves the
// study's claims.
package hw

import (
	"flashsim/internal/cpu/mxs"
	"flashsim/internal/machine"
	"flashsim/internal/memsys"
	"flashsim/internal/osmodel"
)

// TrueTLBHandlerCycles is the real R10000 TLB refill cost the paper
// measured: 65 cycles for the 14-instruction handler.
const TrueTLBHandlerCycles = 65

// Config returns the hardware reference machine with procs processors.
// scaled selects the 1/16-scale cache geometry used for laptop-scale
// runs (see machine.ScaledCaches).
func Config(procs int, scaled bool) machine.Config {
	cfg := machine.Base(procs, scaled)
	cfg.Name = "FLASH"
	cfg.CPU = machine.CPUMXS
	cfg.ClockMHz = 150
	cfg.OS = osmodel.DefaultSimOS()
	cfg.OS.TLBHandlerCycles = TrueTLBHandlerCycles
	cfg.Mem = machine.MemFlashLite
	cfg.FlashTiming = memsys.TrueTiming()
	ic, id := mxs.DefaultInterlocks()
	cfg.MXS = mxs.Fidelity{
		ModelAddressInterlocks: true,
		InterlockCycles:        ic,
		InterlockMaxDist:       id,
	}
	cfg.ModelL2InterfaceOccupancy = true
	cfg.JitterPct = 0.5
	cfg.Seed = 1
	return cfg
}
