package hw_test

import (
	"testing"

	"flashsim/internal/hw"
	"flashsim/internal/machine"
)

func TestConfigIsFullFidelity(t *testing.T) {
	cfg := hw.Config(16, true)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.CPU != machine.CPUMXS || cfg.ClockMHz != 150 {
		t.Fatal("hardware is a 150 MHz out-of-order core")
	}
	if cfg.OS.TLBHandlerCycles != hw.TrueTLBHandlerCycles {
		t.Fatalf("TLB handler %d, want %d", cfg.OS.TLBHandlerCycles, hw.TrueTLBHandlerCycles)
	}
	if !cfg.MXS.ModelAddressInterlocks {
		t.Fatal("hardware models address interlocks")
	}
	if cfg.MXS.BugFastIssue || cfg.MXS.BugCacheOpStall {
		t.Fatal("hardware has no simulator bugs")
	}
	if !cfg.ModelL2InterfaceOccupancy {
		t.Fatal("hardware's cache interface is occupied during transfers")
	}
	if cfg.JitterPct == 0 {
		t.Fatal("real hardware measurements jitter")
	}
	if cfg.Mem != machine.MemFlashLite {
		t.Fatal("hardware memory system is the detailed model")
	}
}

func TestFullScaleConfig(t *testing.T) {
	cfg := hw.Config(16, false)
	if cfg.L2.Size != 2<<20 || cfg.L1D.Size != 32<<10 {
		t.Fatalf("full-scale caches: L1=%d L2=%d", cfg.L1D.Size, cfg.L2.Size)
	}
}
