// Package network models the FLASH interconnect: a hypercube of
// point-to-point links with 50 ns per-hop latency (Table 1), e-cube
// (dimension-ordered) routing, and — when contention modeling is enabled
// — serialization of messages over each directed link and occupancy of
// each router.
//
// The NUMA memory-system model uses this package with contention
// disabled ("it does not model contention in the network or the
// routers"); FlashLite and the hardware reference enable it.
package network

import (
	"fmt"

	"flashsim/internal/sim"
)

// Config describes the interconnect.
type Config struct {
	// Nodes is the node count; must be a power of two for a hypercube.
	Nodes int
	// HopTicks is the per-hop wire+switch latency (50 ns = 45 ticks).
	HopTicks sim.Ticks
	// RouterTicks is the additional per-router pass-through occupancy.
	RouterTicks sim.Ticks
	// TicksPerKByte expresses link bandwidth as serialization time per
	// 1024 bytes (FLASH's links are roughly 800 MB/s: ~1150 ticks/KB).
	TicksPerKByte sim.Ticks
	// ModelContention selects whether links and routers are reserved
	// (true for FlashLite/hardware, false for the NUMA model).
	ModelContention bool
}

// DefaultConfig returns the FLASH interconnect parameters.
func DefaultConfig(nodes int) Config {
	return Config{
		Nodes:           nodes,
		HopTicks:        sim.NS(50),
		RouterTicks:     sim.NS(25),
		TicksPerKByte:   2560, // ~400 MB/s effective per link
		ModelContention: true,
	}
}

// Network is the interconnect instance.
type Network struct {
	cfg     Config
	dims    int
	links   map[[2]int]*sim.Server
	routers []sim.Server
	stats   NetStats
}

// NetStats counts network activity.
type NetStats struct {
	Messages uint64
	Bytes    uint64
	Hops     uint64
}

// New builds the interconnect. Node counts that are not powers of two
// are rounded up to the enclosing hypercube (FLASH configures partial
// cubes the same way).
func New(cfg Config) *Network {
	if cfg.Nodes <= 0 {
		panic("network: need at least one node")
	}
	dims := 0
	for 1<<dims < cfg.Nodes {
		dims++
	}
	n := &Network{
		cfg:     cfg,
		dims:    dims,
		links:   make(map[[2]int]*sim.Server),
		routers: make([]sim.Server, 1<<dims),
	}
	return n
}

// Config returns the interconnect configuration.
func (n *Network) Config() Config { return n.cfg }

// Stats returns accumulated traffic counters.
func (n *Network) Stats() NetStats { return n.stats }

// Lookahead returns the conservative lookahead horizon the interconnect
// guarantees: no message sent at time t can affect another node before
// t+Lookahead, because one hop costs at least HopTicks on the wire
// (50 ns = 45 ticks on FLASH). The windowed parallel engine derives its
// window width from this, so configuration changes keep it correct. A
// degenerate single-node network has no cross-node path; one hop is
// still the right floor (nothing crosses shards at all).
func (n *Network) Lookahead() sim.Ticks {
	la := n.cfg.HopTicks
	if la <= 0 {
		la = 1
	}
	return la
}

// Route returns the e-cube route from src to dst (excluding src,
// including dst).
func (n *Network) Route(src, dst int) []int {
	if src == dst {
		return nil
	}
	var hops []int
	cur := src
	diff := src ^ dst
	for d := 0; d < n.dims; d++ {
		bit := 1 << d
		if diff&bit != 0 {
			cur ^= bit
			hops = append(hops, cur)
		}
	}
	return hops
}

// Hops returns the hop count between src and dst (Hamming distance).
func (n *Network) Hops(src, dst int) int {
	h := 0
	for diff := src ^ dst; diff != 0; diff &= diff - 1 {
		h++
	}
	return h
}

func (n *Network) link(a, b int) *sim.Server {
	key := [2]int{a, b}
	l, ok := n.links[key]
	if !ok {
		l = &sim.Server{Name: fmt.Sprintf("link %d->%d", a, b)}
		n.links[key] = l
	}
	return l
}

// Send models transmitting size bytes from src to dst starting at time
// t. It returns the time the last byte arrives at dst. With contention
// modeling on, the message serializes over every directed link of its
// route and occupies each router; off, it experiences pure latency.
func (n *Network) Send(t sim.Ticks, src, dst int, size int) sim.Ticks {
	n.stats.Messages++
	n.stats.Bytes += uint64(size)
	if src == dst {
		return t
	}
	ser := sim.Ticks(uint64(size)*uint64(n.cfg.TicksPerKByte)/1024 + 1)
	now := t
	cur := src
	for _, next := range n.Route(src, dst) {
		n.stats.Hops++
		if n.cfg.ModelContention {
			_, done := n.link(cur, next).Acquire(now, ser)
			now = done + n.cfg.HopTicks
			_, now = n.routers[next].Acquire(now, n.cfg.RouterTicks)
		} else {
			now += ser + n.cfg.HopTicks + n.cfg.RouterTicks
		}
		cur = next
	}
	return now
}

// LatencyOnly returns the uncontended transit time for size bytes over
// the src→dst route (used by the NUMA model's fixed-latency paths).
func (n *Network) LatencyOnly(src, dst int, size int) sim.Ticks {
	h := sim.Ticks(n.Hops(src, dst))
	ser := sim.Ticks(uint64(size)*uint64(n.cfg.TicksPerKByte)/1024 + 1)
	return h*(n.cfg.HopTicks+n.cfg.RouterTicks) + ser*h
}

// Reset clears all reservation state and statistics.
func (n *Network) Reset() {
	for _, l := range n.links {
		l.Reset()
	}
	for i := range n.routers {
		n.routers[i].Reset()
	}
	n.stats = NetStats{}
}

// LinkStats returns per-link utilization, keyed "a->b".
func (n *Network) LinkStats() map[string]sim.Stats {
	out := make(map[string]sim.Stats, len(n.links))
	for k, l := range n.links {
		out[fmt.Sprintf("%d->%d", k[0], k[1])] = l.Stats()
	}
	return out
}
