package network

import (
	"testing"
	"testing/quick"

	"flashsim/internal/sim"
)

func TestHopsIsHammingDistance(t *testing.T) {
	n := New(DefaultConfig(16))
	cases := []struct{ a, b, want int }{
		{0, 0, 0}, {0, 1, 1}, {0, 3, 2}, {0, 15, 4}, {5, 10, 4}, {8, 12, 1},
	}
	for _, c := range cases {
		if got := n.Hops(c.a, c.b); got != c.want {
			t.Errorf("hops(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestRouteIsECube(t *testing.T) {
	n := New(DefaultConfig(16))
	route := n.Route(0, 11) // 11 = 1011b: dims 0, 1, 3
	want := []int{1, 3, 11}
	if len(route) != len(want) {
		t.Fatalf("route %v", route)
	}
	for i := range want {
		if route[i] != want[i] {
			t.Fatalf("route %v, want %v", route, want)
		}
	}
	if n.Route(5, 5) != nil {
		t.Fatal("self route should be empty")
	}
}

// TestRouteProperty: every hop flips exactly one bit and the route ends
// at the destination.
func TestRouteProperty(t *testing.T) {
	n := New(DefaultConfig(16))
	f := func(a, b uint8) bool {
		src, dst := int(a%16), int(b%16)
		route := n.Route(src, dst)
		cur := src
		for _, next := range route {
			diff := cur ^ next
			if diff == 0 || diff&(diff-1) != 0 {
				return false
			}
			cur = next
		}
		return cur == dst && len(route) == n.Hops(src, dst)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLatencyScalesWithHops(t *testing.T) {
	n := New(DefaultConfig(16))
	t1 := n.Send(0, 0, 1, 16)
	n2 := New(DefaultConfig(16))
	t2 := n2.Send(0, 0, 15, 16) // 4 hops
	if t2 <= t1 {
		t.Fatalf("4-hop (%d) should exceed 1-hop (%d)", t2, t1)
	}
}

func TestContentionSerializesLink(t *testing.T) {
	cfg := DefaultConfig(4)
	n := New(cfg)
	a1 := n.Send(0, 0, 1, 1024)
	a2 := n.Send(0, 0, 1, 1024) // same link, same instant
	if a2 <= a1 {
		t.Fatalf("second message not delayed: %d vs %d", a2, a1)
	}

	cfg.ModelContention = false
	m := New(cfg)
	b1 := m.Send(0, 0, 1, 1024)
	b2 := m.Send(0, 0, 1, 1024)
	if b1 != b2 {
		t.Fatalf("latency-only model must not contend: %d vs %d", b1, b2)
	}
}

func TestSelfSendIsFree(t *testing.T) {
	n := New(DefaultConfig(4))
	if got := n.Send(100, 2, 2, 1024); got != 100 {
		t.Fatalf("self send took %d", got-100)
	}
}

func TestStatsAccumulate(t *testing.T) {
	n := New(DefaultConfig(4))
	n.Send(0, 0, 3, 64)
	st := n.Stats()
	if st.Messages != 1 || st.Bytes != 64 || st.Hops != 2 {
		t.Fatalf("stats %+v", st)
	}
	if len(n.LinkStats()) == 0 {
		t.Fatal("no link stats")
	}
	n.Reset()
	if n.Stats().Messages != 0 {
		t.Fatal("reset")
	}
}

func TestNonPowerOfTwoRoundsUp(t *testing.T) {
	n := New(DefaultConfig(12)) // embeds in a 16-node cube
	if got := n.Hops(0, 11); got != 3 {
		t.Fatalf("hops in partial cube: %d", got)
	}
}

func TestLatencyOnly(t *testing.T) {
	n := New(DefaultConfig(16))
	lat := n.LatencyOnly(0, 3, 144)
	if lat == 0 {
		t.Fatal("zero latency")
	}
	if n.LatencyOnly(0, 15, 144) <= lat {
		t.Fatal("latency must grow with distance")
	}
}

func TestSerializationTimeGrowsWithSize(t *testing.T) {
	mk := func() *Network { return New(DefaultConfig(4)) }
	small := mk().Send(0, 0, 1, 16)
	big := mk().Send(0, 0, 1, 4096)
	if big <= small {
		t.Fatalf("serialization: %d vs %d", big, small)
	}
	_ = sim.Ticks(0)
}
