package param_test

import (
	"fmt"
	"reflect"
	"testing"

	"flashsim/internal/machine"
	"flashsim/internal/param"
)

// excludedFields lists every leaf field reachable from machine.Config
// that is deliberately NOT a registered parameter, with the reason. A
// new Config field that is neither registered nor listed here fails
// TestEveryConfigFieldIsRegisteredOrExcluded, so no knob can silently
// bypass the registry.
var excludedFields = map[string]string{
	"Name":           "display label, not a parameter; excluded from fingerprints on purpose",
	"L1D.Name":       "display label on the cache geometry",
	"L2.Name":        "display label on the cache geometry",
	"NUMA.Nodes":     "derived: machine.New forces it to Procs",
	"CheckCoherence": "verification flag: cannot change results, so it must not change fingerprints",
	"Shards":         "execution knob: parallel execution is bit-identical to serial, so it must not change fingerprints",
}

// leafFields walks a struct type and returns every leaf field path.
// Pointers are followed by type (nil-ness is a canonicalization concern
// the registry handles, not a structural one); arrays contribute one
// path per index.
func leafFields(t reflect.Type, prefix string, out *[]string) {
	switch t.Kind() {
	case reflect.Pointer:
		leafFields(t.Elem(), prefix, out)
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			p := f.Name
			if prefix != "" {
				p = prefix + "." + f.Name
			}
			leafFields(f.Type, p, out)
		}
	case reflect.Array:
		for i := 0; i < t.Len(); i++ {
			leafFields(t.Elem(), fmt.Sprintf("%s[%d]", prefix, i), out)
		}
	default:
		*out = append(*out, prefix)
	}
}

func TestEveryConfigFieldIsRegisteredOrExcluded(t *testing.T) {
	var leaves []string
	leafFields(reflect.TypeOf(machine.Config{}), "", &leaves)
	if len(leaves) < 30 {
		t.Fatalf("walk found only %d leaves; the reflection walk is broken", len(leaves))
	}

	registered := make(map[string]string) // Go field path -> registry path
	for _, p := range param.All() {
		if p.Field == "" {
			t.Errorf("param %s has no Field annotation", p.Path)
			continue
		}
		if prev, dup := registered[p.Field]; dup {
			t.Errorf("field %s is covered by both %s and %s", p.Field, prev, p.Path)
		}
		registered[p.Field] = p.Path
	}

	seen := make(map[string]bool)
	for _, leaf := range leaves {
		seen[leaf] = true
		_, isReg := registered[leaf]
		_, isExcl := excludedFields[leaf]
		switch {
		case isReg && isExcl:
			t.Errorf("field %s is both registered and excluded", leaf)
		case !isReg && !isExcl:
			t.Errorf("machine.Config field %s is neither registered in internal/param nor on the exclusion list — new knobs must go through the registry", leaf)
		}
	}
	// The reverse direction catches renames: a registration or
	// exclusion pointing at a field that no longer exists.
	for field, path := range registered {
		if !seen[field] {
			t.Errorf("param %s claims field %s, which does not exist in machine.Config", path, field)
		}
	}
	for field := range excludedFields {
		if !seen[field] {
			t.Errorf("exclusion list names field %s, which does not exist in machine.Config", field)
		}
	}
}

// TestDeficiencyTableKnobsResolve pins the DESIGN.md §3 deficiency
// table to registry paths: every knob the paper's error taxonomy names
// must resolve by dotted path.
func TestDeficiencyTableKnobsResolve(t *testing.T) {
	knobs := []string{
		"cpu.model_instr_latency",      // Mipsy: no instruction latencies
		"os.tlb.handler_cycles",        // TLB miss cost 25/35 vs real 65
		"l2.model_interface_occupancy", // no secondary-cache interface occupancy
		"l2.transfer_ns",               // ... and its fitted occupancy
		"mxs.model_address_interlocks", // MXS: no address interlocks
		"mxs.bug_fast_issue",           // MXS fast-issue pipeline bug
		"mxs.bug_cache_op_stall",       // MXS CACHE-instruction stall bug
		"os.kind",                      // Solo: no TLB / naive allocation
		"flash.bus_request_ns",         // untuned FlashLite timing
		"flash.router_ns",
		"flash.inbox_ns",
		"flash.outbox_ns",
		"flash.intervention_ns",
		"mem.kind", // NUMA: no occupancy/contention
	}
	cfg := machine.Base(4, true)
	for _, path := range knobs {
		if _, ok := param.Lookup(path); !ok {
			t.Errorf("deficiency-table knob %s is not registered", path)
			continue
		}
		if _, err := param.Get(&cfg, path); err != nil {
			t.Errorf("Get(%s): %v", path, err)
		}
	}
}
