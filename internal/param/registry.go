package param

import (
	"strconv"
	"strings"

	"flashsim/internal/machine"
	"flashsim/internal/magic"
	"flashsim/internal/memsys"
	"flashsim/internal/osmodel"
)

// defaultOS returns the OS model the reference configuration carries;
// registered so os.* defaults are the meaningful SimOS values rather
// than zeros.
func defaultOS() osmodel.Config { return osmodel.DefaultSimOS() }

// Typed registration helpers. Each takes a field selector returning a
// pointer into the config, so Get and Set share one accessor.

func boolParam(path, field, doc string, sel func(*machine.Config) *bool) {
	register(Param{
		Path: path, Kind: Bool, Doc: doc, Field: field,
		get: func(c *machine.Config) any { return *sel(c) },
		set: func(c *machine.Config, v any) { *sel(c) = v.(bool) },
	})
}

func intParam(path, field, unit, doc string, min, max float64, sel func(*machine.Config) *int) {
	register(Param{
		Path: path, Kind: Int, Unit: unit, Doc: doc, Min: min, Max: max, Field: field,
		get: func(c *machine.Config) any { return int64(*sel(c)) },
		set: func(c *machine.Config, v any) { *sel(c) = int(v.(int64)) },
	})
}

func u32Param(path, field, unit, doc string, min, max float64, sel func(*machine.Config) *uint32) {
	register(Param{
		Path: path, Kind: Uint, Unit: unit, Doc: doc, Min: min, Max: max, Field: field,
		get: func(c *machine.Config) any { return uint64(*sel(c)) },
		set: func(c *machine.Config, v any) { *sel(c) = uint32(v.(uint64)) },
	})
}

func u64Param(path, field, unit, doc string, min, max float64, sel func(*machine.Config) *uint64) {
	register(Param{
		Path: path, Kind: Uint, Unit: unit, Doc: doc, Min: min, Max: max, Field: field,
		get: func(c *machine.Config) any { return *sel(c) },
		set: func(c *machine.Config, v any) { *sel(c) = v.(uint64) },
	})
}

func floatParam(path, field, unit, doc string, min, max float64, sel func(*machine.Config) *float64) {
	register(Param{
		Path: path, Kind: Float, Unit: unit, Doc: doc, Min: min, Max: max, Field: field,
		get: func(c *machine.Config) any { return *sel(c) },
		set: func(c *machine.Config, v any) { *sel(c) = v.(float64) },
	})
}

func enumParam(path, field, doc string, values []string, get func(*machine.Config) string, set func(*machine.Config, string)) {
	register(Param{
		Path: path, Kind: Enum, Doc: doc, Values: values, Field: field,
		get: func(c *machine.Config) any { return get(c) },
		set: func(c *machine.Config, v any) { set(c, v.(string)) },
	})
}

// effNUMA returns the configuration's effective NUMA parameters: the
// pointer's contents when set, DefaultNUMAConfig otherwise. Reading
// through the effective value — and materializing the pointer only on
// Set — canonicalizes nil-vs-explicit-default so semantically identical
// configs encode (and therefore fingerprint) identically.
func effNUMA(c *machine.Config) memsys.NUMAConfig {
	if c.NUMA != nil {
		return *c.NUMA
	}
	return memsys.DefaultNUMAConfig(c.Procs)
}

// numaParam registers one NUMA latency field. NUMAConfig.Nodes is
// deliberately not registered: machine.New forces it to Procs.
func numaParam(path, field, doc string, sel func(*memsys.NUMAConfig) *float64) {
	register(Param{
		Path: path, Kind: Float, Unit: "ns", Doc: doc, Min: 0, Max: 1e9, Field: field,
		get: func(c *machine.Config) any { n := effNUMA(c); return *sel(&n) },
		set: func(c *machine.Config, v any) {
			n := effNUMA(c)
			*sel(&n) = v.(float64)
			c.NUMA = &n
		},
	})
}

// effMagic is effNUMA for the MAGIC occupancy table (nil = RTL values).
func effMagic(c *machine.Config) magic.OccupancyTable {
	if c.MagicTable != nil {
		return *c.MagicTable
	}
	return magic.RTLOccupancies()
}

func init() {
	// Machine identity and scheduling.
	intParam("procs", "Procs", "", "processor (= node = thread) count",
		1, 1024, func(c *machine.Config) *int { return &c.Procs })
	intParam("quantum", "Quantum", "instrs", "instructions per scheduling slice",
		1, 1e9, func(c *machine.Config) *int { return &c.Quantum })
	floatParam("jitter_pct", "JitterPct", "%", "seeded run-to-run noise on the final time",
		0, 100, func(c *machine.Config) *float64 { return &c.JitterPct })
	u64Param("seed", "Seed", "", "jitter and branch-outcome PRNG seed",
		0, 1e18, func(c *machine.Config) *uint64 { return &c.Seed })

	// Processor model.
	enumParam("cpu.kind", "CPU", "processor model", []string{"mipsy", "mxs"},
		func(c *machine.Config) string { return c.CPU.String() },
		func(c *machine.Config, s string) {
			if s == "mipsy" {
				c.CPU = machine.CPUMipsy
			} else {
				c.CPU = machine.CPUMXS
			}
		})
	intParam("cpu.clock_mhz", "ClockMHz", "MHz", "core clock (must divide 900: 150/225/300)",
		1, 900, func(c *machine.Config) *int { return &c.ClockMHz })
	u32Param("cpu.restart_cycles", "RestartCycles", "cycles", "core-to-pins restart delay (snbench restart-time test)",
		0, 1000, func(c *machine.Config) *uint32 { return &c.RestartCycles })
	intParam("cpu.write_buffer_entries", "WriteBufferEntries", "", "store-buffer entries (Table 1: 4)",
		1, 64, func(c *machine.Config) *int { return &c.WriteBufferEntries })
	intParam("cpu.mshr_count", "MSHRCount", "", "outstanding-miss registers (Table 1: 4)",
		1, 64, func(c *machine.Config) *int { return &c.MSHRCount })
	boolParam("cpu.model_instr_latency", "ModelInstrLatency", "model functional-unit latencies in Mipsy (mul 5, div 19, FP)",
		func(c *machine.Config) *bool { return &c.ModelInstrLatency })

	// OS model.
	enumParam("os.kind", "OS.Kind", "operating-system model", []string{"solo", "simos"},
		func(c *machine.Config) string { return c.OS.Kind.String() },
		func(c *machine.Config, s string) {
			if s == "solo" {
				c.OS.Kind = osmodel.Solo
			} else {
				c.OS.Kind = osmodel.SimOS
			}
		})
	intParam("os.tlb.entries", "OS.TLBEntries", "", "per-CPU TLB entries (R10000: 64; SimOS only)",
		0, 4096, func(c *machine.Config) *int { return &c.OS.TLBEntries })
	u32Param("os.tlb.handler_cycles", "OS.TLBHandlerCycles", "cycles", "TLB refill cost (untuned 25/35, hardware 65)",
		0, 1e6, func(c *machine.Config) *uint32 { return &c.OS.TLBHandlerCycles })
	u32Param("os.page_fault_cycles", "OS.PageFaultCycles", "cycles", "kernel cost of a cold page fault (SimOS)",
		0, 1e9, func(c *machine.Config) *uint32 { return &c.OS.PageFaultCycles })
	u32Param("os.syscall_cycles", "OS.SyscallCycles", "cycles", "kernel entry/exit cost of a syscall (SimOS)",
		0, 1e9, func(c *machine.Config) *uint32 { return &c.OS.SyscallCycles })

	// Memory-system model selection.
	enumParam("mem.kind", "Mem", "memory-system simulator", []string{"flashlite", "numa"},
		func(c *machine.Config) string { return c.Mem.String() },
		func(c *machine.Config, s string) {
			if s == "flashlite" {
				c.Mem = machine.MemFlashLite
			} else {
				c.Mem = machine.MemNUMA
			}
		})

	// FlashLite timing constants (the Calibrator's Table 3 knobs).
	flashFloat := func(path, field, doc string, sel func(*memsys.FlashTiming) *float64) {
		floatParam(path, field, "ns", doc, 0, 1e9,
			func(c *machine.Config) *float64 { return sel(&c.FlashTiming) })
	}
	flashFloat("flash.bus_request_ns", "FlashTiming.BusRequestNS", "processor-to-MAGIC bus leg",
		func(t *memsys.FlashTiming) *float64 { return &t.BusRequestNS })
	flashFloat("flash.bus_reply_ns", "FlashTiming.BusReplyNS", "MAGIC-to-processor bus leg",
		func(t *memsys.FlashTiming) *float64 { return &t.BusReplyNS })
	flashFloat("flash.router_ns", "FlashTiming.RouterNS", "per-router pass-through",
		func(t *memsys.FlashTiming) *float64 { return &t.RouterNS })
	flashFloat("flash.inbox_ns", "FlashTiming.InboxNS", "network-to-MAGIC interface crossing",
		func(t *memsys.FlashTiming) *float64 { return &t.InboxNS })
	flashFloat("flash.outbox_ns", "FlashTiming.OutboxNS", "MAGIC-to-network interface crossing",
		func(t *memsys.FlashTiming) *float64 { return &t.OutboxNS })
	flashFloat("flash.intervention_ns", "FlashTiming.InterventionNS", "dirty-line extraction at the owner CPU",
		func(t *memsys.FlashTiming) *float64 { return &t.InterventionNS })

	// Generic NUMA model (latency-only; its one queueing effect is
	// memory banks).
	numaParam("numa.controller_ns", "NUMA.ControllerNS", "directory-controller pass-through latency",
		func(n *memsys.NUMAConfig) *float64 { return &n.ControllerNS })
	numaParam("numa.memory_ns", "NUMA.MemoryNS", "DRAM access latency for a full line",
		func(n *memsys.NUMAConfig) *float64 { return &n.MemoryNS })
	numaParam("numa.hop_ns", "NUMA.HopNS", "per-hop network latency",
		func(n *memsys.NUMAConfig) *float64 { return &n.HopNS })
	numaParam("numa.per_byte_ns", "NUMA.PerByteNS", "serialization time per byte",
		func(n *memsys.NUMAConfig) *float64 { return &n.PerByteNS })
	numaParam("numa.intervention_ns", "NUMA.InterventionNS", "dirty-line extraction cost at an owner",
		func(n *memsys.NUMAConfig) *float64 { return &n.InterventionNS })
	numaParam("numa.bus_ns", "NUMA.BusNS", "processor-controller bus latency, each way",
		func(n *memsys.NUMAConfig) *float64 { return &n.BusNS })
	register(Param{
		Path: "numa.memory_banks", Kind: Int, Doc: "contended memory banks per node",
		Min: 1, Max: 64, Field: "NUMA.MemoryBanks",
		get: func(c *machine.Config) any { return int64(effNUMA(c).MemoryBanks) },
		set: func(c *machine.Config, v any) {
			n := effNUMA(c)
			n.MemoryBanks = int(v.(int64))
			c.NUMA = &n
		},
	})

	// MAGIC protocol-processor occupancies (75 MHz system cycles; the
	// Verilog-extracted handler costs). nil table = RTL values.
	for h := magic.Handler(0); h < magic.NumHandlers; h++ {
		h := h
		register(Param{
			Path: "magic.occupancy." + strings.ReplaceAll(h.String(), "-", "_"),
			Kind: Uint, Unit: "syscycles",
			Doc: "PP occupancy of the " + h.String() + " handler",
			Min: 0, Max: 1e6,
			Field: magicField(int(h)),
			get:   func(c *machine.Config) any { return uint64(effMagic(c)[h]) },
			set: func(c *machine.Config, v any) {
				t := effMagic(c)
				t[h] = uint32(v.(uint64))
				c.MagicTable = &t
			},
		})
	}

	// Cache geometry and processor-side latencies.
	u64Param("l1d.size_bytes", "L1D.Size", "bytes", "primary data cache size",
		1<<10, 1<<30, func(c *machine.Config) *uint64 { return &c.L1D.Size })
	u64Param("l1d.line_bytes", "L1D.LineSize", "bytes", "primary data cache line size",
		8, 1<<12, func(c *machine.Config) *uint64 { return &c.L1D.LineSize })
	intParam("l1d.ways", "L1D.Ways", "", "primary data cache associativity",
		1, 32, func(c *machine.Config) *int { return &c.L1D.Ways })
	u32Param("l1d.hit_cycles", "L1HitCycles", "cycles", "primary-cache hit latency",
		0, 100, func(c *machine.Config) *uint32 { return &c.L1HitCycles })
	u64Param("l2.size_bytes", "L2.Size", "bytes", "secondary cache size",
		1<<10, 1<<32, func(c *machine.Config) *uint64 { return &c.L2.Size })
	u64Param("l2.line_bytes", "L2.LineSize", "bytes", "secondary cache line size",
		8, 1<<12, func(c *machine.Config) *uint64 { return &c.L2.LineSize })
	intParam("l2.ways", "L2.Ways", "", "secondary cache associativity",
		1, 32, func(c *machine.Config) *int { return &c.L2.Ways })
	u32Param("l2.hit_cycles", "L2HitCycles", "cycles", "secondary-cache hit latency",
		0, 1000, func(c *machine.Config) *uint32 { return &c.L2HitCycles })
	boolParam("l2.model_interface_occupancy", "ModelL2InterfaceOccupancy",
		"model secondary-cache interface occupancy during line transfers",
		func(c *machine.Config) *bool { return &c.ModelL2InterfaceOccupancy })
	floatParam("l2.transfer_ns", "L2TransferNS", "ns", "secondary-cache interface line-transfer occupancy",
		0, 1e6, func(c *machine.Config) *float64 { return &c.L2TransferNS })

	// Sampled simulation: functional fast-forward alternating with
	// detailed windows on an instruction-count schedule. All of these
	// change results (sampling is a fidelity tradeoff, not a
	// verification flag), so they are registered and fingerprinted:
	// sampled runs memoize under distinct keys from full-detail runs.
	boolParam("sampling.enabled", "Sampling.Enabled",
		"sample the run: detailed windows separated by functional fast-forward",
		func(c *machine.Config) *bool { return &c.Sampling.Enabled })
	u64Param("sampling.period_instrs", "Sampling.Period", "instrs",
		"schedule cycle length per node (0 when sampling is off)",
		0, 1e12, func(c *machine.Config) *uint64 { return &c.Sampling.Period })
	u64Param("sampling.window_instrs", "Sampling.Window", "instrs",
		"detailed instructions per period, including warmup (0 when off)",
		0, 1e12, func(c *machine.Config) *uint64 { return &c.Sampling.Window })
	u64Param("sampling.warmup_instrs", "Sampling.Warmup", "instrs",
		"leading window portion accounted as detailed warmup",
		0, 1e12, func(c *machine.Config) *uint64 { return &c.Sampling.Warmup })
	u64Param("sampling.phase_instrs", "Sampling.Phase", "instrs",
		"functional offset of the first window into each stream",
		0, 1e12, func(c *machine.Config) *uint64 { return &c.Sampling.Phase })
	boolParam("sampling.cold_state", "Sampling.ColdState",
		"fast-forward without warming cache/TLB/directory state",
		func(c *machine.Config) *bool { return &c.Sampling.ColdState })

	// MXS fidelity knobs and injectable historical bugs.
	boolParam("mxs.model_address_interlocks", "MXS.ModelAddressInterlocks",
		"charge address-generation interlocks (omission makes MXS 20-30% fast)",
		func(c *machine.Config) *bool { return &c.MXS.ModelAddressInterlocks })
	u32Param("mxs.interlock_cycles", "MXS.InterlockCycles", "cycles", "address-interlock charge",
		0, 100, func(c *machine.Config) *uint32 { return &c.MXS.InterlockCycles })
	u32Param("mxs.interlock_max_dist", "MXS.InterlockMaxDist", "instrs", "producer distance that triggers an interlock",
		0, 100, func(c *machine.Config) *uint32 { return &c.MXS.InterlockMaxDist })
	boolParam("mxs.bug_fast_issue", "MXS.BugFastIssue", "re-enable the historical fast-issue pipeline bug",
		func(c *machine.Config) *bool { return &c.MXS.BugFastIssue })
	boolParam("mxs.bug_cache_op_stall", "MXS.BugCacheOpStall", "re-enable the historical CACHE-op stall bug",
		func(c *machine.Config) *bool { return &c.MXS.BugCacheOpStall })
	u32Param("mxs.cache_op_stall_cycles", "MXS.CacheOpStallCycles", "cycles", "stall length of the CACHE-op bug",
		0, 1e8, func(c *machine.Config) *uint32 { return &c.MXS.CacheOpStallCycles })
}

// magicField names the Go field path of one MAGIC occupancy slot.
func magicField(i int) string { return "MagicTable[" + strconv.Itoa(i) + "]" }
