package param

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"flashsim/internal/machine"
)

// SchemaVersion tags the canonical encoding. Bump it whenever the
// registry's path set or value semantics change incompatibly — or when
// the stored Result record grows fields that old cache entries lack
// (e.g. the per-run Metrics block); the tag is hashed into every run
// fingerprint, so stale on-disk result caches self-invalidate instead
// of serving results computed under an old Config layout.
// Version 4: the sampling.* group joined the registry and Result grew
// sampling metadata (Sampled/Sampling fields).
const SchemaVersion = 4

// Snapshot is the canonical, versioned form of a machine.Config: every
// registered parameter by dotted path. The config's Name is a display
// label, not a parameter, and is deliberately absent — two configs that
// differ only in Name are the same simulator.
type Snapshot struct {
	Schema int            `json:"schema"`
	Params map[string]any `json:"params"`
}

// SnapshotOf captures cfg's registered parameters.
func SnapshotOf(cfg machine.Config) Snapshot {
	s := Snapshot{Schema: SchemaVersion, Params: make(map[string]any, len(ordered))}
	for _, p := range ordered {
		s.Params[p.Path] = p.get(&cfg)
	}
	return s
}

// Canonical returns the canonical JSON encoding of cfg: schema version
// plus all registered parameters with keys in sorted order (encoding/
// json sorts map keys), independent of Go field order, field additions
// that register new paths at their defaults... the same semantics
// always produce the same bytes. This is the runner's fingerprint
// payload.
func Canonical(cfg machine.Config) []byte {
	data, err := json.Marshal(SnapshotOf(cfg))
	if err != nil {
		// Registered values are plain scalars; a failure here is a
		// programming error in a registration, not a runtime condition.
		panic(fmt.Sprintf("param: canonical encoding failed: %v", err))
	}
	return data
}

// ParseSnapshot decodes a snapshot file. Both the full versioned form
// {"schema":2,"params":{...}} and a bare {"path": value} object (a
// hand-written override file) are accepted. A schema from a different
// version is rejected rather than silently misapplied.
func ParseSnapshot(data []byte) (Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(data, &s); err == nil && s.Params != nil {
		if s.Schema != 0 && s.Schema != SchemaVersion {
			return s, fmt.Errorf("param: snapshot schema %d, this build speaks %d", s.Schema, SchemaVersion)
		}
		return s, nil
	}
	var bare map[string]any
	if err := json.Unmarshal(data, &bare); err != nil {
		return s, fmt.Errorf("param: not a parameter snapshot: %w", err)
	}
	return Snapshot{Schema: SchemaVersion, Params: bare}, nil
}

// ApplySnapshot returns cfg with every parameter in s applied. Unknown
// paths are errors: a snapshot that names a parameter this build does
// not know is from a different schema, and ignoring the entry would
// silently run the wrong simulator.
func ApplySnapshot(cfg machine.Config, s Snapshot) (machine.Config, error) {
	// Apply in sorted order for deterministic error reporting.
	paths := make([]string, 0, len(s.Params))
	for path := range s.Params {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		if err := SetValue(&cfg, path, s.Params[path]); err != nil {
			return cfg, err
		}
	}
	return cfg, nil
}

// Delta is one parameter change: the unit of a Calibration and of a
// rendered tuning diff.
type Delta struct {
	Path   string `json:"path"`
	Before any    `json:"before"`
	After  any    `json:"after"`
}

// String renders the delta with the parameter's unit.
func (d Delta) String() string {
	unit := ""
	if p, ok := Lookup(d.Path); ok && p.Unit != "" {
		unit = " " + p.Unit
	}
	return fmt.Sprintf("%-30s %s -> %s%s", d.Path, renderValue(d.Before), renderValue(d.After), unit)
}

// renderValue formats a delta endpoint for humans: floats at a sensible
// precision (they come out of fitting loops with full float64 noise),
// everything else via %v.
func renderValue(v any) string {
	if f, ok := v.(float64); ok {
		return fmt.Sprintf("%.6g", f)
	}
	return fmt.Sprintf("%v", v)
}

// Diff lists every registered parameter whose value differs between a
// and b, sorted by path. Names are not compared (they are labels).
func Diff(a, b machine.Config) []Delta {
	var out []Delta
	for _, p := range All() {
		va, vb := p.get(&a), p.get(&b)
		if va != vb {
			out = append(out, Delta{Path: p.Path, Before: va, After: vb})
		}
	}
	return out
}

// ApplyDeltas returns cfg with every delta's After value applied, in
// order.
func ApplyDeltas(cfg machine.Config, deltas []Delta) (machine.Config, error) {
	for _, d := range deltas {
		if err := SetValue(&cfg, d.Path, d.After); err != nil {
			return cfg, err
		}
	}
	return cfg, nil
}

// RenderDeltas renders a parameter diff as an indented block, one delta
// per line ("(no parameter differences)" when empty) — the
// human-readable form of a Calibration and of tuned-vs-untuned config
// comparisons.
func RenderDeltas(deltas []Delta) string {
	if len(deltas) == 0 {
		return "  (no parameter differences)\n"
	}
	var b strings.Builder
	for _, d := range deltas {
		fmt.Fprintf(&b, "  %s\n", d)
	}
	return b.String()
}
