// Package param is the canonical registry of every tunable simulation
// parameter. The paper's methodology is "find the mis-set knob, tune
// it, re-measure"; this package makes the knob surface enumerable: every
// tunable reachable from a machine.Config — TLB handler cycles, the
// secondary-cache interface occupancy, the FlashLite bus and router
// constants, the Mipsy/MXS fidelity flags, MAGIC handler occupancies —
// is one registry entry with a dotted path ("os.tlb.handler_cycles",
// "l2.transfer_ns", "flash.bus_request_ns", ...), a type, a unit,
// bounds, and Get/Set accessors against a machine.Config.
//
// On top of the registry sit a versioned canonical encoding (the
// fingerprint key of the runner's memoizing store), a diff renderer
// (how calibrations and tuned-vs-untuned comparisons are reported), and
// string-based Set parsing (the CLIs' -set path=value flag). Adding a
// knob is one registration here; the calibrator, the fingerprint, the
// diff output, and every CLI pick it up automatically.
package param

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"flashsim/internal/machine"
)

// Kind is a parameter's value type. Canonical Go representations are
// bool (Bool), int64 (Int), uint64 (Uint), float64 (Float), and string
// (Enum); Get returns them and Set/SetValue coerce onto them.
type Kind uint8

const (
	// Bool is an on/off fidelity knob.
	Bool Kind = iota
	// Int is a signed count (procs, ways, banks).
	Int
	// Uint is an unsigned count or cycle cost.
	Uint
	// Float is a continuous quantity (latencies in ns, percentages).
	Float
	// Enum is a named choice (cpu.kind, os.kind, mem.kind).
	Enum
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Bool:
		return "bool"
	case Int:
		return "int"
	case Uint:
		return "uint"
	case Float:
		return "float"
	case Enum:
		return "enum"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Param describes one registered tunable.
type Param struct {
	// Path is the dotted registry path ("os.tlb.handler_cycles").
	Path string
	// Kind is the value type.
	Kind Kind
	// Unit documents the value's unit ("cycles", "ns", "bytes"; ""
	// for dimensionless counts and flags).
	Unit string
	// Doc is a one-line description.
	Doc string
	// Min and Max are inclusive bounds for numeric kinds.
	Min, Max float64
	// Values enumerates the legal strings of an Enum parameter.
	Values []string
	// Field is the Go field path inside machine.Config this parameter
	// covers ("OS.TLBHandlerCycles", "MagicTable[3]"); the
	// completeness test matches it against a reflection walk so no
	// Config field can silently bypass the registry.
	Field string
	// Default is the parameter's value in the registry's reference
	// configuration (machine.Base(4, true) with the SimOS OS model).
	Default any

	get func(*machine.Config) any
	set func(*machine.Config, any)
}

// Get reads the parameter from cfg.
func (p Param) Get(cfg *machine.Config) any { return p.get(cfg) }

// Set writes a pre-coerced value into cfg; use SetValue or SetString
// for arbitrary input.
func (p Param) Set(cfg *machine.Config, v any) error {
	cv, err := p.coerce(v)
	if err != nil {
		return err
	}
	p.set(cfg, cv)
	return nil
}

// coerce converts v to the parameter's canonical representation,
// checking bounds and enum membership. JSON numbers (float64) are
// accepted for integer kinds when integral.
func (p Param) coerce(v any) (any, error) {
	fail := func() (any, error) {
		return nil, fmt.Errorf("param %s: cannot use %v (%T) as %s", p.Path, v, v, p.Kind)
	}
	switch p.Kind {
	case Bool:
		b, ok := v.(bool)
		if !ok {
			return fail()
		}
		return b, nil
	case Enum:
		s, ok := v.(string)
		if !ok {
			return fail()
		}
		for _, allowed := range p.Values {
			if s == allowed {
				return s, nil
			}
		}
		return nil, fmt.Errorf("param %s: %q is not one of %s", p.Path, s, strings.Join(p.Values, "|"))
	}
	// Numeric kinds: normalize through float64 (bounds are float64),
	// rejecting non-integral values for Int/Uint.
	var f float64
	switch n := v.(type) {
	case int:
		f = float64(n)
	case int64:
		f = float64(n)
	case uint32:
		f = float64(n)
	case uint64:
		f = float64(n)
	case float64:
		f = n
	default:
		return fail()
	}
	if f < p.Min || f > p.Max {
		return nil, fmt.Errorf("param %s: %v out of range [%v, %v]", p.Path, f, p.Min, p.Max)
	}
	switch p.Kind {
	case Int, Uint:
		if f != math.Trunc(f) {
			return nil, fmt.Errorf("param %s: %v is not an integer", p.Path, f)
		}
		if p.Kind == Int {
			return int64(f), nil
		}
		return uint64(f), nil
	default:
		return f, nil
	}
}

// ParseValue parses raw into the parameter's canonical representation
// without applying it.
func (p Param) ParseValue(raw string) (any, error) {
	switch p.Kind {
	case Bool:
		b, err := strconv.ParseBool(raw)
		if err != nil {
			return nil, fmt.Errorf("param %s: %q is not a bool", p.Path, raw)
		}
		return b, nil
	case Enum:
		return p.coerce(raw)
	default:
		f, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			return nil, fmt.Errorf("param %s: %q is not a number", p.Path, raw)
		}
		return p.coerce(f)
	}
}

// registry state. Registration happens in package init (registry.go)
// and is immutable afterwards, so lock-free reads are safe.
var (
	byPath  = make(map[string]*Param)
	ordered []*Param
)

// register adds p to the registry, capturing its default from the
// reference configuration. Duplicate paths are a programming error.
func register(p Param) {
	if _, dup := byPath[p.Path]; dup {
		panic(fmt.Sprintf("param: duplicate registration of %s", p.Path))
	}
	ref := referenceConfig()
	p.Default = p.get(&ref)
	sp := new(Param)
	*sp = p
	byPath[p.Path] = sp
	ordered = append(ordered, sp)
}

// referenceConfig is the configuration defaults are read from: the
// shared FLASH base parameters with the SimOS OS model.
func referenceConfig() machine.Config {
	cfg := machine.Base(4, true)
	cfg.OS = defaultOS()
	return cfg
}

// All returns every registered parameter sorted by path.
func All() []Param {
	out := make([]Param, 0, len(ordered))
	for _, p := range ordered {
		out = append(out, *p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// Paths returns every registered path, sorted.
func Paths() []string {
	out := make([]string, 0, len(byPath))
	for path := range byPath {
		out = append(out, path)
	}
	sort.Strings(out)
	return out
}

// Lookup finds a parameter by path.
func Lookup(path string) (Param, bool) {
	p, ok := byPath[path]
	if !ok {
		return Param{}, false
	}
	return *p, true
}

// Get reads one parameter from cfg by path.
func Get(cfg *machine.Config, path string) (any, error) {
	p, ok := byPath[path]
	if !ok {
		return nil, fmt.Errorf("param: unknown path %q", path)
	}
	return p.get(cfg), nil
}

// SetValue writes one parameter into cfg by path, coercing v onto the
// parameter's type and checking bounds.
func SetValue(cfg *machine.Config, path string, v any) error {
	p, ok := byPath[path]
	if !ok {
		return fmt.Errorf("param: unknown path %q", path)
	}
	return p.Set(cfg, v)
}

// SetString parses raw and writes it into cfg by path — the engine of
// the CLIs' -set path=value flag.
func SetString(cfg *machine.Config, path, raw string) error {
	p, ok := byPath[path]
	if !ok {
		return fmt.Errorf("param: unknown path %q", path)
	}
	v, err := p.ParseValue(raw)
	if err != nil {
		return err
	}
	p.set(cfg, v)
	return nil
}

// Setting is one textual path=value override, as supplied on a command
// line or parsed from a config file.
type Setting struct {
	Path  string
	Value string
}

// ParseSetting splits a "path=value" argument.
func ParseSetting(s string) (Setting, error) {
	path, value, ok := strings.Cut(s, "=")
	if !ok || path == "" {
		return Setting{}, fmt.Errorf("param: %q is not path=value", s)
	}
	return Setting{Path: path, Value: value}, nil
}

// Validate checks the setting against the registry (path exists, value
// parses, bounds hold) without touching any configuration.
func (s Setting) Validate() error {
	p, ok := byPath[s.Path]
	if !ok {
		return fmt.Errorf("param: unknown path %q", s.Path)
	}
	_, err := p.ParseValue(s.Value)
	return err
}

// ApplySettings returns cfg with every setting applied, in order.
func ApplySettings(cfg machine.Config, settings []Setting) (machine.Config, error) {
	for _, s := range settings {
		if err := SetString(&cfg, s.Path, s.Value); err != nil {
			return cfg, err
		}
	}
	return cfg, nil
}

// Describe renders the registry as an aligned table — the CLIs'
// -list-params output.
func Describe() string {
	var b strings.Builder
	for _, p := range All() {
		typ := p.Kind.String()
		if p.Kind == Enum {
			typ = strings.Join(p.Values, "|")
		}
		unit := p.Unit
		if unit != "" {
			unit = " " + unit
		}
		fmt.Fprintf(&b, "%-32s %-18s default %v%s — %s\n", p.Path, typ, p.Default, unit, p.Doc)
	}
	return b.String()
}
