package param_test

import (
	"bytes"
	"strings"
	"testing"

	"flashsim/internal/machine"
	"flashsim/internal/magic"
	"flashsim/internal/memsys"
	"flashsim/internal/param"
)

func base() machine.Config { return machine.Base(4, true) }

func TestGetSetRoundTrip(t *testing.T) {
	cfg := base()
	cases := []struct {
		path string
		raw  string
		want any
	}{
		{"os.tlb.handler_cycles", "65", uint64(65)},
		{"l2.transfer_ns", "212.5", 212.5},
		{"l2.model_interface_occupancy", "true", true},
		{"cpu.kind", "mxs", "mxs"},
		{"os.kind", "solo", "solo"},
		{"mem.kind", "numa", "numa"},
		{"flash.bus_request_ns", "48", 48.0},
		{"mxs.model_address_interlocks", "true", true},
		{"procs", "16", int64(16)},
		{"magic.occupancy.ni_get_fwd", "17", uint64(17)},
		{"numa.hop_ns", "55", 55.0},
	}
	for _, c := range cases {
		if err := param.SetString(&cfg, c.path, c.raw); err != nil {
			t.Fatalf("Set %s=%s: %v", c.path, c.raw, err)
		}
		got, err := param.Get(&cfg, c.path)
		if err != nil {
			t.Fatalf("Get %s: %v", c.path, err)
		}
		if got != c.want {
			t.Errorf("%s: got %v (%T), want %v (%T)", c.path, got, got, c.want, c.want)
		}
	}
	// The sets must have landed in the real struct fields.
	if cfg.OS.TLBHandlerCycles != 65 || cfg.L2TransferNS != 212.5 || !cfg.ModelL2InterfaceOccupancy {
		t.Errorf("registry writes did not reach the Config: %+v", cfg)
	}
	if cfg.CPU != machine.CPUMXS || cfg.Mem != machine.MemNUMA {
		t.Errorf("enum writes did not reach the Config")
	}
	if cfg.MagicTable == nil || cfg.MagicTable[magic.HNIGetFwd] != 17 {
		t.Errorf("magic write did not materialize the table")
	}
	if cfg.NUMA == nil || cfg.NUMA.HopNS != 55 {
		t.Errorf("numa write did not materialize the pointer")
	}
}

func TestSetErrors(t *testing.T) {
	cfg := base()
	for _, c := range []struct{ path, raw, wantErr string }{
		{"no.such.path", "1", "unknown path"},
		{"os.tlb.handler_cycles", "-5", "out of range"},
		{"os.tlb.handler_cycles", "1.5", "not an integer"},
		{"os.tlb.handler_cycles", "lots", "not a number"},
		{"cpu.kind", "r10000", "not one of"},
		{"l2.model_interface_occupancy", "maybe", "not a bool"},
		{"procs", "0", "out of range"},
	} {
		err := param.SetString(&cfg, c.path, c.raw)
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("Set %s=%s: got %v, want error containing %q", c.path, c.raw, err, c.wantErr)
		}
	}
	if d := param.Diff(base(), cfg); len(d) != 0 {
		t.Errorf("failed sets must not modify the config: %v", d)
	}
}

func TestCanonicalIgnoresNameAndNilDefaults(t *testing.T) {
	a := base()
	b := base()
	b.Name = "something else entirely"
	if !bytes.Equal(param.Canonical(a), param.Canonical(b)) {
		t.Error("Name must not affect the canonical encoding")
	}

	// nil NUMA/MagicTable vs. explicitly materialized defaults are the
	// same simulator and must encode identically.
	nd := memsys.DefaultNUMAConfig(b.Procs)
	b.NUMA = &nd
	mt := magic.RTLOccupancies()
	b.MagicTable = &mt
	if !bytes.Equal(param.Canonical(a), param.Canonical(b)) {
		t.Error("nil and explicit-default pointer fields must encode identically")
	}

	// A real change must show.
	b.OS.TLBHandlerCycles = 65
	if bytes.Equal(param.Canonical(a), param.Canonical(b)) {
		t.Error("parameter change did not change the canonical encoding")
	}
}

func TestCanonicalCarriesSchemaVersion(t *testing.T) {
	if !bytes.Contains(param.Canonical(base()), []byte(`"schema":`)) {
		t.Error("canonical encoding must carry the schema version tag")
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	cfg := base()
	cfg.OS.TLBHandlerCycles = 65
	cfg.ModelL2InterfaceOccupancy = true
	cfg.FlashTiming.RouterNS = 31

	s := param.SnapshotOf(cfg)
	data := param.Canonical(cfg)
	parsed, err := param.ParseSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Schema != s.Schema {
		t.Errorf("schema: %d != %d", parsed.Schema, s.Schema)
	}
	restored, err := param.ApplySnapshot(base(), parsed)
	if err != nil {
		t.Fatal(err)
	}
	if d := param.Diff(cfg, restored); len(d) != 0 {
		t.Errorf("snapshot round trip lost parameters: %v", d)
	}

	// Bare override files (no schema wrapper) also parse.
	bare, err := param.ParseSnapshot([]byte(`{"os.tlb.handler_cycles": 65}`))
	if err != nil {
		t.Fatal(err)
	}
	got, err := param.ApplySnapshot(base(), bare)
	if err != nil {
		t.Fatal(err)
	}
	if got.OS.TLBHandlerCycles != 65 {
		t.Errorf("bare snapshot did not apply: %d", got.OS.TLBHandlerCycles)
	}

	// Unknown paths and foreign schemas are rejected.
	if _, err := param.ApplySnapshot(base(), param.Snapshot{Params: map[string]any{"bogus": 1}}); err == nil {
		t.Error("unknown snapshot path must be rejected")
	}
	if _, err := param.ParseSnapshot([]byte(`{"schema": 999, "params": {}}`)); err == nil {
		t.Error("foreign schema version must be rejected")
	}
}

func TestDiffAndRender(t *testing.T) {
	a := base()
	b := a
	b.OS.TLBHandlerCycles = 65
	b.ModelL2InterfaceOccupancy = true
	deltas := param.Diff(a, b)
	if len(deltas) != 2 {
		t.Fatalf("want 2 deltas, got %v", deltas)
	}
	// Sorted by path.
	if deltas[0].Path != "l2.model_interface_occupancy" || deltas[1].Path != "os.tlb.handler_cycles" {
		t.Errorf("deltas out of order: %v", deltas)
	}
	applied, err := param.ApplyDeltas(a, deltas)
	if err != nil {
		t.Fatal(err)
	}
	if d := param.Diff(b, applied); len(d) != 0 {
		t.Errorf("ApplyDeltas did not reproduce the target: %v", d)
	}
	text := param.RenderDeltas(deltas)
	for _, want := range []string{"os.tlb.handler_cycles", "-> 65 cycles", "false -> true"} {
		if !strings.Contains(text, want) {
			t.Errorf("rendered diff missing %q:\n%s", want, text)
		}
	}
	if param.RenderDeltas(nil) == "" {
		t.Error("empty diff must still render a placeholder")
	}
}

func TestDescribeListsEveryParam(t *testing.T) {
	text := param.Describe()
	for _, p := range param.All() {
		if !strings.Contains(text, p.Path) {
			t.Errorf("Describe() missing %s", p.Path)
		}
	}
	if !strings.Contains(text, "mipsy|mxs") {
		t.Error("Describe() should render enum values")
	}
}

func TestSettingValidate(t *testing.T) {
	s, err := param.ParseSetting("os.tlb.handler_cycles=65")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Errorf("valid setting rejected: %v", err)
	}
	if _, err := param.ParseSetting("justapath"); err == nil {
		t.Error("settings need an equals sign")
	}
	bad := param.Setting{Path: "os.tlb.handler_cycles", Value: "many"}
	if err := bad.Validate(); err == nil {
		t.Error("unparseable value must fail validation")
	}
}
