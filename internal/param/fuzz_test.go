package param_test

import (
	"encoding/json"
	"math"
	"testing"

	"flashsim/internal/param"
)

// FuzzApplyDeltas throws arbitrary (path, JSON value) pairs at the
// registry's delta application and pins two properties: ApplyDeltas
// never panics, whatever the input; and when it *accepts* a numeric
// value, the value actually lands inside the parameter's declared
// [Min, Max] bounds — a delta can never smuggle an out-of-range knob
// into a config.
func FuzzApplyDeltas(f *testing.F) {
	f.Add("os.tlb.handler_cycles", []byte("65"))
	f.Add("os.tlb.handler_cycles", []byte("-1"))
	f.Add("l2.transfer_ns", []byte("212.5"))
	f.Add("l2.transfer_ns", []byte("1e308"))
	f.Add("l2.model_interface_occupancy", []byte("true"))
	f.Add("cpu.kind", []byte(`"mxs"`))
	f.Add("cpu.kind", []byte(`"z80"`))
	f.Add("no.such.param", []byte("1"))
	f.Add("flash.bus_request_ns", []byte("null"))
	f.Add("machine.procs", []byte("3.5"))
	f.Add("machine.procs", []byte(`{"nested":"object"}`))
	f.Fuzz(func(t *testing.T, path string, raw []byte) {
		var v any
		if err := json.Unmarshal(raw, &v); err != nil {
			// Not JSON: feed the raw text as a string value instead of
			// discarding the input.
			v = string(raw)
		}
		cfg := base()
		out, err := param.ApplyDeltas(cfg, []param.Delta{{Path: path, After: v}})
		if err != nil {
			return // rejection is always acceptable; panicking is not
		}
		p, ok := param.Lookup(path)
		if !ok {
			t.Fatalf("ApplyDeltas accepted unregistered path %q", path)
		}
		got, gerr := param.Get(&out, path)
		if gerr != nil {
			t.Fatalf("accepted delta not readable back: %v", gerr)
		}
		var fv float64
		switch n := got.(type) {
		case int64:
			fv = float64(n)
		case uint64:
			fv = float64(n)
		case float64:
			fv = n
		default:
			return // bool/enum: membership was already enforced by Set
		}
		if math.IsNaN(fv) || fv < p.Min || fv > p.Max {
			t.Fatalf("param %s accepted %v outside bounds [%v, %v]", path, got, p.Min, p.Max)
		}
	})
}
