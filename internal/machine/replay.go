package machine

import (
	"fmt"

	"flashsim/internal/cpu"
	"flashsim/internal/cpu/mipsy"
	"flashsim/internal/emitter"
	"flashsim/internal/isa"
	"flashsim/internal/obs"
	"flashsim/internal/sim"
	"flashsim/internal/trace"
)

// RunCapture executes prog exactly like Run while mirroring every
// emitted batch into tw, sealing the container when the run drains.
// The capture adds no timing perturbation: the emitted streams and the
// simulated result are byte-identical to an untapped Run. It is the
// capture driver decoration over the execution engine, not a separate
// run loop.
func RunCapture(cfg Config, prog emitter.Program, tw *trace.Writer) (Result, error) {
	if prog.Threads != cfg.Procs {
		return Result{}, fmt.Errorf("machine %q: program %s has %d threads but machine has %d processors",
			cfg.Name, prog.FullName(), prog.Threads, cfg.Procs)
	}
	d, err := NewCaptureDriver(cfg, prog, tw)
	if err != nil {
		return Result{}, err
	}
	return RunWith(cfg, d)
}

// replayAction is one memory, sync, or syscall instruction preceded by
// a run of `skip` collapsed 1-cycle compute instructions. Collapsing is
// exact under classic Mipsy timing: compute instructions make no
// memory-system calls, so burning a run in one step reaches the same
// time, the same stats, and the same next reservation as stepping them
// one by one — and the quantum bound still yields at the same
// instruction boundaries.
type replayAction struct {
	skip uint64
	in   isa.Instr
}

// ReplayImage is a trace decoded and collapsed into directly
// executable per-thread action lists: the prepare-once/replay-many
// form. It is immutable after PrepareReplay and safe to share across
// concurrent RunReplay calls (each builds fresh cursors and cores).
type ReplayImage struct {
	workload string
	artifact string
	threads  int
	space    *emitter.AddressSpace
	actions  [][]replayAction
	tails    []uint64
	instrs   uint64
	batches  uint64
}

// PrepareReplay decodes tr completely (paying CRC, decompression, and
// codec validation once) and returns the replayable image.
func PrepareReplay(tr *trace.Trace) (*ReplayImage, error) {
	img := &ReplayImage{
		workload: tr.Workload(),
		artifact: tr.Meta().Artifact,
		threads:  tr.Threads(),
		space:    tr.Space(),
		actions:  make([][]replayAction, tr.Threads()),
		tails:    make([]uint64, tr.Threads()),
		instrs:   tr.Instructions(),
		batches:  tr.Batches(),
	}
	for i := 0; i < tr.Threads(); i++ {
		cur := tr.Thread(i)
		var acts []replayAction
		var skip uint64
		for {
			batch, err := cur.NextBatch()
			if err != nil {
				return nil, fmt.Errorf("machine: preparing replay of thread %d: %w", i, err)
			}
			if batch == nil {
				break
			}
			for _, in := range batch {
				if in.Op.IsMem() || in.Op.IsSync() || in.Op == isa.Syscall {
					acts = append(acts, replayAction{skip: skip, in: in})
					skip = 0
				} else {
					skip++
				}
			}
		}
		img.actions[i] = acts
		img.tails[i] = skip
	}
	return img, nil
}

// Workload returns the captured program's FullName.
func (img *ReplayImage) Workload() string { return img.workload }

// Artifact returns the trace's content-address fingerprint ("" when
// the capture did not record one; such images are not memoizable).
func (img *ReplayImage) Artifact() string { return img.artifact }

// Threads returns the image's thread count.
func (img *ReplayImage) Threads() int { return img.threads }

// Instructions returns the total recorded instruction count.
func (img *ReplayImage) Instructions() uint64 { return img.instrs }

// RunReplay executes a prepared trace image on a machine described by
// cfg: the same memory system, OS model, and event scheduling as Run,
// with the core model replaced by a trace-driven core that replays the
// recorded streams at one cycle per compute instruction.
//
// Under the default configuration (classic Mipsy, no instruction
// latencies) the replay core's timing rules coincide with Mipsy's, so
// the Result — including the memory-system metrics — is bit-identical
// to the execution-driven run that captured the trace. Under other
// rungs of the detail ladder (instruction latencies, MXS) the replay
// deliberately keeps its flat-CPI core: the difference IS the error
// trace-driven simulation introduces, which the trace experiment
// reports as taxonomy rows.
//
// When cfg.Sampling is enabled the image doubles as the fast-forward
// stream: the sampling engine gates the expanded trace through a
// classic-Mipsy detailed core inside windows and fast-forwards
// functionally between them.
func RunReplay(cfg Config, img *ReplayImage) (Result, error) {
	return RunWith(cfg, NewReplayDriver(cfg, img))
}

// replayDriver drives a machine from a prepared trace image.
type replayDriver struct {
	cfg Config
	img *ReplayImage
}

// NewReplayDriver returns the trace-driven driver over img.
func NewReplayDriver(cfg Config, img *ReplayImage) Driver {
	return &replayDriver{cfg: cfg, img: img}
}

func (d *replayDriver) Workload() string             { return d.img.workload }
func (d *replayDriver) Threads() int                 { return d.img.threads }
func (d *replayDriver) Space() *emitter.AddressSpace { return d.img.space }

func (d *replayDriver) Stream(i int) cpu.Stream {
	return newReplayStream(d.img, i)
}

// NewCore keeps the collapsed-action fast path when it is handed its
// own raw stream (the plain replay mode, bit-identical to Mipsy) and
// falls back to a classic-Mipsy core over the expanded stream when the
// stream has been wrapped — which is exactly the sampled case, where
// the gate must see every instruction to count window boundaries.
func (d *replayDriver) NewCore(i int, clock sim.Clock, src cpu.Stream, port cpu.Port) cpu.CPU {
	if rs, ok := src.(*replayStream); ok && rs.img == d.img {
		return newReplayCPU(clock, d.cfg.Quantum, d.img.actions[i], d.img.tails[i], port)
	}
	return mipsy.New(mipsy.Config{Clock: clock, Quantum: d.cfg.Quantum}, src, port)
}

func (d *replayDriver) Finish(bool) (obs.EmitterCounters, error) {
	// The recorded stream accounting stands in for the live emitter
	// counters. Slab reuses equal batches in a machine-fed run (every
	// consumed buffer is recycled), so the metrics match bit for bit.
	return obs.EmitterCounters{
		Batches:      d.img.batches,
		Instructions: d.img.instrs,
		SlabReuses:   d.img.batches,
	}, nil
}

// replayStream expands a thread's collapsed action list back into an
// instruction-by-instruction stream: each action's skipped compute run
// re-emits as unit-latency ALU instructions. Under the flat-CPI replay
// core this is timing-equivalent to the collapsed form; it exists so
// the sampling gate (and any other stream wrapper) can meter replayed
// instructions exactly like live ones.
type replayStream struct {
	img      *ReplayImage
	acts     []replayAction
	tail     uint64
	pos      int
	fill     uint64 // compute instructions remaining before acts[pos]
	tailDone bool
}

func newReplayStream(img *ReplayImage, i int) *replayStream {
	s := &replayStream{img: img, acts: img.actions[i], tail: img.tails[i]}
	if len(s.acts) > 0 {
		s.fill = s.acts[0].skip
	} else {
		s.fill = s.tail
		s.tailDone = true
	}
	return s
}

// NextRun implements the sampling engine's runSource: it drains the
// pending collapsed compute run (up to max instructions) and the
// action that follows it in one call. The run re-expands to
// unit-latency IntALU fillers, so consuming it wholesale is
// indistinguishable from the same number of Next calls — this is what
// makes a replay image an efficient fast-forward stream.
func (s *replayStream) NextRun(max uint64) (skip uint64, in isa.Instr, hasIn, ok bool) {
	if s.fill > 0 {
		skip = s.fill
		if skip >= max {
			skip = max
			s.fill -= skip
			return skip, isa.Instr{}, false, true
		}
		s.fill = 0
	}
	if s.pos < len(s.acts) {
		in = s.acts[s.pos].in
		s.pos++
		if s.pos < len(s.acts) {
			s.fill = s.acts[s.pos].skip
		} else if !s.tailDone {
			s.fill = s.tail
			s.tailDone = true
		}
		return skip, in, true, true
	}
	return skip, isa.Instr{}, false, skip > 0
}

func (s *replayStream) Next() (isa.Instr, bool) {
	if s.fill > 0 {
		s.fill--
		return isa.Instr{Op: isa.IntALU}, true
	}
	if s.pos < len(s.acts) {
		in := s.acts[s.pos].in
		s.pos++
		if s.pos < len(s.acts) {
			s.fill = s.acts[s.pos].skip
		} else if !s.tailDone {
			s.fill = s.tail
			s.tailDone = true
		}
		return in, true
	}
	return isa.Instr{}, false
}

// replayCPU replays a collapsed instruction stream with Mipsy's exact
// per-op timing rules (mipsy.CPU.Run is the reference; every branch
// here clones one there, including which paths touch stats.Cycles).
// Compute instructions always charge one cycle — the trace-driven
// core abstraction.
type replayCPU struct {
	clock   sim.Clock
	port    cpu.Port
	quantum int
	acts    []replayAction
	tail    uint64

	pos        int
	pending    uint64
	tailLoaded bool
	stats      cpu.Stats

	// Cycles is tracked symbolically to keep the per-action t/period
	// division off the hot path: the counter's value is cycBase/period
	// + cycAdd, materialized in Stats. A full write (Mipsy's bottom
	// `stats.Cycles = t/period`) sets cycBase=t, cycAdd=0; the sync
	// path's bare increment bumps cycAdd.
	cycBase sim.Ticks
	cycAdd  uint64

	// Suspension context for a port-deferred access (cpu.Blocking),
	// mirroring mipsy's.
	pendT      sim.Ticks
	pendIsLoad bool
}

func newReplayCPU(clock sim.Clock, quantum int, acts []replayAction, tail uint64, port cpu.Port) *replayCPU {
	if quantum <= 0 {
		quantum = 200
	}
	c := &replayCPU{clock: clock, port: port, quantum: quantum, acts: acts, tail: tail}
	c.loadPending()
	return c
}

// loadPending arms the compute run preceding the next action (or the
// trailing run once actions are exhausted). Maintained invariant:
// pending always describes the instructions before acts[pos].
func (c *replayCPU) loadPending() {
	if c.pos < len(c.acts) {
		c.pending = c.acts[c.pos].skip
	} else if !c.tailLoaded {
		c.pending = c.tail
		c.tailLoaded = true
	}
}

// Deliver implements cpu.Blocking, cloning mipsy's Deliver with the
// symbolic cycle write in place of the direct stats.Cycles store.
func (c *replayCPU) Deliver(mi cpu.MemInfo) sim.Ticks {
	period := c.clock.Period
	next := c.pendT + period
	if mi.Done > next {
		if c.pendIsLoad {
			c.stats.LoadStalls += mi.Done - next
		}
		next = mi.Done
	}
	t := c.clock.Align(next)
	c.cycBase, c.cycAdd = t, 0
	return t
}

// Stats returns the core's counters.
func (c *replayCPU) Stats() cpu.Stats {
	st := c.stats
	st.Cycles = uint64(c.cycBase/c.clock.Period) + c.cycAdd
	return st
}

// Run executes up to one quantum of recorded instructions from t.
func (c *replayCPU) Run(t sim.Ticks) cpu.Outcome {
	period := c.clock.Period
	acts := c.acts
	quantum := c.quantum
	for n := 0; n < quantum; {
		if c.pending > 0 {
			k := uint64(quantum - n)
			if k > c.pending {
				k = c.pending
			}
			t += period * sim.Ticks(k)
			c.pending -= k
			n += int(k)
			c.stats.Instructions += k
			c.cycBase, c.cycAdd = t, 0
			continue
		}
		if c.pos >= len(acts) {
			// loadPending's invariant guarantees the tail has been
			// burned by the time we get here.
			return cpu.Outcome{Kind: cpu.Finished, Time: t}
		}
		in := acts[c.pos].in
		c.pos++
		c.loadPending()
		n++
		c.stats.Instructions++
		switch in.Op {
		case isa.Lock, isa.Unlock, isa.Barrier:
			t += period
			c.cycAdd++
			return cpu.Outcome{Kind: cpu.SyncOp, Time: t, Instr: in}

		case isa.Load:
			mi := c.port.Load(t, in.Addr, in.Size)
			if mi.Pending {
				c.pendT, c.pendIsLoad = t, true
				return cpu.Outcome{Kind: cpu.Blocked, Time: t}
			}
			next := t + period
			if mi.Done > next {
				c.stats.LoadStalls += mi.Done - next
				next = mi.Done
			}
			t = c.clock.Align(next)
			if mi.WentToMemory {
				return cpu.Outcome{Kind: cpu.Yield, Time: t}
			}

		case isa.Store:
			mi := c.port.Store(t, in.Addr, in.Size)
			if mi.Pending {
				c.pendT, c.pendIsLoad = t, false
				return cpu.Outcome{Kind: cpu.Blocked, Time: t}
			}
			next := t + period
			if mi.Done > next {
				next = mi.Done
			}
			t = c.clock.Align(next)
			if mi.WentToMemory {
				return cpu.Outcome{Kind: cpu.Yield, Time: t}
			}

		case isa.Prefetch:
			c.port.Prefetch(t, in.Addr)
			t += period

		case isa.CacheOp:
			mi := c.port.CacheOp(t, in.Addr, in.Aux)
			if mi.Pending {
				c.pendT, c.pendIsLoad = t, false
				return cpu.Outcome{Kind: cpu.Blocked, Time: t}
			}
			next := t + period
			if mi.Done > next {
				next = mi.Done
			}
			t = c.clock.Align(next)

		case isa.Syscall:
			t += period * sim.Ticks(1+c.port.SyscallCost(in.Aux))

		default:
			// Unreachable via PrepareReplay's classification; charge a
			// cycle like any compute instruction.
			t += period
		}
		c.cycBase, c.cycAdd = t, 0
	}
	return cpu.Outcome{Kind: cpu.Yield, Time: t}
}
