package machine_test

import (
	"testing"

	"flashsim/internal/apps"
	"flashsim/internal/core"
	"flashsim/internal/emitter"
	"flashsim/internal/hw"
	"flashsim/internal/machine"
	"flashsim/internal/proto"
)

func TestDeterministicResults(t *testing.T) {
	prog := func() emitter.Program {
		return apps.Radix(apps.RadixOpts{Keys: 1 << 12, Radix: 32, Procs: 4})
	}
	cfg := hw.Config(4, true)
	cfg.Seed = 7
	a, err := machine.Run(cfg, prog())
	if err != nil {
		t.Fatal(err)
	}
	b, err := machine.Run(cfg, prog())
	if err != nil {
		t.Fatal(err)
	}
	if a.Exec != b.Exec || a.Instructions != b.Instructions {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
	if a.L2.Misses != b.L2.Misses || a.TLBMisses != b.TLBMisses {
		t.Fatal("cache/TLB behavior nondeterministic")
	}
}

func TestJitterVariesWithSeed(t *testing.T) {
	prog := func() emitter.Program { return trivialProgram(1, 8192) }
	cfg := hw.Config(1, true)
	cfg.JitterPct = 1.0
	times := map[uint64]bool{}
	for seed := uint64(1); seed <= 3; seed++ {
		cfg.Seed = seed
		res, err := machine.Run(cfg, prog())
		if err != nil {
			t.Fatal(err)
		}
		times[uint64(res.Exec)] = true
	}
	if len(times) < 2 {
		t.Fatal("jitter did not vary across seeds")
	}
}

func TestSimulatorsAreJitterFree(t *testing.T) {
	cfg := core.SimOSMipsy(1, 150, true)
	a, err := machine.Run(cfg, trivialProgram(1, 4096))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 99
	b, err := machine.Run(cfg, trivialProgram(1, 4096))
	if err != nil {
		t.Fatal(err)
	}
	if a.Exec != b.Exec {
		t.Fatal("deterministic simulator varied with seed")
	}
}

func TestNUMAMachineRuns(t *testing.T) {
	cfg := core.WithNUMA(core.SimOSMipsy(4, 225, true))
	res, err := machine.Run(cfg, apps.FFT(apps.FFTOpts{LogN: 12, Procs: 4, TLBBlocked: true}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Exec == 0 {
		t.Fatal("zero exec time")
	}
}

func TestCoherenceInvariantAcrossRun(t *testing.T) {
	// After any run, directory dirty state must have exactly one owner
	// and no sharers (spot check over touched lines via stats).
	cfg := hw.Config(4, true)
	cfg.JitterPct = 0
	res, err := machine.Run(cfg, apps.Ocean(apps.OceanOpts{N: 32, Grids: 6, Iters: 1, Procs: 4}))
	if err != nil {
		t.Fatal(err)
	}
	var total uint64
	for c := proto.Case(0); c < proto.NumCases; c++ {
		total += res.CaseCounts[c]
	}
	if total == 0 {
		t.Fatal("no coherence traffic on a 4-node Ocean run")
	}
}

func TestLockSectionsAreSerialized(t *testing.T) {
	// Two threads increment under a lock; the second holder's lock
	// grant must come after the first release, so the total time
	// exceeds twice the critical section.
	prog := emitter.Program{
		Name:    "locktest",
		Threads: 2,
		Setup: func(as *emitter.AddressSpace) any {
			return as.AllocPageAligned("d", 4096, emitter.Placement{})
		},
		Body: func(th *emitter.Thread, shared any) {
			r := shared.(emitter.Region)
			th.Barrier(emitter.BarrierStart)
			for i := 0; i < 10; i++ {
				th.Lock(1)
				v := th.Load(r.Base, 8, emitter.None, emitter.None)
				w := th.IntALU(v, emitter.None)
				th.Store(r.Base, 8, w, emitter.None)
				th.Unlock(1)
			}
			th.Barrier(emitter.BarrierEnd)
		},
	}
	res, err := machine.Run(simpleConfig(2), prog)
	if err != nil {
		t.Fatal(err)
	}
	if res.Exec == 0 {
		t.Fatal("no time elapsed")
	}
}

func TestBarrierReleasesRecorded(t *testing.T) {
	res, err := machine.Run(simpleConfig(2), trivialProgram(2, 4096))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.BarrierReleases[machine.BarrierStart]) != 1 {
		t.Fatal("start barrier not recorded")
	}
	if len(res.BarrierReleases[machine.BarrierEnd]) != 1 {
		t.Fatal("end barrier not recorded")
	}
	start := res.BarrierReleases[machine.BarrierStart][0]
	end := res.BarrierReleases[machine.BarrierEnd][0]
	if end <= start {
		t.Fatal("end barrier precedes start")
	}
	if res.Exec != end-start {
		t.Fatalf("exec %d != end-start %d", res.Exec, end-start)
	}
}

func TestResultAccessors(t *testing.T) {
	res, err := machine.Run(simpleConfig(1), trivialProgram(1, 4096))
	if err != nil {
		t.Fatal(err)
	}
	if res.ExecSeconds() <= 0 || res.ExecNS() <= 0 {
		t.Fatal("time accessors")
	}
	if res.String() == "" {
		t.Fatal("empty render")
	}
	if res.L1MissRate() < 0 || res.L1MissRate() > 1 {
		t.Fatal("miss rate out of range")
	}
}

func TestMoreProcessorsMoreRemoteTraffic(t *testing.T) {
	mk := func(p int) machine.Result {
		res, err := machine.Run(simpleConfig(p), apps.FFT(apps.FFTOpts{LogN: 12, Procs: p, TLBBlocked: true}))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	uni := mk(1)
	quad := mk(4)
	remote := func(r machine.Result) uint64 {
		return r.CaseCounts[proto.RemoteClean] + r.CaseCounts[proto.RemoteDirtyHome] +
			r.CaseCounts[proto.RemoteDirtyRemote]
	}
	if remote(uni) != 0 {
		t.Fatalf("uniprocessor has remote traffic: %d", remote(uni))
	}
	if remote(quad) == 0 {
		t.Fatal("multiprocessor FFT transposes must communicate")
	}
}
