package machine_test

import (
	"testing"

	"flashsim/internal/apps"
	"flashsim/internal/emitter"
	"flashsim/internal/hw"
	"flashsim/internal/machine"
	"flashsim/internal/memsys"
	"flashsim/internal/osmodel"
)

// simpleConfig returns a small Solo-Mipsy machine for fast tests.
func simpleConfig(procs int) machine.Config {
	cfg := machine.Base(procs, true)
	cfg.Name = "test-solo-mipsy"
	cfg.CPU = machine.CPUMipsy
	cfg.ClockMHz = 150
	cfg.OS = osmodel.DefaultSolo()
	cfg.Mem = machine.MemFlashLite
	cfg.FlashTiming = memsys.TrueTiming()
	return cfg
}

// trivialProgram stores and reloads a small array.
func trivialProgram(procs, n int) emitter.Program {
	return emitter.Program{
		Name:    "trivial",
		Threads: procs,
		Setup: func(as *emitter.AddressSpace) any {
			return as.AllocPageAligned("data", uint64(n)*8,
				emitter.Placement{Kind: emitter.PlaceBlocked, Stride: uint64(n) * 8 / uint64(procs)})
		},
		Body: func(t *emitter.Thread, shared any) {
			r := shared.(emitter.Region)
			lo := t.ID * n / t.N
			hi := (t.ID + 1) * n / t.N
			for i := lo; i < hi; i++ {
				t.Store(r.Base+uint64(i)*8, 8, emitter.None, emitter.None)
			}
			t.Barrier(emitter.BarrierStart)
			var prev emitter.Val
			for i := lo; i < hi; i++ {
				prev = t.Load(r.Base+uint64(i)*8, 8, emitter.None, prev)
			}
			t.Barrier(emitter.BarrierEnd)
		},
	}
}

func TestTrivialUniprocessor(t *testing.T) {
	res, err := machine.Run(simpleConfig(1), trivialProgram(1, 4096))
	if err != nil {
		t.Fatal(err)
	}
	if res.Exec == 0 || res.Total == 0 {
		t.Fatalf("zero time: %+v", res)
	}
	if res.Instructions == 0 {
		t.Fatal("no instructions executed")
	}
	if res.Exec > res.Total {
		t.Fatalf("exec %d > total %d", res.Exec, res.Total)
	}
}

func TestTrivialMultiprocessor(t *testing.T) {
	for _, p := range []int{2, 4, 8} {
		res, err := machine.Run(simpleConfig(p), trivialProgram(p, 8192))
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if res.Procs != p {
			t.Fatalf("p=%d: got %d procs", p, res.Procs)
		}
	}
}

func TestHardwareReferenceRunsFFT(t *testing.T) {
	cfg := hw.Config(4, true)
	prog := apps.FFT(apps.FFTOpts{LogN: 12, Procs: 4, TLBBlocked: true})
	res, err := machine.Run(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	if res.Instructions < 100_000 {
		t.Fatalf("suspiciously few instructions: %d", res.Instructions)
	}
	t.Logf("fft on 4p HW: %v", res)
}

func TestRadixSortsCorrectly(t *testing.T) {
	cfg := simpleConfig(4)
	prog := apps.Radix(apps.RadixOpts{Keys: 1 << 12, Radix: 32, Procs: 4, Verify: true})
	if _, err := machine.Run(cfg, prog); err != nil {
		t.Fatal(err)
	}
}

func TestThreadMismatchRejected(t *testing.T) {
	_, err := machine.Run(simpleConfig(2), trivialProgram(4, 1024))
	if err == nil {
		t.Fatal("expected thread/processor mismatch error")
	}
}

func TestSpeedupDirection(t *testing.T) {
	// More processors must not make the parallel section slower for an
	// embarrassingly parallel kernel.
	prog1 := trivialProgram(1, 1<<15)
	res1, err := machine.Run(simpleConfig(1), prog1)
	if err != nil {
		t.Fatal(err)
	}
	prog4 := trivialProgram(4, 1<<15)
	res4, err := machine.Run(simpleConfig(4), prog4)
	if err != nil {
		t.Fatal(err)
	}
	if res4.Exec >= res1.Exec {
		t.Fatalf("no speedup: 1p=%d ticks, 4p=%d ticks", res1.Exec, res4.Exec)
	}
}
