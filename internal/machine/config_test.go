package machine

import (
	"testing"

	"flashsim/internal/cache"
)

func TestValidateCatchesBadConfigs(t *testing.T) {
	good := Base(4, true)
	good.Name = "ok"
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Procs = 0
	if bad.Validate() == nil {
		t.Error("zero procs accepted")
	}
	bad = good
	bad.ClockMHz = 133
	if bad.Validate() == nil {
		t.Error("non-divisor clock accepted")
	}
	bad = good
	bad.L1D = cache.Config{Name: "L1D", Size: 1000, LineSize: 32, Ways: 2}
	if bad.Validate() == nil {
		t.Error("bad L1 accepted")
	}
	bad = good
	bad.L1D.LineSize = 256 // larger than the L2 line
	bad.L1D.Size = 8 << 10
	if bad.Validate() == nil {
		t.Error("L1 line larger than L2 line accepted")
	}
}

func TestColors(t *testing.T) {
	cfg := Base(1, true) // 128 KB, 2-way: way size 64 KB = 16 pages
	if cfg.Colors() != 16 {
		t.Fatalf("scaled colors %d, want 16", cfg.Colors())
	}
	full := Base(1, false) // 2 MB, 2-way: way size 1 MB = 256 pages
	if full.Colors() != 256 {
		t.Fatalf("full colors %d, want 256", full.Colors())
	}
}

func TestKindStrings(t *testing.T) {
	if CPUMipsy.String() != "mipsy" || CPUMXS.String() != "mxs" {
		t.Error("cpu kinds")
	}
	if MemFlashLite.String() != "flashlite" || MemNUMA.String() != "numa" {
		t.Error("mem kinds")
	}
}

func TestCacheGeometries(t *testing.T) {
	l1, l2 := FullScaleCaches()
	if l1.Size != 32<<10 || l2.Size != 2<<20 || l2.LineSize != 128 {
		t.Error("full scale")
	}
	s1, s2 := ScaledCaches()
	if s1.Size*16 != l1.Size*4 || s2.Size*16 != l2.Size {
		t.Errorf("scaled geometry: L1 %d L2 %d", s1.Size, s2.Size)
	}
	for _, c := range []cache.Config{l1, l2, s1, s2} {
		if err := c.Validate(); err != nil {
			t.Error(err)
		}
	}
}
