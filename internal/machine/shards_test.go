package machine_test

import (
	"bytes"
	"reflect"
	"testing"

	"flashsim/internal/apps"
	"flashsim/internal/emitter"
	"flashsim/internal/machine"
	"flashsim/internal/memsys"
	"flashsim/internal/obs"
	"flashsim/internal/osmodel"
	"flashsim/internal/trace"
)

// shardMatrix is the shard counts every workload must reproduce the
// serial Result under: a proper divisor, a count that leaves uneven
// shards (3 over 8 nodes), and the fully sharded machine.
var shardMatrix = []int{2, 3, 8}

// shardConfig is the determinism matrix's base machine: 8 processors so
// every matrix shard count exercises a real partition, FlashLite with
// true timing so the memory system is the contended one.
func shardConfig(name string, os osmodel.Config) machine.Config {
	cfg := machine.Base(8, true)
	cfg.Name = name
	cfg.ClockMHz = 150
	cfg.OS = os
	cfg.Mem = machine.MemFlashLite
	cfg.FlashTiming = memsys.TrueTiming()
	return cfg
}

// TestShardDeterminismMatrix runs every workload in internal/apps at
// every matrix shard count and requires the full Result — timing,
// per-node counters, directory cases, metrics snapshot — to be
// bit-identical to the serial (Shards=1) run. This is the tentpole
// invariant of the windowed engine: shard count is an execution knob,
// never a model parameter. The test runs under -race in CI, so it also
// proves the parallel phases are data-race-free.
func TestShardDeterminismMatrix(t *testing.T) {
	workloads := []struct {
		name string
		prog func() emitter.Program
		mut  func(*machine.Config)
	}{
		{"fft", func() emitter.Program {
			return apps.FFT(apps.FFTOpts{LogN: 9, Procs: 8, TLBBlocked: true, Prefetch: true})
		}, nil},
		{"lu", func() emitter.Program {
			return apps.LU(apps.LUOpts{N: 48, Block: 16, Procs: 8})
		}, nil},
		{"ocean", func() emitter.Program {
			return apps.Ocean(apps.OceanOpts{N: 32, Grids: 4, Iters: 2, Procs: 8})
		}, nil},
		{"radix", func() emitter.Program {
			return apps.Radix(apps.RadixOpts{Keys: 1 << 12, Radix: 32, Procs: 8})
		}, nil},
		{"cachemgmt", func() emitter.Program {
			return apps.CacheMgmt(apps.CacheMgmtOpts{Lines: 64, Rounds: 2, Procs: 8})
		}, nil},
		// CPU-detail rungs: the suspend/resume protocol must be
		// shard-invariant on every core model, not just classic Mipsy.
		{"fft-mxs", func() emitter.Program {
			return apps.FFT(apps.FFTOpts{LogN: 9, Procs: 8, TLBBlocked: true})
		}, func(c *machine.Config) { c.CPU = machine.CPUMXS }},
		{"lu-mipsy-lat", func() emitter.Program {
			return apps.LU(apps.LUOpts{N: 48, Block: 16, Procs: 8})
		}, func(c *machine.Config) { c.ModelInstrLatency = true }},
		// Sampled execution: window gates and warm fast-forward run
		// through the same deferred-op machinery.
		{"fft-sampled", func() emitter.Program {
			return apps.FFT(apps.FFTOpts{LogN: 9, Procs: 8, TLBBlocked: true})
		}, func(c *machine.Config) {
			c.Sampling = machine.SamplingConfig{Enabled: true, Period: 2000, Window: 500, Warmup: 100}
		}},
	}
	for _, wl := range workloads {
		wl := wl
		t.Run(wl.name, func(t *testing.T) {
			t.Parallel()
			cfg := shardConfig("shard-matrix", osmodel.DefaultSimOS())
			if wl.mut != nil {
				wl.mut(&cfg)
			}
			cfg.Shards = 1
			want, err := machine.Run(cfg, wl.prog())
			if err != nil {
				t.Fatal(err)
			}
			for _, s := range shardMatrix {
				cfg.Shards = s
				got, err := machine.Run(cfg, wl.prog())
				if err != nil {
					t.Fatalf("shards=%d: %v", s, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("shards=%d diverged from serial:\ngot:  %+v\nwant: %+v", s, summarize(got), summarize(want))
				}
			}
		})
	}
}

// TestShardDeterminismReplay covers the trace-driven mode: a trace
// captured at one shard count must replay bit-identically at every
// other.
func TestShardDeterminismReplay(t *testing.T) {
	cfg := shardConfig("shard-replay", osmodel.DefaultSimOS())
	prog := func() emitter.Program {
		return apps.FFT(apps.FFTOpts{LogN: 9, Procs: 8, TLBBlocked: true})
	}
	var buf bytes.Buffer
	tw, err := trace.NewWriter(&buf, trace.Meta{Workload: "fft", Threads: 8})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Shards = 4
	if _, err := machine.RunCapture(cfg, prog(), tw); err != nil {
		t.Fatal(err)
	}
	tr, err := trace.Decode(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	img, err := machine.PrepareReplay(tr)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Shards = 1
	want, err := machine.RunReplay(cfg, img)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range shardMatrix {
		cfg.Shards = s
		got, err := machine.RunReplay(cfg, img)
		if err != nil {
			t.Fatalf("shards=%d: %v", s, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("replay shards=%d diverged from serial:\ngot:  %+v\nwant: %+v", s, summarize(got), summarize(want))
		}
	}
}

// TestShardMetricsByteStable pins the serialized observability
// artifacts across shard counts: a sharded run's metrics must produce
// byte-identical -metrics-out JSON and Prometheus exposition text to
// the serial run's. DeepEqual on Result already implies equal values;
// this additionally guards the serialization path (map ordering,
// shard-local counter merge order) against nondeterminism.
func TestShardMetricsByteStable(t *testing.T) {
	cfg := shardConfig("shard-metrics", osmodel.DefaultSimOS())
	prog := func() emitter.Program {
		return apps.FFT(apps.FFTOpts{LogN: 9, Procs: 8, TLBBlocked: true})
	}
	render := func(shards int) (jsonOut, promOut []byte) {
		cfg.Shards = shards
		res, err := machine.Run(cfg, prog())
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		c := obs.NewCollector()
		c.Record(res.Metrics)
		rep := c.Snapshot()
		jsonOut, err = rep.JSON()
		if err != nil {
			t.Fatalf("shards=%d: JSON: %v", shards, err)
		}
		var buf bytes.Buffer
		if err := rep.WritePrometheus(&buf); err != nil {
			t.Fatalf("shards=%d: prometheus: %v", shards, err)
		}
		return jsonOut, buf.Bytes()
	}
	wantJSON, wantProm := render(1)
	for _, s := range shardMatrix {
		gotJSON, gotProm := render(s)
		if !bytes.Equal(gotJSON, wantJSON) {
			t.Errorf("shards=%d: metrics JSON diverged from serial:\ngot:\n%s\nwant:\n%s", s, gotJSON, wantJSON)
		}
		if !bytes.Equal(gotProm, wantProm) {
			t.Errorf("shards=%d: prometheus output diverged from serial:\ngot:\n%s\nwant:\n%s", s, gotProm, wantProm)
		}
	}
}

// TestShardsClampAndValidate pins the Shards knob's edge behavior:
// zero and negative mean serial, counts above Procs clamp.
func TestShardsClampAndValidate(t *testing.T) {
	cfg := shardConfig("shard-clamp", osmodel.DefaultSolo())
	prog := func() emitter.Program {
		return apps.CacheMgmt(apps.CacheMgmtOpts{Lines: 32, Rounds: 1, Procs: 8})
	}
	cfg.Shards = 0
	want, err := machine.Run(cfg, prog())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []int{-3, 1, 64} {
		cfg.Shards = s
		got, err := machine.Run(cfg, prog())
		if err != nil {
			t.Fatalf("shards=%d: %v", s, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("shards=%d diverged from serial", s)
		}
	}
}

// summarize keeps divergence output readable: the headline counters,
// not the whole nested Result.
func summarize(r machine.Result) string {
	return r.String()
}
