// Package machine composes a complete simulated FLASH system: per-node
// processor model, cache hierarchy, TLB, OS model, and a shared memory
// system (FlashLite or NUMA), driven by a deterministic event loop with
// semantic barriers and locks.
//
// A machine.Config is "a simulator" in the paper's sense: Solo-Mipsy at
// 225 MHz, SimOS-MXS, the hardware itself — all are Configs differing in
// processor model, OS model, memory-system model, and fidelity knobs.
package machine

import (
	"fmt"

	"flashsim/internal/cache"
	"flashsim/internal/cpu/mxs"
	"flashsim/internal/magic"
	"flashsim/internal/memsys"
	"flashsim/internal/osmodel"
)

// CPUKind selects the processor model.
type CPUKind uint8

const (
	// CPUMipsy is the single-issue in-order model.
	CPUMipsy CPUKind = iota
	// CPUMXS is the four-issue out-of-order model.
	CPUMXS
)

// String names the CPU kind.
func (k CPUKind) String() string {
	if k == CPUMipsy {
		return "mipsy"
	}
	return "mxs"
}

// MemKind selects the memory-system simulator.
type MemKind uint8

const (
	// MemFlashLite is the detailed model.
	MemFlashLite MemKind = iota
	// MemNUMA is the generic latency-only model.
	MemNUMA
)

// String names the memory-system kind.
func (k MemKind) String() string {
	if k == MemFlashLite {
		return "flashlite"
	}
	return "numa"
}

// Config fully describes one simulator (or the hardware reference).
type Config struct {
	// Name labels the configuration in reports ("SimOS-Mipsy 225MHz").
	Name string
	// Procs is the number of processors (= nodes = program threads).
	Procs int
	// CPU selects the processor model; ClockMHz its clock (must divide
	// 900: 150, 225, 300 in the study).
	CPU      CPUKind
	ClockMHz int
	// OS selects and parameterizes the OS model.
	OS osmodel.Config
	// Mem selects the memory-system simulator.
	Mem MemKind
	// FlashTiming parameterizes FlashLite (ignored for NUMA).
	FlashTiming memsys.FlashTiming
	// NUMA parameterizes the NUMA model (nil = defaults).
	NUMA *memsys.NUMAConfig
	// MagicTable overrides protocol-processor occupancies (nil = RTL).
	MagicTable *magic.OccupancyTable

	// L1D and L2 are the data-cache geometries.
	L1D cache.Config
	L2  cache.Config
	// L1HitCycles, L2HitCycles, RestartCycles are processor-side
	// latencies in CPU cycles. RestartCycles is the core-to-pins
	// restart delay the paper tuned with snbench's restart-time test.
	L1HitCycles   uint32
	L2HitCycles   uint32
	RestartCycles uint32
	// WriteBufferEntries and MSHRCount size the store buffer (4) and
	// outstanding-miss file (4, Table 1).
	WriteBufferEntries int
	MSHRCount          int
	// ModelL2InterfaceOccupancy enables the secondary-cache interface
	// occupancy effect; L2TransferNS is the line-transfer occupancy.
	ModelL2InterfaceOccupancy bool
	L2TransferNS              float64

	// ModelInstrLatency enables functional-unit latencies in Mipsy.
	ModelInstrLatency bool
	// MXS carries the out-of-order fidelity knobs and historical bugs.
	MXS mxs.Fidelity

	// Sampling configures sampled simulation: functional fast-forward
	// alternating with detailed windows on an instruction-count
	// schedule. The zero value (disabled) is full detail.
	Sampling SamplingConfig

	// JitterPct adds seeded run-to-run noise to the final time (the
	// hardware reference uses ~0.5%; simulators use 0).
	JitterPct float64
	// Seed perturbs jitter and branch-outcome PRNGs.
	Seed uint64
	// Quantum bounds instructions per scheduling slice.
	Quantum int

	// CheckCoherence verifies the directory's protocol invariants after
	// every operation (see proto/invariants.go). A verification flag,
	// not a timing parameter: it cannot change any result, so it is
	// deliberately excluded from the param registry and the run
	// fingerprints.
	CheckCoherence bool

	// Shards is the number of worker goroutines the windowed engine
	// partitions the nodes across (0 or 1 = run the window loop on the
	// calling goroutine). An execution knob like CheckCoherence, not a
	// model parameter: the engine is bit-identical at every shard count,
	// so Shards is deliberately excluded from the param registry and the
	// run fingerprints — the same job spec at different shard counts
	// memoizes to the same result. Values above Procs are clamped.
	Shards int
}

// SamplingConfig parameterizes sampled simulation. When Enabled, each
// node's instruction stream is split into repeating periods of Period
// instructions: the first Window instructions of each period execute
// on the detailed core model, the rest fast-forward functionally at a
// flat one cycle per instruction with no core or memory timing. Phase
// shifts the first window into the stream (Phase functional
// instructions run before detailed execution starts), which lets
// repeated runs sample different program regions deterministically.
//
// Warmup marks the leading instructions of every detailed window as
// state-settling time: they execute at full detail (warming MSHRs,
// write buffers, and in-flight timing state) but are accounted
// separately in Result.Sampling so error analysis can distinguish
// settled measurement from warmup.
//
// ColdState selects the cold-warmup variant: when false (the default
// policy), functional fast-forward still performs every translation,
// cache access, and directory transition — so TLBs, both cache levels,
// and the directory stay warm across skipped regions — and only the
// timing is elided. When true, fast-forwarded instructions touch no
// machine state at all, and each detailed window starts against
// whatever state the previous window left: the measurable cost of cold
// warmup, one of the error sources the sampling experiment reports.
type SamplingConfig struct {
	Enabled bool
	// Period is the schedule's cycle length in instructions.
	Period uint64
	// Window is the detailed-instruction count per period (includes
	// Warmup). Must satisfy 0 < Window <= Period.
	Window uint64
	// Warmup is the leading portion of each window accounted as
	// warmup. Must satisfy Warmup <= Window.
	Warmup uint64
	// Phase is the functional-instruction offset of the first window.
	Phase uint64
	// ColdState disables state warming during fast-forward.
	ColdState bool
}

// DefaultSampling returns the default sampled-simulation schedule:
// 2k-instruction detailed windows (the leading quarter warmup) every
// 20k instructions, warm-state fast-forward.
func DefaultSampling() SamplingConfig {
	return SamplingConfig{
		Enabled: true,
		Period:  20_000,
		Window:  2_000,
		Warmup:  500,
	}
}

// validate checks the sampling schedule.
func (s SamplingConfig) validate(name string) error {
	if !s.Enabled {
		return nil
	}
	if s.Period == 0 {
		return fmt.Errorf("machine %q: sampling period must be positive", name)
	}
	if s.Window == 0 || s.Window > s.Period {
		return fmt.Errorf("machine %q: sampling window %d outside (0, period %d]", name, s.Window, s.Period)
	}
	if s.Warmup > s.Window {
		return fmt.Errorf("machine %q: sampling warmup %d exceeds window %d", name, s.Warmup, s.Window)
	}
	return nil
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Procs <= 0 {
		return fmt.Errorf("machine %q: Procs must be positive", c.Name)
	}
	if err := c.Sampling.validate(c.Name); err != nil {
		return err
	}
	if c.ClockMHz <= 0 || 900%c.ClockMHz != 0 {
		return fmt.Errorf("machine %q: clock %d MHz does not divide 900", c.Name, c.ClockMHz)
	}
	if err := c.L1D.Validate(); err != nil {
		return fmt.Errorf("machine %q: %w", c.Name, err)
	}
	if err := c.L2.Validate(); err != nil {
		return fmt.Errorf("machine %q: %w", c.Name, err)
	}
	if c.L2.LineSize < c.L1D.LineSize {
		return fmt.Errorf("machine %q: L2 line (%d) smaller than L1 line (%d)", c.Name, c.L2.LineSize, c.L1D.LineSize)
	}
	return nil
}

// Colors returns the number of page colors of the secondary cache.
func (c Config) Colors() uint32 { return uint32(c.L2.WaySize() / 4096) }

// FullScaleCaches returns the Table 1 cache geometry: 32 KB L1 data
// cache with 32-byte lines and a 2 MB secondary cache with 128-byte
// lines (both 2-way here).
func FullScaleCaches() (l1d, l2 cache.Config) {
	l1d = cache.Config{Name: "L1D", Size: 32 << 10, LineSize: 32, Ways: 2}
	l2 = cache.Config{Name: "L2", Size: 2 << 20, LineSize: 128, Ways: 2}
	return
}

// ScaledCaches returns the 1/16-scale geometry used for laptop-scale
// experiment runs (problem sizes are scaled by the same factor so
// working-set/cache ratios are preserved; see EXPERIMENTS.md).
func ScaledCaches() (l1d, l2 cache.Config) {
	l1d = cache.Config{Name: "L1D", Size: 8 << 10, LineSize: 32, Ways: 2}
	l2 = cache.Config{Name: "L2", Size: 128 << 10, LineSize: 128, Ways: 2}
	return
}

// Base returns a Config with the shared FLASH parameters filled in
// (caches, buffers, processor-side latencies) and no simulator identity:
// callers set CPU/OS/Mem/fidelity. scaled selects ScaledCaches.
func Base(procs int, scaled bool) Config {
	l1d, l2 := FullScaleCaches()
	if scaled {
		l1d, l2 = ScaledCaches()
	}
	return Config{
		Procs:              procs,
		ClockMHz:           150,
		L1D:                l1d,
		L2:                 l2,
		L1HitCycles:        1,
		L2HitCycles:        10,
		RestartCycles:      2,
		WriteBufferEntries: 4,
		MSHRCount:          4,
		L2TransferNS:       150,
		FlashTiming:        memsys.TrueTiming(),
		Quantum:            200,
	}
}
