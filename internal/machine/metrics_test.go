package machine_test

import (
	"encoding/json"
	"reflect"
	"testing"

	"flashsim/internal/hw"
	"flashsim/internal/machine"
)

// simosConfig is simpleConfig's SimOS sibling (hardware reference): TLB,
// coloring, and kernel costs enabled, so every counter group is live.
func simosConfig(procs int) machine.Config {
	cfg := hw.Config(procs, true)
	cfg.Name = "test-hw"
	return cfg
}

func TestRunMetricsPopulated(t *testing.T) {
	res, err := machine.Run(simosConfig(4), trivialProgram(4, 1<<15))
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	if m.Config != "test-hw" || m.Workload == "" || m.Procs != 4 || m.Runs != 1 {
		t.Fatalf("labels wrong: %+v", m)
	}
	if m.Instructions != res.Instructions || m.ExecTicks != uint64(res.Exec) || m.TotalTicks != uint64(res.Total) {
		t.Fatalf("headline numbers disagree with Result: %+v vs %v", m, res)
	}
	if m.Queue.Scheduled == 0 || m.Queue.Fired == 0 || m.Queue.Recycled == 0 {
		t.Fatalf("queue counters empty: %+v", m.Queue)
	}
	if m.Queue.Fired > m.Queue.Scheduled {
		t.Fatalf("fired %d > scheduled %d", m.Queue.Fired, m.Queue.Scheduled)
	}
	if m.Emitter.Instructions == 0 || m.Emitter.Batches == 0 {
		t.Fatalf("emitter counters empty: %+v", m.Emitter)
	}
	if m.L1.Hits == 0 || m.L2.Misses == 0 {
		t.Fatalf("cache counters empty: L1=%+v L2=%+v", m.L1, m.L2)
	}
	// The working set (32K doubles = 64 pages/proc region) overflows a
	// 64-entry TLB across the barrier phases.
	if m.TLB.Misses == 0 || m.TLB.Hits == 0 {
		t.Fatalf("TLB counters empty under SimOS: %+v", m.TLB)
	}
	// The write-allocate pattern drives the directory through Writes
	// (reads of freshly written lines hit in cache, so Dir.Reads may
	// stay zero for this kernel).
	if m.Dir.Writes == 0 || m.Dir.Transitions == 0 {
		t.Fatalf("directory counters empty: %+v", m.Dir)
	}
	if len(m.Dir.Cases) == 0 {
		t.Fatalf("no protocol cases recorded: %+v", m.Dir)
	}
	if m.Net.Messages == 0 || m.Net.Hops == 0 {
		t.Fatalf("network counters empty: %+v", m.Net)
	}
	if m.OS.PagesMapped == 0 || m.OS.ColdFaults == 0 {
		t.Fatalf("OS counters empty: %+v", m.OS)
	}
}

func TestRunMetricsZeroGroupsUnderSolo(t *testing.T) {
	res, err := machine.Run(simpleConfig(2), trivialProgram(2, 4096))
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	// Solo has no TLB and free backdoor syscalls; those groups stay zero.
	if m.TLB.Hits != 0 || m.TLB.Misses != 0 {
		t.Fatalf("Solo model reported TLB traffic: %+v", m.TLB)
	}
	if m.OS.ColdFaults != 0 || m.OS.Syscalls != 0 {
		t.Fatalf("Solo model charged kernel events: %+v", m.OS)
	}
	if m.OS.PagesMapped == 0 {
		t.Fatalf("pages mapped must be counted under Solo too: %+v", m.OS)
	}
}

// TestRunMetricsDeterministic pins the metrics block into the
// determinism contract: two identical runs must produce bit-identical
// metrics, or memoized results would differ from fresh ones.
func TestRunMetricsDeterministic(t *testing.T) {
	cfg := simosConfig(4)
	a, err := machine.Run(cfg, trivialProgram(4, 1<<14))
	if err != nil {
		t.Fatal(err)
	}
	b, err := machine.Run(cfg, trivialProgram(4, 1<<14))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Metrics, b.Metrics) {
		t.Fatalf("metrics differ across identical runs:\n%+v\n%+v", a.Metrics, b.Metrics)
	}
}

// TestRunMetricsSurvivesJSON pins the store round trip: a Result
// marshaled and unmarshaled (what runner.Store does on disk) keeps its
// metrics intact.
func TestRunMetricsSurvivesJSON(t *testing.T) {
	res, err := machine.Run(simosConfig(2), trivialProgram(2, 8192))
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var back machine.Result
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Metrics, back.Metrics) {
		t.Fatalf("metrics lost in JSON round trip:\n%+v\n%+v", res.Metrics, back.Metrics)
	}
}

// TestCheckCoherenceCleanRun exercises the invariant checker through a
// whole machine run: real multiprocessor traffic with per-operation
// verification enabled must complete without a violation panic.
func TestCheckCoherenceCleanRun(t *testing.T) {
	cfg := simosConfig(4)
	cfg.CheckCoherence = true
	res, err := machine.Run(cfg, trivialProgram(4, 1<<14))
	if err != nil {
		t.Fatal(err)
	}
	if res.Dir.Writes == 0 || res.Dir.Transitions == 0 {
		t.Fatalf("invariant-checked run saw no directory traffic: %+v", res.Dir)
	}
}
