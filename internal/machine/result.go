package machine

import (
	"fmt"

	"flashsim/internal/cache"
	"flashsim/internal/cpu"
	"flashsim/internal/obs"
	"flashsim/internal/proto"
	"flashsim/internal/sim"
)

// Result is the outcome of one machine run.
type Result struct {
	// Config names the simulator that produced the result.
	Config string
	// Procs is the processor count.
	Procs int

	// Exec is the timed parallel section (between the releases of
	// BarrierStart and BarrierEnd), with jitter applied; Total is the
	// full run.
	Exec  sim.Ticks
	Total sim.Ticks

	// Instructions is the total committed instruction count.
	Instructions uint64
	// PerProc carries each core's counters.
	PerProc []cpu.Stats
	// Ports carries each node's memory-path counters.
	Ports []PortStats

	// L1 and L2 aggregate cache statistics across nodes.
	L1 cache.Stats
	L2 cache.Stats
	// TLBMisses aggregates TLB refills (zero under Solo).
	TLBMisses uint64
	// PagesMapped is the page-table population at the end of the run.
	PagesMapped int

	// CaseCounts aggregates protocol cases across nodes.
	CaseCounts [proto.NumCases]uint64
	// Dir is the directory's view of protocol activity.
	Dir proto.DirStats

	// BarrierReleases records the release time(s) of every barrier id.
	BarrierReleases map[uint32][]sim.Ticks

	// Sampled reports whether the run used a sampling schedule;
	// Sampling carries its window accounting (aggregated over nodes).
	Sampled  bool
	Sampling SamplingStats

	// Metrics is the per-run observability snapshot (internal/obs). It
	// is part of the Result, so memoized results replay their metrics
	// from the store exactly as a fresh run would report them.
	Metrics obs.RunMetrics
}

// ExecSeconds returns the parallel-section time in seconds.
func (r Result) ExecSeconds() float64 { return float64(r.Exec) / sim.TickHz }

// ExecNS returns the parallel-section time in nanoseconds.
func (r Result) ExecNS() float64 { return sim.ToNS(r.Exec) }

// L1MissRate returns misses/(hits+misses) for the L1 data caches.
func (r Result) L1MissRate() float64 { return missRate(r.L1) }

// L2MissRate returns misses/(hits+misses) for the secondary caches.
func (r Result) L2MissRate() float64 { return missRate(r.L2) }

func missRate(s cache.Stats) float64 {
	tot := s.Hits + s.Misses
	if tot == 0 {
		return 0
	}
	return float64(s.Misses) / float64(tot)
}

// String summarizes the result.
func (r Result) String() string {
	return fmt.Sprintf("%s p=%d exec=%.3fms instr=%d l2miss=%.2f%% tlbmiss=%d",
		r.Config, r.Procs, r.ExecSeconds()*1e3, r.Instructions, 100*r.L2MissRate(), r.TLBMisses)
}

// collect assembles the Result after the event loop drains. em is the
// instruction-stream accounting: the drained Streams counters for an
// execution-driven run, or the replay image's recorded equivalents.
func (m *Machine) collect(em obs.EmitterCounters) Result {
	r := Result{
		Config:          m.cfg.Name,
		Procs:           m.cfg.Procs,
		PerProc:         make([]cpu.Stats, len(m.nodes)),
		Ports:           make([]PortStats, len(m.nodes)),
		BarrierReleases: m.barrierRel,
		PagesMapped:     m.os.PageTable().Mapped(),
		TLBMisses:       m.os.TLBMisses(),
		Dir:             m.mem.Directory().Stats(),
	}
	for i, n := range m.nodes {
		r.PerProc[i] = n.core.Stats()
		if sc, ok := n.core.(*sampledCPU); ok {
			r.Sampled = true
			r.Sampling.add(sc.sampling())
		}
		r.Ports[i] = n.port.stats
		_, r.Ports[i].WBStallTicks = n.port.wb.Stalls()
		_, r.Ports[i].MSHRStallTicks = n.port.mshr.Stalls()
		r.Instructions += r.PerProc[i].Instructions
		addCache(&r.L1, n.port.l1.Stats())
		addCache(&r.L2, n.port.l2.Stats())
		for c := 0; c < int(proto.NumCases); c++ {
			r.CaseCounts[c] += n.port.stats.CaseCounts[c]
		}
		if ft := m.finishTimes[i]; ft > r.Total {
			r.Total = ft
		}
	}
	r.Exec = r.Total
	if starts, ok := m.barrierRel[BarrierStart]; ok && len(starts) > 0 {
		if ends, ok2 := m.barrierRel[BarrierEnd]; ok2 && len(ends) > 0 {
			start := starts[0]
			end := ends[len(ends)-1]
			if end > start {
				r.Exec = end - start
			}
		}
	}
	if m.cfg.JitterPct != 0 {
		r.Exec = jitter(r.Exec, m.cfg.JitterPct, m.cfg.Seed)
	}
	r.Metrics = m.buildMetrics(&r, em)
	return r
}

func addCache(dst *cache.Stats, s cache.Stats) {
	dst.Hits += s.Hits
	dst.Misses += s.Misses
	dst.Evictions += s.Evictions
	dst.Writebacks += s.Writebacks
	dst.Invals += s.Invals
	dst.Interventio += s.Interventio
}

// jitter perturbs t by a deterministic pseudo-random factor in
// [1-pct/100, 1+pct/100].
func jitter(t sim.Ticks, pct float64, seed uint64) sim.Ticks {
	x := seed*0x9E3779B97F4A7C15 + 0xBF58476D1CE4E5B9
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	u := float64(x>>11) / float64(1<<53) // [0,1)
	f := 1 + (pct/100)*(2*u-1)
	return sim.Ticks(float64(t) * f)
}
