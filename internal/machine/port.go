package machine

import (
	"flashsim/internal/cache"
	"flashsim/internal/cpu"
	"flashsim/internal/isa"
	"flashsim/internal/osmodel"
	"flashsim/internal/proto"
	"flashsim/internal/sim"
	"flashsim/internal/vm"
)

// PortStats counts per-node memory-path events.
type PortStats struct {
	Loads, Stores   uint64
	L1Hits, L2Hits  uint64
	MemReads        uint64
	MemWrites       uint64
	Upgrades        uint64
	Prefetches      uint64
	PrefetchDrops   uint64 // dropped on TLB miss (non-binding)
	TLBPenaltyTicks sim.Ticks
	WBStallTicks    sim.Ticks
	MSHRStallTicks  sim.Ticks
	ReadLatTicks    sim.Ticks // sum of memsys read latencies (debug)
	WriteLatTicks   sim.Ticks // sum of memsys write latencies (debug)
	CaseCounts      [proto.NumCases]uint64
}

// memPort is a node's data-access path: TLB/OS translation, L1, L2,
// write buffer, MSHRs, L2 interface, then the shared memory system. It
// implements cpu.Port.
type memPort struct {
	m     *Machine
	node  int
	clock sim.Clock
	l1    *cache.Cache
	l2    *cache.Cache
	wb    *cache.WriteBuffer
	mshr  *cache.MSHRs
	l2if  *cache.L2Interface
	stats PortStats
}

func (p *memPort) cyc(n uint32) sim.Ticks { return p.clock.Cycles(uint64(n)) }

// fillL1 inserts the L1 line for pa after a fill from L2 or memory.
// exclusive selects whether the L1 copy carries write permission.
func (p *memPort) fillL1(pa uint64, exclusive bool) {
	st := cache.Shared
	if exclusive {
		st = cache.Exclusive
	}
	v := p.l1.Insert(pa, st)
	if v.Valid && v.Dirty {
		// Dirty L1 victim folds into the (inclusive) L2 copy.
		p.l2.MarkDirty(v.Addr)
	}
}

// evictL2 handles an L2 victim: enforce inclusion in L1, write back
// dirty data, or send a replacement hint for clean-exclusive lines so
// the directory's owner records never go stale.
func (p *memPort) evictL2(t sim.Ticks, v cache.Victim) {
	if !v.Valid {
		return
	}
	dirty := v.Dirty
	for a := v.Addr; a < v.Addr+p.l2.Config().LineSize; a += p.l1.Config().LineSize {
		if p.l1.Invalidate(a) == cache.Modified {
			dirty = true
		}
	}
	switch {
	case dirty:
		p.m.mem.Writeback(t, p.node, v.Addr)
	case v.State == cache.Exclusive:
		p.m.mem.Replace(t, p.node, v.Addr)
	}
}

// Load implements cpu.Port.
func (p *memPort) Load(t sim.Ticks, va uint64, size uint32) cpu.MemInfo {
	p.stats.Loads++
	tr := p.m.os.Translate(p.node, va)
	if tr.PenaltyCycles > 0 {
		d := p.cyc(tr.PenaltyCycles)
		p.stats.TLBPenaltyTicks += d
		t += d
	}
	pa := tr.PA
	if _, hit := p.l1.Access(pa, false); hit {
		p.stats.L1Hits++
		return cpu.MemInfo{Done: t + p.cyc(p.m.cfg.L1HitCycles), L1Hit: true, TLBMiss: tr.TLBMiss}
	}
	t2 := t + p.cyc(p.m.cfg.L1HitCycles) // L1 miss detection
	t2 = p.l2if.AcquireForTagCheck(t2)
	if st2, hit2 := p.l2.Access(pa, false); hit2 {
		p.stats.L2Hits++
		done := t2 + p.cyc(p.m.cfg.L2HitCycles)
		p.fillL1(pa, st2 == cache.Modified || st2 == cache.Exclusive)
		return cpu.MemInfo{Done: done, L2Hit: true, TLBMiss: tr.TLBMiss}
	}
	// L2 miss: the off-chip tag check itself costs L2HitCycles before
	// the request can leave the chip.
	t2 += p.cyc(p.m.cfg.L2HitCycles)
	line := p.l2.Config().LineAddr(pa)
	if mdone, ok := p.mshr.Lookup(line, t2); ok {
		done := mdone + p.cyc(p.m.cfg.RestartCycles)
		if done < t2 {
			done = t2
		}
		p.fillL1(pa, false)
		return cpu.MemInfo{Done: done, TLBMiss: tr.TLBMiss, WentToMemory: true, IssuedAt: t2}
	}
	issueT := p.mshr.Reserve(line, t2)
	res := p.m.mem.Read(issueT, p.node, line)
	p.stats.MemReads++
	p.stats.CaseCounts[res.Case]++
	p.stats.ReadLatTicks += res.Done - issueT
	// Critical-word-first: the processor restarts as the line transfer
	// begins; the external interface stays busy for the whole line.
	done := p.l2if.AcquireForRefill(res.Done)
	done += p.cyc(p.m.cfg.RestartCycles)
	p.mshr.Complete(line, done)
	st := cache.Shared
	if res.Exclusive {
		st = cache.Exclusive
	}
	p.evictL2(done, p.l2.Insert(line, st))
	p.fillL1(pa, res.Exclusive)
	return cpu.MemInfo{Done: done, TLBMiss: tr.TLBMiss, WentToMemory: true, IssuedAt: issueT}
}

// Store implements cpu.Port.
func (p *memPort) Store(t sim.Ticks, va uint64, size uint32) cpu.MemInfo {
	p.stats.Stores++
	tr := p.m.os.Translate(p.node, va)
	if tr.PenaltyCycles > 0 {
		d := p.cyc(tr.PenaltyCycles)
		p.stats.TLBPenaltyTicks += d
		t += d
	}
	pa := tr.PA
	if st, hit := p.l1.Access(pa, true); hit {
		p.stats.L1Hits++
		if st == cache.Exclusive {
			// First write to an exclusively fetched line: propagate
			// dirtiness to the inclusive L2 copy.
			p.l2.MarkDirty(pa)
		}
		return cpu.MemInfo{Done: t + p.cyc(p.m.cfg.L1HitCycles), L1Hit: true, TLBMiss: tr.TLBMiss}
	}
	t2 := t + p.cyc(p.m.cfg.L1HitCycles)
	t2 = p.l2if.AcquireForTagCheck(t2)
	if st2, hit2 := p.l2.Access(pa, true); hit2 {
		p.stats.L2Hits++
		done := t2 + p.cyc(p.m.cfg.L2HitCycles)
		_ = st2
		p.fillL1(pa, true)
		p.l1.MarkDirty(pa)
		return cpu.MemInfo{Done: done, L2Hit: true, TLBMiss: tr.TLBMiss}
	}
	// L2 write miss or upgrade: fetch/own through the memory system,
	// but let the processor proceed through the write buffer.
	t2 += p.cyc(p.m.cfg.L2HitCycles)
	line := p.l2.Config().LineAddr(pa)
	var mdone sim.Ticks
	issuedAt := t2
	if md, ok := p.mshr.Lookup(line, t2); ok {
		mdone = md
	} else {
		issueT := p.mshr.Reserve(line, t2)
		issuedAt = issueT
		res := p.m.mem.Write(issueT, p.node, line)
		p.stats.WriteLatTicks += res.Done - issueT
		p.stats.MemWrites++
		p.stats.CaseCounts[res.Case]++
		if res.Case == proto.Upgrade {
			p.stats.Upgrades++
		}
		mdone = p.l2if.AcquireForRefill(res.Done)
		p.mshr.Complete(line, mdone)
	}
	p.evictL2(mdone, p.l2.Insert(line, cache.Modified))
	p.fillL1(pa, true)
	p.l1.MarkDirty(pa)
	proceed := p.wb.Push(t2, mdone)
	return cpu.MemInfo{Done: proceed, TLBMiss: tr.TLBMiss, WentToMemory: true, IssuedAt: issuedAt}
}

// Prefetch implements cpu.Port: non-binding, dropped on a TLB miss.
func (p *memPort) Prefetch(t sim.Ticks, va uint64) {
	p.stats.Prefetches++
	var pa uint64
	if p.m.os.Kind() == osmodel.SimOS {
		tl := p.m.os.TLB(p.node)
		if !tl.Probe(vm.VPage(va)) {
			p.stats.PrefetchDrops++
			return
		}
		pp, ok := p.m.os.PageTable().Lookup(va)
		if !ok {
			p.stats.PrefetchDrops++
			return
		}
		pa = pp.Addr(va)
	} else {
		tr := p.m.os.Translate(p.node, va)
		pa = tr.PA
	}
	if p.l1.Lookup(pa) != cache.Invalid || p.l2.Lookup(pa) != cache.Invalid {
		return
	}
	line := p.l2.Config().LineAddr(pa)
	if _, ok := p.mshr.Lookup(line, t); ok {
		return
	}
	issueT := p.mshr.Reserve(line, t)
	res := p.m.mem.Read(issueT, p.node, line)
	p.stats.MemReads++
	p.stats.CaseCounts[res.Case]++
	done := p.l2if.AcquireForRefill(res.Done)
	p.mshr.Complete(line, done)
	st := cache.Shared
	if res.Exclusive {
		st = cache.Exclusive
	}
	p.evictL2(done, p.l2.Insert(line, st))
	p.fillL1(pa, res.Exclusive)
}

// CacheOp implements cpu.Port (hit-writeback-invalidate semantics).
func (p *memPort) CacheOp(t sim.Ticks, va uint64, aux uint32) cpu.MemInfo {
	tr := p.m.os.Translate(p.node, va)
	if tr.PenaltyCycles > 0 {
		t += p.cyc(tr.PenaltyCycles)
	}
	pa := tr.PA
	dirty := false
	for a := p.l2.Config().LineAddr(pa); a < p.l2.Config().LineAddr(pa)+p.l2.Config().LineSize; a += p.l1.Config().LineSize {
		if p.l1.Invalidate(a) == cache.Modified {
			dirty = true
		}
	}
	if p.l2.Invalidate(pa) == cache.Modified {
		dirty = true
	}
	done := t + p.cyc(p.m.cfg.L2HitCycles)
	if dirty {
		p.m.mem.Writeback(done, p.node, p.l2.Config().LineAddr(pa))
	}
	return cpu.MemInfo{Done: done, DirtyCacheOp: dirty, TLBMiss: tr.TLBMiss, WentToMemory: dirty}
}

// SyscallCost implements cpu.Port.
func (p *memPort) SyscallCost(aux uint32) uint32 { return p.m.os.SyscallCost(aux) }

// warmAccess is the functional fast-forward's state path: it performs
// the translation, cache, and directory transitions an access would
// make — TLB refills are counted, lines move through L1/L2 with real
// victim handling, and misses run the full coherence protocol at time
// t so the directory's sharer/owner records stay exact — while
// charging no time and touching none of the timing-only structures
// (write buffer, MSHRs, L2 interface). Detailed windows that follow a
// warm fast-forward therefore start against warm cache/TLB/directory
// state; the elided timing is the sampling error the harness measures.
func (p *memPort) warmAccess(t sim.Ticks, in isa.Instr) {
	switch in.Op {
	case isa.Load:
		p.stats.Loads++
		pa := p.m.os.Translate(p.node, in.Addr).PA
		if _, hit := p.l1.Access(pa, false); hit {
			p.stats.L1Hits++
			return
		}
		if st2, hit2 := p.l2.Access(pa, false); hit2 {
			p.stats.L2Hits++
			p.fillL1(pa, st2 == cache.Modified || st2 == cache.Exclusive)
			return
		}
		line := p.l2.Config().LineAddr(pa)
		res := p.m.mem.Read(t, p.node, line)
		p.stats.MemReads++
		p.stats.CaseCounts[res.Case]++
		st := cache.Shared
		if res.Exclusive {
			st = cache.Exclusive
		}
		p.evictL2(t, p.l2.Insert(line, st))
		p.fillL1(pa, res.Exclusive)

	case isa.Store:
		p.stats.Stores++
		pa := p.m.os.Translate(p.node, in.Addr).PA
		if st, hit := p.l1.Access(pa, true); hit {
			p.stats.L1Hits++
			if st == cache.Exclusive {
				p.l2.MarkDirty(pa)
			}
			return
		}
		if _, hit2 := p.l2.Access(pa, true); hit2 {
			p.stats.L2Hits++
			p.fillL1(pa, true)
			p.l1.MarkDirty(pa)
			return
		}
		line := p.l2.Config().LineAddr(pa)
		res := p.m.mem.Write(t, p.node, line)
		p.stats.MemWrites++
		p.stats.CaseCounts[res.Case]++
		if res.Case == proto.Upgrade {
			p.stats.Upgrades++
		}
		p.evictL2(t, p.l2.Insert(line, cache.Modified))
		p.fillL1(pa, true)
		p.l1.MarkDirty(pa)

	case isa.CacheOp:
		// State-changing: perform the invalidation and writeback so
		// later windows see the flushed lines.
		pa := p.m.os.Translate(p.node, in.Addr).PA
		dirty := false
		for a := p.l2.Config().LineAddr(pa); a < p.l2.Config().LineAddr(pa)+p.l2.Config().LineSize; a += p.l1.Config().LineSize {
			if p.l1.Invalidate(a) == cache.Modified {
				dirty = true
			}
		}
		if p.l2.Invalidate(pa) == cache.Modified {
			dirty = true
		}
		if dirty {
			p.m.mem.Writeback(t, p.node, p.l2.Config().LineAddr(pa))
		}

	case isa.Prefetch:
		// Non-binding and timing-motivated; dropping prefetches is
		// part of the functional model.
	}
}
