package machine

import (
	"flashsim/internal/cache"
	"flashsim/internal/cpu"
	"flashsim/internal/isa"
	"flashsim/internal/osmodel"
	"flashsim/internal/proto"
	"flashsim/internal/sim"
	"flashsim/internal/vm"
)

// PortStats counts per-node memory-path events.
type PortStats struct {
	Loads, Stores   uint64
	L1Hits, L2Hits  uint64
	MemReads        uint64
	MemWrites       uint64
	Upgrades        uint64
	Prefetches      uint64
	PrefetchDrops   uint64 // dropped on TLB miss (non-binding)
	TLBPenaltyTicks sim.Ticks
	WBStallTicks    sim.Ticks
	MSHRStallTicks  sim.Ticks
	ReadLatTicks    sim.Ticks // sum of memsys read latencies (debug)
	WriteLatTicks   sim.Ticks // sum of memsys write latencies (debug)
	CaseCounts      [proto.NumCases]uint64
}

// memPort is a node's data-access path: TLB/OS translation, L1, L2,
// write buffer, MSHRs, L2 interface, then the shared memory system. It
// implements cpu.Port.
//
// Under the windowed engine every access splits into a node-local
// prefix (translation of mapped pages, L1/L2 tag checks, write-buffer
// slot reservation) that runs inside the parallel phase, and a shared
// tail (memory-system transactions, MSHR bookkeeping against ops that
// executed in between, page faults) that is deferred as a pendingOp and
// executed at the next barrier in global (t, node, seq) order. The
// finish* methods are those tails; the canDefer=false paths let the
// barrier executor re-enter the same code without re-deferring.
type memPort struct {
	m     *Machine
	node  int
	clock sim.Clock
	l1    *cache.Cache
	l2    *cache.Cache
	wb    *cache.WriteBuffer
	mshr  *cache.MSHRs
	l2if  *cache.L2Interface
	stats PortStats

	// Deferred-operation sink: ops this node produced during the
	// current parallel phase, drained and merged at the barrier. seq
	// numbers ops per node; lastOpT keeps per-node op times monotone so
	// the global (t, node, seq) sort preserves each node's issue order.
	ops     []pendingOp
	opSeq   uint64
	lastOpT sim.Ticks
}

// push defers op to the barrier phase.
func (p *memPort) push(op pendingOp) {
	if op.t < p.lastOpT {
		op.t = p.lastOpT
	}
	p.lastOpT = op.t
	op.node = p.node
	op.seq = p.opSeq
	p.opSeq++
	p.ops = append(p.ops, op)
}

func (p *memPort) cyc(n uint32) sim.Ticks { return p.clock.Cycles(uint64(n)) }

// fillL1 inserts the L1 line for pa after a fill from L2 or memory.
// exclusive selects whether the L1 copy carries write permission.
func (p *memPort) fillL1(pa uint64, exclusive bool) {
	st := cache.Shared
	if exclusive {
		st = cache.Exclusive
	}
	v := p.l1.Insert(pa, st)
	if v.Valid && v.Dirty {
		// Dirty L1 victim folds into the (inclusive) L2 copy.
		p.l2.MarkDirty(v.Addr)
	}
}

// evictL2 handles an L2 victim: enforce inclusion in L1, write back
// dirty data, or send a replacement hint for clean-exclusive lines so
// the directory's owner records never go stale.
func (p *memPort) evictL2(t sim.Ticks, v cache.Victim) {
	if !v.Valid {
		return
	}
	dirty := v.Dirty
	for a := v.Addr; a < v.Addr+p.l2.Config().LineSize; a += p.l1.Config().LineSize {
		if p.l1.Invalidate(a) == cache.Modified {
			dirty = true
		}
	}
	switch {
	case dirty:
		p.m.mem.Writeback(t, p.node, v.Addr)
	case v.State == cache.Exclusive:
		p.m.mem.Replace(t, p.node, v.Addr)
	}
}

// Load implements cpu.Port.
func (p *memPort) Load(t sim.Ticks, va uint64, size uint32) cpu.MemInfo {
	p.stats.Loads++
	return p.load(t, va, size, true)
}

// load is the Load body. canDefer selects the parallel-phase prefix
// (shared work becomes a pendingOp) versus the barrier executor's
// synchronous re-entry.
func (p *memPort) load(t sim.Ticks, va uint64, size uint32, canDefer bool) cpu.MemInfo {
	if canDefer && p.m.os.NeedsFault(va) {
		// Page faults mutate the shared page table: defer the whole
		// access to the serial phase.
		p.push(pendingOp{kind: opLoadFull, t: t, va: va, size: size})
		return cpu.MemInfo{Pending: true}
	}
	tr := p.m.os.Translate(p.node, va)
	if tr.PenaltyCycles > 0 {
		d := p.cyc(tr.PenaltyCycles)
		p.stats.TLBPenaltyTicks += d
		t += d
	}
	pa := tr.PA
	if _, hit := p.l1.Access(pa, false); hit {
		p.stats.L1Hits++
		return cpu.MemInfo{Done: t + p.cyc(p.m.cfg.L1HitCycles), L1Hit: true, TLBMiss: tr.TLBMiss}
	}
	t2 := t + p.cyc(p.m.cfg.L1HitCycles) // L1 miss detection
	t2 = p.l2if.AcquireForTagCheck(t2)
	if st2, hit2 := p.l2.Access(pa, false); hit2 {
		p.stats.L2Hits++
		done := t2 + p.cyc(p.m.cfg.L2HitCycles)
		p.fillL1(pa, st2 == cache.Modified || st2 == cache.Exclusive)
		return cpu.MemInfo{Done: done, L2Hit: true, TLBMiss: tr.TLBMiss}
	}
	// L2 miss: the off-chip tag check itself costs L2HitCycles before
	// the request can leave the chip.
	t2 += p.cyc(p.m.cfg.L2HitCycles)
	if canDefer {
		p.push(pendingOp{kind: opLoadMiss, t: t2, pa: pa, tlbMiss: tr.TLBMiss})
		return cpu.MemInfo{Pending: true}
	}
	return p.finishLoadMiss(t2, pa, tr.TLBMiss)
}

// finishLoadMiss is the shared tail of a load L2 miss, entered at the
// barrier (or synchronously from the full-access path). MSHR state and
// the L2 recheck run here, not in the prefix, so they see every
// same-node operation that executed since the miss was detected.
func (p *memPort) finishLoadMiss(t2 sim.Ticks, pa uint64, tlbMiss bool) cpu.MemInfo {
	line := p.l2.Config().LineAddr(pa)
	if mdone, ok := p.mshr.Lookup(line, t2); ok {
		done := mdone + p.cyc(p.m.cfg.RestartCycles)
		if done < t2 {
			done = t2
		}
		p.fillL1(pa, false)
		return cpu.MemInfo{Done: done, TLBMiss: tlbMiss, WentToMemory: true, IssuedAt: t2}
	}
	if st2 := p.l2.Lookup(pa); st2 != cache.Invalid {
		// An earlier deferred op (a prefetch or another access by this
		// node) landed the line between the tag check and this barrier:
		// only the pipeline restart remains.
		done := t2 + p.cyc(p.m.cfg.RestartCycles)
		p.fillL1(pa, st2 == cache.Modified || st2 == cache.Exclusive)
		return cpu.MemInfo{Done: done, TLBMiss: tlbMiss, WentToMemory: true, IssuedAt: t2}
	}
	issueT := p.mshr.Reserve(line, t2)
	res := p.m.mem.Read(issueT, p.node, line)
	p.stats.MemReads++
	p.stats.CaseCounts[res.Case]++
	p.stats.ReadLatTicks += res.Done - issueT
	// Critical-word-first: the processor restarts as the line transfer
	// begins; the external interface stays busy for the whole line.
	done := p.l2if.AcquireForRefill(res.Done)
	done += p.cyc(p.m.cfg.RestartCycles)
	p.mshr.Complete(line, done)
	st := cache.Shared
	if res.Exclusive {
		st = cache.Exclusive
	}
	p.evictL2(done, p.l2.Insert(line, st))
	p.fillL1(pa, res.Exclusive)
	return cpu.MemInfo{Done: done, TLBMiss: tlbMiss, WentToMemory: true, IssuedAt: issueT}
}

// Store implements cpu.Port.
func (p *memPort) Store(t sim.Ticks, va uint64, size uint32) cpu.MemInfo {
	p.stats.Stores++
	return p.store(t, va, size, true)
}

// store is the Store body (see load for the canDefer contract). A miss
// with a free write-buffer slot defers fire-and-forget: the processor
// proceeds immediately and the barrier patches the slot's drain time.
func (p *memPort) store(t sim.Ticks, va uint64, size uint32, canDefer bool) cpu.MemInfo {
	if canDefer && p.m.os.NeedsFault(va) {
		p.push(pendingOp{kind: opStoreFull, t: t, va: va, size: size})
		return cpu.MemInfo{Pending: true}
	}
	tr := p.m.os.Translate(p.node, va)
	if tr.PenaltyCycles > 0 {
		d := p.cyc(tr.PenaltyCycles)
		p.stats.TLBPenaltyTicks += d
		t += d
	}
	pa := tr.PA
	if st, hit := p.l1.Access(pa, true); hit {
		p.stats.L1Hits++
		if st == cache.Exclusive {
			// First write to an exclusively fetched line: propagate
			// dirtiness to the inclusive L2 copy.
			p.l2.MarkDirty(pa)
		}
		return cpu.MemInfo{Done: t + p.cyc(p.m.cfg.L1HitCycles), L1Hit: true, TLBMiss: tr.TLBMiss}
	}
	t2 := t + p.cyc(p.m.cfg.L1HitCycles)
	t2 = p.l2if.AcquireForTagCheck(t2)
	if _, hit2 := p.l2.Access(pa, true); hit2 {
		p.stats.L2Hits++
		done := t2 + p.cyc(p.m.cfg.L2HitCycles)
		p.fillL1(pa, true)
		p.l1.MarkDirty(pa)
		return cpu.MemInfo{Done: done, L2Hit: true, TLBMiss: tr.TLBMiss}
	}
	// L2 write miss or upgrade: fetch/own through the memory system,
	// but let the processor proceed through the write buffer.
	t2 += p.cyc(p.m.cfg.L2HitCycles)
	if canDefer {
		if proceed, ok := p.wb.PushPending(t2); ok {
			p.push(pendingOp{kind: opStoreMiss, t: t2, pa: pa})
			return cpu.MemInfo{Done: proceed, TLBMiss: tr.TLBMiss, WentToMemory: true, IssuedAt: t2}
		}
		// Every slot holds an unpatched placeholder: the oldest drain
		// time is unknowable until the barrier, so the store blocks.
		p.push(pendingOp{kind: opStoreMissBlock, t: t2, pa: pa, tlbMiss: tr.TLBMiss})
		return cpu.MemInfo{Pending: true}
	}
	mdone, issuedAt := p.finishStoreMiss(t2, pa)
	proceed := p.wb.Push(t2, mdone)
	return cpu.MemInfo{Done: proceed, TLBMiss: tr.TLBMiss, WentToMemory: true, IssuedAt: issuedAt}
}

// finishStoreMiss is the shared tail of a store L2 miss: acquire the
// line in Modified state through the memory system (or an outstanding
// miss, or a copy an earlier deferred op landed) and return when the
// store's memory operation drains.
func (p *memPort) finishStoreMiss(t2 sim.Ticks, pa uint64) (mdone, issuedAt sim.Ticks) {
	line := p.l2.Config().LineAddr(pa)
	issuedAt = t2
	if md, ok := p.mshr.Lookup(line, t2); ok {
		mdone = md
	} else if st2 := p.l2.Lookup(pa); st2 == cache.Modified || st2 == cache.Exclusive {
		// Landed with write permission in between: only the restart
		// remains. A Shared copy still needs the upgrade below.
		mdone = t2 + p.cyc(p.m.cfg.RestartCycles)
	} else {
		issueT := p.mshr.Reserve(line, t2)
		issuedAt = issueT
		res := p.m.mem.Write(issueT, p.node, line)
		p.stats.WriteLatTicks += res.Done - issueT
		p.stats.MemWrites++
		p.stats.CaseCounts[res.Case]++
		if res.Case == proto.Upgrade {
			p.stats.Upgrades++
		}
		mdone = p.l2if.AcquireForRefill(res.Done)
		p.mshr.Complete(line, mdone)
	}
	p.evictL2(mdone, p.l2.Insert(line, cache.Modified))
	p.fillL1(pa, true)
	p.l1.MarkDirty(pa)
	return mdone, issuedAt
}

// Prefetch implements cpu.Port: non-binding, dropped on a TLB miss.
func (p *memPort) Prefetch(t sim.Ticks, va uint64) {
	p.stats.Prefetches++
	p.prefetch(t, va, true)
}

// prefetch is the Prefetch body (see load for the canDefer contract).
// Prefetches are always fire-and-forget: the processor never waits.
func (p *memPort) prefetch(t sim.Ticks, va uint64, canDefer bool) {
	var pa uint64
	if p.m.os.Kind() == osmodel.SimOS {
		tl := p.m.os.TLB(p.node)
		if !tl.Probe(vm.VPage(va)) {
			p.stats.PrefetchDrops++
			return
		}
		pp, ok := p.m.os.PageTable().Lookup(va)
		if !ok {
			p.stats.PrefetchDrops++
			return
		}
		pa = pp.Addr(va)
	} else {
		if canDefer && p.m.os.NeedsFault(va) {
			// Solo backdoor-maps on any touch, prefetches included.
			p.push(pendingOp{kind: opPrefetchFull, t: t, va: va})
			return
		}
		pa = p.m.os.Translate(p.node, va).PA
	}
	if p.l1.Lookup(pa) != cache.Invalid || p.l2.Lookup(pa) != cache.Invalid {
		return
	}
	if canDefer {
		p.push(pendingOp{kind: opPrefetch, t: t, pa: pa})
		return
	}
	p.finishPrefetch(t, pa)
}

// finishPrefetch issues a deferred prefetch's memory read. The presence
// and MSHR rechecks run here so a prefetch whose line arrived through
// an op executed in between degrades to a no-op, exactly like a
// prefetch that raced a demand miss on hardware.
func (p *memPort) finishPrefetch(t sim.Ticks, pa uint64) {
	if p.l1.Lookup(pa) != cache.Invalid || p.l2.Lookup(pa) != cache.Invalid {
		return
	}
	line := p.l2.Config().LineAddr(pa)
	if _, ok := p.mshr.Lookup(line, t); ok {
		return
	}
	issueT := p.mshr.Reserve(line, t)
	res := p.m.mem.Read(issueT, p.node, line)
	p.stats.MemReads++
	p.stats.CaseCounts[res.Case]++
	done := p.l2if.AcquireForRefill(res.Done)
	p.mshr.Complete(line, done)
	st := cache.Shared
	if res.Exclusive {
		st = cache.Exclusive
	}
	p.evictL2(done, p.l2.Insert(line, st))
	p.fillL1(pa, res.Exclusive)
}

// CacheOp implements cpu.Port (hit-writeback-invalidate semantics).
func (p *memPort) CacheOp(t sim.Ticks, va uint64, aux uint32) cpu.MemInfo {
	return p.cacheOp(t, va, aux, true)
}

// cacheOp is the CacheOp body (see load for the canDefer contract).
// The invalidations are node-local; only a dirty line's writeback
// touches the memory system, and the processor never waits on it.
func (p *memPort) cacheOp(t sim.Ticks, va uint64, aux uint32, canDefer bool) cpu.MemInfo {
	if canDefer && p.m.os.NeedsFault(va) {
		p.push(pendingOp{kind: opCacheFull, t: t, va: va, aux: aux})
		return cpu.MemInfo{Pending: true}
	}
	tr := p.m.os.Translate(p.node, va)
	if tr.PenaltyCycles > 0 {
		t += p.cyc(tr.PenaltyCycles)
	}
	pa := tr.PA
	dirty := false
	for a := p.l2.Config().LineAddr(pa); a < p.l2.Config().LineAddr(pa)+p.l2.Config().LineSize; a += p.l1.Config().LineSize {
		if p.l1.Invalidate(a) == cache.Modified {
			dirty = true
		}
	}
	if p.l2.Invalidate(pa) == cache.Modified {
		dirty = true
	}
	done := t + p.cyc(p.m.cfg.L2HitCycles)
	if dirty {
		if canDefer {
			p.push(pendingOp{kind: opWriteback, t: done, pa: p.l2.Config().LineAddr(pa)})
		} else {
			p.m.mem.Writeback(done, p.node, p.l2.Config().LineAddr(pa))
		}
	}
	return cpu.MemInfo{Done: done, DirtyCacheOp: dirty, TLBMiss: tr.TLBMiss, WentToMemory: dirty}
}

// SyscallCost implements cpu.Port.
func (p *memPort) SyscallCost(aux uint32) uint32 { return p.m.os.SyscallCost(p.node, aux) }

// warmAccess is the functional fast-forward's state path: it performs
// the translation, cache, and directory transitions an access would
// make — TLB refills are counted, lines move through L1/L2 with real
// victim handling, and misses run the full coherence protocol at time
// t so the directory's sharer/owner records stay exact — while
// charging no time and touching none of the timing-only structures
// (write buffer, MSHRs, L2 interface). Detailed windows that follow a
// warm fast-forward therefore start against warm cache/TLB/directory
// state; the elided timing is the sampling error the harness measures.
//
// Warm accesses never suspend the core: deferred shared work is always
// fire-and-forget, and the finishWarm* rechecks keep a line another
// deferred op already landed from being fetched twice.
func (p *memPort) warmAccess(t sim.Ticks, in isa.Instr, canDefer bool) {
	switch in.Op {
	case isa.Load:
		if canDefer && p.m.os.NeedsFault(in.Addr) {
			p.push(pendingOp{kind: opWarmFull, t: t, instr: in})
			return
		}
		p.stats.Loads++
		pa := p.m.os.Translate(p.node, in.Addr).PA
		if _, hit := p.l1.Access(pa, false); hit {
			p.stats.L1Hits++
			return
		}
		if st2, hit2 := p.l2.Access(pa, false); hit2 {
			p.stats.L2Hits++
			p.fillL1(pa, st2 == cache.Modified || st2 == cache.Exclusive)
			return
		}
		if canDefer {
			p.push(pendingOp{kind: opWarmLoad, t: t, pa: pa})
			return
		}
		p.finishWarmLoad(t, pa)

	case isa.Store:
		if canDefer && p.m.os.NeedsFault(in.Addr) {
			p.push(pendingOp{kind: opWarmFull, t: t, instr: in})
			return
		}
		p.stats.Stores++
		pa := p.m.os.Translate(p.node, in.Addr).PA
		if st, hit := p.l1.Access(pa, true); hit {
			p.stats.L1Hits++
			if st == cache.Exclusive {
				p.l2.MarkDirty(pa)
			}
			return
		}
		if _, hit2 := p.l2.Access(pa, true); hit2 {
			p.stats.L2Hits++
			p.fillL1(pa, true)
			p.l1.MarkDirty(pa)
			return
		}
		if canDefer {
			p.push(pendingOp{kind: opWarmStore, t: t, pa: pa})
			return
		}
		p.finishWarmStore(t, pa)

	case isa.CacheOp:
		// State-changing: perform the invalidation and writeback so
		// later windows see the flushed lines.
		if canDefer && p.m.os.NeedsFault(in.Addr) {
			p.push(pendingOp{kind: opWarmFull, t: t, instr: in})
			return
		}
		pa := p.m.os.Translate(p.node, in.Addr).PA
		dirty := false
		for a := p.l2.Config().LineAddr(pa); a < p.l2.Config().LineAddr(pa)+p.l2.Config().LineSize; a += p.l1.Config().LineSize {
			if p.l1.Invalidate(a) == cache.Modified {
				dirty = true
			}
		}
		if p.l2.Invalidate(pa) == cache.Modified {
			dirty = true
		}
		if dirty {
			if canDefer {
				p.push(pendingOp{kind: opWriteback, t: t, pa: p.l2.Config().LineAddr(pa)})
			} else {
				p.m.mem.Writeback(t, p.node, p.l2.Config().LineAddr(pa))
			}
		}

	case isa.Prefetch:
		// Non-binding and timing-motivated; dropping prefetches is
		// part of the functional model.
	}
}

// finishWarmLoad completes a deferred warm load miss.
func (p *memPort) finishWarmLoad(t sim.Ticks, pa uint64) {
	if st2 := p.l2.Lookup(pa); st2 != cache.Invalid {
		p.fillL1(pa, st2 == cache.Modified || st2 == cache.Exclusive)
		return
	}
	line := p.l2.Config().LineAddr(pa)
	res := p.m.mem.Read(t, p.node, line)
	p.stats.MemReads++
	p.stats.CaseCounts[res.Case]++
	st := cache.Shared
	if res.Exclusive {
		st = cache.Exclusive
	}
	p.evictL2(t, p.l2.Insert(line, st))
	p.fillL1(pa, res.Exclusive)
}

// finishWarmStore completes a deferred warm store miss.
func (p *memPort) finishWarmStore(t sim.Ticks, pa uint64) {
	if st2 := p.l2.Lookup(pa); st2 == cache.Modified || st2 == cache.Exclusive {
		p.l2.MarkDirty(pa)
		p.fillL1(pa, true)
		p.l1.MarkDirty(pa)
		return
	}
	line := p.l2.Config().LineAddr(pa)
	res := p.m.mem.Write(t, p.node, line)
	p.stats.MemWrites++
	p.stats.CaseCounts[res.Case]++
	if res.Case == proto.Upgrade {
		p.stats.Upgrades++
	}
	p.evictL2(t, p.l2.Insert(line, cache.Modified))
	p.fillL1(pa, true)
	p.l1.MarkDirty(pa)
}
