package machine

import (
	"flashsim/internal/cache"
	"flashsim/internal/obs"
	"flashsim/internal/proto"
)

// buildMetrics snapshots every subsystem's counters into one RunMetrics
// record. It runs once, after the event loop drains, so it is free to
// allocate — only the counters it reads sit on the hot path, and those
// are plain field increments.
func (m *Machine) buildMetrics(r *Result, em obs.EmitterCounters) obs.RunMetrics {
	rm := obs.RunMetrics{
		Config:       m.cfg.Name,
		Procs:        m.cfg.Procs,
		Runs:         1,
		Instructions: r.Instructions,
		ExecTicks:    uint64(r.Exec),
		TotalTicks:   uint64(r.Total),
		Queue:        m.queueCounters(),
		Emitter:      em,
		L1:           cacheCounters(r.L1),
		L2:           cacheCounters(r.L2),
		TLB:          m.os.TLBStats(),
		Dir:          dirCounters(r.Dir),
		OS:           m.os.Counters(),
	}
	if net := m.mem.Net(); net != nil {
		s := net.Stats()
		rm.Net = obs.NetworkCounters{Messages: s.Messages, Bytes: s.Bytes, Hops: s.Hops}
	}
	return rm
}

// queueCounters merges the shard-local event-queue counters in
// shard-index order. Each node holds at most one outstanding pooled
// event, so every queue's cold allocations equal its node count and the
// merged counters are bit-identical at any shard count; the fixed merge
// order makes the snapshot byte-stable regardless of which shard
// finished its last phase first.
func (m *Machine) queueCounters() obs.QueueCounters {
	var q obs.QueueCounters
	for _, sh := range m.shards {
		s := sh.queue.Stats()
		q.Scheduled += s.Scheduled
		q.Fired += s.Fired
		q.Recycled += s.Recycled
	}
	return q
}

func cacheCounters(s cache.Stats) obs.CacheCounters {
	return obs.CacheCounters{
		Hits:          s.Hits,
		Misses:        s.Misses,
		Evictions:     s.Evictions,
		Writebacks:    s.Writebacks,
		Invalidations: s.Invals,
		Interventions: s.Interventio,
	}
}

func dirCounters(s proto.DirStats) obs.DirectoryCounters {
	c := obs.DirectoryCounters{
		Reads:         s.Reads,
		Writes:        s.Writes,
		Writebacks:    s.Writebacks,
		Invalidations: s.Invalidations,
		Transitions:   s.Transitions,
		StaleInvals:   s.StaleInvals,
	}
	for i, n := range s.CaseCounts {
		if n != 0 {
			if c.Cases == nil {
				c.Cases = make(map[string]uint64, len(s.CaseCounts))
			}
			c.Cases[proto.Case(i).String()] = n
		}
	}
	return c
}
