package machine_test

import (
	"bytes"
	"reflect"
	"testing"

	"flashsim/internal/apps"
	"flashsim/internal/emitter"
	"flashsim/internal/machine"
	"flashsim/internal/memsys"
	"flashsim/internal/osmodel"
	"flashsim/internal/trace"
)

// replayConfig returns a small SimOS-Mipsy machine at the default rung
// of the detail ladder (classic Mipsy, unit latencies) — the
// configuration under which trace-driven replay must be exact.
func replayConfig(procs int) machine.Config {
	cfg := machine.Base(procs, true)
	cfg.Name = "test-simos-mipsy"
	cfg.CPU = machine.CPUMipsy
	cfg.ClockMHz = 150
	cfg.OS = osmodel.DefaultSimOS()
	cfg.Mem = machine.MemFlashLite
	cfg.FlashTiming = memsys.TrueTiming()
	return cfg
}

// replayKernels is the full internal/apps suite at sizes small enough
// for a test but big enough to cross chunk boundaries, take TLB
// misses, and exercise locks, barriers, prefetches, and cache ops.
func replayKernels(procs int) []emitter.Program {
	return []emitter.Program{
		apps.FFT(apps.FFTOpts{LogN: 10, Procs: procs, Prefetch: true}),
		apps.LU(apps.LUOpts{N: 64, Procs: procs}),
		apps.Ocean(apps.OceanOpts{N: 34, Grids: 4, Iters: 2, Procs: procs}),
		apps.Radix(apps.RadixOpts{Keys: 8 << 10, Radix: 32, Procs: procs, Verify: true}),
		apps.CacheMgmt(apps.CacheMgmtOpts{Lines: 64, Rounds: 2, Procs: procs}),
	}
}

// captureInto runs prog under cfg with a tap into a fresh in-memory
// container and returns the result and the sealed container bytes.
func captureInto(t *testing.T, cfg machine.Config, prog emitter.Program) (machine.Result, []byte) {
	t.Helper()
	var buf bytes.Buffer
	tw, err := trace.NewWriter(&buf, trace.Meta{Workload: prog.FullName(), Threads: prog.Threads})
	if err != nil {
		t.Fatal(err)
	}
	res, err := machine.RunCapture(cfg, prog, tw)
	if err != nil {
		t.Fatal(err)
	}
	return res, buf.Bytes()
}

// TestCaptureReplayBitIdentical pins the tentpole exactness claim: for
// every kernel, at the default configuration, capture→replay
// reproduces the execution-driven Result — including the full
// memory-system metrics, per-processor counters, and barrier release
// times — bit for bit. It also pins that capturing is unobservable:
// the tapped run's Result equals an untapped run's.
func TestCaptureReplayBitIdentical(t *testing.T) {
	const procs = 2
	cfg := replayConfig(procs)
	for _, prog := range replayKernels(procs) {
		prog := prog
		t.Run(prog.FullName(), func(t *testing.T) {
			t.Parallel()
			exec, err := machine.Run(cfg, prog)
			if err != nil {
				t.Fatal(err)
			}
			captured, data := captureInto(t, cfg, prog)
			if !reflect.DeepEqual(captured, exec) {
				t.Fatalf("capture perturbed the run:\nexec:     %+v\ncaptured: %+v", exec, captured)
			}
			tr, err := trace.Decode(data)
			if err != nil {
				t.Fatal(err)
			}
			img, err := machine.PrepareReplay(tr)
			if err != nil {
				t.Fatal(err)
			}
			replay, err := machine.RunReplay(cfg, img)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(replay, exec) {
				t.Fatalf("replay diverged from execution-driven run:\nexec:   %+v\nreplay: %+v", exec, replay)
			}
		})
	}
}

// TestReplayImageIsReusable pins decode-once/replay-many: one image
// replayed twice (including concurrently-built machines) yields the
// same Result both times.
func TestReplayImageIsReusable(t *testing.T) {
	const procs = 2
	cfg := replayConfig(procs)
	prog := apps.FFT(apps.FFTOpts{LogN: 10, Procs: procs})
	_, data := captureInto(t, cfg, prog)
	tr, err := trace.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	img, err := machine.PrepareReplay(tr)
	if err != nil {
		t.Fatal(err)
	}
	first, err := machine.RunReplay(cfg, img)
	if err != nil {
		t.Fatal(err)
	}
	second, err := machine.RunReplay(cfg, img)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("image reuse diverged:\nfirst:  %+v\nsecond: %+v", first, second)
	}
}

// TestReplayThreadMismatchFails pins the procs guard.
func TestReplayThreadMismatchFails(t *testing.T) {
	cfg := replayConfig(2)
	prog := apps.FFT(apps.FFTOpts{LogN: 10, Procs: 2})
	_, data := captureInto(t, cfg, prog)
	tr, err := trace.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	img, err := machine.PrepareReplay(tr)
	if err != nil {
		t.Fatal(err)
	}
	bad := replayConfig(4)
	if _, err := machine.RunReplay(bad, img); err == nil {
		t.Fatal("replay with mismatched processor count should fail")
	}
}
