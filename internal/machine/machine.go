package machine

import (
	"fmt"

	"flashsim/internal/cache"
	"flashsim/internal/cpu"
	"flashsim/internal/emitter"
	"flashsim/internal/isa"
	"flashsim/internal/memsys"
	"flashsim/internal/osmodel"
	"flashsim/internal/sim"
	"flashsim/internal/vm"
)

// BarrierStart and BarrierEnd alias the emitter's timed-section barrier
// ids for convenience.
const (
	BarrierStart = emitter.BarrierStart
	BarrierEnd   = emitter.BarrierEnd
)

// Machine is one fully composed simulated system executing one program.
type Machine struct {
	cfg    Config
	shards []*shard
	window sim.Ticks // windowed-engine quantum W (lookahead-derived)
	mem    memsys.System
	os     *osmodel.OS
	nodes  []*node

	barriers   map[uint32]*barrierState
	locks      map[uint32]*lockState
	barrierRel map[uint32][]sim.Ticks

	finishTimes []sim.Ticks
	runErr      error
}

type node struct {
	id    int
	core  cpu.CPU
	port  *memPort
	shard *shard
}

type barrierState struct {
	waiting []int
	maxT    sim.Ticks
}

type lockState struct {
	held  bool
	queue []lockWaiter
}

type lockWaiter struct {
	node  int
	ready sim.Ticks
}

// Run executes prog on a machine described by cfg and returns the
// result. Each call builds a fresh machine; state never leaks between
// runs.
func Run(cfg Config, prog emitter.Program) (Result, error) {
	if prog.Threads != cfg.Procs {
		return Result{}, fmt.Errorf("machine %q: program %s has %d threads but machine has %d processors",
			cfg.Name, prog.FullName(), prog.Threads, cfg.Procs)
	}
	return RunWith(cfg, NewExecutionDriver(cfg, prog))
}

// build assembles a machine around an address space, deferring only
// the core model to newCore — the seam between the execution-driven
// mode (Mipsy/MXS fed by emitter readers) and trace-driven replay.
func build(cfg Config, space *emitter.AddressSpace, newCore func(i int, clock sim.Clock, p *memPort) cpu.CPU) *Machine {
	m := &Machine{
		cfg:        cfg,
		barriers:   make(map[uint32]*barrierState),
		locks:      make(map[uint32]*lockState),
		barrierRel: make(map[uint32][]sim.Ticks),
	}

	pt := osmodel.NewPageTable(cfg.OS.Kind, space, cfg.Procs, cfg.Colors())
	m.os = osmodel.New(cfg.OS, pt, cfg.Procs)

	switch cfg.Mem {
	case MemNUMA:
		nc := memsys.DefaultNUMAConfig(cfg.Procs)
		if cfg.NUMA != nil {
			nc = *cfg.NUMA
			nc.Nodes = cfg.Procs
		}
		m.mem = memsys.NewNUMA(nc)
	default:
		fc := memsys.DefaultFlashConfig(cfg.Procs, cfg.FlashTiming)
		if cfg.MagicTable != nil {
			fc.Magic.Table = *cfg.MagicTable
		}
		m.mem = memsys.NewFlashLite(fc)
	}
	m.mem.SetPeers(m)
	if cfg.CheckCoherence {
		m.mem.Directory().SetInvariantChecks(true)
	}

	// Window width: the interconnect's conservative lookahead (45 ticks
	// per hop by default) scaled by a fixed multiplier. Config-derived,
	// never host- or shard-derived, so the quantization — and with it
	// every result — is a function of the configuration alone.
	la := sim.NS(50)
	if net := m.mem.Net(); net != nil {
		la = net.Lookahead()
	}
	m.window = la * windowLookaheadMult

	// Nodes partition into contiguous shard blocks; shard queues run
	// relaxed because barrier deliveries legitimately resume a node
	// below its queue's dispatch horizon.
	nshards := cfg.Shards
	if nshards < 1 {
		nshards = 1
	}
	if nshards > cfg.Procs {
		nshards = cfg.Procs
	}
	m.shards = make([]*shard, nshards)
	for s := range m.shards {
		q := sim.NewQueue()
		q.SetRelaxed(true)
		m.shards[s] = &shard{id: s, queue: q}
	}

	clock := sim.NewClock(cfg.ClockMHz)
	m.nodes = make([]*node, cfg.Procs)
	m.finishTimes = make([]sim.Ticks, cfg.Procs)
	for i := 0; i < cfg.Procs; i++ {
		p := &memPort{
			m:     m,
			node:  i,
			clock: clock,
			l1:    cache.New(cfg.L1D),
			l2:    cache.New(cfg.L2),
			wb:    cache.NewWriteBuffer(cfg.WriteBufferEntries),
			mshr:  cache.NewMSHRs(cfg.MSHRCount),
			l2if: &cache.L2Interface{
				Enabled:       cfg.ModelL2InterfaceOccupancy,
				TransferTicks: sim.NS(cfg.L2TransferNS),
			},
		}
		m.nodes[i] = &node{id: i, core: newCore(i, clock, p), port: p, shard: m.shards[shardOf(i, cfg.Procs, nshards)]}
	}
	return m
}

// HandleEvent implements sim.Handler: arg is a node id. All hot-path
// scheduling goes through this one pre-bound handler so the event queue
// recycles events instead of allocating a closure per schedule.
func (m *Machine) HandleEvent(now sim.Ticks, arg uint64) {
	m.step(m.nodes[arg], now)
}

// step runs one scheduling slice of a node's processor. It executes on
// the node's shard (a worker goroutine during parallel phases) and must
// touch only node-local state: sync operations defer to the barrier
// like any other shared-state work.
func (m *Machine) step(n *node, now sim.Ticks) {
	out := n.core.Run(now)
	switch out.Kind {
	case cpu.Yield:
		at := out.Time
		if at < now {
			at = now
		}
		n.shard.queue.ScheduleFn(at, int32(n.id), m, uint64(n.id))
	case cpu.Blocked:
		// Suspended mid-instruction on a deferred access; the barrier
		// phase executes the pending op and delivers the resume.
	case cpu.Finished:
		m.finishTimes[n.id] = out.Time
		n.shard.finished++
	case cpu.SyncOp:
		n.port.push(pendingOp{kind: opSync, t: out.Time, instr: out.Instr})
	}
}

// resume schedules a node's next slice at time t (serial phase only).
func (m *Machine) resume(n *node, t sim.Ticks) {
	n.shard.queue.ScheduleFn(t, int32(n.id), m, uint64(n.id))
}

// syncPA synthesizes the physical line address backing a lock or
// barrier variable, round-robined across home nodes (lock and barrier
// traffic exercises the real coherence paths).
func (m *Machine) syncPA(base uint32, id uint32) uint64 {
	home := int32(id) % int32(m.cfg.Procs)
	return vm.PhysPage{Node: home, Frame: base + id}.Addr(0)
}

const (
	lockFrameBase    = 0x00900000
	barrierFrameBase = 0x00A00000
)

// handleSync processes a LOCK/UNLOCK/BARRIER instruction. It runs in
// the barrier's serial phase: every earlier deferred store has already
// patched its write-buffer placeholder (per-node op order), so DrainBy
// sees only resolved drain times.
func (m *Machine) handleSync(n *node, out cpu.Outcome) {
	id := out.Instr.Aux
	switch out.Instr.Op {
	case isa.Barrier:
		t := n.port.wb.DrainBy(out.Time)
		w := m.mem.Write(t, n.id, m.syncPA(barrierFrameBase, id))
		bs := m.barriers[id]
		if bs == nil {
			bs = &barrierState{}
			m.barriers[id] = bs
		}
		bs.waiting = append(bs.waiting, n.id)
		if w.Done > bs.maxT {
			bs.maxT = w.Done
		}
		if len(bs.waiting) == m.cfg.Procs {
			rel := bs.maxT
			m.barrierRel[id] = append(m.barrierRel[id], rel)
			for _, id2 := range bs.waiting {
				m.resume(m.nodes[id2], rel)
			}
			bs.waiting = bs.waiting[:0]
			bs.maxT = 0
		}
	case isa.Lock:
		t := n.port.wb.DrainBy(out.Time)
		w := m.mem.Write(t, n.id, m.syncPA(lockFrameBase, id))
		ls := m.locks[id]
		if ls == nil {
			ls = &lockState{}
			m.locks[id] = ls
		}
		if !ls.held {
			ls.held = true
			m.resume(n, w.Done)
		} else {
			ls.queue = append(ls.queue, lockWaiter{node: n.id, ready: w.Done})
		}
	case isa.Unlock:
		t := n.port.wb.DrainBy(out.Time)
		w := m.mem.Write(t, n.id, m.syncPA(lockFrameBase, id))
		ls := m.locks[id]
		if ls == nil || !ls.held {
			m.runErr = fmt.Errorf("machine %q: node %d unlocked free lock %d", m.cfg.Name, n.id, id)
			m.resume(n, t)
			return
		}
		// The unlocking processor proceeds immediately; the release
		// propagates at the store's completion.
		m.resume(n, t)
		if len(ls.queue) > 0 {
			next := ls.queue[0]
			ls.queue = ls.queue[1:]
			start := w.Done
			if next.ready > start {
				start = next.ready
			}
			g := m.mem.Write(start, next.node, m.syncPA(lockFrameBase, id))
			m.resume(m.nodes[next.node], g.Done)
		} else {
			ls.held = false
		}
	default:
		m.runErr = fmt.Errorf("machine %q: unexpected sync op %v", m.cfg.Name, out.Instr.Op)
	}
}

// Invalidate implements memsys.Peers over node n's cache hierarchy.
func (m *Machine) Invalidate(n int, line uint64) bool {
	p := m.nodes[n].port
	present := false
	for a := line; a < line+p.l2.Config().LineSize; a += p.l1.Config().LineSize {
		if p.l1.Invalidate(a) != cache.Invalid {
			present = true
		}
	}
	if p.l2.Invalidate(line) != cache.Invalid {
		present = true
	}
	return present
}

// Downgrade implements memsys.Peers over node n's cache hierarchy.
func (m *Machine) Downgrade(n int, line uint64) (bool, bool) {
	p := m.nodes[n].port
	present, dirty := false, false
	for a := line; a < line+p.l2.Config().LineSize; a += p.l1.Config().LineSize {
		switch p.l1.Downgrade(a) {
		case cache.Modified:
			present, dirty = true, true
		case cache.Exclusive, cache.Shared:
			present = true
		}
	}
	switch p.l2.Downgrade(line) {
	case cache.Modified:
		present, dirty = true, true
	case cache.Exclusive, cache.Shared:
		present = true
	}
	return present, dirty
}
