package machine_test

import (
	"bytes"
	"reflect"
	"testing"

	"flashsim/internal/apps"
	"flashsim/internal/cpu"
	"flashsim/internal/emitter"
	"flashsim/internal/isa"
	"flashsim/internal/machine"
	"flashsim/internal/trace"
)

// sampledConfig returns the replay test machine with the default
// sampling schedule switched on.
func sampledConfig(procs int) machine.Config {
	cfg := replayConfig(procs)
	cfg.Name = "test-sampled"
	cfg.Sampling = machine.DefaultSampling()
	return cfg
}

func sampleFFT(procs int) emitter.Program {
	return apps.FFT(apps.FFTOpts{LogN: 10, Procs: procs, TLBBlocked: true, Prefetch: true})
}

func TestScheduleSegmentAt(t *testing.T) {
	s := machine.Schedule{Phase: 100, Period: 1000, Window: 200}
	cases := []struct {
		n        uint64
		detailed bool
		left     uint64
	}{
		{0, false, 100},    // phase prefix
		{99, false, 1},     // last phase instruction
		{100, true, 200},   // first window of period 0
		{299, true, 1},     // last window instruction
		{300, false, 800},  // functional gap
		{1099, false, 1},   // end of period 0
		{1100, true, 200},  // period 1 window
		{2400, false, 700}, // period 2 gap, mid-way
	}
	for _, c := range cases {
		d, left := s.SegmentAt(c.n)
		if d != c.detailed || left != c.left {
			t.Errorf("SegmentAt(%d) = (%v, %d), want (%v, %d)", c.n, d, left, c.detailed, c.left)
		}
	}
	if d, _ := (machine.Schedule{}).SegmentAt(12345); !d {
		t.Error("zero schedule should be all-detailed")
	}
}

func TestSamplingConfigValidation(t *testing.T) {
	bad := []machine.SamplingConfig{
		{Enabled: true},                                      // period 0
		{Enabled: true, Period: 100},                         // window 0
		{Enabled: true, Period: 100, Window: 200},            // window > period
		{Enabled: true, Period: 100, Window: 50, Warmup: 60}, // warmup > window
	}
	for i, sc := range bad {
		cfg := sampledConfig(1)
		cfg.Sampling = sc
		if _, err := machine.Run(cfg, sampleFFT(1)); err == nil {
			t.Errorf("case %d: invalid sampling config %+v accepted", i, sc)
		}
	}
}

// TestSampledRunAccounting pins the sampled mode's basic contract: the
// run completes, reports itself sampled, partitions the committed
// instruction count exactly between detailed and functional fidelity,
// warms state by default, and — because the functional model's flat
// one-cycle CPI is optimistic — never reports more time than the
// full-detail run it approximates.
func TestSampledRunAccounting(t *testing.T) {
	const procs = 2
	prog := sampleFFT(procs)
	full, err := machine.Run(replayConfig(procs), prog)
	if err != nil {
		t.Fatal(err)
	}
	res, err := machine.Run(sampledConfig(procs), prog)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Sampled {
		t.Fatal("sampled run did not report Sampled")
	}
	s := res.Sampling
	if s.Windows == 0 {
		t.Fatal("no detailed windows opened")
	}
	if s.DetailedInstrs+s.FunctionalInstrs != res.Instructions {
		t.Fatalf("fidelity partition %d+%d != committed %d",
			s.DetailedInstrs, s.FunctionalInstrs, res.Instructions)
	}
	if s.FunctionalInstrs == 0 {
		t.Fatal("nothing fast-forwarded; schedule never left the window")
	}
	if s.WarmupInstrs > s.DetailedInstrs {
		t.Fatalf("warmup %d exceeds detailed %d", s.WarmupInstrs, s.DetailedInstrs)
	}
	if s.WarmTouches == 0 {
		t.Fatal("warm-state policy made no state touches")
	}
	if res.Instructions != full.Instructions {
		t.Fatalf("sampling changed the committed instruction count: %d != %d",
			res.Instructions, full.Instructions)
	}
	if res.Exec == 0 || res.Exec > full.Exec {
		t.Fatalf("sampled exec %d outside (0, full %d]", res.Exec, full.Exec)
	}
}

// TestSampledRunDeterministic pins bit-identical repeatability: the
// sampled engine introduces no scheduling or allocation nondeterminism.
func TestSampledRunDeterministic(t *testing.T) {
	const procs = 2
	first, err := machine.Run(sampledConfig(procs), sampleFFT(procs))
	if err != nil {
		t.Fatal(err)
	}
	second, err := machine.Run(sampledConfig(procs), sampleFFT(procs))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("sampled runs diverged:\nfirst:  %+v\nsecond: %+v", first, second)
	}
}

// TestColdSamplingTouchesNothing pins the cold-warmup variant: no
// cache, TLB, or directory state is touched during fast-forward.
func TestColdSamplingTouchesNothing(t *testing.T) {
	cfg := sampledConfig(2)
	cfg.Sampling.ColdState = true
	res, err := machine.Run(cfg, sampleFFT(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Sampling.WarmTouches != 0 {
		t.Fatalf("cold-state run made %d warm touches", res.Sampling.WarmTouches)
	}
	if res.Sampling.FunctionalInstrs == 0 {
		t.Fatal("nothing fast-forwarded")
	}
}

// TestSampledReplay pins that a replay image doubles as the
// fast-forward stream: sampling a trace-driven run works, reports its
// accounting, and is deterministic.
func TestSampledReplay(t *testing.T) {
	const procs = 2
	cfg := replayConfig(procs)
	prog := sampleFFT(procs)
	var buf bytes.Buffer
	tw, err := trace.NewWriter(&buf, trace.Meta{Workload: prog.FullName(), Threads: procs})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := machine.RunCapture(cfg, prog, tw); err != nil {
		t.Fatal(err)
	}
	tr, err := trace.Decode(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	img, err := machine.PrepareReplay(tr)
	if err != nil {
		t.Fatal(err)
	}
	scfg := sampledConfig(procs)
	first, err := machine.RunReplay(scfg, img)
	if err != nil {
		t.Fatal(err)
	}
	if !first.Sampled || first.Sampling.Windows == 0 {
		t.Fatalf("sampled replay reported no sampling: %+v", first.Sampling)
	}
	second, err := machine.RunReplay(scfg, img)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatal("sampled replay nondeterministic across image reuse")
	}
	// The full-detail replay of the same image is the error baseline.
	fullReplay, err := machine.RunReplay(cfg, img)
	if err != nil {
		t.Fatal(err)
	}
	if first.Instructions != fullReplay.Instructions {
		t.Fatalf("sampled replay committed %d instructions, full replay %d",
			first.Instructions, fullReplay.Instructions)
	}
}

// TestBackToBackWindows pins the Window == Period edge: a schedule
// with no functional gap runs every instruction detailed and must
// reproduce the unsampled machine's timing and memory behavior
// exactly, differing only in the sampling metadata.
func TestBackToBackWindows(t *testing.T) {
	const procs = 2
	prog := sampleFFT(procs)
	full, err := machine.Run(replayConfig(procs), prog)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sampledConfig(procs)
	cfg.Sampling.Period = 1000
	cfg.Sampling.Window = 1000
	cfg.Sampling.Warmup = 0
	res, err := machine.Run(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sampling.FunctionalInstrs != 0 {
		t.Fatalf("back-to-back windows fast-forwarded %d instructions", res.Sampling.FunctionalInstrs)
	}
	if res.Exec != full.Exec || res.Total != full.Total ||
		res.Instructions != full.Instructions || res.L1 != full.L1 ||
		res.L2 != full.L2 || res.TLBMisses != full.TLBMisses {
		t.Fatalf("all-detailed schedule diverged from unsampled run:\nfull:    %v\nsampled: %v", full, res)
	}
}

// TestSamplingPhase pins the phase offset: a nonzero phase begins the
// run functionally, so the first window opens later in the stream.
func TestSamplingPhase(t *testing.T) {
	cfg := sampledConfig(2)
	cfg.Sampling.Phase = 5000
	res, err := machine.Run(cfg, sampleFFT(2))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Sampled || res.Sampling.FunctionalInstrs < 2*5000 {
		t.Fatalf("phase prefix not fast-forwarded: %+v", res.Sampling)
	}
}

// plainStream hides any bulk-skip capability of the wrapped stream, so
// the sampling engine must expand collapsed compute runs one Next call
// at a time.
type plainStream struct{ s cpu.Stream }

func (p plainStream) Next() (isa.Instr, bool) { return p.s.Next() }

// noSkipDriver is a replay driver whose streams refuse bulk skipping.
type noSkipDriver struct{ machine.Driver }

func (d noSkipDriver) Stream(i int) cpu.Stream { return plainStream{d.Driver.Stream(i)} }

// TestSampledReplaySkipEquivalence pins that the O(1) compute-run skip
// in sampled replay is purely an optimization: fast-forwarding a
// replay image with bulk skip produces bit-identical results to
// expanding every collapsed filler through Next.
func TestSampledReplaySkipEquivalence(t *testing.T) {
	const procs = 2
	cfg := replayConfig(procs)
	prog := sampleFFT(procs)
	var buf bytes.Buffer
	tw, err := trace.NewWriter(&buf, trace.Meta{Workload: prog.FullName(), Threads: procs})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := machine.RunCapture(cfg, prog, tw); err != nil {
		t.Fatal(err)
	}
	tr, err := trace.Decode(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	img, err := machine.PrepareReplay(tr)
	if err != nil {
		t.Fatal(err)
	}
	scfg := sampledConfig(procs)
	skipped, err := machine.RunReplay(scfg, img)
	if err != nil {
		t.Fatal(err)
	}
	expanded, err := machine.RunWith(scfg, noSkipDriver{machine.NewReplayDriver(scfg, img)})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(skipped, expanded) {
		t.Fatalf("bulk skip changed the sampled replay result:\nskipped:  %+v\nexpanded: %+v", skipped, expanded)
	}
}
