package machine

import (
	"testing"

	"flashsim/internal/cache"
	"flashsim/internal/emitter"
	"flashsim/internal/memsys"
	"flashsim/internal/osmodel"
	"flashsim/internal/sim"
	"flashsim/internal/vm"
)

// testMachine assembles a minimal single-node machine around a port for
// white-box path testing. The tests below drive the canDefer=false
// bodies — the barrier executor's synchronous re-entry — so every path
// completes inline without an engine to run the deferred ops.
func testMachine(t *testing.T, osKind osmodel.Kind) (*Machine, *memPort, emitter.Region) {
	t.Helper()
	cfg := Base(1, true)
	cfg.Name = "port-test"
	cfg.OS = osmodel.Config{Kind: osKind, TLBEntries: 64, TLBHandlerCycles: 65, PageFaultCycles: 100, SyscallCycles: 10}
	if osKind == osmodel.Solo {
		cfg.OS = osmodel.DefaultSolo()
	}
	cfg.ModelL2InterfaceOccupancy = true
	space := emitter.NewAddressSpace()
	region := space.AllocPageAligned("data", 1<<20, emitter.Placement{Kind: emitter.PlaceOnNode, Node: 0})
	m := &Machine{cfg: cfg}
	pt := osmodel.NewPageTable(cfg.OS.Kind, space, 1, cfg.Colors())
	m.os = osmodel.New(cfg.OS, pt, 1)
	m.mem = memsys.NewFlashLite(memsys.DefaultFlashConfig(1, cfg.FlashTiming))
	m.mem.SetPeers(m)
	clock := sim.NewClock(cfg.ClockMHz)
	p := &memPort{
		m: m, node: 0, clock: clock,
		l1:   cache.New(cfg.L1D),
		l2:   cache.New(cfg.L2),
		wb:   cache.NewWriteBuffer(cfg.WriteBufferEntries),
		mshr: cache.NewMSHRs(cfg.MSHRCount),
		l2if: &cache.L2Interface{Enabled: cfg.ModelL2InterfaceOccupancy, TransferTicks: sim.NS(cfg.L2TransferNS)},
	}
	m.nodes = []*node{{id: 0, port: p}}
	return m, p, region
}

func TestPortLoadMissThenHits(t *testing.T) {
	_, p, r := testMachine(t, osmodel.Solo)
	mi := p.load(0, r.Base, 8, false)
	if !mi.WentToMemory || mi.L1Hit {
		t.Fatalf("cold load: %+v", mi)
	}
	mi2 := p.load(mi.Done, r.Base+8, 8, false)
	if !mi2.L1Hit {
		t.Fatalf("second load in same line should hit L1: %+v", mi2)
	}
	if mi2.Done-mi.Done != p.cyc(p.m.cfg.L1HitCycles) {
		t.Fatalf("L1 hit latency %d", mi2.Done-mi.Done)
	}
}

func TestPortL2HitAfterL1Eviction(t *testing.T) {
	_, p, r := testMachine(t, osmodel.Solo)
	now := p.load(0, r.Base, 8, false).Done
	// Evict the L1 line by filling its set (L1: 4 KB way, 2 ways).
	for i := 1; i <= 2; i++ {
		now = p.load(now, r.Base+uint64(i)*4096, 8, false).Done
	}
	mi := p.load(now, r.Base, 8, false)
	if !mi.L2Hit || mi.L1Hit {
		t.Fatalf("expected L2 hit: %+v", mi)
	}
}

func TestPortStoreGetsExclusiveThenSilentUpgrade(t *testing.T) {
	_, p, r := testMachine(t, osmodel.Solo)
	// Load first: exclusive grant (unowned line).
	mi := p.load(0, r.Base, 8, false)
	// Store to the same line: must be an L1 hit (E -> M), no upgrade.
	st := p.store(mi.Done, r.Base, 8, false)
	if !st.L1Hit {
		t.Fatalf("store to exclusively held line missed: %+v", st)
	}
	if p.stats.Upgrades != 0 {
		t.Fatalf("upgrade issued: %d", p.stats.Upgrades)
	}
	if p.l2.Lookup(pToPA(p, r.Base)) != cache.Modified {
		t.Fatal("dirtiness not propagated to L2")
	}
}

func TestPortWriteBufferAbsorbsStoreMisses(t *testing.T) {
	_, p, r := testMachine(t, osmodel.Solo)
	// Four store misses to distinct lines proceed immediately.
	var now sim.Ticks
	for i := 0; i < 4; i++ {
		mi := p.store(now, r.Base+uint64(i)*128, 8, false)
		if mi.Done > now+p.cyc(25) {
			t.Fatalf("store %d stalled: %d -> %d", i, now, mi.Done)
		}
		now = mi.Done
	}
}

func TestPortPrefetchFillsCache(t *testing.T) {
	_, p, r := testMachine(t, osmodel.Solo)
	p.prefetch(0, r.Base, false)
	if p.l2.Lookup(pToPA(p, r.Base)) == cache.Invalid {
		t.Fatal("prefetch did not fill L2")
	}
	mi := p.load(sim.NS(10000), r.Base, 8, false)
	if !mi.L1Hit {
		t.Fatalf("post-prefetch load missed: %+v", mi)
	}
}

func TestPortPrefetchDroppedOnTLBMissUnderSimOS(t *testing.T) {
	_, p, r := testMachine(t, osmodel.SimOS)
	p.prefetch(0, r.Base, false) // page never touched: TLB cold -> dropped
	if p.stats.PrefetchDrops != 1 {
		t.Fatalf("drops %d", p.stats.PrefetchDrops)
	}
	if p.l2.Lookup(pToPA(p, r.Base)) != cache.Invalid {
		t.Fatal("dropped prefetch filled the cache")
	}
}

func TestPortTLBPenaltyCharged(t *testing.T) {
	_, p, r := testMachine(t, osmodel.SimOS)
	mi := p.load(0, r.Base, 8, false)
	if !mi.TLBMiss {
		t.Fatal("first touch must miss the TLB")
	}
	if p.stats.TLBPenaltyTicks == 0 {
		t.Fatal("no penalty recorded")
	}
}

func TestPortCacheOpWritesBackDirtyLine(t *testing.T) {
	_, p, r := testMachine(t, osmodel.Solo)
	st := p.store(0, r.Base, 8, false)
	mi := p.cacheOp(st.Done, r.Base, 0, false)
	if !mi.DirtyCacheOp {
		t.Fatal("dirty line not detected")
	}
	if p.l2.Lookup(pToPA(p, r.Base)) != cache.Invalid || p.l1.Lookup(pToPA(p, r.Base)) != cache.Invalid {
		t.Fatal("line survived writeback-invalidate")
	}
	// Directory must show the line back in memory.
	stDir, _, _ := p.m.mem.Directory().State(p.l2.Config().LineAddr(pToPA(p, r.Base)))
	_ = stDir // state checked indirectly: a re-load must be a clean case
	mi2 := p.load(mi.Done+sim.NS(5000), r.Base, 8, false)
	if !mi2.WentToMemory {
		t.Fatal("re-load after flush should go to memory")
	}
}

// pToPA translates a VA through the machine's page table (test helper).
func pToPA(p *memPort, va uint64) uint64 {
	pp, ok := p.m.os.PageTable().Lookup(va)
	if !ok {
		return 0
	}
	return pp.Addr(va)
}

func TestPortInclusionOnL2Eviction(t *testing.T) {
	_, p, r := testMachine(t, osmodel.Solo)
	// Solo hands out frames in touch order, so to get three physical
	// addresses one L2 way apart (64 KB = 16 pages) we touch 15 filler
	// pages between each conflicting target.
	var now sim.Ticks
	target := func(i int) uint64 { return r.Base + uint64(i)*16*vm.PageSize }
	for i := 0; i < 3; i++ {
		now = p.load(now, target(i), 8, false).Done
		for f := 1; f < 16; f++ {
			now = p.load(now, target(i)+uint64(f)*vm.PageSize, 8, false).Done
		}
	}
	pa0, pa1, pa2 := pToPA(p, target(0)), pToPA(p, target(1)), pToPA(p, target(2))
	set := func(pa uint64) uint64 { return (pa >> 7) & (p.l2.Config().Sets() - 1) }
	if set(pa0) != set(pa1) || set(pa1) != set(pa2) {
		t.Fatalf("targets not conflicting: sets %d %d %d", set(pa0), set(pa1), set(pa2))
	}
	if p.l2.Lookup(pa0) != cache.Invalid {
		t.Fatal("victim still in L2")
	}
	if p.l1.Lookup(pa0) != cache.Invalid {
		t.Fatal("inclusion violated: L1 retains an evicted L2 line")
	}
}
