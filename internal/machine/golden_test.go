package machine_test

import (
	"testing"

	"flashsim/internal/apps"
	"flashsim/internal/machine"
	"flashsim/internal/memsys"
	"flashsim/internal/osmodel"
)

// golden is one pinned result per CPU-detail rung. The values were
// first recorded from the three-entry-point machine immediately before
// the Driver/RunWith seam landed, and re-pinned once when the windowed
// (shard-parallel) engine replaced the single global event loop.
//
// The windowed engine executes every shared-memory transaction at a
// window barrier in strict global (t, node, seq) order, where the old
// loop issued them in event-firing order with up to a quantum of
// causality skew, and it defers L2-miss fills to the barrier, so
// multiprocessor timings and hit counts legitimately moved in that
// transition (single-processor counters did not). These pins are the
// oracle that the engine has not drifted since: a regression here means
// timing changed, not just structure — any intentional semantic change
// must re-derive every row and say why in this comment's history.
type golden struct {
	exec, total int64
	instrs      uint64
	l1Hits      uint64
	l2Misses    uint64
	tlbMisses   uint64
}

func goldenConfig(procs int, os osmodel.Config) machine.Config {
	cfg := machine.Base(procs, true)
	cfg.Name = "golden"
	cfg.ClockMHz = 150
	cfg.OS = os
	cfg.Mem = machine.MemFlashLite
	cfg.FlashTiming = memsys.TrueTiming()
	return cfg
}

// TestEngineSeamMatchesPreRefactorGoldens pins execution-driven
// results at each CPU-detail rung (classic Mipsy, Mipsy with
// functional-unit latencies, MXS) and under both OS models against
// values recorded before the engine seam existed.
func TestEngineSeamMatchesPreRefactorGoldens(t *testing.T) {
	rungs := []struct {
		name  string
		procs int
		mut   func(*machine.Config)
		want  golden
	}{
		{"p1-mipsy", 1, func(c *machine.Config) {},
			golden{592751, 854173, 57858, 27632, 260, 9}},
		{"p1-mipsy-lat", 1, func(c *machine.Config) { c.ModelInstrLatency = true },
			golden{684911, 946333, 57858, 27632, 260, 9}},
		{"p1-mxs", 1, func(c *machine.Config) { c.CPU = machine.CPUMXS },
			golden{491395, 751227, 57858, 27632, 260, 9}},
		{"p2-mipsy", 2, func(c *machine.Config) {},
			golden{414053, 559025, 57864, 27418, 1669, 18}},
		{"p2-mipsy-lat", 2, func(c *machine.Config) { c.ModelInstrLatency = true },
			golden{453419, 598391, 57864, 27457, 1634, 18}},
		{"p2-mxs", 2, func(c *machine.Config) { c.CPU = machine.CPUMXS },
			golden{332491, 476665, 57864, 27550, 1509, 18}},
	}
	for _, rg := range rungs {
		rg := rg
		t.Run(rg.name, func(t *testing.T) {
			t.Parallel()
			cfg := goldenConfig(rg.procs, osmodel.DefaultSimOS())
			rg.mut(&cfg)
			prog := apps.FFT(apps.FFTOpts{LogN: 10, Procs: rg.procs, TLBBlocked: true, Prefetch: true})
			res, err := machine.Run(cfg, prog)
			if err != nil {
				t.Fatal(err)
			}
			checkGolden(t, res, rg.want)
		})
	}

	t.Run("p2-solo-lu", func(t *testing.T) {
		t.Parallel()
		cfg := goldenConfig(2, osmodel.DefaultSolo())
		res, err := machine.Run(cfg, apps.LU(apps.LUOpts{N: 64, Procs: 2}))
		if err != nil {
			t.Fatal(err)
		}
		checkGolden(t, res, golden{1616174, 1641308, 279452, 138377, 400, 0})
	})
}

func checkGolden(t *testing.T, res machine.Result, want golden) {
	t.Helper()
	got := golden{
		exec:      int64(res.Exec),
		total:     int64(res.Total),
		instrs:    res.Instructions,
		l1Hits:    res.L1.Hits,
		l2Misses:  res.L2.Misses,
		tlbMisses: res.TLBMisses,
	}
	if got != want {
		t.Fatalf("diverged from pre-refactor golden:\ngot:  %+v\nwant: %+v", got, want)
	}
	if res.Sampled {
		t.Fatal("non-sampled run reported Sampled=true")
	}
}
