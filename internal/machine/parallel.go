package machine

import (
	"fmt"
	"sort"

	"flashsim/internal/cpu"
	"flashsim/internal/isa"
	"flashsim/internal/sim"
)

// This file is the windowed conservative engine: one event-loop
// algorithm for every shard count, S=1 included, so an S-shard run is
// bit-identical to a serial run by construction rather than by a
// separate proof per subsystem.
//
// The machine's nodes are partitioned into S shards, each owning a
// private event queue. Time advances in fixed windows [T, T+W), W
// derived from the interconnect's conservative lookahead (the 45-tick
// per-hop link latency — no message can affect another node sooner)
// times a fixed multiplier. Within a window the engine runs rounds:
//
//  1. Parallel phase: every shard drains its queue up to T+W. Node
//     work in this phase is strictly node-local — translation of
//     mapped pages, L1/L2 tag checks, write-buffer slots. Anything
//     that needs shared state (memory-system transactions, page
//     faults, sync operations) is pushed as a pendingOp and the node
//     either suspends (cpu.Blocked) or proceeds fire-and-forget.
//  2. Barrier: the per-node op lists are concatenated in node order,
//     sorted by (t, node, seq), and executed serially through the
//     same synchronous memory-system code a serial simulator runs.
//     Blocking ops hand their completed MemInfo back to the suspended
//     core (cpu.Blocking.Deliver) and reschedule it.
//  3. Repeat until a parallel phase produces no ops, then advance T to
//     the window containing the earliest pending event.
//
// The round structure — which events run in which parallel phase, and
// the sorted op order — depends only on the event timestamps and the
// (t, node, seq) keys, never on the shard count or on goroutine
// scheduling, so results are identical at every S. Shards only decide
// which cores step concurrently inside a phase, where all work is
// node-local by construction.

// windowLookaheadMult scales the interconnect lookahead into the engine
// window width W. Correctness and determinism do not depend on it (the
// barrier protocol serializes all shared-state work at any W); it is a
// staleness-versus-barrier-overhead knob: larger windows batch more
// node-local work per barrier but let node-local state (caches seen by
// inline hits) go longer between cross-node effects. It is a compile-
// time constant, not configuration, so every run at a given config uses
// the same quantization.
const windowLookaheadMult = 64

// eventCap bounds total dispatched events per run (runaway guard, far
// above any real run).
const eventCap = 2_000_000_000

// opKind enumerates the deferred-operation types the barrier executes.
type opKind uint8

const (
	// opSync is a LOCK/UNLOCK/BARRIER instruction (instr).
	opSync opKind = iota
	// opLoadMiss finishes a load L2 miss (blocking).
	opLoadMiss
	// opLoadFull re-runs a whole load whose page needs a fault (blocking).
	opLoadFull
	// opStoreMiss finishes a store L2 miss behind a write-buffer
	// placeholder (fire-and-forget; patches the placeholder).
	opStoreMiss
	// opStoreMissBlock finishes a store L2 miss that found the write
	// buffer full of placeholders (blocking).
	opStoreMissBlock
	// opStoreFull re-runs a whole store whose page needs a fault (blocking).
	opStoreFull
	// opCacheFull re-runs a whole CACHE op whose page needs a fault (blocking).
	opCacheFull
	// opPrefetch issues a deferred prefetch read (fire-and-forget).
	opPrefetch
	// opPrefetchFull re-runs a whole prefetch whose page needs a
	// backdoor fault (fire-and-forget; Solo only).
	opPrefetchFull
	// opWriteback issues a deferred dirty-line writeback (fire-and-forget).
	opWriteback
	// opWarmLoad / opWarmStore finish warm-path misses; opWarmFull
	// re-runs a whole warm access needing a fault (all fire-and-forget).
	opWarmLoad
	opWarmStore
	opWarmFull
)

// pendingOp is one deferred shared-state operation. The (t, node, seq)
// triple is its global execution key: t is the operation's simulated
// time (kept monotone per node by memPort.push), node breaks ties, seq
// preserves each node's issue order.
type pendingOp struct {
	t    sim.Ticks
	node int
	seq  uint64
	kind opKind

	va      uint64
	pa      uint64
	size    uint32
	aux     uint32
	tlbMiss bool
	instr   isa.Instr
}

// shard is one partition of the machine's nodes with its private event
// queue. Only the shard's worker (or the engine goroutine, for S=1 or
// during serial phases) touches it.
type shard struct {
	id       int
	queue    *sim.Queue
	fired    int
	finished int

	work chan sim.Ticks // parallel-phase window boundaries
	done chan any       // nil or recovered panic
}

// runTo drains the shard's queue up to (excluding) limit.
func (sh *shard) runTo(limit sim.Ticks) {
	q := sh.queue
	for {
		at, ok := q.PeekAt()
		if !ok || at >= limit {
			return
		}
		n := q.StepBatch()
		sh.fired += n
		if sh.fired > eventCap {
			return
		}
	}
}

// shardOf maps node i to its shard index: contiguous blocks, balanced
// to within one node, correct for any S ≤ P (including non-powers of
// two).
func shardOf(i, procs, shards int) int { return i * shards / procs }

// drive runs the windowed engine to quiescence.
func (m *Machine) drive() {
	for _, n := range m.nodes {
		n.shard.queue.ScheduleFn(0, int32(n.id), m, uint64(n.id))
	}
	par := len(m.shards) > 1
	if par {
		for _, sh := range m.shards {
			sh.work = make(chan sim.Ticks)
			sh.done = make(chan any, 1)
			go sh.worker(m)
		}
		defer func() {
			for _, sh := range m.shards {
				close(sh.work)
			}
		}()
	}

	var merged []pendingOp
	W := m.window
	T := sim.Ticks(0)
	for {
		for {
			// Parallel phase: drain every shard up to the window edge.
			if par {
				for _, sh := range m.shards {
					sh.work <- T + W
				}
				for _, sh := range m.shards {
					if p := <-sh.done; p != nil {
						panic(p)
					}
				}
			} else {
				m.shards[0].runTo(T + W)
			}
			// Barrier: merge per-node op lists in node order and execute
			// in global (t, node, seq) order.
			merged = merged[:0]
			for _, n := range m.nodes {
				merged = append(merged, n.port.ops...)
				n.port.ops = n.port.ops[:0]
			}
			if len(merged) == 0 {
				break
			}
			sort.Slice(merged, func(i, j int) bool {
				a, b := merged[i], merged[j]
				if a.t != b.t {
					return a.t < b.t
				}
				if a.node != b.node {
					return a.node < b.node
				}
				return a.seq < b.seq
			})
			for i := range merged {
				m.execOp(&merged[i])
			}
			if m.runErr != nil {
				return
			}
		}
		if m.runErr != nil || m.firedTotal() >= eventCap {
			return
		}
		// Advance to the window holding the earliest pending event. A
		// quiesced round left nothing below T+W, so next ≥ T+W and the
		// division skips empty windows in one step.
		next := sim.Forever
		for _, sh := range m.shards {
			if at, ok := sh.queue.PeekAt(); ok && at < next {
				next = at
			}
		}
		if next == sim.Forever {
			return
		}
		T = (next / W) * W
	}
}

// worker is a shard's goroutine: one parallel phase per work item.
// Panics (stream failures surface as panics in core code) are carried
// back to the engine goroutine and re-raised there.
func (sh *shard) worker(m *Machine) {
	for limit := range sh.work {
		func() {
			defer func() {
				sh.done <- recover()
			}()
			sh.runTo(limit)
		}()
	}
}

// firedTotal sums dispatched events across shards.
func (m *Machine) firedTotal() int {
	n := 0
	for _, sh := range m.shards {
		n += sh.fired
	}
	return n
}

// pendingEvents sums queued events across shards (deadlock reporting).
func (m *Machine) pendingEvents() int {
	n := 0
	for _, sh := range m.shards {
		n += sh.queue.Len()
	}
	return n
}

// finishedTotal sums finished processors across shards.
func (m *Machine) finishedTotal() int {
	n := 0
	for _, sh := range m.shards {
		n += sh.finished
	}
	return n
}

// execOp executes one deferred operation through the synchronous
// memory-system code. It runs on the engine goroutine with every shard
// parked at the barrier, so it may touch any state — including other
// nodes' caches via the coherence protocol's peer invalidations.
func (m *Machine) execOp(op *pendingOp) {
	n := m.nodes[op.node]
	p := n.port
	switch op.kind {
	case opSync:
		m.handleSync(n, cpu.Outcome{Kind: cpu.SyncOp, Time: op.t, Instr: op.instr})
	case opLoadMiss:
		m.deliver(n, p.finishLoadMiss(op.t, op.pa, op.tlbMiss))
	case opLoadFull:
		m.deliver(n, p.load(op.t, op.va, op.size, false))
	case opStoreMiss:
		mdone, _ := p.finishStoreMiss(op.t, op.pa)
		p.wb.Patch(mdone)
	case opStoreMissBlock:
		mdone, issuedAt := p.finishStoreMiss(op.t, op.pa)
		proceed := p.wb.Push(op.t, mdone)
		m.deliver(n, cpu.MemInfo{Done: proceed, TLBMiss: op.tlbMiss, WentToMemory: true, IssuedAt: issuedAt})
	case opStoreFull:
		m.deliver(n, p.store(op.t, op.va, op.size, false))
	case opCacheFull:
		m.deliver(n, p.cacheOp(op.t, op.va, op.aux, false))
	case opPrefetch:
		p.finishPrefetch(op.t, op.pa)
	case opPrefetchFull:
		p.prefetch(op.t, op.va, false)
	case opWriteback:
		m.mem.Writeback(op.t, op.node, op.pa)
	case opWarmLoad:
		p.finishWarmLoad(op.t, op.pa)
	case opWarmStore:
		p.finishWarmStore(op.t, op.pa)
	case opWarmFull:
		p.warmAccess(op.t, op.instr, false)
	default:
		m.runErr = fmt.Errorf("machine %q: unknown pending op kind %d", m.cfg.Name, op.kind)
	}
}

// deliver completes a suspended core's deferred access and reschedules
// it at the resume time the core reports. The resume may precede events
// the node's shard already dispatched this window — that is the reason
// shard queues run relaxed.
func (m *Machine) deliver(n *node, mi cpu.MemInfo) {
	t := n.core.(cpu.Blocking).Deliver(mi)
	n.shard.queue.ScheduleFn(t, int32(n.id), m, uint64(n.id))
}
