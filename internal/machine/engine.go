package machine

import (
	"fmt"

	"flashsim/internal/cpu"
	"flashsim/internal/cpu/mipsy"
	"flashsim/internal/cpu/mxs"
	"flashsim/internal/emitter"
	"flashsim/internal/obs"
	"flashsim/internal/sim"
	"flashsim/internal/trace"
)

// Driver supplies the instruction side of one machine run: an address
// space, one instruction stream per node, and per-node core
// construction over those streams. It is the execution-engine seam —
// the execution-driven emitter, trace replay, and trace capture are
// all drivers over the same machine, and the sampling Schedule can
// interpose its window gate between any driver's streams and its
// cores.
//
// Lifecycle: RunWith calls Space/Threads/Workload for validation,
// Stream and NewCore once per node during build, drives the event loop
// to quiescence, and then calls Finish exactly once — with ok=false on
// any failure path — so drivers can release producer goroutines and
// seal artifacts.
type Driver interface {
	// Workload names the instruction source ("fft/p4", a trace's
	// recorded workload) for results and metrics.
	Workload() string
	// Threads is the number of per-node streams the driver supplies;
	// it must equal the machine's processor count.
	Threads() int
	// Space is the program's address space (the page-table layout).
	Space() *emitter.AddressSpace
	// Stream returns node i's instruction source.
	Stream(i int) cpu.Stream
	// NewCore builds node i's processor over src. src is normally the
	// driver's own Stream(i); under a sampling schedule it is that
	// stream wrapped in a window gate, and drivers with a specialized
	// fast path (trace replay's collapsed-action core) must fall back
	// to a stream-consuming core when src is not their own.
	NewCore(i int, clock sim.Clock, src cpu.Stream, port cpu.Port) cpu.CPU
	// Finish releases the driver's resources and returns the
	// instruction-stream accounting folded into Result.Metrics. ok
	// reports whether the run drained cleanly; the error returned on
	// ok=true failures (stream errors, artifact sealing) fails the run.
	Finish(ok bool) (obs.EmitterCounters, error)
}

// RunWith executes one run of cfg with the supplied driver: the single
// engine entry point behind Run, RunCapture, and RunReplay. Each call
// builds a fresh machine; state never leaks between runs.
func RunWith(cfg Config, d Driver) (Result, error) {
	fail := func(err error) (Result, error) {
		d.Finish(false)
		return Result{}, err
	}
	if err := cfg.Validate(); err != nil {
		return fail(err)
	}
	if d.Threads() != cfg.Procs {
		return fail(fmt.Errorf("machine %q: %s supplies %d instruction streams but machine has %d processors",
			cfg.Name, d.Workload(), d.Threads(), cfg.Procs))
	}
	sched := cfg.Sampling.Schedule()

	m := build(cfg, d.Space(), func(i int, clock sim.Clock, p *memPort) cpu.CPU {
		src := d.Stream(i)
		if !sched.Enabled() {
			return d.NewCore(i, clock, src, p)
		}
		gate := &windowGate{src: src}
		inner := d.NewCore(i, clock, gate, p)
		return newSampledCPU(sched, clock, inner, gate, src, p)
	})
	m.drive()

	finished := m.finishedTotal()
	ok := m.runErr == nil && finished == cfg.Procs
	em, err := d.Finish(ok)
	if err != nil {
		return Result{}, fmt.Errorf("machine %q: %w", cfg.Name, err)
	}
	if m.runErr != nil {
		return Result{}, m.runErr
	}
	if finished != cfg.Procs {
		return Result{}, fmt.Errorf("machine %q: deadlock: %d of %d processors finished (pending events %d)",
			cfg.Name, finished, cfg.Procs, m.pendingEvents())
	}
	res := m.collect(em)
	res.Metrics.Workload = d.Workload()
	return res, nil
}

// execDriver is the execution-driven driver: a launched program whose
// per-thread emitter goroutines feed the streams.
type execDriver struct {
	cfg     Config
	name    string
	space   *emitter.AddressSpace
	streams *emitter.Streams
}

// NewExecutionDriver launches prog's emitter threads and returns the
// execution-driven driver over them. The driver owns the producer
// goroutines; RunWith's Finish call releases them on every path.
func NewExecutionDriver(cfg Config, prog emitter.Program) Driver {
	space, streams := prog.Launch()
	return &execDriver{cfg: cfg, name: prog.FullName(), space: space, streams: streams}
}

func (d *execDriver) Workload() string             { return d.name }
func (d *execDriver) Threads() int                 { return len(d.streams.Readers) }
func (d *execDriver) Space() *emitter.AddressSpace { return d.space }
func (d *execDriver) Stream(i int) cpu.Stream      { return d.streams.Readers[i] }

// NewCore builds the configured processor model — the one construction
// path shared by plain runs, captures, and (via mipsy over an expanded
// stream) sampled replays.
func (d *execDriver) NewCore(i int, clock sim.Clock, src cpu.Stream, port cpu.Port) cpu.CPU {
	return newConfiguredCore(d.cfg, i, clock, src, port)
}

func (d *execDriver) Finish(ok bool) (obs.EmitterCounters, error) {
	if !ok {
		d.streams.Abort()
		// Surface a workload panic over the machine's own failure: the
		// stream dying is usually why the run did not drain.
		return obs.EmitterCounters{}, d.streams.Err()
	}
	if err := d.streams.Err(); err != nil {
		d.streams.Abort()
		return obs.EmitterCounters{}, err
	}
	em := d.streams.Counters()
	d.streams.Abort()
	return em, nil
}

// newConfiguredCore constructs the processor model cfg selects. Every
// execution mode funnels through here, so fidelity knobs (latencies,
// MXS bugs, per-core seeds) behave identically regardless of where the
// instructions come from.
func newConfiguredCore(cfg Config, i int, clock sim.Clock, src cpu.Stream, port cpu.Port) cpu.CPU {
	switch cfg.CPU {
	case CPUMXS:
		mc := mxs.DefaultConfig(clock)
		mc.Fidelity = cfg.MXS
		mc.Quantum = cfg.Quantum
		mc.Seed = cfg.Seed + uint64(i)*0x9E37
		return mxs.New(mc, src, port)
	default:
		return mipsy.New(mipsy.Config{
			Clock:             clock,
			ModelInstrLatency: cfg.ModelInstrLatency,
			Quantum:           cfg.Quantum,
		}, src, port)
	}
}

// captureDriver decorates an execution driver with a trace writer: the
// program launches with the writer's tap installed, and Finish seals
// the container once every producer has flushed through it. Capture is
// a decoration, not a separate entry point — the machine underneath is
// byte-identical to an untapped run.
type captureDriver struct {
	*execDriver
	tw *trace.Writer
}

// NewCaptureDriver launches prog with every emitted batch mirrored
// into tw and returns the capturing driver.
func NewCaptureDriver(cfg Config, prog emitter.Program, tw *trace.Writer) (Driver, error) {
	if tw == nil {
		return nil, fmt.Errorf("machine %q: capture needs a trace writer", cfg.Name)
	}
	if tw.Threads() != prog.Threads {
		return nil, fmt.Errorf("machine %q: trace writer expects %d threads, program %s has %d",
			cfg.Name, tw.Threads(), prog.FullName(), prog.Threads)
	}
	prog.Tap = tw.Tap
	return &captureDriver{
		execDriver: NewExecutionDriver(cfg, prog).(*execDriver),
		tw:         tw,
	}, nil
}

func (d *captureDriver) Finish(ok bool) (obs.EmitterCounters, error) {
	em, err := d.execDriver.Finish(ok)
	if !ok || err != nil {
		return em, err
	}
	// Every reader drained (all cores finished), so every producer has
	// flushed through the tap; Wait pins the goroutine exits before the
	// container is sealed.
	d.streams.Wait()
	d.tw.SetLayout(d.space)
	if err := d.tw.Finish(); err != nil {
		return em, fmt.Errorf("sealing trace: %w", err)
	}
	return em, nil
}
