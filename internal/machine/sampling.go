package machine

import (
	"flashsim/internal/cpu"
	"flashsim/internal/isa"
	"flashsim/internal/sim"
)

// Schedule is a node's fidelity plan: which instruction-count segments
// of its stream execute on the detailed core model and which
// fast-forward functionally. The zero value is the all-detailed
// schedule. Segments repeat with cycle Period; the detailed window
// occupies the first Window instructions of each period, offset into
// the stream by Phase functional instructions.
type Schedule struct {
	Phase  uint64
	Period uint64
	Window uint64
	Warmup uint64
	// WarmState selects whether functional segments touch cache, TLB,
	// and directory state (the warm-warmup policy) or nothing at all.
	WarmState bool
}

// Schedule derives the per-node fidelity schedule from the sampling
// configuration (the zero Schedule when sampling is disabled).
func (s SamplingConfig) Schedule() Schedule {
	if !s.Enabled {
		return Schedule{}
	}
	return Schedule{
		Phase:     s.Phase,
		Period:    s.Period,
		Window:    s.Window,
		Warmup:    s.Warmup,
		WarmState: !s.ColdState,
	}
}

// Enabled reports whether the schedule ever switches drivers (a zero
// schedule runs everything detailed).
func (s Schedule) Enabled() bool { return s.Period > 0 }

// SegmentAt returns the segment containing instruction index n: its
// kind and how many instructions of it remain from n (inclusive).
// Exposed for tests; the sampled core tracks segments incrementally.
func (s Schedule) SegmentAt(n uint64) (detailed bool, left uint64) {
	if !s.Enabled() {
		return true, ^uint64(0)
	}
	if n < s.Phase {
		return false, s.Phase - n
	}
	pos := (n - s.Phase) % s.Period
	if pos < s.Window {
		return true, s.Window - pos
	}
	return false, s.Period - pos
}

// SamplingStats is the window accounting of a sampled run, aggregated
// across nodes into Result.Sampling. The zero value means the run was
// not sampled.
type SamplingStats struct {
	// Windows counts completed-or-started detailed windows.
	Windows uint64
	// DetailedInstrs and FunctionalInstrs partition the committed
	// instruction count by fidelity; WarmupInstrs is the portion of
	// DetailedInstrs inside the warmup prefix of a window.
	DetailedInstrs   uint64
	WarmupInstrs     uint64
	FunctionalInstrs uint64
	// WarmTouches counts memory operations that warmed cache/TLB/
	// directory state during fast-forward (zero under cold warmup).
	WarmTouches uint64
}

// add folds one core's counters into the aggregate.
func (a *SamplingStats) add(b SamplingStats) {
	a.Windows += b.Windows
	a.DetailedInstrs += b.DetailedInstrs
	a.WarmupInstrs += b.WarmupInstrs
	a.FunctionalInstrs += b.FunctionalInstrs
	a.WarmTouches += b.WarmTouches
}

// windowGate meters a stream into a detailed core: Next passes
// instructions through while the window budget lasts and reports
// end-of-stream when the budget is exhausted, which makes the inner
// core yield Finished at exact instruction-count boundaries without
// knowing it is being sampled. eof distinguishes the real end of the
// underlying stream from a closed gate.
type windowGate struct {
	src    cpu.Stream
	budget uint64
	used   uint64 // instructions passed through the current window
	eof    bool
}

func (g *windowGate) Next() (isa.Instr, bool) {
	if g.budget == 0 {
		return isa.Instr{}, false
	}
	in, ok := g.src.Next()
	if !ok {
		g.eof = true
		g.budget = 0
		return isa.Instr{}, false
	}
	g.budget--
	g.used++
	return in, true
}

// funcSlice bounds instructions consumed per functional Run call. The
// functional model makes no shared-resource reservations beyond warm
// state touches, so it can take much larger slices than a detailed
// quantum without distorting global time ordering; sync instructions
// still hand control to the machine immediately.
const funcSlice = 4096

// runSource is an optional stream capability: a stream that keeps
// compute instructions in collapsed run-length form (the replay image)
// can hand the functional driver a whole pending run plus the action
// that follows it in one call, instead of materializing unit-latency
// fillers one Next at a time. Bulk consumption is exact because
// collapsed runs are compute-only by construction — no memory
// operation to warm, no sync to surface, and flat one-cycle timing
// either way — so the fast-forward advances state and time
// identically, in O(runs) instead of O(instructions).
type runSource interface {
	// NextRun consumes up to max instructions: the pending compute run
	// (capped at max) and then, if the cap was not hit, the following
	// action instruction. skip is the run length consumed; hasIn
	// reports whether in holds an action; ok=false means the stream is
	// exhausted (a final trailing run may still return skip > 0 with
	// ok=true first).
	NextRun(max uint64) (skip uint64, in isa.Instr, hasIn, ok bool)
}

// sampledCPU is the Schedule made executable: it alternates a node
// between its detailed core (fed through the window gate) and a
// functional fast-forward driver consuming the same stream directly at
// a flat one cycle per instruction. Sync instructions always surface
// to the machine — barrier and lock semantics are machine-level and
// cannot be skipped — and under the warm policy every fast-forwarded
// memory operation still performs its translation, cache, and
// directory state transitions through the port's warm path.
type sampledCPU struct {
	sched Schedule
	clock sim.Clock
	inner cpu.CPU
	gate  *windowGate
	src   cpu.Stream
	runs  runSource // non-nil when src can bulk-consume compute runs
	port  cpu.Port
	warm  *memPort // non-nil when the schedule warms state

	started  bool
	detailed bool
	segLeft  uint64 // functional instructions left in current segment
	lastT    sim.Ticks
	fnInstr  uint64 // instructions committed functionally
	meta     SamplingStats
}

func newSampledCPU(sched Schedule, clock sim.Clock, inner cpu.CPU, gate *windowGate, src cpu.Stream, port cpu.Port) *sampledCPU {
	c := &sampledCPU{sched: sched, clock: clock, inner: inner, gate: gate, src: src, port: port}
	if rs, ok := src.(runSource); ok {
		c.runs = rs
	}
	if sched.WarmState {
		if mp, ok := port.(*memPort); ok {
			c.warm = mp
		}
	}
	return c
}

// Stats combines the detailed core's counters with the functional
// driver's instruction count. Cycles reports wall cycles at the last
// committed instruction, matching Mipsy's accounting convention.
func (c *sampledCPU) Stats() cpu.Stats {
	st := c.inner.Stats()
	st.Instructions += c.fnInstr
	st.Cycles = uint64(c.lastT / c.clock.Period)
	return st
}

// sampling returns the core's window accounting (collect aggregates it
// into Result.Sampling).
func (c *sampledCPU) sampling() SamplingStats { return c.meta }

// Deliver implements cpu.Blocking by forwarding to the detailed inner
// core: Blocked outcomes only originate inside detailed windows (the
// functional path's shared-state work is all fire-and-forget).
func (c *sampledCPU) Deliver(mi cpu.MemInfo) sim.Ticks {
	t := c.inner.(cpu.Blocking).Deliver(mi)
	c.lastT = t
	return t
}

// openWindow arms the gate for the next detailed window. A schedule
// with no functional gap (Window == Period) opens one unbounded
// window instead: a finite gate would close at instruction-count
// boundaries the unsampled core never yields at, perturbing the
// cross-node event interleaving, so the degenerate all-detailed
// schedule would not be bit-identical to an unsampled run.
func (c *sampledCPU) openWindow() {
	c.detailed = true
	c.gate.budget = c.sched.Window
	if c.sched.Window == c.sched.Period {
		c.gate.budget = ^uint64(0)
	}
	c.gate.used = 0
	c.meta.Windows++
}

// closeWindow accounts the just-finished (possibly truncated) window
// and returns to functional execution.
func (c *sampledCPU) closeWindow() {
	consumed := c.gate.used
	c.meta.DetailedInstrs += consumed
	if wu := c.sched.Warmup; consumed < wu {
		c.meta.WarmupInstrs += consumed
	} else {
		c.meta.WarmupInstrs += wu
	}
	c.detailed = false
	c.segLeft = c.sched.Period - c.sched.Window
}

// Run advances the node from t: detailed segments delegate to the
// inner core, functional segments consume the stream directly. The
// returned outcome obeys the same contract as any core's.
func (c *sampledCPU) Run(t sim.Ticks) cpu.Outcome {
	if !c.started {
		c.started = true
		if c.sched.Phase > 0 {
			c.detailed, c.segLeft = false, c.sched.Phase
		} else {
			c.openWindow()
		}
	}
	for {
		if c.detailed {
			out := c.inner.Run(t)
			if out.Kind != cpu.Finished {
				c.lastT = out.Time
				return out
			}
			if c.gate.eof {
				// The underlying stream really ended.
				c.closeWindow()
				c.lastT = out.Time
				return out
			}
			// The gate closed: the window is over. Continue
			// fast-forwarding from the time the window reached.
			c.closeWindow()
			t = out.Time
			if c.segLeft == 0 {
				// Back-to-back windows (Window == Period).
				c.openWindow()
			}
			continue
		}
		out, more := c.runFunctional(t)
		if !more {
			c.lastT = out.Time
			return out
		}
		// A window boundary was reached mid-slice; switch and continue.
		t = out.Time
		c.openWindow()
	}
}

// runFunctional fast-forwards up to one functional slice from t. It
// returns (outcome, false) when the machine must take over — a yield,
// a sync instruction, or the end of the stream — and (resume point,
// true) when the current functional segment is exhausted and a
// detailed window should open at outcome.Time.
func (c *sampledCPU) runFunctional(t sim.Ticks) (cpu.Outcome, bool) {
	period := c.clock.Period
	src := c.src
	// Segment position and the committed count stay in locals for the
	// hot loop; commit folds them back before every return.
	left := c.segLeft
	var done uint64
	commit := func() {
		c.segLeft = left
		c.fnInstr += done
		c.meta.FunctionalInstrs += done
	}
	for n := 0; n < funcSlice; n++ {
		if left == 0 {
			commit()
			return cpu.Outcome{Kind: cpu.Yield, Time: t}, true
		}
		var in isa.Instr
		if c.runs != nil {
			// Bulk-consume the pending compute run and its following
			// action in one call. The run still charges the slice
			// budget: the slice bound is what fixes the yield cadence,
			// and yields order cross-node warm-state transitions, so
			// consuming k slots at once (instead of k Next calls) is
			// the only difference from the expanded path.
			max := left
			if rem := uint64(funcSlice - n); max > rem {
				max = rem
			}
			k, a, hasIn, ok := c.runs.NextRun(max)
			left -= k
			done += k
			t += period * sim.Ticks(k)
			if !ok {
				commit()
				return cpu.Outcome{Kind: cpu.Finished, Time: t}, false
			}
			if !hasIn {
				// The run hit the slice or segment cap; the loop's n++
				// accounts one of the k consumed slots.
				n += int(k) - 1
				continue
			}
			n += int(k)
			in = a
		} else {
			a, ok := src.Next()
			if !ok {
				commit()
				return cpu.Outcome{Kind: cpu.Finished, Time: t}, false
			}
			in = a
		}
		left--
		done++
		t += period
		switch {
		case in.Op.IsMem():
			if c.warm != nil {
				c.warm.warmAccess(t, in, true)
				c.meta.WarmTouches++
			}
		case in.Op.IsSync():
			commit()
			return cpu.Outcome{Kind: cpu.SyncOp, Time: t, Instr: in}, false
		case in.Op == isa.Syscall:
			// Keep the OS syscall accounting live; the cost itself is
			// timing and is elided.
			c.port.SyscallCost(in.Aux)
		}
	}
	commit()
	return cpu.Outcome{Kind: cpu.Yield, Time: t}, false
}
