package vm

import (
	"flashsim/internal/emitter"
)

// SequentialAllocator is the Solo policy: Solo "performs physical memory
// allocation itself" and "neglects the page-coloring algorithms used in
// modern operating systems". Frames are handed out sequentially per node
// in first-touch order, and — like the mmap-style arenas such simulators
// use — each region's *first* allocation is aligned to a way-size
// boundary, so on a uniprocessor every large array starts at page color
// zero.
//
// This reproduces both directions of the paper's findings: on one
// processor all of Ocean's grids share a color phase and thrash the
// two-way secondary cache (Solo predicted a ~3x higher L2 miss rate than
// SimOS), while on multiple processors only the first-touching node's
// chunk is aligned and the other nodes' portions drift to arbitrary
// phases, so the conflicts vanish (and for 16-processor Radix-Sort the
// drift actually *removes* conflicts that the real, virtually-colored
// IRIX layout has — "Solo does a better job of physical memory
// allocation than IRIX").
type SequentialAllocator struct {
	nodes int
	// alignPages is the way size in pages (= number of page colors);
	// region starts are rounded up to a multiple of it.
	alignPages uint32
	next       []uint32
	seen       map[string]bool
}

// NewSequentialAllocator returns a Solo-style allocator for an n-node
// machine whose secondary cache has the given number of page colors.
// Region starts align to half the way size (the arena-chunk granularity
// of the simulator's allocator), so large arrays land on one of two
// color phases — enough for three-array working sets to conflict in the
// two-way cache on a uniprocessor, without making every pair collide.
func NewSequentialAllocator(nodes int, colors uint32) *SequentialAllocator {
	if colors == 0 {
		colors = 1
	}
	align := colors / 2
	if align == 0 {
		align = 1
	}
	return &SequentialAllocator{
		nodes:      nodes,
		alignPages: align,
		next:       make([]uint32, nodes),
		seen:       make(map[string]bool),
	}
}

// Name identifies the policy.
func (a *SequentialAllocator) Name() string { return "solo-sequential" }

// Reset clears all per-node counters.
func (a *SequentialAllocator) Reset() {
	for i := range a.next {
		a.next[i] = 0
	}
	a.seen = make(map[string]bool)
}

// Allocate hands out the next frame on the page's home node, aligning
// the node's counter on the region's first-ever touch.
func (a *SequentialAllocator) Allocate(vpage uint64, region emitter.Region, touchNode int) PhysPage {
	node := homeNode(vpage, region, touchNode, a.nodes)
	if !a.seen[region.Name] {
		a.seen[region.Name] = true
		if r := a.next[node] % a.alignPages; r != 0 {
			a.next[node] += a.alignPages - r
		}
	}
	f := a.next[node]
	a.next[node]++
	return PhysPage{Node: int32(node), Frame: f}
}

// ColorAllocator is the IRIX policy: virtual-address page coloring. The
// physical frame chosen for virtual page v has cache color v mod colors,
// so the virtual-address layout the application was tuned for (SPLASH-2
// codes pad their arrays with coloring OSes in mind) is preserved in the
// physically indexed secondary cache. Applications whose arrays are
// *not* phase-padded (Radix-Sort's two key arrays are an exact multiple
// of the way size apart) inherit real conflict misses — the ones "that
// are present on the hardware and in SimOS [but] absent in Solo".
type ColorAllocator struct {
	nodes  int
	colors uint32
	used   [][]uint32 // [node][color] frames handed out
}

// NewColorAllocator returns an IRIX-style virtual-coloring allocator.
// colors is the number of page colors of the secondary cache
// (waySize / PageSize).
func NewColorAllocator(nodes int, colors uint32) *ColorAllocator {
	if colors == 0 {
		colors = 1
	}
	a := &ColorAllocator{nodes: nodes, colors: colors}
	a.used = make([][]uint32, nodes)
	for i := range a.used {
		a.used[i] = make([]uint32, colors)
	}
	return a
}

// Name identifies the policy.
func (a *ColorAllocator) Name() string { return "irix-coloring" }

// Reset clears all pools.
func (a *ColorAllocator) Reset() {
	for i := range a.used {
		for c := range a.used[i] {
			a.used[i][c] = 0
		}
	}
}

// Allocate picks the next free frame of color (vpage mod colors) on the
// page's home node. Frames of color c are c, c+colors, c+2*colors, ...
func (a *ColorAllocator) Allocate(vpage uint64, region emitter.Region, touchNode int) PhysPage {
	node := homeNode(vpage, region, touchNode, a.nodes)
	color := uint32(vpage % uint64(a.colors))
	idx := a.used[node][color]
	a.used[node][color]++
	return PhysPage{Node: int32(node), Frame: color + idx*a.colors}
}

// IdentityAllocator maps virtual pages to identical frame numbers on
// their home node ("a mode where physical addresses equal virtual
// addresses", which the paper notes many simulators use). Retained for
// sensitivity studies; note that for private per-node memories identical
// frames on different nodes do not collide.
type IdentityAllocator struct {
	nodes int
}

// NewIdentityAllocator returns a virtual==physical allocator.
func NewIdentityAllocator(nodes int) *IdentityAllocator { return &IdentityAllocator{nodes: nodes} }

// Name identifies the policy.
func (a *IdentityAllocator) Name() string { return "identity" }

// Reset is a no-op: the policy is stateless.
func (a *IdentityAllocator) Reset() {}

// Allocate maps frame = vpage on the home node.
func (a *IdentityAllocator) Allocate(vpage uint64, region emitter.Region, touchNode int) PhysPage {
	node := homeNode(vpage, region, touchNode, a.nodes)
	return PhysPage{Node: int32(node), Frame: uint32(vpage)}
}
