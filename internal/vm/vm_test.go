package vm

import (
	"testing"
	"testing/quick"

	"flashsim/internal/emitter"
)

func region(name string, basePage, pages uint64, place emitter.Placement) emitter.Region {
	return emitter.Region{Name: name, Base: basePage * PageSize, Size: pages * PageSize, Place: place}
}

func TestPhysPageAddr(t *testing.T) {
	p := PhysPage{Node: 3, Frame: 7}
	pa := p.Addr(0x123)
	if NodeOf(pa) != 3 {
		t.Fatalf("node = %d", NodeOf(pa))
	}
	if FrameBits(pa) != 7*PageSize+0x123 {
		t.Fatalf("frame bits = %x", FrameBits(pa))
	}
}

func TestVPage(t *testing.T) {
	if VPage(4096) != 1 || VPage(4095) != 0 || VPage(8192) != 2 {
		t.Fatal("vpage math")
	}
}

func TestHomeNodePlacements(t *testing.T) {
	const nodes = 4
	blocked := region("b", 100, 16, emitter.Placement{Kind: emitter.PlaceBlocked, Stride: 4 * PageSize})
	for vp := uint64(100); vp < 116; vp++ {
		want := int((vp - 100) / 4 % nodes)
		if got := homeNode(vp, blocked, 0, nodes); got != want {
			t.Errorf("blocked vp %d -> node %d, want %d", vp, got, want)
		}
	}
	onNode := region("o", 100, 4, emitter.Placement{Kind: emitter.PlaceOnNode, Node: 2})
	if got := homeNode(101, onNode, 0, nodes); got != 2 {
		t.Errorf("on-node -> %d", got)
	}
	ft := region("f", 100, 4, emitter.Placement{Kind: emitter.PlaceFirstTouch})
	if got := homeNode(101, ft, 3, nodes); got != 3 {
		t.Errorf("first-touch -> %d", got)
	}
	il := region("i", 100, 8, emitter.Placement{Kind: emitter.PlaceInterleaved})
	if got := homeNode(105, il, 0, nodes); got != 1 {
		t.Errorf("interleaved vp105 -> %d", got)
	}
	// Uniprocessor: always node 0.
	if got := homeNode(101, onNode, 0, 1); got != 0 {
		t.Errorf("uniproc -> %d", got)
	}
	// Out-of-range explicit node clamps to 0.
	bad := region("x", 0, 4, emitter.Placement{Kind: emitter.PlaceOnNode, Node: 99})
	if got := homeNode(1, bad, 0, nodes); got != 0 {
		t.Errorf("bad node -> %d", got)
	}
}

func TestSequentialAllocatorAlignsRegionStarts(t *testing.T) {
	const colors = 16
	a := NewSequentialAllocator(1, colors)
	r1 := region("grid0", 100, 34, emitter.Placement{})
	r2 := region("grid1", 134, 34, emitter.Placement{})
	p1 := a.Allocate(100, r1, 0)
	for vp := uint64(101); vp < 134; vp++ {
		a.Allocate(vp, r1, 0)
	}
	p2 := a.Allocate(134, r2, 0)
	align := colors / 2
	if p1.Frame%uint32(align) != 0 || p2.Frame%uint32(align) != 0 {
		t.Fatalf("region starts not aligned: %d %d", p1.Frame, p2.Frame)
	}
	if p2.Frame <= p1.Frame {
		t.Fatal("frames must advance")
	}
}

func TestSequentialAllocatorFramesUnique(t *testing.T) {
	a := NewSequentialAllocator(2, 16)
	seen := map[[2]uint32]bool{}
	r := region("r", 0, 64, emitter.Placement{Kind: emitter.PlaceFirstTouch})
	for vp := uint64(0); vp < 64; vp++ {
		p := a.Allocate(vp, r, int(vp%2))
		key := [2]uint32{uint32(p.Node), p.Frame}
		if seen[key] {
			t.Fatalf("frame reused: %v", key)
		}
		seen[key] = true
	}
}

func TestColorAllocatorVirtualColoring(t *testing.T) {
	const colors = 16
	a := NewColorAllocator(1, colors)
	r := region("r", 256, 64, emitter.Placement{})
	for vp := uint64(256); vp < 320; vp++ {
		p := a.Allocate(vp, r, 0)
		if p.Frame%colors != uint32(vp%colors) {
			t.Fatalf("vp %d got color %d, want %d", vp, p.Frame%colors, vp%colors)
		}
	}
}

func TestColorAllocatorFramesUniquePerNode(t *testing.T) {
	f := func(vps []uint16) bool {
		a := NewColorAllocator(1, 16)
		r := region("r", 0, 1<<16, emitter.Placement{})
		seen := map[uint32]bool{}
		for _, vp := range vps {
			p := a.Allocate(uint64(vp), r, 0)
			if seen[p.Frame] {
				return false
			}
			seen[p.Frame] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestIdentityAllocator(t *testing.T) {
	a := NewIdentityAllocator(2)
	r := region("r", 10, 4, emitter.Placement{Kind: emitter.PlaceOnNode, Node: 1})
	p := a.Allocate(12, r, 0)
	if p.Frame != 12 || p.Node != 1 {
		t.Fatalf("identity: %+v", p)
	}
	a.Reset() // no-op, must not panic
	if a.Name() == "" {
		t.Fatal("unnamed")
	}
}

func TestAllocatorResets(t *testing.T) {
	seqA := NewSequentialAllocator(1, 16)
	r := region("r", 0, 8, emitter.Placement{})
	p1 := seqA.Allocate(0, r, 0)
	seqA.Reset()
	p2 := seqA.Allocate(0, r, 0)
	if p1 != p2 {
		t.Fatalf("sequential reset: %v vs %v", p1, p2)
	}
	colA := NewColorAllocator(1, 16)
	q1 := colA.Allocate(5, r, 0)
	colA.Reset()
	q2 := colA.Allocate(5, r, 0)
	if q1 != q2 {
		t.Fatalf("color reset: %v vs %v", q1, q2)
	}
}

func newSpace(t *testing.T) (*emitter.AddressSpace, emitter.Region) {
	t.Helper()
	as := emitter.NewAddressSpace()
	r := as.AllocPageAligned("data", 16*PageSize, emitter.Placement{Kind: emitter.PlaceFirstTouch})
	return as, r
}

func TestPageTableTranslateIdempotent(t *testing.T) {
	as, r := newSpace(t)
	pt := NewPageTable(as, 2, NewSequentialAllocator(2, 16))
	p1, cold1 := pt.Translate(r.Base+100, 1)
	p2, cold2 := pt.Translate(r.Base+200, 0) // same page, different toucher
	if !cold1 || cold2 {
		t.Fatalf("cold flags: %v %v", cold1, cold2)
	}
	if p1 != p2 {
		t.Fatalf("translation changed: %v vs %v", p1, p2)
	}
	if p1.Node != 1 {
		t.Fatalf("first-touch node = %d, want 1", p1.Node)
	}
	if pt.Mapped() != 1 || pt.Faults() != 1 {
		t.Fatalf("mapped=%d faults=%d", pt.Mapped(), pt.Faults())
	}
}

func TestPageTableLookupWithoutFault(t *testing.T) {
	as, r := newSpace(t)
	pt := NewPageTable(as, 1, NewSequentialAllocator(1, 16))
	if _, ok := pt.Lookup(r.Base); ok {
		t.Fatal("lookup should miss before translate")
	}
	pt.Translate(r.Base, 0)
	if _, ok := pt.Lookup(r.Base); !ok {
		t.Fatal("lookup should hit after translate")
	}
}

func TestPageTableAnonPages(t *testing.T) {
	as, _ := newSpace(t)
	pt := NewPageTable(as, 2, NewSequentialAllocator(2, 16))
	// An address outside any region gets an anonymous first-touch page.
	p, cold := pt.Translate(0xDEAD0000, 1)
	if !cold || p.Node != 1 {
		t.Fatalf("anon page: %+v cold=%v", p, cold)
	}
}

// TestDistinctPagesDistinctFrames: translation is injective per node.
func TestDistinctPagesDistinctFrames(t *testing.T) {
	as := emitter.NewAddressSpace()
	r := as.AllocPageAligned("data", 256*PageSize, emitter.Placement{Kind: emitter.PlaceOnNode, Node: 0})
	for _, alloc := range []Allocator{
		NewSequentialAllocator(1, 16),
		NewColorAllocator(1, 16),
		NewIdentityAllocator(1),
	} {
		pt := NewPageTable(as, 1, alloc)
		seen := map[uint32]uint64{}
		for vp := uint64(0); vp < 256; vp++ {
			va := r.Base + vp*PageSize
			p, _ := pt.Translate(va, 0)
			if prev, dup := seen[p.Frame]; dup {
				t.Fatalf("%s: frame %d shared by pages %d and %d", alloc.Name(), p.Frame, prev, vp)
			}
			seen[p.Frame] = vp
		}
	}
}
