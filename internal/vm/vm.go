// Package vm models virtual memory: page tables, NUMA page placement,
// and — critically for this study — the physical page *coloring* policy.
//
// The paper found that physical memory layout is a first-order
// performance effect: Solo, which performs its own physical allocation
// without the page-coloring algorithm IRIX uses, predicted a 3x higher
// secondary-cache miss rate for uniprocessor Ocean (conflicts IRIX
// avoids) yet a better layout than IRIX for 16-processor Radix-Sort
// (conflicts IRIX suffers under color-pool exhaustion). Both allocators
// are implemented here.
package vm

import (
	"fmt"

	"flashsim/internal/emitter"
)

// PageShift and PageSize define the 4 KB base page used throughout.
const (
	PageShift = 12
	PageSize  = 1 << PageShift
)

// PhysPage identifies a physical page frame: the node whose memory holds
// it and the frame index within that node.
type PhysPage struct {
	Node  int32
	Frame uint32
}

// Addr composes a synthetic physical address: node in the high bits,
// frame+offset in the low bits. Cache indexing uses only the low bits,
// so conflict behavior is decided by Frame.
func (p PhysPage) Addr(offset uint64) uint64 {
	return uint64(p.Node)<<40 | uint64(p.Frame)<<PageShift | (offset & (PageSize - 1))
}

// NodeOf extracts the home node from a synthetic physical address.
func NodeOf(pa uint64) int { return int(pa >> 40) }

// FrameBits extracts the within-node part (frame and offset) used for
// cache indexing.
func FrameBits(pa uint64) uint64 { return pa & ((1 << 40) - 1) }

// VPage returns the virtual page number of a virtual address.
func VPage(va uint64) uint64 { return va >> PageShift }

// Allocator chooses a physical frame for a newly touched virtual page.
type Allocator interface {
	// Allocate maps vpage (belonging to region, first touched by node
	// touchNode) to a physical page.
	Allocate(vpage uint64, region emitter.Region, touchNode int) PhysPage
	// Name identifies the policy in reports.
	Name() string
	// Reset returns the allocator to its initial state.
	Reset()
}

// PageTable maps virtual pages to physical pages, populating lazily via
// an Allocator (first touch).
//
// Programs allocate their regions contiguously from a low base, so the
// table is a dense array over the address-space span — one load per
// translation on the critical path of every simulated memory access.
// Rare out-of-span addresses (synthetic stack/anon pages) fall back to
// a map.
type PageTable struct {
	nodes  int
	alloc  Allocator
	space  *emitter.AddressSpace
	dense  []PhysPage          // vp-indexed; Node < 0 means unmapped
	sparse map[uint64]PhysPage // vps at or beyond len(dense)
	mapped int
	faults uint64
}

// densePageLimit caps the dense table at 8M entries (a 64 MB table
// spanning 32 GB of virtual space); anything beyond spills to the map.
const densePageLimit = 8 << 20

// NewPageTable creates an empty page table over the given address space.
func NewPageTable(space *emitter.AddressSpace, nodes int, alloc Allocator) *PageTable {
	npages := (space.Span() + PageSize - 1) >> PageShift
	if npages > densePageLimit {
		npages = densePageLimit
	}
	dense := make([]PhysPage, npages)
	for i := range dense {
		dense[i].Node = -1
	}
	return &PageTable{
		nodes:  nodes,
		alloc:  alloc,
		space:  space,
		dense:  dense,
		sparse: make(map[uint64]PhysPage),
	}
}

// Translate returns the physical address for va, faulting the page in on
// first touch (by touchNode). The second result reports whether this
// access caused the page to be mapped (a cold page fault).
func (pt *PageTable) Translate(va uint64, touchNode int) (PhysPage, bool) {
	vp := VPage(va)
	if vp < uint64(len(pt.dense)) {
		if p := pt.dense[vp]; p.Node >= 0 {
			return p, false
		}
	} else if p, ok := pt.sparse[vp]; ok {
		return p, false
	}
	return pt.fault(vp, va, touchNode)
}

// fault maps vp on first touch.
func (pt *PageTable) fault(vp, va uint64, touchNode int) (PhysPage, bool) {
	region, ok := pt.space.FindRegion(va)
	if !ok {
		// Stack/miscellaneous addresses outside named regions get a
		// synthetic local region.
		region = emitter.Region{Name: "anon", Base: va &^ (PageSize - 1), Size: PageSize,
			Place: emitter.Placement{Kind: emitter.PlaceFirstTouch}}
	}
	p := pt.alloc.Allocate(vp, region, touchNode)
	if int(p.Node) >= pt.nodes || p.Node < 0 {
		panic(fmt.Sprintf("vm: allocator %s placed page on node %d of %d", pt.alloc.Name(), p.Node, pt.nodes))
	}
	if vp < uint64(len(pt.dense)) {
		pt.dense[vp] = p
	} else {
		pt.sparse[vp] = p
	}
	pt.mapped++
	pt.faults++
	return p, true
}

// Lookup returns the mapping without faulting.
func (pt *PageTable) Lookup(va uint64) (PhysPage, bool) {
	vp := VPage(va)
	if vp < uint64(len(pt.dense)) {
		p := pt.dense[vp]
		return p, p.Node >= 0
	}
	p, ok := pt.sparse[vp]
	return p, ok
}

// Mapped returns the number of mapped pages.
func (pt *PageTable) Mapped() int { return pt.mapped }

// Faults returns the number of cold page faults taken.
func (pt *PageTable) Faults() uint64 { return pt.faults }

// homeNode applies the region's placement policy.
func homeNode(vpage uint64, region emitter.Region, touchNode, nodes int) int {
	if nodes <= 1 {
		return 0
	}
	rel := vpage - VPage(region.Base)
	switch region.Place.Kind {
	case emitter.PlaceOnNode:
		n := region.Place.Node
		if n < 0 || n >= nodes {
			n = 0
		}
		return n
	case emitter.PlaceBlocked:
		stride := region.Place.Stride
		if stride < PageSize {
			stride = PageSize
		}
		block := (vpage*PageSize - (region.Base &^ (PageSize - 1))) / stride
		return int(block % uint64(nodes))
	case emitter.PlaceFirstTouch:
		return touchNode
	default: // PlaceInterleaved
		return int(rel % uint64(nodes))
	}
}
