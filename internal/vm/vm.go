// Package vm models virtual memory: page tables, NUMA page placement,
// and — critically for this study — the physical page *coloring* policy.
//
// The paper found that physical memory layout is a first-order
// performance effect: Solo, which performs its own physical allocation
// without the page-coloring algorithm IRIX uses, predicted a 3x higher
// secondary-cache miss rate for uniprocessor Ocean (conflicts IRIX
// avoids) yet a better layout than IRIX for 16-processor Radix-Sort
// (conflicts IRIX suffers under color-pool exhaustion). Both allocators
// are implemented here.
package vm

import (
	"fmt"

	"flashsim/internal/emitter"
)

// PageShift and PageSize define the 4 KB base page used throughout.
const (
	PageShift = 12
	PageSize  = 1 << PageShift
)

// PhysPage identifies a physical page frame: the node whose memory holds
// it and the frame index within that node.
type PhysPage struct {
	Node  int32
	Frame uint32
}

// Addr composes a synthetic physical address: node in the high bits,
// frame+offset in the low bits. Cache indexing uses only the low bits,
// so conflict behavior is decided by Frame.
func (p PhysPage) Addr(offset uint64) uint64 {
	return uint64(p.Node)<<40 | uint64(p.Frame)<<PageShift | (offset & (PageSize - 1))
}

// NodeOf extracts the home node from a synthetic physical address.
func NodeOf(pa uint64) int { return int(pa >> 40) }

// FrameBits extracts the within-node part (frame and offset) used for
// cache indexing.
func FrameBits(pa uint64) uint64 { return pa & ((1 << 40) - 1) }

// VPage returns the virtual page number of a virtual address.
func VPage(va uint64) uint64 { return va >> PageShift }

// Allocator chooses a physical frame for a newly touched virtual page.
type Allocator interface {
	// Allocate maps vpage (belonging to region, first touched by node
	// touchNode) to a physical page.
	Allocate(vpage uint64, region emitter.Region, touchNode int) PhysPage
	// Name identifies the policy in reports.
	Name() string
	// Reset returns the allocator to its initial state.
	Reset()
}

// PageTable maps virtual pages to physical pages, populating lazily via
// an Allocator (first touch).
type PageTable struct {
	nodes   int
	alloc   Allocator
	space   *emitter.AddressSpace
	entries map[uint64]PhysPage
	faults  uint64
}

// NewPageTable creates an empty page table over the given address space.
func NewPageTable(space *emitter.AddressSpace, nodes int, alloc Allocator) *PageTable {
	return &PageTable{
		nodes:   nodes,
		alloc:   alloc,
		space:   space,
		entries: make(map[uint64]PhysPage),
	}
}

// Translate returns the physical address for va, faulting the page in on
// first touch (by touchNode). The second result reports whether this
// access caused the page to be mapped (a cold page fault).
func (pt *PageTable) Translate(va uint64, touchNode int) (PhysPage, bool) {
	vp := VPage(va)
	if p, ok := pt.entries[vp]; ok {
		return p, false
	}
	region, ok := pt.space.FindRegion(va)
	if !ok {
		// Stack/miscellaneous addresses outside named regions get a
		// synthetic local region.
		region = emitter.Region{Name: "anon", Base: va &^ (PageSize - 1), Size: PageSize,
			Place: emitter.Placement{Kind: emitter.PlaceFirstTouch}}
	}
	p := pt.alloc.Allocate(vp, region, touchNode)
	if int(p.Node) >= pt.nodes || p.Node < 0 {
		panic(fmt.Sprintf("vm: allocator %s placed page on node %d of %d", pt.alloc.Name(), p.Node, pt.nodes))
	}
	pt.entries[vp] = p
	pt.faults++
	return p, true
}

// Lookup returns the mapping without faulting.
func (pt *PageTable) Lookup(va uint64) (PhysPage, bool) {
	p, ok := pt.entries[VPage(va)]
	return p, ok
}

// Mapped returns the number of mapped pages.
func (pt *PageTable) Mapped() int { return len(pt.entries) }

// Faults returns the number of cold page faults taken.
func (pt *PageTable) Faults() uint64 { return pt.faults }

// homeNode applies the region's placement policy.
func homeNode(vpage uint64, region emitter.Region, touchNode, nodes int) int {
	if nodes <= 1 {
		return 0
	}
	rel := vpage - VPage(region.Base)
	switch region.Place.Kind {
	case emitter.PlaceOnNode:
		n := region.Place.Node
		if n < 0 || n >= nodes {
			n = 0
		}
		return n
	case emitter.PlaceBlocked:
		stride := region.Place.Stride
		if stride < PageSize {
			stride = PageSize
		}
		block := (vpage*PageSize - (region.Base &^ (PageSize - 1))) / stride
		return int(block % uint64(nodes))
	case emitter.PlaceFirstTouch:
		return touchNode
	default: // PlaceInterleaved
		return int(rel % uint64(nodes))
	}
}
