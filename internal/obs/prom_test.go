package obs_test

import (
	"bufio"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"flashsim/internal/obs"
)

// parseProm is a strict-enough parser for the exposition format: it
// validates every line is a `# HELP`, `# TYPE`, or sample line, and
// returns samples keyed by name{sortedlabels}. A malformed line fails
// the test.
func parseProm(t *testing.T, text string) map[string]float64 {
	t.Helper()
	sampleRe := regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (-?[0-9.eE+-]+|NaN)$`)
	labelRe := regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$`)
	out := make(map[string]float64)
	typed := make(map[string]bool)
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 || (f[3] != "counter" && f[3] != "gauge") {
				t.Fatalf("bad TYPE line: %q", line)
			}
			typed[f[2]] = true
			continue
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("unparseable sample line: %q", line)
		}
		name, labels, value := m[1], m[2], m[3]
		if !typed[name] {
			t.Fatalf("sample %q has no preceding # TYPE", name)
		}
		if labels != "" {
			inner := strings.TrimSuffix(strings.TrimPrefix(labels, "{"), "}")
			for _, pair := range splitLabels(inner) {
				if !labelRe.MatchString(pair) {
					t.Fatalf("bad label pair %q in %q", pair, line)
				}
			}
		}
		v, err := strconv.ParseFloat(value, 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		out[name+labels] = v
	}
	return out
}

// splitLabels splits a label body on commas outside quotes.
func splitLabels(s string) []string {
	var parts []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				parts = append(parts, s[start:i])
				start = i + 1
			}
		}
	}
	if start < len(s) {
		parts = append(parts, s[start:])
	}
	return parts
}

func sampleReport() obs.Report {
	c := obs.NewCollector()
	c.Record(obs.RunMetrics{
		Config: `Sim "A"`, Workload: "fft", Procs: 2,
		Instructions: 1000, ExecTicks: 50, TotalTicks: 80,
		Queue: obs.QueueCounters{Scheduled: 10, Fired: 9, Recycled: 8},
		L1:    obs.CacheCounters{Hits: 7, Misses: 3},
		L2:    obs.CacheCounters{Hits: 2, Misses: 1},
		TLB:   obs.TLBCounters{Misses: 4},
		Dir:   obs.DirectoryCounters{Transitions: 5, Cases: map[string]uint64{"remote-clean": 2}},
	})
	c.Record(obs.RunMetrics{
		Config: "Sim B", Workload: "lu", Procs: 1,
		Instructions: 500, ExecTicks: 20, TotalTicks: 30,
	})
	rep := c.Snapshot()
	rep.Runner = obs.RunnerCounters{Jobs: 3, Ran: 2, CacheHits: 1, WallNS: 2_500_000_000, CPUNS: 3_000_000_000}
	return rep
}

// TestWritePrometheusParsesAndAgrees renders a report and checks the
// output (a) parses as exposition format and (b) carries exactly the
// report's totals.
func TestWritePrometheusParsesAndAgrees(t *testing.T) {
	rep := sampleReport()
	var b strings.Builder
	if err := rep.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	samples := parseProm(t, b.String())

	want := map[string]float64{
		"flashsim_runner_jobs_total":                    3,
		"flashsim_runner_runs_total":                    2,
		"flashsim_runner_cache_hits_total":              1,
		"flashsim_runner_wall_seconds_total":            2.5,
		"flashsim_runner_cpu_seconds_total":             3,
		"flashsim_runs_total":                           2,
		"flashsim_instructions_total":                   1500,
		"flashsim_exec_ticks_total":                     70,
		"flashsim_queue_scheduled_total":                10,
		`flashsim_cache_hits_total{level="l1"}`:         7,
		`flashsim_cache_misses_total{level="l2"}`:       1,
		"flashsim_tlb_misses_total":                     4,
		"flashsim_dir_transitions_total":                5,
		`flashsim_dir_cases_total{case="remote-clean"}`: 2,
	}
	for k, v := range want {
		got, ok := samples[k]
		if !ok {
			t.Errorf("missing sample %s", k)
			continue
		}
		if got != v {
			t.Errorf("%s = %g, want %g", k, got, v)
		}
	}

	// The quoted config name must survive label escaping and parse.
	key := `flashsim_config_runs_total{config="Sim \"A\"",procs="2",workload="fft"}`
	if got := samples[key]; got != 1 {
		t.Errorf("per-config sample %s = %g, want 1; have keys:\n%s", key, got, strings.Join(keysOf(samples), "\n"))
	}
}

func keysOf(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestWritePrometheusEmptyReport: an empty report still renders valid
// exposition text (all-zero counters), so a freshly-booted daemon's
// /metrics is scrapable before any job arrives.
func TestWritePrometheusEmptyReport(t *testing.T) {
	var b strings.Builder
	if err := (obs.Report{Schema: obs.ReportSchema}).WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	samples := parseProm(t, b.String())
	if samples["flashsim_runs_total"] != 0 {
		t.Error("empty report runs nonzero")
	}
	if _, ok := samples["flashsim_runner_jobs_total"]; !ok {
		t.Error("runner counters missing from empty report")
	}
}
