// Package obs is the per-run observability layer: plain uint64 counter
// structs that the hot subsystems embed directly, snapshotted at
// end-of-run into a RunMetrics record that rides alongside memoized
// results and is written out by the CLIs' -metrics-out flag.
//
// The counters are deliberately plain fields, not atomics. A machine
// run is single-goroutine — the event loop drives every subsystem of
// one machine from one goroutine, and the runner pool isolates
// concurrent runs completely (each machine.Run builds its own queue,
// caches, directory, and network; nothing is shared, a property pinned
// under the race detector). Making the counters atomic would buy no
// correctness and would put LOCK-prefixed read-modify-writes on the
// simulation hot path, breaking the 0 allocs/op + minimal-overhead
// contract. Cross-run aggregation is the only concurrent step, and it
// happens in Collector, behind a mutex, once per run.
//
// obs is a leaf package (stdlib imports only) so that sim, emitter,
// tlb, osmodel, and the other hot subsystems can embed its structs
// without import cycles.
package obs

// QueueCounters counts event-queue activity (internal/sim).
type QueueCounters struct {
	// Scheduled is the number of events inserted (both the closure and
	// the pooled ScheduleFn forms).
	Scheduled uint64
	// Fired is the number of events dispatched.
	Fired uint64
	// Recycled is the number of pooled events reused from the free
	// list rather than freshly allocated — the zero-allocation path.
	Recycled uint64
}

// Add accumulates o into c.
func (c *QueueCounters) Add(o QueueCounters) {
	c.Scheduled += o.Scheduled
	c.Fired += o.Fired
	c.Recycled += o.Recycled
}

// EmitterCounters counts instruction-stream activity (internal/emitter).
type EmitterCounters struct {
	// Batches is the number of instruction batches consumed by the
	// processor models.
	Batches uint64
	// Instructions is the number of instructions read from the streams.
	Instructions uint64
	// SlabReuses is the number of consumed batch buffers returned to
	// the producer's recycling pool instead of being garbage.
	SlabReuses uint64
}

// Add accumulates o into c.
func (c *EmitterCounters) Add(o EmitterCounters) {
	c.Batches += o.Batches
	c.Instructions += o.Instructions
	c.SlabReuses += o.SlabReuses
}

// CacheCounters counts one cache level's activity (aggregated across
// nodes).
type CacheCounters struct {
	Hits          uint64
	Misses        uint64
	Evictions     uint64
	Writebacks    uint64
	Invalidations uint64 // external invalidations received
	Interventions uint64 // external downgrades/forwards served
}

// Add accumulates o into c.
func (c *CacheCounters) Add(o CacheCounters) {
	c.Hits += o.Hits
	c.Misses += o.Misses
	c.Evictions += o.Evictions
	c.Writebacks += o.Writebacks
	c.Invalidations += o.Invalidations
	c.Interventions += o.Interventions
}

// TLBCounters counts TLB activity (internal/tlb, aggregated across
// CPUs). All zero under the Solo OS model, which omits the TLB.
type TLBCounters struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// Add accumulates o into c.
func (c *TLBCounters) Add(o TLBCounters) {
	c.Hits += o.Hits
	c.Misses += o.Misses
	c.Evictions += o.Evictions
}

// DirectoryCounters counts coherence-directory activity
// (internal/proto).
type DirectoryCounters struct {
	Reads         uint64
	Writes        uint64
	Writebacks    uint64
	Invalidations uint64
	// Transitions counts directory (state, owner) changes.
	Transitions uint64
	StaleInvals uint64
	// Cases maps protocol-case names (Table 3) to occurrence counts;
	// zero-count cases are omitted.
	Cases map[string]uint64
}

// Add accumulates o into c.
func (c *DirectoryCounters) Add(o DirectoryCounters) {
	c.Reads += o.Reads
	c.Writes += o.Writes
	c.Writebacks += o.Writebacks
	c.Invalidations += o.Invalidations
	c.Transitions += o.Transitions
	c.StaleInvals += o.StaleInvals
	if len(o.Cases) == 0 {
		return
	}
	if c.Cases == nil {
		c.Cases = make(map[string]uint64, len(o.Cases))
	}
	for k, v := range o.Cases {
		c.Cases[k] += v
	}
}

// NetworkCounters counts interconnect activity (internal/network). All
// zero for memory systems without a modeled network.
type NetworkCounters struct {
	Messages uint64
	Bytes    uint64
	Hops     uint64
}

// Add accumulates o into c.
func (c *NetworkCounters) Add(o NetworkCounters) {
	c.Messages += o.Messages
	c.Bytes += o.Bytes
	c.Hops += o.Hops
}

// OSCounters counts operating-system-model activity (internal/osmodel).
type OSCounters struct {
	// PagesMapped is the page-table population at end of run.
	PagesMapped uint64
	// ColdFaults is the number of charged cold page faults (SimOS).
	ColdFaults uint64
	// Syscalls is the number of charged system calls (SimOS).
	Syscalls uint64
}

// Add accumulates o into c.
func (c *OSCounters) Add(o OSCounters) {
	c.PagesMapped += o.PagesMapped
	c.ColdFaults += o.ColdFaults
	c.Syscalls += o.Syscalls
}

// RunMetrics is the end-of-run snapshot of every subsystem's counters
// for one machine run. It is embedded in machine.Result, so it is
// serialized into (and restored from) the runner.Store alongside the
// timing results it explains.
type RunMetrics struct {
	// Config names the machine configuration; Workload names the
	// program. Merged records blank a label when sources disagree.
	Config   string
	Workload string
	Procs    int
	// Runs is the number of runs merged into this record (1 for a
	// single run).
	Runs uint64

	Instructions uint64
	// ExecTicks is the timed parallel section; TotalTicks the full run.
	ExecTicks  uint64
	TotalTicks uint64

	Queue   QueueCounters
	Emitter EmitterCounters
	L1      CacheCounters
	L2      CacheCounters
	TLB     TLBCounters
	Dir     DirectoryCounters
	Net     NetworkCounters
	OS      OSCounters
}

// Merge accumulates o into m. Labels (Config, Workload, Procs) are kept
// when they agree across every merged record and blanked/zeroed when
// they do not, so an aggregate over a sweep does not masquerade as one
// configuration.
func (m *RunMetrics) Merge(o RunMetrics) {
	if m.Runs == 0 {
		m.Config, m.Workload, m.Procs = o.Config, o.Workload, o.Procs
	} else {
		if m.Config != o.Config {
			m.Config = ""
		}
		if m.Workload != o.Workload {
			m.Workload = ""
		}
		if m.Procs != o.Procs {
			m.Procs = 0
		}
	}
	m.Runs += o.Runs
	m.Instructions += o.Instructions
	m.ExecTicks += o.ExecTicks
	m.TotalTicks += o.TotalTicks
	m.Queue.Add(o.Queue)
	m.Emitter.Add(o.Emitter)
	m.L1.Add(o.L1)
	m.L2.Add(o.L2)
	m.TLB.Add(o.TLB)
	m.Dir.Add(o.Dir)
	m.Net.Add(o.Net)
	m.OS.Add(o.OS)
}
