package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WritePrometheus renders the report in the Prometheus text exposition
// format (version 0.0.4): `# HELP`/`# TYPE` comment pairs followed by
// `name{labels} value` samples. It is the same data -metrics-out writes
// as JSON, re-shaped for a scrape endpoint — flashd's /metrics is this
// function applied to a live Collector snapshot, so the daemon's scrape
// and the CLI's report can never disagree about a counter.
//
// Counter values are emitted as integers; durations become float64
// seconds (the Prometheus base unit for time). Per-(config, workload,
// procs) breakouts carry their identity as labels on a small set of
// headline series rather than exploding every subsystem counter into
// labeled form.
func (r Report) WritePrometheus(w io.Writer) error {
	p := promWriter{w: w}

	p.counter("flashsim_runner_jobs_total", "Jobs completed by the run pool (run, cached, or failed).", r.Runner.Jobs)
	p.counter("flashsim_runner_runs_total", "Actual simulator executions (pool cache misses).", r.Runner.Ran)
	p.counter("flashsim_runner_cache_hits_total", "Jobs satisfied from the memo store.", r.Runner.CacheHits)
	p.counter("flashsim_runner_failed_total", "Jobs that returned an error.", r.Runner.Failed)
	p.seconds("flashsim_runner_wall_seconds_total", "Wall-clock seconds across pool batches.", r.Runner.WallNS)
	p.seconds("flashsim_runner_cpu_seconds_total", "Summed per-job execution seconds.", r.Runner.CPUNS)

	t := r.Total
	p.counter("flashsim_runs_total", "Simulation runs recorded by the collector.", int64(t.Runs))
	p.counter("flashsim_instructions_total", "Committed instructions across recorded runs.", int64(t.Instructions))
	p.counter("flashsim_exec_ticks_total", "Simulated ticks in the timed parallel sections.", int64(t.ExecTicks))
	p.counter("flashsim_total_ticks_total", "Simulated ticks across full runs.", int64(t.TotalTicks))

	p.counter("flashsim_queue_scheduled_total", "Events inserted into the simulation event queues.", int64(t.Queue.Scheduled))
	p.counter("flashsim_queue_fired_total", "Events dispatched by the simulation event queues.", int64(t.Queue.Fired))
	p.counter("flashsim_queue_recycled_total", "Pooled events reused from queue free lists.", int64(t.Queue.Recycled))

	p.counter("flashsim_emitter_batches_total", "Instruction batches consumed by the processor models.", int64(t.Emitter.Batches))
	p.counter("flashsim_emitter_instructions_total", "Instructions read from the emitter streams.", int64(t.Emitter.Instructions))
	p.counter("flashsim_emitter_slab_reuses_total", "Batch buffers recycled to their producers.", int64(t.Emitter.SlabReuses))

	p.levelCounter("flashsim_cache_hits_total", "Cache hits by level.", t.L1.Hits, t.L2.Hits)
	p.levelCounter("flashsim_cache_misses_total", "Cache misses by level.", t.L1.Misses, t.L2.Misses)
	p.levelCounter("flashsim_cache_evictions_total", "Cache evictions by level.", t.L1.Evictions, t.L2.Evictions)
	p.levelCounter("flashsim_cache_writebacks_total", "Cache writebacks by level.", t.L1.Writebacks, t.L2.Writebacks)
	p.levelCounter("flashsim_cache_invalidations_total", "External invalidations received by level.", t.L1.Invalidations, t.L2.Invalidations)
	p.levelCounter("flashsim_cache_interventions_total", "External downgrades/forwards served by level.", t.L1.Interventions, t.L2.Interventions)

	p.counter("flashsim_tlb_hits_total", "TLB hits.", int64(t.TLB.Hits))
	p.counter("flashsim_tlb_misses_total", "TLB misses (refills).", int64(t.TLB.Misses))
	p.counter("flashsim_tlb_evictions_total", "TLB entry evictions.", int64(t.TLB.Evictions))

	p.counter("flashsim_dir_reads_total", "Coherence-directory read requests.", int64(t.Dir.Reads))
	p.counter("flashsim_dir_writes_total", "Coherence-directory write requests.", int64(t.Dir.Writes))
	p.counter("flashsim_dir_writebacks_total", "Coherence-directory writebacks.", int64(t.Dir.Writebacks))
	p.counter("flashsim_dir_invalidations_total", "Coherence-directory invalidations sent.", int64(t.Dir.Invalidations))
	p.counter("flashsim_dir_transitions_total", "Directory (state, owner) transitions.", int64(t.Dir.Transitions))
	p.counter("flashsim_dir_stale_invals_total", "Stale invalidations observed.", int64(t.Dir.StaleInvals))
	if len(t.Dir.Cases) > 0 {
		p.help("flashsim_dir_cases_total", "Protocol-case occurrences (Table 3 taxonomy).", "counter")
		cases := make([]string, 0, len(t.Dir.Cases))
		for c := range t.Dir.Cases {
			cases = append(cases, c)
		}
		sort.Strings(cases)
		for _, c := range cases {
			p.sample("flashsim_dir_cases_total", map[string]string{"case": c}, fmt.Sprintf("%d", t.Dir.Cases[c]))
		}
	}

	p.counter("flashsim_net_messages_total", "Interconnect messages.", int64(t.Net.Messages))
	p.counter("flashsim_net_bytes_total", "Interconnect payload bytes.", int64(t.Net.Bytes))
	p.counter("flashsim_net_hops_total", "Interconnect message hops.", int64(t.Net.Hops))

	p.counter("flashsim_os_pages_mapped_total", "Pages mapped at end of run.", int64(t.OS.PagesMapped))
	p.counter("flashsim_os_cold_faults_total", "Charged cold page faults.", int64(t.OS.ColdFaults))
	p.counter("flashsim_os_syscalls_total", "Charged system calls.", int64(t.OS.Syscalls))

	if len(r.PerConfig) > 0 {
		p.help("flashsim_config_runs_total", "Runs recorded per (config, workload, procs).", "counter")
		for _, m := range r.PerConfig {
			p.sample("flashsim_config_runs_total", configLabels(m), fmt.Sprintf("%d", m.Runs))
		}
		p.help("flashsim_config_instructions_total", "Instructions per (config, workload, procs).", "counter")
		for _, m := range r.PerConfig {
			p.sample("flashsim_config_instructions_total", configLabels(m), fmt.Sprintf("%d", m.Instructions))
		}
		p.help("flashsim_config_exec_ticks_total", "Timed-section ticks per (config, workload, procs).", "counter")
		for _, m := range r.PerConfig {
			p.sample("flashsim_config_exec_ticks_total", configLabels(m), fmt.Sprintf("%d", m.ExecTicks))
		}
	}
	return p.err
}

func configLabels(m RunMetrics) map[string]string {
	return map[string]string{
		"config":   m.Config,
		"workload": m.Workload,
		"procs":    fmt.Sprintf("%d", m.Procs),
	}
}

// promWriter accumulates exposition-format output, retaining the first
// write error so callers check once at the end.
type promWriter struct {
	w   io.Writer
	err error
}

func (p *promWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

func (p *promWriter) help(name, help, typ string) {
	p.printf("# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func (p *promWriter) sample(name string, labels map[string]string, value string) {
	if len(labels) == 0 {
		p.printf("%s %s\n", name, value)
		return
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + `="` + escapeLabel(labels[k]) + `"`
	}
	p.printf("%s{%s} %s\n", name, strings.Join(parts, ","), value)
}

func (p *promWriter) counter(name, help string, v int64) {
	p.help(name, help, "counter")
	p.sample(name, nil, fmt.Sprintf("%d", v))
}

func (p *promWriter) seconds(name, help string, ns int64) {
	p.help(name, help, "counter")
	p.sample(name, nil, fmt.Sprintf("%g", float64(ns)/1e9))
}

func (p *promWriter) levelCounter(name, help string, l1, l2 uint64) {
	p.help(name, help, "counter")
	p.sample(name, map[string]string{"level": "l1"}, fmt.Sprintf("%d", l1))
	p.sample(name, map[string]string{"level": "l2"}, fmt.Sprintf("%d", l2))
}

// escapeLabel escapes a label value per the exposition format:
// backslash, double quote, and newline.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}
