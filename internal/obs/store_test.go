package obs

import (
	"sync"
	"testing"
)

func TestStoreCountersSnapshot(t *testing.T) {
	var c StoreCounters
	c.LocalHits.Add(3)
	c.RemoteHits.Add(2)
	c.Hedges.Add(1)
	c.HedgeWins.Add(1)
	c.BackfillDrops.Add(4)
	snap := c.Snapshot()
	if snap.LocalHits != 3 || snap.RemoteHits != 2 || snap.Hedges != 1 || snap.HedgeWins != 1 || snap.BackfillDrops != 4 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap.LocalMisses != 0 || snap.Fallbacks != 0 {
		t.Fatalf("untouched counters nonzero: %+v", snap)
	}
	// A snapshot is a copy: advancing the live counters does not move it.
	c.LocalHits.Add(10)
	if snap.LocalHits != 3 {
		t.Fatal("snapshot aliases the live counters")
	}
}

func TestStoreCountersConcurrent(t *testing.T) {
	var c StoreCounters
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.LocalHits.Add(1)
				c.Backfills.Add(1)
			}
		}()
	}
	wg.Wait()
	snap := c.Snapshot()
	if snap.LocalHits != 8000 || snap.Backfills != 8000 {
		t.Fatalf("lost updates: %+v", snap)
	}
}
