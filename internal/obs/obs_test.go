package obs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func sample(config, workload string, procs int) RunMetrics {
	return RunMetrics{
		Config:       config,
		Workload:     workload,
		Procs:        procs,
		Runs:         1,
		Instructions: 100,
		ExecTicks:    10,
		TotalTicks:   20,
		Queue:        QueueCounters{Scheduled: 5, Fired: 5, Recycled: 4},
		Emitter:      EmitterCounters{Batches: 2, Instructions: 100, SlabReuses: 1},
		L1:           CacheCounters{Hits: 90, Misses: 10},
		L2:           CacheCounters{Hits: 8, Misses: 2, Writebacks: 1},
		TLB:          TLBCounters{Hits: 99, Misses: 1, Evictions: 1},
		Dir:          DirectoryCounters{Reads: 7, Writes: 3, Transitions: 4, Cases: map[string]uint64{"remote-clean": 7}},
		Net:          NetworkCounters{Messages: 12, Bytes: 768, Hops: 24},
		OS:           OSCounters{PagesMapped: 3, ColdFaults: 3, Syscalls: 1},
	}
}

func TestMergeAccumulatesEveryGroup(t *testing.T) {
	var m RunMetrics
	m.Merge(sample("mipsy", "fft", 4))
	m.Merge(sample("mipsy", "fft", 4))
	if m.Runs != 2 || m.Config != "mipsy" || m.Workload != "fft" || m.Procs != 4 {
		t.Fatalf("labels/runs wrong after agreeing merge: %+v", m)
	}
	if m.Instructions != 200 || m.Queue.Fired != 10 || m.Emitter.Batches != 4 ||
		m.L1.Hits != 180 || m.L2.Writebacks != 2 || m.TLB.Evictions != 2 ||
		m.Dir.Transitions != 8 || m.Net.Hops != 48 || m.OS.Syscalls != 2 {
		t.Fatalf("counter groups not all accumulated: %+v", m)
	}
	if m.Dir.Cases["remote-clean"] != 14 {
		t.Fatalf("case map not merged: %v", m.Dir.Cases)
	}
}

func TestMergeBlanksDisagreeingLabels(t *testing.T) {
	var m RunMetrics
	m.Merge(sample("mipsy", "fft", 4))
	m.Merge(sample("mxs", "ocean", 8))
	if m.Config != "" || m.Workload != "" || m.Procs != 0 {
		t.Fatalf("disagreeing labels must blank, got %+v", m)
	}
	if m.Runs != 2 {
		t.Fatalf("Runs = %d, want 2", m.Runs)
	}
}

func TestCollectorPerConfigSplit(t *testing.T) {
	c := NewCollector()
	c.Record(sample("mipsy", "fft", 4))
	c.Record(sample("mipsy", "fft", 4))
	c.Record(sample("solo", "fft", 4))
	rep := c.Snapshot()
	if rep.Schema != ReportSchema {
		t.Fatalf("schema %d", rep.Schema)
	}
	if rep.Total.Runs != 3 {
		t.Fatalf("total runs %d, want 3", rep.Total.Runs)
	}
	if len(rep.PerConfig) != 2 {
		t.Fatalf("per-config rows %d, want 2", len(rep.PerConfig))
	}
	// Sorted by config name: mipsy before solo.
	if rep.PerConfig[0].Config != "mipsy" || rep.PerConfig[0].Runs != 2 {
		t.Fatalf("row 0 = %+v", rep.PerConfig[0])
	}
	if rep.PerConfig[1].Config != "solo" || rep.PerConfig[1].Runs != 1 {
		t.Fatalf("row 1 = %+v", rep.PerConfig[1])
	}
}

func TestCollectorConcurrentRecord(t *testing.T) {
	c := NewCollector()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				c.Record(sample("mipsy", "fft", 4))
			}
		}(w)
	}
	wg.Wait()
	if got := c.Runs(); got != 800 {
		t.Fatalf("recorded %d runs, want 800", got)
	}
}

func TestSnapshotIsolatedFromLaterRecords(t *testing.T) {
	c := NewCollector()
	c.Record(sample("mipsy", "fft", 4))
	rep := c.Snapshot()
	c.Record(sample("mipsy", "fft", 4))
	if rep.Total.Dir.Cases["remote-clean"] != 7 {
		t.Fatalf("snapshot mutated by later Record: %v", rep.Total.Dir.Cases)
	}
}

func TestReportWriteFileRoundTrips(t *testing.T) {
	c := NewCollector()
	c.Record(sample("mipsy", "fft", 4))
	rep := c.Snapshot()
	rep.Runner = RunnerCounters{Jobs: 1, Ran: 1}
	path := filepath.Join(t.TempDir(), "m.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if back.Total.TLB.Misses != 1 || back.Runner.Jobs != 1 || back.Total.Dir.Cases["remote-clean"] != 7 {
		t.Fatalf("round trip lost data: %+v", back)
	}
}

func TestReportWriteFileBadPath(t *testing.T) {
	var rep Report
	if err := rep.WriteFile(filepath.Join(t.TempDir(), "no", "such", "dir", "m.json")); err == nil {
		t.Fatal("WriteFile to a missing directory must fail")
	}
}
