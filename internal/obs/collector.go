package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
)

// ReportSchema versions the metrics-report JSON layout.
const ReportSchema = 1

// RunnerCounters is the run-execution view of a batch: how the pool
// sourced the runs whose metrics the report aggregates.
type RunnerCounters struct {
	// Jobs is the number of jobs completed (run, cached, or failed).
	Jobs int64
	// Ran is the number of actual simulator executions (pool misses).
	Ran int64
	// CacheHits is the number of jobs satisfied from the memo store.
	CacheHits int64
	// Failed is the number of jobs that returned an error.
	Failed int64
	// WallNS is wall-clock time across batches; CPUNS sums per-job
	// execution time (their ratio is the pool's parallel speedup).
	WallNS int64
	CPUNS  int64
}

// Report is the -metrics-out JSON document: pool-level counters plus
// the merged per-run metrics, in total and broken out per
// (config, workload) pair.
type Report struct {
	Schema int
	Runner RunnerCounters
	Total  RunMetrics
	// PerConfig is sorted by (Config, Workload, Procs) for stable
	// output.
	PerConfig []RunMetrics
}

// JSON renders the report as indented JSON.
func (r Report) JSON() ([]byte, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// WriteFile writes the report to path as indented JSON.
func (r Report) WriteFile(path string) error {
	data, err := r.JSON()
	if err != nil {
		return fmt.Errorf("metrics report: %w", err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("metrics report: %w", err)
	}
	return nil
}

// Collector aggregates RunMetrics across the concurrent runs of a pool.
// It is the one concurrency boundary of the package: per-run counters
// are plain fields (one goroutine per machine), and the collector's
// mutex serializes only the end-of-run Record calls.
type Collector struct {
	mu        sync.Mutex
	total     RunMetrics
	perConfig map[string]*RunMetrics
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{perConfig: make(map[string]*RunMetrics)}
}

// Record merges one run's metrics into the collector. Safe for
// concurrent use.
func (c *Collector) Record(m RunMetrics) {
	if m.Runs == 0 {
		m.Runs = 1
	}
	key := m.Config + "\x00" + m.Workload + "\x00" + fmt.Sprint(m.Procs)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.total.Merge(m)
	pc, ok := c.perConfig[key]
	if !ok {
		pc = &RunMetrics{}
		c.perConfig[key] = pc
	}
	pc.Merge(m)
}

// Runs returns how many runs have been recorded.
func (c *Collector) Runs() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total.Runs
}

// Snapshot assembles the report from everything recorded so far. The
// caller fills in Runner from the pool's stats.
func (c *Collector) Snapshot() Report {
	c.mu.Lock()
	defer c.mu.Unlock()
	rep := Report{Schema: ReportSchema, Total: c.total}
	// The total's Cases map is shared with the accumulator; deep-copy
	// so the snapshot is immune to later Record calls.
	rep.Total.Dir.Cases = copyCases(c.total.Dir.Cases)
	rep.PerConfig = make([]RunMetrics, 0, len(c.perConfig))
	for _, pc := range c.perConfig {
		m := *pc
		m.Dir.Cases = copyCases(pc.Dir.Cases)
		rep.PerConfig = append(rep.PerConfig, m)
	}
	sort.Slice(rep.PerConfig, func(i, j int) bool {
		a, b := rep.PerConfig[i], rep.PerConfig[j]
		if a.Config != b.Config {
			return a.Config < b.Config
		}
		if a.Workload != b.Workload {
			return a.Workload < b.Workload
		}
		return a.Procs < b.Procs
	})
	return rep
}

func copyCases(m map[string]uint64) map[string]uint64 {
	if m == nil {
		return nil
	}
	out := make(map[string]uint64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
