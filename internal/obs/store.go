package obs

import "sync/atomic"

// StoreCounters counts distributed memo-store activity: the
// local/remote hit ladder, hedged fetches, fallbacks to local compute,
// and ring back-fills. Unlike the per-run counters in this package —
// plain fields, because one machine run is single-goroutine — the
// serving tier's store is touched concurrently by every worker, so
// these are atomics; they sit on the request path (one memo lookup per
// job), never on the simulation hot path, so the LOCK prefix costs
// nothing that matters.
type StoreCounters struct {
	// LocalHits/LocalMisses count lookups answered by (or missing
	// from) the replica's own backend before any network is tried.
	LocalHits   atomic.Int64
	LocalMisses atomic.Int64
	// RemoteHits counts results fetched from a ring peer (each one a
	// simulation some other replica already paid for); RemoteMisses
	// definitive not-found answers from a peer; RemoteErrors transport
	// or validation failures (timeouts, dead peers, corrupt bodies —
	// every one of which degrades to a recompute, never a wrong
	// result).
	RemoteHits   atomic.Int64
	RemoteMisses atomic.Int64
	RemoteErrors atomic.Int64
	// Hedges counts second fetches launched because the first owner
	// exceeded the latency threshold; HedgeWins how many of those
	// hedged requests produced the winning hit.
	Hedges    atomic.Int64
	HedgeWins atomic.Int64
	// Fallbacks counts misses the ring could not answer — the caller
	// computes locally (and Put back-fills the ring).
	Fallbacks atomic.Int64
	// Backfills counts results written back to their ring owners;
	// BackfillErrors failed write-backs; BackfillDrops write-backs
	// discarded because the bounded queue was full.
	Backfills      atomic.Int64
	BackfillErrors atomic.Int64
	BackfillDrops  atomic.Int64
}

// StoreSnapshot is a point-in-time copy of StoreCounters, in plain
// fields for rendering and assertions.
type StoreSnapshot struct {
	LocalHits      int64
	LocalMisses    int64
	RemoteHits     int64
	RemoteMisses   int64
	RemoteErrors   int64
	Hedges         int64
	HedgeWins      int64
	Fallbacks      int64
	Backfills      int64
	BackfillErrors int64
	BackfillDrops  int64
}

// Snapshot copies the counters.
func (c *StoreCounters) Snapshot() StoreSnapshot {
	return StoreSnapshot{
		LocalHits:      c.LocalHits.Load(),
		LocalMisses:    c.LocalMisses.Load(),
		RemoteHits:     c.RemoteHits.Load(),
		RemoteMisses:   c.RemoteMisses.Load(),
		RemoteErrors:   c.RemoteErrors.Load(),
		Hedges:         c.Hedges.Load(),
		HedgeWins:      c.HedgeWins.Load(),
		Fallbacks:      c.Fallbacks.Load(),
		Backfills:      c.Backfills.Load(),
		BackfillErrors: c.BackfillErrors.Load(),
		BackfillDrops:  c.BackfillDrops.Load(),
	}
}
