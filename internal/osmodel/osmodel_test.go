package osmodel

import (
	"testing"

	"flashsim/internal/emitter"
	"flashsim/internal/vm"
)

func space() *emitter.AddressSpace {
	as := emitter.NewAddressSpace()
	as.AllocPageAligned("data", 256*vm.PageSize, emitter.Placement{Kind: emitter.PlaceFirstTouch})
	return as
}

func TestSoloTranslationsAreFree(t *testing.T) {
	as := space()
	pt := NewPageTable(Solo, as, 2, 16)
	os := New(DefaultSolo(), pt, 2)
	r := as.Regions()[0]
	tr := os.Translate(0, r.Base+100)
	if tr.PenaltyCycles != 0 || tr.TLBMiss {
		t.Fatalf("solo translation charged: %+v", tr)
	}
	if !tr.ColdFault {
		t.Fatal("first touch should be cold")
	}
	if os.TLB(0) != nil {
		t.Fatal("solo has no TLB")
	}
	if os.SyscallCost(0, 1) != 0 {
		t.Fatal("solo syscalls are backdoors")
	}
	if os.TLBMisses() != 0 {
		t.Fatal("solo TLB misses")
	}
}

func TestSimOSChargesTLBAndFaults(t *testing.T) {
	as := space()
	cfg := DefaultSimOS()
	pt := NewPageTable(SimOS, as, 1, 16)
	os := New(cfg, pt, 1)
	r := as.Regions()[0]
	tr := os.Translate(0, r.Base)
	if !tr.TLBMiss || !tr.ColdFault {
		t.Fatalf("first access flags: %+v", tr)
	}
	want := cfg.TLBHandlerCycles + cfg.PageFaultCycles
	if tr.PenaltyCycles != want {
		t.Fatalf("penalty %d, want %d", tr.PenaltyCycles, want)
	}
	// Second access: warm.
	tr2 := os.Translate(0, r.Base+8)
	if tr2.PenaltyCycles != 0 || tr2.TLBMiss || tr2.ColdFault {
		t.Fatalf("warm access charged: %+v", tr2)
	}
	if os.SyscallCost(0, 1) != cfg.SyscallCycles {
		t.Fatal("syscall cost")
	}
	if os.TLBMisses() != 1 {
		t.Fatalf("tlb misses %d", os.TLBMisses())
	}
}

func TestSimOSTLBThrash(t *testing.T) {
	as := emitter.NewAddressSpace()
	r := as.AllocPageAligned("big", 200*vm.PageSize, emitter.Placement{})
	cfg := DefaultSimOS()
	cfg.TLBEntries = 4
	pt := NewPageTable(SimOS, as, 1, 16)
	os := New(cfg, pt, 1)
	// Warm all pages (faults out of the way).
	for p := uint64(0); p < 8; p++ {
		os.Translate(0, r.Base+p*vm.PageSize)
	}
	before := os.TLBMisses()
	for round := 0; round < 3; round++ {
		for p := uint64(0); p < 8; p++ {
			os.Translate(0, r.Base+p*vm.PageSize)
		}
	}
	if got := os.TLBMisses() - before; got != 24 {
		t.Fatalf("cycling 8 pages through a 4-entry TLB: %d misses, want 24", got)
	}
}

func TestAllocatorSelection(t *testing.T) {
	if Allocator(Solo, 2, 16).Name() != "solo-sequential" {
		t.Fatal("solo allocator")
	}
	if Allocator(SimOS, 2, 16).Name() != "irix-coloring" {
		t.Fatal("simos allocator")
	}
}

func TestPerCPUTLBs(t *testing.T) {
	as := space()
	pt := NewPageTable(SimOS, as, 2, 16)
	os := New(DefaultSimOS(), pt, 2)
	r := as.Regions()[0]
	os.Translate(0, r.Base)
	// CPU 1 misses independently even though the page is mapped.
	tr := os.Translate(1, r.Base)
	if !tr.TLBMiss {
		t.Fatal("TLBs must be per CPU")
	}
	if tr.ColdFault {
		t.Fatal("page already mapped")
	}
}

func TestKindString(t *testing.T) {
	if Solo.String() != "solo" || SimOS.String() != "simos" {
		t.Fatal("kind names")
	}
}
