// Package osmodel provides the two operating-system models of the
// study.
//
// Solo "does not model the operating system or any I/O behavior ...
// it emulates system calls" through backdoor routines and performs
// physical page mapping itself with no TLB: its translations are free
// and its allocator ignores page coloring (vm.SequentialAllocator).
//
// SimOS "models the system in enough detail to boot and run a full
// operating system": page mapping is managed by the simulated IRIX
// kernel (vm.ColorAllocator), every reference goes through a per-CPU
// TLB, TLB refills cost a configurable number of processor cycles (the
// parameter the paper's tuning loop corrected from 25/35 to the true
// 65), and system calls and cold page faults are charged kernel time.
package osmodel

import (
	"flashsim/internal/emitter"
	"flashsim/internal/obs"
	"flashsim/internal/tlb"
	"flashsim/internal/vm"
)

// Kind selects the OS model.
type Kind uint8

const (
	// Solo: no OS, backdoor syscalls, no TLB, naive allocation.
	Solo Kind = iota
	// SimOS: simulated IRIX with TLB, coloring, and kernel costs.
	SimOS
)

// String names the kind.
func (k Kind) String() string {
	if k == Solo {
		return "solo"
	}
	return "simos"
}

// Config parameterizes the OS model.
type Config struct {
	Kind Kind
	// TLBEntries sizes each CPU's TLB (SimOS only; R10000: 64).
	TLBEntries int
	// TLBHandlerCycles is the charged refill cost in CPU cycles. The
	// untuned values are 25 (Mipsy) and 35 (MXS); hardware is 65.
	TLBHandlerCycles uint32
	// PageFaultCycles is the kernel cost of a cold page fault (SimOS).
	PageFaultCycles uint32
	// SyscallCycles is the kernel entry/exit cost of a system call
	// (SimOS; Solo backdoors are free).
	SyscallCycles uint32
}

// DefaultSimOS returns the SimOS configuration with an untuned handler
// cost (callers override per processor model).
func DefaultSimOS() Config {
	return Config{
		Kind:             SimOS,
		TLBEntries:       64,
		TLBHandlerCycles: 25,
		PageFaultCycles:  4000,
		SyscallCycles:    1500,
	}
}

// DefaultSolo returns the Solo configuration.
func DefaultSolo() Config { return Config{Kind: Solo} }

// Translation is the outcome of a virtual-to-physical translation.
type Translation struct {
	// PA is the physical address.
	PA uint64
	// PenaltyCycles is the CPU-cycle cost charged (TLB refill plus any
	// page-fault handling).
	PenaltyCycles uint32
	// TLBMiss reports a TLB refill ran.
	TLBMiss bool
	// ColdFault reports the page was mapped by this access.
	ColdFault bool
}

// OS is one machine's operating-system model: a shared page table plus
// per-CPU TLBs.
type OS struct {
	cfg  Config
	pt   *vm.PageTable
	tlbs []*tlb.TLB
	// faults is a plain scalar: cold faults are only charged on the
	// serial fault path (the parallel phase defers any access whose page
	// is unmapped), so exactly one goroutine ever touches it.
	faults uint64 // charged cold page faults (SimOS)
	// syscalls is per node: SyscallCost runs inside the parallel phase
	// (a syscall never touches shared memory-system state), so each
	// shard increments only its own nodes' slots. Counters sums them in
	// node order, which is deterministic at any shard count.
	syscalls []uint64 // charged system calls (SimOS), per node
}

// New builds the OS model over a page table for an n-CPU machine.
func New(cfg Config, pt *vm.PageTable, procs int) *OS {
	o := &OS{cfg: cfg, pt: pt, syscalls: make([]uint64, procs)}
	if cfg.Kind == SimOS {
		entries := cfg.TLBEntries
		if entries <= 0 {
			entries = 64
		}
		o.tlbs = make([]*tlb.TLB, procs)
		for i := range o.tlbs {
			o.tlbs[i] = tlb.New(tlb.Config{Entries: entries, HandlerCycles: cfg.TLBHandlerCycles, HandlerInstrs: 14})
		}
	}
	return o
}

// Config returns the model configuration.
func (o *OS) Config() Config { return o.cfg }

// Kind returns the model kind.
func (o *OS) Kind() Kind { return o.cfg.Kind }

// PageTable exposes the shared page table.
func (o *OS) PageTable() *vm.PageTable { return o.pt }

// TLB returns CPU i's TLB (nil under Solo).
func (o *OS) TLB(i int) *tlb.TLB {
	if o.tlbs == nil {
		return nil
	}
	return o.tlbs[i]
}

// Translate maps va for the CPU on node, charging TLB and fault costs
// according to the model.
func (o *OS) Translate(node int, va uint64) Translation {
	pp, cold := o.pt.Translate(va, node)
	tr := Translation{PA: pp.Addr(va), ColdFault: cold}
	if o.cfg.Kind == Solo {
		// Backdoor mapping: no TLB, no fault cost.
		return tr
	}
	if !o.tlbs[node].Access(vm.VPage(va)) {
		tr.TLBMiss = true
		tr.PenaltyCycles += o.cfg.TLBHandlerCycles
	}
	if cold {
		o.faults++
		tr.PenaltyCycles += o.cfg.PageFaultCycles
	}
	return tr
}

// SyscallCost returns the charged CPU cycles for a system call on the
// given node. The processor models call it exactly once per Syscall
// instruction, so it doubles as the syscall counter.
func (o *OS) SyscallCost(node int, aux uint32) uint32 {
	if o.cfg.Kind == Solo {
		return 0
	}
	o.syscalls[node]++
	return o.cfg.SyscallCycles
}

// NeedsFault reports whether an access to va would map a new page (a
// cold fault). The parallel phase uses it to decide whether to defer
// the whole access to the serial fault path; it never mutates shared
// state.
func (o *OS) NeedsFault(va uint64) bool {
	_, ok := o.pt.Lookup(va)
	return !ok
}

// TLBMisses sums TLB misses across CPUs.
func (o *OS) TLBMisses() uint64 {
	var n uint64
	for _, t := range o.tlbs {
		n += t.Misses()
	}
	return n
}

// TLBStats sums the per-CPU TLB counters (all zero under Solo).
func (o *OS) TLBStats() obs.TLBCounters {
	var c obs.TLBCounters
	for _, t := range o.tlbs {
		c.Add(t.Stats())
	}
	return c
}

// Counters returns the OS model's end-of-run counters. Per-node
// syscall counts are summed in node order, so the total is identical
// at any shard count.
func (o *OS) Counters() obs.OSCounters {
	var sys uint64
	for _, n := range o.syscalls {
		sys += n
	}
	return obs.OSCounters{
		PagesMapped: uint64(o.pt.Mapped()),
		ColdFaults:  o.faults,
		Syscalls:    sys,
	}
}

// Allocator builds the physical allocator appropriate for the model
// kind: sequential (Solo) or virtual coloring (SimOS/IRIX), for a
// machine whose secondary cache has the given number of page colors.
func Allocator(kind Kind, nodes int, colors uint32) vm.Allocator {
	if kind == Solo {
		return vm.NewSequentialAllocator(nodes, colors)
	}
	return vm.NewColorAllocator(nodes, colors)
}

// NewPageTable is a convenience constructing the page table with the
// model-appropriate allocator.
func NewPageTable(kind Kind, space *emitter.AddressSpace, nodes int, colors uint32) *vm.PageTable {
	return vm.NewPageTable(space, nodes, Allocator(kind, nodes, colors))
}
