package trace_test

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"flashsim/internal/emitter"
	"flashsim/internal/isa"
	"flashsim/internal/trace"
)

// synthStream builds a deterministic pseudo-random instruction stream
// exercising every op kind the codec records.
func synthStream(seed int64, n int) []isa.Instr {
	rng := rand.New(rand.NewSource(seed))
	ins := make([]isa.Instr, n)
	ops := []isa.Op{
		isa.IntALU, isa.FPAdd, isa.Load, isa.Store, isa.Prefetch,
		isa.CacheOp, isa.Lock, isa.Unlock, isa.Barrier, isa.Syscall,
		isa.IntMul, isa.FPDiv,
	}
	for i := range ins {
		op := ops[rng.Intn(len(ops))]
		in := isa.Instr{Op: op}
		if op.IsMem() {
			in.Addr = rng.Uint64() >> 16
			in.Size = 8
		}
		if op.IsSync() || op == isa.Syscall || op == isa.CacheOp {
			in.Aux = uint32(rng.Intn(16))
		}
		if rng.Intn(4) == 0 {
			in.Dep1 = uint32(rng.Intn(64))
		}
		ins[i] = in
	}
	return ins
}

// writeContainer captures per-thread streams through the Tap interface
// (batched like the emitter would) and returns the sealed bytes.
func writeContainer(t *testing.T, meta trace.Meta, streams [][]isa.Instr) []byte {
	t.Helper()
	var buf bytes.Buffer
	tw, err := trace.NewWriter(&buf, meta)
	if err != nil {
		t.Fatal(err)
	}
	const batch = 2048
	for th, ins := range streams {
		for lo := 0; lo < len(ins); lo += batch {
			hi := lo + batch
			if hi > len(ins) {
				hi = len(ins)
			}
			tw.Tap(th, ins[lo:hi])
		}
	}
	space := emitter.NewAddressSpace()
	space.AllocPageAligned("data", 1<<16, emitter.Placement{Kind: emitter.PlaceBlocked, Stride: 1 << 14})
	tw.SetLayout(space)
	if err := tw.Finish(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestWriterReaderRoundTrip(t *testing.T) {
	// Enough instructions that thread 0 crosses the chunk-seal
	// threshold at least once (~3 bytes/instr encoded).
	streams := [][]isa.Instr{
		synthStream(1, 200_000),
		synthStream(2, 50_000),
		synthStream(3, 1),
	}
	meta := trace.Meta{Workload: "synthetic.v1", Threads: 3, Artifact: "abc123"}
	data := writeContainer(t, meta, streams)

	tr, err := trace.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Workload() != "synthetic.v1" || tr.Meta().Artifact != "abc123" {
		t.Fatalf("meta lost: %+v", tr.Meta())
	}
	if tr.Threads() != 3 {
		t.Fatalf("threads = %d", tr.Threads())
	}
	if tr.Chunks() < 2 {
		t.Fatalf("expected multiple chunks, got %d", tr.Chunks())
	}
	var want uint64
	for i, ins := range streams {
		want += uint64(len(ins))
		if got := tr.ThreadInstructions(i); got != uint64(len(ins)) {
			t.Fatalf("thread %d: %d instructions recorded, want %d", i, got, len(ins))
		}
	}
	if tr.Instructions() != want {
		t.Fatalf("total %d, want %d", tr.Instructions(), want)
	}
	// Batches: ceil(len/2048) per thread.
	wantBatches := uint64(0)
	for _, ins := range streams {
		wantBatches += uint64((len(ins) + 2047) / 2048)
	}
	if tr.Batches() != wantBatches {
		t.Fatalf("batches %d, want %d", tr.Batches(), wantBatches)
	}
	// Streams decode back bit-identically.
	for i, ins := range streams {
		cur := tr.Thread(i)
		var got []isa.Instr
		for {
			b, err := cur.NextBatch()
			if err != nil {
				t.Fatalf("thread %d: %v", i, err)
			}
			if b == nil {
				break
			}
			got = append(got, b...)
		}
		if !reflect.DeepEqual(got, ins) {
			t.Fatalf("thread %d stream did not round-trip (%d vs %d instrs)", i, len(got), len(ins))
		}
	}
	// Layout round-trips into an equivalent address space.
	want2 := emitter.NewAddressSpace()
	want2.AllocPageAligned("data", 1<<16, emitter.Placement{Kind: emitter.PlaceBlocked, Stride: 1 << 14})
	sp := tr.Space()
	if sp.Span() != want2.Span() {
		t.Fatalf("span %#x, want %#x", sp.Span(), want2.Span())
	}
	if !reflect.DeepEqual(sp.Regions(), want2.Regions()) {
		t.Fatalf("regions did not round-trip: %+v", sp.Regions())
	}
	if n, err := tr.Verify(); err != nil || n != want {
		t.Fatalf("Verify: %d, %v", n, err)
	}
}

func TestReadFileRoundTrip(t *testing.T) {
	streams := [][]isa.Instr{synthStream(7, 5000)}
	data := writeContainer(t, trace.Meta{Workload: "w", Threads: 1}, streams)
	path := filepath.Join(t.TempDir(), "x.fltr")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	tr, err := trace.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Instructions() != 5000 {
		t.Fatalf("instructions %d", tr.Instructions())
	}
}

func TestWriterRejectsBadThreadCount(t *testing.T) {
	var buf bytes.Buffer
	if _, err := trace.NewWriter(&buf, trace.Meta{Threads: 0}); err == nil {
		t.Fatal("zero threads accepted")
	}
	if _, err := trace.NewWriter(&buf, trace.Meta{Threads: 1 << 20}); err == nil {
		t.Fatal("huge thread count accepted")
	}
}

func TestFinishTwiceFails(t *testing.T) {
	var buf bytes.Buffer
	tw, err := trace.NewWriter(&buf, trace.Meta{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := tw.Finish(); err == nil {
		t.Fatal("second Finish accepted")
	}
}

// TestDecodeRejectsCorruption flips, truncates, and rewrites a valid
// container in targeted ways; every mutant must fail cleanly — either
// at Decode or when the affected stream is verified — and never panic.
func TestDecodeRejectsCorruption(t *testing.T) {
	streams := [][]isa.Instr{synthStream(11, 20_000), synthStream(12, 100)}
	data := writeContainer(t, trace.Meta{Workload: "w", Threads: 2}, streams)

	mustFail := func(name string, mutant []byte) {
		t.Helper()
		tr, err := trace.Decode(mutant)
		if err != nil {
			return
		}
		if _, err := tr.Verify(); err == nil {
			t.Fatalf("%s: corruption not detected", name)
		}
	}

	// Truncations at every structurally interesting boundary.
	for _, n := range []int{0, 4, 8, 12, len(data) / 2, len(data) - 1} {
		mustFail("truncate", data[:n])
	}
	// Bad magics and version.
	m := bytes.Clone(data)
	m[0] ^= 0xFF
	mustFail("magic", m)
	m = bytes.Clone(data)
	binary.LittleEndian.PutUint32(m[8:12], trace.FormatVersion+1)
	mustFail("version", m)
	m = bytes.Clone(data)
	m[len(m)-1] ^= 0xFF
	mustFail("end magic", m)
	// Oversized footer length.
	m = bytes.Clone(data)
	binary.LittleEndian.PutUint64(m[len(m)-16:len(m)-8], uint64(len(m)))
	mustFail("footer length", m)
	// Flip one byte in each 64-byte window of the chunk payload area
	// (everything between the header and the footer); each flip lands
	// in some chunk's compressed bytes, which the per-chunk CRC covers.
	// (Flips inside the footer's JSON strings can be semantically
	// benign — a renamed workload is a different but valid container —
	// so the sweep stops at the footer.)
	flen := binary.LittleEndian.Uint64(data[len(data)-16 : len(data)-8])
	footStart := len(data) - 16 - int(flen)
	for off := 12; off < footStart; off += 64 {
		m = bytes.Clone(data)
		m[off] ^= 0x01
		mustFail("bitflip", m)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := trace.Decode(nil); err == nil {
		t.Fatal("nil accepted")
	}
	if _, err := trace.Decode(bytes.Repeat([]byte{0xAB}, 4096)); err == nil {
		t.Fatal("garbage accepted")
	}
}
