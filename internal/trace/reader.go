package trace

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"flashsim/internal/emitter"
	"flashsim/internal/isa"
)

// Trace is a decoded container: validated metadata plus the raw file
// bytes, from which per-thread Cursors stream instructions on demand.
// A Trace is immutable and safe for concurrent use; each Cursor owns
// its own decode state.
type Trace struct {
	meta    Meta
	layout  Layout
	chunks  []chunkInfo
	instrs  []uint64
	batches []uint64
	// perThread lists chunk indices per thread, in stream order.
	perThread [][]int
	data      []byte
}

// ReadFile loads and validates a container from disk.
func ReadFile(path string) (*Trace, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	t, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("trace: %s: %w", path, err)
	}
	return t, nil
}

// Decode validates a container held in memory. The Trace retains data
// (chunks decompress lazily); the caller must not mutate it.
//
// Decode and the Cursors it hands out never panic on malformed input:
// every structural violation — bad magic, foreign version, truncated
// or overlapping ranges, CRC mismatch, short or overlong chunk
// payloads, count mismatches, codec errors — returns an error.
func Decode(data []byte) (*Trace, error) {
	if len(data) < headerSize+tailSize {
		return nil, fmt.Errorf("trace: container too short (%d bytes)", len(data))
	}
	if string(data[:len(fileMagic)]) != fileMagic {
		return nil, fmt.Errorf("trace: bad magic")
	}
	if v := binary.LittleEndian.Uint32(data[len(fileMagic):headerSize]); v != FormatVersion {
		return nil, fmt.Errorf("trace: unsupported format version %d (this build reads %d)", v, FormatVersion)
	}
	if string(data[len(data)-len(endMagic):]) != endMagic {
		return nil, fmt.Errorf("trace: bad end magic (truncated container?)")
	}
	flen := binary.LittleEndian.Uint64(data[len(data)-tailSize : len(data)-len(endMagic)])
	maxFooter := uint64(len(data) - headerSize - tailSize)
	if flen > maxFooter {
		return nil, fmt.Errorf("trace: footer length %d exceeds container", flen)
	}
	footStart := int64(len(data)-tailSize) - int64(flen)
	var f footer
	if err := json.Unmarshal(data[footStart:int64(len(data)-tailSize)], &f); err != nil {
		return nil, fmt.Errorf("trace: decoding footer: %w", err)
	}
	if f.Meta.Threads <= 0 || f.Meta.Threads > maxThreads {
		return nil, fmt.Errorf("trace: invalid thread count %d", f.Meta.Threads)
	}
	if len(f.Instrs) != f.Meta.Threads || len(f.Batches) != f.Meta.Threads {
		return nil, fmt.Errorf("trace: per-thread counters cover %d/%d threads, want %d",
			len(f.Instrs), len(f.Batches), f.Meta.Threads)
	}
	if len(f.Layout.Regions) > maxRegions {
		return nil, fmt.Errorf("trace: %d regions exceeds limit", len(f.Layout.Regions))
	}
	for _, r := range f.Layout.Regions {
		if r.Size == 0 || r.Base+r.Size < r.Base {
			return nil, fmt.Errorf("trace: region %q has invalid extent [%#x, +%d)", r.Name, r.Base, r.Size)
		}
	}
	t := &Trace{
		meta:      f.Meta,
		layout:    f.Layout,
		chunks:    f.Chunks,
		instrs:    f.Instrs,
		batches:   f.Batches,
		perThread: make([][]int, f.Meta.Threads),
		data:      data,
	}
	counted := make([]uint64, f.Meta.Threads)
	for i, ch := range f.Chunks {
		if ch.Thread < 0 || ch.Thread >= f.Meta.Threads {
			return nil, fmt.Errorf("trace: chunk %d belongs to thread %d of %d", i, ch.Thread, f.Meta.Threads)
		}
		if ch.Comp <= 0 || ch.Raw <= 0 || ch.Raw > maxChunkRaw {
			return nil, fmt.Errorf("trace: chunk %d has invalid sizes (comp=%d raw=%d)", i, ch.Comp, ch.Raw)
		}
		if ch.Offset < int64(headerSize) || ch.Offset+ch.Comp < ch.Offset || ch.Offset+ch.Comp > footStart {
			return nil, fmt.Errorf("trace: chunk %d range [%d, +%d) escapes payload area", i, ch.Offset, ch.Comp)
		}
		// Every encoded instruction is at least two bytes.
		if ch.Count == 0 || ch.Count > uint64(ch.Raw)/2 {
			return nil, fmt.Errorf("trace: chunk %d declares %d instructions in %d bytes", i, ch.Count, ch.Raw)
		}
		counted[ch.Thread] += ch.Count
		t.perThread[ch.Thread] = append(t.perThread[ch.Thread], i)
	}
	for th, n := range counted {
		if n != f.Instrs[th] {
			return nil, fmt.Errorf("trace: thread %d chunks sum to %d instructions, footer says %d", th, n, f.Instrs[th])
		}
	}
	return t, nil
}

// Meta returns the capture metadata.
func (t *Trace) Meta() Meta { return t.meta }

// Layout returns the recorded address-space layout.
func (t *Trace) Layout() Layout { return t.layout }

// Space reconstructs the recorded address space.
func (t *Trace) Space() *emitter.AddressSpace { return t.layout.Space() }

// Threads returns the thread count.
func (t *Trace) Threads() int { return t.meta.Threads }

// Workload returns the captured program's FullName.
func (t *Trace) Workload() string { return t.meta.Workload }

// Instructions returns the total recorded instruction count.
func (t *Trace) Instructions() uint64 {
	var n uint64
	for _, c := range t.instrs {
		n += c
	}
	return n
}

// ThreadInstructions returns thread i's recorded instruction count.
func (t *Trace) ThreadInstructions(i int) uint64 { return t.instrs[i] }

// Batches returns the total number of batches the capture flushed —
// exactly the batch count an execution-driven run's readers consume.
func (t *Trace) Batches() uint64 {
	var n uint64
	for _, c := range t.batches {
		n += c
	}
	return n
}

// Chunks returns the number of indexed chunks.
func (t *Trace) Chunks() int { return len(t.chunks) }

// CompressedBytes returns the summed compressed chunk payload size.
func (t *Trace) CompressedBytes() int64 {
	var n int64
	for _, ch := range t.chunks {
		n += ch.Comp
	}
	return n
}

// Thread returns a cursor over thread i's recorded stream.
func (t *Trace) Thread(i int) *Cursor {
	return &Cursor{t: t, idxs: t.perThread[i]}
}

// Verify fully decodes every thread's stream, checking all integrity
// layers. It reports the total instruction count.
func (t *Trace) Verify() (uint64, error) {
	var total uint64
	for i := 0; i < t.Threads(); i++ {
		cur := t.Thread(i)
		for {
			batch, err := cur.NextBatch()
			if err != nil {
				return total, fmt.Errorf("thread %d: %w", i, err)
			}
			if batch == nil {
				break
			}
			total += uint64(len(batch))
		}
	}
	return total, nil
}

// Cursor streams one thread's instructions chunk by chunk. Not safe
// for concurrent use; create one per consumer.
type Cursor struct {
	t    *Trace
	idxs []int
	next int
	raw  []byte
	buf  []isa.Instr
	fr   io.ReadCloser
}

// NextBatch decodes the next chunk's instructions, reusing the
// cursor's internal buffer (valid until the following call). It
// returns nil at end of stream.
func (c *Cursor) NextBatch() ([]isa.Instr, error) {
	if c.next >= len(c.idxs) {
		return nil, nil
	}
	ch := c.t.chunks[c.idxs[c.next]]
	c.next++
	comp := c.t.data[ch.Offset : ch.Offset+ch.Comp]
	if crc := crc32.ChecksumIEEE(comp); crc != ch.CRC {
		return nil, fmt.Errorf("trace: chunk CRC mismatch (have %#x, recorded %#x)", crc, ch.CRC)
	}
	if c.fr == nil {
		c.fr = flate.NewReader(bytes.NewReader(comp))
	} else if err := c.fr.(flate.Resetter).Reset(bytes.NewReader(comp), nil); err != nil {
		return nil, fmt.Errorf("trace: resetting decompressor: %w", err)
	}
	if int64(cap(c.raw)) < ch.Raw {
		c.raw = make([]byte, ch.Raw)
	}
	c.raw = c.raw[:ch.Raw]
	if _, err := io.ReadFull(c.fr, c.raw); err != nil {
		return nil, fmt.Errorf("trace: decompressing chunk: %w", err)
	}
	var extra [1]byte
	if n, _ := c.fr.Read(extra[:]); n != 0 {
		return nil, fmt.Errorf("trace: chunk decompresses past its recorded %d bytes", ch.Raw)
	}
	if cap(c.buf) < int(ch.Count) {
		c.buf = make([]isa.Instr, 0, ch.Count)
	}
	c.buf = c.buf[:0]
	b := c.raw
	for len(b) > 0 {
		in, n, err := isa.DecodeInstr(b)
		if err != nil {
			return nil, fmt.Errorf("trace: chunk instruction %d: %w", len(c.buf), err)
		}
		c.buf = append(c.buf, in)
		b = b[n:]
	}
	if uint64(len(c.buf)) != ch.Count {
		return nil, fmt.Errorf("trace: chunk decodes to %d instructions, index says %d", len(c.buf), ch.Count)
	}
	return c.buf, nil
}
