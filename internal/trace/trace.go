// Package trace is the trace-capture container: a compact chunked file
// format for the emitter's per-thread instruction streams, enabling
// trace-driven simulation (capture once, replay many) next to the
// execution-driven mode the paper uses.
//
// # Container format (version 1)
//
//	offset 0:  8-byte magic "FLTRACE\n"
//	offset 8:  uint32 LE format version
//	offset 12: chunk payloads, back to back, in write order
//	           (each chunk: DEFLATE-compressed canonical isa codec
//	           bytes for a run of one thread's instructions)
//	...        footer: one JSON document (Meta, Layout, chunk index,
//	           per-thread instruction/batch counts)
//	...        uint64 LE footer length
//	...        8-byte end magic "FLTREND\n"
//
// The footer lives at the end so capture is a single append-only pass:
// the Writer streams compressed chunks as threads emit and seals the
// index when the run completes. Integrity is layered: magic + version
// at both ends, a CRC-32 (IEEE) per compressed chunk, exact
// decompressed-length and instruction-count accounting per chunk, and
// the canonical isa codec's own bijectivity checks per instruction.
// Decode validates all of it and returns errors — never panics — on
// arbitrary input (FuzzDecode pins this).
//
// # Compatibility rules
//
// FormatVersion identifies the container layout AND the stream
// semantics together. Readers accept exactly their own version:
// any change to the chunk layout, the footer schema, the isa codec,
// or the meaning of a recorded stream must bump FormatVersion, and a
// bumped version must never alias cache entries written by an older
// one (runner.TraceFingerprint folds the version into the artifact
// key; TestTraceFingerprintSchemaVersioned pins this).
package trace

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
	"sync/atomic"

	"flashsim/internal/emitter"
	"flashsim/internal/isa"
)

// FormatVersion is the container format version this package writes
// and the only one it reads.
const FormatVersion = 1

const (
	fileMagic  = "FLTRACE\n"
	endMagic   = "FLTREND\n"
	headerSize = len(fileMagic) + 4 // magic + uint32 version
	tailSize   = 8 + len(endMagic)  // uint64 footer length + end magic

	// chunkTarget is the raw (uncompressed) size at which a thread's
	// pending bytes are sealed into a chunk.
	chunkTarget = 256 << 10
	// maxChunkRaw bounds a chunk's declared decompressed size; a
	// legitimate writer never exceeds chunkTarget plus one encoded
	// batch, so 4 MiB is generous while keeping a malformed index from
	// demanding huge decode allocations.
	maxChunkRaw = 4 << 20
	// maxThreads bounds the declared thread count (decode sanity).
	maxThreads = 1 << 12
	// maxRegions bounds the declared region count (decode sanity).
	maxRegions = 1 << 16
)

// Meta identifies what a trace is a capture of. The Config snapshot
// and fingerprints are provenance recorded by the capturing layer
// (runner.TraceMeta); this package does not interpret them.
type Meta struct {
	// Workload is the program's FullName; Threads its thread count.
	Workload string
	Threads  int
	// Fingerprint is the capture run's runner.Fingerprint; Artifact is
	// the trace's own content address (runner.TraceFingerprint), which
	// keys the replay-result memo entries derived from this trace.
	Fingerprint string `json:",omitempty"`
	Artifact    string `json:",omitempty"`
	// Config is the param canonical snapshot of the capture
	// configuration (schema-versioned, like the memo store key).
	Config json.RawMessage `json:",omitempty"`
	// Source optionally records a machine-readable workload spec so
	// tools can rebuild the execution-driven program for comparison.
	Source json.RawMessage `json:",omitempty"`
}

// RegionInfo is one recorded address-space region.
type RegionInfo struct {
	Name        string
	Base, Size  uint64
	PlaceKind   uint8
	PlaceNode   int
	PlaceStride uint64
}

// Layout is the recorded address-space shape: everything the OS model
// needs to rebuild page mapping for replay.
type Layout struct {
	Span    uint64
	Regions []RegionInfo
}

// LayoutOf snapshots an address space.
func LayoutOf(space *emitter.AddressSpace) Layout {
	regions := space.Regions()
	l := Layout{Span: space.Span(), Regions: make([]RegionInfo, len(regions))}
	for i, r := range regions {
		l.Regions[i] = RegionInfo{
			Name:        r.Name,
			Base:        r.Base,
			Size:        r.Size,
			PlaceKind:   uint8(r.Place.Kind),
			PlaceNode:   r.Place.Node,
			PlaceStride: r.Place.Stride,
		}
	}
	return l
}

// Space reconstructs the recorded address space.
func (l Layout) Space() *emitter.AddressSpace {
	regions := make([]emitter.Region, len(l.Regions))
	for i, r := range l.Regions {
		regions[i] = emitter.Region{
			Name: r.Name,
			Base: r.Base,
			Size: r.Size,
			Place: emitter.Placement{
				Kind:   emitter.PlacementKind(r.PlaceKind),
				Node:   r.PlaceNode,
				Stride: r.PlaceStride,
			},
		}
	}
	return emitter.RestoreAddressSpace(regions, l.Span)
}

// chunkInfo is one index entry: where a chunk's compressed payload
// lives and what it must decode to.
type chunkInfo struct {
	Thread int
	Offset int64
	Comp   int64
	Raw    int64
	Count  uint64
	CRC    uint32
}

// footer is the trailing JSON document sealing a container.
type footer struct {
	Meta   Meta
	Layout Layout
	Chunks []chunkInfo
	// Instrs and Batches record, per thread, the emitted instruction
	// count and the number of flushed batches. Batches lets replay
	// reproduce the execution-driven emitter counters exactly.
	Instrs  []uint64
	Batches []uint64
}

// threadBuf accumulates one thread's pending raw bytes. Only that
// thread's emitter goroutine touches it; the Writer lock covers only
// the shared file append.
type threadBuf struct {
	raw     []byte
	count   uint64 // instructions in raw, not yet sealed
	total   uint64 // instructions recorded overall
	batches uint64
	comp    bytes.Buffer
	fw      *flate.Writer
}

// Writer captures per-thread instruction streams into a container.
// Create with NewWriter, feed via Tap (typically through
// machine.RunCapture), then Finish. Tap is safe for concurrent use by
// one goroutine per thread; everything else is single-goroutine.
type Writer struct {
	meta    Meta
	layout  Layout
	threads []*threadBuf

	mu     sync.Mutex
	w      io.Writer
	off    int64
	chunks []chunkInfo
	err    error

	failed   atomic.Bool
	finished bool
}

// NewWriter starts a container on w. meta.Threads must be the thread
// count of the program being captured.
func NewWriter(w io.Writer, meta Meta) (*Writer, error) {
	if meta.Threads <= 0 || meta.Threads > maxThreads {
		return nil, fmt.Errorf("trace: invalid thread count %d", meta.Threads)
	}
	tw := &Writer{meta: meta, w: w, threads: make([]*threadBuf, meta.Threads)}
	for i := range tw.threads {
		fw, err := flate.NewWriter(io.Discard, flate.BestSpeed)
		if err != nil {
			return nil, fmt.Errorf("trace: %w", err)
		}
		tw.threads[i] = &threadBuf{fw: fw}
	}
	var hdr [headerSize]byte
	copy(hdr[:], fileMagic)
	binary.LittleEndian.PutUint32(hdr[len(fileMagic):], FormatVersion)
	if err := tw.write(hdr[:]); err != nil {
		return nil, err
	}
	return tw, nil
}

// Threads returns the thread count the writer was created for.
func (tw *Writer) Threads() int { return tw.meta.Threads }

// write appends b to the file under the lock, tracking the offset.
func (tw *Writer) write(b []byte) error {
	tw.mu.Lock()
	defer tw.mu.Unlock()
	return tw.writeLocked(b)
}

func (tw *Writer) writeLocked(b []byte) error {
	if tw.err != nil {
		return tw.err
	}
	n, err := tw.w.Write(b)
	tw.off += int64(n)
	if err != nil {
		tw.err = err
		tw.failed.Store(true)
	}
	return err
}

// Tap records one flushed batch of thread's stream. It satisfies
// emitter.Tap. Errors are sticky and surfaced by Finish (a tap has no
// error channel back into the emitting goroutine).
func (tw *Writer) Tap(thread int, batch []isa.Instr) {
	if tw.failed.Load() || thread < 0 || thread >= len(tw.threads) {
		return
	}
	tb := tw.threads[thread]
	for _, in := range batch {
		tb.raw = isa.AppendInstr(tb.raw, in)
	}
	tb.count += uint64(len(batch))
	tb.total += uint64(len(batch))
	tb.batches++
	if len(tb.raw) >= chunkTarget {
		tw.sealChunk(thread, tb)
	}
}

// sealChunk compresses a thread's pending bytes and appends them as
// one indexed chunk.
func (tw *Writer) sealChunk(thread int, tb *threadBuf) {
	if len(tb.raw) == 0 {
		return
	}
	tb.comp.Reset()
	tb.fw.Reset(&tb.comp)
	if _, err := tb.fw.Write(tb.raw); err != nil {
		tw.fail(err)
		return
	}
	if err := tb.fw.Close(); err != nil {
		tw.fail(err)
		return
	}
	payload := tb.comp.Bytes()
	info := chunkInfo{
		Thread: thread,
		Comp:   int64(len(payload)),
		Raw:    int64(len(tb.raw)),
		Count:  tb.count,
		CRC:    crc32.ChecksumIEEE(payload),
	}
	tw.mu.Lock()
	info.Offset = tw.off
	if err := tw.writeLocked(payload); err == nil {
		tw.chunks = append(tw.chunks, info)
	}
	tw.mu.Unlock()
	tb.raw = tb.raw[:0]
	tb.count = 0
}

func (tw *Writer) fail(err error) {
	tw.mu.Lock()
	if tw.err == nil {
		tw.err = err
	}
	tw.mu.Unlock()
	tw.failed.Store(true)
}

// SetLayout records the capture run's address space. Call once the
// program has launched (its Setup has run), before Finish.
func (tw *Writer) SetLayout(space *emitter.AddressSpace) {
	tw.layout = LayoutOf(space)
}

// Finish seals the container: it flushes every thread's pending bytes
// and writes the footer. Call only after all emitting goroutines have
// stopped. The writer is unusable afterwards.
func (tw *Writer) Finish() error {
	if tw.finished {
		return fmt.Errorf("trace: Finish called twice")
	}
	tw.finished = true
	for i, tb := range tw.threads {
		tw.sealChunk(i, tb)
	}
	f := footer{
		Meta:    tw.meta,
		Layout:  tw.layout,
		Chunks:  tw.chunks,
		Instrs:  make([]uint64, len(tw.threads)),
		Batches: make([]uint64, len(tw.threads)),
	}
	for i, tb := range tw.threads {
		f.Instrs[i] = tb.total
		f.Batches[i] = tb.batches
	}
	body, err := json.Marshal(f)
	if err != nil {
		return fmt.Errorf("trace: encoding footer: %w", err)
	}
	var tail [tailSize]byte
	binary.LittleEndian.PutUint64(tail[:8], uint64(len(body)))
	copy(tail[8:], endMagic)
	if err := tw.write(body); err != nil {
		return fmt.Errorf("trace: writing footer: %w", err)
	}
	if err := tw.write(tail[:]); err != nil {
		return fmt.Errorf("trace: writing footer: %w", err)
	}
	tw.mu.Lock()
	defer tw.mu.Unlock()
	return tw.err
}
