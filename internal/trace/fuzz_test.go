package trace_test

import (
	"bytes"
	"testing"

	"flashsim/internal/isa"
	"flashsim/internal/trace"
)

// fuzzSeed builds a small real container (two threads, a few thousand
// mixed instructions) so the fuzzer starts from valid structure and
// mutates inward, instead of spending its budget rediscovering the
// magic numbers.
func fuzzSeed(f *testing.F) []byte {
	f.Helper()
	var buf bytes.Buffer
	tw, err := trace.NewWriter(&buf, trace.Meta{Workload: "fuzz-seed", Threads: 2})
	if err != nil {
		f.Fatal(err)
	}
	tw.Tap(0, synthStream(101, 3000))
	tw.Tap(1, synthStream(102, 500))
	if err := tw.Finish(); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzDecode pins the reader's central robustness contract: on
// arbitrary bytes, Decode and full stream verification return errors —
// they never panic, and never let a malformed container masquerade as
// more instructions than its index admits.
func FuzzDecode(f *testing.F) {
	seed := fuzzSeed(f)
	f.Add(seed)
	f.Add(seed[:len(seed)/2])
	f.Add(seed[:12])
	f.Add([]byte("FLTRACE\n"))
	f.Add([]byte{})
	// A corrupted-footer variant: valid framing, JSON garbage inside.
	corrupt := bytes.Clone(seed)
	if len(corrupt) > 40 {
		copy(corrupt[len(corrupt)-30:len(corrupt)-16], "##############")
	}
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := trace.Decode(data)
		if err != nil {
			return // rejection is the expected outcome for most mutants
		}
		// Structurally valid: full verification must complete without
		// panicking, and an accepted stream must agree with the index.
		n, err := tr.Verify()
		if err != nil {
			return
		}
		if n != tr.Instructions() {
			t.Fatalf("verified %d instructions, index says %d", n, tr.Instructions())
		}
		for i := 0; i < tr.Threads(); i++ {
			cur := tr.Thread(i)
			var got uint64
			for {
				b, err := cur.NextBatch()
				if err != nil {
					t.Fatalf("thread %d errored after Verify passed: %v", i, err)
				}
				if b == nil {
					break
				}
				for _, in := range b {
					if in.Op >= isa.NumOps {
						t.Fatalf("decoded invalid opcode %d", in.Op)
					}
				}
				got += uint64(len(b))
			}
			if got != tr.ThreadInstructions(i) {
				t.Fatalf("thread %d streamed %d instructions, index says %d", i, got, tr.ThreadInstructions(i))
			}
		}
	})
}
