package proto

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestClassifyMatchesTable3(t *testing.T) {
	cases := []struct {
		name            string
		requester, home int
		st              EntryState
		owner           int
		shares          bool
		want            Case
	}{
		{"local clean unowned", 0, 0, DirUnowned, -1, false, LocalClean},
		{"local clean shared", 0, 0, DirShared, -1, false, LocalClean},
		{"local dirty remote", 0, 0, DirDirty, 1, false, LocalDirtyRemote},
		{"remote clean", 0, 1, DirUnowned, -1, false, RemoteClean},
		{"remote dirty home", 0, 1, DirDirty, 1, false, RemoteDirtyHome},
		{"remote dirty remote", 0, 1, DirDirty, 2, false, RemoteDirtyRemote},
		{"upgrade", 0, 1, DirShared, -1, true, Upgrade},
	}
	for _, c := range cases {
		if got := Classify(c.requester, c.home, c.st, c.owner, c.shares); got != c.want {
			t.Errorf("%s: got %v, want %v", c.name, got, c.want)
		}
	}
}

func TestReadGrantsExclusiveOnUnowned(t *testing.T) {
	d := NewDirectory(4, 0)
	rr := d.Read(0x1000, 0, 2)
	if !rr.Exclusive {
		t.Fatal("read to unowned must grant exclusive")
	}
	st, owner, _ := d.State(0x1000)
	if st != DirDirty || owner != 2 {
		t.Fatalf("state %v owner %d", st, owner)
	}
}

func TestSecondReaderDowngradesOwner(t *testing.T) {
	d := NewDirectory(4, 0)
	d.Read(0x1000, 0, 2)
	rr := d.Read(0x1000, 0, 3)
	if rr.Exclusive {
		t.Fatal("second read must not be exclusive")
	}
	if rr.Owner != 2 {
		t.Fatalf("forward owner %d, want 2", rr.Owner)
	}
	st, _, sharers := d.State(0x1000)
	if st != DirShared || len(sharers) != 2 {
		t.Fatalf("state %v sharers %v", st, sharers)
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	d := NewDirectory(4, 0)
	d.Read(0x1000, 0, 1)
	d.Read(0x1000, 0, 2)
	d.Read(0x1000, 0, 3)
	wr := d.Write(0x1000, 0, 0)
	if len(wr.Invalidate) != 3 {
		t.Fatalf("invalidations %v", wr.Invalidate)
	}
	for _, s := range wr.Invalidate {
		if s == 0 {
			t.Fatal("requester must not invalidate itself")
		}
	}
	st, owner, sharers := d.State(0x1000)
	if st != DirDirty || owner != 0 || len(sharers) != 0 {
		t.Fatalf("post-write state %v owner %d sharers %v", st, owner, sharers)
	}
}

func TestUpgradeCase(t *testing.T) {
	d := NewDirectory(4, 0)
	d.Read(0x1000, 0, 1)
	d.Read(0x1000, 0, 2) // both sharing now
	wr := d.Write(0x1000, 0, 1)
	if wr.Case != Upgrade {
		t.Fatalf("case %v, want upgrade", wr.Case)
	}
	if len(wr.Invalidate) != 1 || wr.Invalidate[0] != 2 {
		t.Fatalf("invalidate %v", wr.Invalidate)
	}
}

func TestWriteToOwnDirtyLineIsUpgradeLike(t *testing.T) {
	d := NewDirectory(4, 0)
	d.Write(0x1000, 0, 1)
	wr := d.Write(0x1000, 0, 1)
	if wr.Case != Upgrade || wr.Owner != -1 || len(wr.Invalidate) != 0 {
		t.Fatalf("re-acquire: %+v", wr)
	}
}

func TestWritebackClearsOwnership(t *testing.T) {
	d := NewDirectory(4, 0)
	d.Write(0x1000, 0, 2)
	d.Writeback(0x1000, 2)
	st, owner, _ := d.State(0x1000)
	if st != DirUnowned || owner != -1 {
		t.Fatalf("post-writeback %v/%d", st, owner)
	}
	// A stale writeback from a non-owner is dropped.
	d.Write(0x1000, 0, 1)
	d.Writeback(0x1000, 3)
	st, owner, _ = d.State(0x1000)
	if st != DirDirty || owner != 1 {
		t.Fatalf("stale writeback disturbed state: %v/%d", st, owner)
	}
}

func TestReplaceHints(t *testing.T) {
	d := NewDirectory(4, 0)
	d.Read(0x1000, 0, 2) // exclusive grant
	d.Replace(0x1000, 2)
	st, _, _ := d.State(0x1000)
	if st != DirUnowned {
		t.Fatalf("replace of exclusive owner: %v", st)
	}
	d.Read(0x1000, 0, 1)
	d.Read(0x1000, 0, 2)
	d.Replace(0x1000, 1)
	st, _, sharers := d.State(0x1000)
	if st != DirShared || len(sharers) != 1 || sharers[0] != 2 {
		t.Fatalf("replace of sharer: %v %v", st, sharers)
	}
	d.Replace(0x1000, 2)
	st, _, _ = d.State(0x1000)
	if st != DirUnowned {
		t.Fatalf("replace of last sharer: %v", st)
	}
	d.Replace(0x9999, 0) // unknown line: no-op
}

func TestDirtyReadNeverReportsUpgrade(t *testing.T) {
	d := NewDirectory(4, 0)
	d.Read(0x1000, 0, 1)
	d.Read(0x1000, 0, 2)
	// Node 1 silently evicted and re-reads; the stale sharing list
	// must not turn the read into an Upgrade.
	rr := d.Read(0x1000, 0, 1)
	if rr.Case == Upgrade {
		t.Fatal("read classified as upgrade")
	}
}

func TestCaseStrings(t *testing.T) {
	for c := Case(0); c < NumCases; c++ {
		if c.String() == "" {
			t.Errorf("case %d unnamed", c)
		}
	}
	for _, s := range []EntryState{DirUnowned, DirShared, DirDirty} {
		if s.String() == "" {
			t.Errorf("state %d unnamed", s)
		}
	}
}

func TestStatsAccumulate(t *testing.T) {
	d := NewDirectory(4, 0)
	d.Read(0x1000, 0, 1)
	d.Write(0x2000, 0, 2)
	d.Writeback(0x2000, 2)
	st := d.Stats()
	if st.Reads != 1 || st.Writes != 1 || st.Writebacks != 1 {
		t.Fatalf("stats %+v", st)
	}
	if d.Lines() != 2 {
		t.Fatalf("lines %d", d.Lines())
	}
}

// TestSingleOwnerInvariant: under random read/write/writeback traffic
// the directory never has two owners and dirty state always has exactly
// one owner.
func TestSingleOwnerInvariant(t *testing.T) {
	f := func(ops []uint16) bool {
		d := NewDirectory(4, 0)
		lines := []uint64{0x1000, 0x2000, 0x3000}
		for _, op := range ops {
			line := lines[int(op)%len(lines)]
			node := int(op>>2) % 4
			switch (op >> 4) % 3 {
			case 0:
				d.Read(line, 0, node)
			case 1:
				d.Write(line, 0, node)
			case 2:
				d.Writeback(line, node)
			}
			st, owner, sharers := d.State(line)
			switch st {
			case DirDirty:
				if owner < 0 || owner > 3 || len(sharers) != 0 {
					return false
				}
			case DirShared:
				if owner != -1 || len(sharers) == 0 {
					return false
				}
			case DirUnowned:
				if owner != -1 || len(sharers) != 0 {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(42))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
