package proto

import (
	"math/rand"
	"strings"
	"testing"
)

// TestRandomTrafficKeepsInvariants drives the directory through
// thousands of mixed read/write/evict/writeback operations from random
// nodes with per-operation invariant checking enabled. Any structural
// violation — dirty-shared, out-of-range sharer, duplicate sharer,
// owner on a non-dirty line — panics inside the operation that caused
// it, pinpointing the offending transition.
func TestRandomTrafficKeepsInvariants(t *testing.T) {
	const (
		nodes = 8
		lines = 64
		ops   = 20000
	)
	rng := rand.New(rand.NewSource(42))
	d := NewDirectory(nodes, 0)
	d.SetInvariantChecks(true)
	if !d.InvariantChecksEnabled() {
		t.Fatal("checks did not enable")
	}
	var reads, writes, replaces, writebacks int
	for i := 0; i < ops; i++ {
		line := uint64(rng.Intn(lines)) << 7
		home := int(line>>7) % nodes
		node := rng.Intn(nodes)
		switch rng.Intn(10) {
		case 0, 1, 2, 3: // read miss
			d.Read(line, home, node)
			reads++
		case 4, 5, 6: // write miss or upgrade
			d.Write(line, home, node)
			writes++
		case 7, 8: // clean replacement hint (may be stale: node
			// need not actually be on the sharing list)
			d.Replace(line, node)
			replaces++
		default: // dirty writeback, half the time from the true
			// owner, half stale (already superseded)
			if st, owner, _ := d.State(line); st == DirDirty && rng.Intn(2) == 0 {
				d.Writeback(line, owner)
			} else {
				d.Writeback(line, node)
			}
			writebacks++
		}
	}
	if reads == 0 || writes == 0 || replaces == 0 || writebacks == 0 {
		t.Fatalf("op mix degenerate: r=%d w=%d repl=%d wb=%d", reads, writes, replaces, writebacks)
	}
	// The per-op checks only inspect the touched entry; sweep everything
	// at the end too.
	if err := d.CheckAll(); err != nil {
		t.Fatal(err)
	}
	s := d.Stats()
	if s.Reads == 0 || s.Writes == 0 || s.Transitions == 0 {
		t.Fatalf("stats not accumulated: %+v", s)
	}
}

// TestCheckerCatchesCorruption proves the checker is not vacuous: each
// hand-corrupted entry must be flagged with a message naming the broken
// invariant.
func TestCheckerCatchesCorruption(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(d *Directory, e *entry)
		want    string
	}{
		{"dirty invalid owner", func(d *Directory, e *entry) {
			e.state = DirDirty
			e.owner = 99
		}, "invalid owner"},
		{"dirty-shared", func(d *Directory, e *entry) {
			e.state = DirDirty
			e.owner = 1
			e.head = d.store.Add(e.head, 2)
		}, "dirty-shared"},
		{"shared with owner", func(d *Directory, e *entry) {
			e.state = DirShared
			e.owner = 0
			e.head = d.store.Add(e.head, 1)
		}, "shared but has owner"},
		{"shared empty list", func(d *Directory, e *entry) {
			e.state = DirShared
			e.owner = -1
			e.head = d.store.Free(e.head)
		}, "empty sharing list"},
		{"sharer out of range", func(d *Directory, e *entry) {
			e.state = DirShared
			e.owner = -1
			e.head = d.store.Add(e.head, 7)
		}, "outside machine"},
		{"duplicate sharer", func(d *Directory, e *entry) {
			e.state = DirShared
			e.owner = -1
			// Add dedupes, so forge the duplicate in the link array.
			e.head = d.store.Add(e.head, 1)
			e.head = d.store.Add(e.head, 2)
			d.store.node[e.head] = 1
		}, "listed twice"},
		{"unowned with owner", func(d *Directory, e *entry) {
			e.state = DirUnowned
			e.owner = 3
			e.head = d.store.Free(e.head)
		}, "unowned but has owner"},
		{"unowned with sharers", func(d *Directory, e *entry) {
			e.state = DirUnowned
			e.owner = -1
			e.head = d.store.Add(e.head, 0)
		}, "unowned with sharers"},
		{"impossible state", func(d *Directory, e *entry) {
			e.state = EntryState(200)
		}, "impossible state"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			d := NewDirectory(4, 0)
			const line = 0x2000
			d.Read(line, 0, 1) // materialize the entry
			c.corrupt(d, d.entries[line])
			err := d.CheckLine(line)
			if err == nil {
				t.Fatal("corruption not detected")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
			if err := d.CheckLine(0x9999); err != nil {
				t.Fatalf("untouched line must be trivially valid: %v", err)
			}
			if d.CheckAll() == nil {
				t.Fatal("CheckAll missed the corrupted line")
			}
		})
	}
}

// TestCheckPanicsWhenEnabled pins the in-band behavior: with checks on,
// the operation that lands on a corrupted entry panics.
func TestCheckPanicsWhenEnabled(t *testing.T) {
	d := NewDirectory(4, 0)
	d.SetInvariantChecks(true)
	const line = 0x3000
	d.Read(line, 0, 1)
	e := d.entries[line]
	e.owner = 99 // corrupt behind the directory's back
	defer func() {
		if recover() == nil {
			t.Fatal("operation on corrupted entry did not panic")
		}
	}()
	d.Writeback(line, 2) // stale writeback still runs the check
}
