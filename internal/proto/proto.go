// Package proto implements the FLASH cache-coherence directory protocol
// logic: a directory using dynamic pointer allocation (Table 1), the
// protocol-case classification that snbench's dependent-load tests
// exercise (Table 3), and the pure state machine that both memory-system
// models (FlashLite and NUMA) drive.
//
// The protocol is an invalidation-based MSI directory protocol. The
// directory entry for each line is a header plus a sharing list held in
// a shared pointer/link store — the dynamic pointer allocation scheme of
// the real FLASH protocol, in which headers chain pointers from a global
// pool rather than holding a full bit vector.
package proto

import "fmt"

// Case classifies a miss by where the data comes from, matching the five
// dependent-load cases of Table 3 (plus upgrade, which snbench does not
// time).
type Case uint8

const (
	// LocalClean: requester is the home node and memory is up to date.
	LocalClean Case = iota
	// LocalDirtyRemote: requester is home but a remote cache owns the
	// line dirty.
	LocalDirtyRemote
	// RemoteClean: home is remote and memory is up to date.
	RemoteClean
	// RemoteDirtyHome: home is remote and the home node's own cache
	// owns the line dirty.
	RemoteDirtyHome
	// RemoteDirtyRemote: home is remote and a third node owns the
	// line dirty (three-hop miss).
	RemoteDirtyRemote
	// Upgrade: requester already holds the line Shared and needs
	// ownership only (no data transfer).
	Upgrade
	// NumCases is the number of protocol cases.
	NumCases
)

var caseNames = [NumCases]string{
	"local-clean", "local-dirty-remote", "remote-clean",
	"remote-dirty-home", "remote-dirty-remote", "upgrade",
}

// String names the protocol case as in Table 3.
func (c Case) String() string {
	if int(c) < len(caseNames) {
		return caseNames[c]
	}
	return fmt.Sprintf("case(%d)", uint8(c))
}

// Classify derives the protocol case for a requester given the line's
// home node and directory state.
func Classify(requester, home int, st EntryState, owner int, requesterShares bool) Case {
	if requesterShares && st == DirShared {
		return Upgrade
	}
	local := requester == home
	switch st {
	case DirDirty:
		switch {
		case local:
			return LocalDirtyRemote
		case owner == home:
			return RemoteDirtyHome
		default:
			return RemoteDirtyRemote
		}
	default:
		if local {
			return LocalClean
		}
		return RemoteClean
	}
}

// EntryState is the directory's view of a line.
type EntryState uint8

const (
	// DirUnowned: no cached copies; memory is the only copy.
	DirUnowned EntryState = iota
	// DirShared: one or more read-only copies; memory up to date.
	DirShared
	// DirDirty: exactly one cache owns the line with write permission.
	DirDirty
)

// String names the directory state.
func (s EntryState) String() string {
	switch s {
	case DirUnowned:
		return "unowned"
	case DirShared:
		return "shared"
	case DirDirty:
		return "dirty"
	}
	return fmt.Sprintf("dirstate(%d)", uint8(s))
}

// ReadResult describes what must happen to satisfy a read miss.
type ReadResult struct {
	Case Case
	// Owner is the dirty owner to forward to (valid for dirty cases).
	Owner int
	// Exclusive reports the line was granted exclusively (read to an
	// unowned line, as on FLASH/Origin): the cache may install E and
	// write without an upgrade.
	Exclusive bool
	// SharersAfter is the resulting number of sharers (statistics).
	SharersAfter int
}

// WriteResult describes what must happen to satisfy a write miss or
// upgrade.
type WriteResult struct {
	Case Case
	// Owner is the previous dirty owner to invalidate+fetch from.
	Owner int
	// Invalidate lists the sharer nodes (excluding the requester) that
	// must receive invalidations. The slice aliases a scratch buffer
	// owned by the Directory and is valid only until the next Write
	// call; callers consume it immediately and must not retain it.
	Invalidate []int
}

// Directory tracks the coherence state of every line homed across the
// machine. Entries materialize lazily in DirUnowned state.
type Directory struct {
	nodes   int
	store   *PointerStore
	entries map[uint64]*entry
	stats   DirStats
	inval   []int // scratch backing WriteResult.Invalidate
	checks  bool  // per-operation invariant verification (invariants.go)
}

type entry struct {
	state EntryState
	owner int32
	// head indexes the sharing list in the pointer store; -1 = empty.
	head int32
}

// DirStats counts directory activity.
type DirStats struct {
	Reads         uint64
	Writes        uint64
	Writebacks    uint64
	Invalidations uint64 // individual invalidation messages sent
	Transitions   uint64 // directory (state, owner) changes
	CaseCounts    [NumCases]uint64
	StaleInvals   uint64 // invalidations sent to nodes that silently evicted
}

// NewDirectory creates a directory for an n-node machine backed by a
// pointer store with the given number of links (0 picks a default of
// 8 links per entry-sized heuristic, practically unbounded for the
// study's working sets).
func NewDirectory(nodes int, storeLinks int) *Directory {
	if storeLinks <= 0 {
		storeLinks = 1 << 20
	}
	return &Directory{
		nodes:   nodes,
		store:   NewPointerStore(storeLinks),
		entries: make(map[uint64]*entry),
	}
}

// Stats returns accumulated directory statistics.
func (d *Directory) Stats() DirStats { return d.stats }

// Store exposes the pointer store (for statistics and tests).
func (d *Directory) Store() *PointerStore { return d.store }

// transition moves e to (st, owner), counting the change when the pair
// actually changes (sharing-list-only updates are not transitions).
func (d *Directory) transition(e *entry, st EntryState, owner int32) {
	if e.state != st || e.owner != owner {
		d.stats.Transitions++
	}
	e.state = st
	e.owner = owner
}

func (d *Directory) entryFor(line uint64) *entry {
	e, ok := d.entries[line]
	if !ok {
		e = &entry{state: DirUnowned, owner: -1, head: -1}
		d.entries[line] = e
	}
	return e
}

// State returns the directory state, owner, and sharer list of a line
// (owner is -1 unless dirty). Intended for tests and invariant checks.
func (d *Directory) State(line uint64) (EntryState, int, []int) {
	e, ok := d.entries[line]
	if !ok {
		return DirUnowned, -1, nil
	}
	return e.state, int(e.owner), d.store.Collect(e.head)
}

// Read handles a read request for line homed at home from requester.
// The directory transitions to Shared (after any dirty owner is
// downgraded — the caller performs the actual cache intervention).
func (d *Directory) Read(line uint64, home, requester int) ReadResult {
	e := d.entryFor(line)
	d.stats.Reads++
	// A read never classifies as Upgrade, even when the requester is
	// still on the (possibly stale) sharing list after a silent
	// eviction.
	res := ReadResult{Owner: int(e.owner)}
	res.Case = Classify(requester, home, e.state, int(e.owner), false)
	switch e.state {
	case DirDirty:
		// Owner is downgraded to Shared; both owner and requester
		// end up on the sharing list and memory is made clean.
		prevOwner := int(e.owner)
		d.transition(e, DirShared, -1)
		e.head = d.store.Add(e.head, prevOwner)
		if prevOwner != requester {
			e.head = d.store.Add(e.head, requester)
		}
	case DirUnowned:
		// Read to an unowned line grants exclusive ownership so a
		// subsequent write needs no upgrade. The owner sends a
		// replacement hint (Replace) if it evicts the line clean.
		d.transition(e, DirDirty, int32(requester))
		res.Exclusive = true
	default:
		e.head = d.store.Add(e.head, requester)
	}
	res.SharersAfter = d.store.Len(e.head)
	d.stats.CaseCounts[res.Case]++
	d.check(line, e)
	return res
}

// Replace handles a clean-exclusive or shared eviction hint from node:
// the directory drops the node from its records without a data
// writeback.
func (d *Directory) Replace(line uint64, node int) {
	e, ok := d.entries[line]
	if !ok {
		return
	}
	switch e.state {
	case DirDirty:
		if int(e.owner) == node {
			d.transition(e, DirUnowned, -1)
		}
	case DirShared:
		e.head = d.store.Remove(e.head, node)
		if e.head < 0 {
			d.transition(e, DirUnowned, -1)
		}
	}
	d.check(line, e)
}

// Write handles a write request (or upgrade) for line homed at home from
// requester. The returned WriteResult lists the caches that must be
// invalidated; the directory transitions to Dirty owned by requester.
func (d *Directory) Write(line uint64, home, requester int) WriteResult {
	e := d.entryFor(line)
	d.stats.Writes++
	res := WriteResult{Owner: -1}
	res.Case = Classify(requester, home, e.state, int(e.owner), d.store.Contains(e.head, requester))
	d.inval = d.inval[:0]
	switch e.state {
	case DirDirty:
		if int(e.owner) != requester {
			res.Owner = int(e.owner)
			d.inval = append(d.inval, int(e.owner))
			res.Invalidate = d.inval
		} else {
			// The requester already owns the line dirty (a
			// re-acquire after an uncached synchronization write):
			// the home merely confirms ownership.
			res.Case = Upgrade
		}
	case DirShared:
		for l := e.head; l >= 0; l = d.store.next[l] {
			if s := int(d.store.node[l]); s != requester {
				d.inval = append(d.inval, s)
			}
		}
		res.Invalidate = d.inval
	}
	d.stats.Invalidations += uint64(len(res.Invalidate))
	e.head = d.store.Free(e.head)
	d.transition(e, DirDirty, int32(requester))
	d.stats.CaseCounts[res.Case]++
	d.check(line, e)
	return res
}

// Writeback handles a dirty eviction from owner: memory becomes the only
// copy.
func (d *Directory) Writeback(line uint64, owner int) {
	e := d.entryFor(line)
	d.stats.Writebacks++
	if e.state == DirDirty && int(e.owner) == owner {
		d.transition(e, DirUnowned, -1)
		e.head = d.store.Free(e.head)
	}
	// A writeback racing a forwarded request is resolved in the
	// machine's favor elsewhere; a stale writeback is dropped here.
	d.check(line, e)
}

// NoteStaleInval records that an invalidation reached a cache that had
// silently evicted the line (statistics only; the protocol tolerates
// stale sharing lists).
func (d *Directory) NoteStaleInval() { d.stats.StaleInvals++ }

// Lines returns the number of materialized directory entries.
func (d *Directory) Lines() int { return len(d.entries) }
