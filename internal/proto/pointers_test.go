package proto

import "testing"

func TestPointerStoreAddCollect(t *testing.T) {
	s := NewPointerStore(8)
	head := int32(-1)
	head = s.Add(head, 3)
	head = s.Add(head, 5)
	head = s.Add(head, 3) // duplicate: no-op
	got := s.Collect(head)
	if len(got) != 2 {
		t.Fatalf("collect %v", got)
	}
	if !s.Contains(head, 3) || !s.Contains(head, 5) || s.Contains(head, 9) {
		t.Fatal("contains")
	}
	if s.Len(head) != 2 || s.InUse() != 2 {
		t.Fatalf("len=%d inuse=%d", s.Len(head), s.InUse())
	}
}

func TestPointerStoreRemove(t *testing.T) {
	s := NewPointerStore(8)
	head := int32(-1)
	for _, n := range []int{1, 2, 3} {
		head = s.Add(head, n)
	}
	head = s.Remove(head, 2)
	if s.Contains(head, 2) || s.Len(head) != 2 {
		t.Fatal("remove middle")
	}
	head = s.Remove(head, 3) // 3 is at the list head
	if s.Contains(head, 3) || s.Len(head) != 1 {
		t.Fatal("remove head")
	}
	head = s.Remove(head, 99) // absent: no-op
	if s.Len(head) != 1 {
		t.Fatal("remove absent")
	}
}

func TestPointerStoreFree(t *testing.T) {
	s := NewPointerStore(4)
	head := int32(-1)
	for n := 0; n < 4; n++ {
		head = s.Add(head, n)
	}
	head = s.Free(head)
	if head != -1 || s.InUse() != 0 {
		t.Fatal("free")
	}
	// All links reusable after free.
	head2 := int32(-1)
	for n := 0; n < 4; n++ {
		head2 = s.Add(head2, n)
	}
	if s.Len(head2) != 4 {
		t.Fatal("reuse after free")
	}
}

func TestPointerStoreExhaustionReclaims(t *testing.T) {
	s := NewPointerStore(2)
	head := int32(-1)
	head = s.Add(head, 0)
	head = s.Add(head, 1)
	head = s.Add(head, 2) // pool exhausted: reclaims within this list
	if s.Reclaims() != 1 {
		t.Fatalf("reclaims %d", s.Reclaims())
	}
	if !s.Contains(head, 2) {
		t.Fatal("newest sharer must be recorded")
	}
	if s.Len(head) != 2 {
		t.Fatalf("len %d after reclaim", s.Len(head))
	}
}

func TestPointerStoreHighWater(t *testing.T) {
	s := NewPointerStore(8)
	head := int32(-1)
	for n := 0; n < 5; n++ {
		head = s.Add(head, n)
	}
	s.Free(head)
	if s.HighWater() != 5 {
		t.Fatalf("high water %d", s.HighWater())
	}
}
