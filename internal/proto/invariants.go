package proto

import "fmt"

// Invariant checking: every directory operation can verify the touched
// entry against the protocol's structural invariants —
//
//   - dirty: exactly one owner, a valid node id, and an empty sharing
//     list (no dirty-shared lines);
//   - shared: no owner, a non-empty sharing list whose members are all
//     valid node ids with no duplicates (sharer set ⊆ machine nodes);
//   - unowned: no owner and no sharers.
//
// The checks are off by default (one predictable branch on the hot
// path) and are enabled per-directory via SetInvariantChecks — the
// machine model turns them on when Config.CheckCoherence is set, and
// the randomized-traffic tests drive thousands of mixed operations
// with them enabled.

// SetInvariantChecks enables or disables per-operation invariant
// verification. A violation panics with a description of the broken
// entry; the runner pool converts the panic into a per-job error.
func (d *Directory) SetInvariantChecks(on bool) { d.checks = on }

// InvariantChecksEnabled reports whether per-operation checks are on.
func (d *Directory) InvariantChecksEnabled() bool { return d.checks }

// check verifies the entry just touched by an operation, when enabled.
func (d *Directory) check(line uint64, e *entry) {
	if !d.checks {
		return
	}
	if err := d.checkEntry(line, e); err != nil {
		panic(err)
	}
}

// CheckLine verifies one line's directory entry against the protocol
// invariants. Lines never touched are trivially valid.
func (d *Directory) CheckLine(line uint64) error {
	e, ok := d.entries[line]
	if !ok {
		return nil
	}
	return d.checkEntry(line, e)
}

// CheckAll verifies every materialized directory entry, returning the
// first violation found.
func (d *Directory) CheckAll() error {
	for line, e := range d.entries {
		if err := d.checkEntry(line, e); err != nil {
			return err
		}
	}
	return nil
}

func (d *Directory) checkEntry(line uint64, e *entry) error {
	sharers := d.store.Collect(e.head)
	switch e.state {
	case DirDirty:
		if e.owner < 0 || int(e.owner) >= d.nodes {
			return fmt.Errorf("proto: line %#x dirty with invalid owner %d (nodes=%d)", line, e.owner, d.nodes)
		}
		if len(sharers) != 0 {
			return fmt.Errorf("proto: line %#x dirty-shared: owner %d with sharers %v", line, e.owner, sharers)
		}
	case DirShared:
		if e.owner != -1 {
			return fmt.Errorf("proto: line %#x shared but has owner %d", line, e.owner)
		}
		if len(sharers) == 0 {
			return fmt.Errorf("proto: line %#x shared with empty sharing list", line)
		}
		seen := make(map[int]bool, len(sharers))
		for _, s := range sharers {
			if s < 0 || s >= d.nodes {
				return fmt.Errorf("proto: line %#x sharer %d outside machine (nodes=%d)", line, s, d.nodes)
			}
			if seen[s] {
				return fmt.Errorf("proto: line %#x sharer %d listed twice: %v", line, s, sharers)
			}
			seen[s] = true
		}
	case DirUnowned:
		if e.owner != -1 {
			return fmt.Errorf("proto: line %#x unowned but has owner %d", line, e.owner)
		}
		if len(sharers) != 0 {
			return fmt.Errorf("proto: line %#x unowned with sharers %v", line, sharers)
		}
	default:
		return fmt.Errorf("proto: line %#x in impossible state %d", line, e.state)
	}
	return nil
}
