package proto

// PointerStore implements the dynamic pointer allocation scheme of the
// FLASH protocol: directory headers do not hold full sharer bit vectors;
// instead each header chains a singly linked list of (node, next) links
// drawn from a global pool. When the pool is exhausted the store
// reclaims a link from the longest observed list by dropping one sharer
// (which is safe — the protocol then merely sends no invalidation to
// that node, and correctness is preserved by the requester revalidating;
// here we model the reclaim as dropping the list head, counting the
// event).
// The link arrays grow on demand up to the configured pool size rather
// than being allocated up front: the default pool is 2^20 links but a
// run's high-water mark is typically a few sharers per line, and a
// directory is built per machine run, so eager allocation dominated the
// run loop's memory traffic. Growth is index-stable (links are only
// appended) and allocation order is unchanged — a released link is
// reused LIFO exactly as before, and a fresh link always gets the
// smallest never-used index, which is the order the eager free list
// handed them out.
type PointerStore struct {
	node    []int32
	next    []int32
	limit   int   // pool size: links never exceed this
	free    int32 // head of free list (released links only)
	inUse   int
	highWtr int
	reclaim uint64
}

// NewPointerStore creates a pool with n links.
func NewPointerStore(n int) *PointerStore {
	if n <= 0 {
		n = 1
	}
	return &PointerStore{limit: n, free: -1}
}

// Add prepends node to the list at head, returning the new head. Adding
// a node already on the list is a no-op.
func (s *PointerStore) Add(head int32, node int) int32 {
	if s.Contains(head, node) {
		return head
	}
	l := s.free
	switch {
	case l >= 0:
		s.free = s.next[l]
	case len(s.node) < s.limit:
		l = int32(len(s.node))
		s.node = append(s.node, 0)
		s.next = append(s.next, 0)
	default:
		// Pool exhausted: reclaim the link at the current head (drop
		// one sharer from this very list, like the real protocol's
		// pointer reclamation).
		s.reclaim++
		if head >= 0 {
			s.node[head] = int32(node)
			return head
		}
		return -1
	}
	s.node[l] = int32(node)
	s.next[l] = head
	s.inUse++
	if s.inUse > s.highWtr {
		s.highWtr = s.inUse
	}
	return l
}

// Contains reports whether node is on the list at head.
func (s *PointerStore) Contains(head int32, node int) bool {
	for l := head; l >= 0; l = s.next[l] {
		if s.node[l] == int32(node) {
			return true
		}
	}
	return false
}

// Collect returns the nodes on the list at head.
func (s *PointerStore) Collect(head int32) []int {
	return s.CollectInto(head, nil)
}

// CollectInto appends the nodes on the list at head to out and returns
// the extended slice, so hot callers can reuse one scratch buffer
// instead of allocating per call.
func (s *PointerStore) CollectInto(head int32, out []int) []int {
	for l := head; l >= 0; l = s.next[l] {
		out = append(out, int(s.node[l]))
	}
	return out
}

// Len returns the list length.
func (s *PointerStore) Len(head int32) int {
	n := 0
	for l := head; l >= 0; l = s.next[l] {
		n++
	}
	return n
}

// Remove deletes node from the list at head, returning the new head.
func (s *PointerStore) Remove(head int32, node int) int32 {
	var prev int32 = -1
	for l := head; l >= 0; l = s.next[l] {
		if s.node[l] == int32(node) {
			nxt := s.next[l]
			s.next[l] = s.free
			s.free = l
			s.inUse--
			if prev < 0 {
				return nxt
			}
			s.next[prev] = nxt
			return head
		}
		prev = l
	}
	return head
}

// Free releases the whole list at head back to the pool and returns -1.
func (s *PointerStore) Free(head int32) int32 {
	for l := head; l >= 0; {
		nxt := s.next[l]
		s.next[l] = s.free
		s.free = l
		s.inUse--
		l = nxt
	}
	return -1
}

// InUse returns the number of allocated links.
func (s *PointerStore) InUse() int { return s.inUse }

// HighWater returns the maximum simultaneous allocation observed.
func (s *PointerStore) HighWater() int { return s.highWtr }

// Reclaims returns how many times pool exhaustion forced a sharer drop.
func (s *PointerStore) Reclaims() uint64 { return s.reclaim }
