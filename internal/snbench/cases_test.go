package snbench_test

import (
	"testing"

	"flashsim/internal/core"
	"flashsim/internal/hw"
	"flashsim/internal/machine"
	"flashsim/internal/proto"
	"flashsim/internal/snbench"
)

// TestChaseExercisesExactlyTheIntendedCase: every dependent-load test
// must generate L2 misses classified (almost) exclusively as its own
// protocol case.
func TestChaseExercisesExactlyTheIntendedCase(t *testing.T) {
	for _, pc := range []proto.Case{
		proto.LocalClean, proto.LocalDirtyRemote, proto.RemoteClean,
		proto.RemoteDirtyHome, proto.RemoteDirtyRemote,
	} {
		cfg := hw.Config(snbench.CaseProcs(pc), true)
		cfg.JitterPct = 0
		res, err := machine.Run(cfg, snbench.DependentLoads(pc, 0))
		if err != nil {
			t.Fatalf("%v: %v", pc, err)
		}
		want := uint64(snbench.ChaseCount(pc, 0))
		got := res.CaseCounts[pc]
		// The chase loads must dominate this case's count (warming and
		// sync traffic contribute a handful of other cases).
		if got < want*9/10 {
			t.Errorf("%v: %d hits of case, want >= %d", pc, got, want*9/10)
		}
	}
}

func TestChaseCount(t *testing.T) {
	if got := snbench.ChaseCount(proto.LocalClean, 256); got != 248 {
		t.Fatalf("clean chase skips page heads: %d", got)
	}
	if got := snbench.ChaseCount(proto.LocalDirtyRemote, 256); got != 256 {
		t.Fatalf("dirty chase covers all lines: %d", got)
	}
}

func TestUntunedSimulatorsMispredictLatency(t *testing.T) {
	// The premise of Table 3: an untuned simulator disagrees with the
	// hardware on at least some protocol cases.
	cfg := core.SimOSMipsy(4, 150, true)
	hwCfg := hw.Config(4, true)
	hwCfg.JitterPct = 0
	worst := 0.0
	for _, pc := range []proto.Case{proto.LocalClean, proto.RemoteClean, proto.LocalDirtyRemote} {
		hwRes, err := machine.Run(hwCfg, snbench.DependentLoads(pc, 0))
		if err != nil {
			t.Fatal(err)
		}
		simRes, err := machine.Run(cfg, snbench.DependentLoads(pc, 0))
		if err != nil {
			t.Fatal(err)
		}
		rel := snbench.LoadLatencyNS(pc, simRes, 0) / snbench.LoadLatencyNS(pc, hwRes, 0)
		if d := rel - 1; d < 0 {
			d = -d
		} else if d > worst {
			worst = d
		}
		if rel > 1 && rel-1 > worst {
			worst = rel - 1
		} else if rel < 1 && 1-rel > worst {
			worst = 1 - rel
		}
	}
	if worst < 0.05 {
		t.Fatalf("untuned simulator suspiciously accurate: worst error %.1f%%", 100*worst)
	}
}
