// Package snbench reimplements the microbenchmarks the paper used to
// find and fix simulator timing errors:
//
//   - dependent-load chains (p = *p, the lmbench technique) that miss in
//     the secondary cache, one variant per protocol case of Table 3;
//   - a TLB-miss timer that exposes the true 65-cycle handler cost the
//     processor models charged as 25 (Mipsy) and 35 (MXS);
//   - a back-to-back independent-load (restart time) test, sensitive to
//     the secondary-cache interface occupancy and the core-to-pins
//     restart delay.
//
// Each microbenchmark is an ordinary emitter.Program; helper functions
// extract the metric from the machine.Result. The Calibrator
// (internal/core) runs them against the hardware reference and tunes
// simulator parameters until the metrics match — the paper's "closing
// the loop".
package snbench

import (
	"fmt"

	"flashsim/internal/emitter"
	"flashsim/internal/machine"
	"flashsim/internal/proto"
	"flashsim/internal/sim"
)

// ChaseLines is the default dependent-chain length (lines of 128 bytes;
// 256 lines = 32 KB, safely inside one L2 way of every configuration so
// the dirtying cache retains ownership).
const ChaseLines = 256

const (
	lineBytes    = 128
	linesPerPage = 4096 / lineBytes
	// barSetup separates page warming from the dirtying pass.
	barSetup uint32 = 23
)

// ChaseCount returns the number of timed loads a DependentLoads(c,
// lines) run performs: clean cases skip the warmed page-head lines.
func ChaseCount(c proto.Case, lines int) int {
	if lines <= 0 {
		lines = ChaseLines
	}
	if _, dirtier := caseRoles(c); dirtier >= 0 {
		return lines
	}
	return lines - lines/linesPerPage
}

// CaseProcs returns the processor count a dependent-load case needs.
// All cases run on 4 processors so that "remote" is one or two real
// network hops.
func CaseProcs(proto.Case) int { return 4 }

// caseRoles returns (homeNode, dirtier) for a protocol case; dirtier -1
// means nobody writes the chain (memory stays clean).
func caseRoles(c proto.Case) (home, dirtier int) {
	switch c {
	case proto.LocalClean:
		return 0, -1
	case proto.LocalDirtyRemote:
		return 0, 1
	case proto.RemoteClean:
		return 1, -1
	case proto.RemoteDirtyHome:
		return 1, 1
	case proto.RemoteDirtyRemote:
		return 1, 2
	default:
		panic(fmt.Sprintf("snbench: no dependent-load test for case %v", c))
	}
}

type chaseShared struct {
	region emitter.Region
	lines  int
	c      proto.Case
}

// DependentLoads returns the snbench dependent-load test for the given
// protocol case: node 0 chases a pointer chain of lines cache lines
// whose home and ownership are arranged so that every load exercises
// exactly that case.
func DependentLoads(c proto.Case, lines int) emitter.Program {
	if lines <= 0 {
		lines = ChaseLines
	}
	home, dirtier := caseRoles(c)
	return emitter.Program{
		Name:    "snbench-loads",
		Variant: c.String(),
		Threads: CaseProcs(c),
		Setup: func(as *emitter.AddressSpace) any {
			r := as.AllocPageAligned("chain", uint64(lines)*lineBytes,
				emitter.Placement{Kind: emitter.PlaceOnNode, Node: home})
			return &chaseShared{region: r, lines: lines, c: c}
		},
		Body: func(t *emitter.Thread, shared any) {
			sh := shared.(*chaseShared)
			// Page warming: the requester touches the first line of
			// each page so that cold page faults and TLB refills land
			// outside the timed section. The chase skips those lines.
			if t.ID == 0 {
				var prev emitter.Val
				for i := 0; i < sh.lines; i += linesPerPage {
					prev = t.Load(sh.region.Base+uint64(i)*lineBytes, 8, emitter.None, prev)
				}
			}
			t.Barrier(barSetup)
			// Dirtying pass (before the timed section): the owner-to-be
			// writes every line, leaving it Modified in its cache (and
			// invalidating the requester's warm lines).
			if t.ID == dirtier {
				var prev emitter.Val
				for i := 0; i < sh.lines; i++ {
					t.Store(sh.region.Base+uint64(i)*lineBytes, 8, prev, emitter.None)
					prev = t.IntALU(emitter.None, emitter.None)
				}
			}
			t.Barrier(emitter.BarrierStart)
			if t.ID == 0 {
				// The timed chase: each load's address depends on the
				// previous load's value (p = *p). Page-head lines are
				// skipped in the clean cases (they may sit warm in the
				// requester's cache).
				var p emitter.Val
				for i := 0; i < sh.lines; i++ {
					if dirtier < 0 && i%linesPerPage == 0 {
						continue
					}
					p = t.Load(sh.region.Base+uint64(i)*lineBytes, 8, emitter.None, p)
				}
			}
			t.Barrier(emitter.BarrierEnd)
		},
	}
}

// LoadLatencyNS extracts the per-load latency in nanoseconds from a
// DependentLoads run for protocol case c.
func LoadLatencyNS(c proto.Case, res machine.Result, lines int) float64 {
	return res.ExecNS() / float64(ChaseCount(c, lines))
}

// tlbShared carries the TLB timer layout.
type tlbShared struct {
	region emitter.Region
	pages  int
	fit    int
	rounds int
}

// TLBTimer returns the TLB-miss timer: a warmed working set of one line
// per page, chased first over more pages than the TLB holds (a miss per
// load) and then over a TLB-resident subset (a hit per load). The
// difference in per-load time is the handler cost. The internal barrier
// barMid separates the two timed sections.
func TLBTimer(pages, fitPages, rounds int) emitter.Program {
	if pages <= 0 {
		pages = 128
	}
	if fitPages <= 0 {
		fitPages = 32
	}
	if rounds <= 0 {
		rounds = 4
	}
	return emitter.Program{
		Name:    "snbench-tlb",
		Variant: fmt.Sprintf("pages=%d fit=%d", pages, fitPages),
		Threads: 1,
		Setup: func(as *emitter.AddressSpace) any {
			r := as.AllocPageAligned("pages", uint64(pages)*4096,
				emitter.Placement{Kind: emitter.PlaceOnNode, Node: 0})
			return &tlbShared{region: r, pages: pages, fit: fitPages, rounds: rounds}
		},
		Body: func(t *emitter.Thread, shared any) {
			sh := shared.(*tlbShared)
			// One line per page, with a per-page line offset chosen so
			// the probe lines spread across cache sets instead of
			// colliding at a single page-stride set.
			addr := func(p int) uint64 {
				return sh.region.Base + uint64(p)*4096 + uint64(p*5%128)*32
			}
			// Warm the lines into the caches (two passes).
			for pass := 0; pass < 2; pass++ {
				var prev emitter.Val
				for p := 0; p < sh.pages; p++ {
					prev = t.Load(addr(p), 8, emitter.None, prev)
				}
			}
			t.Barrier(emitter.BarrierStart)
			// Section 1: cycle over all pages (TLB thrash), ending
			// with one pass over the fit subset so section 2 starts
			// with its pages TLB-resident (those fit misses are
			// counted in section 1).
			var prev emitter.Val
			for r := 0; r < sh.rounds; r++ {
				for p := 0; p < sh.pages; p++ {
					prev = t.Load(addr(p), 8, emitter.None, prev)
				}
			}
			for p := 0; p < sh.fit; p++ {
				prev = t.Load(addr(p), 8, emitter.None, prev)
			}
			t.Barrier(BarMid)
			// Section 2: cycle over a TLB-resident subset (hits).
			for r := 0; r < sh.rounds; r++ {
				for p := 0; p < sh.fit; p++ {
					prev = t.Load(addr(p), 8, emitter.None, prev)
				}
			}
			t.Barrier(emitter.BarrierEnd)
		},
	}
}

// BarMid is the barrier id separating a two-section microbenchmark's
// timed phases.
const BarMid uint32 = 24

// TLBHandlerCycles extracts the measured refill cost in CPU cycles from
// a TLBTimer run. clockMHz is the simulated core clock.
func TLBHandlerCycles(res machine.Result, clockMHz, pages, fitPages, rounds int) float64 {
	if pages <= 0 {
		pages = 128
	}
	if fitPages <= 0 {
		fitPages = 32
	}
	if rounds <= 0 {
		rounds = 4
	}
	start := firstRelease(res, emitter.BarrierStart)
	mid := firstRelease(res, BarMid)
	end := firstRelease(res, emitter.BarrierEnd)
	if mid <= start || end <= mid {
		return 0
	}
	missLoads := float64(pages*rounds + fitPages)
	hitLoads := float64(fitPages * rounds)
	perMiss := sim.ToNS(mid-start) / missLoads
	perHit := sim.ToNS(end-mid) / hitLoads
	cycleNS := 1e3 / float64(clockMHz)
	return (perMiss - perHit) / cycleNS
}

func firstRelease(res machine.Result, id uint32) sim.Ticks {
	rel := res.BarrierReleases[id]
	if len(rel) == 0 {
		return 0
	}
	return rel[0]
}

// Restart returns the back-to-back independent-load test: loads with no
// dependences striding one line, all missing the L2, whose throughput is
// bounded by the MSHRs, the secondary-cache interface occupancy, and the
// restart delay.
func Restart(lines int) emitter.Program {
	if lines <= 0 {
		lines = 1024
	}
	return emitter.Program{
		Name:    "snbench-restart",
		Variant: fmt.Sprintf("lines=%d", lines),
		Threads: 1,
		Setup: func(as *emitter.AddressSpace) any {
			return as.AllocPageAligned("stream", uint64(lines)*lineBytes,
				emitter.Placement{Kind: emitter.PlaceOnNode, Node: 0})
		},
		Body: func(t *emitter.Thread, shared any) {
			r := shared.(emitter.Region)
			// Warm pages so faults and TLB refills land outside the
			// timed section; the stream skips the warmed lines.
			var prev emitter.Val
			for i := 0; i < lines; i += linesPerPage {
				prev = t.Load(r.Base+uint64(i)*lineBytes, 8, emitter.None, prev)
			}
			t.Barrier(emitter.BarrierStart)
			for i := 0; i < lines; i++ {
				if i%linesPerPage == 0 {
					continue
				}
				t.Load(r.Base+uint64(i)*lineBytes, 8, emitter.None, emitter.None)
			}
			t.Barrier(emitter.BarrierEnd)
		},
	}
}

// ThroughputNSPerLoad extracts mean inter-load time from a Restart run.
func ThroughputNSPerLoad(res machine.Result, lines int) float64 {
	if lines <= 0 {
		lines = 1024
	}
	return res.ExecNS() / float64(lines-lines/linesPerPage)
}
