package snbench_test

import (
	"testing"

	"flashsim/internal/hw"
	"flashsim/internal/machine"
	"flashsim/internal/proto"
	"flashsim/internal/snbench"
)

// Table 3 hardware latencies in nanoseconds.
var table3HW = map[proto.Case]float64{
	proto.LocalClean:        587,
	proto.LocalDirtyRemote:  2201,
	proto.RemoteClean:       1484,
	proto.RemoteDirtyHome:   2359,
	proto.RemoteDirtyRemote: 2617,
}

// TestDependentLoadLatencies checks that the hardware reference's
// dependent-load latencies have the Table 3 ordering (clean < dirty,
// local clean fastest, three-hop dirty-remote slowest) and are within a
// factor-two band of the paper's nanosecond values.
func TestDependentLoadLatencies(t *testing.T) {
	got := map[proto.Case]float64{}
	for c := range table3HW {
		cfg := hw.Config(snbench.CaseProcs(c), true)
		cfg.JitterPct = 0
		res, err := machine.Run(cfg, snbench.DependentLoads(c, 0))
		if err != nil {
			t.Fatalf("%v: %v", c, err)
		}
		got[c] = snbench.LoadLatencyNS(c, res, 0)
		t.Logf("%-20v measured %6.0f ns (paper %4.0f ns)", c, got[c], table3HW[c])
	}
	if !(got[proto.LocalClean] < got[proto.RemoteClean]) {
		t.Errorf("local clean (%f) should be faster than remote clean (%f)",
			got[proto.LocalClean], got[proto.RemoteClean])
	}
	if !(got[proto.RemoteClean] < got[proto.RemoteDirtyRemote]) {
		t.Errorf("remote clean (%f) should be faster than remote dirty remote (%f)",
			got[proto.RemoteClean], got[proto.RemoteDirtyRemote])
	}
	if !(got[proto.LocalClean] < got[proto.LocalDirtyRemote]) {
		t.Errorf("local clean (%f) should be faster than local dirty remote (%f)",
			got[proto.LocalClean], got[proto.LocalDirtyRemote])
	}
	for c, want := range table3HW {
		if got[c] < want/2 || got[c] > want*2 {
			t.Errorf("%v: measured %.0f ns is outside 2x band of paper's %.0f ns", c, got[c], want)
		}
	}
}

// TestTLBTimerRecovers65Cycles checks the TLB microbenchmark measures
// the reference's 65-cycle handler within a few cycles.
func TestTLBTimerRecovers65Cycles(t *testing.T) {
	cfg := hw.Config(1, true)
	cfg.JitterPct = 0
	res, err := machine.Run(cfg, snbench.TLBTimer(128, 32, 4))
	if err != nil {
		t.Fatal(err)
	}
	cyc := snbench.TLBHandlerCycles(res, cfg.ClockMHz, 128, 32, 4)
	t.Logf("measured TLB handler: %.1f cycles (configured 65)", cyc)
	if cyc < 55 || cyc > 80 {
		t.Errorf("TLB handler measured %.1f cycles, want ~65", cyc)
	}
}

// TestRestartThroughput checks independent loads overlap: with 4 MSHRs,
// mean inter-load time must be well under the dependent-load latency.
func TestRestartThroughput(t *testing.T) {
	cfg := hw.Config(1, true)
	cfg.JitterPct = 0
	res, err := machine.Run(cfg, snbench.Restart(1024))
	if err != nil {
		t.Fatal(err)
	}
	per := snbench.ThroughputNSPerLoad(res, 1024)
	t.Logf("independent-load throughput: %.0f ns/load", per)
	if per > 450 {
		t.Errorf("independent loads barely overlap: %.0f ns/load", per)
	}
}
