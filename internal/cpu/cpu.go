// Package cpu defines the contract between processor models and the
// machine: the memory Port the machine exposes to a processor, and the
// Outcome protocol by which a processor yields control back to the
// event loop. The two processor models of the study — Mipsy
// (internal/cpu/mipsy) and MXS (internal/cpu/mxs) — implement the CPU
// interface against this contract; the hardware reference is MXS at
// full fidelity.
package cpu

import (
	"flashsim/internal/isa"
	"flashsim/internal/sim"
)

// MemInfo describes what happened on a data access.
type MemInfo struct {
	// Done is when the data is available to the core (loads) or when
	// the store has been accepted (after any write-buffer stall).
	Done sim.Ticks
	// L1Hit and L2Hit report where the access was satisfied.
	L1Hit bool
	L2Hit bool
	// TLBMiss reports that a TLB refill ran (its cost is inside Done).
	TLBMiss bool
	// WentToMemory reports that the access left the chip (L2 miss),
	// which is the processor's cue to yield to the event loop so that
	// shared-resource reservations stay in global time order.
	WentToMemory bool
	// IssuedAt is the time the transaction was issued to the memory
	// system (valid when WentToMemory). Processors yield to at least
	// this time so the next transaction's reservations are made in
	// global time order.
	IssuedAt sim.Ticks
	// DirtyCacheOp reports a CACHE instruction that hit a dirty line
	// (the trigger of the historical MXS stall bug).
	DirtyCacheOp bool
	// Pending reports that the access needs the shared memory system
	// and has been deferred to the engine's next barrier phase: no
	// other field is meaningful yet. The processor must save enough
	// context to finish the instruction later, return a Blocked
	// outcome, and complete the access when Deliver hands it the final
	// MemInfo.
	Pending bool
}

// Port is the machine-side memory interface a processor model drives.
// Implementations encapsulate the TLB, the cache hierarchy, the write
// buffer, the MSHRs, and the memory-system simulator behind them.
type Port interface {
	// Load performs a data read at time t.
	Load(t sim.Ticks, addr uint64, size uint32) MemInfo
	// Store performs a data write at time t. Done reflects when the
	// processor may proceed (write-buffer semantics), not when the
	// store is globally visible.
	Store(t sim.Ticks, addr uint64, size uint32) MemInfo
	// Prefetch issues a non-binding prefetch; the processor never
	// waits on it.
	Prefetch(t sim.Ticks, addr uint64)
	// CacheOp performs a MIPS CACHE instruction.
	CacheOp(t sim.Ticks, addr uint64, aux uint32) MemInfo
	// SyscallCost returns the charged cost, in processor cycles, of a
	// system call under the machine's OS model.
	SyscallCost(aux uint32) uint32
}

// Stream is a per-thread instruction source a processor model
// consumes. It is the seam between instruction delivery and timing:
// a live emitter reader, a decoded trace cursor, and the sampling
// engine's window gate all satisfy it, so one core construction path
// serves every execution mode.
type Stream interface {
	// Next returns the next instruction, or ok=false when the stream
	// is exhausted (or, for a gated stream, closed for now).
	Next() (isa.Instr, bool)
}

// OutcomeKind says why a processor yielded.
type OutcomeKind uint8

const (
	// Yield: the processor exhausted its quantum or issued a memory
	// transaction; resume by calling Run at Outcome.Time.
	Yield OutcomeKind = iota
	// SyncOp: the processor reached a LOCK/UNLOCK/BARRIER instruction
	// (in Outcome.Instr) at Outcome.Time; the machine decides when it
	// resumes.
	SyncOp
	// Finished: the instruction stream is exhausted; Outcome.Time is
	// the completion time.
	Finished
	// Blocked: the processor issued a memory access the port deferred
	// (MemInfo.Pending) and is suspended mid-instruction. The machine
	// executes the deferred operation at its next barrier phase and
	// resumes the processor at the time Deliver returns.
	Blocked
)

// Outcome is what Run returns to the machine's event loop.
type Outcome struct {
	Kind  OutcomeKind
	Time  sim.Ticks
	Instr isa.Instr // valid for SyncOp
}

// Blocking is the suspension half of the deferred-access protocol: a
// processor that can return a Blocked outcome implements it. Deliver
// hands the core the completed MemInfo of its deferred access; the
// core finishes the suspended instruction and returns the time at
// which the machine should call Run again. Every core the machine
// constructs implements Blocking — the windowed engine defers all
// shared-memory operations, at any shard count.
type Blocking interface {
	Deliver(mi MemInfo) sim.Ticks
}

// CPU is a processor model bound to one instruction stream and one
// memory port.
type CPU interface {
	// Run executes instructions starting at time t until the model
	// yields. The machine guarantees t is no earlier than the last
	// outcome's Time.
	Run(t sim.Ticks) Outcome
	// Stats returns instruction-accounting counters.
	Stats() Stats
}

// Stats counts a processor's activity.
type Stats struct {
	Instructions uint64
	Cycles       uint64 // core cycles charged, excluding sync blocking
	LoadStalls   sim.Ticks
	Mispredicts  uint64
	PipeFlushes  uint64
	InterlockCyc uint64
}
