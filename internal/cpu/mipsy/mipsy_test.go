package mipsy

import (
	"testing"

	"flashsim/internal/cpu"
	"flashsim/internal/emitter"
	"flashsim/internal/isa"
	"flashsim/internal/sim"
)

// fakePort returns fixed latencies and records accesses.
type fakePort struct {
	clock    sim.Clock
	hitCyc   uint32
	missAddr uint64 // addresses >= missAddr take missTicks and go to memory
	missT    sim.Ticks
	loads    int
	stores   int
	prefs    int
}

func (p *fakePort) Load(t sim.Ticks, addr uint64, size uint32) cpu.MemInfo {
	p.loads++
	if addr >= p.missAddr {
		return cpu.MemInfo{Done: t + p.missT, WentToMemory: true, IssuedAt: t}
	}
	return cpu.MemInfo{Done: t + p.clock.Cycles(uint64(p.hitCyc)), L1Hit: true}
}

func (p *fakePort) Store(t sim.Ticks, addr uint64, size uint32) cpu.MemInfo {
	p.stores++
	return cpu.MemInfo{Done: t + p.clock.Cycles(uint64(p.hitCyc)), L1Hit: true}
}

func (p *fakePort) Prefetch(t sim.Ticks, addr uint64) { p.prefs++ }

func (p *fakePort) CacheOp(t sim.Ticks, addr uint64, aux uint32) cpu.MemInfo {
	return cpu.MemInfo{Done: t + p.clock.Cycles(1)}
}

func (p *fakePort) SyscallCost(aux uint32) uint32 { return 100 }

func run(t *testing.T, cfg Config, port cpu.Port, body func(*emitter.Thread)) (sim.Ticks, cpu.Stats) {
	t.Helper()
	s := emitter.Start(1, body)
	defer s.Abort()
	c := New(cfg, s.Readers[0], port)
	var now sim.Ticks
	for {
		out := c.Run(now)
		now = out.Time
		switch out.Kind {
		case cpu.Finished:
			return now, c.Stats()
		case cpu.SyncOp:
			// Trivial: resume immediately.
		}
	}
}

func TestOneInstructionPerCycle(t *testing.T) {
	clock := sim.Clock150
	port := &fakePort{clock: clock, hitCyc: 1, missAddr: 1 << 40}
	end, st := run(t, Config{Clock: clock}, port, func(th *emitter.Thread) {
		th.IntOps(100)
	})
	if st.Instructions != 100 {
		t.Fatalf("instructions %d", st.Instructions)
	}
	if end != clock.Cycles(100) {
		t.Fatalf("100 ALU ops took %d ticks, want %d (1 IPC)", end, clock.Cycles(100))
	}
}

func TestUnitLatencyIgnoresMulDiv(t *testing.T) {
	clock := sim.Clock150
	port := &fakePort{clock: clock, hitCyc: 1, missAddr: 1 << 40}
	end, _ := run(t, Config{Clock: clock}, port, func(th *emitter.Thread) {
		for i := 0; i < 10; i++ {
			th.IntDiv(emitter.None, emitter.None)
		}
	})
	if end != clock.Cycles(10) {
		t.Fatalf("Mipsy must charge 1 cycle per divide: %d ticks", end)
	}
}

func TestModelInstrLatencyChargesMulDiv(t *testing.T) {
	clock := sim.Clock150
	port := &fakePort{clock: clock, hitCyc: 1, missAddr: 1 << 40}
	end, _ := run(t, Config{Clock: clock, ModelInstrLatency: true}, port, func(th *emitter.Thread) {
		for i := 0; i < 10; i++ {
			th.IntDiv(emitter.None, emitter.None)
		}
	})
	want := clock.Cycles(10 * uint64(isa.R10000Latencies()[isa.IntDiv].Cycles))
	if end != want {
		t.Fatalf("latency-modeled divides took %d ticks, want %d", end, want)
	}
}

func TestBlockingReads(t *testing.T) {
	clock := sim.Clock150
	miss := clock.Cycles(100)
	port := &fakePort{clock: clock, hitCyc: 1, missAddr: 0, missT: miss}
	end, st := run(t, Config{Clock: clock}, port, func(th *emitter.Thread) {
		th.Load(0x1000, 8, emitter.None, emitter.None)
		th.Load(0x2000, 8, emitter.None, emitter.None)
	})
	// Blocking: the second load starts only after the first completes.
	if end < 2*miss {
		t.Fatalf("loads overlapped in a blocking-read model: %d < %d", end, 2*miss)
	}
	if st.LoadStalls == 0 {
		t.Fatal("no load stalls recorded")
	}
}

func TestClockSpeedScalesComputeOnly(t *testing.T) {
	mk := func(mhz int) sim.Ticks {
		clock := sim.NewClock(mhz)
		port := &fakePort{clock: clock, hitCyc: 1, missAddr: 1 << 40}
		end, _ := run(t, Config{Clock: clock}, port, func(th *emitter.Thread) {
			th.IntOps(300)
		})
		return end
	}
	t150, t300 := mk(150), mk(300)
	if t300*2 != t150 {
		t.Fatalf("300MHz should halve compute time: %d vs %d", t300, t150)
	}
}

func TestSyscallCharged(t *testing.T) {
	clock := sim.Clock150
	port := &fakePort{clock: clock, hitCyc: 1, missAddr: 1 << 40}
	end, _ := run(t, Config{Clock: clock}, port, func(th *emitter.Thread) {
		th.Syscall(1)
	})
	if end != clock.Cycles(101) {
		t.Fatalf("syscall took %d ticks, want %d", end, clock.Cycles(101))
	}
}

func TestSyncOpYieldsToMachine(t *testing.T) {
	clock := sim.Clock150
	port := &fakePort{clock: clock, hitCyc: 1, missAddr: 1 << 40}
	s := emitter.Start(1, func(th *emitter.Thread) {
		th.IntOps(2)
		th.Barrier(3)
	})
	defer s.Abort()
	c := New(Config{Clock: clock}, s.Readers[0], port)
	out := c.Run(0)
	if out.Kind != cpu.SyncOp || out.Instr.Op != isa.Barrier || out.Instr.Aux != 3 {
		t.Fatalf("outcome %+v", out)
	}
}

func TestPrefetchDoesNotBlock(t *testing.T) {
	clock := sim.Clock150
	port := &fakePort{clock: clock, hitCyc: 1, missAddr: 1 << 40}
	end, _ := run(t, Config{Clock: clock}, port, func(th *emitter.Thread) {
		for i := 0; i < 10; i++ {
			th.Prefetch(uint64(0x1000 + i*128))
		}
	})
	if end != clock.Cycles(10) {
		t.Fatalf("prefetches blocked: %d ticks", end)
	}
	if port.prefs != 10 {
		t.Fatalf("prefetches issued %d", port.prefs)
	}
}

func TestQuantumYields(t *testing.T) {
	clock := sim.Clock150
	port := &fakePort{clock: clock, hitCyc: 1, missAddr: 1 << 40}
	s := emitter.Start(1, func(th *emitter.Thread) { th.IntOps(500) })
	defer s.Abort()
	c := New(Config{Clock: clock, Quantum: 100}, s.Readers[0], port)
	out := c.Run(0)
	if out.Kind != cpu.Yield {
		t.Fatalf("expected quantum yield, got %v", out.Kind)
	}
	if c.Stats().Instructions != 100 {
		t.Fatalf("quantum not honored: %d", c.Stats().Instructions)
	}
}
