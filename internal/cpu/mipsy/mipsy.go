// Package mipsy implements the Mipsy processor model: "a single-issue,
// in-order MIPS processor. Pipeline effects and functional unit
// latencies are not simulated, so the Mipsy processor executes one
// instruction per cycle in the absence of memory stalls. Mipsy has
// blocking reads, but supports both prefetching and a write buffer."
//
// The model is deliberately simple — that is the point of the study.
// Its two documented deficiencies are reproduced as configuration:
//
//   - ModelInstrLatency=false (the default) charges one cycle to every
//     instruction, under-predicting Radix-Sort (integer multiply/divide)
//     and Ocean (floating-point divides). The §3.1.3 experiment enables
//     it to show the 0.71 → ~1.02 correction.
//   - The clock may be run at 225 or 300 MHz against the 150 MHz memory
//     system, the standard trick for approximating ILP with an in-order
//     model. 300 MHz over-drives the memory system and wrecks the FFT
//     speedup trend (Figure 5).
package mipsy

import (
	"flashsim/internal/cpu"
	"flashsim/internal/isa"
	"flashsim/internal/sim"
)

// Config parameterizes a Mipsy core.
type Config struct {
	// Clock is the core clock (150, 225, or 300 MHz in the study).
	Clock sim.Clock
	// ModelInstrLatency enables functional-unit latencies from
	// Latencies (off in classic Mipsy).
	ModelInstrLatency bool
	// Latencies supplies per-op latencies when ModelInstrLatency is
	// on; the zero value falls back to R10000 latencies.
	Latencies isa.LatencyTable
	// Quantum bounds instructions executed per Run call (causality
	// skew bound for the event loop); 0 means 200.
	Quantum int
}

// CPU is one Mipsy core.
type CPU struct {
	cfg    Config
	rd     cpu.Stream
	port   cpu.Port
	lat    isa.LatencyTable
	stats  cpu.Stats
	useLat bool

	// Suspension context for a port-deferred access (cpu.Blocking):
	// the instruction's start time and whether the load-stall counter
	// applies when the completion arrives.
	pendT      sim.Ticks
	pendIsLoad bool
}

// New binds a Mipsy core to an instruction stream and a memory port.
func New(cfg Config, rd cpu.Stream, port cpu.Port) *CPU {
	if cfg.Quantum <= 0 {
		cfg.Quantum = 200
	}
	lat := cfg.Latencies
	var zero isa.LatencyTable
	if lat == zero {
		lat = isa.R10000Latencies()
	}
	return &CPU{cfg: cfg, rd: rd, port: port, lat: lat, useLat: cfg.ModelInstrLatency}
}

// Stats returns the core's counters.
func (c *CPU) Stats() cpu.Stats { return c.stats }

// Deliver implements cpu.Blocking: it completes the access the port
// deferred, running the same timing tail the inline path runs, and
// returns when the core should resume.
func (c *CPU) Deliver(mi cpu.MemInfo) sim.Ticks {
	period := c.cfg.Clock.Period
	next := c.pendT + period
	if mi.Done > next {
		if c.pendIsLoad {
			c.stats.LoadStalls += mi.Done - next
		}
		next = mi.Done
	}
	t := c.cfg.Clock.Align(next)
	c.stats.Cycles = uint64(t / period)
	return t
}

// Run executes instructions in order starting at t.
func (c *CPU) Run(t sim.Ticks) cpu.Outcome {
	period := c.cfg.Clock.Period
	for n := 0; n < c.cfg.Quantum; n++ {
		in, ok := c.rd.Next()
		if !ok {
			return cpu.Outcome{Kind: cpu.Finished, Time: t}
		}
		c.stats.Instructions++
		switch in.Op {
		case isa.Lock, isa.Unlock, isa.Barrier:
			// One cycle to execute, then hand to the machine.
			t += period
			c.stats.Cycles++
			return cpu.Outcome{Kind: cpu.SyncOp, Time: t, Instr: in}

		case isa.Load:
			mi := c.port.Load(t, in.Addr, in.Size)
			if mi.Pending {
				c.pendT, c.pendIsLoad = t, true
				return cpu.Outcome{Kind: cpu.Blocked, Time: t}
			}
			// Blocking read: the core waits for the data.
			next := t + period
			if mi.Done > next {
				c.stats.LoadStalls += mi.Done - next
				next = mi.Done
			}
			t = c.cfg.Clock.Align(next)
			if mi.WentToMemory {
				// Yield so shared-resource reservations stay in
				// global time order.
				return cpu.Outcome{Kind: cpu.Yield, Time: t}
			}

		case isa.Store:
			mi := c.port.Store(t, in.Addr, in.Size)
			if mi.Pending {
				c.pendT, c.pendIsLoad = t, false
				return cpu.Outcome{Kind: cpu.Blocked, Time: t}
			}
			next := t + period
			if mi.Done > next {
				next = mi.Done
			}
			t = c.cfg.Clock.Align(next)
			if mi.WentToMemory {
				return cpu.Outcome{Kind: cpu.Yield, Time: t}
			}

		case isa.Prefetch:
			c.port.Prefetch(t, in.Addr)
			t += period

		case isa.CacheOp:
			mi := c.port.CacheOp(t, in.Addr, in.Aux)
			if mi.Pending {
				c.pendT, c.pendIsLoad = t, false
				return cpu.Outcome{Kind: cpu.Blocked, Time: t}
			}
			next := t + period
			if mi.Done > next {
				next = mi.Done
			}
			t = c.cfg.Clock.Align(next)

		case isa.Syscall:
			t += period * sim.Ticks(1+c.port.SyscallCost(in.Aux))

		default:
			cycles := sim.Ticks(1)
			if c.useLat {
				cycles = sim.Ticks(c.lat[in.Op].Cycles)
			}
			t += period * cycles
		}
		c.stats.Cycles = uint64(t / period) // approximate: wall cycles
	}
	return cpu.Outcome{Kind: cpu.Yield, Time: t}
}
