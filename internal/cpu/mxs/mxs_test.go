package mxs

import (
	"testing"

	"flashsim/internal/cpu"
	"flashsim/internal/emitter"
	"flashsim/internal/isa"
	"flashsim/internal/sim"
)

type fakePort struct {
	clock sim.Clock
	missT sim.Ticks // addresses >= missBase miss
	base  uint64
	loads int
}

func (p *fakePort) Load(t sim.Ticks, addr uint64, size uint32) cpu.MemInfo {
	p.loads++
	if addr >= p.base {
		return cpu.MemInfo{Done: t + p.missT, WentToMemory: true, IssuedAt: t}
	}
	return cpu.MemInfo{Done: t + p.clock.Cycles(2), L1Hit: true}
}

func (p *fakePort) Store(t sim.Ticks, addr uint64, size uint32) cpu.MemInfo {
	return cpu.MemInfo{Done: t + p.clock.Cycles(1), L1Hit: true}
}

func (p *fakePort) Prefetch(t sim.Ticks, addr uint64) {}

func (p *fakePort) CacheOp(t sim.Ticks, addr uint64, aux uint32) cpu.MemInfo {
	return cpu.MemInfo{Done: t + p.clock.Cycles(1), DirtyCacheOp: true}
}

func (p *fakePort) SyscallCost(aux uint32) uint32 { return 50 }

func runAll(t *testing.T, cfg Config, port cpu.Port, body func(*emitter.Thread)) (sim.Ticks, cpu.Stats) {
	t.Helper()
	s := emitter.Start(1, body)
	defer s.Abort()
	c := New(cfg, s.Readers[0], port)
	var now sim.Ticks
	for {
		out := c.Run(now)
		if out.Time > now {
			now = out.Time
		}
		if out.Kind == cpu.Finished {
			return now, c.Stats()
		}
	}
}

func noBranchConfig(clock sim.Clock) Config {
	cfg := DefaultConfig(clock)
	cfg.BranchAccuracy = 1.0
	return cfg
}

func TestSuperscalarALUThroughput(t *testing.T) {
	clock := sim.Clock150
	port := &fakePort{clock: clock, base: 1 << 40}
	end, _ := runAll(t, noBranchConfig(clock), port, func(th *emitter.Thread) {
		th.IntOps(400)
	})
	// 400 independent ALU ops on a 4-issue core with 2 effective ALUs
	// (structural hazard: one ALU slot per cycle in this model) should
	// take far less than 400 cycles... the single-ALU-pipe model gives
	// ~400; the point is it must beat a 1-IPC in-order core's
	// serialization with dependent ops.
	if end > clock.Cycles(450) {
		t.Fatalf("independent ALU stream too slow: %d ticks", end)
	}
}

func TestDependentChainSerializes(t *testing.T) {
	clock := sim.Clock150
	port := &fakePort{clock: clock, base: 1 << 40}
	endDep, _ := runAll(t, noBranchConfig(clock), port, func(th *emitter.Thread) {
		v := th.IntALU(emitter.None, emitter.None)
		for i := 0; i < 200; i++ {
			v = th.FPAdd(v, emitter.None) // 2-cycle latency chain
		}
	})
	endInd, _ := runAll(t, noBranchConfig(clock), port, func(th *emitter.Thread) {
		for i := 0; i < 201; i++ {
			th.FPAdd(emitter.None, emitter.None)
		}
	})
	if endDep <= endInd {
		t.Fatalf("dependent chain (%d) must be slower than independent ops (%d)", endDep, endInd)
	}
}

func TestLoadsOverlapUnderMisses(t *testing.T) {
	clock := sim.Clock150
	miss := clock.Cycles(100)
	port := &fakePort{clock: clock, base: 0, missT: miss}
	end, _ := runAll(t, noBranchConfig(clock), port, func(th *emitter.Thread) {
		for i := 0; i < 8; i++ {
			th.Load(uint64(i*128), 8, emitter.None, emitter.None)
		}
	})
	// Independent misses must overlap: well under 8 * 100 cycles.
	if end >= 8*miss {
		t.Fatalf("no overlap: %d ticks for 8 misses of %d", end, miss)
	}
}

func TestDependentLoadsDoNotOverlap(t *testing.T) {
	clock := sim.Clock150
	miss := clock.Cycles(100)
	port := &fakePort{clock: clock, base: 0, missT: miss}
	end, _ := runAll(t, noBranchConfig(clock), port, func(th *emitter.Thread) {
		var v emitter.Val
		for i := 0; i < 8; i++ {
			v = th.Load(uint64(i*128), 8, emitter.None, v)
		}
	})
	if end < 8*miss {
		t.Fatalf("pointer chase overlapped: %d < %d", end, 8*miss)
	}
}

func TestMulDivUnpipelined(t *testing.T) {
	clock := sim.Clock150
	port := &fakePort{clock: clock, base: 1 << 40}
	end, _ := runAll(t, noBranchConfig(clock), port, func(th *emitter.Thread) {
		for i := 0; i < 10; i++ {
			th.IntDiv(emitter.None, emitter.None)
		}
	})
	// 10 independent divides on an unpipelined 19-cycle unit.
	if end < clock.Cycles(190) {
		t.Fatalf("divides pipelined: %d ticks", end)
	}
}

func TestCop0FlushesPipeline(t *testing.T) {
	clock := sim.Clock150
	port := &fakePort{clock: clock, base: 1 << 40}
	endCop, _ := runAll(t, noBranchConfig(clock), port, func(th *emitter.Thread) {
		for i := 0; i < 20; i++ {
			th.Op(isa.Cop0, emitter.None, emitter.None)
		}
	})
	endALU, _ := runAll(t, noBranchConfig(clock), port, func(th *emitter.Thread) {
		th.IntOps(20)
	})
	if endCop <= endALU*2 {
		t.Fatalf("coprocessor ops must drain the pipeline: cop=%d alu=%d", endCop, endALU)
	}
}

func TestTLBMissFlushIsSerial(t *testing.T) {
	clock := sim.Clock150
	// Port where every load reports a TLB miss costing 65 cycles.
	port := &tlbPort{clock: clock}
	end, st := runAll(t, noBranchConfig(clock), port, func(th *emitter.Thread) {
		for i := 0; i < 10; i++ {
			th.Load(uint64(i*4096), 8, emitter.None, emitter.None)
		}
	})
	// Refills are exceptions: they must not overlap each other.
	if end < clock.Cycles(10*65) {
		t.Fatalf("TLB refills overlapped: %d < %d", end, clock.Cycles(650))
	}
	if st.PipeFlushes < 10 {
		t.Fatalf("pipe flushes %d", st.PipeFlushes)
	}
}

type tlbPort struct {
	clock sim.Clock
}

func (p *tlbPort) Load(t sim.Ticks, addr uint64, size uint32) cpu.MemInfo {
	return cpu.MemInfo{Done: t + p.clock.Cycles(65+1), L1Hit: true, TLBMiss: true}
}
func (p *tlbPort) Store(t sim.Ticks, addr uint64, size uint32) cpu.MemInfo {
	return cpu.MemInfo{Done: t + p.clock.Cycles(1), L1Hit: true}
}
func (p *tlbPort) Prefetch(sim.Ticks, uint64) {}
func (p *tlbPort) CacheOp(t sim.Ticks, addr uint64, aux uint32) cpu.MemInfo {
	return cpu.MemInfo{Done: t}
}
func (p *tlbPort) SyscallCost(uint32) uint32 { return 0 }

func TestFastIssueBugIsOptimistic(t *testing.T) {
	clock := sim.Clock150
	body := func(th *emitter.Thread) {
		for i := 0; i < 500; i++ {
			th.FPMul(emitter.None, emitter.None)
			th.IntALU(emitter.None, emitter.None)
		}
	}
	port := &fakePort{clock: clock, base: 1 << 40}
	clean, _ := runAll(t, noBranchConfig(clock), port, body)
	bugCfg := noBranchConfig(clock)
	bugCfg.Fidelity.BugFastIssue = true
	buggy, _ := runAll(t, bugCfg, port, body)
	if buggy > clean {
		t.Fatalf("bug made the core slower: %d vs %d", buggy, clean)
	}
}

func TestCacheOpStallBug(t *testing.T) {
	clock := sim.Clock150
	port := &fakePort{clock: clock, base: 1 << 40}
	body := func(th *emitter.Thread) {
		th.CacheOp(0x1000, 0)
		th.IntOps(10)
	}
	clean, _ := runAll(t, noBranchConfig(clock), port, body)
	bugCfg := noBranchConfig(clock)
	bugCfg.Fidelity.BugCacheOpStall = true
	bugCfg.Fidelity.CacheOpStallCycles = 1000
	buggy, _ := runAll(t, bugCfg, port, body)
	if buggy < clean+clock.Cycles(900) {
		t.Fatalf("stall bug did not stall: %d vs %d", buggy, clean)
	}
}

func TestAddressInterlocksSlowDependentAddressing(t *testing.T) {
	clock := sim.Clock150
	body := func(th *emitter.Thread) {
		var v emitter.Val
		for i := 0; i < 200; i++ {
			v = th.Load(uint64(i), 8, emitter.None, v) // addr dep dist 1
		}
	}
	port := &fakePort{clock: clock, base: 1 << 40}
	plain, _ := runAll(t, noBranchConfig(clock), port, body)
	ic, id := DefaultInterlocks()
	ilCfg := noBranchConfig(clock)
	ilCfg.Fidelity = Fidelity{ModelAddressInterlocks: true, InterlockCycles: ic, InterlockMaxDist: id}
	slowed, st := runAll(t, ilCfg, port, body)
	if slowed <= plain {
		t.Fatalf("interlocks had no effect: %d vs %d", slowed, plain)
	}
	if st.InterlockCyc == 0 {
		t.Fatal("no interlock cycles recorded")
	}
}

func TestBranchMispredictionCost(t *testing.T) {
	clock := sim.Clock150
	body := func(th *emitter.Thread) {
		for i := 0; i < 500; i++ {
			th.Branch(emitter.None)
			th.IntALU(emitter.None, emitter.None)
		}
	}
	port := &fakePort{clock: clock, base: 1 << 40}
	perfect, _ := runAll(t, noBranchConfig(clock), port, body)
	badCfg := DefaultConfig(clock)
	badCfg.BranchAccuracy = 0.5
	bad, st := runAll(t, badCfg, port, body)
	if bad <= perfect {
		t.Fatalf("mispredictions free: %d vs %d", bad, perfect)
	}
	if st.Mispredicts == 0 {
		t.Fatal("no mispredicts recorded")
	}
}
