// Package mxs implements the MXS processor model: a generic four-issue
// out-of-order superscalar "configured to be as close to an R10000 as
// possible" — same functional-unit mix and latencies, same branch
// prediction strategy, and (added for this study, as in the paper)
// resource constraints on the functional units.
//
// Because MXS is generic, it does not model R10000 implementation
// corner cases. The ones the paper identified are available as fidelity
// flags, all off by default (matching untuned MXS) and all on in the
// hardware reference model:
//
//   - ModelAddressInterlocks: address interlocks in the R10000 pipeline
//     "can in some cases cause a 20%–30% decrease in performance"
//     (Ofelt); without them MXS runs 20–30% faster than hardware.
//   - BugFastIssue: the historical MXS bug where "an instruction would
//     move through the pipeline too quickly if all of its resources
//     were available when it issued" (found by the Rivet visualizer).
//   - BugCacheOpStall: the historical bug where a CACHE instruction
//     that invalidated a dirty line never signaled completion and the
//     processor stalled ~one million cycles until a timer interrupt
//     retried it.
//
// The model is a constraint-propagation window model: per instruction
// it computes fetch, issue, completion, and retire times under fetch
// bandwidth, window occupancy, data dependences, functional-unit
// structural hazards, branch mispredictions, and pipeline-flushing
// coprocessor-0 instructions. This is the standard way to approximate
// an out-of-order core without per-cycle scheduling, and it preserves
// the property the study cares about: overlapping of memory latency up
// to the MSHR limit.
package mxs

import (
	"flashsim/internal/cpu"
	"flashsim/internal/isa"
	"flashsim/internal/sim"
)

// Fidelity collects the R10000 corner-case switches and historical
// bugs.
type Fidelity struct {
	// ModelAddressInterlocks charges InterlockCycles to memory
	// operations whose address producer is within InterlockMaxDist
	// instructions (and to tightly dependent FP pairs).
	ModelAddressInterlocks bool
	InterlockCycles        uint32
	InterlockMaxDist       uint32
	// BugFastIssue re-enables the historical fast-issue bug.
	BugFastIssue bool
	// BugCacheOpStall re-enables the historical CACHE-op stall bug;
	// CacheOpStallCycles is the stall length (≈1M cycles).
	BugCacheOpStall    bool
	CacheOpStallCycles uint32
}

// DefaultInterlocks returns the interlock parameters used by the
// hardware reference model.
func DefaultInterlocks() (cycles, maxDist uint32) { return 2, 3 }

// Config parameterizes an MXS core.
type Config struct {
	// Clock is the core clock (150 MHz in the study: "because MXS is
	// a multiple-issue simulator capable of exploiting ILP, its
	// results are reported only for the hardware clock speed").
	Clock sim.Clock
	// Window is the reorder-buffer size (R10000: 32).
	Window int
	// FetchWidth and RetireWidth are per-cycle bandwidths (4 and 4).
	FetchWidth  int
	RetireWidth int
	// BranchAccuracy is the predictor hit rate (R10000 2-bit ~0.90).
	BranchAccuracy float64
	// MispredictPenalty is the refetch penalty in cycles.
	MispredictPenalty uint32
	// FlushPenalty is the pipeline-drain penalty of coprocessor-0
	// instructions, in cycles.
	FlushPenalty uint32
	// Latencies is the per-op latency table (R10000 values).
	Latencies isa.LatencyTable
	// Fidelity selects corner-case modeling.
	Fidelity Fidelity
	// Quantum bounds instructions per Run call; 0 means 200.
	Quantum int
	// Seed perturbs the branch-outcome PRNG (deterministic per core).
	Seed uint64
}

// DefaultConfig returns the untuned MXS configuration of the study.
func DefaultConfig(clock sim.Clock) Config {
	return Config{
		Clock:             clock,
		Window:            32,
		FetchWidth:        4,
		RetireWidth:       4,
		BranchAccuracy:    0.90,
		MispredictPenalty: 5,
		FlushPenalty:      10,
		Latencies:         isa.R10000Latencies(),
		Quantum:           200,
	}
}

const histSize = 4096 // completion-time history ring (power of two)

// CPU is one MXS core.
type CPU struct {
	cfg  Config
	rd   cpu.Stream
	port cpu.Port

	n          uint64 // absolute instruction index
	hist       [histSize]sim.Ticks
	retireRing []sim.Ticks
	prevRetire sim.Ticks
	curFetch   sim.Ticks
	fetchedInC int
	unitFree   [isa.NumUnits]sim.Ticks
	rng        uint64
	brThresh   uint64

	retireSpacing sim.Ticks
	stats         cpu.Stats

	// Suspension context for a port-deferred access (cpu.Blocking).
	pendLat       isa.Latency
	pendIssueT    sim.Ticks
	pendDepsReady bool
	pendCacheOp   bool
}

// New binds an MXS core to an instruction stream and memory port.
func New(cfg Config, rd cpu.Stream, port cpu.Port) *CPU {
	if cfg.Quantum <= 0 {
		cfg.Quantum = 200
	}
	if cfg.Window <= 0 {
		cfg.Window = 32
	}
	if cfg.FetchWidth <= 0 {
		cfg.FetchWidth = 4
	}
	if cfg.RetireWidth <= 0 {
		cfg.RetireWidth = 4
	}
	var zero isa.LatencyTable
	if cfg.Latencies == zero {
		cfg.Latencies = isa.R10000Latencies()
	}
	spacing := (cfg.Clock.Period + sim.Ticks(cfg.RetireWidth) - 1) / sim.Ticks(cfg.RetireWidth)
	if spacing == 0 {
		spacing = 1
	}
	c := &CPU{
		cfg:           cfg,
		rd:            rd,
		port:          port,
		retireRing:    make([]sim.Ticks, cfg.Window),
		rng:           cfg.Seed*0x9E3779B97F4A7C15 + 0xD1B54A32D192ED03,
		retireSpacing: spacing,
	}
	switch {
	case cfg.BranchAccuracy >= 1:
		c.brThresh = ^uint64(0)
	case cfg.BranchAccuracy <= 0:
		c.brThresh = 0
	default:
		c.brThresh = uint64(cfg.BranchAccuracy*float64(1<<63)) << 1
	}
	return c
}

// Stats returns the core's counters.
func (c *CPU) Stats() cpu.Stats { return c.stats }

func (c *CPU) rand() uint64 {
	x := c.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	c.rng = x
	return x * 0x2545F4914F6CDD1D
}

// depReady returns the completion time of the producer dist instructions
// back, or 0 when unknown/out of range.
func (c *CPU) depReady(dist uint32) sim.Ticks {
	if dist == 0 || uint64(dist) > c.n || dist >= histSize {
		return 0
	}
	return c.hist[(c.n-uint64(dist))%histSize]
}

// completeInstr finishes one instruction after its completion time is
// known: the historical fast-issue bug ("an instruction would move
// through the pipeline too quickly if all of its resources were
// available when it issued"), pipeline-flush redirects, the TLB-refill
// squash, the completion history, and in-order retire with bandwidth
// RetireWidth. It is the shared tail of the inline path and Deliver.
func (c *CPU) completeInstr(lat isa.Latency, issueT, completeT sim.Ticks, depsReady, tlbFlush bool) {
	period := c.cfg.Clock.Period
	if c.cfg.Fidelity.BugFastIssue && depsReady && completeT > issueT+period {
		completeT -= period
	}

	if lat.FlushesPipe {
		c.stats.PipeFlushes++
		resume := completeT + period*sim.Ticks(c.cfg.FlushPenalty)
		if resume > c.curFetch {
			c.curFetch = c.cfg.Clock.Align(resume)
			c.fetchedInC = 0
		}
	}
	if tlbFlush {
		// A TLB refill is an exception: the pipeline is squashed
		// and no later instruction overlaps the handler. The
		// handler cost itself is inside completeT (charged by the
		// port); redirect fetch behind it.
		c.stats.PipeFlushes++
		if completeT > c.curFetch {
			c.curFetch = c.cfg.Clock.Align(completeT)
			c.fetchedInC = 0
		}
	}

	c.hist[c.n%histSize] = completeT

	// In-order retire with bandwidth RetireWidth.
	rT := completeT
	if m := c.prevRetire + c.retireSpacing; m > rT {
		rT = m
	}
	c.retireRing[c.n%uint64(c.cfg.Window)] = rT
	c.prevRetire = rT
	c.n++
}

// Deliver implements cpu.Blocking: the port deferred the suspended
// memory access to a barrier phase and mi is its completed result.
// The core finishes the instruction exactly as the inline path would
// have and returns the resume time the inline memYield return uses —
// at least the transaction's issue time, so the next shared-resource
// reservation is made in global time order.
func (c *CPU) Deliver(mi cpu.MemInfo) sim.Ticks {
	period := c.cfg.Clock.Period
	completeT := mi.Done
	if c.pendCacheOp {
		// Mirror the inline CACHE path: no latency floor, no TLB
		// squash, but the historical dirty-line stall bug applies.
		if c.cfg.Fidelity.BugCacheOpStall && mi.DirtyCacheOp {
			stall := c.cfg.Fidelity.CacheOpStallCycles
			if stall == 0 {
				stall = 1_000_000
			}
			completeT += period * sim.Ticks(stall)
		}
		c.completeInstr(c.pendLat, c.pendIssueT, completeT, c.pendDepsReady, false)
	} else {
		if m := c.pendIssueT + period*sim.Ticks(c.pendLat.Cycles); completeT < m {
			completeT = m
		}
		c.completeInstr(c.pendLat, c.pendIssueT, completeT, c.pendDepsReady, mi.TLBMiss)
	}
	at := c.curFetch
	if mi.IssuedAt > at {
		at = mi.IssuedAt
	}
	return at
}

// Run executes instructions starting at t until the model yields.
func (c *CPU) Run(t sim.Ticks) cpu.Outcome {
	period := c.cfg.Clock.Period
	if at := c.cfg.Clock.Align(t); at > c.curFetch {
		c.curFetch = at
		c.fetchedInC = 0
	}
	if t > c.prevRetire {
		c.prevRetire = t
	}
	for k := 0; k < c.cfg.Quantum; k++ {
		in, ok := c.rd.Next()
		if !ok {
			return cpu.Outcome{Kind: cpu.Finished, Time: c.prevRetire}
		}
		c.stats.Instructions++

		if in.Op.IsSync() {
			// Serializing: drain the window, then hand to the machine.
			drain := c.prevRetire + period
			return cpu.Outcome{Kind: cpu.SyncOp, Time: drain, Instr: in}
		}

		// Fetch: window occupancy, then bandwidth.
		if c.n >= uint64(c.cfg.Window) {
			if slotFree := c.retireRing[c.n%uint64(c.cfg.Window)]; slotFree > c.curFetch {
				c.curFetch = c.cfg.Clock.Align(slotFree)
				c.fetchedInC = 0
			}
		}
		fetchT := c.curFetch
		c.fetchedInC++
		if c.fetchedInC >= c.cfg.FetchWidth {
			c.curFetch += period
			c.fetchedInC = 0
		}

		lat := c.cfg.Latencies[in.Op]
		readyBase := fetchT + period // decode/rename
		issueT := readyBase
		if r := c.depReady(in.Dep1); r > issueT {
			issueT = r
		}
		if r := c.depReady(in.Dep2); r > issueT {
			issueT = r
		}

		// R10000 address interlocks (hardware fidelity only).
		if c.cfg.Fidelity.ModelAddressInterlocks {
			if in.Op.IsMem() && in.Dep2 > 0 && in.Dep2 <= c.cfg.Fidelity.InterlockMaxDist {
				issueT += period * sim.Ticks(c.cfg.Fidelity.InterlockCycles)
				c.stats.InterlockCyc += uint64(c.cfg.Fidelity.InterlockCycles)
			} else if (in.Op == isa.FPAdd || in.Op == isa.FPMul) && in.Dep1 > 0 && in.Dep1 <= 2 {
				issueT += period
				c.stats.InterlockCyc++
			}
		}

		// Structural hazard on the functional unit.
		depsReady := issueT == readyBase // operands ready at rename
		if u := lat.Unit; u != isa.UnitNone {
			if c.unitFree[u] > issueT {
				issueT = c.unitFree[u]
			}
			occupy := period // pipelined: one issue per cycle
			if u == isa.UnitMulDiv {
				occupy = period * sim.Ticks(lat.Cycles) // unpipelined
			}
			c.unitFree[u] = issueT + occupy
		}

		var completeT sim.Ticks
		var memIssued sim.Ticks
		memYield := false
		tlbFlush := false
		switch in.Op {
		case isa.Load:
			mi := c.port.Load(issueT, in.Addr, in.Size)
			if mi.Pending {
				c.pendLat, c.pendIssueT, c.pendDepsReady, c.pendCacheOp = lat, issueT, depsReady, false
				return cpu.Outcome{Kind: cpu.Blocked, Time: issueT}
			}
			completeT = mi.Done
			if m := issueT + period*sim.Ticks(lat.Cycles); completeT < m {
				completeT = m
			}
			memYield = mi.WentToMemory
			memIssued = mi.IssuedAt
			tlbFlush = mi.TLBMiss
		case isa.Store:
			mi := c.port.Store(issueT, in.Addr, in.Size)
			if mi.Pending {
				c.pendLat, c.pendIssueT, c.pendDepsReady, c.pendCacheOp = lat, issueT, depsReady, false
				return cpu.Outcome{Kind: cpu.Blocked, Time: issueT}
			}
			completeT = issueT + period*sim.Ticks(lat.Cycles)
			if mi.Done > completeT {
				completeT = mi.Done
			}
			memYield = mi.WentToMemory
			memIssued = mi.IssuedAt
			tlbFlush = mi.TLBMiss
		case isa.Prefetch:
			c.port.Prefetch(issueT, in.Addr)
			completeT = issueT + period
		case isa.CacheOp:
			mi := c.port.CacheOp(issueT, in.Addr, in.Aux)
			if mi.Pending {
				c.pendLat, c.pendIssueT, c.pendDepsReady, c.pendCacheOp = lat, issueT, depsReady, true
				return cpu.Outcome{Kind: cpu.Blocked, Time: issueT}
			}
			completeT = mi.Done
			if c.cfg.Fidelity.BugCacheOpStall && mi.DirtyCacheOp {
				stall := c.cfg.Fidelity.CacheOpStallCycles
				if stall == 0 {
					stall = 1_000_000
				}
				completeT += period * sim.Ticks(stall)
			}
			memYield = mi.WentToMemory
		case isa.Syscall:
			completeT = issueT + period*sim.Ticks(1+c.port.SyscallCost(in.Aux))
		case isa.Branch:
			completeT = issueT + period*sim.Ticks(lat.Cycles)
			if c.rand() >= c.brThresh {
				c.stats.Mispredicts++
				redirect := completeT + period*sim.Ticks(c.cfg.MispredictPenalty)
				if redirect > c.curFetch {
					c.curFetch = c.cfg.Clock.Align(redirect)
					c.fetchedInC = 0
				}
			}
		default:
			completeT = issueT + period*sim.Ticks(lat.Cycles)
		}

		c.completeInstr(lat, issueT, completeT, depsReady, tlbFlush)

		if memYield {
			// Yield to at least the transaction's issue time so the
			// next shared-resource reservation (from this or any other
			// processor) is made in global time order.
			at := c.curFetch
			if memIssued > at {
				at = memIssued
			}
			return cpu.Outcome{Kind: cpu.Yield, Time: at}
		}
	}
	return cpu.Outcome{Kind: cpu.Yield, Time: c.curFetch}
}
