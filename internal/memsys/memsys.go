// Package memsys provides the two memory-system simulators of the
// study behind one interface: FlashLite, the detailed model of MAGIC,
// the network, memory, and the coherence protocol ("it actually models
// everything in the FLASH system other than the main microprocessor and
// its caches"), and NUMA, the generic model "we might have used had we
// never designed and built real hardware" — latencies only, no
// controller occupancy, no network contention.
package memsys

import (
	"flashsim/internal/network"
	"flashsim/internal/proto"
	"flashsim/internal/sim"
	"flashsim/internal/vm"
)

// Message sizes on the interconnect, in bytes.
const (
	// ReqBytes is a request/control message (header only).
	ReqBytes = 16
	// DataBytes is a data-carrying message (128-byte line + header).
	DataBytes = 144
	// AckBytes is an acknowledgement.
	AckBytes = 8
)

// Peers lets the memory system manipulate the processors' cache states
// for interventions and invalidations. The machine layer implements it.
type Peers interface {
	// Invalidate removes the line from node's hierarchy, returning
	// whether it was present.
	Invalidate(node int, lineAddr uint64) bool
	// Downgrade transitions the line to Shared in node's hierarchy,
	// returning whether it was present and whether it was dirty.
	Downgrade(node int, lineAddr uint64) (present, dirty bool)
}

// nopPeers is used until the machine registers real peers (and by unit
// tests that exercise timing only).
type nopPeers struct{}

func (nopPeers) Invalidate(int, uint64) bool        { return true }
func (nopPeers) Downgrade(int, uint64) (bool, bool) { return true, true }

// Result describes a completed coherence transaction.
type Result struct {
	// Done is the time the data (or ownership) is available at the
	// requesting node's processor pins.
	Done sim.Ticks
	// Case is the protocol case the transaction exercised.
	Case proto.Case
	// Exclusive reports a read was granted exclusively (install E).
	Exclusive bool
	// Invals is the number of invalidations sent.
	Invals int
}

// System is a memory-system simulator: everything beyond the processor
// and its caches.
type System interface {
	// Name identifies the model ("flashlite", "numa").
	Name() string
	// Read satisfies a read miss for the line at physical address pa
	// from node, starting at time t.
	Read(t sim.Ticks, node int, pa uint64) Result
	// Write satisfies a write miss or upgrade.
	Write(t sim.Ticks, node int, pa uint64) Result
	// Writeback retires a dirty eviction (fire and forget).
	Writeback(t sim.Ticks, node int, pa uint64)
	// Replace retires a clean-exclusive eviction: a replacement hint
	// that updates the directory without a data transfer.
	Replace(t sim.Ticks, node int, pa uint64)
	// SetPeers registers the cache-intervention callbacks.
	SetPeers(p Peers)
	// Directory exposes protocol state (tests, statistics).
	Directory() *proto.Directory
	// Net exposes the interconnect (statistics); may be nil for
	// models without one.
	Net() *network.Network
}

// home returns the line's home node.
func home(pa uint64) int { return vm.NodeOf(pa) }
