package memsys

import (
	"flashsim/internal/network"
	"flashsim/internal/proto"
	"flashsim/internal/sim"
)

// NUMAConfig holds the generic NUMA model's latency parameters, "set to
// match hardware latencies, known well in advance of building the
// hardware". The model simulates network latencies, contention for main
// memory, and the latency through the directory controller — but "it
// does not model occupancy of the directory controller beyond the normal
// latency path, nor does it model contention in the network or the
// routers."
type NUMAConfig struct {
	Nodes int
	// ControllerNS is the pass-through latency of the directory
	// controller (MAGIC, in the case of FLASH) — pure latency, never
	// occupancy.
	ControllerNS float64
	// MemoryNS is the DRAM access latency for a full line.
	MemoryNS float64
	// MemoryBanks is the number of contended memory banks per node
	// (main-memory contention is the one queueing effect NUMA keeps).
	MemoryBanks int
	// HopNS is the per-hop network latency.
	HopNS float64
	// PerByteNS is the serialization time per byte (latency only).
	PerByteNS float64
	// InterventionNS is the dirty-line extraction cost at an owner.
	InterventionNS float64
	// BusNS is the processor<->controller bus latency, each way.
	BusNS float64
}

// DefaultNUMAConfig returns the generic model parameterized with the
// FLASH design latencies.
func DefaultNUMAConfig(nodes int) NUMAConfig {
	return NUMAConfig{
		Nodes:          nodes,
		ControllerNS:   160, // ~12 PP cycles at 75 MHz, as latency
		MemoryNS:       220, // 140 ns first word + line streaming
		MemoryBanks:    4,
		HopNS:          60, // hop + router, folded
		PerByteNS:      1.25,
		InterventionNS: 250,
		BusNS:          50,
	}
}

// NUMA is the generic NUMA memory-system model.
type NUMA struct {
	cfg   NUMAConfig
	net   *network.Network
	dir   *proto.Directory
	dram  []*sim.Banks
	peers Peers
}

// NewNUMA builds the model.
func NewNUMA(cfg NUMAConfig) *NUMA {
	ncfg := network.DefaultConfig(cfg.Nodes)
	ncfg.ModelContention = false
	ncfg.HopTicks = sim.NS(cfg.HopNS)
	ncfg.RouterTicks = 0
	n := &NUMA{
		cfg:   cfg,
		net:   network.New(ncfg),
		dir:   proto.NewDirectory(cfg.Nodes, 0),
		peers: nopPeers{},
	}
	banks := cfg.MemoryBanks
	if banks <= 0 {
		banks = 1
	}
	n.dram = make([]*sim.Banks, cfg.Nodes)
	for i := range n.dram {
		n.dram[i] = sim.NewBanks("numa-dram", banks)
	}
	return n
}

// Name identifies the model.
func (n *NUMA) Name() string { return "numa" }

// SetPeers registers cache-intervention callbacks.
func (n *NUMA) SetPeers(p Peers) { n.peers = p }

// Directory exposes the protocol directory.
func (n *NUMA) Directory() *proto.Directory { return n.dir }

// Net exposes the (latency-only) interconnect.
func (n *NUMA) Net() *network.Network { return n.net }

// hop returns pure network latency for size bytes from a to b.
func (n *NUMA) hop(t sim.Ticks, a, b, size int) sim.Ticks {
	if a == b {
		return t
	}
	hops := n.net.Hops(a, b)
	lat := sim.Ticks(hops)*sim.NS(n.cfg.HopNS) + sim.NS(n.cfg.PerByteNS*float64(size))
	n.net.Send(t, a, b, size) // statistics only; contention is off
	return t + lat
}

// memory reserves a DRAM bank at node (the one contention effect NUMA
// models).
func (n *NUMA) memory(t sim.Ticks, node int, pa uint64) sim.Ticks {
	_, done := n.dram[node].Acquire(pa>>7, t, sim.NS(n.cfg.MemoryNS))
	return done
}

func (n *NUMA) ctrl(t sim.Ticks) sim.Ticks { return t + sim.NS(n.cfg.ControllerNS) }
func (n *NUMA) bus(t sim.Ticks) sim.Ticks  { return t + sim.NS(n.cfg.BusNS) }

// Read satisfies a read miss.
func (n *NUMA) Read(t sim.Ticks, node int, pa uint64) Result {
	h := home(pa)
	rr := n.dir.Read(pa, h, node)
	t1 := n.bus(t)
	t1 = n.ctrl(t1) // requester-side controller latency
	t1 = n.hop(t1, node, h, ReqBytes)
	switch rr.Case {
	case proto.LocalClean, proto.RemoteClean:
		t1 = n.ctrl(t1)
		t1 = n.memory(t1, h, pa)
		t1 = n.hop(t1, h, node, DataBytes)
		t1 = n.ctrl(t1)
		return Result{Done: n.bus(t1), Case: rr.Case, Exclusive: rr.Exclusive}
	default:
		owner := rr.Owner
		t1 = n.ctrl(t1)
		t1 = n.hop(t1, h, owner, ReqBytes)
		t1 = n.ctrl(t1)
		t1 += sim.NS(n.cfg.InterventionNS)
		n.peers.Downgrade(owner, pa)
		// Sharing writeback to home happens off the critical path and,
		// in this model, consumes nothing.
		t1 = n.hop(t1, owner, node, DataBytes)
		t1 = n.ctrl(t1)
		return Result{Done: n.bus(t1), Case: rr.Case}
	}
}

// Replace retires a clean-exclusive eviction: directory update only.
func (n *NUMA) Replace(t sim.Ticks, node int, pa uint64) {
	n.dir.Replace(pa, node)
}

// Write satisfies a write miss or upgrade.
func (n *NUMA) Write(t sim.Ticks, node int, pa uint64) Result {
	h := home(pa)
	wr := n.dir.Write(pa, h, node)
	t1 := n.bus(t)
	t1 = n.ctrl(t1)
	t1 = n.hop(t1, node, h, ReqBytes)
	t1 = n.ctrl(t1)
	var done sim.Ticks
	switch wr.Case {
	case proto.LocalDirtyRemote, proto.RemoteDirtyHome, proto.RemoteDirtyRemote:
		owner := wr.Owner
		t2 := n.hop(t1, h, owner, ReqBytes)
		t2 = n.ctrl(t2)
		t2 += sim.NS(n.cfg.InterventionNS)
		if !n.peers.Invalidate(owner, pa) {
			n.dir.NoteStaleInval()
		}
		done = n.hop(t2, owner, node, DataBytes)
	default:
		acks := t1
		for _, s := range wr.Invalidate {
			ti := n.hop(t1, h, s, ReqBytes)
			ti = n.ctrl(ti)
			if !n.peers.Invalidate(s, pa) {
				n.dir.NoteStaleInval()
			}
			ti = n.hop(ti, s, h, AckBytes)
			if ti > acks {
				acks = ti
			}
		}
		if wr.Case == proto.Upgrade {
			done = n.hop(acks, h, node, AckBytes)
			break
		}
		t2 := n.memory(t1, h, pa)
		if acks > t2 {
			t2 = acks
		}
		done = n.hop(t2, h, node, DataBytes)
	}
	done = n.ctrl(done)
	return Result{Done: n.bus(done), Case: wr.Case, Invals: len(wr.Invalidate)}
}

// Writeback retires a dirty eviction; it reserves the home memory bank
// but nothing else.
func (n *NUMA) Writeback(t sim.Ticks, node int, pa uint64) {
	h := home(pa)
	t1 := n.bus(t)
	t1 = n.hop(t1, node, h, DataBytes)
	n.memory(t1, h, pa)
	n.dir.Writeback(pa, node)
}
