package memsys

import (
	"testing"

	"flashsim/internal/proto"
	"flashsim/internal/sim"
	"flashsim/internal/vm"
)

func pa(node int, frame uint32) uint64 {
	return vm.PhysPage{Node: int32(node), Frame: frame}.Addr(0)
}

func newFL(nodes int) *FlashLite {
	return NewFlashLite(DefaultFlashConfig(nodes, TrueTiming()))
}

func TestFlashLiteLocalCleanRead(t *testing.T) {
	f := newFL(4)
	res := f.Read(0, 0, pa(0, 1))
	if res.Case != proto.LocalClean {
		t.Fatalf("case %v", res.Case)
	}
	if !res.Exclusive {
		t.Fatal("first read must be granted exclusive")
	}
	if res.Done == 0 {
		t.Fatal("zero latency")
	}
}

func TestFlashLiteCaseLatencyOrdering(t *testing.T) {
	line := func(frame uint32, home int) uint64 { return pa(home, frame) }
	latency := func(setup func(f *FlashLite), home, req int, l uint64) sim.Ticks {
		f := newFL(4)
		if setup != nil {
			setup(f)
		}
		return f.Read(0, req, l).Done
	}
	lc := latency(nil, 0, 0, line(1, 0))
	rc := latency(nil, 1, 0, line(1, 1))
	ldr := latency(func(f *FlashLite) { f.Write(0, 1, line(2, 0)) }, 0, 0, line(2, 0))
	rdr := latency(func(f *FlashLite) { f.Write(0, 2, line(3, 1)) }, 1, 0, line(3, 1))
	if !(lc < rc && rc < ldr && ldr < rdr) {
		t.Fatalf("ordering violated: lc=%d rc=%d ldr=%d rdr=%d", lc, rc, ldr, rdr)
	}
}

func TestFlashLiteWriteInvalidatesThroughPeers(t *testing.T) {
	f := newFL(4)
	invalidated := map[int]bool{}
	f.SetPeers(peersFunc{
		inv: func(node int, line uint64) bool { invalidated[node] = true; return true },
	})
	l := pa(0, 5)
	f.Read(0, 1, l)
	f.Read(100, 2, l)
	res := f.Write(200, 3, l)
	if res.Invals == 0 {
		t.Fatalf("no invalidations: %+v", res)
	}
	if !invalidated[1] && !invalidated[2] {
		t.Fatal("peer caches not invalidated")
	}
}

func TestFlashLiteDirtyForwardDowngrades(t *testing.T) {
	f := newFL(4)
	downgraded := false
	f.SetPeers(peersFunc{
		down: func(node int, line uint64) (bool, bool) { downgraded = node == 2; return true, true },
	})
	l := pa(0, 7)
	f.Write(0, 2, l) // node 2 owns dirty
	res := f.Read(100, 1, l)
	if res.Case != proto.RemoteDirtyRemote {
		t.Fatalf("case %v", res.Case)
	}
	if !downgraded {
		t.Fatal("owner not downgraded")
	}
}

func TestFlashLiteHotspotQueuing(t *testing.T) {
	// Many concurrent reads to the same home must queue at the PP;
	// the same traffic on the NUMA model must not (beyond its memory
	// banks).
	fl := newFL(16)
	var flLast sim.Ticks
	for i := 0; i < 64; i++ {
		r := fl.Read(0, 1+(i%15), pa(0, uint32(i)))
		if r.Done > flLast {
			flLast = r.Done
		}
	}
	nu := NewNUMA(DefaultNUMAConfig(16))
	var nuLast sim.Ticks
	for i := 0; i < 64; i++ {
		r := nu.Read(0, 1+(i%15), pa(0, uint32(i)))
		if r.Done > nuLast {
			nuLast = r.Done
		}
	}
	if flLast <= nuLast {
		t.Fatalf("FlashLite hotspot (%d) should exceed NUMA's (%d): occupancy is the difference",
			flLast, nuLast)
	}
}

func TestNUMACasesAndExclusive(t *testing.T) {
	n := NewNUMA(DefaultNUMAConfig(4))
	r1 := n.Read(0, 0, pa(0, 1))
	if r1.Case != proto.LocalClean || !r1.Exclusive {
		t.Fatalf("numa first read %+v", r1)
	}
	r2 := n.Read(100, 1, pa(0, 1))
	if r2.Case != proto.LocalDirtyRemote && r2.Case != proto.RemoteDirtyHome {
		t.Fatalf("numa dirty read case %v", r2.Case)
	}
}

func TestNUMAWriteUpgrade(t *testing.T) {
	n := NewNUMA(DefaultNUMAConfig(4))
	l := pa(0, 3)
	n.Read(0, 1, l)
	n.Read(10, 2, l)
	res := n.Write(100, 1, l)
	if res.Case != proto.Upgrade {
		t.Fatalf("case %v", res.Case)
	}
	if res.Invals != 1 {
		t.Fatalf("invals %d", res.Invals)
	}
}

func TestWritebackAndReplaceUpdateDirectory(t *testing.T) {
	for _, sys := range []System{newFL(4), NewNUMA(DefaultNUMAConfig(4))} {
		l := pa(0, 9)
		sys.Write(0, 2, l)
		sys.Writeback(100, 2, l)
		st, owner, _ := sys.Directory().State(l)
		if st != proto.DirUnowned || owner != -1 {
			t.Fatalf("%s: writeback left %v/%d", sys.Name(), st, owner)
		}
		l2 := pa(0, 10)
		sys.Read(200, 2, l2) // exclusive grant
		sys.Replace(300, 2, l2)
		st, _, _ = sys.Directory().State(l2)
		if st != proto.DirUnowned {
			t.Fatalf("%s: replace left %v", sys.Name(), st)
		}
	}
}

func TestNames(t *testing.T) {
	if newFL(2).Name() != "flashlite" || NewNUMA(DefaultNUMAConfig(2)).Name() != "numa" {
		t.Fatal("names")
	}
}

func TestDesignVsTrueTimingDiffer(t *testing.T) {
	d, tr := DesignTiming(), TrueTiming()
	if d == tr {
		t.Fatal("design timing must differ from as-built timing")
	}
	if d.InterventionNS <= tr.InterventionNS {
		t.Fatal("design intervention estimate should be pessimistic")
	}
	if d.InboxNS >= tr.InboxNS {
		t.Fatal("design interface estimate should be optimistic")
	}
}

// peersFunc adapts closures to the Peers interface.
type peersFunc struct {
	inv  func(int, uint64) bool
	down func(int, uint64) (bool, bool)
}

func (p peersFunc) Invalidate(n int, l uint64) bool {
	if p.inv == nil {
		return true
	}
	return p.inv(n, l)
}

func (p peersFunc) Downgrade(n int, l uint64) (bool, bool) {
	if p.down == nil {
		return true, true
	}
	return p.down(n, l)
}
