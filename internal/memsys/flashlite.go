package memsys

import (
	"flashsim/internal/magic"
	"flashsim/internal/network"
	"flashsim/internal/proto"
	"flashsim/internal/sim"
)

// FlashTiming holds the FlashLite timing constants the paper's tuning
// pass adjusted: "our simulator tuning consisted of ... changing
// FlashLite bus timing ..., adjusting the latency through the network
// router, and tuning the latencies from the network to the node
// controller and vice-versa." InterventionNS is the cost of pulling a
// dirty line out of an owning processor's cache (all data must pass
// through the R10000 to reach its secondary cache).
type FlashTiming struct {
	BusRequestNS   float64 // processor -> MAGIC
	BusReplyNS     float64 // MAGIC -> processor
	RouterNS       float64 // per-router pass-through
	InboxNS        float64 // network -> MAGIC
	OutboxNS       float64 // MAGIC -> network
	InterventionNS float64 // dirty-line extraction at the owner CPU
}

// TrueTiming returns the timing of the as-built hardware. The hardware
// reference model uses these values; the Calibrator recovers them.
func TrueTiming() FlashTiming {
	return FlashTiming{
		BusRequestNS:   35,
		BusReplyNS:     35,
		RouterNS:       25,
		InboxNS:        60,
		OutboxNS:       60,
		InterventionNS: 690,
	}
}

// DesignTiming returns FlashLite's pre-silicon estimates: bus, router,
// and interface latencies slightly optimistic, intervention cost
// pessimistic. This yields the untuned column of Table 3 (fast on the
// two-hop cases, slow on the three-hop dirty-remote case).
func DesignTiming() FlashTiming {
	return FlashTiming{
		BusRequestNS:   35,
		BusReplyNS:     35,
		RouterNS:       12,
		InboxNS:        40,
		OutboxNS:       40,
		InterventionNS: 1050,
	}
}

// FlashConfig configures a FlashLite instance.
type FlashConfig struct {
	Nodes  int
	Timing FlashTiming
	// Magic is the per-node controller configuration (occupancy table,
	// memory). Inbox/outbox latencies are overridden from Timing.
	Magic magic.Config
	// Net is the interconnect configuration. Router latency is
	// overridden from Timing.
	Net network.Config
	// DirectoryLinks sizes the dynamic-pointer-allocation store.
	DirectoryLinks int
}

// DefaultFlashConfig returns the detailed model at the given node count
// with the supplied timing constants.
func DefaultFlashConfig(nodes int, t FlashTiming) FlashConfig {
	m := magic.DefaultConfig()
	m.InboxTicks = sim.NS(t.InboxNS)
	m.OutboxTicks = sim.NS(t.OutboxNS)
	n := network.DefaultConfig(nodes)
	n.RouterTicks = sim.NS(t.RouterNS)
	return FlashConfig{Nodes: nodes, Timing: t, Magic: m, Net: n}
}

// FlashLite is the detailed memory-system simulator: a multi-threaded
// model of the memory bus, MAGIC, network, memory, and the coherence
// protocol, with PP occupancy and network contention.
type FlashLite struct {
	cfg   FlashConfig
	ctrl  []*magic.Controller
	net   *network.Network
	dir   *proto.Directory
	peers Peers
}

// NewFlashLite builds the model.
func NewFlashLite(cfg FlashConfig) *FlashLite {
	f := &FlashLite{
		cfg:   cfg,
		net:   network.New(cfg.Net),
		dir:   proto.NewDirectory(cfg.Nodes, cfg.DirectoryLinks),
		peers: nopPeers{},
	}
	f.ctrl = make([]*magic.Controller, cfg.Nodes)
	for i := range f.ctrl {
		f.ctrl[i] = magic.New(cfg.Magic)
	}
	return f
}

// Name identifies the model.
func (f *FlashLite) Name() string { return "flashlite" }

// SetPeers registers cache-intervention callbacks.
func (f *FlashLite) SetPeers(p Peers) { f.peers = p }

// Directory exposes the protocol directory.
func (f *FlashLite) Directory() *proto.Directory { return f.dir }

// Net exposes the interconnect.
func (f *FlashLite) Net() *network.Network { return f.net }

// Controller exposes a node's MAGIC (statistics).
func (f *FlashLite) Controller(node int) *magic.Controller { return f.ctrl[node] }

func (f *FlashLite) busReq(t sim.Ticks) sim.Ticks { return t + sim.NS(f.cfg.Timing.BusRequestNS) }
func (f *FlashLite) busRep(t sim.Ticks) sim.Ticks { return t + sim.NS(f.cfg.Timing.BusReplyNS) }
func (f *FlashLite) interv(t sim.Ticks) sim.Ticks { return t + sim.NS(f.cfg.Timing.InterventionNS) }

// send moves a message from node a's MAGIC to node b's MAGIC (outbox,
// network, inbox). a == b is a local hand-off with no network traversal.
func (f *FlashLite) send(t sim.Ticks, a, b, size int) sim.Ticks {
	if a == b {
		return t
	}
	t = f.ctrl[a].Outbox(t)
	t = f.net.Send(t, a, b, size)
	return f.ctrl[b].Inbox(t)
}

// Read satisfies a read miss.
func (f *FlashLite) Read(t sim.Ticks, node int, pa uint64) Result {
	h := home(pa)
	line := pa
	// Processor interface at the requester.
	t1 := f.busReq(t)
	if node == h {
		t1 = f.ctrl[node].RunHandler(t1, magic.HPILocalGet, 0)
	} else {
		t1 = f.ctrl[node].RunHandler(t1, magic.HPIRemoteGet, 0)
		t1 = f.send(t1, node, h, ReqBytes)
	}
	rr := f.dir.Read(line, h, node)
	var dataAtReq sim.Ticks
	switch rr.Case {
	case proto.LocalClean, proto.RemoteClean:
		t2 := f.ctrl[h].RunHandler(t1, magic.HNILocalGet, 0)
		t2 = f.ctrl[h].Memory(t2, pa, true)
		dataAtReq = f.send(t2, h, node, DataBytes)
	default:
		// Dirty somewhere: forward to owner.
		owner := rr.Owner
		t2 := f.ctrl[h].RunHandler(t1, magic.HNIGetFwd, 0)
		t2 = f.send(t2, h, owner, ReqBytes)
		t2 = f.ctrl[owner].RunHandler(t2, magic.HNIOwnerGet, 0)
		t2 = f.interv(t2)
		f.peers.Downgrade(owner, line)
		if h == node {
			// Home is the requester: the owner's reply carries both
			// the data and the sharing writeback in one message.
			dataAtReq = f.send(t2, owner, node, DataBytes)
			f.ctrl[h].Memory(dataAtReq, pa, true)
		} else {
			// Owner replies with data to the requester and sends a
			// sharing writeback to home (the writeback proceeds in
			// the background but consumes home PP occupancy and
			// bandwidth).
			wb := f.send(t2, owner, h, DataBytes)
			f.ctrl[h].RunHandler(wb, magic.HNIWriteback, 0)
			f.ctrl[h].Memory(wb, pa, true)
			dataAtReq = f.send(t2, owner, node, DataBytes)
		}
	}
	if node != h || rr.Case == proto.LocalDirtyRemote {
		dataAtReq = f.ctrl[node].RunHandler(dataAtReq, magic.HNIPut, 0)
	}
	done := f.busRep(dataAtReq)
	return Result{Done: done, Case: rr.Case, Exclusive: rr.Exclusive}
}

// Write satisfies a write miss or upgrade.
func (f *FlashLite) Write(t sim.Ticks, node int, pa uint64) Result {
	h := home(pa)
	line := pa
	t1 := f.busReq(t)
	if node == h {
		t1 = f.ctrl[node].RunHandler(t1, magic.HPIGetX, 0)
	} else {
		t1 = f.ctrl[node].RunHandler(t1, magic.HPIGetX, 0)
		t1 = f.send(t1, node, h, ReqBytes)
	}
	wr := f.dir.Write(line, h, node)
	var dataAtReq sim.Ticks
	switch wr.Case {
	case proto.LocalDirtyRemote, proto.RemoteDirtyHome, proto.RemoteDirtyRemote:
		// Ownership transfer: the fetch from the previous owner is
		// itself the invalidation; no separate invalidation fan-out.
		owner := wr.Owner
		t2 := f.ctrl[h].RunHandler(t1, magic.HNIGetFwd, 0)
		t2 = f.send(t2, h, owner, ReqBytes)
		t2 = f.ctrl[owner].RunHandler(t2, magic.HNIOwnerGet, 0)
		t2 = f.interv(t2)
		if !f.peers.Invalidate(owner, line) {
			f.dir.NoteStaleInval()
		}
		dataAtReq = f.send(t2, owner, node, DataBytes)
	default:
		// Clean at home (possibly with sharers) or upgrade:
		// invalidations fan out from home; each occupies the home PP,
		// a network leg, and the sharer's PP, then acks return home.
		acksDone := t1
		for _, s := range wr.Invalidate {
			ti := f.ctrl[h].RunHandler(t1, magic.HNIGetX, 0)
			ti = f.send(ti, h, s, ReqBytes)
			ti = f.ctrl[s].RunHandler(ti, magic.HNIInval, 0)
			if !f.peers.Invalidate(s, line) {
				f.dir.NoteStaleInval()
			}
			ti = f.send(ti, s, h, AckBytes)
			ti = f.ctrl[h].RunHandler(ti, magic.HNIInvalAck, 0)
			if ti > acksDone {
				acksDone = ti
			}
		}
		if wr.Case == proto.Upgrade {
			// Ownership grant after all acks; no data transfer.
			dataAtReq = f.send(acksDone, h, node, AckBytes)
			break
		}
		t2 := f.ctrl[h].RunHandler(t1, magic.HNIGetX, 0)
		t2 = f.ctrl[h].Memory(t2, pa, true)
		t2 = f.send(t2, h, node, DataBytes)
		if acksDone > t2 {
			t2 = acksDone
		}
		dataAtReq = t2
	}
	if node != h {
		dataAtReq = f.ctrl[node].RunHandler(dataAtReq, magic.HNIPut, 0)
	}
	done := f.busRep(dataAtReq)
	return Result{Done: done, Case: wr.Case, Invals: len(wr.Invalidate)}
}

// Writeback retires a dirty eviction. The processor does not wait, but
// the writeback consumes bus, network, PP, and memory resources.
func (f *FlashLite) Writeback(t sim.Ticks, node int, pa uint64) {
	h := home(pa)
	t1 := f.busReq(t)
	t1 = f.ctrl[node].RunHandler(t1, magic.HPILocalGet, 0)
	t1 = f.send(t1, node, h, DataBytes)
	t1 = f.ctrl[h].RunHandler(t1, magic.HNIWriteback, 0)
	f.ctrl[h].Memory(t1, pa, true)
	f.dir.Writeback(pa, node)
}

// Replace retires a clean-exclusive eviction: a header-only replacement
// hint to the home directory, with no data transfer or memory write.
func (f *FlashLite) Replace(t sim.Ticks, node int, pa uint64) {
	h := home(pa)
	t1 := f.busReq(t)
	t1 = f.ctrl[node].RunHandler(t1, magic.HPILocalGet, 0)
	t1 = f.send(t1, node, h, ReqBytes)
	f.ctrl[h].RunHandler(t1, magic.HNIInvalAck, 0)
	f.dir.Replace(pa, node)
}
