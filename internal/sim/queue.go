package sim

import "flashsim/internal/obs"

// Event is a scheduled callback. Events fire in (At, Prio, Seq) order,
// which makes simulations deterministic regardless of insertion order:
// Seq is assigned monotonically by the queue at insertion.
//
// Events come in two forms. Schedule binds a closure and returns a
// handle the caller may Cancel or Reschedule; those events are owned by
// the caller and are never recycled. ScheduleFn binds a pre-registered
// Handler plus a uint64 argument and returns no handle; those events
// are owned by the queue and return to its free list the moment they
// fire, so steady-state scheduling performs zero heap allocations.
type Event struct {
	At   Ticks
	Prio int32 // lower fires first among equal times (e.g. node id)
	Fn   func(now Ticks)

	h   Handler // pre-bound form; nil for closure events
	arg uint64

	seq    uint64
	index  int  // heap index, -1 when not queued
	pooled bool // owned by the queue's free list (ScheduleFn form)
}

// Handler is a pre-bound event callback: one long-lived receiver
// dispatched with a per-event uint64 argument. The hot schedulers (the
// machine run loop driving the CPU, port, and memory-system models)
// implement it once and pass node ids as arg, which avoids allocating a
// fresh closure for every scheduled event.
type Handler interface {
	HandleEvent(now Ticks, arg uint64)
}

// Queue is a deterministic event queue (4-ary heap) with a free list
// of recycled events for the allocation-free ScheduleFn fast path. The
// 4-ary layout halves the number of levels a sift-down traverses
// compared to a binary heap, so the cache-missing pointer chases on
// dispatch shrink while the (At, Prio, seq) dispatch order is
// unchanged.
type Queue struct {
	heap    []*Event
	free    []*Event // recycled ScheduleFn events
	nextSeq uint64
	now     Ticks
	relaxed bool
	// stats counters are plain fields: a queue belongs to exactly one
	// machine run (one goroutine), and atomic increments here would sit
	// on the simulation's hottest path.
	stats obs.QueueCounters
}

// Stats returns the queue's accumulated event counters.
func (q *Queue) Stats() obs.QueueCounters { return q.stats }

// NewQueue returns an empty event queue at time zero.
func NewQueue() *Queue { return &Queue{} }

// SetRelaxed switches off the scheduled-in-the-past panic. A shard
// queue in the windowed parallel engine legitimately receives events
// below its dispatch horizon: a barrier phase resumes a node at the
// completion time of its deferred memory operation, which can precede
// the latest event the shard already dispatched this window. Dispatch
// order within a round is still (At, Prio, seq); causality across
// rounds is the engine's contract, not the queue's. Now regresses to
// the dispatched event's time in that case.
func (q *Queue) SetRelaxed(on bool) { q.relaxed = on }

// Now returns the time of the most recently dispatched event.
func (q *Queue) Now() Ticks { return q.now }

// Len returns the number of pending events.
func (q *Queue) Len() int { return len(q.heap) }

// Schedule enqueues fn to run at time at with priority prio. Scheduling
// in the past (at < Now) is a programming error and panics: it would
// silently break causality in the contention models.
func (q *Queue) Schedule(at Ticks, prio int32, fn func(now Ticks)) *Event {
	if at < q.now && !q.relaxed {
		panic("sim: event scheduled in the past")
	}
	e := &Event{At: at, Prio: prio, Fn: fn, seq: q.nextSeq, index: -1}
	q.nextSeq++
	q.stats.Scheduled++
	q.push(e)
	return e
}

// ScheduleFn enqueues h.HandleEvent(at, arg) using a recycled Event
// when one is available. No handle is returned: the event belongs to
// the queue and is reclaimed when it fires, so callers must not need to
// Cancel it. This is the zero-allocation path the simulation hot loop
// uses.
func (q *Queue) ScheduleFn(at Ticks, prio int32, h Handler, arg uint64) {
	if at < q.now && !q.relaxed {
		panic("sim: event scheduled in the past")
	}
	var e *Event
	if n := len(q.free); n > 0 {
		e = q.free[n-1]
		q.free[n-1] = nil
		q.free = q.free[:n-1]
		*e = Event{At: at, Prio: prio, h: h, arg: arg, seq: q.nextSeq, index: -1, pooled: true}
		q.stats.Recycled++
	} else {
		e = &Event{At: at, Prio: prio, h: h, arg: arg, seq: q.nextSeq, index: -1, pooled: true}
	}
	q.nextSeq++
	q.stats.Scheduled++
	q.push(e)
}

// Cancel removes a pending event. It is a no-op if the event already
// fired or was cancelled.
func (q *Queue) Cancel(e *Event) {
	if e == nil || e.index < 0 {
		return
	}
	q.remove(e.index)
}

// Reschedule moves a pending event to a new time (or re-inserts a fired
// one).
func (q *Queue) Reschedule(e *Event, at Ticks) {
	if at < q.now && !q.relaxed {
		panic("sim: event rescheduled into the past")
	}
	if e.index >= 0 {
		q.remove(e.index)
	}
	e.At = at
	e.seq = q.nextSeq
	q.nextSeq++
	q.push(e)
}

// PeekAt returns the time of the earliest pending event without
// dispatching it. ok is false when the queue is empty.
func (q *Queue) PeekAt() (at Ticks, ok bool) {
	if len(q.heap) == 0 {
		return 0, false
	}
	return q.heap[0].At, true
}

// dispatch pops and fires the head event. Pooled events are recycled
// onto the free list before their handler runs, so a handler that
// immediately reschedules reuses the very event that woke it.
func (q *Queue) dispatch() {
	e := q.heap[0]
	q.remove(0)
	q.now = e.At
	q.stats.Fired++
	if e.pooled {
		at, h, arg := e.At, e.h, e.arg
		e.h = nil
		q.free = append(q.free, e)
		h.HandleEvent(at, arg)
		return
	}
	e.Fn(e.At)
}

// Step dispatches the earliest event. It returns false when the queue is
// empty.
func (q *Queue) Step() bool {
	if len(q.heap) == 0 {
		return false
	}
	q.dispatch()
	return true
}

// StepBatch dispatches every event scheduled at the earliest pending
// tick and returns how many fired (0 when the queue is empty). The run
// loop uses it to batch same-tick dispatches: one PeekAt per tick
// instead of a full Step round-trip per event, and the common
// same-tick cascade (a handler scheduling more work at the current
// time) stays inside the loop.
func (q *Queue) StepBatch() int {
	if len(q.heap) == 0 {
		return 0
	}
	at := q.heap[0].At
	n := 0
	for len(q.heap) > 0 && q.heap[0].At == at {
		q.dispatch()
		n++
	}
	return n
}

// Run dispatches events until the queue is empty or until limit events
// have fired (limit <= 0 means no limit). It returns the number of
// events dispatched.
func (q *Queue) Run(limit int) int {
	n := 0
	for limit <= 0 || n < limit {
		if !q.Step() {
			break
		}
		n++
	}
	return n
}

// less orders events by (At, Prio, seq).
func less(a, b *Event) bool {
	if a.At != b.At {
		return a.At < b.At
	}
	if a.Prio != b.Prio {
		return a.Prio < b.Prio
	}
	return a.seq < b.seq
}

func (q *Queue) push(e *Event) {
	e.index = len(q.heap)
	q.heap = append(q.heap, e)
	q.up(e.index)
}

// remove unlinks heap[i] and clears its index so that no caller can
// forget to: a stale index on a fired or cancelled event would make a
// later Cancel silently corrupt the heap.
func (q *Queue) remove(i int) {
	e := q.heap[i]
	n := len(q.heap) - 1
	if i != n {
		q.swap(i, n)
		q.heap[n] = nil
		q.heap = q.heap[:n]
		if !q.down(i) {
			q.up(i)
		}
	} else {
		q.heap[n] = nil
		q.heap = q.heap[:n]
	}
	e.index = -1
}

func (q *Queue) swap(i, j int) {
	q.heap[i], q.heap[j] = q.heap[j], q.heap[i]
	q.heap[i].index = i
	q.heap[j].index = j
}

// arity is the heap branching factor. Four children per node means a
// sift traverses half the levels of a binary heap; with children
// adjacent in one slice region, the extra comparisons per level hit
// the same cache lines the first child already pulled in.
const arity = 4

func (q *Queue) up(i int) {
	for i > 0 {
		parent := (i - 1) / arity
		if !less(q.heap[i], q.heap[parent]) {
			break
		}
		q.swap(i, parent)
		i = parent
	}
}

func (q *Queue) down(i int) bool {
	moved := false
	n := len(q.heap)
	for {
		first := arity*i + 1
		if first >= n {
			break
		}
		last := first + arity
		if last > n {
			last = n
		}
		m := first
		for c := first + 1; c < last; c++ {
			if less(q.heap[c], q.heap[m]) {
				m = c
			}
		}
		if !less(q.heap[m], q.heap[i]) {
			break
		}
		q.swap(i, m)
		i = m
		moved = true
	}
	return moved
}
