package sim

// Event is a scheduled callback. Events fire in (At, Prio, Seq) order,
// which makes simulations deterministic regardless of insertion order:
// Seq is assigned monotonically by the queue at insertion.
type Event struct {
	At   Ticks
	Prio int32 // lower fires first among equal times (e.g. node id)
	Fn   func(now Ticks)

	seq   uint64
	index int // heap index, -1 when not queued
}

// Queue is a deterministic event queue (binary heap).
type Queue struct {
	heap    []*Event
	nextSeq uint64
	now     Ticks
}

// NewQueue returns an empty event queue at time zero.
func NewQueue() *Queue { return &Queue{} }

// Now returns the time of the most recently dispatched event.
func (q *Queue) Now() Ticks { return q.now }

// Len returns the number of pending events.
func (q *Queue) Len() int { return len(q.heap) }

// Schedule enqueues fn to run at time at with priority prio. Scheduling
// in the past (at < Now) is a programming error and panics: it would
// silently break causality in the contention models.
func (q *Queue) Schedule(at Ticks, prio int32, fn func(now Ticks)) *Event {
	if at < q.now {
		panic("sim: event scheduled in the past")
	}
	e := &Event{At: at, Prio: prio, Fn: fn, seq: q.nextSeq, index: -1}
	q.nextSeq++
	q.push(e)
	return e
}

// Cancel removes a pending event. It is a no-op if the event already
// fired or was cancelled.
func (q *Queue) Cancel(e *Event) {
	if e == nil || e.index < 0 {
		return
	}
	q.remove(e.index)
	e.index = -1
}

// Reschedule moves a pending event to a new time (or re-inserts a fired
// one).
func (q *Queue) Reschedule(e *Event, at Ticks) {
	if at < q.now {
		panic("sim: event rescheduled into the past")
	}
	if e.index >= 0 {
		q.remove(e.index)
	}
	e.At = at
	e.seq = q.nextSeq
	q.nextSeq++
	q.push(e)
}

// Step dispatches the earliest event. It returns false when the queue is
// empty.
func (q *Queue) Step() bool {
	if len(q.heap) == 0 {
		return false
	}
	e := q.heap[0]
	q.remove(0)
	e.index = -1
	q.now = e.At
	e.Fn(e.At)
	return true
}

// Run dispatches events until the queue is empty or until limit events
// have fired (limit <= 0 means no limit). It returns the number of
// events dispatched.
func (q *Queue) Run(limit int) int {
	n := 0
	for limit <= 0 || n < limit {
		if !q.Step() {
			break
		}
		n++
	}
	return n
}

// less orders events by (At, Prio, seq).
func less(a, b *Event) bool {
	if a.At != b.At {
		return a.At < b.At
	}
	if a.Prio != b.Prio {
		return a.Prio < b.Prio
	}
	return a.seq < b.seq
}

func (q *Queue) push(e *Event) {
	e.index = len(q.heap)
	q.heap = append(q.heap, e)
	q.up(e.index)
}

func (q *Queue) remove(i int) {
	n := len(q.heap) - 1
	if i != n {
		q.swap(i, n)
		q.heap = q.heap[:n]
		if !q.down(i) {
			q.up(i)
		}
	} else {
		q.heap = q.heap[:n]
	}
}

func (q *Queue) swap(i, j int) {
	q.heap[i], q.heap[j] = q.heap[j], q.heap[i]
	q.heap[i].index = i
	q.heap[j].index = j
}

func (q *Queue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !less(q.heap[i], q.heap[parent]) {
			break
		}
		q.swap(i, parent)
		i = parent
	}
}

func (q *Queue) down(i int) bool {
	moved := false
	n := len(q.heap)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && less(q.heap[r], q.heap[l]) {
			m = r
		}
		if !less(q.heap[m], q.heap[i]) {
			break
		}
		q.swap(i, m)
		i = m
		moved = true
	}
	return moved
}
