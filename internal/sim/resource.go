package sim

// The resource types below model contention by reservation: a request
// arriving at time t for a busy resource is granted at the resource's
// next free time. Reservations must be made in nondecreasing request
// order for queueing delays to be exact; the machine run loop guarantees
// this by dispatching all shared-resource activity through the event
// queue. (A reservation arriving "in the past" relative to the
// resource's horizon is still served FIFO at the horizon, which is the
// standard approximation in reservation-based simulators.)

// Server is a single-ported resource: one request at a time, each
// occupying the server for a caller-supplied duration.
//
// Reservations are interval-based rather than horizon-based: a request
// arriving at time t is scheduled into the earliest gap of sufficient
// length at or after t. This matters because processors issue whole
// transactions synchronously — a transaction whose issue time was
// deferred far into the future (a full MSHR ladder) reserves resources
// at that future time, and with a single next-free horizon one such
// reservation would block every earlier request behind it, amplifying
// queueing without bound. Gap backfill keeps service work-conserving
// under the bounded causality skew of the run loop.
type Server struct {
	Name string

	// busy holds reserved [start, end) intervals, sorted by start.
	// Old intervals are pruned as the reservation frontier advances.
	busy   []interval
	busyT  Ticks  // total occupied time
	uses   uint64 // number of reservations
	waited Ticks  // total queueing delay imposed
	maxQ   Ticks  // maximum single queueing delay
}

type interval struct{ start, end Ticks }

// maxIntervals bounds the reservation bookkeeping; when exceeded the
// oldest intervals are merged away (they are in the causal past).
const maxIntervals = 48

// schedule finds the earliest service start >= t for dur given the busy
// list (without mutating).
func (s *Server) schedule(t, dur Ticks) Ticks {
	start := t
	for _, iv := range s.busy {
		if start+dur <= iv.start {
			break
		}
		if start < iv.end {
			start = iv.end
		}
	}
	return start
}

// Acquire reserves the server at or after time t for dur. It returns the
// start time of service (>= t) and the completion time.
func (s *Server) Acquire(t, dur Ticks) (start, done Ticks) {
	start = s.schedule(t, dur)
	wait := start - t
	s.waited += wait
	if wait > s.maxQ {
		s.maxQ = wait
	}
	done = start + dur
	s.insert(interval{start, done})
	s.busyT += dur
	s.uses++
	return start, done
}

// insert adds iv keeping the list sorted and bounded.
func (s *Server) insert(iv interval) {
	i := len(s.busy)
	for i > 0 && s.busy[i-1].start > iv.start {
		i--
	}
	s.busy = append(s.busy, interval{})
	copy(s.busy[i+1:], s.busy[i:])
	s.busy[i] = iv
	if len(s.busy) > maxIntervals {
		// Merge the two oldest intervals (pessimistically bridging
		// the gap between them; they are in the causal past).
		s.busy[1].start = s.busy[0].start
		if s.busy[0].end > s.busy[1].end {
			s.busy[1].end = s.busy[0].end
		}
		s.busy = s.busy[1:]
	}
}

// Peek returns the earliest time a request arriving at t could begin
// service, without reserving (assuming a zero-length probe).
func (s *Server) Peek(t Ticks) Ticks { return s.schedule(t, 1) }

// Reset clears reservation state and statistics.
func (s *Server) Reset() { *s = Server{Name: s.Name} }

// Stats describes accumulated utilization of a resource.
type Stats struct {
	Uses    uint64
	Busy    Ticks
	Waited  Ticks
	MaxWait Ticks
}

// Stats returns the server's accumulated utilization counters.
func (s *Server) Stats() Stats {
	return Stats{Uses: s.uses, Busy: s.busyT, Waited: s.waited, MaxWait: s.maxQ}
}

// Utilization returns busy time as a fraction of the elapsed time span.
func (s *Server) Utilization(span Ticks) float64 {
	if span == 0 {
		return 0
	}
	return float64(s.busyT) / float64(span)
}

// Pipe is a pipelined resource: a new request can start every II ticks
// (initiation interval) but each takes Latency ticks to complete. A
// Server is the special case II == Latency.
type Pipe struct {
	Name    string
	II      Ticks
	Latency Ticks

	nextStart Ticks
	uses      uint64
	waited    Ticks
}

// Acquire reserves an issue slot at or after t. It returns the slot time
// and the completion time (slot + Latency).
func (p *Pipe) Acquire(t Ticks) (start, done Ticks) {
	start = t
	if p.nextStart > start {
		start = p.nextStart
	}
	p.waited += start - t
	p.nextStart = start + p.II
	p.uses++
	return start, start + p.Latency
}

// Reset clears reservation state.
func (p *Pipe) Reset() { p.nextStart, p.uses, p.waited = 0, 0, 0 }

// Stats returns the pipe's utilization counters.
func (p *Pipe) Stats() Stats {
	return Stats{Uses: p.uses, Busy: Ticks(p.uses) * p.II, Waited: p.waited}
}

// Banks is a set of independently contended servers addressed by an
// interleaving function, modeling e.g. DRAM banks interleaved by cache
// line.
type Banks struct {
	Name  string
	banks []Server
}

// NewBanks creates n banks.
func NewBanks(name string, n int) *Banks {
	b := &Banks{Name: name, banks: make([]Server, n)}
	for i := range b.banks {
		b.banks[i].Name = name
	}
	return b
}

// N returns the number of banks.
func (b *Banks) N() int { return len(b.banks) }

// Acquire reserves bank (idx mod n) at or after t for dur.
func (b *Banks) Acquire(idx uint64, t, dur Ticks) (start, done Ticks) {
	return b.banks[idx%uint64(len(b.banks))].Acquire(t, dur)
}

// Reset clears all banks.
func (b *Banks) Reset() {
	for i := range b.banks {
		b.banks[i].Reset()
	}
}

// Stats sums utilization across banks.
func (b *Banks) Stats() Stats {
	var s Stats
	for i := range b.banks {
		bs := b.banks[i].Stats()
		s.Uses += bs.Uses
		s.Busy += bs.Busy
		s.Waited += bs.Waited
		if bs.MaxWait > s.MaxWait {
			s.MaxWait = bs.MaxWait
		}
	}
	return s
}
