// Package sim provides the discrete-event simulation substrate shared by
// every simulator in the study: a common time base, an event queue with
// deterministic ordering, and contention-modeling resources (servers,
// pipelines, and banked servers).
//
// The time base is chosen so that every clock in the FLASH system is an
// integral number of ticks: 1 tick = 1/900 GHz ≈ 1.111 ns. The 150 MHz
// R10000 is 6 ticks/cycle, the 225 and 300 MHz "sped up" Mipsy models are
// 4 and 3 ticks/cycle, and the 75 MHz MAGIC/system clock is 12
// ticks/cycle. Network and DRAM latencies quoted in nanoseconds convert
// exactly (50 ns = 45 ticks, 140 ns = 126 ticks).
package sim

import "fmt"

// Ticks is the simulation time unit: 1 tick = 1/900 GHz.
type Ticks uint64

// TickHz is the frequency of the simulation time base.
const TickHz = 900_000_000

// Forever is a time later than any reachable simulation time. It is used
// as the wake-up time of entities that are blocked (e.g. at a barrier).
const Forever = Ticks(1) << 62

// NS converts nanoseconds to ticks (0.9 ticks per ns), rounding to
// nearest. Latencies quoted in the FLASH documentation are multiples of
// 10/9 ns and convert exactly.
func NS(ns float64) Ticks {
	t := ns*0.9 + 0.5
	if t < 0 {
		return 0
	}
	return Ticks(t)
}

// ToNS converts ticks back to nanoseconds.
func ToNS(t Ticks) float64 { return float64(t) / 0.9 }

// Clock describes a synchronous clock domain derived from the tick base.
type Clock struct {
	// HzMHz is the nominal frequency in MHz, for display.
	HzMHz int
	// Period is the number of ticks per cycle of this clock.
	Period Ticks
}

// NewClock builds a clock for a frequency that divides the tick base
// exactly. It panics for frequencies that do not divide 900 MHz, because
// a non-integral period would accumulate drift between the processor and
// system clock domains.
func NewClock(mhz int) Clock {
	if mhz <= 0 || 900%mhz != 0 {
		panic(fmt.Sprintf("sim: clock %d MHz does not divide the 900 MHz tick base", mhz))
	}
	return Clock{HzMHz: mhz, Period: Ticks(900 / mhz)}
}

// Cycles converts a cycle count of this clock into ticks.
func (c Clock) Cycles(n uint64) Ticks { return Ticks(n) * c.Period }

// ToCycles converts ticks into (truncated) cycles of this clock.
func (c Clock) ToCycles(t Ticks) uint64 { return uint64(t / c.Period) }

// Align rounds t up to the next edge of this clock.
func (c Clock) Align(t Ticks) Ticks {
	r := t % c.Period
	if r == 0 {
		return t
	}
	return t + c.Period - r
}

// Common clocks in the study.
var (
	// Clock150 is the FLASH hardware R10000 clock.
	Clock150 = NewClock(150)
	// Clock225 is the "1.5x" Mipsy speedup used to compensate for ILP.
	Clock225 = NewClock(225)
	// Clock300 is the "2x" Mipsy speedup.
	Clock300 = NewClock(300)
	// Clock75 is the MAGIC node controller / system clock.
	Clock75 = NewClock(75)
)
