package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNSConversion(t *testing.T) {
	cases := []struct {
		ns   float64
		want Ticks
	}{
		{0, 0}, {50, 45}, {140, 126}, {1000, 900}, {10, 9},
	}
	for _, c := range cases {
		if got := NS(c.ns); got != c.want {
			t.Errorf("NS(%v) = %d, want %d", c.ns, got, c.want)
		}
	}
}

func TestToNSRoundTrip(t *testing.T) {
	for _, ns := range []float64{10, 50, 140, 1000, 12345} {
		back := ToNS(NS(ns))
		if back < ns-1.2 || back > ns+1.2 {
			t.Errorf("round trip %v -> %v", ns, back)
		}
	}
}

func TestClockPeriods(t *testing.T) {
	cases := []struct {
		mhz    int
		period Ticks
	}{
		{150, 6}, {225, 4}, {300, 3}, {75, 12}, {900, 1}, {450, 2},
	}
	for _, c := range cases {
		clk := NewClock(c.mhz)
		if clk.Period != c.period {
			t.Errorf("clock %d MHz period = %d, want %d", c.mhz, clk.Period, c.period)
		}
	}
}

func TestClockRejectsNonDivisor(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 133 MHz")
		}
	}()
	NewClock(133)
}

func TestClockCycles(t *testing.T) {
	if got := Clock150.Cycles(10); got != 60 {
		t.Errorf("150MHz 10 cycles = %d ticks, want 60", got)
	}
	if got := Clock75.ToCycles(120); got != 10 {
		t.Errorf("75MHz 120 ticks = %d cycles, want 10", got)
	}
}

func TestClockAlign(t *testing.T) {
	c := Clock150 // period 6
	cases := []struct{ in, want Ticks }{{0, 0}, {1, 6}, {5, 6}, {6, 6}, {7, 12}}
	for _, cse := range cases {
		if got := c.Align(cse.in); got != cse.want {
			t.Errorf("Align(%d) = %d, want %d", cse.in, got, cse.want)
		}
	}
}

func TestQueueFiresInTimeOrder(t *testing.T) {
	q := NewQueue()
	var fired []Ticks
	for _, at := range []Ticks{50, 10, 30, 10, 20} {
		at := at
		q.Schedule(at, 0, func(now Ticks) { fired = append(fired, now) })
	}
	q.Run(0)
	want := []Ticks{10, 10, 20, 30, 50}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired %v, want %v", fired, want)
		}
	}
}

func TestQueuePriorityBreaksTies(t *testing.T) {
	q := NewQueue()
	var order []int32
	for _, p := range []int32{3, 1, 2} {
		p := p
		q.Schedule(100, p, func(Ticks) { order = append(order, p) })
	}
	q.Run(0)
	if order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("tie order %v, want [1 2 3]", order)
	}
}

func TestQueueSeqBreaksRemainingTies(t *testing.T) {
	q := NewQueue()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		q.Schedule(7, 0, func(Ticks) { order = append(order, i) })
	}
	q.Run(0)
	for i := range order {
		if order[i] != i {
			t.Fatalf("insertion order not preserved: %v", order)
		}
	}
}

func TestQueueRejectsPastEvents(t *testing.T) {
	q := NewQueue()
	q.Schedule(100, 0, func(Ticks) {})
	q.Step()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling into the past")
		}
	}()
	q.Schedule(50, 0, func(Ticks) {})
}

func TestQueueCancel(t *testing.T) {
	q := NewQueue()
	fired := false
	e := q.Schedule(10, 0, func(Ticks) { fired = true })
	q.Cancel(e)
	q.Run(0)
	if fired {
		t.Fatal("cancelled event fired")
	}
	// Cancelling twice is a no-op.
	q.Cancel(e)
}

func TestQueueReschedule(t *testing.T) {
	q := NewQueue()
	var at Ticks
	e := q.Schedule(10, 0, func(now Ticks) { at = now })
	q.Reschedule(e, 99)
	q.Run(0)
	if at != 99 {
		t.Fatalf("rescheduled event fired at %d, want 99", at)
	}
}

func TestQueueSchedulingDuringDispatch(t *testing.T) {
	q := NewQueue()
	var fired []Ticks
	q.Schedule(1, 0, func(now Ticks) {
		fired = append(fired, now)
		q.Schedule(now+5, 0, func(n2 Ticks) { fired = append(fired, n2) })
	})
	q.Run(0)
	if len(fired) != 2 || fired[1] != 6 {
		t.Fatalf("chained scheduling: %v", fired)
	}
}

// TestQueueOrderProperty: random schedules always dispatch in
// nondecreasing time order.
func TestQueueOrderProperty(t *testing.T) {
	f := func(times []uint16) bool {
		q := NewQueue()
		var fired []Ticks
		for _, x := range times {
			q.Schedule(Ticks(x), 0, func(now Ticks) { fired = append(fired, now) })
		}
		q.Run(0)
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(times)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestServerSerializes(t *testing.T) {
	var s Server
	_, d1 := s.Acquire(0, 10)
	if d1 != 10 {
		t.Fatalf("first acquire done = %d", d1)
	}
	start2, d2 := s.Acquire(5, 10)
	if start2 != 10 || d2 != 20 {
		t.Fatalf("second acquire = (%d,%d), want (10,20)", start2, d2)
	}
}

func TestServerBackfillsGaps(t *testing.T) {
	var s Server
	// Far-future reservation must not block an earlier request.
	s.Acquire(1000, 50)
	start, done := s.Acquire(10, 20)
	if start != 10 || done != 30 {
		t.Fatalf("early request blocked by future reservation: (%d,%d)", start, done)
	}
	// But a request that does not fit the gap is pushed past it.
	start, _ = s.Acquire(995, 50)
	if start < 1050 {
		t.Fatalf("overlapping request not serialized: start=%d", start)
	}
}

// TestServerNoOverlapProperty: random acquires never overlap in service
// time.
func TestServerNoOverlapProperty(t *testing.T) {
	f := func(reqs []struct {
		T   uint16
		Dur uint8
	}) bool {
		var s Server
		type iv struct{ a, b Ticks }
		var ivs []iv
		for _, r := range reqs {
			dur := Ticks(r.Dur%32) + 1
			start, done := s.Acquire(Ticks(r.T), dur)
			if start < Ticks(r.T) || done != start+dur {
				return false
			}
			ivs = append(ivs, iv{start, done})
		}
		for i := range ivs {
			for j := i + 1; j < len(ivs); j++ {
				if ivs[i].a < ivs[j].b && ivs[j].a < ivs[i].b {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestServerStats(t *testing.T) {
	var s Server
	s.Acquire(0, 10)
	s.Acquire(0, 10)
	st := s.Stats()
	if st.Uses != 2 || st.Busy != 20 || st.Waited != 10 || st.MaxWait != 10 {
		t.Fatalf("stats %+v", st)
	}
	if u := s.Utilization(40); u != 0.5 {
		t.Fatalf("utilization = %f", u)
	}
}

func TestServerPeek(t *testing.T) {
	var s Server
	s.Acquire(10, 10)
	if got := s.Peek(15); got != 20 {
		t.Fatalf("peek inside busy = %d, want 20", got)
	}
	if got := s.Peek(30); got != 30 {
		t.Fatalf("peek after busy = %d, want 30", got)
	}
	if st := s.Stats(); st.Uses != 1 {
		t.Fatal("peek must not reserve")
	}
}

func TestServerIntervalPruning(t *testing.T) {
	var s Server
	for i := 0; i < maxIntervals*4; i++ {
		s.Acquire(Ticks(i*100), 10)
	}
	if len(s.busy) > maxIntervals {
		t.Fatalf("interval list grew to %d", len(s.busy))
	}
}

func TestPipeInitiationInterval(t *testing.T) {
	p := Pipe{II: 2, Latency: 10}
	s1, d1 := p.Acquire(0)
	s2, d2 := p.Acquire(0)
	if s1 != 0 || d1 != 10 || s2 != 2 || d2 != 12 {
		t.Fatalf("pipe: (%d,%d) (%d,%d)", s1, d1, s2, d2)
	}
}

func TestBanksIndependentContention(t *testing.T) {
	b := NewBanks("m", 2)
	_, d0 := b.Acquire(0, 0, 10)
	_, d1 := b.Acquire(1, 0, 10)
	_, d2 := b.Acquire(2, 0, 10) // same bank as 0
	if d0 != 10 || d1 != 10 {
		t.Fatalf("different banks should not contend: %d %d", d0, d1)
	}
	if d2 != 20 {
		t.Fatalf("same bank should serialize: %d", d2)
	}
	if b.N() != 2 {
		t.Fatal("bank count")
	}
}

func TestBanksReset(t *testing.T) {
	b := NewBanks("m", 2)
	b.Acquire(0, 0, 10)
	b.Reset()
	if st := b.Stats(); st.Uses != 0 {
		t.Fatalf("reset did not clear stats: %+v", st)
	}
	_, d := b.Acquire(0, 0, 10)
	if d != 10 {
		t.Fatal("reset did not clear reservations")
	}
}
