package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// countHandler is an allocation-free Handler for queue tests.
type countHandler struct {
	fired []uint64
}

func (h *countHandler) HandleEvent(now Ticks, arg uint64) { h.fired = append(h.fired, arg) }

func TestScheduleFnDispatchesWithArg(t *testing.T) {
	q := NewQueue()
	h := &countHandler{}
	q.ScheduleFn(20, 0, h, 42)
	q.ScheduleFn(10, 0, h, 7)
	q.Run(0)
	if len(h.fired) != 2 || h.fired[0] != 7 || h.fired[1] != 42 {
		t.Fatalf("fired %v, want [7 42]", h.fired)
	}
}

func TestScheduleFnInterleavesWithClosures(t *testing.T) {
	q := NewQueue()
	h := &countHandler{}
	var order []string
	q.Schedule(5, 0, func(Ticks) { order = append(order, "closure") })
	q.ScheduleFn(5, 1, h, 1)
	q.Schedule(3, 9, func(Ticks) { order = append(order, "early") })
	q.Run(0)
	if len(order) != 2 || order[0] != "early" || order[1] != "closure" {
		t.Fatalf("order %v", order)
	}
	if len(h.fired) != 1 {
		t.Fatalf("handler fired %v", h.fired)
	}
}

func TestScheduleFnRejectsPast(t *testing.T) {
	q := NewQueue()
	h := &countHandler{}
	q.ScheduleFn(100, 0, h, 0)
	q.Step()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling into the past")
		}
	}()
	q.ScheduleFn(50, 0, h, 0)
}

// TestScheduleFnRecyclesEvents pins the free list: a long
// schedule-fire cycle must reuse a bounded set of Event structs.
func TestScheduleFnRecyclesEvents(t *testing.T) {
	q := NewQueue()
	h := &countHandler{}
	for i := 0; i < 4; i++ {
		q.ScheduleFn(Ticks(i), 0, h, uint64(i))
	}
	for i := 0; i < 10_000; i++ {
		if !q.Step() {
			t.Fatal("queue drained early")
		}
		q.ScheduleFn(q.Now()+4, 0, h, uint64(i))
	}
	q.Run(0)
	if got := len(q.free); got > 8 {
		t.Fatalf("free list grew to %d events; recycling is broken", got)
	}
	if len(h.fired) != 10_004 {
		t.Fatalf("fired %d events, want 10004", len(h.fired))
	}
}

// TestQueueScheduleFnZeroAllocs pins the tentpole invariant: steady
// state schedule+dispatch cycling through ScheduleFn performs zero heap
// allocations.
func TestQueueScheduleFnZeroAllocs(t *testing.T) {
	q := NewQueue()
	var h Handler = &countHandler{}
	// Prime the heap and the free list to steady-state capacity.
	for i := 0; i < 64; i++ {
		q.ScheduleFn(Ticks(i), int32(i&3), h, uint64(i))
	}
	q.Run(0)
	hc := h.(*countHandler)
	avg := testing.AllocsPerRun(200, func() {
		hc.fired = hc.fired[:0]
		base := q.Now()
		for i := 0; i < 16; i++ {
			q.ScheduleFn(base+Ticks(i+1), int32(i&3), h, uint64(i))
		}
		for q.StepBatch() > 0 {
		}
	})
	if avg != 0 {
		t.Fatalf("ScheduleFn+StepBatch steady state allocates %.1f allocs/run, want 0", avg)
	}
}

// TestCancelAfterStepIsInert guards the remove-clears-index fix: a
// handle whose event already fired or was removed must never corrupt
// the heap when cancelled again.
func TestCancelAfterStepIsInert(t *testing.T) {
	q := NewQueue()
	var fired []int
	mk := func(i int) *Event {
		return q.Schedule(Ticks(10+i), 0, func(Ticks) { fired = append(fired, i) })
	}
	e0, e1, e2 := mk(0), mk(1), mk(2)
	q.Step() // fires e0
	// Cancelling a fired event must be a no-op even though two live
	// events still occupy the heap slots the fired event once used.
	q.Cancel(e0)
	q.Cancel(e1)
	q.Cancel(e1) // double-cancel: also inert
	q.Run(0)
	if len(fired) != 2 || fired[0] != 0 || fired[1] != 2 {
		t.Fatalf("fired %v, want [0 2]", fired)
	}
	if e2.index != -1 {
		t.Fatalf("fired event retains heap index %d", e2.index)
	}
}

func TestPeekAt(t *testing.T) {
	q := NewQueue()
	if _, ok := q.PeekAt(); ok {
		t.Fatal("PeekAt on empty queue reported an event")
	}
	q.Schedule(30, 0, func(Ticks) {})
	q.Schedule(10, 0, func(Ticks) {})
	if at, ok := q.PeekAt(); !ok || at != 10 {
		t.Fatalf("PeekAt = (%d,%v), want (10,true)", at, ok)
	}
	if q.Len() != 2 {
		t.Fatal("PeekAt must not dispatch")
	}
}

func TestStepBatchDispatchesWholeTick(t *testing.T) {
	q := NewQueue()
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		q.Schedule(5, int32(i), func(Ticks) { order = append(order, i) })
	}
	q.Schedule(9, 0, func(Ticks) { order = append(order, 99) })
	if n := q.StepBatch(); n != 3 {
		t.Fatalf("StepBatch dispatched %d events, want 3", n)
	}
	if len(order) != 3 {
		t.Fatalf("order %v", order)
	}
	// An event scheduled for the current tick during a batch joins it.
	q.Schedule(9, 0, func(now Ticks) {
		q.Schedule(now, 5, func(Ticks) { order = append(order, 100) })
	})
	if n := q.StepBatch(); n != 3 {
		t.Fatalf("second StepBatch dispatched %d events, want 3", n)
	}
	if q.StepBatch() != 0 {
		t.Fatal("drained queue should batch zero events")
	}
}

// TestQueueInterleavedOpsOrderProperty hammers the queue with random
// interleavings of Schedule/ScheduleFn/Cancel/Reschedule/Step and
// asserts the dispatch contract that the free-list rewrite must
// preserve: time never runs backwards, ties break by (Prio, seq) among
// co-pending events, cancelled events never fire, and everything else
// fires exactly once.
func TestQueueInterleavedOpsOrderProperty(t *testing.T) {
	type op struct {
		Kind  uint8
		DT    uint16
		Prio  int8
		Which uint8
	}
	type evKey struct {
		at   Ticks
		prio int32
		seq  uint64
	}
	f := func(ops []op) bool {
		q := NewQueue()
		var seq uint64 // shadow of the queue's insertion counter
		keys := map[uint64]evKey{}
		cancelled := map[uint64]bool{}
		var fired []uint64
		var next uint64
		type live struct {
			id uint64
			e  *Event
		}
		var handles []live // closure events still cancellable
		h := HandlerFunc(func(now Ticks, arg uint64) { fired = append(fired, arg) })

		dropFired := func(from int) {
			for _, id := range fired[from:] {
				for i := range handles {
					if handles[i].id == id {
						handles = append(handles[:i], handles[i+1:]...)
						break
					}
				}
			}
		}
		for _, o := range ops {
			switch o.Kind % 5 {
			case 0: // Schedule (closure, retainable handle)
				id := next
				next++
				at := q.Now() + Ticks(o.DT%512)
				keys[id] = evKey{at, int32(o.Prio), seq}
				seq++
				e := q.Schedule(at, int32(o.Prio), func(Ticks) { fired = append(fired, id) })
				handles = append(handles, live{id, e})
			case 1: // ScheduleFn (pooled, fire-and-forget)
				id := next
				next++
				at := q.Now() + Ticks(o.DT%512)
				keys[id] = evKey{at, int32(o.Prio), seq}
				seq++
				q.ScheduleFn(at, int32(o.Prio), h, id)
			case 2: // Cancel a live closure event
				if len(handles) > 0 {
					i := int(o.Which) % len(handles)
					q.Cancel(handles[i].e)
					cancelled[handles[i].id] = true
					handles = append(handles[:i], handles[i+1:]...)
				}
			case 3: // Reschedule a live closure event
				if len(handles) > 0 {
					i := int(o.Which) % len(handles)
					at := q.Now() + Ticks(o.DT%512)
					q.Reschedule(handles[i].e, at)
					keys[handles[i].id] = evKey{at, keys[handles[i].id].prio, seq}
					seq++
				}
			case 4: // Step a few events
				for n := 0; n < int(o.Which%4); n++ {
					before := len(fired)
					if !q.Step() {
						break
					}
					dropFired(before)
				}
			}
		}
		q.Run(0)

		seen := map[uint64]bool{}
		for i, id := range fired {
			if cancelled[id] || seen[id] {
				return false
			}
			seen[id] = true
			if i == 0 {
				continue
			}
			a, b := keys[fired[i-1]], keys[id]
			// Time is globally monotonic: everything is scheduled at or
			// after Now, so a dispatch can never precede an earlier one.
			if b.at < a.at {
				return false
			}
			if b.at == a.at {
				// Among equal-time dispatches, a priority inversion is
				// legal only for an event inserted later (it was not yet
				// pending when the earlier one won the heap).
				if b.prio < a.prio && b.seq < a.seq {
					return false
				}
				if b.prio == a.prio && b.seq < a.seq {
					return false
				}
			}
		}
		// Everything scheduled and not cancelled must have fired.
		for id := range keys {
			if !cancelled[id] && !seen[id] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(42))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// HandlerFunc adapts a func to the Handler interface (test convenience;
// production hot paths implement Handler on a long-lived receiver so
// the interface value is built once).
type HandlerFunc func(now Ticks, arg uint64)

// HandleEvent implements Handler.
func (f HandlerFunc) HandleEvent(now Ticks, arg uint64) { f(now, arg) }

// nopHandler discards events; benchmarks use it so the measurement is
// the queue alone, not the handler's bookkeeping.
type nopHandler struct{}

func (nopHandler) HandleEvent(Ticks, uint64) {}

// BenchmarkEventQueue measures the hold model — fire one event,
// schedule its successor — which is the machine run loop's steady
// state. The 0 B/op figure is the tentpole's contract.
func BenchmarkEventQueue(b *testing.B) {
	q := NewQueue()
	var h Handler = nopHandler{}
	const pending = 64
	for i := 0; i < pending; i++ {
		q.ScheduleFn(Ticks(i), int32(i&3), h, uint64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Step()
		q.ScheduleFn(q.Now()+pending, int32(i&3), h, uint64(i))
	}
}

// BenchmarkEventQueueClosure is the pre-optimization pattern, kept as
// the comparison point for the allocation trajectory in CI.
func BenchmarkEventQueueClosure(b *testing.B) {
	q := NewQueue()
	nop := func(Ticks) {}
	const pending = 64
	for i := 0; i < pending; i++ {
		q.Schedule(Ticks(i), int32(i&3), nop)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Step()
		q.Schedule(q.Now()+pending, int32(i&3), nop)
	}
}
