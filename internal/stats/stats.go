// Package stats provides the small numeric helpers the experiment
// layers share: summaries over repeated runs (mean/min/max) and
// relative-error metrics. DESIGN.md §2 lists it as the "means over
// repeats, relative-error metrics" package; core and runner use it
// instead of hand-rolling the same loops.
package stats

// Real is any ordered numeric type the helpers operate on (sim.Ticks,
// counters, float64 metrics).
type Real interface {
	~int | ~int8 | ~int16 | ~int32 | ~int64 |
		~uint | ~uint8 | ~uint16 | ~uint32 | ~uint64 | ~uintptr |
		~float32 | ~float64
}

// Sum returns the sum of xs (zero for an empty slice).
func Sum[T Real](xs []T) T {
	var s T
	for _, x := range xs {
		s += x
	}
	return s
}

// Mean returns the average of xs (zero for an empty slice). For
// integer types the division truncates, matching the repeats-average
// semantics of core.Reference ("the average of at least 5 runs").
func Mean[T Real](xs []T) T {
	if len(xs) == 0 {
		var zero T
		return zero
	}
	return Sum(xs) / T(len(xs))
}

// Min returns the smallest element of xs (zero for an empty slice).
func Min[T Real](xs []T) T {
	if len(xs) == 0 {
		var zero T
		return zero
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs (zero for an empty slice).
func Max[T Real](xs []T) T {
	if len(xs) == 0 {
		var zero T
		return zero
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// RelError returns the absolute relative error |pred-ref|/|ref| of a
// prediction against a reference value, or 0 when the reference is
// zero. RelError(rel, 1) recovers the |relative-1| form the comparison
// figures report.
func RelError(pred, ref float64) float64 {
	if ref == 0 {
		return 0
	}
	e := (pred - ref) / ref
	if e < 0 {
		return -e
	}
	return e
}
