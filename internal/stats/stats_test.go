package stats_test

import (
	"testing"

	"flashsim/internal/stats"
)

func TestSummaryHelpers(t *testing.T) {
	xs := []int64{7, 3, 11, 5}
	if got := stats.Sum(xs); got != 26 {
		t.Errorf("Sum = %d", got)
	}
	if got := stats.Mean(xs); got != 6 { // truncating, as the repeats average
		t.Errorf("Mean = %d", got)
	}
	if got := stats.Min(xs); got != 3 {
		t.Errorf("Min = %d", got)
	}
	if got := stats.Max(xs); got != 11 {
		t.Errorf("Max = %d", got)
	}
}

func TestEmptySlicesAreZero(t *testing.T) {
	var none []float64
	if stats.Sum(none) != 0 || stats.Mean(none) != 0 || stats.Min(none) != 0 || stats.Max(none) != 0 {
		t.Error("empty-slice summaries should all be zero")
	}
}

func TestFloatMean(t *testing.T) {
	if got := stats.Mean([]float64{1, 2, 6}); got != 3 {
		t.Errorf("Mean = %g", got)
	}
}

func TestRelError(t *testing.T) {
	if got := stats.RelError(110, 100); got != 0.1 {
		t.Errorf("RelError(110,100) = %g", got)
	}
	if got := stats.RelError(90, 100); got != 0.1 {
		t.Errorf("RelError(90,100) = %g", got)
	}
	if got := stats.RelError(5, 0); got != 0 {
		t.Errorf("RelError with zero reference = %g", got)
	}
	// The |relative-1| form used by the comparison figures.
	if got := stats.RelError(1.25, 1); got != 0.25 {
		t.Errorf("RelError(1.25,1) = %g", got)
	}
}
