package runner

import (
	"fmt"
	"math/rand"
	"testing"
)

// ringMembers builds n distinct replica names shaped like the real
// ones (base URLs).
func ringMembers(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("http://127.0.0.1:%d", 8100+i)
	}
	return names
}

// ringKeys builds deterministic fingerprint-shaped keys.
func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("%064x", uint64(i)*0x9e3779b97f4a7c15+1)
	}
	return keys
}

func TestRingOwnerIsAlwaysLive(t *testing.T) {
	r := NewRing(ringMembers(5), 0)
	r.SetLive("http://127.0.0.1:8102", false)
	r.SetLive("http://127.0.0.1:8104", false)
	live := map[string]bool{}
	for _, m := range r.LiveMembers() {
		live[m] = true
	}
	for _, key := range ringKeys(500) {
		for _, o := range r.Owners(key, 3) {
			if !live[o] {
				t.Fatalf("key %s owned by down member %s", key, o)
			}
		}
	}
}

func TestRingOwnersDistinctAndBounded(t *testing.T) {
	r := NewRing(ringMembers(3), 0)
	for _, key := range ringKeys(200) {
		owners := r.Owners(key, 5)
		if len(owners) != 3 {
			t.Fatalf("asked for 5 owners of %d live members, got %d", 3, len(owners))
		}
		seen := map[string]bool{}
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("duplicate owner %s for key %s", o, key)
			}
			seen[o] = true
		}
	}
}

// TestRingConstructionOrderInsensitive pins the "stable across process
// restarts" property: ownership must be a pure function of the member
// set, not of slice order or map iteration. Ten shuffled constructions
// must agree on every key.
func TestRingConstructionOrderInsensitive(t *testing.T) {
	members := ringMembers(7)
	keys := ringKeys(300)
	ref := NewRing(members, 0)
	want := make([]string, len(keys))
	for i, k := range keys {
		want[i] = ref.Owner(k)
	}
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 10; trial++ {
		shuffled := append([]string(nil), members...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		r := NewRing(shuffled, 0)
		for i, k := range keys {
			if got := r.Owner(k); got != want[i] {
				t.Fatalf("trial %d: key %s owner %s, reference says %s", trial, k, got, want[i])
			}
		}
	}
}

// TestRingRemovalRemapsOnlyDepartedKeys pins the consistency property:
// taking one of N members down must remap exactly the keys that member
// owned — every other key keeps its owner — and the remapped share must
// be in the ~1/N ballpark, not a wholesale reshuffle.
func TestRingRemovalRemapsOnlyDepartedKeys(t *testing.T) {
	const n = 5
	members := ringMembers(n)
	keys := ringKeys(2000)
	r := NewRing(members, 0)
	before := make([]string, len(keys))
	for i, k := range keys {
		before[i] = r.Owner(k)
	}
	victim := members[2]
	r.SetLive(victim, false)
	moved := 0
	for i, k := range keys {
		after := r.Owner(k)
		if before[i] == victim {
			if after == victim {
				t.Fatalf("key %s still owned by down member", k)
			}
			moved++
			continue
		}
		if after != before[i] {
			t.Fatalf("key %s moved %s -> %s though its owner stayed live", k, before[i], after)
		}
	}
	// The down member owned roughly 1/N of the keys; allow a generous
	// 2x spread for vnode placement variance.
	if max := 2 * len(keys) / n; moved > max {
		t.Fatalf("removal remapped %d of %d keys (> %d, ~2/N)", moved, len(keys), max)
	}
	if moved == 0 {
		t.Fatalf("removal remapped nothing; the victim owned no keys, which vnodes should make implausible")
	}
	// Restoring the member restores the exact prior ownership.
	r.SetLive(victim, true)
	for i, k := range keys {
		if got := r.Owner(k); got != before[i] {
			t.Fatalf("after restore, key %s owner %s, want %s", k, got, before[i])
		}
	}
}

func TestRingEmptyAndSingle(t *testing.T) {
	r := NewRing(nil, 0)
	if got := r.Owner("abc"); got != "" {
		t.Fatalf("empty ring owner = %q, want empty", got)
	}
	if got := r.Owners("abc", 3); got != nil {
		t.Fatalf("empty ring owners = %v, want nil", got)
	}
	one := NewRing([]string{"http://a"}, 0)
	for _, k := range ringKeys(50) {
		if got := one.Owner(k); got != "http://a" {
			t.Fatalf("single-member ring owner = %q", got)
		}
	}
	// All members down behaves like an empty ring.
	one.SetLive("http://a", false)
	if got := one.Owner("abc"); got != "" {
		t.Fatalf("all-down ring owner = %q, want empty", got)
	}
}

func TestRingDedupesAndIgnoresUnknown(t *testing.T) {
	r := NewRing([]string{"http://a", "http://b", "http://a", ""}, 0)
	if got := len(r.Members()); got != 2 {
		t.Fatalf("members = %v, want 2 distinct", r.Members())
	}
	if r.SetLive("http://nope", false) {
		t.Fatal("SetLive on unknown member reported a change")
	}
	if r.SetLive("http://a", true) {
		t.Fatal("SetLive to the current state reported a change")
	}
	if !r.SetLive("http://a", false) {
		t.Fatal("SetLive flipping a member down reported no change")
	}
}

// FuzzRing checks the core invariants on arbitrary membership/key
// inputs: owners are live members, distinct, capped by the live count,
// and construction-order independent.
func FuzzRing(f *testing.F) {
	f.Add("a,b,c", "deadbeef", uint8(2), uint8(3))
	f.Add("x", "k", uint8(0), uint8(1))
	f.Add("n0,n1,n2,n3,n4,n5,n6,n7", "0123456789abcdef", uint8(5), uint8(4))
	f.Fuzz(func(t *testing.T, memberCSV, key string, downMask, nOwners uint8) {
		var members []string
		start := 0
		for i := 0; i <= len(memberCSV); i++ {
			if i == len(memberCSV) || memberCSV[i] == ',' {
				if i > start {
					members = append(members, memberCSV[start:i])
				}
				start = i + 1
			}
		}
		if len(members) > 8 {
			members = members[:8]
		}
		r := NewRing(members, 8)
		canonical := r.Members()
		for i, m := range canonical {
			if downMask&(1<<uint(i)) != 0 {
				r.SetLive(m, false)
			}
		}
		live := map[string]bool{}
		for _, m := range r.LiveMembers() {
			live[m] = true
		}
		n := int(nOwners % 9)
		owners := r.Owners(key, n)
		if n == 0 && owners != nil {
			t.Fatalf("Owners(key, 0) = %v, want nil", owners)
		}
		want := n
		if len(live) < want {
			want = len(live)
		}
		if n > 0 && len(owners) != want {
			t.Fatalf("got %d owners, want %d (live %d, asked %d)", len(owners), want, len(live), n)
		}
		seen := map[string]bool{}
		for _, o := range owners {
			if !live[o] {
				t.Fatalf("owner %q is not live", o)
			}
			if seen[o] {
				t.Fatalf("duplicate owner %q", o)
			}
			seen[o] = true
		}
		// Rebuild from reversed member order with the same down set:
		// ownership must be identical.
		rev := make([]string, len(members))
		for i, m := range members {
			rev[len(members)-1-i] = m
		}
		r2 := NewRing(rev, 8)
		for i, m := range canonical {
			if downMask&(1<<uint(i)) != 0 {
				r2.SetLive(m, false)
			}
		}
		owners2 := r2.Owners(key, n)
		if len(owners) != len(owners2) {
			t.Fatalf("order-dependent owner count: %v vs %v", owners, owners2)
		}
		for i := range owners {
			if owners[i] != owners2[i] {
				t.Fatalf("order-dependent ownership: %v vs %v", owners, owners2)
			}
		}
	})
}
