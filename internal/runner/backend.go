package runner

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sync"

	"flashsim/internal/machine"
)

// Backend is the memo-store seam of the run pool: anything that can
// answer "have we computed this fingerprint before?" and remember a
// fresh result. The pool treats a Backend exactly as it always treated
// *Store — Get before simulating, Put after — so every execution mode
// that worked against the in-process store works unchanged against any
// other backend.
//
// Three implementations ship with the tree, forming the distribution
// ladder of the serving tier:
//
//   - *Store: the in-process LRU (optionally write-through to a
//     private -cache-dir). The single-process default; one replica of
//     flashd with this backend is bit-identical to the daemon before
//     the seam existed.
//   - *DiskBackend: a shared on-disk store. No in-memory cache, every
//     Get reads the directory — so several processes (or several flashd
//     replicas on one host) can share a cache directory and observe
//     each other's writes immediately.
//   - *DistStore: the multi-replica wrapper — a local Backend fronted
//     by a consistent-hash ring of remote peers (each reached through a
//     PeerStore, in practice flashd's /v1/store API), with hedged
//     fetches, health-fed membership, read-through fill, and
//     write-back.
//
// Backends must be safe for concurrent use, and a Get that cannot
// produce a complete, correct result must report a miss — the caller
// recomputes, which is always sound. A backend never returns a partial
// or corrupt result.
type Backend interface {
	Get(key string) (machine.Result, bool)
	Put(key string, res machine.Result)
}

var (
	_ Backend = (*Store)(nil)
	_ Backend = (*DiskBackend)(nil)
	_ Backend = (*DistStore)(nil)
)

// DiskBackend is the shared on-disk memo store: one JSON file per
// fingerprint in the same <key>.json layout *Store persists (the
// -cache-dir format), but with no in-memory copy, so every Get re-reads
// the directory and sees writes made by other processes sharing it.
//
// Concurrent handles on one directory are safe: writes land via
// temp-file + rename, so a reader observes either the complete previous
// entry, the complete new one, or (before any write) a miss — never a
// partial file. Concurrent Puts of one key race benignly; both bodies
// decode to the same result, whichever rename lands last wins.
type DiskBackend struct {
	dir string

	mu  sync.Mutex
	err error
}

// NewDiskBackend returns a shared store rooted at dir, creating it if
// missing.
func NewDiskBackend(dir string) (*DiskBackend, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &DiskBackend{dir: dir}, nil
}

// Dir returns the shared directory.
func (b *DiskBackend) Dir() string { return b.dir }

func (b *DiskBackend) path(key string) string {
	return filepath.Join(b.dir, key+".json")
}

// Get reads the entry for key from disk. Any unreadable or undecodable
// entry — missing, truncated by a crashed writer of a non-atomic
// filesystem, or written by an incompatible build — is a miss: the run
// is recomputed and rewritten, never served partially.
func (b *DiskBackend) Get(key string) (machine.Result, bool) {
	data, err := os.ReadFile(b.path(key))
	if err != nil {
		return machine.Result{}, false
	}
	var res machine.Result
	if err := json.Unmarshal(data, &res); err != nil {
		return machine.Result{}, false
	}
	return res, true
}

// Put persists res under key atomically (temp file + rename). The
// first I/O error is retained (Err) and later Puts keep trying.
func (b *DiskBackend) Put(key string, res machine.Result) {
	data, err := json.Marshal(res)
	if err == nil {
		err = writeAtomic(b.dir, b.path(key), key, data)
	}
	if err != nil {
		b.mu.Lock()
		if b.err == nil {
			b.err = err
		}
		b.mu.Unlock()
	}
}

// Err returns the first I/O error encountered, if any.
func (b *DiskBackend) Err() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.err
}

// writeAtomic lands data at path via a temp file in dir and a rename,
// so a concurrent reader never observes a partial entry.
func writeAtomic(dir, path, key string, data []byte) error {
	tmp, err := os.CreateTemp(dir, key+".tmp*")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr != nil {
			return werr
		}
		return cerr
	}
	return os.Rename(tmp.Name(), path)
}
