package runner

import (
	"fmt"
	"sync/atomic"
	"time"

	"flashsim/internal/obs"
)

// atomicCounter is a monotone int64 counter shared across workers.
type atomicCounter struct{ v atomic.Int64 }

func (c *atomicCounter) add(d int64) { c.v.Add(d) }
func (c *atomicCounter) get() int64  { return c.v.Load() }

// Stats is a snapshot of a pool's lifetime activity.
type Stats struct {
	// Jobs is the number of jobs completed (run, cached, or failed).
	Jobs int64
	// Ran is the number of actual machine.Run executions.
	Ran int64
	// CacheHits is the number of jobs satisfied from the store.
	CacheHits int64
	// Failed is the number of jobs that returned an error (including
	// cancellations and recovered panics).
	Failed int64
	// Wall is the wall-clock time spent inside Run/RunAll batches; CPU
	// is the summed execution time of the individual runs. CPU/Wall is
	// the realized parallel speedup.
	Wall time.Duration
	CPU  time.Duration
}

// Stats returns a snapshot of the pool's counters.
func (p *Pool) Stats() Stats {
	return Stats{
		Jobs:      p.jobs.get(),
		Ran:       p.ran.get(),
		CacheHits: p.hits.get(),
		Failed:    p.failed.get(),
		Wall:      time.Duration(p.wall.get()),
		CPU:       time.Duration(p.cpu.get()),
	}
}

// Counters converts the snapshot into the metrics report's runner
// section.
func (s Stats) Counters() obs.RunnerCounters {
	return obs.RunnerCounters{
		Jobs:      s.Jobs,
		Ran:       s.Ran,
		CacheHits: s.CacheHits,
		Failed:    s.Failed,
		WallNS:    int64(s.Wall),
		CPUNS:     int64(s.CPU),
	}
}

// Speedup returns CPU/Wall — how much faster the batches completed
// than a serial execution of the same runs would have (1.0 for a
// serial pool; higher when workers overlap or the cache hits).
func (s Stats) Speedup() float64 {
	if s.Wall <= 0 {
		return 0
	}
	return float64(s.CPU) / float64(s.Wall)
}

// HitRate returns the fraction of jobs served from the store.
func (s Stats) HitRate() float64 {
	if s.Jobs == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(s.Jobs)
}

// String renders the snapshot the way the CLIs print it.
func (s Stats) String() string {
	out := fmt.Sprintf("%d jobs (%d run, %d cached", s.Jobs, s.Ran, s.CacheHits)
	if s.Failed > 0 {
		out += fmt.Sprintf(", %d failed", s.Failed)
	}
	out += fmt.Sprintf("), wall %v, cpu %v",
		s.Wall.Round(time.Millisecond), s.CPU.Round(time.Millisecond))
	if sp := s.Speedup(); sp > 0 {
		out += fmt.Sprintf(", %.1fx", sp)
	}
	return out
}

// Sub returns the activity between an earlier snapshot and this one.
func (s Stats) Sub(earlier Stats) Stats {
	return Stats{
		Jobs:      s.Jobs - earlier.Jobs,
		Ran:       s.Ran - earlier.Ran,
		CacheHits: s.CacheHits - earlier.CacheHits,
		Failed:    s.Failed - earlier.Failed,
		Wall:      s.Wall - earlier.Wall,
		CPU:       s.CPU - earlier.CPU,
	}
}

// MeanRunTime returns the mean per-run execution time (0 if nothing
// ran).
func (s Stats) MeanRunTime() time.Duration {
	if s.Ran == 0 {
		return 0
	}
	return s.CPU / time.Duration(s.Ran)
}
