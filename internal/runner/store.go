package runner

import (
	"container/list"
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"flashsim/internal/machine"
)

// Store memoizes simulation results by fingerprint. It always keeps an
// in-memory map; with a directory it additionally persists every
// result as one JSON file per key, so a later process (or a later
// figure in the same CLI invocation pattern) reuses runs an earlier
// one already paid for — cmd/validate -figure 3 rereads the reference
// runs -figure 1 produced, and the Calibrator's repeated snbench
// probes hit cache across simulator configurations.
//
// A persistent store may be byte-bounded (NewBoundedStore, the CLIs'
// -cache-max-bytes): when the on-disk footprint exceeds the bound, the
// least-recently-accessed entries are evicted — file and memory entry
// together, so an evicted key is a clean miss everywhere — until the
// footprint fits. Access order is updated by both hits and writes, and
// an existing cache directory is inventoried at open (ordered by file
// modification time), so a daemon restarted over an old cache evicts
// sensibly from the start.
//
// A Store is safe for concurrent use. Disk writes are best-effort: the
// first I/O error is retained (Err) and the store keeps serving from
// memory.
type Store struct {
	dir      string
	maxBytes int64

	mu      sync.RWMutex
	mem     map[string]machine.Result
	diskErr error

	// LRU bookkeeping, live only when maxBytes > 0 and dir != "".
	// lru front = most recently accessed; elem indexes keys into it.
	lru       *list.List
	elem      map[string]*list.Element
	diskBytes int64
	evictions int64
}

// lruEntry is one tracked on-disk entry.
type lruEntry struct {
	key  string
	size int64
}

// NewStore returns a store rooted at dir; dir == "" keeps the store
// purely in-memory. The directory is created if missing.
func NewStore(dir string) (*Store, error) { return NewBoundedStore(dir, 0) }

// NewBoundedStore is NewStore with an on-disk byte budget; maxBytes <= 0
// means unbounded. Entries already present under dir are counted
// against the budget (and evicted oldest-first if it is already
// exceeded).
func NewBoundedStore(dir string, maxBytes int64) (*Store, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
	}
	s := &Store{dir: dir, mem: make(map[string]machine.Result)}
	if dir != "" && maxBytes > 0 {
		s.maxBytes = maxBytes
		s.lru = list.New()
		s.elem = make(map[string]*list.Element)
		s.scan()
		s.mu.Lock()
		s.evict()
		s.mu.Unlock()
	}
	return s, nil
}

// scan inventories pre-existing cache files into the LRU, oldest
// modification time least recent. Unreadable entries are skipped (they
// will surface as misses and be rewritten or evicted later).
func (s *Store) scan() {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	type file struct {
		key  string
		size int64
		mod  int64
	}
	var files []file
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		files = append(files, file{
			key:  strings.TrimSuffix(name, ".json"),
			size: info.Size(),
			mod:  info.ModTime().UnixNano(),
		})
	}
	sort.Slice(files, func(i, j int) bool { return files[i].mod < files[j].mod })
	for _, f := range files {
		s.elem[f.key] = s.lru.PushFront(&lruEntry{key: f.key, size: f.size})
		s.diskBytes += f.size
	}
}

// Dir returns the on-disk root ("" for a memory-only store).
func (s *Store) Dir() string { return s.dir }

// MaxBytes returns the on-disk budget (0 for unbounded).
func (s *Store) MaxBytes() int64 { return s.maxBytes }

// path returns the file backing a key.
func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key+".json")
}

// bounded reports whether LRU bookkeeping is live.
func (s *Store) bounded() bool { return s.maxBytes > 0 && s.dir != "" }

// Get returns the memoized result for key, consulting memory first and
// then disk. A disk hit is promoted into memory. Either hit refreshes
// the key's access recency in a bounded store.
func (s *Store) Get(key string) (machine.Result, bool) {
	s.mu.RLock()
	res, ok := s.mem[key]
	s.mu.RUnlock()
	if ok {
		if s.bounded() {
			s.mu.Lock()
			s.touch(key, 0)
			s.mu.Unlock()
		}
		return res, true
	}
	if s.dir == "" {
		return machine.Result{}, false
	}
	data, err := os.ReadFile(s.path(key))
	if err != nil {
		return machine.Result{}, false
	}
	var disk machine.Result
	if err := json.Unmarshal(data, &disk); err != nil {
		// A truncated or stale-format entry is a miss, not an error:
		// the run is simply recomputed and rewritten.
		return machine.Result{}, false
	}
	s.mu.Lock()
	s.mem[key] = disk
	if s.bounded() {
		s.touch(key, int64(len(data)))
	}
	s.mu.Unlock()
	return disk, true
}

// touch moves key to the front of the LRU, inserting it (with size)
// when untracked. Caller holds mu.
func (s *Store) touch(key string, size int64) {
	if el, ok := s.elem[key]; ok {
		s.lru.MoveToFront(el)
		return
	}
	s.elem[key] = s.lru.PushFront(&lruEntry{key: key, size: size})
	s.diskBytes += size
}

// Put memoizes a result under key, writing through to disk when the
// store is persistent and evicting least-recently-accessed entries
// when a bounded store overflows.
func (s *Store) Put(key string, res machine.Result) {
	if s.dir == "" {
		s.mu.Lock()
		s.mem[key] = res
		s.mu.Unlock()
		return
	}
	data, err := json.Marshal(res)
	if err != nil {
		s.mu.Lock()
		s.mem[key] = res
		if s.diskErr == nil {
			s.diskErr = err
		}
		s.mu.Unlock()
		return
	}
	werr := s.writeFile(key, data)
	s.mu.Lock()
	s.mem[key] = res
	if werr != nil {
		if s.diskErr == nil {
			s.diskErr = werr
		}
	} else if s.bounded() {
		if el, ok := s.elem[key]; ok {
			// Overwrite: replace the tracked size in place.
			e := el.Value.(*lruEntry)
			s.diskBytes += int64(len(data)) - e.size
			e.size = int64(len(data))
			s.lru.MoveToFront(el)
		} else {
			s.touch(key, int64(len(data)))
		}
		s.evict()
	}
	s.mu.Unlock()
}

// evict removes least-recently-accessed entries (disk file and memory
// entry both) until the on-disk footprint fits the budget. Caller
// holds mu. A single entry larger than the whole budget is evicted
// too — the bound is absolute, not per-entry best-effort.
func (s *Store) evict() {
	for s.diskBytes > s.maxBytes {
		el := s.lru.Back()
		if el == nil {
			return
		}
		e := el.Value.(*lruEntry)
		s.lru.Remove(el)
		delete(s.elem, e.key)
		delete(s.mem, e.key)
		s.diskBytes -= e.size
		s.evictions++
		os.Remove(s.path(e.key))
	}
}

// writeFile persists one entry atomically (temp file + rename), so a
// concurrent reader never observes a partial entry.
func (s *Store) writeFile(key string, data []byte) error {
	return writeAtomic(s.dir, s.path(key), key, data)
}

// Len returns the number of in-memory entries.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.mem)
}

// DiskBytes returns the tracked on-disk footprint (0 when unbounded —
// an unbounded store keeps no size bookkeeping).
func (s *Store) DiskBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.diskBytes
}

// Evictions returns how many entries a bounded store has evicted.
func (s *Store) Evictions() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.evictions
}

// Err returns the first disk I/O error encountered, if any. The store
// remains usable in memory after a disk failure.
func (s *Store) Err() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.diskErr
}
