package runner

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"sync"

	"flashsim/internal/machine"
)

// Store memoizes simulation results by fingerprint. It always keeps an
// in-memory map; with a directory it additionally persists every
// result as one JSON file per key, so a later process (or a later
// figure in the same CLI invocation pattern) reuses runs an earlier
// one already paid for — cmd/validate -figure 3 rereads the reference
// runs -figure 1 produced, and the Calibrator's repeated snbench
// probes hit cache across simulator configurations.
//
// A Store is safe for concurrent use. Disk writes are best-effort: the
// first I/O error is retained (Err) and the store keeps serving from
// memory.
type Store struct {
	dir string

	mu      sync.RWMutex
	mem     map[string]machine.Result
	diskErr error
}

// NewStore returns a store rooted at dir; dir == "" keeps the store
// purely in-memory. The directory is created if missing.
func NewStore(dir string) (*Store, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
	}
	return &Store{dir: dir, mem: make(map[string]machine.Result)}, nil
}

// Dir returns the on-disk root ("" for a memory-only store).
func (s *Store) Dir() string { return s.dir }

// path returns the file backing a key.
func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key+".json")
}

// Get returns the memoized result for key, consulting memory first and
// then disk. A disk hit is promoted into memory.
func (s *Store) Get(key string) (machine.Result, bool) {
	s.mu.RLock()
	res, ok := s.mem[key]
	s.mu.RUnlock()
	if ok || s.dir == "" {
		return res, ok
	}
	data, err := os.ReadFile(s.path(key))
	if err != nil {
		return machine.Result{}, false
	}
	var disk machine.Result
	if err := json.Unmarshal(data, &disk); err != nil {
		// A truncated or stale-format entry is a miss, not an error:
		// the run is simply recomputed and rewritten.
		return machine.Result{}, false
	}
	s.mu.Lock()
	s.mem[key] = disk
	s.mu.Unlock()
	return disk, true
}

// Put memoizes a result under key, writing through to disk when the
// store is persistent.
func (s *Store) Put(key string, res machine.Result) {
	s.mu.Lock()
	s.mem[key] = res
	s.mu.Unlock()
	if s.dir == "" {
		return
	}
	if err := s.writeFile(key, res); err != nil {
		s.mu.Lock()
		if s.diskErr == nil {
			s.diskErr = err
		}
		s.mu.Unlock()
	}
}

// writeFile persists one entry atomically (temp file + rename), so a
// concurrent reader never observes a partial entry.
func (s *Store) writeFile(key string, res machine.Result) error {
	data, err := json.Marshal(res)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(s.dir, key+".tmp*")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return errors.Join(werr, cerr)
	}
	return os.Rename(tmp.Name(), s.path(key))
}

// Len returns the number of in-memory entries.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.mem)
}

// Err returns the first disk I/O error encountered, if any. The store
// remains usable in memory after a disk failure.
func (s *Store) Err() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.diskErr
}
