package runner

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"flashsim/internal/machine"
	"flashsim/internal/obs"
)

// PeerStore is one remote replica's memo store as seen by the
// distribution layer: fetch a result by fingerprint, push one, and
// answer a health probe. The HTTP implementation (flashd's
// /v1/store/{fingerprint} GET/PUT and /v1/health) lives in
// internal/serve/client; tests substitute in-memory fakes.
//
// Fetch must never return a corrupt or partial result: a body that
// fails validation (CRC, schema, decode) is an error, which the
// distribution layer degrades to a recompute.
type PeerStore interface {
	// Name identifies the peer in the ring (its base URL for HTTP
	// peers). It must match the member name used in DistOptions.
	Name() string
	// Fetch returns the peer's result for key; ok=false with a nil
	// error is a definitive miss.
	Fetch(ctx context.Context, key string) (res machine.Result, ok bool, err error)
	// Store pushes a result to the peer (a ring back-fill).
	Store(ctx context.Context, key string, res machine.Result) error
	// Health probes the peer; nil means up.
	Health(ctx context.Context) error
}

// PeerStatus is the health view of one ring member.
type PeerStatus struct {
	Name string `json:"name"`
	Up   bool   `json:"up"`
	// Err is the last probe failure ("" while up).
	Err string `json:"err,omitempty"`
	// PolledMS is the Unix-millisecond stamp of the last probe (zero
	// before the first).
	PolledMS int64 `json:"polled_ms,omitempty"`
}

// DistOptions configures a DistStore.
type DistOptions struct {
	// Self is this replica's ring name; keys it owns are served from
	// Local without a network hop. Required.
	Self string
	// Local is the backend misses fall back to and hits read through
	// into. Required.
	Local Backend
	// Peers are the other ring members. The ring is Self + every
	// peer's Name.
	Peers []PeerStore
	// Vnodes is the per-member virtual-node count (default
	// DefaultVnodes).
	Vnodes int
	// Replicate is how many ring owners each computed result is
	// written back to (default 1).
	Replicate int
	// HedgeFloor is the minimum wait before the hedged second fetch
	// (default 25ms); the effective threshold is the p95 of observed
	// fetch latencies clamped to [HedgeFloor, HedgeCap] (HedgeCap
	// default 500ms).
	HedgeFloor time.Duration
	HedgeCap   time.Duration
	// FetchTimeout bounds one Get's total remote work (default 2s);
	// StoreTimeout one back-fill push (default 5s); HealthTimeout one
	// probe (default 1s).
	FetchTimeout  time.Duration
	StoreTimeout  time.Duration
	HealthTimeout time.Duration
	// HealthEvery is the probe period feeding ring membership; <= 0
	// disables the background poller (tests drive PollHealth
	// directly).
	HealthEvery time.Duration
	// BackfillDepth bounds the asynchronous write-back queue (default
	// 128); overflow is dropped and counted, never blocks a Put.
	BackfillDepth int
	// Counters receives the store metrics (one is allocated when nil).
	Counters *obs.StoreCounters
}

// DistStore is the multi-replica memo Backend: a local backend fronted
// by a consistent-hash ring of peers. A Get tries local first, then
// hedged fetches from the key's ring owners (read-through: a remote
// hit fills local); a miss everywhere falls back to the caller's local
// compute, whose Put writes back both locally and to the key's owners
// — so identical specs land on whichever replica already memoized the
// result, wherever they were submitted.
//
// One replica with no peers degenerates to exactly its local backend
// plus counter bookkeeping: every key is self-owned, Get never leaves
// the process, Put back-fills nothing.
type DistStore struct {
	self      string
	local     Backend
	ring      *Ring
	peers     map[string]PeerStore
	c         *obs.StoreCounters
	lat       *latWindow
	replicate int

	hedgeFloor    time.Duration
	hedgeCap      time.Duration
	fetchTimeout  time.Duration
	storeTimeout  time.Duration
	healthTimeout time.Duration
	healthEvery   time.Duration

	bfq     chan backfill
	pending atomic.Int64

	statusMu sync.Mutex
	status   map[string]*PeerStatus

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// backfill is one queued write-back.
type backfill struct {
	peer PeerStore
	key  string
	res  machine.Result
}

// NewDistStore assembles the distribution layer and starts its
// background work (the health poller when HealthEvery > 0, and the
// back-fill worker). Close stops both.
func NewDistStore(o DistOptions) *DistStore {
	if o.Self == "" {
		panic("runner: DistOptions.Self is required")
	}
	if o.Local == nil {
		panic("runner: DistOptions.Local is required")
	}
	if o.Replicate <= 0 {
		o.Replicate = 1
	}
	if o.HedgeFloor <= 0 {
		o.HedgeFloor = 25 * time.Millisecond
	}
	if o.HedgeCap <= 0 {
		o.HedgeCap = 500 * time.Millisecond
	}
	if o.FetchTimeout <= 0 {
		o.FetchTimeout = 2 * time.Second
	}
	if o.StoreTimeout <= 0 {
		o.StoreTimeout = 5 * time.Second
	}
	if o.HealthTimeout <= 0 {
		o.HealthTimeout = time.Second
	}
	if o.BackfillDepth <= 0 {
		o.BackfillDepth = 128
	}
	if o.Counters == nil {
		o.Counters = &obs.StoreCounters{}
	}
	names := []string{o.Self}
	peers := make(map[string]PeerStore, len(o.Peers))
	status := make(map[string]*PeerStatus, len(o.Peers)+1)
	status[o.Self] = &PeerStatus{Name: o.Self, Up: true}
	for _, p := range o.Peers {
		names = append(names, p.Name())
		peers[p.Name()] = p
		status[p.Name()] = &PeerStatus{Name: p.Name(), Up: true}
	}
	d := &DistStore{
		self:          o.Self,
		local:         o.Local,
		ring:          NewRing(names, o.Vnodes),
		peers:         peers,
		c:             o.Counters,
		lat:           &latWindow{},
		replicate:     o.Replicate,
		hedgeFloor:    o.HedgeFloor,
		hedgeCap:      o.HedgeCap,
		fetchTimeout:  o.FetchTimeout,
		storeTimeout:  o.StoreTimeout,
		healthTimeout: o.HealthTimeout,
		healthEvery:   o.HealthEvery,
		bfq:           make(chan backfill, o.BackfillDepth),
		status:        status,
		stop:          make(chan struct{}),
	}
	d.wg.Add(1)
	go d.backfillWorker()
	if d.healthEvery > 0 {
		d.wg.Add(1)
		go d.healthLoop()
	}
	return d
}

// Close stops the health poller and the back-fill worker. Queued
// back-fills that have not started are abandoned.
func (d *DistStore) Close() {
	d.stopOnce.Do(func() { close(d.stop) })
	d.wg.Wait()
}

// Self returns this replica's ring name.
func (d *DistStore) Self() string { return d.self }

// Local returns the wrapped local backend.
func (d *DistStore) Local() Backend { return d.local }

// Ring returns the membership ring (live view included).
func (d *DistStore) Ring() *Ring { return d.ring }

// Counters returns the store metrics.
func (d *DistStore) Counters() *obs.StoreCounters { return d.c }

// Owners returns the live ring owners of key in preference order.
func (d *DistStore) Owners(key string) []string {
	return d.ring.Owners(key, d.replicate+1)
}

// Get consults local, then the key's ring owners (hedged), and fills
// local on a remote hit. A miss everywhere means the caller computes;
// no failure mode returns a wrong result.
func (d *DistStore) Get(key string) (machine.Result, bool) {
	if res, ok := d.local.Get(key); ok {
		d.c.LocalHits.Add(1)
		return res, true
	}
	d.c.LocalMisses.Add(1)
	var owners []PeerStore
	for _, name := range d.ring.Owners(key, d.replicate+1) {
		if name == d.self {
			continue
		}
		if p, ok := d.peers[name]; ok {
			owners = append(owners, p)
		}
	}
	if len(owners) > 2 {
		owners = owners[:2]
	}
	if len(owners) == 0 {
		// Either we are the sole live owner (the miss is authoritative)
		// or the ring is empty; compute locally.
		d.c.Fallbacks.Add(1)
		return machine.Result{}, false
	}
	ctx, cancel := context.WithTimeout(context.Background(), d.fetchTimeout)
	defer cancel()
	if res, ok := d.hedgedFetch(ctx, key, owners); ok {
		d.c.RemoteHits.Add(1)
		d.local.Put(key, res) // read-through fill
		return res, true
	}
	d.c.Fallbacks.Add(1)
	return machine.Result{}, false
}

// hedgedFetch asks owners for key in preference order: the first
// immediately, the next when the one before it errors, misses, or
// outlives the hedge threshold. The first complete hit wins.
func (d *DistStore) hedgedFetch(ctx context.Context, key string, owners []PeerStore) (machine.Result, bool) {
	type reply struct {
		res    machine.Result
		ok     bool
		err    error
		hedged bool
	}
	replies := make(chan reply, len(owners))
	launch := func(i int, hedged bool) {
		p := owners[i]
		go func() {
			t0 := time.Now()
			res, ok, err := p.Fetch(ctx, key)
			if err == nil {
				d.lat.observe(time.Since(t0))
			}
			replies <- reply{res: res, ok: ok, err: err, hedged: hedged}
		}()
	}
	launch(0, false)
	next, outstanding := 1, 1
	hedge := time.NewTimer(d.hedgeDelay())
	defer hedge.Stop()
	for outstanding > 0 {
		select {
		case r := <-replies:
			outstanding--
			if r.err == nil && r.ok {
				if r.hedged {
					d.c.HedgeWins.Add(1)
				}
				return r.res, true
			}
			if r.err != nil {
				d.c.RemoteErrors.Add(1)
			} else {
				d.c.RemoteMisses.Add(1)
			}
			if next < len(owners) {
				launch(next, false)
				next++
				outstanding++
			}
		case <-hedge.C:
			if next < len(owners) {
				d.c.Hedges.Add(1)
				launch(next, true)
				next++
				outstanding++
			}
		case <-ctx.Done():
			return machine.Result{}, false
		}
	}
	return machine.Result{}, false
}

// hedgeDelay is the wait before the second fetch: the p95 of recent
// fetch latencies, clamped to [hedgeFloor, hedgeCap]. Before enough
// samples exist the floor applies.
func (d *DistStore) hedgeDelay() time.Duration {
	p95, ok := d.lat.percentile(0.95)
	if !ok || p95 < d.hedgeFloor {
		return d.hedgeFloor
	}
	if p95 > d.hedgeCap {
		return d.hedgeCap
	}
	return p95
}

// Put memoizes locally, then enqueues write-backs to the key's ring
// owners (excluding self) so the next asker anywhere in the ring finds
// it where routing looks first.
func (d *DistStore) Put(key string, res machine.Result) {
	d.local.Put(key, res)
	for _, name := range d.ring.Owners(key, d.replicate) {
		if name == d.self {
			continue
		}
		p, ok := d.peers[name]
		if !ok {
			continue
		}
		d.pending.Add(1)
		select {
		case d.bfq <- backfill{peer: p, key: key, res: res}:
		default:
			d.pending.Add(-1)
			d.c.BackfillDrops.Add(1)
		}
	}
}

// backfillWorker drains the write-back queue until Close.
func (d *DistStore) backfillWorker() {
	defer d.wg.Done()
	for {
		select {
		case bf := <-d.bfq:
			ctx, cancel := context.WithTimeout(context.Background(), d.storeTimeout)
			err := bf.peer.Store(ctx, bf.key, bf.res)
			cancel()
			if err != nil {
				d.c.BackfillErrors.Add(1)
			} else {
				d.c.Backfills.Add(1)
			}
			d.pending.Add(-1)
		case <-d.stop:
			return
		}
	}
}

// Flush waits until every enqueued back-fill has been attempted or ctx
// ends. Smoke tests and drains use it so "computed on A" reliably
// implies "stored on A's owner" before the next request lands.
func (d *DistStore) Flush(ctx context.Context) error {
	for d.pending.Load() > 0 {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(time.Millisecond):
		}
	}
	return nil
}

// healthLoop polls peers every healthEvery until Close.
func (d *DistStore) healthLoop() {
	defer d.wg.Done()
	tick := time.NewTicker(d.healthEvery)
	defer tick.Stop()
	d.PollHealth()
	for {
		select {
		case <-tick.C:
			d.PollHealth()
		case <-d.stop:
			return
		}
	}
}

// PollHealth probes every peer once (concurrently, each under
// HealthTimeout) and feeds the up/down outcomes into ring membership.
// The background poller calls it on its period; tests call it
// directly.
func (d *DistStore) PollHealth() {
	var wg sync.WaitGroup
	for name, p := range d.peers {
		wg.Add(1)
		go func(name string, p PeerStore) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), d.healthTimeout)
			err := p.Health(ctx)
			cancel()
			d.setPeerHealth(name, err)
		}(name, p)
	}
	wg.Wait()
}

// setPeerHealth records one probe outcome and updates the ring.
func (d *DistStore) setPeerHealth(name string, err error) {
	up := err == nil
	d.statusMu.Lock()
	st := d.status[name]
	if st != nil {
		st.Up = up
		st.Err = ""
		if err != nil {
			st.Err = err.Error()
		}
		st.PolledMS = time.Now().UnixMilli()
	}
	d.statusMu.Unlock()
	d.ring.SetLive(name, up)
}

// PeerHealth returns the current health view, self first, peers in
// name order.
func (d *DistStore) PeerHealth() []PeerStatus {
	d.statusMu.Lock()
	defer d.statusMu.Unlock()
	out := make([]PeerStatus, 0, len(d.status))
	for _, st := range d.status {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool {
		if (out[i].Name == d.self) != (out[j].Name == d.self) {
			return out[i].Name == d.self
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// latWindow is a bounded sliding window of fetch latencies for the
// hedge-threshold percentile.
type latWindow struct {
	mu      sync.Mutex
	samples [128]time.Duration
	n       int // filled entries
	idx     int // next write position
}

// observe records one successful fetch's latency.
func (w *latWindow) observe(d time.Duration) {
	w.mu.Lock()
	w.samples[w.idx] = d
	w.idx = (w.idx + 1) % len(w.samples)
	if w.n < len(w.samples) {
		w.n++
	}
	w.mu.Unlock()
}

// percentile returns the p-quantile of the window; ok is false before
// eight samples exist (too little signal to beat the configured
// floor).
func (w *latWindow) percentile(p float64) (time.Duration, bool) {
	w.mu.Lock()
	n := w.n
	buf := make([]time.Duration, n)
	copy(buf, w.samples[:n])
	w.mu.Unlock()
	if n < 8 {
		return 0, false
	}
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	i := int(p * float64(n-1))
	return buf[i], true
}
