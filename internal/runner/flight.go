package runner

import (
	"context"
	"sync"
	"sync/atomic"
)

// Flight coalesces concurrent submissions of identical jobs onto one
// execution. Two jobs are identical when their Fingerprints match —
// the same schema-versioned canonical-config hash the memo Store keys
// on — so coalescing has exactly the soundness of the store: it merges
// submissions only when machine.Run is guaranteed to produce the same
// Result for both.
//
// The store dedups across time (a result computed yesterday serves
// today's request); Flight dedups across space (ten clients asking for
// the same uncached run right now trigger one machine.Run, not ten).
// A serving front end needs both: without in-flight coalescing, a
// thundering herd on a cold key pays the full run once per request and
// only then starts hitting cache.
//
// Cancellation is per-waiter with refcounting: each caller waits under
// its own context, and the underlying run is cancelled only when every
// caller that joined it has abandoned. One impatient client hanging up
// must not kill a run nine other clients are still waiting on.
type Flight struct {
	pool *Pool
	// base is the parent context of every execution the flight starts;
	// cancelling it aborts all in-flight runs (server hard-stop).
	base context.Context

	mu       sync.Mutex
	inflight map[string]*flightCall

	coalesced atomic.Int64
}

// flightCall is one in-flight execution and its interested waiters.
type flightCall struct {
	done   chan struct{}
	out    Outcome
	refs   int
	cancel context.CancelFunc
}

// NewFlight returns a flight executing through pool. base bounds the
// lifetime of every run the flight starts (nil = context.Background());
// per-caller contexts passed to Run only govern how long that caller
// waits.
func NewFlight(pool *Pool, base context.Context) *Flight {
	if base == nil {
		base = context.Background()
	}
	return &Flight{pool: pool, base: base, inflight: make(map[string]*flightCall)}
}

// Pool returns the flight's pool.
func (f *Flight) Pool() *Pool { return f.pool }

// Coalesced returns how many Run calls joined an execution some other
// caller had already started.
func (f *Flight) Coalesced() int64 { return f.coalesced.Load() }

// Run executes j through the pool, joining an identical in-flight
// execution if one exists. The bool reports whether this call coalesced
// onto a run it did not start. If ctx dies while waiting, Run returns
// ctx's error; the run itself is cancelled only when the last waiter
// leaves.
func (f *Flight) Run(ctx context.Context, j Job) (Outcome, bool) {
	key := j.Fingerprint()

	f.mu.Lock()
	if c, ok := f.inflight[key]; ok {
		c.refs++
		f.mu.Unlock()
		f.coalesced.Add(1)
		return f.wait(ctx, c), true
	}
	runCtx, cancel := context.WithCancel(f.base)
	c := &flightCall{done: make(chan struct{}), refs: 1, cancel: cancel}
	f.inflight[key] = c
	f.mu.Unlock()

	// The execution runs on its own goroutine so the caller that
	// started it can still abandon early (its wait below returns on
	// ctx.Done) without orphaning the other waiters.
	go func() {
		out := f.pool.RunOne(runCtx, j)
		f.mu.Lock()
		c.out = out
		delete(f.inflight, key)
		f.mu.Unlock()
		close(c.done)
		cancel()
	}()
	return f.wait(ctx, c), false
}

// wait blocks until c completes or ctx dies. An abandoning waiter drops
// its reference; the last one out cancels the execution.
func (f *Flight) wait(ctx context.Context, c *flightCall) Outcome {
	select {
	case <-c.done:
		return c.out
	case <-ctx.Done():
		f.mu.Lock()
		c.refs--
		last := c.refs == 0
		f.mu.Unlock()
		if last {
			c.cancel()
		}
		return Outcome{Err: ctx.Err()}
	}
}
