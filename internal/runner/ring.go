package runner

import (
	"hash/fnv"
	"sort"
	"strconv"
	"sync"
)

// Ring is a consistent-hash ring over memo fingerprints: it maps every
// key (a runner.Fingerprint — shards-blind and schema-versioned, so
// semantically identical runs route identically) to an ordered list of
// owning replicas. Each member contributes vnodes points hashed from
// its name, so ownership is a pure function of the live membership —
// independent of insertion order, map iteration, or process restarts —
// and removing one of N members remaps only the ~1/N of keys the
// departed member owned, leaving every other key's owner untouched.
//
// Membership is two-level: members are fixed at construction (the
// -peers list), and each is live or down (the health view). Only live
// members own keys; flipping a member down is exactly equivalent to
// removing it from a smaller ring.
//
// A Ring is safe for concurrent use. Lookups take a read lock over a
// prebuilt sorted point list; membership flips rebuild the list.
type Ring struct {
	vnodes int
	names  []string // all members, sorted, fixed at construction

	mu     sync.RWMutex
	live   map[string]bool
	points []ringPoint // live members only, sorted by (hash, name, idx)
}

// ringPoint is one virtual node.
type ringPoint struct {
	h    uint64
	name string
	idx  int
}

// DefaultVnodes is the per-member virtual-node count a Ring resolves a
// non-positive vnodes argument to: enough points that the owner
// distribution is within a few tens of percent of uniform, cheap
// enough that membership flips rebuild in microseconds.
const DefaultVnodes = 64

// NewRing returns a ring over the given member names (deduplicated,
// order-insensitive), all initially live. vnodes <= 0 selects
// DefaultVnodes.
func NewRing(names []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	seen := make(map[string]bool, len(names))
	uniq := make([]string, 0, len(names))
	for _, n := range names {
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		uniq = append(uniq, n)
	}
	sort.Strings(uniq)
	r := &Ring{vnodes: vnodes, names: uniq, live: make(map[string]bool, len(uniq))}
	for _, n := range uniq {
		r.live[n] = true
	}
	r.rebuild()
	return r
}

// rebuild regenerates the sorted point list from the live set. Caller
// holds mu (or has exclusive access during construction). Iteration is
// over the sorted name list, never the map, and ties are broken by
// (name, idx), so the list — and therefore every ownership decision —
// is identical in every process that agrees on the live membership.
func (r *Ring) rebuild() {
	pts := make([]ringPoint, 0, len(r.names)*r.vnodes)
	for _, n := range r.names {
		if !r.live[n] {
			continue
		}
		for i := 0; i < r.vnodes; i++ {
			pts = append(pts, ringPoint{h: pointHash(n, i), name: n, idx: i})
		}
	}
	sort.Slice(pts, func(a, b int) bool {
		if pts[a].h != pts[b].h {
			return pts[a].h < pts[b].h
		}
		if pts[a].name != pts[b].name {
			return pts[a].name < pts[b].name
		}
		return pts[a].idx < pts[b].idx
	})
	r.points = pts
}

// pointHash positions virtual node i of a member on the ring.
func pointHash(name string, i int) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	h.Write([]byte{'#'})
	h.Write([]byte(strconv.Itoa(i)))
	return h.Sum64()
}

// keyHash positions a fingerprint on the ring.
func keyHash(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return h.Sum64()
}

// Owners returns up to n distinct live members owning key, in
// preference order: the first point at or clockwise of the key's hash,
// then the next distinct members encountered walking clockwise. Fewer
// than n live members returns all of them; an empty ring returns nil.
func (r *Ring) Owners(key string, n int) []string {
	if n <= 0 {
		return nil
	}
	kh := keyHash(key)
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return nil
	}
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].h >= kh })
	owners := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.points) && len(owners) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen[p.name] {
			continue
		}
		seen[p.name] = true
		owners = append(owners, p.name)
	}
	return owners
}

// Owner returns the primary owner of key ("" on an empty ring).
func (r *Ring) Owner(key string) string {
	o := r.Owners(key, 1)
	if len(o) == 0 {
		return ""
	}
	return o[0]
}

// SetLive flips one member's liveness and reports whether the state
// changed (unknown names are ignored and report false).
func (r *Ring) SetLive(name string, up bool) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	cur, ok := r.live[name]
	if !ok || cur == up {
		return false
	}
	r.live[name] = up
	r.rebuild()
	return true
}

// IsLive reports one member's liveness.
func (r *Ring) IsLive(name string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.live[name]
}

// Members returns every member name in sorted order.
func (r *Ring) Members() []string {
	out := make([]string, len(r.names))
	copy(out, r.names)
	return out
}

// LiveMembers returns the live member names in sorted order.
func (r *Ring) LiveMembers() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.names))
	for _, n := range r.names {
		if r.live[n] {
			out = append(out, n)
		}
	}
	return out
}
