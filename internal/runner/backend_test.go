package runner

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"flashsim/internal/emitter"
	"flashsim/internal/machine"
)

func TestDiskBackendRoundTrip(t *testing.T) {
	dir := t.TempDir()
	b, err := NewDiskBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := b.Get("missing"); ok {
		t.Fatal("hit on an empty directory")
	}
	b.Put("k1", machine.Result{Instructions: 42})
	if err := b.Err(); err != nil {
		t.Fatal(err)
	}
	res, ok := b.Get("k1")
	if !ok || res.Instructions != 42 {
		t.Fatalf("Get = (%v, %v)", res, ok)
	}
}

// TestDiskBackendSharesAcrossHandles is the two-process story: two
// handles on one directory (as two flashd replicas sharing a cache
// would hold) observe each other's writes with no coordination beyond
// the filesystem.
func TestDiskBackendSharesAcrossHandles(t *testing.T) {
	dir := t.TempDir()
	a, err := NewDiskBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewDiskBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	a.Put("shared", machine.Result{Instructions: 7})
	res, ok := b.Get("shared")
	if !ok || res.Instructions != 7 {
		t.Fatalf("second handle Get = (%v, %v)", res, ok)
	}
}

// TestDiskBackendGarbageIsMiss pins the "never serve a partial result"
// contract: truncated, corrupt, or non-JSON entries are misses.
func TestDiskBackendGarbageIsMiss(t *testing.T) {
	dir := t.TempDir()
	b, err := NewDiskBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"truncated": []byte(`{"Instructions": 42`),
		"garbage":   []byte("\x00\x01\x02 not json"),
		"empty":     nil,
	}
	for key, body := range cases {
		if err := os.WriteFile(filepath.Join(dir, key+".json"), body, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := b.Get(key); ok {
			t.Fatalf("%s entry served as a hit", key)
		}
	}
	// A later Put repairs the entry.
	b.Put("truncated", machine.Result{Instructions: 9})
	if res, ok := b.Get("truncated"); !ok || res.Instructions != 9 {
		t.Fatalf("repaired Get = (%v, %v)", res, ok)
	}
}

// TestDiskBackendConcurrentHandles hammers one directory through two
// handles under -race: interleaved Put/Get on overlapping keys must
// never yield a wrong or partial result — every hit decodes to a value
// some writer actually stored.
func TestDiskBackendConcurrentHandles(t *testing.T) {
	dir := t.TempDir()
	a, err := NewDiskBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewDiskBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	const keys = 16
	var wg sync.WaitGroup
	for w, h := range []*DiskBackend{a, b, a, b} {
		wg.Add(1)
		go func(w int, h *DiskBackend) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%02d", i%keys)
				// Every writer stores the same value per key, so any
				// winning rename is a correct read.
				h.Put(key, machine.Result{Instructions: uint64(i % keys)})
				if res, ok := h.Get(key); ok && res.Instructions != uint64(i%keys) {
					t.Errorf("worker %d: key %s = %d, want %d", w, key, res.Instructions, i%keys)
					return
				}
			}
		}(w, h)
	}
	wg.Wait()
	if err := a.Err(); err != nil {
		t.Fatal(err)
	}
	if err := b.Err(); err != nil {
		t.Fatal(err)
	}
	// No temp-file litter survives the storm.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".json" {
			t.Fatalf("leftover non-entry file %s", e.Name())
		}
	}
}

// TestBoundedStoreConcurrentEviction drives a byte-bounded LRU store
// with concurrent Get/Put well past its budget under -race: hits must
// stay correct while eviction churns, and the footprint must respect
// the bound when the dust settles.
func TestBoundedStoreConcurrentEviction(t *testing.T) {
	dir := t.TempDir()
	// Small budget: a handful of entries fit, so eviction runs
	// constantly under the write load.
	probe, err := NewStore("")
	if err != nil {
		t.Fatal(err)
	}
	probe.Put("size-probe", machine.Result{Instructions: 1})
	store, err := NewBoundedStore(dir, 8<<10)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 150; i++ {
				key := fmt.Sprintf("g%dk%03d", g, i)
				store.Put(key, machine.Result{Instructions: uint64(i)})
				if res, ok := store.Get(key); ok && res.Instructions != uint64(i) {
					t.Errorf("key %s = %d, want %d", key, res.Instructions, i)
					return
				}
				// Cross-goroutine reads race with eviction on purpose.
				other := fmt.Sprintf("g%dk%03d", (g+1)%6, i)
				if res, ok := store.Get(other); ok && res.Instructions != uint64(i) {
					t.Errorf("key %s = %d, want %d", other, res.Instructions, i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := store.Err(); err != nil {
		t.Fatal(err)
	}
	if store.DiskBytes() > 8<<10 {
		t.Fatalf("footprint %d exceeds the %d budget after the storm", store.DiskBytes(), 8<<10)
	}
	if store.Evictions() == 0 {
		t.Fatal("no evictions under a load far past the budget")
	}
}

// TestStoreAndDiskBackendShareFormat pins the compatibility claim in
// the DiskBackend doc: the two backends read each other's entries, so
// a -cache-dir can migrate between -store lru and -store disk freely.
func TestStoreAndDiskBackendShareFormat(t *testing.T) {
	dir := t.TempDir()
	store, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	store.Put("from-store", machine.Result{Instructions: 11})
	disk, err := NewDiskBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	if res, ok := disk.Get("from-store"); !ok || res.Instructions != 11 {
		t.Fatalf("DiskBackend read of Store entry = (%v, %v)", res, ok)
	}
	disk.Put("from-disk", machine.Result{Instructions: 22})
	if res, ok := store.Get("from-disk"); !ok || res.Instructions != 22 {
		t.Fatalf("Store read of DiskBackend entry = (%v, %v)", res, ok)
	}
}

// TestPoolRunsAgainstDiskBackend closes the seam: the pool memoizes
// through a DiskBackend exactly as through a Store, and a second pool
// on the same directory reuses the first pool's results.
func TestPoolRunsAgainstDiskBackend(t *testing.T) {
	dir := t.TempDir()
	disk, err := NewDiskBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	pool := New(1, disk)
	cfg := machine.Base(1, true)
	cfg.Name = "backend-test-machine"
	job := Job{Config: cfg, Prog: emitter.Program{
		Name:    "backend-test",
		Threads: 1,
		Body: func(th *emitter.Thread, _ any) {
			th.Barrier(emitter.BarrierStart)
			th.IntOps(500)
			th.Barrier(emitter.BarrierEnd)
		},
	}, Seed: 5}
	first, err := pool.Run(t.Context(), []Job{job})
	if err != nil {
		t.Fatal(err)
	}
	disk2, err := NewDiskBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	pool2 := New(1, disk2)
	out := pool2.RunAll(t.Context(), []Job{job})
	if out[0].Err != nil {
		t.Fatal(out[0].Err)
	}
	if !out[0].Cached {
		t.Fatal("second pool on the shared directory recomputed")
	}
	if out[0].Result.Exec != first[0].Exec {
		t.Fatalf("cached Exec %d != computed Exec %d", out[0].Result.Exec, first[0].Exec)
	}
}
