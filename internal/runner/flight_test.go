package runner_test

import (
	"context"
	"sync"
	"testing"
	"time"

	"flashsim/internal/runner"
)

// TestFlightCoalescesIdenticalSubmissions pins the serving dedup
// contract: N concurrent submissions of one identical job execute
// machine.Run exactly once, and every caller gets the same result.
func TestFlightCoalescesIdenticalSubmissions(t *testing.T) {
	// A serial pool busy with a long blocker keeps the coalesced job
	// queued on the pool semaphore, holding its in-flight key open
	// until every caller has verifiably joined — no sleep races.
	pool := runner.New(1, nil) // no store: coalescing alone must dedup
	blockerDone := make(chan struct{})
	go func() {
		defer close(blockerDone)
		pool.RunOne(context.Background(), runner.Job{Config: testCfg(1), Prog: tinyProg(1, 2_000_000), Seed: 99})
	}()
	time.Sleep(10 * time.Millisecond) // let the blocker take the worker

	f := runner.NewFlight(pool, nil)
	job := runner.Job{Config: testCfg(1), Prog: tinyProg(1, 20000), Seed: 7}

	const callers = 8
	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		outs      []runner.Outcome
		coalesced int
	)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out, joined := f.Run(context.Background(), job)
			mu.Lock()
			outs = append(outs, out)
			if joined {
				coalesced++
			}
			mu.Unlock()
		}()
	}
	// Every caller must register against the one in-flight key before
	// the blocker can possibly release it.
	for deadline := time.Now().Add(10 * time.Second); f.Coalesced() != callers-1; {
		if time.Now().After(deadline) {
			t.Fatalf("only %d callers joined the flight", f.Coalesced())
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case <-blockerDone:
		t.Fatal("blocker finished before the callers joined; test lost its window")
	default:
	}
	wg.Wait()
	<-blockerDone

	// All callers joined one in-flight key, so the pool must have seen
	// exactly one execution besides the blocker. The Ran counter is the
	// ground truth for how many machine.Run calls happened.
	if ran := pool.Stats().Ran; ran != 2 {
		t.Fatalf("pool ran %d executions (1 blocker + coalesced flight), want 2", ran)
	}
	if coalesced != callers-1 {
		t.Errorf("%d callers coalesced, want %d", coalesced, callers-1)
	}
	if f.Coalesced() != int64(callers-1) {
		t.Errorf("Coalesced() = %d, want %d", f.Coalesced(), callers-1)
	}
	for i, o := range outs {
		if o.Err != nil {
			t.Fatalf("caller %d: %v", i, o.Err)
		}
		if o.Result.Exec != outs[0].Result.Exec {
			t.Errorf("caller %d saw a different result", i)
		}
	}
}

// TestFlightDistinctJobsDoNotCoalesce: different seeds are different
// fingerprints and must each run.
func TestFlightDistinctJobsDoNotCoalesce(t *testing.T) {
	pool := runner.New(4, nil)
	f := runner.NewFlight(pool, nil)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			out, _ := f.Run(context.Background(), runner.Job{Config: testCfg(1), Prog: tinyProg(1, 1000), Seed: seed})
			if out.Err != nil {
				t.Errorf("seed %d: %v", seed, out.Err)
			}
		}(uint64(i + 1))
	}
	wg.Wait()
	if ran := pool.Stats().Ran; ran != 4 {
		t.Errorf("pool ran %d, want 4 distinct runs", ran)
	}
}

// TestFlightWaiterCancellationLeavesRunAlive: a waiter abandoning under
// its own context gets that context's error, while the remaining waiter
// still receives the completed result.
func TestFlightWaiterCancellationLeavesRunAlive(t *testing.T) {
	pool := runner.New(2, nil)
	f := runner.NewFlight(pool, nil)
	job := runner.Job{Config: testCfg(1), Prog: tinyProg(1, 200000), Seed: 3}

	done := make(chan runner.Outcome, 1)
	go func() {
		out, _ := f.Run(context.Background(), job)
		done <- out
	}()
	// Give the leader a moment to register the in-flight key, then join
	// with an already-cancelled context.
	time.Sleep(10 * time.Millisecond)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, _ := f.Run(ctx, job)
	if out.Err == nil {
		t.Error("cancelled waiter got no error")
	}
	select {
	case leader := <-done:
		if leader.Err != nil {
			t.Fatalf("leader run failed after waiter abandoned: %v", leader.Err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("leader never completed")
	}
}

// TestFlightAllWaitersGoneCancelsRun: when every caller abandons before
// the run starts, the queued execution is cancelled instead of running
// to completion on nobody's behalf.
func TestFlightAllWaitersGoneCancelsRun(t *testing.T) {
	// A serial pool busy with a long job forces the flight's execution
	// to sit queued behind it, so cancellation lands before its start.
	pool := runner.New(1, nil)
	blocker := make(chan struct{})
	go func() {
		defer close(blocker)
		pool.RunOne(context.Background(), runner.Job{Config: testCfg(1), Prog: tinyProg(1, 2_000_000), Seed: 9})
	}()
	time.Sleep(10 * time.Millisecond) // let the blocker take the worker

	// The only waiter joins with an already-dead context: it abandons
	// immediately, and the last-out refcount must cancel the queued run.
	f := runner.NewFlight(pool, nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, _ := f.Run(ctx, runner.Job{Config: testCfg(1), Prog: tinyProg(1, 1000), Seed: 10})
	if out.Err == nil {
		t.Error("abandoned run returned a result")
	}
	<-blocker

	// The queued execution must have died on its cancelled context, not
	// simulated for nobody: one real run (the blocker), one failure.
	for deadline := time.Now().Add(10 * time.Second); pool.Stats().Jobs != 2; {
		if time.Now().After(deadline) {
			t.Fatalf("flight execution never settled: %+v", pool.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	if st := pool.Stats(); st.Ran != 1 || st.Failed != 1 {
		t.Errorf("stats after abandon: ran %d failed %d, want 1 ran (blocker) and 1 failed (cancelled flight)", st.Ran, st.Failed)
	}
}
