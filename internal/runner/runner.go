// Package runner is the run-execution subsystem between the experiment
// logic (core, harness) and the machine model: a bounded worker pool
// that fans independent, seed-deterministic simulation runs out across
// cores, backed by a content-addressed store that memoizes results so
// no (config, workload, procs, seed) combination is ever simulated
// twice.
//
// Every experiment in the study is a batch of such runs — the ≥5-run
// jitter averages of core.Reference, the 7-config × 4-app sweeps of
// core.Study, the 1–16p speedup curves of core.TrendAnalyzer, and the
// Calibrator's repeated snbench probes. Because machine.Run is a pure
// function of (Config, Program), executing a batch concurrently and
// returning results in submission order is bit-identical to running it
// serially, whatever the worker count.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"flashsim/internal/emitter"
	"flashsim/internal/machine"
	"flashsim/internal/obs"
)

// Job describes one simulation run: a machine configuration and the
// program to execute on it. Procs and Seed, when set, override the
// corresponding Config fields — they exist so a batch over one base
// configuration (a repeats average, a processor sweep) can be expressed
// without copying the whole Config by hand.
type Job struct {
	Config machine.Config
	Prog   emitter.Program
	// Replay, when non-nil, makes this a trace-driven job: the machine
	// replays the prepared image instead of emitting and modeling Prog
	// (which is ignored). Replay jobs memoize under ReplayFingerprint
	// when the image carries a trace artifact address; images without
	// one always execute.
	Replay *machine.ReplayImage
	// Procs overrides Config.Procs when positive.
	Procs int
	// Seed overrides Config.Seed when nonzero.
	Seed uint64
}

// config returns the effective configuration with overrides applied.
func (j Job) config() machine.Config {
	cfg := j.Config
	if j.Procs > 0 {
		cfg.Procs = j.Procs
	}
	if j.Seed != 0 {
		cfg.Seed = j.Seed
	}
	return cfg
}

// Fingerprint returns the job's content-addressed store key. Replay
// jobs key on the trace artifact's address chained through
// ReplayFingerprint, so they never alias execution-driven results; a
// replay of an unaddressed image gets an empty key (not memoizable).
func (j Job) Fingerprint() string {
	if j.Replay != nil {
		if j.Replay.Artifact() == "" {
			return ""
		}
		return ReplayFingerprint(j.config(), j.Replay.Artifact())
	}
	return Fingerprint(j.config(), j.Prog)
}

// Workload names what the job runs, for error messages and logs.
func (j Job) Workload() string {
	if j.Replay != nil {
		return j.Replay.Workload() + " (replay)"
	}
	return j.Prog.FullName()
}

// Outcome is the per-job result of a batch: exactly one of Result or
// Err is meaningful. Cached reports a memoized result (no machine.Run
// was performed).
type Outcome struct {
	Result machine.Result
	Err    error
	Cached bool
}

// defaultWorkers caches the one runtime.NumCPU lookup the package ever
// makes (the call walks the OS affinity mask); every Pool that asks for
// "all cores" shares it.
var defaultWorkers = runtime.NumCPU()

// DefaultWorkers returns the worker count a Pool resolves to when none
// is given: the machine's CPU count, looked up once at init.
func DefaultWorkers() int { return defaultWorkers }

// Pool executes batches of Jobs on a bounded set of workers. A Pool is
// safe for concurrent use; its zero worker count resolves to
// DefaultWorkers. The pool is stateless apart from its optional Store
// and its running Stats, so one pool can serve every experiment in a
// process (and should, so the cache is shared).
//
// Concurrent jobs never share simulation state: each machine.Run builds
// its own event queue, and the queue's event free list (internal/sim)
// is per-queue, so pooled events are recycled strictly within one run —
// a worker goroutine inherits nothing from events fired by another
// run's queue. TestConcurrentRunsShareNoQueueState pins this under the
// race detector.
type Pool struct {
	workers int
	store   Backend
	metrics *obs.Collector
	// sem bounds the concurrency of single-job submissions (RunOne) at
	// the pool's worker count; batch submissions (RunAll) bound
	// themselves by spawning exactly `workers` goroutines.
	sem chan struct{}

	jobs   atomicCounter
	ran    atomicCounter
	hits   atomicCounter
	failed atomicCounter
	wall   atomicCounter // nanoseconds across Run/RunAll calls
	cpu    atomicCounter // summed per-job execution nanoseconds
}

// New returns a pool with the given concurrency. workers <= 0 selects
// DefaultWorkers; workers == 1 is strictly serial. store is any memo
// Backend — the in-process *Store, the shared *DiskBackend, or a
// multi-replica *DistStore — and may be nil to disable memoization.
func New(workers int, store Backend) *Pool {
	if workers <= 0 {
		workers = defaultWorkers
	}
	return &Pool{workers: workers, store: store, sem: make(chan struct{}, workers)}
}

// Serial returns a one-worker pool with no store — the behavior of
// calling machine.Run in a loop, which is the default for every
// consumer that is not handed an explicit pool.
func Serial() *Pool { return New(1, nil) }

// Workers returns the pool's concurrency.
func (p *Pool) Workers() int { return p.workers }

// Store returns the pool's memoization backend (nil if none).
func (p *Pool) Store() Backend { return p.store }

// SetMetrics attaches a collector that receives every successful
// outcome's RunMetrics — fresh runs and cache hits alike, so the report
// describes the batch the caller asked for, not just the runs that
// missed the memo store. Call before submitting jobs; nil detaches.
func (p *Pool) SetMetrics(c *obs.Collector) { p.metrics = c }

// Metrics returns the attached collector (nil if none).
func (p *Pool) Metrics() *obs.Collector { return p.metrics }

// Run executes jobs and returns their results in submission order. If
// any job fails, Run returns the error of the earliest failed job (by
// submission order); the remaining jobs still execute. Cancellation of
// ctx fails the jobs that have not started.
func (p *Pool) Run(ctx context.Context, jobs []Job) ([]machine.Result, error) {
	outs := p.RunAll(ctx, jobs)
	results := make([]machine.Result, len(outs))
	for i, o := range outs {
		if o.Err != nil {
			return nil, fmt.Errorf("run %d/%d (%s on %q): %w",
				i+1, len(jobs), jobs[i].Workload(), jobs[i].config().Name, o.Err)
		}
		results[i] = o.Result
	}
	return results, nil
}

// RunOne executes a single job synchronously — the submission shape of
// a serving front end, where requests arrive one at a time rather than
// as a pre-assembled batch. Concurrent RunOne calls share the pool's
// worker bound: at most `workers` of them simulate at once, the rest
// wait for a slot. Cancellation of ctx fails the job while it is
// waiting or before it starts; a simulation already executing runs to
// completion (the event loop has no preemption points), so a deadline
// bounds queue wait, not run time.
func (p *Pool) RunOne(ctx context.Context, j Job) Outcome {
	t0 := time.Now()
	defer func() { p.wall.add(int64(time.Since(t0))) }()
	select {
	case p.sem <- struct{}{}:
		defer func() { <-p.sem }()
		return p.runOne(ctx, j)
	case <-ctx.Done():
		p.jobs.add(1)
		p.failed.add(1)
		return Outcome{Err: ctx.Err()}
	}
}

// RunAll executes jobs and returns one Outcome per job, in submission
// order, with per-job errors left to the caller.
func (p *Pool) RunAll(ctx context.Context, jobs []Job) []Outcome {
	t0 := time.Now()
	defer func() { p.wall.add(int64(time.Since(t0))) }()

	out := make([]Outcome, len(jobs))
	workers := p.workers
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers <= 1 {
		for i := range jobs {
			out[i] = p.runOne(ctx, jobs[i])
		}
		return out
	}

	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i] = p.runOne(ctx, jobs[i])
			}
		}()
	}
	// Each index is delivered exactly once: either to a worker, or —
	// once the context dies — marked failed right here.
	for i := range jobs {
		select {
		case idx <- i:
		case <-ctx.Done():
			p.jobs.add(1)
			p.failed.add(1)
			out[i] = Outcome{Err: ctx.Err()}
		}
	}
	close(idx)
	wg.Wait()
	return out
}

// runOne executes a single job: store lookup, machine run, store fill.
// A panicking run fails that job with the stack attached instead of
// crashing the process (a crashing sim configuration must not take the
// whole sweep down with it).
func (p *Pool) runOne(ctx context.Context, j Job) (o Outcome) {
	p.jobs.add(1)
	defer func() {
		if r := recover(); r != nil {
			p.failed.add(1)
			o = Outcome{Err: fmt.Errorf("simulation panicked: %v\n%s", r, debug.Stack())}
		}
	}()
	if err := ctx.Err(); err != nil {
		p.failed.add(1)
		return Outcome{Err: err}
	}
	cfg := j.config()
	key := ""
	if p.store != nil {
		key = j.Fingerprint()
	}
	if key != "" {
		if res, ok := p.store.Get(key); ok {
			// The fingerprint is Name-blind, so a hit may come from a
			// run under a different label; re-stamp it with ours.
			res.Config = cfg.Name
			res.Metrics.Config = cfg.Name
			p.hits.add(1)
			if p.metrics != nil {
				p.metrics.Record(res.Metrics)
			}
			return Outcome{Result: res, Cached: true}
		}
	}
	t0 := time.Now()
	var res machine.Result
	var err error
	if j.Replay != nil {
		res, err = machine.RunReplay(cfg, j.Replay)
	} else {
		res, err = machine.Run(cfg, j.Prog)
	}
	p.cpu.add(int64(time.Since(t0)))
	p.ran.add(1)
	if err != nil {
		p.failed.add(1)
		return Outcome{Err: err}
	}
	if key != "" {
		p.store.Put(key, res)
	}
	if p.metrics != nil {
		p.metrics.Record(res.Metrics)
	}
	return Outcome{Result: res}
}
