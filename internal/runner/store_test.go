package runner_test

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"flashsim/internal/machine"
	"flashsim/internal/runner"
)

// cacheFiles returns the store's on-disk entries.
func cacheFiles(t *testing.T, dir string) []string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	return matches
}

// TestStoreCorruptionFallsBackToRecompute pins the store's crash-safety
// contract: a damaged on-disk entry — truncated mid-write, overwritten
// with garbage, or emptied — is a cache miss, never an error. The run
// is recomputed and the entry rewritten with valid JSON.
func TestStoreCorruptionFallsBackToRecompute(t *testing.T) {
	corruptions := []struct {
		name   string
		mangle func(data []byte) []byte
	}{
		{"truncated", func(data []byte) []byte { return data[:len(data)/2] }},
		{"garbage", func(data []byte) []byte { return []byte("\x00\xffnot json at all{{{") }},
		{"empty", func(data []byte) []byte { return nil }},
		{"wrong-shape", func(data []byte) []byte { return []byte(`["a","json","array"]`) }},
	}
	for _, c := range corruptions {
		t.Run(c.name, func(t *testing.T) {
			dir := t.TempDir()
			job := runner.Job{Config: testCfg(1), Prog: tinyProg(1, 300), Seed: 9}

			store1, err := runner.NewStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			pool1 := runner.New(1, store1)
			first, err := pool1.Run(context.Background(), []runner.Job{job})
			if err != nil {
				t.Fatal(err)
			}
			files := cacheFiles(t, dir)
			if len(files) != 1 {
				t.Fatalf("expected 1 cache file, found %v", files)
			}
			data, err := os.ReadFile(files[0])
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(files[0], c.mangle(data), 0o644); err != nil {
				t.Fatal(err)
			}

			// A fresh process over the damaged directory must recompute.
			store2, err := runner.NewStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			pool2 := runner.New(1, store2)
			second, err := pool2.Run(context.Background(), []runner.Job{job})
			if err != nil {
				t.Fatalf("corrupted entry surfaced as an error: %v", err)
			}
			if st := pool2.Stats(); st.Ran != 1 || st.CacheHits != 0 {
				t.Fatalf("corrupted entry was served as a hit: %+v", st)
			}
			if !reflect.DeepEqual(first, second) {
				t.Error("recomputed result differs from the original")
			}
			if err := store2.Err(); err != nil {
				t.Fatalf("store reported a disk error: %v", err)
			}
			// The rewrite must have healed the entry.
			healed, err := os.ReadFile(files[0])
			if err != nil {
				t.Fatal(err)
			}
			var res machine.Result
			if err := json.Unmarshal(healed, &res); err != nil {
				t.Fatalf("cache entry not healed: %v", err)
			}

			// And a third store must now hit.
			store3, err := runner.NewStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			pool3 := runner.New(1, store3)
			if _, err := pool3.Run(context.Background(), []runner.Job{job}); err != nil {
				t.Fatal(err)
			}
			if st := pool3.Stats(); st.CacheHits != 1 {
				t.Fatalf("healed entry not served as a hit: %+v", st)
			}
		})
	}
}

// TestStoreGetMissesOnUnreadableEntry drives Store.Get directly: a file
// that cannot be parsed is a plain miss.
func TestStoreGetMissesOnUnreadableEntry(t *testing.T) {
	dir := t.TempDir()
	store, err := runner.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "somekey.json"), []byte("{\"Exec\":"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := store.Get("somekey"); ok {
		t.Fatal("truncated entry must be a miss")
	}
	if _, ok := store.Get("neverwritten"); ok {
		t.Fatal("absent entry must be a miss")
	}
}

// TestStorePutSurvivesDiskFailure: when the directory disappears out
// from under the store, Put keeps serving from memory and remembers the
// first disk error.
func TestStorePutSurvivesDiskFailure(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	store, err := runner.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	store.Put("k", machine.Result{Instructions: 42})
	if res, ok := store.Get("k"); !ok || res.Instructions != 42 {
		t.Fatalf("memory entry lost after disk failure: %v %v", res, ok)
	}
	if store.Err() == nil {
		t.Fatal("disk failure not reported via Err")
	}
}
