package runner_test

import (
	"context"
	"reflect"
	"testing"

	"flashsim/internal/machine"
	"flashsim/internal/runner"
)

func sampledJob(ops int, seed uint64) runner.Job {
	cfg := testCfg(2)
	cfg.Sampling = machine.DefaultSampling()
	return runner.Job{Config: cfg, Prog: tinyProg(2, ops), Seed: seed}
}

// TestSamplingChangesFingerprint pins that sampled runs memoize under
// their own keys: flipping the schedule on, or changing any sampling
// parameter, must re-key the job so cached full-detail results are
// never served for sampled requests (or vice versa).
func TestSamplingChangesFingerprint(t *testing.T) {
	full := runner.Job{Config: testCfg(2), Prog: tinyProg(2, 500), Seed: 1}
	sampled := sampledJob(500, 1)
	if full.Fingerprint() == sampled.Fingerprint() {
		t.Fatal("sampled job shares a fingerprint with the full-detail job")
	}
	keys := map[string]string{"full": full.Fingerprint(), "sampled": sampled.Fingerprint()}
	mutate := map[string]func(*machine.SamplingConfig){
		"period": func(s *machine.SamplingConfig) { s.Period *= 2 },
		"window": func(s *machine.SamplingConfig) { s.Window /= 2 },
		"warmup": func(s *machine.SamplingConfig) { s.Warmup++ },
		"phase":  func(s *machine.SamplingConfig) { s.Phase = 777 },
		"cold":   func(s *machine.SamplingConfig) { s.ColdState = true },
	}
	for name, mut := range mutate {
		j := sampledJob(500, 1)
		mut(&j.Config.Sampling)
		k := j.Fingerprint()
		for prev, pk := range keys {
			if k == pk {
				t.Errorf("sampling.%s variant collides with %s", name, prev)
			}
		}
		keys[name] = k
	}
}

// TestSampledBatchIsWorkerCountInvariant pins sampled-mode determinism
// through the pool: a batch of sampled jobs returns bit-identical
// results whatever the -jobs count.
func TestSampledBatchIsWorkerCountInvariant(t *testing.T) {
	jobs := make([]runner.Job, 6)
	for i := range jobs {
		jobs[i] = sampledJob(2000+100*i, uint64(i+1))
	}
	serial, err := runner.New(1, nil).Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := runner.New(4, nil).Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("sampled results differ between 1 and 4 workers")
	}
	for i, r := range serial {
		if !r.Sampled {
			t.Fatalf("job %d did not report Sampled", i)
		}
	}
}

// TestSampledResultsMemoize pins the store round trip: a sampled
// result caches under its own key and replays with its sampling
// metadata intact.
func TestSampledResultsMemoize(t *testing.T) {
	store, err := runner.NewStore("")
	if err != nil {
		t.Fatal(err)
	}
	pool := runner.New(2, store)
	jobs := []runner.Job{
		{Config: testCfg(2), Prog: tinyProg(2, 2000), Seed: 1},
		sampledJob(2000, 1),
	}
	first, err := pool.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	second, err := pool.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if st := pool.Stats(); st.CacheHits != int64(len(jobs)) {
		t.Fatalf("warm batch hits = %d, want %d", st.CacheHits, len(jobs))
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatal("memoized sampled results differ from computed")
	}
	if first[0].Sampled || !first[1].Sampled {
		t.Fatalf("Sampled flags wrong: full=%v sampled=%v", first[0].Sampled, first[1].Sampled)
	}
	if second[1].Sampling != first[1].Sampling {
		t.Fatal("sampling metadata lost in the store round trip")
	}
}
