package runner

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"flashsim/internal/emitter"
	"flashsim/internal/machine"
)

// Fingerprint returns the content-addressed store key of one run: a
// hex SHA-256 over the canonical JSON encoding of the full machine
// configuration (processor count and seed included) and the workload
// identity. Two runs share a fingerprint exactly when machine.Run is
// guaranteed to produce the same Result for both.
//
// The workload identity is Program.FullName() plus the thread count;
// the apps and snbench constructors encode their parameterization in
// the Variant, which is what makes the name a sound cache key. A
// program whose Variant omits a behavior-changing parameter must not
// be memoized (leave the pool's store nil, or make the Variant
// complete).
func Fingerprint(cfg machine.Config, prog emitter.Program) string {
	h := sha256.New()
	enc := json.NewEncoder(h)
	err := enc.Encode(struct {
		Config   machine.Config
		Workload string
		Threads  int
	}{cfg, prog.FullName(), prog.Threads})
	if err != nil {
		// machine.Config is plain data; an encoding failure is a
		// programming error in a new Config field, not a runtime
		// condition.
		panic(fmt.Sprintf("runner: fingerprint encoding failed: %v", err))
	}
	return hex.EncodeToString(h.Sum(nil))
}
