package runner

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"flashsim/internal/emitter"
	"flashsim/internal/machine"
	"flashsim/internal/param"
)

// Fingerprint returns the content-addressed store key of one run: a
// hex SHA-256 over the machine configuration's canonical parameter
// encoding (param.Canonical — every registered knob by dotted path,
// keys sorted, tagged with param.SchemaVersion) and the workload
// identity. Two runs share a fingerprint exactly when machine.Run is
// guaranteed to produce the same Result for both.
//
// Hashing the canonical encoding rather than the raw struct gives the
// store three safety properties the old encoding lacked:
//
//   - configs that differ only in display labels (Config.Name) or in
//     nil-vs-explicit-default pointer fields (Config.NUMA,
//     Config.MagicTable) hash identically, so semantically identical
//     runs are never recomputed;
//   - the hash is independent of Go field order and of struct layout
//     churn that does not change the registered parameter surface;
//   - the embedded schema version changes whenever the parameter
//     surface changes incompatibly, so stale on-disk caches from an
//     older build self-invalidate instead of serving wrong results.
//
// The workload identity is Program.FullName() plus the thread count;
// the apps and snbench constructors encode their parameterization in
// the Variant, which is what makes the name a sound cache key. A
// program whose Variant omits a behavior-changing parameter must not
// be memoized (leave the pool's store nil, or make the Variant
// complete).
func Fingerprint(cfg machine.Config, prog emitter.Program) string {
	h := sha256.New()
	enc := json.NewEncoder(h)
	err := enc.Encode(struct {
		Config   json.RawMessage
		Workload string
		Threads  int
	}{param.Canonical(cfg), prog.FullName(), prog.Threads})
	if err != nil {
		// The payload is a pre-encoded JSON blob plus plain data; an
		// encoding failure is a programming error, not a runtime
		// condition.
		panic(fmt.Sprintf("runner: fingerprint encoding failed: %v", err))
	}
	return hex.EncodeToString(h.Sum(nil))
}
