package runner

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"flashsim/internal/emitter"
	"flashsim/internal/machine"
	"flashsim/internal/param"
	"flashsim/internal/trace"
)

// Fingerprint returns the content-addressed store key of one run: a
// hex SHA-256 over the machine configuration's canonical parameter
// encoding (param.Canonical — every registered knob by dotted path,
// keys sorted, tagged with param.SchemaVersion) and the workload
// identity. Two runs share a fingerprint exactly when machine.Run is
// guaranteed to produce the same Result for both.
//
// Hashing the canonical encoding rather than the raw struct gives the
// store three safety properties the old encoding lacked:
//
//   - configs that differ only in display labels (Config.Name) or in
//     nil-vs-explicit-default pointer fields (Config.NUMA,
//     Config.MagicTable) hash identically, so semantically identical
//     runs are never recomputed;
//   - the hash is independent of Go field order and of struct layout
//     churn that does not change the registered parameter surface;
//   - the embedded schema version changes whenever the parameter
//     surface changes incompatibly, so stale on-disk caches from an
//     older build self-invalidate instead of serving wrong results.
//
// The workload identity is Program.FullName() plus the thread count;
// the apps and snbench constructors encode their parameterization in
// the Variant, which is what makes the name a sound cache key. A
// program whose Variant omits a behavior-changing parameter must not
// be memoized (leave the pool's store nil, or make the Variant
// complete).
func Fingerprint(cfg machine.Config, prog emitter.Program) string {
	h := sha256.New()
	enc := json.NewEncoder(h)
	err := enc.Encode(struct {
		Config   json.RawMessage
		Workload string
		Threads  int
	}{param.Canonical(cfg), prog.FullName(), prog.Threads})
	if err != nil {
		// The payload is a pre-encoded JSON blob plus plain data; an
		// encoding failure is a programming error, not a runtime
		// condition.
		panic(fmt.Sprintf("runner: fingerprint encoding failed: %v", err))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// TraceFingerprint returns the content address of a trace artifact: the
// key a capture of prog under cfg is stored at in a TraceStore, and the
// artifact identity replay-result fingerprints chain from. It differs
// from Fingerprint in two ways: an explicit artifact kind tag (a trace
// file is not a run result — the two key spaces must never collide) and
// the trace container's FormatVersion (a container layout or stream
// semantics change must never alias artifacts written by an older
// build; TestTraceFingerprintSchemaVersioned pins this).
//
// The emitted streams themselves depend only on (workload, threads) —
// emission is config-independent and deterministic — but the key
// conservatively includes the capture configuration: a capture also
// snapshots provenance (Meta.Config, Meta.Fingerprint), and keying on
// the full tuple keeps "which run produced this trace" unambiguous.
func TraceFingerprint(cfg machine.Config, prog emitter.Program) string {
	return traceFingerprintAt(trace.FormatVersion, cfg, prog)
}

// traceFingerprintAt is TraceFingerprint pinned to an explicit format
// version, so the schema-versioning test can prove that bumping the
// version changes every key.
func traceFingerprintAt(version int, cfg machine.Config, prog emitter.Program) string {
	h := sha256.New()
	enc := json.NewEncoder(h)
	err := enc.Encode(struct {
		Kind        string
		TraceFormat int
		Config      json.RawMessage
		Workload    string
		Threads     int
	}{"trace", version, param.Canonical(cfg), prog.FullName(), prog.Threads})
	if err != nil {
		panic(fmt.Sprintf("runner: trace fingerprint encoding failed: %v", err))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// ReplayFingerprint returns the store key of a trace-driven run: replay
// of the trace artifact traceFP on the machine described by cfg. The
// kind tag keeps replay results from ever aliasing execution-driven
// results under the same configuration — the two modes agree only at
// the bottom of the detail ladder, and the store must preserve the
// difference everywhere else. Chaining the artifact fingerprint (which
// embeds trace.FormatVersion) means a trace schema bump invalidates
// the derived replay results too.
func ReplayFingerprint(cfg machine.Config, traceFP string) string {
	h := sha256.New()
	enc := json.NewEncoder(h)
	err := enc.Encode(struct {
		Kind   string
		Config json.RawMessage
		Trace  string
	}{"replay", param.Canonical(cfg), traceFP})
	if err != nil {
		panic(fmt.Sprintf("runner: replay fingerprint encoding failed: %v", err))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// TraceMeta assembles the container metadata for capturing prog under
// cfg: workload identity, capture-run fingerprint, the trace's own
// content address, and the canonical configuration snapshot. source,
// when non-nil, is a machine-readable workload spec recorded verbatim
// (tools use it to rebuild the execution-driven program).
func TraceMeta(cfg machine.Config, prog emitter.Program, source json.RawMessage) trace.Meta {
	return trace.Meta{
		Workload:    prog.FullName(),
		Threads:     prog.Threads,
		Fingerprint: Fingerprint(cfg, prog),
		Artifact:    TraceFingerprint(cfg, prog),
		Config:      param.Canonical(cfg),
		Source:      source,
	}
}
