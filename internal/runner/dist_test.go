package runner

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"flashsim/internal/machine"
	"flashsim/internal/obs"
)

// fakePeer is an in-memory PeerStore with injectable latency and
// failure, standing in for a remote flashd replica.
type fakePeer struct {
	name string

	mu      sync.Mutex
	data    map[string]machine.Result
	delay   time.Duration
	fail    error // returned by Fetch/Store when set
	down    error // returned by Health when set
	fetches int
	stores  int
}

func newFakePeer(name string) *fakePeer {
	return &fakePeer{name: name, data: make(map[string]machine.Result)}
}

func (p *fakePeer) Name() string { return p.name }

func (p *fakePeer) Fetch(ctx context.Context, key string) (machine.Result, bool, error) {
	p.mu.Lock()
	p.fetches++
	delay, fail := p.delay, p.fail
	res, ok := p.data[key]
	p.mu.Unlock()
	if delay > 0 {
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return machine.Result{}, false, ctx.Err()
		}
	}
	if fail != nil {
		return machine.Result{}, false, fail
	}
	return res, ok, nil
}

func (p *fakePeer) Store(ctx context.Context, key string, res machine.Result) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stores++
	if p.fail != nil {
		return p.fail
	}
	p.data[key] = res
	return nil
}

func (p *fakePeer) Health(ctx context.Context) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.down
}

func (p *fakePeer) set(key string, res machine.Result) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.data[key] = res
}

func (p *fakePeer) has(key string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, ok := p.data[key]
	return ok
}

func (p *fakePeer) setDelay(d time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.delay = d
}

func (p *fakePeer) setFail(err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.fail = err
}

func (p *fakePeer) setDown(err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.down = err
}

// distFixture builds a DistStore named "self" over the given fakes,
// with test-friendly timings (tiny hedge floor, no background poller).
func distFixture(t *testing.T, peers ...*fakePeer) (*DistStore, *Store, *obs.StoreCounters) {
	t.Helper()
	local, err := NewStore("")
	if err != nil {
		t.Fatal(err)
	}
	ps := make([]PeerStore, len(peers))
	for i, p := range peers {
		ps[i] = p
	}
	c := &obs.StoreCounters{}
	d := NewDistStore(DistOptions{
		Self:       "self",
		Local:      local,
		Peers:      ps,
		Vnodes:     16,
		HedgeFloor: 5 * time.Millisecond,
		Counters:   c,
	})
	t.Cleanup(d.Close)
	return d, local, c
}

// keyOwnedBy finds a key whose primary owner is the wanted member —
// the fingerprint space is dense enough that a linear probe always
// lands quickly.
func keyOwnedBy(t *testing.T, d *DistStore, want string) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		key := fmt.Sprintf("%016x", uint64(i)*0x9e3779b97f4a7c15+7)
		if d.Ring().Owner(key) == want {
			return key
		}
	}
	t.Fatalf("no key owned by %s in 10000 probes", want)
	return ""
}

func TestDistStoreNoPeersIsLocal(t *testing.T) {
	d, local, c := distFixture(t)
	key := "00deadbeef00deadbeef"
	if _, ok := d.Get(key); ok {
		t.Fatal("empty store hit")
	}
	d.Put(key, machine.Result{Instructions: 7})
	if res, ok := d.Get(key); !ok || res.Instructions != 7 {
		t.Fatalf("Get after Put = (%v, %v)", res, ok)
	}
	if n := local.Len(); n != 1 {
		t.Fatalf("local entries = %d, want 1", n)
	}
	snap := c.Snapshot()
	if snap.RemoteHits != 0 || snap.RemoteMisses != 0 || snap.Backfills != 0 {
		t.Fatalf("peerless store did network work: %+v", snap)
	}
}

func TestDistStoreRemoteHitReadsThrough(t *testing.T) {
	peer := newFakePeer("peerA")
	d, local, c := distFixture(t, peer)
	key := keyOwnedBy(t, d, "peerA")
	want := machine.Result{Instructions: 1234}
	peer.set(key, want)

	res, ok := d.Get(key)
	if !ok || res.Instructions != want.Instructions {
		t.Fatalf("Get = (%v, %v), want remote hit", res, ok)
	}
	// Read-through: the hit landed in the local backend, so the next
	// Get never leaves the process.
	if _, ok := local.Get(key); !ok {
		t.Fatal("remote hit did not fill the local backend")
	}
	before := c.Snapshot().RemoteHits
	if _, ok := d.Get(key); !ok {
		t.Fatal("second Get missed")
	}
	if c.Snapshot().RemoteHits != before {
		t.Fatal("second Get went remote despite the read-through fill")
	}
}

func TestDistStorePutBacksFillOwners(t *testing.T) {
	peer := newFakePeer("peerA")
	d, _, c := distFixture(t, peer)
	key := keyOwnedBy(t, d, "peerA")
	d.Put(key, machine.Result{Instructions: 55})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := d.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if !peer.has(key) {
		t.Fatal("owner never received the back-fill")
	}
	if got := c.Snapshot().Backfills; got != 1 {
		t.Fatalf("Backfills = %d, want 1", got)
	}

	// A self-owned key back-fills nothing.
	selfKey := keyOwnedBy(t, d, "self")
	base := peer.stores
	d.Put(selfKey, machine.Result{Instructions: 56})
	if err := d.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	peer.mu.Lock()
	after := peer.stores
	peer.mu.Unlock()
	if after != base {
		t.Fatal("self-owned Put pushed to a peer")
	}
}

func TestDistStoreHedgesSlowOwner(t *testing.T) {
	slow := newFakePeer("peerA")
	fast := newFakePeer("peerB")
	d, _, c := distFixture(t, slow, fast)
	key := keyOwnedBy(t, d, "peerA")
	want := machine.Result{Instructions: 99}
	slow.set(key, want)
	fast.set(key, want)
	// The primary owner stalls far past the 5ms hedge floor; the hedge
	// to the next owner must win.
	slow.setDelay(300 * time.Millisecond)

	start := time.Now()
	res, ok := d.Get(key)
	if !ok || res.Instructions != 99 {
		t.Fatalf("Get = (%v, %v), want hedged hit", res, ok)
	}
	if elapsed := time.Since(start); elapsed > 250*time.Millisecond {
		t.Fatalf("hedged Get took %s; it waited out the slow owner", elapsed)
	}
	snap := c.Snapshot()
	if snap.Hedges != 1 || snap.HedgeWins != 1 {
		t.Fatalf("Hedges=%d HedgeWins=%d, want 1/1", snap.Hedges, snap.HedgeWins)
	}
}

func TestDistStoreDeadOwnerAdvances(t *testing.T) {
	dead := newFakePeer("peerA")
	alive := newFakePeer("peerB")
	d, _, c := distFixture(t, dead, alive)
	key := keyOwnedBy(t, d, "peerA")
	want := machine.Result{Instructions: 77}
	alive.set(key, want)
	dead.setFail(errors.New("connection refused"))

	res, ok := d.Get(key)
	if !ok || res.Instructions != 77 {
		t.Fatalf("Get = (%v, %v), want next-owner hit", res, ok)
	}
	snap := c.Snapshot()
	if snap.RemoteErrors == 0 {
		t.Fatal("dead owner's error went uncounted")
	}
}

func TestDistStoreAllMissFallsBack(t *testing.T) {
	a := newFakePeer("peerA")
	b := newFakePeer("peerB")
	d, _, c := distFixture(t, a, b)
	key := keyOwnedBy(t, d, "peerA")
	if _, ok := d.Get(key); ok {
		t.Fatal("hit on a key nobody holds")
	}
	snap := c.Snapshot()
	if snap.Fallbacks != 1 {
		t.Fatalf("Fallbacks = %d, want 1", snap.Fallbacks)
	}
	if snap.RemoteMisses == 0 {
		t.Fatal("owner misses went uncounted")
	}
}

func TestDistStoreHealthDownRemaps(t *testing.T) {
	a := newFakePeer("peerA")
	b := newFakePeer("peerB")
	d, _, _ := distFixture(t, a, b)
	key := keyOwnedBy(t, d, "peerA")
	a.setDown(errors.New("probe timeout"))
	d.PollHealth()
	if d.Ring().IsLive("peerA") {
		t.Fatal("failed probe left the member live")
	}
	if owner := d.Ring().Owner(key); owner == "peerA" {
		t.Fatal("down member still owns keys")
	}
	// The health view reports the outage; self stays first.
	sts := d.PeerHealth()
	if sts[0].Name != "self" || !sts[0].Up {
		t.Fatalf("health view = %+v, want self first and up", sts)
	}
	found := false
	for _, st := range sts {
		if st.Name == "peerA" {
			found = true
			if st.Up || st.Err == "" {
				t.Fatalf("peerA health = %+v, want down with an error", st)
			}
		}
	}
	if !found {
		t.Fatal("peerA missing from the health view")
	}
	// Recovery restores membership.
	a.setDown(nil)
	d.PollHealth()
	if !d.Ring().IsLive("peerA") {
		t.Fatal("recovered member still down")
	}
}

func TestDistStoreGetSkipsDownOwner(t *testing.T) {
	a := newFakePeer("peerA")
	b := newFakePeer("peerB")
	d, _, c := distFixture(t, a, b)
	key := keyOwnedBy(t, d, "peerA")
	want := machine.Result{Instructions: 31}
	b.set(key, want)
	// peerA is marked down by health; the fetch must not even try it.
	a.setDown(errors.New("dead"))
	a.setFail(errors.New("dead"))
	d.PollHealth()
	res, ok := d.Get(key)
	if !ok || res.Instructions != 31 {
		t.Fatalf("Get = (%v, %v), want hit from the surviving owner", res, ok)
	}
	if got := c.Snapshot().RemoteErrors; got != 0 {
		t.Fatalf("RemoteErrors = %d; the down owner was contacted", got)
	}
}

func TestDistStoreConcurrentAccess(t *testing.T) {
	peer := newFakePeer("peerA")
	d, _, _ := distFixture(t, peer)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("%016x", uint64(g*1000+i))
				d.Put(key, machine.Result{Instructions: uint64(i)})
				d.Get(key)
			}
		}(g)
	}
	wg.Wait()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := d.Flush(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestLatWindowPercentile(t *testing.T) {
	w := &latWindow{}
	if _, ok := w.percentile(0.95); ok {
		t.Fatal("percentile reported ok with no samples")
	}
	for i := 1; i <= 100; i++ {
		w.observe(time.Duration(i) * time.Millisecond)
	}
	p95, ok := w.percentile(0.95)
	if !ok {
		t.Fatal("percentile not ok after 100 samples")
	}
	if p95 < 90*time.Millisecond || p95 > 100*time.Millisecond {
		t.Fatalf("p95 = %s, want ~95ms", p95)
	}
	// The window is bounded: ancient samples roll off.
	for i := 0; i < 128; i++ {
		w.observe(time.Millisecond)
	}
	p95, _ = w.percentile(0.95)
	if p95 != time.Millisecond {
		t.Fatalf("p95 after rollover = %s, want 1ms", p95)
	}
}
