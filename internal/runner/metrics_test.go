package runner_test

import (
	"context"
	"reflect"
	"testing"

	"flashsim/internal/obs"
	"flashsim/internal/runner"
)

// TestPoolRecordsMetricsForFreshRuns pins the pool→collector hookup:
// every successful run's metrics land in the attached collector.
func TestPoolRecordsMetricsForFreshRuns(t *testing.T) {
	col := obs.NewCollector()
	p := runner.New(2, nil)
	p.SetMetrics(col)
	jobs := seedBatch(6)
	if _, err := p.Run(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	rep := col.Snapshot()
	if rep.Total.Runs != 6 {
		t.Fatalf("collector saw %d runs, want 6", rep.Total.Runs)
	}
	if rep.Total.Instructions == 0 || rep.Total.Queue.Fired == 0 || rep.Total.Emitter.Batches == 0 {
		t.Fatalf("collected metrics are empty: %+v", rep.Total)
	}
	// seedBatch varies the workload, so the report splits per
	// (config, workload) pair: one row per job, all under one config.
	if len(rep.PerConfig) != 6 {
		t.Fatalf("per-config rows = %d, want 6", len(rep.PerConfig))
	}
	for _, row := range rep.PerConfig {
		if row.Config != "runner-test-machine" || row.Runs != 1 {
			t.Fatalf("per-config row wrong: %+v", row)
		}
	}
}

// TestCacheHitReplaysStoredMetrics pins the "metrics ride alongside
// memoized results" contract: a cache hit must deliver the same metrics
// to the collector that the original run recorded, re-stamped with the
// requesting config's label.
func TestCacheHitReplaysStoredMetrics(t *testing.T) {
	store, err := runner.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	job := runner.Job{Config: testCfg(1), Prog: tinyProg(1, 700), Seed: 3}

	colA := obs.NewCollector()
	pa := runner.New(1, store)
	pa.SetMetrics(colA)
	if _, err := pa.Run(context.Background(), []runner.Job{job}); err != nil {
		t.Fatal(err)
	}

	// Second pool, same store: the job must hit, not run.
	colB := obs.NewCollector()
	pb := runner.New(1, store)
	pb.SetMetrics(colB)
	relabeled := job
	relabeled.Config.Name = "relabeled"
	out := pb.RunAll(context.Background(), []runner.Job{relabeled})
	if out[0].Err != nil || !out[0].Cached {
		t.Fatalf("expected cache hit, got %+v", out[0])
	}
	a, b := colA.Snapshot(), colB.Snapshot()
	if b.Total.Runs != 1 {
		t.Fatalf("hit not recorded: %+v", b.Total)
	}
	if out[0].Result.Metrics.Config != "relabeled" || b.Total.Config != "relabeled" {
		t.Fatalf("hit metrics not re-stamped: result=%q collected=%q",
			out[0].Result.Metrics.Config, b.Total.Config)
	}
	// Apart from the label, the replayed metrics are bit-identical.
	am, bm := a.Total, b.Total
	am.Config, bm.Config = "", ""
	if !reflect.DeepEqual(am, bm) {
		t.Fatalf("cached metrics differ from fresh ones:\n%+v\n%+v", am, bm)
	}
}

// TestFailedRunsRecordNoMetrics: a panicking or failing job must not
// pollute the collector.
func TestFailedRunsRecordNoMetrics(t *testing.T) {
	col := obs.NewCollector()
	p := runner.New(1, nil)
	p.SetMetrics(col)
	bad := runner.Job{Config: testCfg(1), Prog: tinyProg(2, 100)} // thread mismatch
	out := p.RunAll(context.Background(), []runner.Job{bad})
	if out[0].Err == nil {
		t.Fatal("expected the mismatched job to fail")
	}
	if got := col.Runs(); got != 0 {
		t.Fatalf("failed job recorded %d runs", got)
	}
}
