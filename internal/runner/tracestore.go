package runner

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"flashsim/internal/trace"
)

// traceExt is the trace container file extension.
const traceExt = ".fltr"

// TraceStore is a content-addressed directory of trace containers,
// keyed by TraceFingerprint: the store-once/replay-many side of
// trace-driven simulation. Unlike Store it holds no decoded state in
// memory — containers are large and a Trace is cheap to re-decode
// relative to capture — it only brokers files. Safe for concurrent
// use; Save is atomic (temp file + rename), so readers never observe a
// half-written container and a crashed capture leaves no poisoned key.
type TraceStore struct {
	dir string
	mu  sync.Mutex // serializes Save per process; rename gives atomicity
}

// NewTraceStore returns a trace store rooted at dir, creating it if
// missing.
func NewTraceStore(dir string) (*TraceStore, error) {
	if dir == "" {
		return nil, fmt.Errorf("runner: trace store needs a directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &TraceStore{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *TraceStore) Dir() string { return s.dir }

// Path returns the file path a fingerprint maps to.
func (s *TraceStore) Path(fp string) string {
	return filepath.Join(s.dir, fp+traceExt)
}

// Has reports whether the store holds a container for fp.
func (s *TraceStore) Has(fp string) bool {
	if !validFP(fp) {
		return false
	}
	_, err := os.Stat(s.Path(fp))
	return err == nil
}

// Save captures a container under fp by streaming write's output into
// a temporary file and renaming it into place. If fp already exists it
// is left untouched and Save returns (false, nil) without invoking
// write — store once, replay many.
func (s *TraceStore) Save(fp string, write func(w io.Writer) error) (bool, error) {
	if !validFP(fp) {
		return false, fmt.Errorf("runner: invalid trace fingerprint %q", fp)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	dst := s.Path(fp)
	if _, err := os.Stat(dst); err == nil {
		return false, nil
	}
	tmp, err := os.CreateTemp(s.dir, "capture-*.tmp")
	if err != nil {
		return false, err
	}
	defer os.Remove(tmp.Name())
	if err := write(tmp); err != nil {
		tmp.Close()
		return false, err
	}
	if err := tmp.Close(); err != nil {
		return false, err
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		return false, err
	}
	return true, nil
}

// Load decodes the container stored under fp.
func (s *TraceStore) Load(fp string) (*trace.Trace, error) {
	if !validFP(fp) {
		return nil, fmt.Errorf("runner: invalid trace fingerprint %q", fp)
	}
	tr, err := trace.ReadFile(s.Path(fp))
	if err != nil {
		return nil, fmt.Errorf("runner: trace %s: %w", fp, err)
	}
	return tr, nil
}

// validFP keeps fingerprints path-safe: lowercase hex, as produced by
// the fingerprint functions.
func validFP(fp string) bool {
	if fp == "" || len(fp) > 128 {
		return false
	}
	return strings.IndexFunc(fp, func(r rune) bool {
		return !(r >= '0' && r <= '9' || r >= 'a' && r <= 'f')
	}) < 0
}
