package runner_test

import (
	"context"
	"os"
	"testing"

	"flashsim/internal/machine"
	"flashsim/internal/runner"
)

// fillStore runs n distinct jobs through a fresh pool over store and
// returns their jobs and results, submission order = access order
// (job i accessed before job i+1).
func fillStore(t *testing.T, store *runner.Store, n int) ([]runner.Job, []machine.Result) {
	t.Helper()
	jobs := make([]runner.Job, n)
	for i := range jobs {
		jobs[i] = runner.Job{Config: testCfg(1), Prog: tinyProg(1, 300+i), Seed: uint64(i + 1)}
	}
	pool := runner.New(1, store)
	results, err := pool.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	return jobs, results
}

// entrySize measures how many bytes one memoized entry occupies on
// disk, so bounds in the tests scale with the Result encoding instead
// of hard-coding byte counts.
func entrySize(t *testing.T) int64 {
	t.Helper()
	dir := t.TempDir()
	store, err := runner.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	fillStore(t, store, 1)
	files := cacheFiles(t, dir)
	if len(files) != 1 {
		t.Fatalf("probe store holds %d files", len(files))
	}
	info, err := osStat(files[0])
	if err != nil {
		t.Fatal(err)
	}
	return info
}

// TestBoundedStoreEvictsLRUWithoutCorruption is the satellite's pinned
// contract: a byte-bounded store evicts by access recency, the disk
// footprint stays under the bound, and every surviving entry still
// round-trips to the exact Result it memoized.
func TestBoundedStoreEvictsLRUWithoutCorruption(t *testing.T) {
	size := entrySize(t)
	dir := t.TempDir()
	// Budget for ~4 entries, then insert 10.
	budget := 4*size + size/2
	store, err := runner.NewBoundedStore(dir, budget)
	if err != nil {
		t.Fatal(err)
	}
	jobs, want := fillStore(t, store, 10)

	if store.Evictions() == 0 {
		t.Fatal("no evictions despite overflow")
	}
	if db := store.DiskBytes(); db > budget {
		t.Errorf("disk footprint %d exceeds budget %d", db, budget)
	}
	if files := cacheFiles(t, dir); len(files) > 5 {
		t.Errorf("%d files survive a ~4-entry budget", len(files))
	}

	// Survivors must be exact: read every remaining entry through a
	// FRESH store (so hits come from disk, not the writer's memory) and
	// compare to the original results.
	reread, err := runner.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	survivors := 0
	for i, j := range jobs {
		res, ok := reread.Get(j.Fingerprint())
		if !ok {
			continue
		}
		survivors++
		got, wantRes := res, want[i]
		if got.Exec != wantRes.Exec || got.Instructions != wantRes.Instructions {
			t.Errorf("job %d: surviving entry corrupted: exec %v/%v instr %d/%d",
				i, got.Exec, wantRes.Exec, got.Instructions, wantRes.Instructions)
		}
	}
	if survivors == 0 {
		t.Error("eviction left no survivors at all")
	}

	// Evicted entries are clean misses for the bounded store itself
	// too: re-running every job must recompute exactly the evicted ones
	// and return bit-identical results (determinism is the oracle).
	pool := runner.New(1, store)
	again, err := pool.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if want[i].Exec != again[i].Exec {
			t.Errorf("job %d: recomputed result differs after eviction", i)
		}
	}
}

// TestBoundedStoreAccessRecencyDecidesVictims: touching an old entry
// promotes it over untouched newer ones.
func TestBoundedStoreAccessRecencyDecidesVictims(t *testing.T) {
	size := entrySize(t)
	dir := t.TempDir()
	store, err := runner.NewBoundedStore(dir, 3*size+size/2)
	if err != nil {
		t.Fatal(err)
	}
	jobs, _ := fillStore(t, store, 3) // fits: 0,1,2 resident

	// Touch job 0 so job 1 is now the least recently accessed.
	if _, ok := store.Get(jobs[0].Fingerprint()); !ok {
		t.Fatal("warm entry missing")
	}
	// Insert a fourth entry; job 1 must be the victim.
	extra := runner.Job{Config: testCfg(1), Prog: tinyProg(1, 900), Seed: 99}
	if out := runner.New(1, store).RunOne(context.Background(), extra); out.Err != nil {
		t.Fatal(out.Err)
	}
	if _, ok := store.Get(jobs[1].Fingerprint()); ok {
		t.Error("least-recently-accessed entry survived")
	}
	for _, j := range []runner.Job{jobs[0], jobs[2], extra} {
		if _, ok := store.Get(j.Fingerprint()); !ok {
			t.Errorf("recently-accessed entry %s was evicted", j.Prog.FullName())
		}
	}
}

// TestBoundedStoreInventoriesExistingDir: reopening a directory counts
// the old entries against the budget and evicts oldest-first.
func TestBoundedStoreInventoriesExistingDir(t *testing.T) {
	size := entrySize(t)
	dir := t.TempDir()
	unbounded, err := runner.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	fillStore(t, unbounded, 6)
	if n := len(cacheFiles(t, dir)); n != 6 {
		t.Fatalf("seed dir holds %d files", n)
	}

	bounded, err := runner.NewBoundedStore(dir, 2*size+size/2)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(cacheFiles(t, dir)); n > 3 {
		t.Errorf("reopen kept %d files over a ~2-entry budget", n)
	}
	if bounded.DiskBytes() > bounded.MaxBytes() {
		t.Errorf("footprint %d over budget %d after reopen", bounded.DiskBytes(), bounded.MaxBytes())
	}
}

// osStat returns a file's size.
func osStat(path string) (int64, error) {
	info, err := os.Stat(path)
	if err != nil {
		return 0, err
	}
	return info.Size(), nil
}
