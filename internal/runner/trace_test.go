package runner

import (
	"fmt"
	"io"
	"testing"

	"flashsim/internal/emitter"
	"flashsim/internal/machine"
	"flashsim/internal/trace"
)

func fpProg(threads int) emitter.Program {
	return emitter.Program{
		Name:    "fp-test",
		Threads: threads,
		Body: func(t *emitter.Thread, _ any) {
			t.IntOps(10)
		},
	}
}

// TestTraceFingerprintSchemaVersioned extends the fingerprint
// schema-versioning guarantees to the trace artifact kind: the trace
// key space is disjoint from run-result keys, the replay key space is
// disjoint from both, and a container FormatVersion bump changes every
// trace key — a new schema must never alias cache entries written by
// an old one.
func TestTraceFingerprintSchemaVersioned(t *testing.T) {
	cfg := machine.Base(2, true)
	cfg.Name = "fp-machine"
	prog := fpProg(2)

	run := Fingerprint(cfg, prog)
	tr := TraceFingerprint(cfg, prog)
	rp := ReplayFingerprint(cfg, tr)
	if run == tr || run == rp || tr == rp {
		t.Fatalf("artifact kinds must occupy disjoint key spaces: run=%s trace=%s replay=%s", run, tr, rp)
	}

	// The trace key is pinned to the container format version.
	if traceFingerprintAt(trace.FormatVersion, cfg, prog) != tr {
		t.Fatal("TraceFingerprint must hash the current FormatVersion")
	}
	if bumped := traceFingerprintAt(trace.FormatVersion+1, cfg, prog); bumped == tr {
		t.Fatal("a FormatVersion bump must change every trace fingerprint")
	}

	// Replay keys chain from the artifact: a different trace (e.g. one
	// written under a bumped schema) yields a different replay key
	// under the same machine configuration.
	other := traceFingerprintAt(trace.FormatVersion+1, cfg, prog)
	if ReplayFingerprint(cfg, other) == rp {
		t.Fatal("replay fingerprints must chain the trace artifact identity")
	}

	// Like run fingerprints, trace keys see semantics, not labels.
	renamed := cfg
	renamed.Name = "other-label"
	if TraceFingerprint(renamed, prog) != tr {
		t.Error("Name-only change must not change the trace fingerprint")
	}
	changed := cfg
	changed.ClockMHz = 300
	if TraceFingerprint(changed, prog) == tr {
		t.Error("config change must change the trace fingerprint")
	}
}

func TestTraceMetaPopulated(t *testing.T) {
	cfg := machine.Base(2, true)
	prog := fpProg(2)
	meta := TraceMeta(cfg, prog, []byte(`{"app":"x"}`))
	if meta.Workload != prog.FullName() || meta.Threads != 2 {
		t.Fatalf("identity wrong: %+v", meta)
	}
	if meta.Fingerprint != Fingerprint(cfg, prog) || meta.Artifact != TraceFingerprint(cfg, prog) {
		t.Fatalf("provenance wrong: %+v", meta)
	}
	if len(meta.Config) == 0 || string(meta.Source) != `{"app":"x"}` {
		t.Fatalf("snapshots missing: %+v", meta)
	}
}

func TestTraceStoreSaveOnceLoad(t *testing.T) {
	ts, err := NewTraceStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const fp = "00ab"
	if ts.Has(fp) {
		t.Fatal("empty store claims fingerprint")
	}
	write := func(w io.Writer) error {
		tw, err := trace.NewWriter(w, trace.Meta{Workload: "w", Threads: 1})
		if err != nil {
			return err
		}
		return tw.Finish()
	}
	stored, err := ts.Save(fp, write)
	if err != nil || !stored {
		t.Fatalf("first save: stored=%v err=%v", stored, err)
	}
	// Store-once: the second save must not re-invoke the writer.
	stored, err = ts.Save(fp, func(io.Writer) error {
		t.Fatal("duplicate save invoked the writer")
		return nil
	})
	if err != nil || stored {
		t.Fatalf("second save: stored=%v err=%v", stored, err)
	}
	if !ts.Has(fp) {
		t.Fatal("stored fingerprint not found")
	}
	tr, err := ts.Load(fp)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Workload() != "w" {
		t.Fatalf("loaded wrong container: %+v", tr.Meta())
	}
}

func TestTraceStoreFailedSaveLeavesNoEntry(t *testing.T) {
	ts, err := NewTraceStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	boom := fmt.Errorf("capture failed")
	if _, err := ts.Save("ff01", func(io.Writer) error { return boom }); err != boom {
		t.Fatalf("err = %v", err)
	}
	if ts.Has("ff01") {
		t.Fatal("failed save left a poisoned entry")
	}
}

// TestReplayJobsMemoizeUnderReplayKey runs one captured trace through
// a pooled replay twice: the second run must be a cache hit, under a
// key distinct from the execution-driven run's (both kinds coexist in
// one store), and an artifact-less image must not be memoized at all.
func TestReplayJobsMemoizeUnderReplayKey(t *testing.T) {
	cfg := machine.Base(2, true)
	cfg.Name = "replay-memo"
	prog := emitter.Program{
		Name:    "memo-prog",
		Threads: 2,
		Body: func(th *emitter.Thread, _ any) {
			th.Barrier(emitter.BarrierStart)
			th.IntOps(500)
			th.Store(0x1000+uint64(th.ID)*8, 8, emitter.None, emitter.None)
			th.Barrier(emitter.BarrierEnd)
		},
	}
	var buf writerBuffer
	tw, err := trace.NewWriter(&buf, TraceMeta(cfg, prog, nil))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := machine.RunCapture(cfg, prog, tw); err != nil {
		t.Fatal(err)
	}
	tr, err := trace.Decode(buf.data)
	if err != nil {
		t.Fatal(err)
	}
	img, err := machine.PrepareReplay(tr)
	if err != nil {
		t.Fatal(err)
	}

	execJob := Job{Config: cfg, Prog: prog}
	replayJob := Job{Config: cfg, Replay: img}
	if replayJob.Fingerprint() == execJob.Fingerprint() || replayJob.Fingerprint() == "" {
		t.Fatalf("replay key must be distinct and non-empty: %q", replayJob.Fingerprint())
	}

	store, err := NewStore("")
	if err != nil {
		t.Fatal(err)
	}
	pool := New(1, store)
	ctx := t.Context()
	first := pool.RunOne(ctx, replayJob)
	if first.Err != nil {
		t.Fatal(first.Err)
	}
	if first.Cached {
		t.Fatal("first replay should miss")
	}
	second := pool.RunOne(ctx, replayJob)
	if second.Err != nil {
		t.Fatal(second.Err)
	}
	if !second.Cached {
		t.Fatal("second replay should hit the memo store")
	}

	// An image with no artifact address never memoizes.
	anonMeta := trace.Meta{Workload: prog.FullName(), Threads: prog.Threads}
	var buf2 writerBuffer
	tw2, err := trace.NewWriter(&buf2, anonMeta)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := machine.RunCapture(cfg, prog, tw2); err != nil {
		t.Fatal(err)
	}
	tr2, err := trace.Decode(buf2.data)
	if err != nil {
		t.Fatal(err)
	}
	img2, err := machine.PrepareReplay(tr2)
	if err != nil {
		t.Fatal(err)
	}
	anon := Job{Config: cfg, Replay: img2}
	if anon.Fingerprint() != "" {
		t.Fatal("artifact-less replay job must have an empty key")
	}
	out := pool.RunOne(ctx, anon)
	if out.Err != nil || out.Cached {
		t.Fatalf("anonymous replay: %+v", out)
	}
}

// writerBuffer is a minimal io.Writer accumulating bytes (avoids
// importing bytes just for one buffer).
type writerBuffer struct{ data []byte }

func (w *writerBuffer) Write(p []byte) (int, error) {
	w.data = append(w.data, p...)
	return len(p), nil
}

func TestTraceStoreRejectsUnsafeFingerprints(t *testing.T) {
	ts, err := NewTraceStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, fp := range []string{"", "../evil", "ABCD", "xyz/q", "a b"} {
		if ts.Has(fp) {
			t.Errorf("Has(%q) = true", fp)
		}
		if _, err := ts.Save(fp, func(io.Writer) error { return nil }); err == nil {
			t.Errorf("Save(%q) accepted", fp)
		}
		if _, err := ts.Load(fp); err == nil {
			t.Errorf("Load(%q) accepted", fp)
		}
	}
}
