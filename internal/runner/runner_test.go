package runner_test

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"flashsim/internal/emitter"
	"flashsim/internal/machine"
	"flashsim/internal/magic"
	"flashsim/internal/memsys"
	"flashsim/internal/param"
	"flashsim/internal/runner"
)

// tinyProg is a minimal timed workload: a barrier-delimited burst of
// integer work, enough to exercise the full run loop in microseconds.
func tinyProg(threads, ops int) emitter.Program {
	return emitter.Program{
		Name:    "runner-test",
		Variant: fmt.Sprintf("ops=%d", ops),
		Threads: threads,
		Body: func(t *emitter.Thread, _ any) {
			t.Barrier(emitter.BarrierStart)
			t.IntOps(ops)
			t.Barrier(emitter.BarrierEnd)
		},
	}
}

func testCfg(procs int) machine.Config {
	cfg := machine.Base(procs, true)
	cfg.Name = "runner-test-machine"
	cfg.JitterPct = 0.5 // make the seed observable in the result
	return cfg
}

func seedBatch(n int) []runner.Job {
	jobs := make([]runner.Job, n)
	for i := range jobs {
		jobs[i] = runner.Job{Config: testCfg(1), Prog: tinyProg(1, 500+i), Seed: uint64(i + 1)}
	}
	return jobs
}

func TestResultsAreInSubmissionOrderAndWorkerCountInvariant(t *testing.T) {
	jobs := seedBatch(10)
	serial, err := runner.New(1, nil).Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := runner.New(8, nil).Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Error("parallel results differ from serial results")
	}
	// Distinct seeds under jitter must give distinct times, proving the
	// order was preserved rather than all jobs being identical.
	distinct := map[string]bool{}
	for _, r := range serial {
		distinct[fmt.Sprint(r.Exec)] = true
	}
	if len(distinct) < 2 {
		t.Error("seeds produced indistinguishable results; order check is vacuous")
	}
}

// TestConcurrentRunsShareNoQueueState pins the concurrency contract
// documented on Pool: the event free list in internal/sim is per-queue,
// so machines running side by side on pool workers recycle events
// strictly within their own run. Identical jobs executed concurrently
// must be bit-identical to the same jobs run serially, and the race
// detector (CI runs this package under -race) catches any mutable
// queue state leaking between runs.
func TestConcurrentRunsShareNoQueueState(t *testing.T) {
	if runner.DefaultWorkers() < 1 {
		t.Fatalf("DefaultWorkers() = %d, want >= 1", runner.DefaultWorkers())
	}
	job := runner.Job{Config: testCfg(2), Prog: tinyProg(2, 2000), Seed: 7}
	jobs := []runner.Job{job, job, job, job}
	serial := runner.New(1, nil).RunAll(context.Background(), jobs)
	concurrent := runner.New(len(jobs), nil).RunAll(context.Background(), jobs)
	for i := range jobs {
		if serial[i].Err != nil {
			t.Fatalf("serial run %d: %v", i, serial[i].Err)
		}
		if concurrent[i].Err != nil {
			t.Fatalf("concurrent run %d: %v", i, concurrent[i].Err)
		}
		if !reflect.DeepEqual(serial[i].Result, concurrent[i].Result) {
			t.Errorf("run %d: concurrent result differs from serial", i)
		}
	}
}

func TestPanicFailsTheJobNotTheProcess(t *testing.T) {
	bad := runner.Job{Config: testCfg(1), Prog: emitter.Program{
		Name:    "runner-test",
		Variant: "panics",
		Threads: 1,
		Setup:   func(*emitter.AddressSpace) any { panic("boom") },
		Body:    func(*emitter.Thread, any) {},
	}}
	jobs := []runner.Job{bad, {Config: testCfg(1), Prog: tinyProg(1, 100)}}
	outs := runner.New(4, nil).RunAll(context.Background(), jobs)
	if outs[0].Err == nil || !strings.Contains(outs[0].Err.Error(), "boom") {
		t.Errorf("panicking job error = %v, want the panic value and stack", outs[0].Err)
	}
	if outs[1].Err != nil {
		t.Errorf("healthy job failed alongside the panicking one: %v", outs[1].Err)
	}
	if _, err := runner.New(1, nil).Run(context.Background(), jobs); err == nil {
		t.Error("Run should surface the first failed job")
	}
}

func TestJobErrorIsPerJob(t *testing.T) {
	mismatched := runner.Job{Config: testCfg(2), Prog: tinyProg(1, 100)} // threads != procs
	outs := runner.New(2, nil).RunAll(context.Background(), []runner.Job{
		{Config: testCfg(1), Prog: tinyProg(1, 100)}, mismatched,
	})
	if outs[0].Err != nil {
		t.Errorf("good job failed: %v", outs[0].Err)
	}
	if outs[1].Err == nil {
		t.Error("mismatched job should fail")
	}
}

func TestCancellationFailsUnstartedJobs(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	outs := runner.New(4, nil).RunAll(ctx, seedBatch(6))
	for i, o := range outs {
		if o.Err == nil {
			t.Errorf("job %d ran under a dead context", i)
		}
	}
}

func TestStoreMemoizesWithinAProcess(t *testing.T) {
	store, err := runner.NewStore("")
	if err != nil {
		t.Fatal(err)
	}
	pool := runner.New(4, store)
	jobs := seedBatch(6)

	first, err := pool.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	cold := pool.Stats()
	if cold.Ran != int64(len(jobs)) || cold.CacheHits != 0 {
		t.Fatalf("cold stats: %+v", cold)
	}

	second, err := pool.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	warm := pool.Stats().Sub(cold)
	if warm.Ran != 0 {
		t.Errorf("warm batch performed %d new runs, want 0", warm.Ran)
	}
	if warm.CacheHits != int64(len(jobs)) || warm.HitRate() != 1 {
		t.Errorf("warm batch hits = %d (rate %.2f), want %d (1.00)",
			warm.CacheHits, warm.HitRate(), len(jobs))
	}
	if !reflect.DeepEqual(first, second) {
		t.Error("memoized results differ from computed results")
	}
}

func TestStorePersistsAcrossProcesses(t *testing.T) {
	dir := t.TempDir()
	jobs := seedBatch(4)

	store1, err := runner.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	pool1 := runner.New(2, store1)
	first, err := pool1.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if err := store1.Err(); err != nil {
		t.Fatalf("disk writes failed: %v", err)
	}

	// A fresh store over the same directory simulates a new process.
	store2, err := runner.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	pool2 := runner.New(2, store2)
	second, err := pool2.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if st := pool2.Stats(); st.Ran != 0 || st.CacheHits != int64(len(jobs)) {
		t.Errorf("persistent cache not hit: %+v", st)
	}
	if !reflect.DeepEqual(first, second) {
		t.Error("disk round trip changed the results")
	}
}

func TestFingerprintSeparatesRuns(t *testing.T) {
	base := runner.Job{Config: testCfg(1), Prog: tinyProg(1, 100), Seed: 1}
	same := base
	if base.Fingerprint() != same.Fingerprint() {
		t.Error("identical jobs should share a fingerprint")
	}
	keys := map[string]string{"base": base.Fingerprint()}
	variants := map[string]runner.Job{
		"seed":     {Config: base.Config, Prog: base.Prog, Seed: 2},
		"workload": {Config: base.Config, Prog: tinyProg(1, 101), Seed: 1},
	}
	cfg2 := testCfg(1)
	cfg2.ClockMHz = 300
	variants["config"] = runner.Job{Config: cfg2, Prog: base.Prog, Seed: 1}
	for name, j := range variants {
		k := j.Fingerprint()
		for prev, pk := range keys {
			if k == pk {
				t.Errorf("%s variant collides with %s", name, prev)
			}
		}
		keys[name] = k
	}
}

func TestStatsString(t *testing.T) {
	pool := runner.New(1, nil)
	if _, err := pool.Run(context.Background(), seedBatch(2)); err != nil {
		t.Fatal(err)
	}
	s := pool.Stats()
	if s.Jobs != 2 || s.Ran != 2 {
		t.Fatalf("stats: %+v", s)
	}
	if str := s.String(); !strings.Contains(str, "2 jobs") {
		t.Errorf("String() = %q", str)
	}
	if s.MeanRunTime() <= 0 {
		t.Error("mean run time should be positive")
	}
}

func TestFingerprintIsCanonical(t *testing.T) {
	base := runner.Job{Config: testCfg(2), Prog: tinyProg(1, 100), Seed: 1}

	// Display labels are not semantics: renamed configs share a key.
	renamed := base
	renamed.Config.Name = "Tuned FlashLite"
	if base.Fingerprint() != renamed.Fingerprint() {
		t.Error("Name-only change must not change the fingerprint")
	}

	// nil and explicitly materialized default pointer fields are the
	// same simulator.
	materialized := base
	nd := memsys.DefaultNUMAConfig(materialized.Config.Procs)
	materialized.Config.NUMA = &nd
	mt := magic.RTLOccupancies()
	materialized.Config.MagicTable = &mt
	if base.Fingerprint() != materialized.Fingerprint() {
		t.Error("nil-vs-default pointer fields must not change the fingerprint")
	}

	// A semantic change through either form does.
	changed := materialized
	nd2 := nd
	nd2.HopNS += 5
	changed.Config.NUMA = &nd2
	if base.Fingerprint() == changed.Fingerprint() {
		t.Error("NUMA parameter change must change the fingerprint")
	}

	// The schema version is part of the key (stale caches from older
	// layouts must miss).
	if !strings.Contains(string(param.Canonical(base.Config)), fmt.Sprintf(`"schema":%d`, param.SchemaVersion)) {
		t.Error("canonical payload must carry the schema version")
	}
}

func TestCacheHitRestampsConfigLabel(t *testing.T) {
	store, err := runner.NewStore("")
	if err != nil {
		t.Fatal(err)
	}
	job := runner.Job{Config: testCfg(1), Prog: tinyProg(1, 200), Seed: 1}
	pool := runner.New(1, store)
	if _, err := pool.Run(context.Background(), []runner.Job{job}); err != nil {
		t.Fatal(err)
	}
	renamed := job
	renamed.Config.Name = "same machine, new label"
	res, err := pool.Run(context.Background(), []runner.Job{renamed})
	if err != nil {
		t.Fatal(err)
	}
	if st := pool.Stats(); st.CacheHits != 1 {
		t.Fatalf("rename should hit the cache: %+v", st)
	}
	if res[0].Config != renamed.Config.Name {
		t.Errorf("cached result label = %q, want %q", res[0].Config, renamed.Config.Name)
	}
}
