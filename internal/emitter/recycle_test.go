package emitter

import (
	"testing"

	"flashsim/internal/isa"
)

// TestBatchBuffersAreRecycled pins the slab pool: a stream long enough
// to cycle the pool many times must keep reusing the same backing
// arrays rather than allocating one per send.
func TestBatchBuffersAreRecycled(t *testing.T) {
	const batches = 64 // well past poolSize circulations
	s := Start(1, func(th *Thread) { th.IntOps(batches * BatchSize) })
	rd := s.Readers[0]
	seen := map[*isa.Instr]int{} // first-element pointer identifies a slab
	n := 0
	for {
		if _, ok := rd.Next(); !ok {
			break
		}
		n++
		seen[&rd.buf[0]]++
	}
	s.Wait()
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	if n != batches*BatchSize {
		t.Fatalf("consumed %d instructions, want %d", n, batches*BatchSize)
	}
	if len(seen) > poolSize {
		t.Fatalf("saw %d distinct batch buffers over %d batches; pool of %d is not recycling",
			len(seen), batches, poolSize)
	}
}

// TestEmitterSteadyStateZeroAlloc pins the tentpole invariant on the
// emit/consume cycle: once the pool is primed, Thread.emit and
// Reader.Next allocate nothing. The emitting goroutine's channel parks
// can transiently allocate scheduler bookkeeping (sudog caching), so
// the bound is "essentially zero per instruction", not a hard zero per
// round.
func TestEmitterSteadyStateZeroAlloc(t *testing.T) {
	const perRound = 4 * BatchSize
	const rounds = 16
	s := Start(1, func(th *Thread) {
		// Enough instructions for warmup plus every measured round.
		th.IntOps(perRound * (rounds + 4))
	})
	defer s.Abort()
	rd := s.Readers[0]
	for i := 0; i < 2*perRound; i++ { // warm the pool to steady state
		if _, ok := rd.Next(); !ok {
			t.Fatal("stream ended during warmup")
		}
	}
	avg := testing.AllocsPerRun(rounds-1, func() {
		for i := 0; i < perRound; i++ {
			if _, ok := rd.Next(); !ok {
				t.Fatal("stream ended during measurement")
			}
		}
	})
	// perRound instructions and 4 batch hand-offs per round: even one
	// alloc per *batch* would show up as >= 4.
	if avg > 2 {
		t.Fatalf("steady-state consume allocates %.1f allocs per %d instructions, want ~0", avg, perRound)
	}
}

// BenchmarkEmitterThroughput measures the raw produce/consume rate of
// one thread's instruction stream in steady state — the figure the
// batch-recycling change moves. Allocations are reported; steady state
// must be 0 allocs/op.
func BenchmarkEmitterThroughput(b *testing.B) {
	s := Start(1, func(th *Thread) {
		for {
			th.IntOps(BatchSize)
		}
	})
	defer s.Abort()
	rd := s.Readers[0]
	for i := 0; i < 2*poolSize*BatchSize; i++ { // prime the pool
		rd.Next()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := rd.Next(); !ok {
			b.Fatal("stream ended")
		}
	}
}
