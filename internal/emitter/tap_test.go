package emitter

import (
	"reflect"
	"sync"
	"testing"

	"flashsim/internal/isa"
)

// tapRecorder accumulates tapped batches per thread. Each thread's tap
// calls arrive from that thread's emitting goroutine, so per-thread
// slices need no locking; the map is pre-sized.
type tapRecorder struct {
	mu      sync.Mutex
	streams map[int][]isa.Instr
	batches map[int]int
}

func (r *tapRecorder) tap(thread int, batch []isa.Instr) {
	// The contract forbids retaining batch; copy before the pool
	// recycles the slab.
	cp := append([]isa.Instr(nil), batch...)
	r.mu.Lock()
	r.streams[thread] = append(r.streams[thread], cp...)
	r.batches[thread]++
	r.mu.Unlock()
}

// TestTapMirrorsStreams pins the capture contract: a tapped emission
// delivers every batch to the tap, in order, identical to what the
// readers consume — across batch boundaries and multiple threads —
// without disturbing the reader side or the slab pool discipline.
func TestTapMirrorsStreams(t *testing.T) {
	const threads = 3
	const perThread = 3*BatchSize + 17 // cross several batch boundaries
	rec := &tapRecorder{streams: make(map[int][]isa.Instr), batches: make(map[int]int)}
	s := StartTapped(threads, func(th *Thread) {
		for i := 0; i < perThread; i++ {
			th.Store(uint64(0x1000+8*i), 8, None, None)
		}
	}, rec.tap)

	read := make([][]isa.Instr, threads)
	var wg sync.WaitGroup
	for i := range s.Readers {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			read[i] = drain(s.Readers[i])
		}(i)
	}
	wg.Wait()
	s.Wait()
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	wantBatches := (perThread + BatchSize - 1) / BatchSize
	for i := 0; i < threads; i++ {
		if !reflect.DeepEqual(rec.streams[i], read[i]) {
			t.Fatalf("thread %d: tap saw %d instructions, reader %d (or order differs)",
				i, len(rec.streams[i]), len(read[i]))
		}
		if rec.batches[i] != wantBatches {
			t.Fatalf("thread %d: tap called %d times, want %d", i, rec.batches[i], wantBatches)
		}
	}
	// Tap calls equal channel sends, so the counters agree with the
	// recorder — the accounting replay relies on (trace footer Batches).
	c := s.Counters()
	if c.Batches != uint64(threads*wantBatches) || c.Instructions != uint64(threads*perThread) {
		t.Fatalf("counters %+v, want %d batches / %d instructions",
			c, threads*wantBatches, threads*perThread)
	}
	// Full pool discipline: every consumed slab was recycled.
	if c.SlabReuses != c.Batches {
		t.Fatalf("slab reuses %d != batches %d: tap broke pool discipline", c.SlabReuses, c.Batches)
	}
}

// TestStartIsUntapped pins that the plain Start path has no tap (the
// hot path stays a nil check).
func TestStartIsUntapped(t *testing.T) {
	s := Start(1, func(th *Thread) { th.Store(0x1000, 8, None, None) })
	ins := drain(s.Readers[0])
	s.Wait()
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	if len(ins) != 1 {
		t.Fatalf("emitted %d instructions", len(ins))
	}
}
