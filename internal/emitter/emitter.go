// Package emitter turns ordinary Go code into per-thread instruction
// streams of the synthetic ISA.
//
// A workload (see internal/apps) is a real algorithm whose inner loops
// are written against the Thread API: t.Load/t.Store/t.FPAdd/... Each
// call both performs no actual data movement (the algorithm keeps its
// data in normal Go variables) and appends one isa.Instr, with true data
// dependences tracked through Val handles, to a batched channel that the
// processor models consume. This reproduces the paper's methodology of
// running the *same binary* on every platform: the identical instruction
// stream is replayed by Mipsy, MXS, and the hardware reference model.
//
// Threads run as goroutines and synchronize with *real* barriers and
// mutexes that mirror the semantic BARRIER/LOCK instructions they emit,
// so a parallel algorithm computes consistent data while its timing is
// decided entirely by the simulated machine. The emitted sync
// instruction is always flushed to the channel before the goroutine
// blocks, which makes the scheme deadlock-free: by the time every
// simulated processor has arrived at a barrier, every emitter goroutine
// has already arrived at the real one.
package emitter

import (
	"fmt"
	"sync"

	"flashsim/internal/isa"
	"flashsim/internal/obs"
)

// BatchSize is the number of instructions per channel send. Batching
// amortizes channel overhead to well under 10 ns per instruction.
const BatchSize = 2048

// chanDepth is the number of in-flight batches per thread.
const chanDepth = 8

// poolSize is the number of instruction-batch buffers per thread. The
// buffers circulate: Thread fills one, sends it on the data channel,
// and takes its next from the free channel, which the Reader refills as
// it finishes consuming each batch. chanDepth can be in flight, one is
// being filled, and the slack buffer keeps the producer from blocking
// on the Reader's hand-off in steady state — so a billion-instruction
// run reuses this fixed set of slabs instead of allocating one per
// send.
const poolSize = chanDepth + 1

// maxDepDistance caps encoded dependence distances; anything further
// back than this is out of every model's window and irrelevant.
const maxDepDistance = 1 << 20

// Tap observes each flushed batch of one thread's instruction stream.
// It is invoked on the emitting goroutine, immediately before the batch
// is handed to the consumer, so the batch slice is still owned by the
// producer: the tap must finish with it before returning and must not
// retain it (the slab goes back into the recycling pool). Taps for
// different threads run concurrently; a tap implementation that shares
// state across threads must synchronize it itself.
type Tap func(thread int, batch []isa.Instr)

// Val is a handle to the value produced by a previously emitted
// instruction, used to express data dependences.
type Val struct {
	idx uint64 // 1 + absolute index of the producing instruction; 0 = none
}

// None is the zero Val: no dependence.
var None Val

// Thread is the per-thread emission context handed to workload code.
type Thread struct {
	// ID is the thread index, 0..NThreads-1.
	ID int
	// N is the total number of threads in the program.
	N int

	coord *Coordinator
	ch    chan []isa.Instr
	free  chan []isa.Instr // recycled batch buffers from the Reader
	abort <-chan struct{}
	buf   []isa.Instr
	count uint64 // instructions emitted so far
	rng   uint64 // per-thread deterministic PRNG state
	held  map[uint32]*sync.Mutex
	tap   Tap
}

// releaseHeld unlocks any real mutexes held when the goroutine unwinds
// on abort, so sibling emitters blocked in Lock can also unwind.
func (t *Thread) releaseHeld() {
	for id, m := range t.held {
		m.Unlock()
		delete(t.held, id)
	}
}

func (t *Thread) dist(v Val) uint32 {
	if v.idx == 0 {
		return 0
	}
	d := t.count + 1 - v.idx // distance from the instruction being emitted now
	if d >= maxDepDistance {
		return 0
	}
	return uint32(d)
}

func (t *Thread) emit(in isa.Instr) Val {
	t.buf = append(t.buf, in)
	t.count++
	if len(t.buf) == BatchSize {
		t.flush()
	}
	return Val{idx: t.count}
}

func (t *Thread) flush() {
	if len(t.buf) == 0 {
		return
	}
	if t.tap != nil {
		// Mirror the batch before it leaves the producer: the tap reads
		// from the slab we still own, so the pool discipline below is
		// untouched and the consumer never sees the copy cost.
		t.tap(t.ID, t.buf)
	}
	select {
	case t.ch <- t.buf:
	case <-t.abort:
		panic(abortPanic{})
	}
	// Take the next slab from the recycling pool. The Reader returns
	// each consumed buffer before blocking for the next batch, so this
	// receive cannot deadlock against a live consumer; an abandoned
	// consumer is handled by the abort arm.
	select {
	case b := <-t.free:
		t.buf = b[:0]
	case <-t.abort:
		panic(abortPanic{})
	}
}

// abortPanic unwinds an emitter goroutine when the consumer has stopped.
type abortPanic struct{}

// Count returns the number of instructions this thread has emitted.
func (t *Thread) Count() uint64 { return t.count }

// Load emits a load of size bytes at addr, depending on up to two prior
// values (e.g. the value that the address was computed from). It returns
// the loaded value's handle.
func (t *Thread) Load(addr uint64, size uint32, d1, d2 Val) Val {
	return t.emit(isa.Instr{Op: isa.Load, Addr: addr, Size: size, Dep1: t.dist(d1), Dep2: t.dist(d2)})
}

// Store emits a store of size bytes at addr whose data depends on d1 and
// whose address depends on d2.
func (t *Thread) Store(addr uint64, size uint32, d1, d2 Val) {
	t.emit(isa.Instr{Op: isa.Store, Addr: addr, Size: size, Dep1: t.dist(d1), Dep2: t.dist(d2)})
}

// Prefetch emits a non-binding prefetch of the line containing addr.
func (t *Thread) Prefetch(addr uint64) {
	t.emit(isa.Instr{Op: isa.Prefetch, Addr: addr, Size: 4})
}

// CacheOp emits a MIPS CACHE instruction (sub-operation aux) on the line
// containing addr.
func (t *Thread) CacheOp(addr uint64, aux uint32) {
	t.emit(isa.Instr{Op: isa.CacheOp, Addr: addr, Size: 4, Aux: aux})
}

// Op emits a non-memory instruction of kind op with dependences d1, d2.
func (t *Thread) Op(op isa.Op, d1, d2 Val) Val {
	return t.emit(isa.Instr{Op: op, Dep1: t.dist(d1), Dep2: t.dist(d2)})
}

// IntALU emits a 1-cycle integer op.
func (t *Thread) IntALU(d1, d2 Val) Val { return t.Op(isa.IntALU, d1, d2) }

// IntMul emits an integer multiply.
func (t *Thread) IntMul(d1, d2 Val) Val { return t.Op(isa.IntMul, d1, d2) }

// IntDiv emits an integer divide.
func (t *Thread) IntDiv(d1, d2 Val) Val { return t.Op(isa.IntDiv, d1, d2) }

// FPAdd emits a floating-point add.
func (t *Thread) FPAdd(d1, d2 Val) Val { return t.Op(isa.FPAdd, d1, d2) }

// FPMul emits a floating-point multiply.
func (t *Thread) FPMul(d1, d2 Val) Val { return t.Op(isa.FPMul, d1, d2) }

// FPDiv emits a floating-point divide.
func (t *Thread) FPDiv(d1, d2 Val) Val { return t.Op(isa.FPDiv, d1, d2) }

// Branch emits a conditional branch.
func (t *Thread) Branch(d1 Val) { t.Op(isa.Branch, d1, None) }

// IntOps emits n untracked 1-cycle integer ops (address arithmetic, loop
// overhead) in bulk.
func (t *Thread) IntOps(n int) {
	for i := 0; i < n; i++ {
		t.emit(isa.Instr{Op: isa.IntALU})
	}
}

// Syscall emits a system call with number aux.
func (t *Thread) Syscall(aux uint32) {
	t.emit(isa.Instr{Op: isa.Syscall, Aux: aux})
}

// Barrier emits a BARRIER instruction and then joins the real barrier so
// that program data stays phase-consistent across threads.
func (t *Thread) Barrier(id uint32) {
	t.emit(isa.Instr{Op: isa.Barrier, Aux: id})
	t.flush()
	t.coord.barrier(id, t.N).await(t.abort)
}

// Lock emits a LOCK instruction and acquires the mirroring real mutex.
func (t *Thread) Lock(id uint32) {
	t.emit(isa.Instr{Op: isa.Lock, Aux: id})
	t.flush()
	m := t.coord.lock(id)
	m.Lock()
	if t.held == nil {
		t.held = make(map[uint32]*sync.Mutex)
	}
	t.held[id] = m
}

// Unlock releases the real mutex and emits an UNLOCK instruction.
func (t *Thread) Unlock(id uint32) {
	if m, ok := t.held[id]; ok {
		m.Unlock()
		delete(t.held, id)
	}
	t.emit(isa.Instr{Op: isa.Unlock, Aux: id})
	t.flush()
}

// Rand returns a deterministic per-thread pseudo-random uint64
// (xorshift64*), for workloads that need reproducible random input.
func (t *Thread) Rand() uint64 {
	x := t.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	t.rng = x
	return x * 0x2545F4914F6CDD1D
}

// Coordinator owns the real synchronization objects shared by the
// emitter goroutines of one program run.
type Coordinator struct {
	mu       sync.Mutex
	aborted  bool
	barriers map[uint32]*cyclicBarrier
	locks    map[uint32]*sync.Mutex
}

func newCoordinator() *Coordinator {
	return &Coordinator{
		barriers: make(map[uint32]*cyclicBarrier),
		locks:    make(map[uint32]*sync.Mutex),
	}
}

func (c *Coordinator) barrier(id uint32, n int) *cyclicBarrier {
	c.mu.Lock()
	defer c.mu.Unlock()
	b, ok := c.barriers[id]
	if !ok {
		b = &cyclicBarrier{n: n, aborted: c.aborted}
		b.cond = sync.NewCond(&b.mu)
		c.barriers[id] = b
	}
	return b
}

func (c *Coordinator) lock(id uint32) *sync.Mutex {
	c.mu.Lock()
	defer c.mu.Unlock()
	l, ok := c.locks[id]
	if !ok {
		l = &sync.Mutex{}
		c.locks[id] = l
	}
	return l
}

// cyclicBarrier is a reusable counting barrier.
type cyclicBarrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	n       int
	count   int
	gen     uint64
	aborted bool
}

func (b *cyclicBarrier) await(abort <-chan struct{}) {
	b.mu.Lock()
	if b.aborted {
		b.mu.Unlock()
		panic(abortPanic{})
	}
	gen := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for b.gen == gen && !b.aborted {
		// A cond var cannot select on abort; the consumer aborts
		// runs by releasing all barriers (see Streams.Abort).
		b.cond.Wait()
	}
	b.mu.Unlock()
	select {
	case <-abort:
		panic(abortPanic{})
	default:
	}
}

// release permanently unblocks all current and future waiters (abort).
func (b *cyclicBarrier) release() {
	b.mu.Lock()
	b.aborted = true
	b.count = 0
	b.gen++
	b.cond.Broadcast()
	b.mu.Unlock()
}

// Reader consumes one thread's instruction stream.
//
// The counters are plain fields: Next runs on the consumer goroutine
// (the machine's event loop) only, so no synchronization is needed and
// none would be affordable on this path.
type Reader struct {
	ch      <-chan []isa.Instr
	free    chan<- []isa.Instr // consumed buffers go back to the Thread
	buf     []isa.Instr
	pos     int
	done    bool
	read    uint64
	batches uint64
	reuses  uint64 // consumed buffers successfully recycled to the pool
}

// Next returns the next instruction, or ok=false at end of stream.
func (r *Reader) Next() (in isa.Instr, ok bool) {
	if r.pos >= len(r.buf) {
		if r.done {
			return isa.Instr{}, false
		}
		if r.buf != nil {
			// Recycle the consumed batch before blocking for the next
			// one, so the producer always has a slab to fill. The pool
			// channel has room for every buffer in circulation, so this
			// send never blocks; the default arm only covers readers
			// fed outside Start (tests).
			select {
			case r.free <- r.buf[:0]:
				r.reuses++
			default:
			}
			r.buf = nil
		}
		batch, open := <-r.ch
		if !open {
			r.done = true
			return isa.Instr{}, false
		}
		r.buf = batch
		r.pos = 0
		r.batches++
	}
	in = r.buf[r.pos]
	r.pos++
	r.read++
	return in, true
}

// Consumed returns how many instructions have been read.
func (r *Reader) Consumed() uint64 { return r.read }

// Batches returns how many instruction batches have been consumed.
func (r *Reader) Batches() uint64 { return r.batches }

// SlabReuses returns how many consumed batch buffers went back to the
// producer's recycling pool.
func (r *Reader) SlabReuses() uint64 { return r.reuses }

// Streams is a running program: one Reader per thread plus abort
// plumbing.
type Streams struct {
	Readers []*Reader
	coord   *Coordinator
	abortCh chan struct{}
	once    sync.Once
	wg      sync.WaitGroup
	errMu   sync.Mutex
	err     error
}

// Abort stops all emitter goroutines (used when a simulation is
// abandoned early). Safe to call multiple times.
func (s *Streams) Abort() {
	s.once.Do(func() {
		close(s.abortCh)
		s.coord.mu.Lock()
		s.coord.aborted = true
		bs := make([]*cyclicBarrier, 0, len(s.coord.barriers))
		for _, b := range s.coord.barriers {
			bs = append(bs, b)
		}
		s.coord.mu.Unlock()
		for _, b := range bs {
			b.release()
		}
	})
	s.wg.Wait()
}

// Err returns the first panic (other than abort) raised by a workload
// goroutine, if any.
func (s *Streams) Err() error {
	s.errMu.Lock()
	defer s.errMu.Unlock()
	return s.err
}

// Wait blocks until all emitter goroutines have finished.
func (s *Streams) Wait() { s.wg.Wait() }

// Counters sums the consumer-side stream counters across all Readers.
// Call it from the consumer goroutine after the run drains (the Reader
// counters are unsynchronized by design).
func (s *Streams) Counters() obs.EmitterCounters {
	var c obs.EmitterCounters
	for _, r := range s.Readers {
		c.Batches += r.batches
		c.Instructions += r.read
		c.SlabReuses += r.reuses
	}
	return c
}

// Start launches nthreads goroutines running body and returns their
// streams. body receives the per-thread emission context.
func Start(nthreads int, body func(t *Thread)) *Streams {
	return StartTapped(nthreads, body, nil)
}

// StartTapped is Start with a Tap mirroring every flushed batch (nil
// behaves exactly like Start).
func StartTapped(nthreads int, body func(t *Thread), tap Tap) *Streams {
	if nthreads <= 0 {
		panic("emitter: nthreads must be positive")
	}
	s := &Streams{
		Readers: make([]*Reader, nthreads),
		coord:   newCoordinator(),
		abortCh: make(chan struct{}),
	}
	for i := 0; i < nthreads; i++ {
		ch := make(chan []isa.Instr, chanDepth)
		// The batch pool: poolSize slabs per thread, allocated once here
		// and recycled through free for the life of the stream. One
		// starts in the Thread's hands; the rest wait in free.
		free := make(chan []isa.Instr, poolSize)
		for j := 0; j < poolSize-1; j++ {
			free <- make([]isa.Instr, 0, BatchSize)
		}
		s.Readers[i] = &Reader{ch: ch, free: free}
		t := &Thread{
			ID:    i,
			N:     nthreads,
			coord: s.coord,
			ch:    ch,
			free:  free,
			abort: s.abortCh,
			buf:   make([]isa.Instr, 0, BatchSize),
			rng:   0x9E3779B97F4A7C15 ^ (uint64(i+1) * 0xBF58476D1CE4E5B9),
			tap:   tap,
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer close(ch)
			defer func() {
				if r := recover(); r != nil {
					t.releaseHeld()
					if _, isAbort := r.(abortPanic); isAbort {
						return
					}
					s.errMu.Lock()
					if s.err == nil {
						s.err = fmt.Errorf("emitter thread %d panicked: %v", t.ID, r)
					}
					s.errMu.Unlock()
				}
			}()
			body(t)
			t.flush()
		}()
	}
	return s
}
