package emitter

import (
	"testing"

	"flashsim/internal/isa"
)

// drain collects all instructions from a reader.
func drain(r *Reader) []isa.Instr {
	var out []isa.Instr
	for {
		in, ok := r.Next()
		if !ok {
			return out
		}
		out = append(out, in)
	}
}

func TestSingleThreadEmission(t *testing.T) {
	s := Start(1, func(th *Thread) {
		v := th.Load(0x1000, 8, None, None)
		w := th.IntALU(v, None)
		th.Store(0x2000, 8, w, None)
	})
	ins := drain(s.Readers[0])
	s.Wait()
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	if len(ins) != 3 {
		t.Fatalf("emitted %d instructions, want 3", len(ins))
	}
	if ins[0].Op != isa.Load || ins[1].Op != isa.IntALU || ins[2].Op != isa.Store {
		t.Fatalf("ops: %v", ins)
	}
	if ins[1].Dep1 != 1 {
		t.Errorf("ALU should depend on load at distance 1, got %d", ins[1].Dep1)
	}
	if ins[2].Dep1 != 1 {
		t.Errorf("store should depend on ALU at distance 1, got %d", ins[2].Dep1)
	}
}

func TestDependenceDistances(t *testing.T) {
	s := Start(1, func(th *Thread) {
		a := th.Load(0, 8, None, None) // idx 0
		th.IntOps(5)                   // idx 1..5
		th.FPAdd(a, None)              // idx 6: distance 6
	})
	ins := drain(s.Readers[0])
	s.Wait()
	if ins[6].Dep1 != 6 {
		t.Fatalf("distance = %d, want 6", ins[6].Dep1)
	}
}

func TestNoneDependence(t *testing.T) {
	s := Start(1, func(th *Thread) {
		th.IntALU(None, None)
	})
	ins := drain(s.Readers[0])
	s.Wait()
	if ins[0].Dep1 != 0 || ins[0].Dep2 != 0 {
		t.Fatalf("None should encode 0: %v", ins[0])
	}
}

func TestBatchBoundary(t *testing.T) {
	n := BatchSize*3 + 17
	s := Start(1, func(th *Thread) { th.IntOps(n) })
	ins := drain(s.Readers[0])
	s.Wait()
	if len(ins) != n {
		t.Fatalf("got %d instructions, want %d", len(ins), n)
	}
}

func TestBarrierKeepsThreadsConsistent(t *testing.T) {
	const nt = 4
	shared := make([]int, nt)
	s := Start(nt, func(th *Thread) {
		shared[th.ID] = th.ID + 1
		th.Barrier(5)
		sum := 0
		for _, v := range shared {
			sum += v
		}
		if sum != nt*(nt+1)/2 {
			panic("barrier did not order writes")
		}
		th.IntOps(1)
	})
	done := make(chan struct{})
	go func() {
		for _, r := range s.Readers {
			drain(r)
		}
		close(done)
	}()
	<-done
	s.Wait()
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestBarrierInstructionFlushedBeforeBlocking(t *testing.T) {
	// One thread reaches the barrier; its BARRIER instruction must be
	// readable even though the other thread has not arrived yet.
	s := Start(2, func(th *Thread) {
		if th.ID == 0 {
			th.Barrier(9)
			return
		}
		th.IntOps(3)
		th.Barrier(9)
	})
	in, ok := s.Readers[0].Next()
	if !ok || in.Op != isa.Barrier || in.Aux != 9 {
		t.Fatalf("expected barrier instruction, got %v ok=%v", in, ok)
	}
	drain(s.Readers[0])
	drain(s.Readers[1])
	s.Wait()
}

func TestLockMutualExclusion(t *testing.T) {
	const nt = 4
	counter := 0
	s := Start(nt, func(th *Thread) {
		for i := 0; i < 100; i++ {
			th.Lock(1)
			counter++
			th.Unlock(1)
		}
	})
	done := make(chan struct{})
	go func() {
		for _, r := range s.Readers {
			drain(r)
		}
		close(done)
	}()
	<-done
	s.Wait()
	if counter != nt*100 {
		t.Fatalf("lost updates: %d", counter)
	}
}

func TestAbortUnblocksEverything(t *testing.T) {
	s := Start(2, func(th *Thread) {
		th.IntOps(BatchSize * 100) // will block on channel backpressure
		th.Barrier(1)
	})
	// Do not consume; abort must unwind both goroutines.
	s.Abort()
	if err := s.Err(); err != nil {
		t.Fatalf("abort should not report an error: %v", err)
	}
}

func TestAbortWhileHoldingLock(t *testing.T) {
	s := Start(2, func(th *Thread) {
		th.Lock(1)
		th.IntOps(BatchSize * 100) // blocks on backpressure holding the lock
		th.Unlock(1)
	})
	s.Abort()
}

func TestWorkloadPanicIsReported(t *testing.T) {
	s := Start(1, func(th *Thread) {
		panic("boom")
	})
	drain(s.Readers[0])
	s.Wait()
	if err := s.Err(); err == nil {
		t.Fatal("expected panic to surface via Err")
	}
}

func TestRandDeterministicPerThread(t *testing.T) {
	collect := func() [2]uint64 {
		var got [2]uint64
		s := Start(2, func(th *Thread) {
			v := th.Rand()
			got[th.ID] = v
		})
		for _, r := range s.Readers {
			drain(r)
		}
		s.Wait()
		return got
	}
	a, b := collect(), collect()
	if a != b {
		t.Fatalf("Rand not deterministic: %v vs %v", a, b)
	}
	if a[0] == a[1] {
		t.Fatal("threads share a PRNG stream")
	}
}

func TestReaderConsumedCount(t *testing.T) {
	s := Start(1, func(th *Thread) { th.IntOps(10) })
	r := s.Readers[0]
	drain(r)
	s.Wait()
	if r.Consumed() != 10 {
		t.Fatalf("consumed %d, want 10", r.Consumed())
	}
}

func TestStartRejectsZeroThreads(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Start(0, func(*Thread) {})
}
