package emitter

import (
	"fmt"
	"sort"
)

// Well-known barrier ids delimiting the timed parallel section: the
// study reports "execution time for the parallel section of each
// application". Programs join BarrierStart once initialization is done
// and BarrierEnd when the timed phase completes; the machine records
// the release times. Application-internal barriers use ids >= 16.
const (
	BarrierStart uint32 = 1
	BarrierEnd   uint32 = 2
)

// Placement is a NUMA data-placement hint attached to a region by the
// workload, mirroring the explicit data placement the SPLASH-2 programs
// perform on FLASH ("multiprocessor versions perform data placement to
// minimize communication and coherence traffic").
type Placement struct {
	Kind PlacementKind
	// Node is the home node for PlaceOnNode.
	Node int
	// Stride is the bytes-per-node block size for PlaceBlocked.
	Stride uint64
}

// PlacementKind selects how a region's pages are distributed over nodes.
type PlacementKind uint8

const (
	// PlaceInterleaved round-robins pages across all nodes (default).
	PlaceInterleaved PlacementKind = iota
	// PlaceBlocked gives each node a contiguous Stride-byte chunk, in
	// node order, wrapping. This is the placement the tuned SPLASH-2
	// codes use: each processor's partition is local.
	PlaceBlocked
	// PlaceOnNode puts every page on a single node. With Node=0 this
	// is the "unplaced" hotspot configuration of Figure 7.
	PlaceOnNode
	// PlaceFirstTouch homes each page on the node that first touches
	// it.
	PlaceFirstTouch
)

// String names the placement kind.
func (k PlacementKind) String() string {
	switch k {
	case PlaceInterleaved:
		return "interleaved"
	case PlaceBlocked:
		return "blocked"
	case PlaceOnNode:
		return "on-node"
	case PlaceFirstTouch:
		return "first-touch"
	}
	return fmt.Sprintf("placement(%d)", uint8(k))
}

// Region is a named range of the program's virtual address space.
type Region struct {
	Name  string
	Base  uint64
	Size  uint64
	Place Placement
}

// Contains reports whether addr falls inside the region.
func (r Region) Contains(addr uint64) bool {
	return addr >= r.Base && addr < r.Base+r.Size
}

// AddressSpace hands out virtual regions to a program during Setup. The
// base address starts above the zero page; region layout is entirely
// deterministic (allocations happen in Setup, before threads start).
type AddressSpace struct {
	next    uint64
	regions []Region
}

// NewAddressSpace returns an address space whose first region starts at
// 64 KB (leaving a guard at zero, like a real process image).
func NewAddressSpace() *AddressSpace {
	return &AddressSpace{next: 1 << 16}
}

// Alloc carves out size bytes aligned to align (which must be a power of
// two; 0 means 64-byte alignment) with the given placement hint.
func (as *AddressSpace) Alloc(name string, size, align uint64, place Placement) Region {
	if size == 0 {
		panic("emitter: zero-size region " + name)
	}
	if align == 0 {
		align = 64
	}
	if align&(align-1) != 0 {
		panic(fmt.Sprintf("emitter: region %s alignment %d is not a power of two", name, align))
	}
	base := (as.next + align - 1) &^ (align - 1)
	r := Region{Name: name, Base: base, Size: size, Place: place}
	as.regions = append(as.regions, r)
	as.next = base + size
	return r
}

// AllocPageAligned is Alloc with 4 KB alignment, the common case for the
// large shared arrays.
func (as *AddressSpace) AllocPageAligned(name string, size uint64, place Placement) Region {
	return as.Alloc(name, size, 4096, place)
}

// Regions returns all allocated regions in address order.
func (as *AddressSpace) Regions() []Region {
	out := make([]Region, len(as.regions))
	copy(out, as.regions)
	sort.Slice(out, func(i, j int) bool { return out[i].Base < out[j].Base })
	return out
}

// Span returns the highest allocated address (exclusive).
func (as *AddressSpace) Span() uint64 { return as.next }

// RestoreAddressSpace reconstructs an address space from a recorded
// layout (regions plus span), for replaying a captured trace: the OS
// model's page table needs FindRegion over the same regions the
// capture run allocated, without re-running the program's Setup.
func RestoreAddressSpace(regions []Region, span uint64) *AddressSpace {
	rs := make([]Region, len(regions))
	copy(rs, regions)
	return &AddressSpace{next: span, regions: rs}
}

// FindRegion returns the region containing addr, if any.
func (as *AddressSpace) FindRegion(addr uint64) (Region, bool) {
	for _, r := range as.regions {
		if r.Contains(addr) {
			return r, true
		}
	}
	return Region{}, false
}

// Program is a complete workload: a deterministic Setup that lays out
// the address space and computes shared input data, and a Body run by
// every thread.
type Program struct {
	// Name identifies the workload ("fft", "radix", ...).
	Name string
	// Variant distinguishes parameterizations ("tlb-blocked",
	// "radix=256", "unplaced", ...). Informational.
	Variant string
	// Threads is the number of parallel threads (= processors used).
	Threads int
	// Setup lays out regions and builds shared state. It runs once,
	// single-threaded, before any Body starts.
	Setup func(as *AddressSpace) any
	// Body is the per-thread kernel; shared is Setup's return value.
	Body func(t *Thread, shared any)
	// Tap, when non-nil, mirrors every flushed instruction batch (trace
	// capture). It does not contribute to the program's identity:
	// FullName and the runner fingerprints ignore it, because the
	// emitted streams are byte-identical with or without a tap.
	Tap Tap
}

// Launch runs Setup and starts the emitter goroutines. It returns the
// address space (for the OS model to map) and the live streams.
func (p Program) Launch() (*AddressSpace, *Streams) {
	if p.Threads <= 0 {
		panic("emitter: program has no threads")
	}
	as := NewAddressSpace()
	var shared any
	if p.Setup != nil {
		shared = p.Setup(as)
	}
	s := StartTapped(p.Threads, func(t *Thread) { p.Body(t, shared) }, p.Tap)
	return as, s
}

// FullName returns "name/variant" or just the name.
func (p Program) FullName() string {
	if p.Variant == "" {
		return p.Name
	}
	return p.Name + "/" + p.Variant
}
