package emitter

import (
	"testing"
	"testing/quick"
)

func TestAddressSpaceLayout(t *testing.T) {
	as := NewAddressSpace()
	a := as.Alloc("a", 100, 0, Placement{})
	b := as.Alloc("b", 200, 0, Placement{})
	if a.Base < 1<<16 {
		t.Fatalf("first region below guard: %x", a.Base)
	}
	if b.Base < a.Base+a.Size {
		t.Fatalf("regions overlap: a=%x+%d b=%x", a.Base, a.Size, b.Base)
	}
	if a.Base%64 != 0 {
		t.Fatalf("default alignment violated: %x", a.Base)
	}
}

func TestAllocPageAligned(t *testing.T) {
	as := NewAddressSpace()
	as.Alloc("pad", 100, 0, Placement{})
	r := as.AllocPageAligned("big", 10000, Placement{})
	if r.Base%4096 != 0 {
		t.Fatalf("not page aligned: %x", r.Base)
	}
}

func TestAllocRejectsBadInput(t *testing.T) {
	as := NewAddressSpace()
	mustPanic := func(f func()) {
		defer func() { recover() }()
		f()
		t.Fatal("expected panic")
	}
	mustPanic(func() { as.Alloc("z", 0, 0, Placement{}) })
	mustPanic(func() { as.Alloc("z", 10, 3, Placement{}) })
}

func TestFindRegion(t *testing.T) {
	as := NewAddressSpace()
	a := as.AllocPageAligned("a", 8192, Placement{})
	if r, ok := as.FindRegion(a.Base + 4097); !ok || r.Name != "a" {
		t.Fatal("lookup inside region failed")
	}
	if _, ok := as.FindRegion(a.Base + a.Size); ok {
		t.Fatal("lookup past region end should miss")
	}
	if _, ok := as.FindRegion(0); ok {
		t.Fatal("zero page should not be mapped")
	}
}

func TestRegionsSortedAndSpan(t *testing.T) {
	as := NewAddressSpace()
	as.Alloc("a", 100, 0, Placement{})
	b := as.Alloc("b", 100, 0, Placement{})
	rs := as.Regions()
	if len(rs) != 2 || rs[0].Name != "a" || rs[1].Name != "b" {
		t.Fatalf("regions %v", rs)
	}
	if as.Span() != b.Base+b.Size {
		t.Fatalf("span %x, want %x", as.Span(), b.Base+b.Size)
	}
}

// TestRegionsNeverOverlapProperty: any sequence of allocations yields
// disjoint regions.
func TestRegionsNeverOverlapProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		as := NewAddressSpace()
		for i, sz := range sizes {
			if sz == 0 {
				sz = 1
			}
			as.Alloc(string(rune('a'+i%26)), uint64(sz), 0, Placement{})
		}
		rs := as.Regions()
		for i := 1; i < len(rs); i++ {
			if rs[i].Base < rs[i-1].Base+rs[i-1].Size {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestProgramLaunch(t *testing.T) {
	p := Program{
		Name:    "demo",
		Threads: 2,
		Setup: func(as *AddressSpace) any {
			return as.AllocPageAligned("data", 4096, Placement{})
		},
		Body: func(th *Thread, shared any) {
			r := shared.(Region)
			th.Load(r.Base, 8, None, None)
		},
	}
	space, streams := p.Launch()
	defer streams.Abort()
	if space.Span() == 0 {
		t.Fatal("empty address space")
	}
	for _, r := range streams.Readers {
		if _, ok := r.Next(); !ok {
			t.Fatal("no instructions")
		}
	}
	streams.Wait()
}

func TestProgramFullName(t *testing.T) {
	p := Program{Name: "fft"}
	if p.FullName() != "fft" {
		t.Fatal(p.FullName())
	}
	p.Variant = "tlb"
	if p.FullName() != "fft/tlb" {
		t.Fatal(p.FullName())
	}
}

func TestPlacementKindString(t *testing.T) {
	for _, k := range []PlacementKind{PlaceInterleaved, PlaceBlocked, PlaceOnNode, PlaceFirstTouch} {
		if k.String() == "" {
			t.Errorf("kind %d unnamed", k)
		}
	}
}

func TestRegionContains(t *testing.T) {
	r := Region{Base: 0x1000, Size: 0x100}
	if !r.Contains(0x1000) || !r.Contains(0x10ff) {
		t.Fatal("boundary containment")
	}
	if r.Contains(0xfff) || r.Contains(0x1100) {
		t.Fatal("exterior containment")
	}
}
