// Package core implements the paper's methodology — closing the
// simulation loop. It provides:
//
//   - Reference: the hardware gold standard, measured like real
//     hardware (averaging several seeded runs);
//   - the seven study simulator configurations (Solo-Mipsy and
//     SimOS-Mipsy at 150/225/300 MHz, SimOS-MXS at 150 MHz), untuned
//     exactly as the paper describes them;
//   - Calibrator: the microbenchmark-driven tuning loop that fixes the
//     TLB-refill cost, enables and fits the secondary-cache interface
//     occupancy, and tunes FlashLite's timing constants until the five
//     dependent-load protocol cases match the hardware (Table 3);
//   - Study: relative-execution-time comparison of simulators against
//     the reference (Figures 1–4);
//   - TrendAnalyzer: speedup-curve prediction studies (Figures 5–7);
//   - the error taxonomy with injectable historical defects (§3.1.2).
package core

import (
	"fmt"

	"flashsim/internal/machine"
	"flashsim/internal/memsys"
	"flashsim/internal/osmodel"
)

// Untuned TLB-refill costs of the study simulators ("The Mipsy processor
// model takes 25 cycles for these 14 instructions. MXS ... predicts 35
// cycles." The hardware takes 65.)
const (
	UntunedMipsyTLBCycles = 25
	UntunedMXSTLBCycles   = 35
)

// SimOSMipsy returns the SimOS-Mipsy simulator at the given core clock
// (150, 225, or 300 MHz), untuned: 25-cycle TLB refills, design-estimate
// FlashLite timing, no secondary-cache interface occupancy, unit
// instruction latencies.
func SimOSMipsy(procs, mhz int, scaled bool) machine.Config {
	cfg := machine.Base(procs, scaled)
	cfg.Name = fmt.Sprintf("SimOS-Mipsy %dMHz", mhz)
	cfg.CPU = machine.CPUMipsy
	cfg.ClockMHz = mhz
	cfg.OS = osmodel.DefaultSimOS()
	cfg.OS.TLBHandlerCycles = UntunedMipsyTLBCycles
	cfg.Mem = machine.MemFlashLite
	cfg.FlashTiming = memsys.DesignTiming()
	return cfg
}

// SimOSMXS returns the SimOS-MXS simulator: the generic out-of-order
// model at the hardware clock, untuned: 35-cycle TLB refills, no R10000
// corner cases, design-estimate FlashLite timing.
func SimOSMXS(procs int, scaled bool) machine.Config {
	cfg := machine.Base(procs, scaled)
	cfg.Name = "SimOS-MXS 150MHz"
	cfg.CPU = machine.CPUMXS
	cfg.ClockMHz = 150
	cfg.OS = osmodel.DefaultSimOS()
	cfg.OS.TLBHandlerCycles = UntunedMXSTLBCycles
	cfg.Mem = machine.MemFlashLite
	cfg.FlashTiming = memsys.DesignTiming()
	return cfg
}

// SoloMipsy returns the Solo-Mipsy simulator at the given clock: no
// operating system (backdoor syscalls, no TLB, Solo's own sequential
// physical allocation), design-estimate FlashLite timing.
func SoloMipsy(procs, mhz int, scaled bool) machine.Config {
	cfg := machine.Base(procs, scaled)
	cfg.Name = fmt.Sprintf("Solo-Mipsy %dMHz", mhz)
	cfg.CPU = machine.CPUMipsy
	cfg.ClockMHz = mhz
	cfg.OS = osmodel.DefaultSolo()
	cfg.Mem = machine.MemFlashLite
	cfg.FlashTiming = memsys.DesignTiming()
	return cfg
}

// StandardConfigs returns the seven simulator configurations of
// Figures 1–4, in the figures' X-axis order: SimOS-Mipsy at 150, 225,
// and 300 MHz, SimOS-MXS at 150 MHz, then Solo-Mipsy at 150, 225, and
// 300 MHz.
func StandardConfigs(procs int, scaled bool) []machine.Config {
	return []machine.Config{
		SimOSMipsy(procs, 150, scaled),
		SimOSMipsy(procs, 225, scaled),
		SimOSMipsy(procs, 300, scaled),
		SimOSMXS(procs, scaled),
		SoloMipsy(procs, 150, scaled),
		SoloMipsy(procs, 225, scaled),
		SoloMipsy(procs, 300, scaled),
	}
}

// WideSizes is the widened machine matrix of the server-class workload
// studies: the original FLASH prototype sizes stop at 16 nodes, these
// extend the same scaled geometry to the full hypercube sizes the
// network model supports.
var WideSizes = []int{32, 64, 128}

// WithNUMA swaps a configuration's memory system for the generic NUMA
// model (its latency parameters were "known well in advance of building
// the hardware", so no tuning applies).
func WithNUMA(cfg machine.Config) machine.Config {
	cfg.Mem = machine.MemNUMA
	cfg.Name += " (NUMA)"
	return cfg
}
