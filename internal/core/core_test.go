package core_test

import (
	"math"
	"strings"
	"testing"

	"flashsim/internal/apps"
	"flashsim/internal/core"
	"flashsim/internal/emitter"
	"flashsim/internal/machine"
	"flashsim/internal/param"
	"flashsim/internal/proto"
)

func smallFFT(procs int) emitter.Program {
	return apps.FFT(apps.FFTOpts{LogN: 12, Procs: procs, TLBBlocked: true, Prefetch: true})
}

// calTLBCycles extracts the calibrated TLB-refill cost from the delta
// list (the calibration must have changed it for these tests to mean
// anything).
func calTLBCycles(t *testing.T, c core.Calibration) uint64 {
	t.Helper()
	v, ok := c.Value("os.tlb.handler_cycles")
	if !ok {
		t.Fatal("calibration did not adjust os.tlb.handler_cycles")
	}
	return v.(uint64)
}

func TestCalibratorFixesTLBCost(t *testing.T) {
	ref := core.NewReference(4, true)
	ref.Repeats = 2
	cal := core.NewCalibrator(ref)
	cfg := core.SimOSMipsy(4, 150, true)
	c, err := cal.Calibrate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tlb := calTLBCycles(t, c); tlb < 55 || tlb > 75 {
		t.Errorf("calibrated TLB handler = %d cycles, want ~65", tlb)
	}
	// Mipsy has blocking reads, so its independent-load throughput is
	// already *slower* than hardware; the interface occupancy is
	// correctly left off and its latency is absorbed into bus timing.
	if c.Changed("l2.model_interface_occupancy") {
		t.Error("occupancy should not be enabled for a blocking-read model")
	}
	for _, a := range c.Report {
		t.Logf("adjust %v", a)
	}
}

func TestCalibratorEnablesOccupancyForMXS(t *testing.T) {
	ref := core.NewReference(4, true)
	ref.Repeats = 2
	cal := core.NewCalibrator(ref)
	cfg := core.SimOSMXS(4, true)
	c, err := cal.Calibrate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tlb := calTLBCycles(t, c); tlb < 55 || tlb > 75 {
		t.Errorf("calibrated TLB handler = %d cycles, want ~65 (from 35)", tlb)
	}
	if v, ok := c.Value("l2.model_interface_occupancy"); !ok || v != true {
		t.Error("calibration did not enable L2 interface occupancy for the out-of-order model")
	}
	for _, a := range c.Report {
		t.Logf("adjust %v", a)
	}
}

// deltaAsFloat renders a registry delta value numerically for
// comparison against the float64 Adjustment log.
func deltaAsFloat(t *testing.T, v any) float64 {
	t.Helper()
	switch x := v.(type) {
	case bool:
		if x {
			return 1
		}
		return 0
	case int64:
		return float64(x)
	case uint64:
		return float64(x)
	case float64:
		return x
	default:
		t.Fatalf("unexpected delta value type %T", v)
		return 0
	}
}

// TestCalibrationRoundTripsThroughRegistry is the delta/report
// consistency check: applying the deltas through the registry must land
// every knob exactly where the Adjustment log says the fitting loop
// left it, for both the TLB path (25/35 -> ~65) and the L2-occupancy
// path.
func TestCalibrationRoundTripsThroughRegistry(t *testing.T) {
	ref := core.NewReference(4, true)
	ref.Repeats = 2
	cal := core.NewCalibrator(ref)
	for _, cfg := range []machine.Config{
		core.SimOSMipsy(4, 150, true), // TLB 25 -> ~65, occupancy stays off
		core.SimOSMXS(4, true),        // TLB 35 -> ~65, occupancy turns on
	} {
		c, err := cal.Calibrate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		tuned := c.Apply(cfg)
		if tuned.Name != cfg.Name+" (tuned)" {
			t.Errorf("%s: Apply did not tag the name: %q", cfg.Name, tuned.Name)
		}
		// Every delta must be visible in the tuned config via the registry.
		for _, d := range c.Deltas {
			got, err := param.Get(&tuned, d.Path)
			if err != nil {
				t.Fatalf("%s: delta path %s not gettable: %v", cfg.Name, d.Path, err)
			}
			if got != d.After {
				t.Errorf("%s: %s = %v after Apply, delta says %v", cfg.Name, d.Path, got, d.After)
			}
		}
		// Every real adjustment in the report must appear as a delta
		// with the same landing value, and no-change report lines
		// (Before == After) must not.
		for _, a := range c.Report {
			v, changed := c.Value(a.Param)
			if a.Before == a.After {
				if changed {
					t.Errorf("%s: report says %s unchanged but a delta exists", cfg.Name, a.Param)
				}
				continue
			}
			if !changed {
				t.Errorf("%s: report adjusts %s but no delta records it", cfg.Name, a.Param)
				continue
			}
			if got := deltaAsFloat(t, v); math.Abs(got-a.After) > 1e-9 {
				t.Errorf("%s: %s delta lands at %v, report says %v", cfg.Name, a.Param, got, a.After)
			}
		}
		// The rendered diff is the tuning report: each changed path on
		// its own line.
		diff := c.RenderDiff()
		for _, d := range c.Deltas {
			if !strings.Contains(diff, d.Path) {
				t.Errorf("%s: rendered diff omits %s:\n%s", cfg.Name, d.Path, diff)
			}
		}
		t.Logf("%s tuning diff:\n%s", cfg.Name, diff)
	}
}

func TestCalibratedSimulatorMatchesTable3(t *testing.T) {
	ref := core.NewReference(4, true)
	ref.Repeats = 2
	cal := core.NewCalibrator(ref)
	cfg := core.SimOSMipsy(4, 150, true)
	c, err := cal.Calibrate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tuned := c.Apply(cfg)
	hwLat, err := cal.DependentLoadLatencies()
	if err != nil {
		t.Fatal(err)
	}
	for _, pc := range []proto.Case{proto.LocalClean, proto.RemoteClean, proto.LocalDirtyRemote} {
		simNS, err := core.SimDepLatency(tuned, pc)
		if err != nil {
			t.Fatal(err)
		}
		rel := simNS / hwLat[pc]
		t.Logf("%-20v tuned sim %6.0f ns, hw %6.0f ns (rel %.2f)", pc, simNS, hwLat[pc], rel)
		if rel < 0.9 || rel > 1.1 {
			t.Errorf("%v: tuned latency off by more than 10%%: rel=%.2f", pc, rel)
		}
	}
}

func TestStudyComparesAgainstReference(t *testing.T) {
	ref := core.NewReference(1, true)
	ref.Repeats = 2
	study := core.NewStudy(ref, core.SimOSMipsy(1, 225, true), core.SoloMipsy(1, 225, true))
	res, err := study.Compare([]core.Workload{{Name: "fft", Make: smallFFT}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows["fft"]) != 2 {
		t.Fatalf("expected 2 entries, got %d", len(res.Rows["fft"]))
	}
	for _, e := range res.Rows["fft"] {
		t.Logf("%s: rel %.2f", e.Config, e.Relative)
		if e.Relative <= 0 || e.Relative > 5 {
			t.Errorf("%s: implausible relative time %.2f", e.Config, e.Relative)
		}
	}
}

func TestTrendAnalyzerSpeedup(t *testing.T) {
	ref := core.NewReference(4, true)
	ref.Repeats = 1
	ta := core.NewTrendAnalyzer(ref)
	hwC, err := ta.HardwareSpeedup(core.Workload{Name: "fft", Make: smallFFT}, []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if hwC.Speedup[0] != 1 {
		t.Errorf("speedup at base point should be 1, got %f", hwC.Speedup[0])
	}
	if hwC.At(4) <= hwC.At(1) {
		t.Errorf("no speedup on hardware: %v", hwC.Speedup)
	}
	simC, err := ta.SimSpeedup(core.SimOSMipsy(4, 225, true), core.Workload{Name: "fft", Make: smallFFT}, []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	te := core.CompareTrend(hwC, simC)
	t.Logf("hw %v sim %v trend err max=%.2f", hwC.Speedup, simC.Speedup, te.MaxErr)
}

func TestDefectInjection(t *testing.T) {
	base := core.SimOSMXS(1, true)
	for _, d := range core.KnownDefects() {
		if d.Name != "mxs-fast-issue" {
			continue
		}
		imp, err := core.MeasureDefect(d, base, core.Workload{Name: "fft", Make: smallFFT}, 1)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%s: relative %.3f", d.Name, imp.Relative)
		if imp.Relative > 1.001 {
			t.Errorf("fast-issue bug should not slow the simulator down: %.3f", imp.Relative)
		}
	}
	_ = machine.Config{}
}
