package core_test

import (
	"testing"

	"flashsim/internal/apps"
	"flashsim/internal/core"
	"flashsim/internal/emitter"
	"flashsim/internal/machine"
	"flashsim/internal/proto"
)

func smallFFT(procs int) emitter.Program {
	return apps.FFT(apps.FFTOpts{LogN: 12, Procs: procs, TLBBlocked: true, Prefetch: true})
}

func TestCalibratorFixesTLBCost(t *testing.T) {
	ref := core.NewReference(4, true)
	ref.Repeats = 2
	cal := core.NewCalibrator(ref)
	cfg := core.SimOSMipsy(4, 150, true)
	c, err := cal.Calibrate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.TLBHandlerCycles < 55 || c.TLBHandlerCycles > 75 {
		t.Errorf("calibrated TLB handler = %d cycles, want ~65", c.TLBHandlerCycles)
	}
	// Mipsy has blocking reads, so its independent-load throughput is
	// already *slower* than hardware; the interface occupancy is
	// correctly left off and its latency is absorbed into bus timing.
	if c.L2Occupancy {
		t.Error("occupancy should not be enabled for a blocking-read model")
	}
	for _, a := range c.Report {
		t.Logf("adjust %v", a)
	}
}

func TestCalibratorEnablesOccupancyForMXS(t *testing.T) {
	ref := core.NewReference(4, true)
	ref.Repeats = 2
	cal := core.NewCalibrator(ref)
	cfg := core.SimOSMXS(4, true)
	c, err := cal.Calibrate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.TLBHandlerCycles < 55 || c.TLBHandlerCycles > 75 {
		t.Errorf("calibrated TLB handler = %d cycles, want ~65 (from 35)", c.TLBHandlerCycles)
	}
	if !c.L2Occupancy {
		t.Error("calibration did not enable L2 interface occupancy for the out-of-order model")
	}
	for _, a := range c.Report {
		t.Logf("adjust %v", a)
	}
}

func TestCalibratedSimulatorMatchesTable3(t *testing.T) {
	ref := core.NewReference(4, true)
	ref.Repeats = 2
	cal := core.NewCalibrator(ref)
	cfg := core.SimOSMipsy(4, 150, true)
	c, err := cal.Calibrate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tuned := c.Apply(cfg)
	hwLat, err := cal.DependentLoadLatencies()
	if err != nil {
		t.Fatal(err)
	}
	for _, pc := range []proto.Case{proto.LocalClean, proto.RemoteClean, proto.LocalDirtyRemote} {
		simNS, err := core.SimDepLatency(tuned, pc)
		if err != nil {
			t.Fatal(err)
		}
		rel := simNS / hwLat[pc]
		t.Logf("%-20v tuned sim %6.0f ns, hw %6.0f ns (rel %.2f)", pc, simNS, hwLat[pc], rel)
		if rel < 0.9 || rel > 1.1 {
			t.Errorf("%v: tuned latency off by more than 10%%: rel=%.2f", pc, rel)
		}
	}
}

func TestStudyComparesAgainstReference(t *testing.T) {
	ref := core.NewReference(1, true)
	ref.Repeats = 2
	study := core.NewStudy(ref, core.SimOSMipsy(1, 225, true), core.SoloMipsy(1, 225, true))
	res, err := study.Compare([]core.Workload{{Name: "fft", Make: smallFFT}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows["fft"]) != 2 {
		t.Fatalf("expected 2 entries, got %d", len(res.Rows["fft"]))
	}
	for _, e := range res.Rows["fft"] {
		t.Logf("%s: rel %.2f", e.Config, e.Relative)
		if e.Relative <= 0 || e.Relative > 5 {
			t.Errorf("%s: implausible relative time %.2f", e.Config, e.Relative)
		}
	}
}

func TestTrendAnalyzerSpeedup(t *testing.T) {
	ref := core.NewReference(4, true)
	ref.Repeats = 1
	ta := core.NewTrendAnalyzer(ref)
	hwC, err := ta.HardwareSpeedup(core.Workload{Name: "fft", Make: smallFFT}, []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if hwC.Speedup[0] != 1 {
		t.Errorf("speedup at base point should be 1, got %f", hwC.Speedup[0])
	}
	if hwC.At(4) <= hwC.At(1) {
		t.Errorf("no speedup on hardware: %v", hwC.Speedup)
	}
	simC, err := ta.SimSpeedup(core.SimOSMipsy(4, 225, true), core.Workload{Name: "fft", Make: smallFFT}, []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	te := core.CompareTrend(hwC, simC)
	t.Logf("hw %v sim %v trend err max=%.2f", hwC.Speedup, simC.Speedup, te.MaxErr)
}

func TestDefectInjection(t *testing.T) {
	base := core.SimOSMXS(1, true)
	for _, d := range core.KnownDefects() {
		if d.Name != "mxs-fast-issue" {
			continue
		}
		imp, err := core.MeasureDefect(d, base, core.Workload{Name: "fft", Make: smallFFT}, 1)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%s: relative %.3f", d.Name, imp.Relative)
		if imp.Relative > 1.001 {
			t.Errorf("fast-issue bug should not slow the simulator down: %.3f", imp.Relative)
		}
	}
	_ = machine.Config{}
}
