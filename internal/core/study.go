package core

import (
	"fmt"

	"flashsim/internal/machine"
	"flashsim/internal/sim"
)

// RelEntry is one bar of Figures 1–4: a simulator's predicted execution
// time relative to the hardware ("a value of 1.0 means the simulator
// reported the same time as the hardware; values below 1.0 signify that
// the simulator was executing faster than hardware").
type RelEntry struct {
	Workload string
	Config   string
	Relative float64
	SimExec  sim.Ticks
	HWExec   sim.Ticks
	Sim      machine.Result
}

// CompareResult is a full simulators-vs-hardware comparison.
type CompareResult struct {
	Procs   int
	Configs []string
	Rows    map[string][]RelEntry // workload -> entries in config order
	Order   []string              // workload order
	HW      map[string]Measurement
}

// Entry returns the entry for (workload, config name).
func (c CompareResult) Entry(workload, config string) (RelEntry, bool) {
	for _, e := range c.Rows[workload] {
		if e.Config == config {
			return e, true
		}
	}
	return RelEntry{}, false
}

// MaxAbsError returns the largest |relative-1| across all entries.
func (c CompareResult) MaxAbsError() float64 {
	worst := 0.0
	for _, row := range c.Rows {
		for _, e := range row {
			if d := abs(e.Relative - 1); d > worst {
				worst = d
			}
		}
	}
	return worst
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Study compares a set of simulator configurations against the hardware
// reference.
type Study struct {
	Ref     *Reference
	Configs []machine.Config
}

// NewStudy builds a study over the given simulator configurations.
func NewStudy(ref *Reference, configs ...machine.Config) *Study {
	return &Study{Ref: ref, Configs: configs}
}

// Compare runs every workload on the hardware (averaged) and on every
// simulator (once: simulators are deterministic) at the given processor
// count, and returns the relative execution times.
func (s *Study) Compare(workloads []Workload, procs int) (CompareResult, error) {
	out := CompareResult{
		Procs: procs,
		Rows:  make(map[string][]RelEntry),
		HW:    make(map[string]Measurement),
	}
	for _, cfg := range s.Configs {
		out.Configs = append(out.Configs, cfg.Name)
	}
	for _, w := range workloads {
		out.Order = append(out.Order, w.Name)
		hwMeas, err := s.Ref.MeasureAt(w.Make(procs), procs)
		if err != nil {
			return out, fmt.Errorf("hardware %s: %w", w.Name, err)
		}
		out.HW[w.Name] = hwMeas
		for _, cfg := range s.Configs {
			cfg.Procs = procs
			res, err := machine.Run(cfg, w.Make(procs))
			if err != nil {
				return out, fmt.Errorf("%s on %s: %w", w.Name, cfg.Name, err)
			}
			out.Rows[w.Name] = append(out.Rows[w.Name], RelEntry{
				Workload: w.Name,
				Config:   cfg.Name,
				Relative: float64(res.Exec) / float64(hwMeas.Mean),
				SimExec:  res.Exec,
				HWExec:   hwMeas.Mean,
				Sim:      res,
			})
		}
	}
	return out, nil
}
