package core

import (
	"context"
	"fmt"

	"flashsim/internal/machine"
	"flashsim/internal/runner"
	"flashsim/internal/sim"
	"flashsim/internal/stats"
)

// RelEntry is one bar of Figures 1–4: a simulator's predicted execution
// time relative to the hardware ("a value of 1.0 means the simulator
// reported the same time as the hardware; values below 1.0 signify that
// the simulator was executing faster than hardware").
type RelEntry struct {
	Workload string
	Config   string
	Relative float64
	SimExec  sim.Ticks
	HWExec   sim.Ticks
	Sim      machine.Result
}

// CompareResult is a full simulators-vs-hardware comparison.
type CompareResult struct {
	Procs   int
	Configs []string
	Rows    map[string][]RelEntry // workload -> entries in config order
	Order   []string              // workload order
	HW      map[string]Measurement
}

// Entry returns the entry for (workload, config name).
func (c CompareResult) Entry(workload, config string) (RelEntry, bool) {
	for _, e := range c.Rows[workload] {
		if e.Config == config {
			return e, true
		}
	}
	return RelEntry{}, false
}

// MaxAbsError returns the largest |relative-1| across all entries.
func (c CompareResult) MaxAbsError() float64 {
	worst := 0.0
	for _, row := range c.Rows {
		for _, e := range row {
			if d := stats.RelError(e.Relative, 1); d > worst {
				worst = d
			}
		}
	}
	return worst
}

// Study compares a set of simulator configurations against the hardware
// reference.
type Study struct {
	Ref     *Reference
	Configs []machine.Config

	// Pool executes the sweep; nil falls back to the Reference's pool
	// (and ultimately to serial execution).
	Pool *runner.Pool
}

// NewStudy builds a study over the given simulator configurations.
func NewStudy(ref *Reference, configs ...machine.Config) *Study {
	return &Study{Ref: ref, Configs: configs}
}

// pool returns the study's pool, the reference's, or a serial fallback.
func (s *Study) pool() *runner.Pool {
	if s.Pool != nil {
		return s.Pool
	}
	return s.Ref.pool()
}

// Compare runs every workload on the hardware (averaged) and on every
// simulator (once: simulators are deterministic) at the given processor
// count, and returns the relative execution times. The whole sweep —
// hardware repeats and simulator runs for all workloads — is submitted
// as one batch, so a parallel pool overlaps everything; results are
// identical to serial execution regardless of worker count.
func (s *Study) Compare(workloads []Workload, procs int) (CompareResult, error) {
	out := CompareResult{
		Procs: procs,
		Rows:  make(map[string][]RelEntry),
		HW:    make(map[string]Measurement),
	}
	for _, cfg := range s.Configs {
		out.Configs = append(out.Configs, cfg.Name)
	}

	var jobs []runner.Job
	hwOff := make([]int, len(workloads))  // offset of each workload's hardware repeats
	simOff := make([]int, len(workloads)) // offset of each workload's simulator runs
	for wi, w := range workloads {
		out.Order = append(out.Order, w.Name)
		prog := w.Make(procs)
		hwOff[wi] = len(jobs)
		jobs = append(jobs, s.Ref.measureJobs(prog, procs)...)
		simOff[wi] = len(jobs)
		for _, cfg := range s.Configs {
			cfg.Procs = procs
			jobs = append(jobs, runner.Job{Config: cfg, Prog: prog})
		}
	}
	results, err := s.pool().Run(context.Background(), jobs)
	if err != nil {
		return out, fmt.Errorf("study at %dp: %w", procs, err)
	}

	for wi, w := range workloads {
		hwMeas := measurementFrom(results[hwOff[wi]:simOff[wi]])
		out.HW[w.Name] = hwMeas
		for ci, cfg := range s.Configs {
			res := results[simOff[wi]+ci]
			out.Rows[w.Name] = append(out.Rows[w.Name], RelEntry{
				Workload: w.Name,
				Config:   cfg.Name,
				Relative: float64(res.Exec) / float64(hwMeas.Mean),
				SimExec:  res.Exec,
				HWExec:   hwMeas.Mean,
				Sim:      res,
			})
		}
	}
	return out, nil
}
