package core_test

// Determinism and memoization guarantees of the runner-backed
// experiment layer: a Study sweep must be byte-identical whatever the
// worker count, and a warm store must satisfy a repeated sweep without
// a single new simulation.

import (
	"fmt"
	"reflect"
	"testing"

	"flashsim/internal/core"
	"flashsim/internal/runner"
)

// quickStudy runs a small two-config, one-workload comparison through
// the given pool and returns the result.
func quickStudy(t *testing.T, pool *runner.Pool) core.CompareResult {
	t.Helper()
	ref := core.NewReference(2, true)
	ref.Repeats = 2
	ref.Pool = pool
	study := core.NewStudy(ref, core.SimOSMipsy(1, 225, true), core.SoloMipsy(1, 225, true))
	res, err := study.Compare([]core.Workload{{Name: "fft", Make: smallFFT}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestStudyIsDeterministicAcrossWorkerCounts(t *testing.T) {
	serial := quickStudy(t, runner.New(1, nil))
	parallel := quickStudy(t, runner.New(8, nil))
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("jobs=8 CompareResult differs from jobs=1")
	}
	// Byte-identical renderings, the form the figures are printed in.
	a, b := fmt.Sprintf("%#v", serial), fmt.Sprintf("%#v", parallel)
	if a != b {
		t.Fatalf("renderings differ:\n%s\n%s", a, b)
	}
}

func TestWarmStoreRunsNothingNew(t *testing.T) {
	store, err := runner.NewStore("")
	if err != nil {
		t.Fatal(err)
	}
	pool := runner.New(8, store)

	first := quickStudy(t, pool)
	cold := pool.Stats()
	if cold.Ran == 0 || cold.CacheHits != 0 {
		t.Fatalf("cold sweep stats: %+v", cold)
	}

	second := quickStudy(t, pool)
	warm := pool.Stats().Sub(cold)
	if warm.Ran != 0 {
		t.Errorf("warm sweep performed %d new machine runs, want 0", warm.Ran)
	}
	if warm.HitRate() != 1 {
		t.Errorf("warm sweep hit rate %.2f, want 1.00 (%+v)", warm.HitRate(), warm)
	}
	if !reflect.DeepEqual(first, second) {
		t.Error("memoized sweep differs from computed sweep")
	}
}

func TestReferencePoolMatchesSerialMeasurement(t *testing.T) {
	serialRef := core.NewReference(1, true)
	serialRef.Repeats = 3
	pooledRef := core.NewReference(1, true)
	pooledRef.Repeats = 3
	pooledRef.Pool = runner.New(4, nil)

	a, err := serialRef.Measure(smallFFT(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := pooledRef.Measure(smallFFT(1))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("pooled measurement %+v differs from serial %+v", b.Mean, a.Mean)
	}
	if a.Min > a.Mean || a.Mean > a.Max || a.Min == a.Max {
		t.Errorf("jitter summary implausible: min %d mean %d max %d", a.Min, a.Mean, a.Max)
	}
}
