package core_test

import (
	"testing"

	"flashsim/internal/core"
	"flashsim/internal/machine"
	"flashsim/internal/proto"
)

// differential_test cross-checks the Mipsy-class simulator against the
// internal/hw reference the way the paper does: not by demanding exact
// agreement, but by bounding the error band on the snbench
// dependent-load cases and requiring the *trends* — which case is
// slower than which, and which direction tuning moves a knob — to
// match. A simulator can be absolutely wrong yet still ordered right;
// these tests pin both properties separately.

// allDepCases is Table 3 in table order.
var allDepCases = []proto.Case{
	proto.LocalClean,
	proto.LocalDirtyRemote,
	proto.RemoteClean,
	proto.RemoteDirtyHome,
	proto.RemoteDirtyRemote,
}

// depLatencies measures all five cases on one simulator config.
func depLatencies(t *testing.T, cfg machine.Config) map[proto.Case]float64 {
	t.Helper()
	out := make(map[proto.Case]float64, len(allDepCases))
	for _, pc := range allDepCases {
		ns, err := core.SimDepLatency(cfg, pc)
		if err != nil {
			t.Fatalf("%v: %v", pc, err)
		}
		out[pc] = ns
	}
	return out
}

// TestDifferentialDependentLoadBand: the tuned Mipsy simulator must land
// within a 25% error band of the hardware reference on every one of the
// five dependent-load cases — including the dirty three-hop cases the
// calibrator does not fit directly.
func TestDifferentialDependentLoadBand(t *testing.T) {
	ref := core.NewReference(4, true)
	ref.Repeats = 2
	cal := core.NewCalibrator(ref)
	cfg := core.SimOSMipsy(4, 150, true)
	c, err := cal.Calibrate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tuned := c.Apply(cfg)

	hwLat, err := cal.DependentLoadLatencies()
	if err != nil {
		t.Fatal(err)
	}
	simLat := depLatencies(t, tuned)
	for _, pc := range allDepCases {
		rel := simLat[pc] / hwLat[pc]
		t.Logf("%-20v hw %6.0f ns, tuned sim %6.0f ns (rel %.2f)", pc, hwLat[pc], simLat[pc], rel)
		if rel < 0.75 || rel > 1.25 {
			t.Errorf("%v: outside the 25%% band: rel=%.2f", pc, rel)
		}
	}
}

// TestDifferentialCaseRankOrder: wherever the hardware clearly separates
// two protocol cases (by more than 15%), the untuned simulator must
// order them the same way. Rank agreement is the property the paper's
// trend arguments rest on, and it must hold even before calibration.
func TestDifferentialCaseRankOrder(t *testing.T) {
	ref := core.NewReference(4, true)
	ref.Repeats = 2
	cal := core.NewCalibrator(ref)
	hwLat, err := cal.DependentLoadLatencies()
	if err != nil {
		t.Fatal(err)
	}
	simLat := depLatencies(t, core.SimOSMipsy(4, 150, true))
	for i, a := range allDepCases {
		for _, b := range allDepCases[i+1:] {
			// Only pairs the hardware separates decisively.
			if hwLat[a] >= hwLat[b]*0.85 && hwLat[b] >= hwLat[a]*0.85 {
				continue
			}
			hwFaster := hwLat[a] < hwLat[b]
			simFaster := simLat[a] < simLat[b]
			if hwFaster != simFaster {
				t.Errorf("rank inversion: hw says %v %s %v (%.0f vs %.0f ns), sim disagrees (%.0f vs %.0f ns)",
					a, cmp(hwFaster), b, hwLat[a], hwLat[b], simLat[a], simLat[b])
			}
		}
	}
	// The anchor ordering from Table 3 must hold outright.
	if !(hwLat[proto.LocalClean] < hwLat[proto.RemoteDirtyRemote]) {
		t.Errorf("hw: local-clean (%f) not faster than three-hop (%f)",
			hwLat[proto.LocalClean], hwLat[proto.RemoteDirtyRemote])
	}
	if !(simLat[proto.LocalClean] < simLat[proto.RemoteDirtyRemote]) {
		t.Errorf("sim: local-clean (%f) not faster than three-hop (%f)",
			simLat[proto.LocalClean], simLat[proto.RemoteDirtyRemote])
	}
}

func cmp(faster bool) string {
	if faster {
		return "<"
	}
	return ">"
}

// TestDifferentialTLBTrendDirection: the untuned Mipsy model
// underestimates the TLB-refill cost; calibration must move it *toward*
// the hardware value, never past symmetric overshoot, and the tuned
// residual must be smaller than the untuned one. This is the "closing
// the loop" direction check on the knob the paper tunes first.
func TestDifferentialTLBTrendDirection(t *testing.T) {
	ref := core.NewReference(4, true)
	ref.Repeats = 2
	cal := core.NewCalibrator(ref)
	cfg := core.SimOSMipsy(4, 150, true)
	c, err := cal.Calibrate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tuned := c.Apply(cfg)

	hwCyc, err := core.SimTLBCycles(ref.ConfigAt(1))
	if err != nil {
		t.Fatal(err)
	}
	untunedCyc, err := core.SimTLBCycles(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tunedCyc, err := core.SimTLBCycles(tuned)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("TLB refill cycles: hw %.1f, untuned %.1f, tuned %.1f", hwCyc, untunedCyc, tunedCyc)
	if untunedCyc >= hwCyc {
		t.Fatalf("untuned model should underestimate the TLB cost: untuned %.1f >= hw %.1f", untunedCyc, hwCyc)
	}
	if tunedCyc <= untunedCyc {
		t.Errorf("tuning moved the TLB cost the wrong way: %.1f -> %.1f (hw %.1f)", untunedCyc, tunedCyc, hwCyc)
	}
	before, after := hwCyc-untunedCyc, hwCyc-tunedCyc
	if after < 0 {
		after = -after
	}
	if after >= before {
		t.Errorf("tuning did not shrink the TLB error: |%.1f| -> |%.1f| cycles", before, after)
	}
}
