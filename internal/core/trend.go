package core

import (
	"context"
	"fmt"

	"flashsim/internal/machine"
	"flashsim/internal/runner"
	"flashsim/internal/sim"
	"flashsim/internal/stats"
)

// Curve is one speedup line of Figures 5–7: execution time at each
// processor count, normalized to the same platform's uniprocessor time.
type Curve struct {
	Label   string
	Procs   []int
	Exec    []sim.Ticks
	Speedup []float64
}

// At returns the speedup at processor count p (0 if absent).
func (c Curve) At(p int) float64 {
	for i, q := range c.Procs {
		if q == p {
			return c.Speedup[i]
		}
	}
	return 0
}

// TrendAnalyzer produces speedup curves for the hardware reference and
// for simulator configurations, the trend studies of §3.2: "architects
// rely on being able to predict the relative magnitude of performance
// changes across a variety of alternative designs."
type TrendAnalyzer struct {
	Ref *Reference

	// Pool executes the sweeps; nil falls back to the Reference's pool.
	Pool *runner.Pool
}

// NewTrendAnalyzer returns an analyzer against ref.
func NewTrendAnalyzer(ref *Reference) *TrendAnalyzer {
	return &TrendAnalyzer{Ref: ref}
}

func (t *TrendAnalyzer) pool() *runner.Pool {
	if t.Pool != nil {
		return t.Pool
	}
	return t.Ref.pool()
}

// HardwareSpeedup measures the reference's speedup curve for w over the
// given processor counts. All points (and their jitter repeats) run as
// one batch.
func (t *TrendAnalyzer) HardwareSpeedup(w Workload, procs []int) (Curve, error) {
	c := Curve{Label: "FLASH 150MHz", Procs: procs}
	var jobs []runner.Job
	offs := make([]int, len(procs))
	for i, p := range procs {
		offs[i] = len(jobs)
		jobs = append(jobs, t.Ref.measureJobs(w.Make(p), p)...)
	}
	results, err := t.pool().Run(context.Background(), jobs)
	if err != nil {
		return c, fmt.Errorf("hardware %s sweep: %w", w.Name, err)
	}
	var base sim.Ticks
	for i := range procs {
		end := len(results)
		if i+1 < len(procs) {
			end = offs[i+1]
		}
		meas := measurementFrom(results[offs[i]:end])
		c.Exec = append(c.Exec, meas.Mean)
		if i == 0 {
			base = meas.Mean
		}
		c.Speedup = append(c.Speedup, scaledSpeedup(base, procs[0], meas.Mean))
	}
	return c, nil
}

// SimSpeedup measures a simulator's predicted speedup curve; the whole
// processor sweep runs as one batch.
func (t *TrendAnalyzer) SimSpeedup(cfg machine.Config, w Workload, procs []int) (Curve, error) {
	c := Curve{Label: cfg.Name, Procs: procs}
	jobs := make([]runner.Job, len(procs))
	for i, p := range procs {
		cp := cfg
		cp.Procs = p
		jobs[i] = runner.Job{Config: cp, Prog: w.Make(p)}
	}
	results, err := t.pool().Run(context.Background(), jobs)
	if err != nil {
		return c, fmt.Errorf("%s %s sweep: %w", cfg.Name, w.Name, err)
	}
	var base sim.Ticks
	for i, res := range results {
		c.Exec = append(c.Exec, res.Exec)
		if i == 0 {
			base = res.Exec
		}
		c.Speedup = append(c.Speedup, scaledSpeedup(base, procs[0], res.Exec))
	}
	return c, nil
}

// scaledSpeedup normalizes to the first measured point: if the curve
// starts at procs[0] = 1 this is the usual t1/tp; if the sweep starts
// higher (Figure 7 reports 8 and 16 processors) the speedup is scaled
// as procs[0] * t_first / t_p.
func scaledSpeedup(base sim.Ticks, baseProcs int, exec sim.Ticks) float64 {
	if exec == 0 {
		return 0
	}
	return float64(baseProcs) * float64(base) / float64(exec)
}

// TrendError summarizes how well a simulator curve tracks the hardware
// curve: the maximum and mean absolute relative error in predicted
// speedup across the sweep.
type TrendError struct {
	Label    string
	MaxErr   float64
	MeanErr  float64
	FinalErr float64 // at the largest processor count
}

// CompareTrend computes the trend error of sim against hw (curves must
// share proc points).
func CompareTrend(hw, simc Curve) TrendError {
	te := TrendError{Label: simc.Label}
	var errs []float64
	for i := range hw.Procs {
		if i >= len(simc.Speedup) || hw.Speedup[i] == 0 {
			continue
		}
		e := stats.RelError(simc.Speedup[i], hw.Speedup[i])
		errs = append(errs, e)
		te.FinalErr = e
	}
	te.MaxErr = stats.Max(errs)
	te.MeanErr = stats.Mean(errs)
	return te
}
