package core

import (
	"context"
	"fmt"

	"flashsim/internal/emitter"
	"flashsim/internal/hw"
	"flashsim/internal/machine"
	"flashsim/internal/runner"
	"flashsim/internal/sim"
	"flashsim/internal/stats"
)

// Workload names a program parameterized only by processor count, so
// the same workload can run on machines of different sizes.
type Workload struct {
	Name string
	Make func(procs int) emitter.Program
}

// Measurement is an averaged set of hardware runs ("we take the average
// of at least 5 hardware runs to avoid reporting any spurious system
// effects").
type Measurement struct {
	Mean sim.Ticks
	Min  sim.Ticks
	Max  sim.Ticks
	Runs []machine.Result
}

// MeanSeconds returns the mean parallel-section time in seconds.
func (m Measurement) MeanSeconds() float64 { return float64(m.Mean) / sim.TickHz }

// measurementFrom summarizes a set of repeat runs.
func measurementFrom(runs []machine.Result) Measurement {
	execs := make([]sim.Ticks, len(runs))
	for i, r := range runs {
		execs[i] = r.Exec
	}
	return Measurement{
		Mean: stats.Mean(execs),
		Min:  stats.Min(execs),
		Max:  stats.Max(execs),
		Runs: runs,
	}
}

// Reference is the hardware gold standard: the maximum-fidelity machine
// measured with run-to-run jitter and averaging, exposed the way a real
// machine would be — you can run programs on it and read wall times, but
// its internals are not a simulator you can instrument.
type Reference struct {
	// Repeats is the number of runs averaged per measurement (>= 1;
	// default 5, per the methodology).
	Repeats int

	// Pool executes the repeat runs; nil selects a serial pool,
	// preserving the strictly sequential behavior. Sharing one pool
	// (with a store) across the Reference, Study, Calibrator, and
	// TrendAnalyzer of a session lets every consumer reuse every run.
	Pool *runner.Pool

	base machine.Config
}

// NewReference returns the hardware standard sized at procs processors.
// scaled selects the 1/16-scale cache geometry (see EXPERIMENTS.md).
func NewReference(procs int, scaled bool) *Reference {
	return &Reference{Repeats: 5, base: hw.Config(procs, scaled)}
}

// pool returns the configured pool or a serial fallback.
func (r *Reference) pool() *runner.Pool {
	if r.Pool != nil {
		return r.Pool
	}
	return runner.Serial()
}

// Procs returns the machine size.
func (r *Reference) Procs() int { return r.base.Procs }

// Scaled reports whether the 1/16-scale geometry is in use.
func (r *Reference) Scaled() bool { return r.base.L2.Size != 2<<20 }

// ConfigAt returns the reference machine configuration resized to procs
// processors (for microbenchmarks that need a specific node count).
func (r *Reference) ConfigAt(procs int) machine.Config {
	cfg := r.base
	cfg.Procs = procs
	return cfg
}

// measureJobs returns the Repeats jobs of one measurement: the same
// program on the same machine with distinct seeds, exactly the batch
// MeasureAt averages. Exposed (package-internally) so Study and
// Calibrator can splice reference measurements into larger batches.
func (r *Reference) measureJobs(prog emitter.Program, procs int) []runner.Job {
	n := r.Repeats
	if n < 1 {
		n = 1
	}
	jobs := make([]runner.Job, n)
	for i := range jobs {
		jobs[i] = runner.Job{Config: r.ConfigAt(procs), Prog: prog, Seed: uint64(i + 1)}
	}
	return jobs
}

// Measure runs prog on the hardware Repeats times with distinct seeds
// and returns the averaged measurement.
func (r *Reference) Measure(prog emitter.Program) (Measurement, error) {
	return r.MeasureAt(prog, r.base.Procs)
}

// MeasureAt is Measure on a machine resized to procs processors.
func (r *Reference) MeasureAt(prog emitter.Program, procs int) (Measurement, error) {
	runs, err := r.pool().Run(context.Background(), r.measureJobs(prog, procs))
	if err != nil {
		return Measurement{}, fmt.Errorf("reference: %w", err)
	}
	return measurementFrom(runs), nil
}
