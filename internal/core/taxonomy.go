package core

import (
	"fmt"

	"flashsim/internal/hw"
	"flashsim/internal/machine"
)

// ErrorClass is the paper's taxonomy of simulator error sources
// (§3.1.2): performance bugs, deliberate omission of large effects, and
// lack of sufficient detail in modeled effects.
type ErrorClass uint8

const (
	// Bug: an outright modeling defect ("subtle performance bugs can
	// live in a production simulator for years").
	Bug ErrorClass = iota
	// Omission: a deliberately unmodeled effect (Solo's missing TLB
	// and OS, Mipsy's unit instruction latencies).
	Omission
	// LackOfDetail: an effect that is modeled but not modeled
	// correctly (the 25/35-cycle TLB refill, the missing
	// secondary-cache interface occupancy, NUMA's missing occupancy).
	LackOfDetail
)

// String names the class.
func (c ErrorClass) String() string {
	switch c {
	case Bug:
		return "bug"
	case Omission:
		return "omission"
	case LackOfDetail:
		return "lack-of-detail"
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// Defect is one historical simulator error, injectable into a
// configuration so its performance impact can be quantified.
type Defect struct {
	Name        string
	Class       ErrorClass
	Description string
	// Inject returns cfg with the defect present.
	Inject func(cfg machine.Config) machine.Config
	// Baseline returns the defect-free configuration the defect is
	// measured against (full fidelity for the knob in question).
	Baseline func(procs int, scaled bool) machine.Config
	// WorkloadHint names the workload class that makes the defect
	// visible: "fft", "lu", "radix", "cachemgmt".
	WorkloadHint string
}

// fullFidelityMXS is the reference-grade out-of-order configuration
// defects are injected into (the hardware model minus jitter).
func fullFidelityMXS(procs int, scaled bool) machine.Config {
	cfg := hw.Config(procs, scaled)
	cfg.JitterPct = 0
	cfg.Name = "MXS full-fidelity"
	return cfg
}

// KnownDefects returns the paper's documented simulator errors, each
// paired with the defect-free baseline and a workload class that makes
// it visible.
func KnownDefects() []Defect {
	return []Defect{
		{
			Name:  "mxs-fast-issue",
			Class: Bug,
			Description: "MXS moved an instruction through the pipeline too quickly " +
				"when all of its resources were available at issue (found by the " +
				"Rivet pipeline visualizer)",
			Baseline:     fullFidelityMXS,
			WorkloadHint: "lu",
			Inject: func(cfg machine.Config) machine.Config {
				cfg.MXS.BugFastIssue = true
				cfg.Name += " +fast-issue-bug"
				return cfg
			},
		},
		{
			Name:  "mxs-cacheop-stall",
			Class: Bug,
			Description: "the MIPS CACHE instruction on a dirty line never signaled " +
				"completion; the processor stalled ~1M cycles until a timer " +
				"interrupt retried it (unnoticed for months)",
			Baseline:     fullFidelityMXS,
			WorkloadHint: "cachemgmt",
			Inject: func(cfg machine.Config) machine.Config {
				cfg.MXS.BugCacheOpStall = true
				cfg.Name += " +cacheop-bug"
				return cfg
			},
		},
		{
			Name:  "mipsy-unit-latency",
			Class: Omission,
			Description: "Mipsy executes every instruction in one cycle; integer " +
				"multiply (5 cycles) and divide (19 cycles) are under-charged, " +
				"under-predicting Radix-Sort and Ocean",
			Baseline: func(procs int, scaled bool) machine.Config {
				cfg := SimOSMipsy(procs, 225, scaled)
				cfg.ModelInstrLatency = true
				cfg.OS.TLBHandlerCycles = 65
				return cfg
			},
			WorkloadHint: "radix",
			Inject: func(cfg machine.Config) machine.Config {
				cfg.ModelInstrLatency = false
				return cfg
			},
		},
		{
			Name:  "tlb-cost-25",
			Class: LackOfDetail,
			Description: "the TLB is modeled but its refill is charged 25 cycles " +
				"instead of the hardware's 65 (exception overhead, serial " +
				"dependences, pipeline-flushing coprocessor instructions)",
			Baseline:     fullFidelityMXS,
			WorkloadHint: "radix",
			Inject: func(cfg machine.Config) machine.Config {
				if cfg.OS.TLBHandlerCycles > 0 {
					cfg.OS.TLBHandlerCycles = UntunedMipsyTLBCycles
				}
				return cfg
			},
		},
		{
			Name:  "no-l2-interface-occupancy",
			Class: LackOfDetail,
			Description: "back-to-back load latency mispredicted because the " +
				"occupancy of the R10000's external cache interface was not modeled",
			Baseline:     fullFidelityMXS,
			WorkloadHint: "fft",
			Inject: func(cfg machine.Config) machine.Config {
				cfg.ModelL2InterfaceOccupancy = false
				return cfg
			},
		},
		{
			Name:  "no-address-interlocks",
			Class: LackOfDetail,
			Description: "generic out-of-order models omit R10000 address " +
				"interlocks, which can cost 20-30% (Ofelt); MXS runs that much " +
				"faster than the hardware",
			Baseline:     fullFidelityMXS,
			WorkloadHint: "lu",
			Inject: func(cfg machine.Config) machine.Config {
				cfg.MXS.ModelAddressInterlocks = false
				return cfg
			},
		},
	}
}

// DefectImpact measures a defect's effect: the workload's execution time
// with the defect injected relative to the baseline configuration.
type DefectImpact struct {
	Defect   Defect
	Workload string
	Baseline machine.Result
	Injected machine.Result
	// Relative is injected/baseline exec time; < 1 means the defect
	// makes the simulator optimistic.
	Relative float64
}

// MeasureDefect quantifies one defect on one workload at procs.
func MeasureDefect(d Defect, base machine.Config, w Workload, procs int) (DefectImpact, error) {
	base.Procs = procs
	baseRes, err := machine.Run(base, w.Make(procs))
	if err != nil {
		return DefectImpact{}, fmt.Errorf("baseline %s: %w", w.Name, err)
	}
	inj := d.Inject(base)
	inj.Procs = procs
	injRes, err := machine.Run(inj, w.Make(procs))
	if err != nil {
		return DefectImpact{}, fmt.Errorf("injected %s on %s: %w", d.Name, w.Name, err)
	}
	return DefectImpact{
		Defect:   d,
		Workload: w.Name,
		Baseline: baseRes,
		Injected: injRes,
		Relative: float64(injRes.Exec) / float64(baseRes.Exec),
	}, nil
}
