package core_test

import (
	"strings"
	"testing"

	"flashsim/internal/core"
	"flashsim/internal/machine"
	"flashsim/internal/osmodel"
)

func TestStandardConfigsMatchThePaper(t *testing.T) {
	cfgs := core.StandardConfigs(4, true)
	if len(cfgs) != 7 {
		t.Fatalf("got %d configs, want 7", len(cfgs))
	}
	wantNames := []string{
		"SimOS-Mipsy 150MHz", "SimOS-Mipsy 225MHz", "SimOS-Mipsy 300MHz",
		"SimOS-MXS 150MHz",
		"Solo-Mipsy 150MHz", "Solo-Mipsy 225MHz", "Solo-Mipsy 300MHz",
	}
	for i, cfg := range cfgs {
		if cfg.Name != wantNames[i] {
			t.Errorf("config %d = %q, want %q", i, cfg.Name, wantNames[i])
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
		if cfg.JitterPct != 0 {
			t.Errorf("%s: simulators are deterministic", cfg.Name)
		}
	}
}

func TestUntunedDeficienciesPresent(t *testing.T) {
	m := core.SimOSMipsy(1, 150, true)
	if m.OS.TLBHandlerCycles != core.UntunedMipsyTLBCycles {
		t.Errorf("Mipsy TLB cost %d, want %d", m.OS.TLBHandlerCycles, core.UntunedMipsyTLBCycles)
	}
	if m.ModelInstrLatency {
		t.Error("Mipsy must not model instruction latencies")
	}
	if m.ModelL2InterfaceOccupancy {
		t.Error("untuned simulators lack the interface occupancy effect")
	}
	x := core.SimOSMXS(1, true)
	if x.OS.TLBHandlerCycles != core.UntunedMXSTLBCycles {
		t.Errorf("MXS TLB cost %d, want %d", x.OS.TLBHandlerCycles, core.UntunedMXSTLBCycles)
	}
	if x.MXS.ModelAddressInterlocks {
		t.Error("generic MXS lacks address interlocks")
	}
	s := core.SoloMipsy(1, 225, true)
	if s.OS.Kind != osmodel.Solo {
		t.Error("Solo OS kind")
	}
	if s.ClockMHz != 225 {
		t.Error("clock")
	}
}

func TestWithNUMA(t *testing.T) {
	cfg := core.WithNUMA(core.SimOSMipsy(4, 225, true))
	if cfg.Mem != machine.MemNUMA {
		t.Fatal("memory kind")
	}
	if !strings.Contains(cfg.Name, "NUMA") {
		t.Fatal("name")
	}
}

func TestReferenceAccessors(t *testing.T) {
	ref := core.NewReference(8, true)
	if ref.Procs() != 8 || !ref.Scaled() {
		t.Fatal("accessors")
	}
	cfg := ref.ConfigAt(2)
	if cfg.Procs != 2 {
		t.Fatal("resize")
	}
	full := core.NewReference(4, false)
	if full.Scaled() {
		t.Fatal("full-scale flagged scaled")
	}
}

func TestMeasurementStats(t *testing.T) {
	ref := core.NewReference(1, true)
	ref.Repeats = 3
	meas, err := ref.Measure(smallFFT(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(meas.Runs) != 3 {
		t.Fatalf("runs %d", len(meas.Runs))
	}
	if meas.Min > meas.Mean || meas.Mean > meas.Max {
		t.Fatalf("ordering: min %d mean %d max %d", meas.Min, meas.Mean, meas.Max)
	}
	if meas.Min == meas.Max {
		t.Fatal("jitter absent: all runs identical")
	}
	if meas.MeanSeconds() <= 0 {
		t.Fatal("seconds accessor")
	}
}

func TestCompareTrendMetrics(t *testing.T) {
	hw := core.Curve{Procs: []int{1, 2, 4}, Speedup: []float64{1, 2, 4}}
	sim := core.Curve{Label: "s", Procs: []int{1, 2, 4}, Speedup: []float64{1, 1.8, 3}}
	te := core.CompareTrend(hw, sim)
	if te.MaxErr < 0.24 || te.MaxErr > 0.26 {
		t.Fatalf("max err %f", te.MaxErr)
	}
	if te.FinalErr != te.MaxErr {
		t.Fatalf("final err %f", te.FinalErr)
	}
	if te.MeanErr <= 0 {
		t.Fatal("mean err")
	}
}

func TestCurveAt(t *testing.T) {
	c := core.Curve{Procs: []int{1, 4}, Speedup: []float64{1, 3.5}}
	if c.At(4) != 3.5 || c.At(8) != 0 {
		t.Fatal("At lookup")
	}
}

func TestErrorClassStrings(t *testing.T) {
	for _, c := range []core.ErrorClass{core.Bug, core.Omission, core.LackOfDetail} {
		if c.String() == "" {
			t.Errorf("class %d unnamed", c)
		}
	}
}

func TestKnownDefectsComplete(t *testing.T) {
	ds := core.KnownDefects()
	if len(ds) < 6 {
		t.Fatalf("only %d defects", len(ds))
	}
	for _, d := range ds {
		if d.Inject == nil || d.Baseline == nil || d.Name == "" || d.Description == "" {
			t.Errorf("defect %q incomplete", d.Name)
		}
		cfg := d.Baseline(1, true)
		if err := cfg.Validate(); err != nil {
			t.Errorf("defect %q baseline: %v", d.Name, err)
		}
		inj := d.Inject(cfg)
		if err := inj.Validate(); err != nil {
			t.Errorf("defect %q injected: %v", d.Name, err)
		}
	}
}
