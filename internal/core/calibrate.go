package core

import (
	"context"
	"fmt"
	"math"

	"flashsim/internal/emitter"
	"flashsim/internal/machine"
	"flashsim/internal/param"
	"flashsim/internal/proto"
	"flashsim/internal/runner"
	"flashsim/internal/snbench"
)

// Calibration is the set of parameter corrections the tuning loop
// produces: a generic list of registry deltas ({path, before, after})
// applied through internal/param, so the calibrator never needs a
// per-field switch and new knobs join the loop by registration alone.
// It is the code form of §3.1.2's fixes: the corrected TLB-refill cost
// (os.tlb.handler_cycles), the enabled-and-fitted secondary-cache
// interface occupancy (l2.model_interface_occupancy, l2.transfer_ns),
// and the FlashLite timing constants (flash.*) that make the five
// dependent-load protocol cases match the hardware.
type Calibration struct {
	// Deltas is the calibration itself, in registry-path order.
	Deltas []param.Delta
	// Report records every adjustment for the write-up, keyed by the
	// same registry paths.
	Report []Adjustment
}

// Adjustment records one tuning step against the microbenchmark that
// drove it.
type Adjustment struct {
	// Param is the registry path of the adjusted knob.
	Param     string
	Before    float64
	After     float64
	HWMetric  float64
	SimBefore float64
	SimAfter  float64
	Unit      string
}

// String renders the adjustment.
func (a Adjustment) String() string {
	return fmt.Sprintf("%-30s %8.1f -> %8.1f %-6s (hw %.1f, sim %.1f -> %.1f)",
		a.Param, a.Before, a.After, a.Unit, a.HWMetric, a.SimBefore, a.SimAfter)
}

// Apply rewrites cfg with the calibrated parameters through the
// registry. Deltas produced by Calibrate are always registry-valid, so
// a failure to apply is a programming error, not a runtime condition.
func (c Calibration) Apply(cfg machine.Config) machine.Config {
	out, err := param.ApplyDeltas(cfg, c.Deltas)
	if err != nil {
		panic(fmt.Sprintf("core: calibration deltas failed to apply: %v", err))
	}
	out.Name = cfg.Name + " (tuned)"
	return out
}

// Value returns the post-calibration value of a registry path, if the
// calibration touched it.
func (c Calibration) Value(path string) (any, bool) {
	for _, d := range c.Deltas {
		if d.Path == path {
			return d.After, true
		}
	}
	return nil, false
}

// Changed reports whether the calibration adjusted the given path.
func (c Calibration) Changed(path string) bool {
	_, ok := c.Value(path)
	return ok
}

// RenderDiff renders the calibration as a registry diff (the
// untuned-to-tuned parameter changes, one per line).
func (c Calibration) RenderDiff() string { return param.RenderDeltas(c.Deltas) }

// Calibrator closes the simulation loop: it measures microbenchmarks on
// the hardware reference and iteratively adjusts a simulator's
// parameters until the measurements agree.
type Calibrator struct {
	Ref *Reference
	// MaxRounds bounds each fitting loop (default 6).
	MaxRounds int
	// TolNS is the dependent-load convergence tolerance (default 20ns).
	TolNS float64

	// Pool executes the probe runs; nil falls back to the Reference's
	// pool. The fitting loops are inherently sequential, but a pool
	// with a store memoizes the hardware microbenchmarks and every
	// probe, which pays off across the seven study configurations.
	Pool *runner.Pool
}

// NewCalibrator returns a calibrator against ref.
func NewCalibrator(ref *Reference) *Calibrator {
	return &Calibrator{Ref: ref, MaxRounds: 6, TolNS: 20}
}

func (c *Calibrator) pool() *runner.Pool {
	if c.Pool != nil {
		return c.Pool
	}
	return c.Ref.pool()
}

// runOne executes a single probe run through a pool (nil = serial).
func runOne(p *runner.Pool, cfg machine.Config, prog emitter.Program) (machine.Result, error) {
	if p == nil {
		p = runner.Serial()
	}
	results, err := p.Run(context.Background(), []runner.Job{{Config: cfg, Prog: prog}})
	if err != nil {
		return machine.Result{}, err
	}
	return results[0], nil
}

// hwTLBCycles measures the reference TLB-refill cost.
func (c *Calibrator) hwTLBCycles() (float64, error) {
	meas, err := c.Ref.MeasureAt(snbench.TLBTimer(0, 0, 0), 1)
	if err != nil {
		return 0, err
	}
	// Use the median-ish first run; the metric needs barrier releases.
	cfg := c.Ref.ConfigAt(1)
	return snbench.TLBHandlerCycles(meas.Runs[0], cfg.ClockMHz, 0, 0, 0), nil
}

// simTLBCycles measures a simulator's TLB-refill cost.
func simTLBCycles(p *runner.Pool, cfg machine.Config) (float64, error) {
	cfg.Procs = 1
	res, err := runOne(p, cfg, snbench.TLBTimer(0, 0, 0))
	if err != nil {
		return 0, err
	}
	return snbench.TLBHandlerCycles(res, cfg.ClockMHz, 0, 0, 0), nil
}

// hwRestartNS measures the reference back-to-back load throughput.
func (c *Calibrator) hwRestartNS() (float64, error) {
	meas, err := c.Ref.MeasureAt(snbench.Restart(0), 1)
	if err != nil {
		return 0, err
	}
	return snbench.ThroughputNSPerLoad(meas.Runs[0], 0), nil
}

func simRestartNS(p *runner.Pool, cfg machine.Config) (float64, error) {
	cfg.Procs = 1
	res, err := runOne(p, cfg, snbench.Restart(0))
	if err != nil {
		return 0, err
	}
	return snbench.ThroughputNSPerLoad(res, 0), nil
}

// depCases are the Table 3 protocol cases, in table order.
var depCases = []proto.Case{
	proto.LocalClean,
	proto.LocalDirtyRemote,
	proto.RemoteClean,
	proto.RemoteDirtyHome,
	proto.RemoteDirtyRemote,
}

// DependentLoadLatencies measures all five Table 3 cases on the
// reference (ns per load), batching every case's repeats through the
// pool.
func (c *Calibrator) DependentLoadLatencies() (map[proto.Case]float64, error) {
	var jobs []runner.Job
	offs := make([]int, len(depCases))
	for i, pc := range depCases {
		offs[i] = len(jobs)
		jobs = append(jobs, c.Ref.measureJobs(snbench.DependentLoads(pc, 0), snbench.CaseProcs(pc))...)
	}
	results, err := c.pool().Run(context.Background(), jobs)
	if err != nil {
		return nil, fmt.Errorf("dependent loads: %w", err)
	}
	out := make(map[proto.Case]float64, len(depCases))
	for i, pc := range depCases {
		end := len(results)
		if i+1 < len(depCases) {
			end = offs[i+1]
		}
		meas := measurementFrom(results[offs[i]:end])
		out[pc] = snbench.LoadLatencyNS(pc, machine.Result{Exec: meas.Mean, BarrierReleases: meas.Runs[0].BarrierReleases}, 0)
	}
	return out, nil
}

// simDepLatency measures one dependent-load case on a simulator.
func simDepLatency(p *runner.Pool, cfg machine.Config, pc proto.Case) (float64, error) {
	cfg.Procs = snbench.CaseProcs(pc)
	res, err := runOne(p, cfg, snbench.DependentLoads(pc, 0))
	if err != nil {
		return 0, err
	}
	return snbench.LoadLatencyNS(pc, res, 0), nil
}

// Calibrate tunes cfg against the hardware reference and returns the
// calibration. The input configuration is not modified; apply the
// result with Calibration.Apply. Internally the loop evolves a working
// copy of cfg and the returned Deltas are the registry diff between the
// original and the fitted configuration, so every adjusted knob —
// present and future — flows through the same generic path.
func (c *Calibrator) Calibrate(cfg machine.Config) (Calibration, error) {
	maxRounds := c.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 6
	}
	pool := c.pool()
	var cal Calibration
	// work is the evolving tuned configuration; cfg stays untouched so
	// the final registry diff is exactly the calibration.
	work := cfg

	// Step 1: TLB-refill cost ("with hardware results and a
	// microbenchmark that times TLB misses, we were able to tune our
	// simulators to give the correct value"). Solo configurations keep
	// no TLB — there is nothing to correct; the omission is the point.
	if cfg.OS.TLBHandlerCycles > 0 {
		hwC, err := c.hwTLBCycles()
		if err != nil {
			return cal, err
		}
		before := float64(work.OS.TLBHandlerCycles)
		simBefore, err := simTLBCycles(pool, work)
		if err != nil {
			return cal, err
		}
		simC := simBefore
		for round := 0; round < maxRounds && math.Abs(hwC-simC) > 1; round++ {
			next := float64(work.OS.TLBHandlerCycles) + (hwC - simC)
			if next < 1 {
				next = 1
			}
			work.OS.TLBHandlerCycles = uint32(next + 0.5)
			simC, err = simTLBCycles(pool, work)
			if err != nil {
				return cal, err
			}
		}
		cal.Report = append(cal.Report, Adjustment{
			Param: "os.tlb.handler_cycles", Unit: "cycles",
			Before: before, After: float64(work.OS.TLBHandlerCycles),
			HWMetric: hwC, SimBefore: simBefore, SimAfter: simC,
		})
	}

	// Step 2: secondary-cache interface occupancy (restart-time test).
	{
		hwT, err := c.hwRestartNS()
		if err != nil {
			return cal, err
		}
		probe := work
		probe.ModelL2InterfaceOccupancy = false
		simBefore, err := simRestartNS(pool, probe)
		if err != nil {
			return cal, err
		}
		simT := simBefore
		if simT < hwT*0.97 {
			work.ModelL2InterfaceOccupancy = true
			for round := 0; round < maxRounds && math.Abs(hwT-simT) > 3; round++ {
				simT, err = simRestartNS(pool, work)
				if err != nil {
					return cal, err
				}
				work.L2TransferNS += hwT - simT
				if work.L2TransferNS < 0 {
					work.L2TransferNS = 0
				}
			}
			cal.Report = append(cal.Report, Adjustment{
				Param: "l2.model_interface_occupancy", Unit: "bool",
				Before: 0, After: 1,
				HWMetric: hwT, SimBefore: simBefore, SimAfter: simT,
			})
		}
		// When the occupancy stays off (blocking-read models are
		// already at or above the hardware throughput) this records a
		// no-change line: Before == After.
		cal.Report = append(cal.Report, Adjustment{
			Param: "l2.transfer_ns", Unit: "ns",
			Before: cfg.L2TransferNS, After: work.L2TransferNS,
			HWMetric: hwT, SimBefore: simBefore, SimAfter: simT,
		})
	}

	// Step 3: FlashLite timing against the five dependent-load cases
	// ("once local read latencies matched, we easily tuned FlashLite
	// parameters until read latencies for all five protocol read cases
	// also matched").
	if cfg.Mem == machine.MemFlashLite {
		hwLat, err := c.DependentLoadLatencies()
		if err != nil {
			return cal, err
		}
		before := work.FlashTiming
		var simLC, simRC, simLDR float64
		for round := 0; round < maxRounds; round++ {
			simLC, err = simDepLatency(pool, work, proto.LocalClean)
			if err != nil {
				return cal, err
			}
			simRC, err = simDepLatency(pool, work, proto.RemoteClean)
			if err != nil {
				return cal, err
			}
			simLDR, err = simDepLatency(pool, work, proto.LocalDirtyRemote)
			if err != nil {
				return cal, err
			}
			dLC := hwLat[proto.LocalClean] - simLC
			dRC := hwLat[proto.RemoteClean] - simRC
			dLDR := hwLat[proto.LocalDirtyRemote] - simLDR
			if math.Abs(dLC) < c.TolNS && math.Abs(dRC) < c.TolNS && math.Abs(dLDR) < c.TolNS {
				break
			}
			// Local clean is bus + controller + memory: split the
			// residual over the two bus legs.
			work.FlashTiming.BusRequestNS = clampNS(work.FlashTiming.BusRequestNS + dLC/2)
			work.FlashTiming.BusReplyNS = clampNS(work.FlashTiming.BusReplyNS + dLC/2)
			// Remote clean adds two network traversals: spread the
			// remaining residual over the four interface crossings.
			rcResidual := dRC - dLC
			work.FlashTiming.InboxNS = clampNS(work.FlashTiming.InboxNS + rcResidual/4)
			work.FlashTiming.OutboxNS = clampNS(work.FlashTiming.OutboxNS + rcResidual/4)
			// Dirty cases add the intervention at the owner.
			work.FlashTiming.InterventionNS = clampNS(work.FlashTiming.InterventionNS + (dLDR - dLC))
		}
		// The reply leg tracks the request leg and the outbox tracks
		// the inbox, so one report row each carries the pair.
		cal.Report = append(cal.Report,
			Adjustment{Param: "flash.bus_request_ns", Unit: "ns", Before: before.BusRequestNS, After: work.FlashTiming.BusRequestNS,
				HWMetric: hwLat[proto.LocalClean], SimBefore: 0, SimAfter: simLC},
			Adjustment{Param: "flash.inbox_ns", Unit: "ns", Before: before.InboxNS, After: work.FlashTiming.InboxNS,
				HWMetric: hwLat[proto.RemoteClean], SimBefore: 0, SimAfter: simRC},
			Adjustment{Param: "flash.intervention_ns", Unit: "ns", Before: before.InterventionNS, After: work.FlashTiming.InterventionNS,
				HWMetric: hwLat[proto.LocalDirtyRemote], SimBefore: 0, SimAfter: simLDR},
		)
	}
	cal.Deltas = param.Diff(cfg, work)
	return cal, nil
}

func clampNS(v float64) float64 {
	if v < 0 {
		return 0
	}
	return v
}

// SimTLBCycles measures a simulator configuration's TLB-refill cost via
// the snbench TLB timer (exported for the harness's in-text
// experiments). The serial variant of (*Calibrator).SimTLBCycles.
func SimTLBCycles(cfg machine.Config) (float64, error) { return simTLBCycles(nil, cfg) }

// SimTLBCycles is SimTLBCycles through the calibrator's pool, so the
// probe is memoized alongside the tuning runs.
func (c *Calibrator) SimTLBCycles(cfg machine.Config) (float64, error) {
	return simTLBCycles(c.pool(), cfg)
}

// SimDepLatency measures one Table 3 dependent-load case on a simulator
// configuration (ns per load).
func SimDepLatency(cfg machine.Config, pc proto.Case) (float64, error) {
	return simDepLatency(nil, cfg, pc)
}

// SimDepLatency is SimDepLatency through the calibrator's pool.
func (c *Calibrator) SimDepLatency(cfg machine.Config, pc proto.Case) (float64, error) {
	return simDepLatency(c.pool(), cfg, pc)
}
