package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"flashsim/internal/runner"
)

// newTestServer builds a gated server over a fresh pool and an
// httptest front end. The returned gate holds every worker at the top
// of execute; tests close it to release execution. Callers must close
// the gate before the test ends (cleanup drains the server).
func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server, chan struct{}) {
	t.Helper()
	if opts.Pool == nil {
		opts.Pool = runner.New(2, nil)
	}
	s := New(opts)
	gate := make(chan struct{})
	s.execGate = gate
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts, gate
}

// runBody renders a snbench.restart run submission; lines
// differentiates fingerprints between jobs.
func runBody(lines int) []byte {
	return []byte(fmt.Sprintf(
		`{"base":"simos-mipsy","procs":1,"workload":{"name":"snbench.restart","lines":%d}}`, lines))
}

func postJSON(t *testing.T, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, data
}

func getJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp
}

// waitFor polls cond until true or the deadline fails the test.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestServerRunRoundTrip: a synchronous run submission returns the
// simulation result, and resubmitting the identical request after
// completion is served from the memo store (cached=true) without a
// second execution.
func TestServerRunRoundTrip(t *testing.T) {
	store, err := runner.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	pool := runner.New(2, store)
	_, ts, gate := newTestServer(t, Options{Pool: pool})
	close(gate)

	resp, data := postJSON(t, ts.URL+"/v1/runs?wait=true", runBody(32))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold submit: status %d, body %s", resp.StatusCode, data)
	}
	var cold RunResponse
	if err := json.Unmarshal(data, &cold); err != nil {
		t.Fatalf("decode cold response: %v", err)
	}
	if cold.Job.State != StateDone {
		t.Fatalf("cold job state = %s, want done", cold.Job.State)
	}
	if cold.Job.Cached {
		t.Error("cold run reported cached")
	}
	if cold.Result.Instructions == 0 || cold.Result.Total == 0 {
		t.Errorf("empty result: %+v", cold.Result)
	}

	resp, data = postJSON(t, ts.URL+"/v1/runs?wait=true", runBody(32))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm submit: status %d, body %s", resp.StatusCode, data)
	}
	var warm RunResponse
	if err := json.Unmarshal(data, &warm); err != nil {
		t.Fatalf("decode warm response: %v", err)
	}
	if !warm.Job.Cached {
		t.Error("warm run not served from cache")
	}
	if warm.Result.Total != cold.Result.Total || warm.Result.Instructions != cold.Result.Instructions {
		t.Errorf("cached result differs: cold %v/%d warm %v/%d",
			cold.Result.Total, cold.Result.Instructions, warm.Result.Total, warm.Result.Instructions)
	}
	if got := pool.Stats().Ran; got != 1 {
		t.Errorf("pool executed %d runs, want 1", got)
	}
}

// TestServerCoalescesConcurrentIdenticalRuns pins the dedup guarantee:
// N identical concurrent submissions produce exactly one pool
// execution, every caller gets the result, and all but one response is
// marked coalesced.
func TestServerCoalescesConcurrentIdenticalRuns(t *testing.T) {
	const callers = 6
	s, ts, gate := newTestServer(t, Options{})

	var wg sync.WaitGroup
	responses := make([]RunResponse, callers)
	codes := make([]int, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, data := postJSON(t, ts.URL+"/v1/runs?wait=true", runBody(64))
			codes[i] = resp.StatusCode
			_ = json.Unmarshal(data, &responses[i])
		}(i)
	}
	// Release the workers only after every submission has been
	// admitted (one real record + callers-1 coalesced joins), so the
	// test exercises the concurrent window deterministically.
	waitFor(t, "all submissions admitted", func() bool {
		return s.coalesced.Load() == callers-1
	})
	close(gate)
	wg.Wait()

	joined := 0
	for i := 0; i < callers; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("caller %d: status %d", i, codes[i])
		}
		if responses[i].Job.State != StateDone {
			t.Errorf("caller %d: state %s", i, responses[i].Job.State)
		}
		if responses[i].Result.Total == 0 {
			t.Errorf("caller %d: empty result", i)
		}
		if responses[i].Job.Coalesced {
			joined++
		}
	}
	if joined != callers-1 {
		t.Errorf("%d responses marked coalesced, want %d", joined, callers-1)
	}
	if got := s.Pool().Stats().Ran; got != 1 {
		t.Errorf("pool executed %d runs for %d identical submissions, want exactly 1", got, callers)
	}
}

// TestServerQueueFullRejectsWith429 pins admission control: once the
// single worker is busy and the depth-1 queue holds a job, the next
// distinct submission is rejected with 429 and a Retry-After hint —
// and the already-accepted jobs still complete.
func TestServerQueueFullRejectsWith429(t *testing.T) {
	s, ts, gate := newTestServer(t, Options{
		Pool:       runner.Serial(),
		Workers:    1,
		QueueDepth: 1,
		RetryAfter: 2 * time.Second,
	})

	respA, dataA := postJSON(t, ts.URL+"/v1/runs", runBody(8))
	if respA.StatusCode != http.StatusAccepted {
		t.Fatalf("job A: status %d, body %s", respA.StatusCode, dataA)
	}
	// The worker holds A at the gate; wait for it to leave the queue so
	// B lands in the only slot.
	waitFor(t, "worker to take job A", func() bool { return len(s.queue) == 0 })

	respB, dataB := postJSON(t, ts.URL+"/v1/runs", runBody(16))
	if respB.StatusCode != http.StatusAccepted {
		t.Fatalf("job B: status %d, body %s", respB.StatusCode, dataB)
	}

	respC, dataC := postJSON(t, ts.URL+"/v1/runs", runBody(24))
	if respC.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("job C: status %d, want 429; body %s", respC.StatusCode, dataC)
	}
	if got := respC.Header.Get("Retry-After"); got != "2" {
		t.Errorf("Retry-After = %q, want \"2\"", got)
	}
	var e ErrorResponse
	if err := json.Unmarshal(dataC, &e); err != nil || e.RetryAfterS != 2 {
		t.Errorf("429 body = %s (err %v), want retry_after_s 2", dataC, err)
	}
	if got := s.rejected.Load(); got != 1 {
		t.Errorf("rejected counter = %d, want 1", got)
	}

	// The rejection must not have cost A or B anything.
	close(gate)
	var stA, stB JobStatus
	_ = json.Unmarshal(dataA, &stA)
	_ = json.Unmarshal(dataB, &stB)
	for _, id := range []string{stA.ID, stB.ID} {
		id := id
		waitFor(t, "job "+id+" done", func() bool {
			var st JobStatus
			getJSON(t, ts.URL+"/v1/jobs/"+id, &st)
			return st.State == StateDone
		})
	}
}

// TestServerDrainRefusesNewAndCompletesAccepted pins graceful
// shutdown: during a drain, new submissions get 503 while every job
// accepted before the drain still runs to done and stays fetchable.
func TestServerDrainRefusesNewAndCompletesAccepted(t *testing.T) {
	s, ts, gate := newTestServer(t, Options{Workers: 1, QueueDepth: 8})

	var ids []string
	for i := 0; i < 3; i++ {
		resp, data := postJSON(t, ts.URL+"/v1/runs", runBody(8*(i+1)))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: status %d, body %s", i, resp.StatusCode, data)
		}
		var st JobStatus
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(t.Context()) }()
	waitFor(t, "server draining", s.Draining)

	resp, data := postJSON(t, ts.URL+"/v1/runs", runBody(999))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submission during drain: status %d, want 503; body %s", resp.StatusCode, data)
	}
	var health map[string]string
	getJSON(t, ts.URL+"/healthz", &health)
	if health["status"] != "draining" {
		t.Errorf("healthz status = %q, want draining", health["status"])
	}

	close(gate)
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	for _, id := range ids {
		var got RunResponse
		resp := getJSON(t, ts.URL+"/v1/jobs/"+id+"/result", &got)
		if resp.StatusCode != http.StatusOK || got.Job.State != StateDone {
			t.Errorf("job %s after drain: status %d state %s, want 200 done", id, resp.StatusCode, got.Job.State)
		}
	}
}

// TestServerCancelAndTimeout: DELETE cancels a queued job, and a
// submission deadline expires a job that never left the queue; both
// surface as state=canceled with a 504 result.
func TestServerCancelAndTimeout(t *testing.T) {
	s, ts, gate := newTestServer(t, Options{Workers: 1, QueueDepth: 4})

	// A occupies the worker at the gate.
	postJSON(t, ts.URL+"/v1/runs", runBody(8))
	waitFor(t, "worker busy", func() bool { return len(s.queue) == 0 })

	_, dataB := postJSON(t, ts.URL+"/v1/runs", runBody(16))
	var stB JobStatus
	if err := json.Unmarshal(dataB, &stB); err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+stB.ID, nil)
	if resp, err := http.DefaultClient.Do(req); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE: %v / %v", err, resp)
	}

	_, dataC := postJSON(t, ts.URL+"/v1/runs",
		[]byte(`{"base":"simos-mipsy","workload":{"name":"snbench.restart","lines":24},"timeout_ms":5}`))
	var stC JobStatus
	if err := json.Unmarshal(dataC, &stC); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // let C's deadline lapse while queued
	close(gate)

	for _, id := range []string{stB.ID, stC.ID} {
		id := id
		waitFor(t, "job "+id+" canceled", func() bool {
			var st JobStatus
			getJSON(t, ts.URL+"/v1/jobs/"+id, &st)
			return st.State == StateCanceled
		})
		if resp := getJSON(t, ts.URL+"/v1/jobs/"+id+"/result", nil); resp.StatusCode != http.StatusGatewayTimeout {
			t.Errorf("result of canceled %s: status %d, want 504", id, resp.StatusCode)
		}
	}
}

// TestServerRejectsBadSubmissions: malformed specs fail with 400 before
// touching the queue, and unknown jobs 404.
func TestServerRejectsBadSubmissions(t *testing.T) {
	s, ts, gate := newTestServer(t, Options{})
	close(gate)

	for name, body := range map[string]string{
		"unknown workload": `{"base":"simos-mipsy","workload":{"name":"nope"}}`,
		"unknown base":     `{"base":"vax","workload":{"name":"snbench.restart","lines":8}}`,
		"unknown field":    `{"base":"simos-mipsy","typo":1,"workload":{"name":"snbench.restart","lines":8}}`,
		"unknown setting":  `{"base":"simos-mipsy","set":[{"path":"no.such.knob","value":"1"}],"workload":{"name":"snbench.restart","lines":8}}`,
		"bad case":         `{"base":"simos-mipsy","workload":{"name":"snbench.dependent-loads","case":"nope","lines":8}}`,
	} {
		resp, data := postJSON(t, ts.URL+"/v1/runs", []byte(body))
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400; body %s", name, resp.StatusCode, data)
		}
	}
	if resp, data := postJSON(t, ts.URL+"/v1/figures", []byte(`{"figure":12}`)); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("figure 12: status %d, want 400; body %s", resp.StatusCode, data)
	}
	if resp := getJSON(t, ts.URL+"/v1/jobs/j999999", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", resp.StatusCode)
	}
	if got := s.accepted.Load(); got != 0 {
		t.Errorf("bad submissions consumed %d queue slots", got)
	}
}

// TestServerEventsStreamsToTerminal: the SSE endpoint emits status
// events and closes with a done event carrying the terminal state.
func TestServerEventsStreamsToTerminal(t *testing.T) {
	_, ts, gate := newTestServer(t, Options{})

	_, data := postJSON(t, ts.URL+"/v1/runs", runBody(32))
	var st JobStatus
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	close(gate)

	var events []string
	var last JobStatus
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "event: ") {
			events = append(events, strings.TrimPrefix(line, "event: "))
		}
		if strings.HasPrefix(line, "data: ") {
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &last); err != nil {
				t.Fatalf("bad SSE data line %q: %v", line, err)
			}
		}
		if len(events) > 0 && events[len(events)-1] == "done" {
			break
		}
	}
	if len(events) < 2 || events[len(events)-1] != "done" {
		t.Fatalf("event sequence %v, want ...done", events)
	}
	if last.State != StateDone {
		t.Errorf("terminal SSE state = %s, want done", last.State)
	}
}

// TestServerCaptureReplayRoundTrip pins the daemon's trace-driven
// path: a capture stores a container once (a second identical capture
// reuses it), and a replay of the fingerprint — at the capture's
// configuration — reproduces the execution-driven result bit for bit.
func TestServerCaptureReplayRoundTrip(t *testing.T) {
	traces, err := runner.NewTraceStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, ts, gate := newTestServer(t, Options{Traces: traces})
	close(gate)

	capBody := []byte(`{"base":"simos-mipsy","procs":2,"workload":{"name":"fft","logn":10}}`)
	resp, data := postJSON(t, ts.URL+"/v1/captures?wait=true", capBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("capture: status %d, body %s", resp.StatusCode, data)
	}
	var cap1 CaptureResponse
	if err := json.Unmarshal(data, &cap1); err != nil {
		t.Fatal(err)
	}
	if !cap1.Stored || cap1.Trace == "" {
		t.Fatalf("cold capture not stored: %+v", cap1.Job)
	}
	if !traces.Has(cap1.Trace) {
		t.Fatalf("store has no container under %s", cap1.Trace)
	}

	// A second identical capture must not write a second container.
	resp, data = postJSON(t, ts.URL+"/v1/captures?wait=true", capBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm capture: status %d, body %s", resp.StatusCode, data)
	}
	var cap2 CaptureResponse
	if err := json.Unmarshal(data, &cap2); err != nil {
		t.Fatal(err)
	}
	if cap2.Stored || cap2.Trace != cap1.Trace {
		t.Fatalf("warm capture stored=%v trace=%s, want reuse of %s", cap2.Stored, cap2.Trace, cap1.Trace)
	}

	// Replay at the capture configuration (procs defaults to the
	// trace's thread count) is bit-identical to the captured run.
	repBody := []byte(fmt.Sprintf(`{"base":"simos-mipsy","trace":%q}`, cap1.Trace))
	resp, data = postJSON(t, ts.URL+"/v1/replays?wait=true", repBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("replay: status %d, body %s", resp.StatusCode, data)
	}
	var rep ReplayResponse
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Result.Exec != cap1.Result.Exec || rep.Result.Instructions != cap1.Result.Instructions {
		t.Errorf("replay diverged: exec %v/%v instrs %d/%d",
			rep.Result.Exec, cap1.Result.Exec, rep.Result.Instructions, cap1.Result.Instructions)
	}
	if rep.Workload == "" {
		t.Error("replay response missing workload")
	}

	// An unknown fingerprint is a 404 at submission time.
	resp, data = postJSON(t, ts.URL+"/v1/replays?wait=true",
		[]byte(`{"base":"simos-mipsy","trace":"deadbeef"}`))
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown trace: status %d, body %s", resp.StatusCode, data)
	}
}

// TestServerTraceEndpointsNeedStore pins the 400 when no trace store
// is configured.
func TestServerTraceEndpointsNeedStore(t *testing.T) {
	_, ts, gate := newTestServer(t, Options{})
	close(gate)
	resp, data := postJSON(t, ts.URL+"/v1/captures?wait=true",
		[]byte(`{"base":"simos-mipsy","procs":1,"workload":{"name":"fft","logn":8}}`))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("capture without store: status %d, body %s", resp.StatusCode, data)
	}
	resp, data = postJSON(t, ts.URL+"/v1/replays?wait=true",
		[]byte(`{"base":"simos-mipsy","trace":"deadbeef"}`))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("replay without store: status %d, body %s", resp.StatusCode, data)
	}
}
