package serve

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"flashsim/internal/obs"
)

// parsePromText validates exposition-format output line by line (every
// sample must follow a # TYPE declaring counter or gauge) and returns
// samples keyed by name{labels}.
func parsePromText(t *testing.T, text string) map[string]float64 {
	t.Helper()
	sampleRe := regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (-?[0-9.eE+-]+|NaN)$`)
	out := make(map[string]float64)
	typed := make(map[string]bool)
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 || (f[3] != "counter" && f[3] != "gauge") {
				t.Fatalf("bad TYPE line: %q", line)
			}
			typed[f[2]] = true
			continue
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("unparseable metrics line: %q", line)
		}
		if !typed[m[1]] {
			t.Fatalf("sample %q has no preceding # TYPE", m[1])
		}
		v, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		out[m[1]+m[2]] = v
	}
	return out
}

// TestServerMetricsParsesAndAgreesWithCollector pins the /metrics
// contract: the endpoint emits valid Prometheus text whose totals
// equal the obs.Report snapshot — the same document -metrics-out
// writes as JSON — plus the daemon's own admission counters.
func TestServerMetricsParsesAndAgreesWithCollector(t *testing.T) {
	s, ts, gate := newTestServer(t, Options{QueueDepth: 16})
	close(gate)

	for _, lines := range []int{32, 48} {
		resp, data := postJSON(t, ts.URL+"/v1/runs?wait=true", runBody(lines))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("run %d: status %d, body %s", lines, resp.StatusCode, data)
		}
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	samples := parsePromText(t, string(text))

	// The scrape must agree with the report a -metrics-out flush would
	// write at the same moment (round-trip through JSON to prove the
	// two serializations describe one document).
	rep := s.Collector().Snapshot()
	rep.Runner = s.Pool().Stats().Counters()
	doc, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var fromJSON obs.Report
	if err := json.Unmarshal(doc, &fromJSON); err != nil {
		t.Fatal(err)
	}

	want := map[string]float64{
		"flashsim_runs_total":         float64(fromJSON.Total.Runs),
		"flashsim_instructions_total": float64(fromJSON.Total.Instructions),
		"flashsim_exec_ticks_total":   float64(fromJSON.Total.ExecTicks),
		"flashsim_runner_jobs_total":  float64(fromJSON.Runner.Jobs),
		"flashsim_runner_runs_total":  float64(fromJSON.Runner.Ran),
		"flashd_jobs_accepted_total":  2,
		"flashd_jobs_rejected_total":  0,
		"flashd_queue_capacity":       16,
		"flashd_queue_depth":          0,
		"flashd_draining":             0,
	}
	for k, v := range want {
		got, ok := samples[k]
		if !ok {
			t.Errorf("missing sample %s", k)
			continue
		}
		if got != v {
			t.Errorf("%s = %g, want %g", k, got, v)
		}
	}
	if fromJSON.Total.Runs == 0 {
		t.Error("collector recorded no runs; agreement check is vacuous")
	}
}
