package serve

import (
	"encoding/json"
	"net/http"
	"reflect"
	"testing"

	"flashsim/internal/runner"
)

// TestConfigSpecShards pins the spec → config materialization of the
// shards execution knob.
func TestConfigSpecShards(t *testing.T) {
	spec := ConfigSpec{Base: "simos-mipsy", Procs: 4, Shards: 4}
	cfg, err := spec.Config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Shards != 4 {
		t.Errorf("cfg.Shards = %d, want 4", cfg.Shards)
	}
}

// TestServerShardedRunAliasesSerial submits the same workload with and
// without shards and requires the second submission to hit the memo of
// the first: shard count is an execution knob with bit-identical
// results, so it must not split the dedup or memo key — and the served
// Result must be byte-identical either way.
func TestServerShardedRunAliasesSerial(t *testing.T) {
	store, err := runner.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	pool := runner.New(2, store)
	_, ts, gate := newTestServer(t, Options{Pool: pool})
	close(gate)

	sharded := []byte(`{"base":"simos-mipsy","procs":4,"shards":4,
		"workload":{"name":"fft","logn":8}}`)
	resp, data := postJSON(t, ts.URL+"/v1/runs?wait=true", sharded)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sharded submit: status %d, body %s", resp.StatusCode, data)
	}
	var first RunResponse
	if err := json.Unmarshal(data, &first); err != nil {
		t.Fatal(err)
	}
	if first.Job.State != StateDone {
		t.Fatalf("job state = %s, want done", first.Job.State)
	}

	serial := []byte(`{"base":"simos-mipsy","procs":4,
		"workload":{"name":"fft","logn":8}}`)
	resp, data = postJSON(t, ts.URL+"/v1/runs?wait=true", serial)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("serial submit: status %d, body %s", resp.StatusCode, data)
	}
	var second RunResponse
	if err := json.Unmarshal(data, &second); err != nil {
		t.Fatal(err)
	}
	if !second.Job.Cached {
		t.Error("serial submission missed the sharded run's memo: shards leaked into the run fingerprint")
	}
	if !reflect.DeepEqual(first.Result, second.Result) {
		t.Errorf("sharded and serial results differ:\nsharded: %+v\nserial:  %+v", first.Result, second.Result)
	}
}
