package serve

import (
	"context"
	"sync"
	"time"

	"flashsim/internal/machine"
	"flashsim/internal/runner"
)

// jobRecord is the server-side state of one accepted job. Identical
// concurrent run submissions share one record (admission-level dedup),
// so a record may have many waiters and subscribers.
type jobRecord struct {
	id   string
	kind JobKind
	// fp is the dedup key: runner.Fingerprint for runs, a kind-prefixed
	// derivation for calibrations and figures.
	fp string

	// ctx governs the job through queue wait and execution; cancel is
	// invoked by DELETE, drain-abort, or the request timeout.
	ctx    context.Context
	cancel context.CancelFunc

	// Exactly one of these is meaningful, per kind.
	job     runner.Job     // KindRun
	calCfg  machine.Config // KindCalibration
	figure  FigureRequest  // KindFigure
	capture CaptureRequest // KindCapture
	replay  ReplayRequest  // KindReplay

	mu      sync.Mutex
	status  JobStatus
	payload any // RunResponse / CalibrationResponse / FigureResponse
	subs    []chan JobStatus
	done    chan struct{}
}

func newJobRecord(id string, kind JobKind, fp string, ctx context.Context, cancel context.CancelFunc) *jobRecord {
	return &jobRecord{
		id:     id,
		kind:   kind,
		fp:     fp,
		ctx:    ctx,
		cancel: cancel,
		done:   make(chan struct{}),
		status: JobStatus{
			ID:          id,
			Kind:        kind,
			State:       StateQueued,
			Fingerprint: fp,
			SubmittedMS: time.Now().UnixMilli(),
		},
	}
}

// Status returns a snapshot of the job's status.
func (j *jobRecord) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// transition applies mutate to the status under the lock and fans the
// new snapshot out to subscribers. Sends never block: a subscriber that
// falls behind misses intermediate states, not the terminal one (the
// events handler re-reads the final status on done).
func (j *jobRecord) transition(mutate func(*JobStatus)) {
	j.mu.Lock()
	mutate(&j.status)
	snap := j.status
	subs := j.subs
	j.mu.Unlock()
	for _, ch := range subs {
		select {
		case ch <- snap:
		default:
		}
	}
}

// start marks the job running.
func (j *jobRecord) start() {
	j.transition(func(s *JobStatus) {
		s.State = StateRunning
		s.StartedMS = time.Now().UnixMilli()
	})
}

// finish records the terminal state, attaches the payload, and releases
// every waiter.
func (j *jobRecord) finish(state JobState, errMsg string, cached bool, payload any) {
	j.mu.Lock()
	j.status.State = state
	j.status.Error = errMsg
	j.status.Cached = cached
	j.status.FinishedMS = time.Now().UnixMilli()
	j.payload = payload
	snap := j.status
	subs := j.subs
	j.mu.Unlock()
	for _, ch := range subs {
		select {
		case ch <- snap:
		default:
		}
	}
	close(j.done)
	j.cancel()
}

// subscribe registers a status channel and returns it along with the
// current snapshot.
func (j *jobRecord) subscribe() (chan JobStatus, JobStatus) {
	ch := make(chan JobStatus, 16)
	j.mu.Lock()
	j.subs = append(j.subs, ch)
	snap := j.status
	j.mu.Unlock()
	return ch, snap
}

// unsubscribe removes a channel registered by subscribe.
func (j *jobRecord) unsubscribe(ch chan JobStatus) {
	j.mu.Lock()
	defer j.mu.Unlock()
	for i, c := range j.subs {
		if c == ch {
			j.subs = append(j.subs[:i], j.subs[i+1:]...)
			return
		}
	}
}

// Payload returns the terminal payload (nil before finish).
func (j *jobRecord) Payload() any {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.payload
}
