package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"flashsim/internal/machine"
	"flashsim/internal/param"
	"flashsim/internal/runner"
)

const testFP = "deadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeef"

func TestStoredResultRoundTrip(t *testing.T) {
	want := machine.Result{Config: "m", Instructions: 42}
	env, err := EncodeStored(want)
	if err != nil {
		t.Fatal(err)
	}
	if env.Schema != param.SchemaVersion {
		t.Fatalf("schema %d, want %d", env.Schema, param.SchemaVersion)
	}
	got, err := env.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if got.Instructions != want.Instructions || got.Config != want.Config {
		t.Fatalf("round trip = %+v", got)
	}
}

func TestStoredResultRejectsTampering(t *testing.T) {
	env, err := EncodeStored(machine.Result{Instructions: 42})
	if err != nil {
		t.Fatal(err)
	}
	flipped := env
	flipped.Result = bytes.Replace(env.Result, []byte(`"Instructions":42`), []byte(`"Instructions":43`), 1)
	if bytes.Equal(flipped.Result, env.Result) {
		t.Fatal("tamper replacement did not apply")
	}
	if _, err := flipped.Decode(); err == nil || !strings.Contains(err.Error(), "CRC") {
		t.Fatalf("corrupted body decoded: %v", err)
	}
	stale := env
	stale.Schema = param.SchemaVersion + 1
	if _, err := stale.Decode(); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("wrong-schema envelope decoded: %v", err)
	}
	truncated := env
	truncated.Result = env.Result[:len(env.Result)/2]
	if _, err := truncated.Decode(); err == nil {
		t.Fatal("truncated body decoded")
	}
}

// storeServer builds a test server exposing a local memo backend on the
// store API.
func storeServer(t *testing.T) (*Server, string, runner.Backend) {
	t.Helper()
	local, err := runner.NewStore("")
	if err != nil {
		t.Fatal(err)
	}
	s, ts, gate := newTestServer(t, Options{Memo: local})
	close(gate)
	return s, ts.URL, local
}

func TestStoreAPIRoundTrip(t *testing.T) {
	_, url, local := storeServer(t)

	// Miss first.
	resp := getJSON(t, url+"/v1/store/"+testFP, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET on empty store = %d", resp.StatusCode)
	}

	// PUT a valid envelope, then read it back.
	env, err := EncodeStored(machine.Result{Instructions: 7})
	if err != nil {
		t.Fatal(err)
	}
	resp, body := putJSON(t, url+"/v1/store/"+testFP, env)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("PUT = %d: %s", resp.StatusCode, body)
	}
	var got StoredResult
	if resp := getJSON(t, url+"/v1/store/"+testFP, &got); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET after PUT = %d", resp.StatusCode)
	}
	res, err := got.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if res.Instructions != 7 {
		t.Fatalf("Instructions = %d", res.Instructions)
	}
	if res2, ok := local.Get(testFP); !ok || res2.Instructions != 7 {
		t.Fatalf("backend after PUT = (%v, %v)", res2, ok)
	}
}

func TestStoreAPIRejectsBadKeysAndBodies(t *testing.T) {
	_, url, local := storeServer(t)
	for _, key := range []string{"UPPER", "short", "has-dash", strings.Repeat("a", 200)} {
		if resp := getJSON(t, url+"/v1/store/"+key, nil); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET key %q = %d, want 400", key, resp.StatusCode)
		}
	}

	// A corrupt PUT (CRC mismatch) must be rejected and never stored.
	env, err := EncodeStored(machine.Result{Instructions: 42})
	if err != nil {
		t.Fatal(err)
	}
	env.Result = bytes.Replace(env.Result, []byte(`"Instructions":42`), []byte(`"Instructions":43`), 1)
	resp, body := putJSON(t, url+"/v1/store/"+testFP, env)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("corrupt PUT = %d: %s", resp.StatusCode, body)
	}
	if _, ok := local.Get(testFP); ok {
		t.Fatal("corrupt PUT reached the backend")
	}

	// A wrong-schema PUT likewise.
	env2, err := EncodeStored(machine.Result{Instructions: 42})
	if err != nil {
		t.Fatal(err)
	}
	env2.Schema++
	if resp, _ := putJSON(t, url+"/v1/store/"+testFP, env2); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("wrong-schema PUT = %d, want 400", resp.StatusCode)
	}
	// Non-JSON garbage.
	req, err := http.NewRequest(http.MethodPut, url+"/v1/store/"+testFP, strings.NewReader("not json"))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw.Body.Close()
	if raw.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage PUT = %d, want 400", raw.StatusCode)
	}
}

func TestStoreAPIWithoutMemoIs404(t *testing.T) {
	_, ts, gate := newTestServer(t, Options{})
	close(gate)
	if resp := getJSON(t, ts.URL+"/v1/store/"+testFP, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET without memo = %d, want 404", resp.StatusCode)
	}
	env, _ := EncodeStored(machine.Result{})
	if resp, _ := putJSON(t, ts.URL+"/v1/store/"+testFP, env); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("PUT without memo = %d, want 404", resp.StatusCode)
	}
}

func TestHealthAndRingEndpoints(t *testing.T) {
	// Plain server: /v1/health answers, /v1/ring is 404.
	_, ts, gate := newTestServer(t, Options{})
	close(gate)
	var health HealthResponse
	if resp := getJSON(t, ts.URL+"/v1/health", &health); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/health = %d", resp.StatusCode)
	}
	if health.Status != "ok" || health.Self != "" {
		t.Fatalf("plain health = %+v", health)
	}
	if resp := getJSON(t, ts.URL+"/v1/ring", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /v1/ring without a ring = %d, want 404", resp.StatusCode)
	}

	// Ring member: both endpoints carry the membership view.
	local, err := runner.NewStore("")
	if err != nil {
		t.Fatal(err)
	}
	dist := runner.NewDistStore(runner.DistOptions{Self: "http://self:1", Local: local})
	t.Cleanup(dist.Close)
	_, ts2, gate2 := newTestServer(t, Options{Memo: local, Dist: dist})
	close(gate2)
	var h2 HealthResponse
	getJSON(t, ts2.URL+"/v1/health", &h2)
	if h2.Self != "http://self:1" || len(h2.Peers) != 1 || !h2.Peers[0].Up {
		t.Fatalf("ring health = %+v", h2)
	}
	var ring RingResponse
	if resp := getJSON(t, ts2.URL+"/v1/ring?key="+testFP, &ring); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/ring = %d", resp.StatusCode)
	}
	if ring.Self != "http://self:1" || ring.Key != testFP {
		t.Fatalf("ring view = %+v", ring)
	}
	if len(ring.Owners) != 1 || ring.Owners[0] != "http://self:1" {
		t.Fatalf("single-member ring owners = %v", ring.Owners)
	}
}

func TestMetricsExposeStoreSeries(t *testing.T) {
	local, err := runner.NewStore("")
	if err != nil {
		t.Fatal(err)
	}
	dist := runner.NewDistStore(runner.DistOptions{Self: "http://self:1", Local: local})
	t.Cleanup(dist.Close)
	_, ts, gate := newTestServer(t, Options{Memo: local, Dist: dist})
	close(gate)

	// Drive one store hit so the counters move.
	env, err := EncodeStored(machine.Result{Instructions: 3})
	if err != nil {
		t.Fatal(err)
	}
	putJSON(t, ts.URL+"/v1/store/"+testFP, env)
	getJSON(t, ts.URL+"/v1/store/"+testFP, nil)

	resp, body := getText(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	for _, want := range []string{
		"flashd_store_api_gets_total 1",
		"flashd_store_api_puts_total 1",
		"flashd_store_local_hits_total",
		"flashd_store_hedges_total",
		"flashd_store_backfills_total",
		"flashd_store_peers_live 1",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
}

// putJSON issues a PUT with a JSON body.
func putJSON(t *testing.T, url string, v any) (*http.Response, string) {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPut, url, bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.String()
}

// getText fetches a plain-text endpoint.
func getText(t *testing.T, url string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.String()
}
