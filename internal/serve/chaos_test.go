// Fault-injection suite for the distributed serving tier: a chaos
// proxy sits between a DistStore's HTTP peer client and a real replica
// and misbehaves on command — refusing connections, stalling past the
// hedge threshold, truncating bodies mid-flight, corrupting payloads.
// The invariants under every failure: the caller always ends up with a
// correct result (remote hit or recompute fallback — bit-identical
// either way), and a corrupt body is never served as data.
//
// This file is an external test (package serve_test) because it needs
// both serve and serve/client, and client imports serve.
package serve_test

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"flashsim/internal/emitter"
	"flashsim/internal/machine"
	"flashsim/internal/obs"
	"flashsim/internal/runner"
	"flashsim/internal/serve"
	"flashsim/internal/serve/client"
)

// chaos modes.
const (
	chaosOK       = "ok"       // transparent passthrough
	chaosRefuse   = "refuse"   // abort every connection (a dead replica)
	chaosDelay    = "delay"    // stall well past the hedge threshold, then pass through
	chaosTruncate = "truncate" // forward half the body, then cut the connection
	chaosCorrupt  = "corrupt"  // flip result content so the CRC cannot match
)

// chaosProxy forwards requests to a target replica, misbehaving per
// its current mode. Mode flips are safe mid-traffic.
type chaosProxy struct {
	target string
	mode   atomic.Value
	delay  time.Duration
	ts     *httptest.Server
	// requests counts arrivals per mode, for assertions that a path
	// was actually exercised.
	mu   sync.Mutex
	hits map[string]int
}

func newChaosProxy(t *testing.T, target string) *chaosProxy {
	t.Helper()
	p := &chaosProxy{target: target, delay: 400 * time.Millisecond, hits: make(map[string]int)}
	p.mode.Store(chaosOK)
	p.ts = httptest.NewServer(http.HandlerFunc(p.serveHTTP))
	t.Cleanup(p.ts.Close)
	return p
}

func (p *chaosProxy) URL() string { return p.ts.URL }

func (p *chaosProxy) set(mode string) { p.mode.Store(mode) }

func (p *chaosProxy) count(mode string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hits[mode]
}

func (p *chaosProxy) serveHTTP(w http.ResponseWriter, r *http.Request) {
	mode := p.mode.Load().(string)
	p.mu.Lock()
	p.hits[mode]++
	p.mu.Unlock()
	switch mode {
	case chaosRefuse:
		panic(http.ErrAbortHandler)
	case chaosDelay:
		select {
		case <-time.After(p.delay):
		case <-r.Context().Done():
			return
		}
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, p.target+r.URL.RequestURI(), r.Body)
	if err != nil {
		w.WriteHeader(http.StatusBadGateway)
		return
	}
	req.Header = r.Header.Clone()
	resp, err := http.DefaultTransport.RoundTrip(req)
	if err != nil {
		w.WriteHeader(http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		w.WriteHeader(http.StatusBadGateway)
		return
	}
	switch mode {
	case chaosTruncate:
		// Promise the full length, deliver half, kill the connection:
		// the reader sees an unexpected EOF mid-body, exactly what a
		// replica dying mid-response produces.
		w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
		w.Header().Set("Content-Length", fmt.Sprint(len(body)))
		w.WriteHeader(resp.StatusCode)
		w.Write(body[:len(body)/2])
		panic(http.ErrAbortHandler)
	case chaosCorrupt:
		// Perturb the result content but keep the JSON valid (the
		// server indents, so the colon is followed by a space; a digit
		// prefix changes the value in place), leaving only the CRC
		// check between the corruption and the caller.
		body = bytes.Replace(body, []byte(`"Instructions": `), []byte(`"Instructions": 9`), 1)
	}
	w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
	w.WriteHeader(resp.StatusCode)
	w.Write(body)
}

// replica is one real serving replica: a full serve.Server over its
// own local store.
type replica struct {
	store *runner.Store
	ts    *httptest.Server
}

func newReplica(t *testing.T) *replica {
	t.Helper()
	store, err := runner.NewStore("")
	if err != nil {
		t.Fatal(err)
	}
	s := serve.New(serve.Options{Pool: runner.New(1, store), Memo: store})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return &replica{store: store, ts: ts}
}

// chaosJob is a deterministic workload whose result the tests compare
// bit-for-bit across recompute paths.
func chaosJob(ops int) runner.Job {
	cfg := machine.Base(1, true)
	cfg.Name = "chaos-test-machine"
	return runner.Job{Config: cfg, Prog: emitter.Program{
		Name:    "chaos-test",
		Variant: fmt.Sprintf("ops=%d", ops),
		Threads: 1,
		Body: func(th *emitter.Thread, _ any) {
			th.Barrier(emitter.BarrierStart)
			th.IntOps(ops)
			th.Barrier(emitter.BarrierEnd)
		},
	}, Seed: 11}
}

// groundTruth computes the job's result with no store at all.
func groundTruth(t *testing.T, job runner.Job) machine.Result {
	t.Helper()
	res, err := runner.New(1, nil).Run(context.Background(), []runner.Job{job})
	if err != nil {
		t.Fatal(err)
	}
	return res[0]
}

// chaosDist builds a DistStore whose only peer is the proxied replica.
func chaosDist(t *testing.T, proxy *chaosProxy) (*runner.DistStore, *obs.StoreCounters) {
	t.Helper()
	local, err := runner.NewStore("")
	if err != nil {
		t.Fatal(err)
	}
	c := &obs.StoreCounters{}
	d := runner.NewDistStore(runner.DistOptions{
		Self:         "http://chaos-self",
		Local:        local,
		Peers:        []runner.PeerStore{client.NewStoreClient(proxy.URL(), nil)},
		HedgeFloor:   10 * time.Millisecond,
		FetchTimeout: 2 * time.Second,
		Counters:     c,
	})
	t.Cleanup(d.Close)
	return d, c
}

// seedRemote computes the job on the remote replica's store so the
// ring genuinely holds the result.
func seedRemote(t *testing.T, rep *replica, job runner.Job) machine.Result {
	t.Helper()
	res, err := runner.New(1, rep.store).Run(context.Background(), []runner.Job{job})
	if err != nil {
		t.Fatal(err)
	}
	return res[0]
}

func TestChaosCorruptBodyNeverServed(t *testing.T) {
	rep := newReplica(t)
	proxy := newChaosProxy(t, rep.ts.URL)
	d, c := chaosDist(t, proxy)
	job := chaosJob(500)
	want := seedRemote(t, rep, job)
	key := job.Fingerprint()

	proxy.set(chaosCorrupt)
	if res, ok := d.Get(key); ok {
		t.Fatalf("corrupted fetch served as a hit: %+v", res)
	}
	if c.Snapshot().RemoteErrors == 0 {
		t.Fatal("corruption was not surfaced as a remote error")
	}
	// The recompute fallback is always available and always right.
	out := runner.New(1, d).RunAll(context.Background(), []runner.Job{job})
	if out[0].Err != nil {
		t.Fatal(out[0].Err)
	}
	if out[0].Result.Exec != want.Exec || out[0].Result.Instructions != want.Instructions {
		t.Fatalf("fallback result diverged: %+v vs %+v", out[0].Result, want)
	}

	// With the corruption gone the remote hit works and matches.
	proxy.set(chaosOK)
	d2, _ := chaosDist(t, proxy)
	res, ok := d2.Get(key)
	if !ok {
		t.Fatal("clean fetch missed")
	}
	if res.Exec != want.Exec || res.Instructions != want.Instructions {
		t.Fatalf("remote result diverged: %+v vs %+v", res, want)
	}
}

func TestChaosTruncatedBodyNeverServed(t *testing.T) {
	rep := newReplica(t)
	proxy := newChaosProxy(t, rep.ts.URL)
	d, c := chaosDist(t, proxy)
	job := chaosJob(600)
	want := seedRemote(t, rep, job)

	proxy.set(chaosTruncate)
	if res, ok := d.Get(job.Fingerprint()); ok {
		t.Fatalf("truncated fetch served as a hit: %+v", res)
	}
	if c.Snapshot().RemoteErrors == 0 {
		t.Fatal("truncation was not surfaced as a remote error")
	}
	if proxy.count(chaosTruncate) == 0 {
		t.Fatal("truncate path never exercised")
	}
	out := runner.New(1, d).RunAll(context.Background(), []runner.Job{job})
	if out[0].Err != nil {
		t.Fatal(out[0].Err)
	}
	if out[0].Result.Exec != want.Exec {
		t.Fatalf("fallback Exec %d, want %d", out[0].Result.Exec, want.Exec)
	}
}

func TestChaosDeadReplicaFallsBackToCompute(t *testing.T) {
	rep := newReplica(t)
	proxy := newChaosProxy(t, rep.ts.URL)
	d, c := chaosDist(t, proxy)
	job := chaosJob(700)
	want := seedRemote(t, rep, job)

	// The only peer is dead; the pool must still deliver the correct
	// result by computing it.
	proxy.set(chaosRefuse)
	out := runner.New(1, d).RunAll(context.Background(), []runner.Job{job})
	if out[0].Err != nil {
		t.Fatal(out[0].Err)
	}
	if out[0].Cached {
		t.Fatal("result claimed cached with every peer dead and local cold")
	}
	if out[0].Result.Exec != want.Exec || out[0].Result.Instructions != want.Instructions {
		t.Fatalf("recompute diverged: %+v vs %+v", out[0].Result, want)
	}
	snap := c.Snapshot()
	if snap.RemoteErrors == 0 && snap.Fallbacks == 0 {
		t.Fatalf("dead peer left no trace in the counters: %+v", snap)
	}
}

func TestChaosDelayTriggersHedgeAndStaysCorrect(t *testing.T) {
	// Two owners behind two proxies; the primary (whichever it is)
	// stalls, the hedge reaches the other, and the result is correct.
	repA := newReplica(t)
	repB := newReplica(t)
	proxyA := newChaosProxy(t, repA.ts.URL)
	proxyB := newChaosProxy(t, repB.ts.URL)
	local, err := runner.NewStore("")
	if err != nil {
		t.Fatal(err)
	}
	c := &obs.StoreCounters{}
	d := runner.NewDistStore(runner.DistOptions{
		Self:  "http://chaos-self",
		Local: local,
		Peers: []runner.PeerStore{
			client.NewStoreClient(proxyA.URL(), nil),
			client.NewStoreClient(proxyB.URL(), nil),
		},
		// Replicate 2 keeps both proxies in every key's owner list, so
		// the hedge always has a second owner to reach.
		Replicate:    2,
		HedgeFloor:   10 * time.Millisecond,
		FetchTimeout: 5 * time.Second,
		Counters:     c,
	})
	t.Cleanup(d.Close)

	job := chaosJob(800)
	want := seedRemote(t, repA, job)
	seedRemote(t, repB, job)
	proxyA.set(chaosDelay)
	proxyB.set(chaosDelay)
	// Both proxies stall 400ms; whichever owner is tried first, the
	// hedge fires at ~10ms and both requests resolve eventually. To
	// observe a hedge *win*, stall only the first owner.
	owners := d.Owners(job.Fingerprint())
	if len(owners) < 2 {
		t.Fatalf("expected at least 2 owners, got %v", owners)
	}
	proxyA.set(chaosOK)
	proxyB.set(chaosOK)
	primary := owners[0]
	if primary == "http://chaos-self" {
		primary = owners[1]
	}
	if primary == proxyA.URL() {
		proxyA.set(chaosDelay)
	} else {
		proxyB.set(chaosDelay)
	}

	start := time.Now()
	res, ok := d.Get(job.Fingerprint())
	if !ok {
		t.Fatal("hedged fetch missed with both owners seeded")
	}
	if res.Exec != want.Exec || res.Instructions != want.Instructions {
		t.Fatalf("hedged result diverged: %+v vs %+v", res, want)
	}
	if elapsed := time.Since(start); elapsed > 350*time.Millisecond {
		t.Fatalf("hedged fetch took %s; it waited out the stalled owner", elapsed)
	}
	snap := c.Snapshot()
	if snap.Hedges == 0 {
		t.Fatal("no hedge launched against a stalled primary")
	}
	if snap.HedgeWins == 0 {
		t.Fatal("hedge never won against a 400ms stall")
	}
}

func TestChaosKillOwnerAfterWarmup(t *testing.T) {
	// The ring-smoke scenario in-process: warm the owner, kill it,
	// and verify the next asker still gets the exact result.
	rep := newReplica(t)
	proxy := newChaosProxy(t, rep.ts.URL)
	d, _ := chaosDist(t, proxy)
	job := chaosJob(900)
	key := job.Fingerprint()
	want := seedRemote(t, rep, job)

	// Warm path works.
	if res, ok := d.Get(key); !ok || res.Exec != want.Exec {
		t.Fatalf("warm fetch = (%+v, %v)", res, ok)
	}
	// Kill the owner. A fresh dist store (cold local — the warm one
	// read the result through) must recompute and agree.
	proxy.set(chaosRefuse)
	d2, _ := chaosDist(t, proxy)
	out := runner.New(1, d2).RunAll(context.Background(), []runner.Job{job})
	if out[0].Err != nil {
		t.Fatal(out[0].Err)
	}
	if out[0].Result.Exec != want.Exec || out[0].Result.Instructions != want.Instructions {
		t.Fatalf("post-kill result diverged: %+v vs %+v", out[0].Result, want)
	}
}

func TestChaosHealthProbesTrackOutage(t *testing.T) {
	rep := newReplica(t)
	proxy := newChaosProxy(t, rep.ts.URL)
	d, _ := chaosDist(t, proxy)
	peer := proxy.URL()

	d.PollHealth()
	if !d.Ring().IsLive(peer) {
		t.Fatal("healthy peer probed down")
	}
	proxy.set(chaosRefuse)
	d.PollHealth()
	if d.Ring().IsLive(peer) {
		t.Fatal("dead peer probed up")
	}
	proxy.set(chaosOK)
	d.PollHealth()
	if !d.Ring().IsLive(peer) {
		t.Fatal("recovered peer still down")
	}
}
