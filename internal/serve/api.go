// Package serve is the network front end of the stack: a
// simulation-as-a-service daemon layer exposing the runner pool, the
// memo store, the parameter registry, the calibrator, and the paper's
// figure harness over HTTP. cmd/flashd is a thin main around it.
//
// The server behaves like an inference server, not a batch CLI:
//
//   - admission control — a bounded job queue; a full queue rejects
//     with 429 and a Retry-After header instead of buffering without
//     bound;
//   - request dedup — submissions are keyed by runner.Fingerprint, so
//     identical concurrent requests coalesce onto one record and one
//     pool execution (and identical later requests hit the memo
//     store);
//   - deadlines and cancellation — a request's timeout travels a
//     context chain into the pool, and DELETE cancels a queued job;
//   - streaming — job status is observable by polling or by SSE;
//   - graceful drain — Drain stops admissions (503), lets every
//     accepted job finish, and leaves results fetchable until
//     shutdown.
package serve

import (
	"encoding/json"
	"fmt"

	"flashsim/internal/core"
	"flashsim/internal/emitter"
	"flashsim/internal/hw"
	"flashsim/internal/machine"
	"flashsim/internal/param"
	"flashsim/internal/workload"
)

// JobKind discriminates what a job computes.
type JobKind string

const (
	KindRun         JobKind = "run"
	KindCalibration JobKind = "calibration"
	KindFigure      JobKind = "figure"
	// KindCapture runs a workload execution-driven while recording its
	// instruction streams into the server's trace store; KindReplay runs
	// a stored capture trace-driven under a chosen configuration. Both
	// require a trace store (flashd -trace-dir).
	KindCapture JobKind = "capture"
	KindReplay  JobKind = "replay"
)

// JobState is a job's lifecycle position.
type JobState string

const (
	StateQueued   JobState = "queued"
	StateRunning  JobState = "running"
	StateDone     JobState = "done"
	StateFailed   JobState = "failed"
	StateCanceled JobState = "canceled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// JobStatus is the poll/stream view of one job.
type JobStatus struct {
	ID    string   `json:"id"`
	Kind  JobKind  `json:"kind"`
	State JobState `json:"state"`
	// Fingerprint is the dedup key (runner.Fingerprint for runs).
	Fingerprint string `json:"fingerprint,omitempty"`
	// Cached reports the result came from the memo store; Coalesced
	// that this submission joined an already-active identical job.
	Cached    bool   `json:"cached,omitempty"`
	Coalesced bool   `json:"coalesced,omitempty"`
	Error     string `json:"error,omitempty"`
	// Timestamps are Unix milliseconds; zero = not reached yet.
	SubmittedMS int64 `json:"submitted_ms,omitempty"`
	StartedMS   int64 `json:"started_ms,omitempty"`
	FinishedMS  int64 `json:"finished_ms,omitempty"`
}

// WorkloadSpec selects a program from the workload registry: a name
// plus parameter assignments. Omitted parameters take the workload's
// registered full-scale defaults; unknown names and parameters are
// rejected against the registry's schemas. On the wire the spec is
// flat — {"name": "fft", "logn": 12} — exactly what a human writes in
// a flashd job file.
type WorkloadSpec struct {
	Name   string
	Params map[string]any
}

// Workload builds a spec; params may be nil for all-defaults.
func Workload(name string, params map[string]any) WorkloadSpec {
	return WorkloadSpec{Name: name, Params: params}
}

// MarshalJSON renders the canonical flat object with parameters in
// sorted order, the form stored as a capture's source metadata.
func (w WorkloadSpec) MarshalJSON() ([]byte, error) {
	return workload.EncodeSpec(w.Name, w.Params)
}

// UnmarshalJSON accepts the flat wire object. Validation happens at
// Program time, against the registry schema — here only the shape is
// checked, so decode errors and parameter errors stay distinguishable.
func (w *WorkloadSpec) UnmarshalJSON(data []byte) error {
	var raw map[string]any
	if err := json.Unmarshal(data, &raw); err != nil {
		return fmt.Errorf("workload spec: %w", err)
	}
	name, _ := raw["name"].(string)
	delete(raw, "name")
	w.Name = name
	if len(raw) > 0 {
		w.Params = raw
	} else {
		w.Params = nil
	}
	return nil
}

// Program builds the workload at the given thread count via the
// registry.
func (w WorkloadSpec) Program(procs int) (emitter.Program, error) {
	def, err := workload.Lookup(w.Name)
	if err != nil {
		return emitter.Program{}, err
	}
	vals, err := def.Resolve(w.Params, false)
	if err != nil {
		return emitter.Program{}, err
	}
	return def.Build(vals, procs), nil
}

// ConfigSpec selects a simulator configuration: a named base plus
// param-registry deltas, the same {base, set} shape the CLIs express
// with -sim/-set.
type ConfigSpec struct {
	// Base is hw, simos-mipsy, simos-mxs, or solo-mipsy.
	Base string `json:"base"`
	// MHz is the Mipsy clock (default 150; ignored by hw and mxs).
	MHz int `json:"mhz,omitempty"`
	// Procs is the processor count (default 1).
	Procs int `json:"procs,omitempty"`
	// Seed overrides the configuration's jitter seed when nonzero.
	Seed uint64 `json:"seed,omitempty"`
	// Scaled selects the 1/16-of-paper cache geometry (default true).
	Scaled *bool `json:"scaled,omitempty"`
	// Sampling, when non-nil, enables sampled simulation with this
	// schedule (the CLIs' -sample flag as a spec field).
	Sampling *SamplingSpec `json:"sampling,omitempty"`
	// Shards partitions the simulated nodes across this many host
	// cores inside the run (the CLIs' -shards flag). An execution
	// knob, not a model parameter: results are bit-identical at any
	// value, so it is excluded from job deduplication and memo keys.
	Shards int `json:"shards,omitempty"`
	// Set is the parameter-override list, validated against the
	// registry exactly like the CLIs' -set flags.
	Set []param.Setting `json:"set,omitempty"`
}

// SamplingSpec is the job-spec form of a sampling schedule. Zero
// counts inherit the default schedule, so {} requests default
// sampling and partial specs override only what they name.
type SamplingSpec struct {
	PeriodInstrs uint64 `json:"period_instrs,omitempty"`
	WindowInstrs uint64 `json:"window_instrs,omitempty"`
	WarmupInstrs uint64 `json:"warmup_instrs,omitempty"`
	PhaseInstrs  uint64 `json:"phase_instrs,omitempty"`
	// ColdState leaves cache/TLB/directory state untouched during
	// fast-forward (default: warm).
	ColdState bool `json:"cold_state,omitempty"`
}

// schedule materializes the spec over the default schedule.
func (s SamplingSpec) schedule() machine.SamplingConfig {
	sc := machine.DefaultSampling()
	if s.PeriodInstrs > 0 {
		sc.Period = s.PeriodInstrs
	}
	if s.WindowInstrs > 0 {
		sc.Window = s.WindowInstrs
	}
	if s.WarmupInstrs > 0 {
		sc.Warmup = s.WarmupInstrs
	}
	sc.Phase = s.PhaseInstrs
	sc.ColdState = s.ColdState
	return sc
}

// boolOr returns *p or def.
func boolOr(p *bool, def bool) bool {
	if p == nil {
		return def
	}
	return *p
}

// Config materializes the spec through core's constructors and the
// param registry.
func (c ConfigSpec) Config() (machine.Config, error) {
	procs := c.Procs
	if procs == 0 {
		procs = 1
	}
	mhz := c.MHz
	if mhz == 0 {
		mhz = 150
	}
	scaled := boolOr(c.Scaled, true)
	var cfg machine.Config
	switch c.Base {
	case "hw", "flash":
		cfg = hw.Config(procs, scaled)
	case "simos-mipsy":
		cfg = core.SimOSMipsy(procs, mhz, scaled)
	case "simos-mxs":
		cfg = core.SimOSMXS(procs, scaled)
	case "solo-mipsy":
		cfg = core.SoloMipsy(procs, mhz, scaled)
	case "":
		return machine.Config{}, fmt.Errorf("base config missing")
	default:
		return machine.Config{}, fmt.Errorf("unknown base %q (want hw, simos-mipsy, simos-mxs, or solo-mipsy)", c.Base)
	}
	if c.Seed != 0 {
		cfg.Seed = c.Seed
	}
	if c.Sampling != nil {
		cfg.Sampling = c.Sampling.schedule()
	}
	cfg.Shards = c.Shards
	return param.ApplySettings(cfg, c.Set)
}

// RunRequest submits one simulation run.
type RunRequest struct {
	ConfigSpec
	Workload WorkloadSpec `json:"workload"`
	// TimeoutMS bounds the job's queue-wait + start; 0 = no deadline.
	// A run already executing is not preempted (the event loop has no
	// preemption points), so this bounds waiting, not simulating.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// RunResponse is the completed payload of a run job.
type RunResponse struct {
	Job    JobStatus      `json:"job"`
	Result machine.Result `json:"result"`
}

// CalibrationRequest submits a closing-the-loop calibration of the
// specified simulator against the hardware reference.
type CalibrationRequest struct {
	ConfigSpec
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// CalibrationResponse is the completed payload of a calibration job.
type CalibrationResponse struct {
	Job JobStatus `json:"job"`
	// Deltas is the tuned-parameter diff by registry path; Report the
	// per-adjustment fitting log; Diff its text rendering.
	Deltas []param.Delta     `json:"deltas"`
	Report []core.Adjustment `json:"report"`
	Diff   string            `json:"diff"`
}

// FigureRequest submits one of the paper's figures (1-7).
type FigureRequest struct {
	Figure int `json:"figure"`
	// Quick selects the reduced problem sizes.
	Quick     bool  `json:"quick,omitempty"`
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// FigureResponse is the completed payload of a figure job.
type FigureResponse struct {
	Job    JobStatus `json:"job"`
	Figure int       `json:"figure"`
	// Text is the harness's rendering; Data the structured result (a
	// core.CompareResult for figures 1-4, []core.Curve for 5-7).
	Text string `json:"text"`
	Data any    `json:"data,omitempty"`
}

// CaptureRequest submits an execution-driven run of a workload that
// also records its per-thread instruction streams into the server's
// content-addressed trace store (store once, replay many: a capture of
// an already-stored (config, workload) tuple runs the simulation —
// memoized like any run — but writes no second container).
type CaptureRequest struct {
	ConfigSpec
	Workload  WorkloadSpec `json:"workload"`
	TimeoutMS int64        `json:"timeout_ms,omitempty"`
}

// CaptureResponse is the completed payload of a capture job.
type CaptureResponse struct {
	Job    JobStatus      `json:"job"`
	Result machine.Result `json:"result"`
	// Trace is the container's content address (runner.TraceFingerprint)
	// in the server's trace store; pass it to a ReplayRequest.
	Trace string `json:"trace"`
	// Stored is false when the container already existed.
	Stored bool `json:"stored"`
}

// ReplayRequest submits a trace-driven run: the capture identified by
// Trace is replayed on the machine described by the config spec. The
// workload (and thread count) come from the container.
type ReplayRequest struct {
	ConfigSpec
	// Trace is a capture's content-address fingerprint, from a
	// CaptureResponse (or flashtrace capture -store).
	Trace     string `json:"trace"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
}

// ReplayResponse is the completed payload of a replay job.
type ReplayResponse struct {
	Job      JobStatus      `json:"job"`
	Result   machine.Result `json:"result"`
	Trace    string         `json:"trace"`
	Workload string         `json:"workload"`
}

// ErrorResponse is the JSON body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
	// RetryAfterS echoes the Retry-After header on 429s.
	RetryAfterS int `json:"retry_after_s,omitempty"`
}
