package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"flashsim/internal/param"
	"flashsim/internal/runner"
)

// maxBodyBytes bounds request bodies; a run submission is a small JSON
// document, so anything bigger is a client bug, not a workload.
const maxBodyBytes = 1 << 20

// routes installs the endpoint table.
func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/runs", s.handleSubmitRun)
	s.mux.HandleFunc("POST /v1/calibrations", s.handleSubmitCalibration)
	s.mux.HandleFunc("POST /v1/figures", s.handleSubmitFigure)
	s.mux.HandleFunc("POST /v1/captures", s.handleSubmitCapture)
	s.mux.HandleFunc("POST /v1/replays", s.handleSubmitReplay)
	s.mux.HandleFunc("GET /v1/jobs", s.handleListJobs)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleJobResult)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	s.mux.HandleFunc("GET /v1/params", s.handleParams)
	s.mux.HandleFunc("GET /v1/store/{fp}", s.handleStoreGet)
	s.mux.HandleFunc("PUT /v1/store/{fp}", s.handleStorePut)
	s.mux.HandleFunc("GET /v1/health", s.handleHealth)
	s.mux.HandleFunc("GET /v1/ring", s.handleRing)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
}

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError writes a JSON error body.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// decode parses a bounded JSON body, rejecting unknown fields so a
// typo'd parameter fails loudly instead of silently running defaults.
func decode(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("request body: %w", err)
	}
	return nil
}

// rejectAdmission renders the two admission failures: 503 while
// draining, 429 with an explicit Retry-After under backpressure.
func (s *Server) rejectAdmission(w http.ResponseWriter, why admitError) {
	switch why {
	case admitDraining:
		writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{Error: "server is draining; not accepting jobs"})
	case admitFull:
		secs := int(s.retryAfter.Seconds())
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		writeJSON(w, http.StatusTooManyRequests, ErrorResponse{
			Error:       fmt.Sprintf("job queue full (%d queued); retry later", s.queueDepth),
			RetryAfterS: secs,
		})
	}
}

// respondSubmitted answers a successful submission: synchronously
// (?wait=true blocks until the job finishes and returns its payload)
// or asynchronously (202 + status + Location).
func (s *Server) respondSubmitted(w http.ResponseWriter, r *http.Request, rec *jobRecord, coalesced bool) {
	if isTrue(r.URL.Query().Get("wait")) {
		select {
		case <-rec.done:
			s.respondPayload(w, rec, coalesced)
		case <-r.Context().Done():
			// Client hung up; the job itself keeps running (accepted
			// work is completed and memoized for the next asker).
		}
		return
	}
	st := rec.Status()
	st.Coalesced = coalesced
	w.Header().Set("Location", "/v1/jobs/"+rec.id)
	writeJSON(w, http.StatusAccepted, st)
}

// respondPayload renders a terminal job: 200 with the payload on
// success, 500/504 with the error otherwise.
func (s *Server) respondPayload(w http.ResponseWriter, rec *jobRecord, coalesced bool) {
	st := rec.Status()
	st.Coalesced = coalesced
	switch st.State {
	case StateDone:
		switch p := rec.Payload().(type) {
		case RunResponse:
			p.Job = st
			writeJSON(w, http.StatusOK, p)
		case CalibrationResponse:
			p.Job = st
			writeJSON(w, http.StatusOK, p)
		case FigureResponse:
			p.Job = st
			writeJSON(w, http.StatusOK, p)
		case CaptureResponse:
			p.Job = st
			writeJSON(w, http.StatusOK, p)
		case ReplayResponse:
			p.Job = st
			writeJSON(w, http.StatusOK, p)
		default:
			writeError(w, http.StatusInternalServerError, "job %s finished without a payload", rec.id)
		}
	case StateCanceled:
		writeJSON(w, http.StatusGatewayTimeout, ErrorResponse{Error: "job " + rec.id + " canceled: " + st.Error})
	default:
		writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: "job " + rec.id + " failed: " + st.Error})
	}
}

func isTrue(v string) bool {
	b, err := strconv.ParseBool(v)
	return err == nil && b
}

func (s *Server) handleSubmitRun(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	if err := decode(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	cfg, err := req.Config()
	if err != nil {
		writeError(w, http.StatusBadRequest, "config: %v", err)
		return
	}
	prog, err := req.Workload.Program(cfg.Procs)
	if err != nil {
		writeError(w, http.StatusBadRequest, "workload: %v", err)
		return
	}
	job := runner.Job{Config: cfg, Prog: prog}
	rec, coalesced, why := s.admit(KindRun, job.Fingerprint(), req.TimeoutMS, func(rec *jobRecord) {
		rec.job = job
	})
	if why != admitOK {
		s.rejectAdmission(w, why)
		return
	}
	s.respondSubmitted(w, r, rec, coalesced)
}

func (s *Server) handleSubmitCalibration(w http.ResponseWriter, r *http.Request) {
	var req CalibrationRequest
	if err := decode(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Calibration probes run at 4 processors like cmd/tune; the spec's
	// procs field is accepted but irrelevant, so it is pinned to keep
	// the dedup key canonical.
	req.Procs = 4
	cfg, err := req.Config()
	if err != nil {
		writeError(w, http.StatusBadRequest, "config: %v", err)
		return
	}
	rec, coalesced, why := s.admit(KindCalibration, configFingerprint(KindCalibration, cfg), req.TimeoutMS, func(rec *jobRecord) {
		rec.calCfg = cfg
	})
	if why != admitOK {
		s.rejectAdmission(w, why)
		return
	}
	s.respondSubmitted(w, r, rec, coalesced)
}

func (s *Server) handleSubmitFigure(w http.ResponseWriter, r *http.Request) {
	var req FigureRequest
	if err := decode(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.Figure < 1 || req.Figure > 7 {
		writeError(w, http.StatusBadRequest, "figure %d out of range 1-7", req.Figure)
		return
	}
	fp := fmt.Sprintf("figure:%d:quick=%v", req.Figure, req.Quick)
	rec, coalesced, why := s.admit(KindFigure, fp, req.TimeoutMS, func(rec *jobRecord) {
		rec.figure = req
	})
	if why != admitOK {
		s.rejectAdmission(w, why)
		return
	}
	s.respondSubmitted(w, r, rec, coalesced)
}

func (s *Server) handleSubmitCapture(w http.ResponseWriter, r *http.Request) {
	var req CaptureRequest
	if err := decode(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if s.traces == nil {
		writeError(w, http.StatusBadRequest, "no trace store configured (start flashd with -trace-dir)")
		return
	}
	cfg, err := req.Config()
	if err != nil {
		writeError(w, http.StatusBadRequest, "config: %v", err)
		return
	}
	prog, err := req.Workload.Program(cfg.Procs)
	if err != nil {
		writeError(w, http.StatusBadRequest, "workload: %v", err)
		return
	}
	fp := "capture:" + runner.TraceFingerprint(cfg, prog)
	rec, coalesced, why := s.admit(KindCapture, fp, req.TimeoutMS, func(rec *jobRecord) {
		rec.capture = req
	})
	if why != admitOK {
		s.rejectAdmission(w, why)
		return
	}
	s.respondSubmitted(w, r, rec, coalesced)
}

func (s *Server) handleSubmitReplay(w http.ResponseWriter, r *http.Request) {
	var req ReplayRequest
	if err := decode(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if s.traces == nil {
		writeError(w, http.StatusBadRequest, "no trace store configured (start flashd with -trace-dir)")
		return
	}
	if req.Trace == "" {
		writeError(w, http.StatusBadRequest, "trace fingerprint missing")
		return
	}
	if !s.traces.Has(req.Trace) {
		writeError(w, http.StatusNotFound, "no trace %q in the store (capture it first)", req.Trace)
		return
	}
	cfg, err := req.Config()
	if err != nil {
		writeError(w, http.StatusBadRequest, "config: %v", err)
		return
	}
	// The dedup key covers the requested spec verbatim (procs 0 means
	// "the trace's thread count"; the executor resolves it); the memo
	// store underneath keys on the resolved runner.ReplayFingerprint.
	fp := configFingerprint(KindReplay, cfg) + ":" + req.Trace
	rec, coalesced, why := s.admit(KindReplay, fp, req.TimeoutMS, func(rec *jobRecord) {
		rec.replay = req
	})
	if why != admitOK {
		s.rejectAdmission(w, why)
		return
	}
	s.respondSubmitted(w, r, rec, coalesced)
}

func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	statuses := make([]JobStatus, 0, len(s.order))
	for _, id := range s.order {
		statuses = append(statuses, s.jobs[id].Status())
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"jobs": statuses})
}

func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	rec, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, rec.Status())
}

func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	rec, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	if !rec.Status().State.Terminal() {
		writeJSON(w, http.StatusConflict, rec.Status())
		return
	}
	s.respondPayload(w, rec, false)
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	rec, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	rec.cancel()
	writeJSON(w, http.StatusOK, rec.Status())
}

// handleJobEvents streams status transitions as Server-Sent Events:
// one `event: status` per transition with a JobStatus JSON data line,
// then `event: done` when the job is terminal.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	rec, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusNotImplemented, "streaming unsupported by this connection")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	ch, snap := rec.subscribe()
	defer rec.unsubscribe(ch)
	send := func(event string, st JobStatus) {
		data, _ := json.Marshal(st)
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
		flusher.Flush()
	}
	send("status", snap)
	if snap.State.Terminal() {
		send("done", snap)
		return
	}
	for {
		select {
		case st := <-ch:
			send("status", st)
			if st.State.Terminal() {
				send("done", st)
				return
			}
		case <-rec.done:
			// The terminal transition may have raced the subscription;
			// re-read and close out.
			st := rec.Status()
			send("status", st)
			send("done", st)
			return
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleParams(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, param.Describe())
}

// handleMetrics assembles the Prometheus exposition: the shared
// obs.Report (identical to what -metrics-out writes as JSON) plus the
// daemon's own admission-control gauges.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	rep := s.collector.Snapshot()
	rep.Runner = s.pool.Stats().Counters()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := rep.WritePrometheus(w); err != nil {
		return
	}
	s.mu.Lock()
	queueDepth := len(s.queue)
	draining := 0
	if s.draining {
		draining = 1
	}
	s.mu.Unlock()
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("flashd_jobs_accepted_total", "Jobs admitted into the queue.", s.accepted.Load())
	counter("flashd_jobs_rejected_total", "Submissions rejected with 429 (queue full).", s.rejected.Load())
	counter("flashd_jobs_refused_total", "Submissions refused with 503 (draining).", s.refused.Load())
	counter("flashd_jobs_coalesced_total", "Submissions coalesced onto an active identical job.", s.coalesced.Load())
	counter("flashd_flight_coalesced_total", "Pool executions joined in-flight (runner.Flight).", s.flight.Coalesced())
	gauge("flashd_queue_depth", "Jobs accepted but not yet started.", int64(queueDepth))
	gauge("flashd_queue_capacity", "Bounded queue capacity.", int64(s.queueDepth))
	gauge("flashd_workers", "Concurrent job executors.", int64(s.workers))
	gauge("flashd_draining", "1 while the server refuses new jobs.", int64(draining))
	if s.memo != nil {
		counter("flashd_store_api_gets_total", "Peer store GETs served with a result.", s.storeGets.Load())
		counter("flashd_store_api_misses_total", "Peer store GETs answered 404.", s.storeMisses.Load())
		counter("flashd_store_api_puts_total", "Peer store back-fill PUTs accepted.", s.storePuts.Load())
	}
	if s.dist != nil {
		snap := s.dist.Counters().Snapshot()
		counter("flashd_store_local_hits_total", "Memo lookups answered by the local backend.", snap.LocalHits)
		counter("flashd_store_local_misses_total", "Memo lookups that missed the local backend.", snap.LocalMisses)
		counter("flashd_store_remote_hits_total", "Memo lookups answered by a ring peer.", snap.RemoteHits)
		counter("flashd_store_remote_misses_total", "Ring peer fetches that returned a definitive miss.", snap.RemoteMisses)
		counter("flashd_store_remote_errors_total", "Ring peer fetches that failed (network, validation).", snap.RemoteErrors)
		counter("flashd_store_hedges_total", "Hedged second fetches launched past the latency threshold.", snap.Hedges)
		counter("flashd_store_hedge_wins_total", "Hedged fetches that answered first.", snap.HedgeWins)
		counter("flashd_store_fallbacks_total", "Lookups that fell back to local compute.", snap.Fallbacks)
		counter("flashd_store_backfills_total", "Results pushed to ring owners after a local compute.", snap.Backfills)
		counter("flashd_store_backfill_errors_total", "Back-fill pushes that failed.", snap.BackfillErrors)
		counter("flashd_store_backfill_drops_total", "Back-fills dropped because the queue was full.", snap.BackfillDrops)
		live := int64(0)
		for _, st := range s.dist.PeerHealth() {
			if st.Up {
				live++
			}
		}
		gauge("flashd_store_peers_live", "Ring members currently considered up (self included).", live)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	state := "ok"
	if s.Draining() {
		state = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": state})
}
