package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"net/http"
	"regexp"

	"flashsim/internal/machine"
	"flashsim/internal/param"
	"flashsim/internal/runner"
)

// maxStoreBodyBytes bounds /v1/store PUT bodies. Results are a few
// hundred KB at paper scale; far larger is a broken peer, not a run.
const maxStoreBodyBytes = 64 << 20

// storeKeyPattern is the accepted shape of a store key: the hex digest
// of a runner fingerprint. Anything else is rejected before it can
// reach a filesystem-backed backend as a path component.
var storeKeyPattern = regexp.MustCompile(`^[0-9a-f]{16,128}$`)

// StoredResult is the wire envelope of one memoized result on the
// replica store API (/v1/store/{fingerprint}). The raw result bytes
// travel with their own IEEE CRC-32 and the parameter-registry schema
// version, so a reader can reject truncation, corruption, and
// cross-build aliasing without trusting the transport: the fingerprint
// key space is already schema-versioned, but the envelope makes the
// check locally enforceable on every read and write.
type StoredResult struct {
	Schema int             `json:"schema"`
	CRC32  uint32          `json:"crc32"`
	Result json.RawMessage `json:"result"`
}

// EncodeStored wraps a result for the wire.
func EncodeStored(res machine.Result) (StoredResult, error) {
	data, err := json.Marshal(res)
	if err != nil {
		return StoredResult{}, err
	}
	return StoredResult{Schema: param.SchemaVersion, CRC32: crc32.ChecksumIEEE(data), Result: data}, nil
}

// Decode validates the envelope — schema match, CRC over the result
// bytes — and unpacks the result. Every failure is an error; a caller
// must treat it as a miss (recompute), never as data.
//
// The CRC is taken over the compact encoding of the result, so it
// survives whitespace re-formatting in transit (the server's JSON
// writer indents) while still catching truncation and content
// corruption.
func (s StoredResult) Decode() (machine.Result, error) {
	if s.Schema != param.SchemaVersion {
		return machine.Result{}, fmt.Errorf("stored result schema %d, this build speaks %d", s.Schema, param.SchemaVersion)
	}
	var compact bytes.Buffer
	if err := json.Compact(&compact, s.Result); err != nil {
		return machine.Result{}, fmt.Errorf("stored result body: %w", err)
	}
	if got := crc32.ChecksumIEEE(compact.Bytes()); got != s.CRC32 {
		return machine.Result{}, fmt.Errorf("stored result CRC mismatch (envelope %08x, body %08x)", s.CRC32, got)
	}
	var res machine.Result
	if err := json.Unmarshal(s.Result, &res); err != nil {
		return machine.Result{}, fmt.Errorf("stored result body: %w", err)
	}
	return res, nil
}

// HealthResponse is the /v1/health body: the liveness answer ring
// peers poll, plus (on a ring member) this replica's view of the
// membership.
type HealthResponse struct {
	// Status is "ok" or "draining". A draining replica still serves
	// its store — accepted results stay fetchable — so peers treat
	// both as up.
	Status string `json:"status"`
	// Self is this replica's ring name ("" when not in a ring).
	Self string `json:"self,omitempty"`
	// Peers is this replica's health view of the ring (absent when
	// not in a ring).
	Peers []PeerView `json:"peers,omitempty"`
}

// PeerView mirrors runner.PeerStatus on the wire.
type PeerView struct {
	Name string `json:"name"`
	Up   bool   `json:"up"`
	Err  string `json:"err,omitempty"`
}

// RingResponse is the /v1/ring body: membership, liveness, and — when
// the request carries ?key= — the owner list of that key.
type RingResponse struct {
	Self    string     `json:"self"`
	Members []PeerView `json:"members"`
	// Key and Owners echo the ?key= lookup (owners in preference
	// order, live members only).
	Key    string   `json:"key,omitempty"`
	Owners []string `json:"owners,omitempty"`
}

// handleStoreGet serves one memoized result from the replica's local
// backend. The local backend — not the distributed wrapper — is
// deliberate: a peer asking us is resolving ring ownership, and
// answering from our own store is what keeps a fetch from bouncing
// around the ring.
func (s *Server) handleStoreGet(w http.ResponseWriter, r *http.Request) {
	if s.memo == nil {
		writeError(w, http.StatusNotFound, "no memo store exposed on this server")
		return
	}
	key := r.PathValue("fp")
	if !storeKeyPattern.MatchString(key) {
		writeError(w, http.StatusBadRequest, "malformed store key %q", key)
		return
	}
	res, ok := s.memo.Get(key)
	if !ok {
		s.storeMisses.Add(1)
		writeError(w, http.StatusNotFound, "no result for %s", key)
		return
	}
	env, err := EncodeStored(res)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "encode result: %v", err)
		return
	}
	s.storeGets.Add(1)
	writeJSON(w, http.StatusOK, env)
}

// handleStorePut accepts a ring back-fill. The envelope is validated
// — schema and CRC — before anything reaches the backend, so a corrupt
// push can never poison the store.
func (s *Server) handleStorePut(w http.ResponseWriter, r *http.Request) {
	if s.memo == nil {
		writeError(w, http.StatusNotFound, "no memo store exposed on this server")
		return
	}
	key := r.PathValue("fp")
	if !storeKeyPattern.MatchString(key) {
		writeError(w, http.StatusBadRequest, "malformed store key %q", key)
		return
	}
	var env StoredResult
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxStoreBodyBytes))
	if err := dec.Decode(&env); err != nil {
		writeError(w, http.StatusBadRequest, "request body: %v", err)
		return
	}
	res, err := env.Decode()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.memo.Put(key, res)
	s.storePuts.Add(1)
	writeJSON(w, http.StatusOK, map[string]bool{"stored": true})
}

// handleHealth answers ring health probes (and humans).
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	resp := HealthResponse{Status: "ok"}
	if s.Draining() {
		resp.Status = "draining"
	}
	if s.dist != nil {
		resp.Self = s.dist.Self()
		resp.Peers = peerViews(s.dist)
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleRing renders the membership view; ?key= additionally resolves
// that fingerprint's owners, which is how the smoke tests (and
// operators) find out where a result lives.
func (s *Server) handleRing(w http.ResponseWriter, r *http.Request) {
	if s.dist == nil {
		writeError(w, http.StatusNotFound, "this server is not part of a ring (start flashd with -peers)")
		return
	}
	resp := RingResponse{Self: s.dist.Self(), Members: peerViews(s.dist)}
	if key := r.URL.Query().Get("key"); key != "" {
		resp.Key = key
		resp.Owners = s.dist.Owners(key)
	}
	writeJSON(w, http.StatusOK, resp)
}

// peerViews converts the dist store's health view for the wire.
func peerViews(d *runner.DistStore) []PeerView {
	sts := d.PeerHealth()
	out := make([]PeerView, len(sts))
	for i, st := range sts {
		out[i] = PeerView{Name: st.Name, Up: st.Up, Err: st.Err}
	}
	return out
}
