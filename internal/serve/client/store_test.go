package client

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"flashsim/internal/machine"
	"flashsim/internal/serve"
)

func TestStoreClientFetchMissAndHit(t *testing.T) {
	var stored *serve.StoredResult
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if stored == nil {
			w.WriteHeader(http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(stored)
	}))
	defer ts.Close()
	sc := NewStoreClient(ts.URL+"/", nil)
	if sc.Name() != ts.URL {
		t.Fatalf("Name = %q, want the trimmed base URL %q", sc.Name(), ts.URL)
	}

	// 404 is a definitive miss, not an error.
	if _, ok, err := sc.Fetch(context.Background(), "abc123"); ok || err != nil {
		t.Fatalf("miss = (ok=%v, err=%v)", ok, err)
	}

	env, err := serve.EncodeStored(machine.Result{Instructions: 5})
	if err != nil {
		t.Fatal(err)
	}
	stored = &env
	res, ok, err := sc.Fetch(context.Background(), "abc123")
	if err != nil || !ok || res.Instructions != 5 {
		t.Fatalf("hit = (%+v, %v, %v)", res, ok, err)
	}
}

func TestStoreClientFetchRejectsBadBodies(t *testing.T) {
	cases := map[string]func(w http.ResponseWriter){
		"not json": func(w http.ResponseWriter) {
			w.Write([]byte("hello"))
		},
		"bad CRC": func(w http.ResponseWriter) {
			env, _ := serve.EncodeStored(machine.Result{Instructions: 5})
			env.CRC32++
			json.NewEncoder(w).Encode(env)
		},
		"wrong schema": func(w http.ResponseWriter) {
			env, _ := serve.EncodeStored(machine.Result{Instructions: 5})
			env.Schema++
			json.NewEncoder(w).Encode(env)
		},
		"server error": func(w http.ResponseWriter) {
			w.WriteHeader(http.StatusInternalServerError)
			w.Write([]byte(`{"error":"boom"}`))
		},
	}
	for name, respond := range cases {
		t.Run(name, func(t *testing.T) {
			ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				respond(w)
			}))
			defer ts.Close()
			sc := NewStoreClient(ts.URL, nil)
			if res, ok, err := sc.Fetch(context.Background(), "abc123"); err == nil {
				t.Fatalf("bad body %s accepted: (%+v, %v)", name, res, ok)
			}
		})
	}
}

func TestStoreClientStoreSendsValidEnvelope(t *testing.T) {
	var got serve.StoredResult
	var method, path string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		method, path = r.Method, r.URL.Path
		if err := json.NewDecoder(r.Body).Decode(&got); err != nil {
			w.WriteHeader(http.StatusBadRequest)
			return
		}
		w.Write([]byte(`{"stored":true}`))
	}))
	defer ts.Close()
	sc := NewStoreClient(ts.URL, nil)
	if err := sc.Store(context.Background(), "abc123", machine.Result{Instructions: 9}); err != nil {
		t.Fatal(err)
	}
	if method != http.MethodPut || !strings.HasSuffix(path, "/v1/store/abc123") {
		t.Fatalf("sent %s %s", method, path)
	}
	res, err := got.Decode()
	if err != nil {
		t.Fatalf("pushed envelope does not validate: %v", err)
	}
	if res.Instructions != 9 {
		t.Fatalf("pushed Instructions = %d", res.Instructions)
	}
}

func TestStoreClientStoreSurfacesRejection(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusBadRequest)
		w.Write([]byte(`{"error":"stored result CRC mismatch"}`))
	}))
	defer ts.Close()
	sc := NewStoreClient(ts.URL, nil)
	err := sc.Store(context.Background(), "abc123", machine.Result{})
	if err == nil || !strings.Contains(err.Error(), "CRC mismatch") {
		t.Fatalf("rejected PUT error = %v", err)
	}
}

func TestStoreClientHealth(t *testing.T) {
	status := http.StatusOK
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/health" {
			w.WriteHeader(http.StatusNotFound)
			return
		}
		w.WriteHeader(status)
	}))
	defer ts.Close()
	sc := NewStoreClient(ts.URL, nil)
	if err := sc.Health(context.Background()); err != nil {
		t.Fatalf("healthy probe = %v", err)
	}
	status = http.StatusInternalServerError
	if err := sc.Health(context.Background()); err == nil {
		t.Fatal("unhealthy probe reported ok")
	}
	ts.Close()
	if err := sc.Health(context.Background()); err == nil {
		t.Fatal("dead server probe reported ok")
	}
}

func TestStoreClientContextCancellation(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done()
	}))
	defer ts.Close()
	sc := NewStoreClient(ts.URL, nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := sc.Fetch(ctx, "abc123"); err == nil {
		t.Fatal("cancelled fetch returned no error")
	}
}
