// Package client is the typed Go client for a flashd daemon: the
// request/response structs are serve's own, so a program using the
// client speaks exactly the wire contract the server tests pin.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"flashsim/internal/serve"
)

// Client talks to one flashd base URL. The zero HTTPClient means
// http.DefaultClient; SSE watches need a client without a global
// timeout, which the default satisfies.
type Client struct {
	base string
	hc   *http.Client
}

// New returns a client for baseURL (e.g. "http://localhost:8023"). hc
// may be nil for http.DefaultClient.
func New(baseURL string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(baseURL, "/"), hc: hc}
}

// APIError is a non-2xx response: the decoded error body plus enough
// metadata to implement backpressure (respect RetryAfter on 429).
type APIError struct {
	Status     int
	Message    string
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	if e.RetryAfter > 0 {
		return fmt.Sprintf("server: %s (HTTP %d, retry after %s)", e.Message, e.Status, e.RetryAfter)
	}
	return fmt.Sprintf("server: %s (HTTP %d)", e.Message, e.Status)
}

// IsBusy reports whether the error is a queue-full rejection worth
// retrying after RetryAfter.
func (e *APIError) IsBusy() bool { return e.Status == http.StatusTooManyRequests }

// do issues one request and decodes the JSON response into out.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("encode request: %w", err)
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return apiError(resp)
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("decode %s %s response: %w", method, path, err)
	}
	return nil
}

// apiError converts a non-2xx response, draining the body.
func apiError(resp *http.Response) error {
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	e := &APIError{Status: resp.StatusCode, Message: strings.TrimSpace(string(data))}
	var body serve.ErrorResponse
	if json.Unmarshal(data, &body) == nil && body.Error != "" {
		e.Message = body.Error
	}
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil {
		e.RetryAfter = time.Duration(secs) * time.Second
	}
	return e
}

// Run submits a simulation run and blocks until its result (?wait=true).
func (c *Client) Run(ctx context.Context, req serve.RunRequest) (serve.RunResponse, error) {
	var out serve.RunResponse
	err := c.do(ctx, http.MethodPost, "/v1/runs?wait=true", req, &out)
	return out, err
}

// SubmitRun enqueues a run without waiting and returns its status.
func (c *Client) SubmitRun(ctx context.Context, req serve.RunRequest) (serve.JobStatus, error) {
	var out serve.JobStatus
	err := c.do(ctx, http.MethodPost, "/v1/runs", req, &out)
	return out, err
}

// Calibrate submits a calibration and blocks until its report.
func (c *Client) Calibrate(ctx context.Context, req serve.CalibrationRequest) (serve.CalibrationResponse, error) {
	var out serve.CalibrationResponse
	err := c.do(ctx, http.MethodPost, "/v1/calibrations?wait=true", req, &out)
	return out, err
}

// Figure submits a paper figure and blocks until its rendering.
func (c *Client) Figure(ctx context.Context, req serve.FigureRequest) (serve.FigureResponse, error) {
	var out serve.FigureResponse
	err := c.do(ctx, http.MethodPost, "/v1/figures?wait=true", req, &out)
	return out, err
}

// SubmitFigure enqueues a figure without waiting.
func (c *Client) SubmitFigure(ctx context.Context, req serve.FigureRequest) (serve.JobStatus, error) {
	var out serve.JobStatus
	err := c.do(ctx, http.MethodPost, "/v1/figures", req, &out)
	return out, err
}

// Job returns one job's status.
func (c *Client) Job(ctx context.Context, id string) (serve.JobStatus, error) {
	var out serve.JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &out)
	return out, err
}

// Jobs lists every job the server remembers, in submission order.
func (c *Client) Jobs(ctx context.Context) ([]serve.JobStatus, error) {
	var out struct {
		Jobs []serve.JobStatus `json:"jobs"`
	}
	err := c.do(ctx, http.MethodGet, "/v1/jobs", nil, &out)
	return out.Jobs, err
}

// RunResult fetches a finished run job's payload (409 while running).
func (c *Client) RunResult(ctx context.Context, id string) (serve.RunResponse, error) {
	var out serve.RunResponse
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/result", nil, &out)
	return out, err
}

// Cancel cancels a job and returns its status.
func (c *Client) Cancel(ctx context.Context, id string) (serve.JobStatus, error) {
	var out serve.JobStatus
	err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &out)
	return out, err
}

// Watch follows a job's SSE stream, invoking fn (if non-nil) on every
// status event, and returns the terminal status. It returns when the
// job finishes, the stream drops, or ctx ends.
func (c *Client) Watch(ctx context.Context, id string, fn func(serve.JobStatus)) (serve.JobStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return serve.JobStatus{}, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return serve.JobStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return serve.JobStatus{}, apiError(resp)
	}
	var last serve.JobStatus
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if data, ok := strings.CutPrefix(line, "data: "); ok {
			if err := json.Unmarshal([]byte(data), &last); err != nil {
				return last, fmt.Errorf("bad event payload %q: %w", data, err)
			}
			if fn != nil {
				fn(last)
			}
			if last.State.Terminal() {
				return last, nil
			}
		}
	}
	if err := sc.Err(); err != nil {
		return last, err
	}
	return last, fmt.Errorf("event stream for %s ended before a terminal state", id)
}

// Metrics fetches the raw Prometheus exposition text.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", apiError(resp)
	}
	data, err := io.ReadAll(resp.Body)
	return string(data), err
}

// Health returns the server's /healthz status string ("ok" or
// "draining").
func (c *Client) Health(ctx context.Context) (string, error) {
	var out map[string]string
	if err := c.do(ctx, http.MethodGet, "/healthz", nil, &out); err != nil {
		return "", err
	}
	return out["status"], nil
}
