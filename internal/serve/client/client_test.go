package client_test

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"flashsim/internal/runner"
	"flashsim/internal/serve"
	"flashsim/internal/serve/client"
)

func newPair(t *testing.T, opts serve.Options) (*serve.Server, *client.Client) {
	t.Helper()
	if opts.Pool == nil {
		opts.Pool = runner.New(2, nil)
	}
	s := serve.New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, client.New(ts.URL, nil)
}

func restartReq(lines int) serve.RunRequest {
	return serve.RunRequest{
		ConfigSpec: serve.ConfigSpec{Base: "simos-mipsy"},
		Workload:   serve.Workload("snbench.restart", map[string]any{"lines": lines}),
	}
}

// TestClientRunAndWatch drives the full client surface against a live
// server: synchronous run, async submit + SSE watch, job listing,
// result fetch, health, and metrics.
func TestClientRunAndWatch(t *testing.T) {
	_, c := newPair(t, serve.Options{})
	ctx := t.Context()

	run, err := c.Run(ctx, restartReq(32))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if run.Job.State != serve.StateDone || run.Result.Instructions == 0 {
		t.Fatalf("Run returned %+v", run.Job)
	}

	st, err := c.SubmitRun(ctx, restartReq(64))
	if err != nil {
		t.Fatalf("SubmitRun: %v", err)
	}
	var seen int
	final, err := c.Watch(ctx, st.ID, func(serve.JobStatus) { seen++ })
	if err != nil {
		t.Fatalf("Watch: %v", err)
	}
	if final.State != serve.StateDone || seen == 0 {
		t.Errorf("Watch ended with state %s after %d events", final.State, seen)
	}

	res, err := c.RunResult(ctx, st.ID)
	if err != nil || res.Result.Instructions == 0 {
		t.Errorf("RunResult: %+v, %v", res.Job, err)
	}
	jobs, err := c.Jobs(ctx)
	if err != nil || len(jobs) != 2 {
		t.Errorf("Jobs: %d jobs, %v", len(jobs), err)
	}
	if h, err := c.Health(ctx); err != nil || h != "ok" {
		t.Errorf("Health: %q, %v", h, err)
	}
	metrics, err := c.Metrics(ctx)
	if err != nil || metrics == "" {
		t.Errorf("Metrics: %d bytes, %v", len(metrics), err)
	}
}

// TestClientSurfacesBackpressure: a 429 rejection (the wire shape the
// serve package's queue-full tests pin) decodes into a typed APIError
// carrying the Retry-After hint. A stub server makes the rejection
// deterministic; the real server's side of the contract is
// TestServerQueueFullRejectsWith429.
func TestClientSurfacesBackpressure(t *testing.T) {
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "3")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusTooManyRequests)
		json.NewEncoder(w).Encode(serve.ErrorResponse{Error: "job queue full (1 queued); retry later", RetryAfterS: 3})
	}))
	defer stub.Close()

	_, err := client.New(stub.URL, nil).SubmitRun(t.Context(), restartReq(8))
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("submit error not an APIError: %v", err)
	}
	if !apiErr.IsBusy() || apiErr.RetryAfter != 3*time.Second {
		t.Errorf("backpressure error = %+v, want busy with 3s retry", apiErr)
	}
	if !strings.Contains(apiErr.Message, "queue full") {
		t.Errorf("error body not decoded: %q", apiErr.Message)
	}
}
