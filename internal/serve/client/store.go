package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"flashsim/internal/machine"
	"flashsim/internal/runner"
	"flashsim/internal/serve"
)

var _ runner.PeerStore = (*StoreClient)(nil)

// StoreClient is the HTTP runner.PeerStore: one ring peer's memo store
// reached through flashd's /v1/store/{fingerprint} GET/PUT and
// /v1/health endpoints. Its Name is the peer's base URL, which is also
// the ring member name flashd registers it under — one string, no
// separate identity to keep in sync.
//
// Every fetched body passes the StoredResult envelope checks (schema
// and CRC) before it is returned, so a truncated or corrupted response
// surfaces as an error — the distribution layer recomputes — never as
// a wrong result.
type StoreClient struct {
	base string
	hc   *http.Client
}

// NewStoreClient returns a peer store for baseURL (e.g.
// "http://127.0.0.1:8023"). hc may be nil for http.DefaultClient; the
// distribution layer bounds each call with its own context deadlines,
// so the client needs no global timeout.
func NewStoreClient(baseURL string, hc *http.Client) *StoreClient {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &StoreClient{base: strings.TrimRight(baseURL, "/"), hc: hc}
}

// Name returns the peer's ring member name (its base URL).
func (s *StoreClient) Name() string { return s.base }

// Fetch retrieves the peer's memoized result for key. A 404 is a
// definitive miss (ok=false, nil error); any other failure — transport,
// status, or an envelope that does not validate — is an error.
func (s *StoreClient) Fetch(ctx context.Context, key string) (machine.Result, bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, s.base+"/v1/store/"+key, nil)
	if err != nil {
		return machine.Result{}, false, err
	}
	resp, err := s.hc.Do(req)
	if err != nil {
		return machine.Result{}, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		io.Copy(io.Discard, resp.Body)
		return machine.Result{}, false, nil
	}
	if resp.StatusCode != http.StatusOK {
		return machine.Result{}, false, apiError(resp)
	}
	var env serve.StoredResult
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		return machine.Result{}, false, fmt.Errorf("store fetch %s from %s: %w", key, s.base, err)
	}
	res, err := env.Decode()
	if err != nil {
		return machine.Result{}, false, fmt.Errorf("store fetch %s from %s: %w", key, s.base, err)
	}
	return res, true, nil
}

// Store pushes a result to the peer (a ring back-fill).
func (s *StoreClient) Store(ctx context.Context, key string, res machine.Result) error {
	env, err := serve.EncodeStored(res)
	if err != nil {
		return err
	}
	data, err := json.Marshal(env)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, s.base+"/v1/store/"+key, bytes.NewReader(data))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := s.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiError(resp)
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}

// Health probes the peer's /v1/health. A draining replica is still
// healthy for the ring: it keeps serving its store, it just refuses new
// jobs — and the store API is all a peer uses.
func (s *StoreClient) Health(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, s.base+"/v1/health", nil)
	if err != nil {
		return err
	}
	resp, err := s.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("health probe %s: HTTP %d", s.base, resp.StatusCode)
	}
	return nil
}
