package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"flashsim/internal/core"
	"flashsim/internal/harness"
	"flashsim/internal/machine"
	"flashsim/internal/obs"
	"flashsim/internal/param"
	"flashsim/internal/runner"
	"flashsim/internal/trace"
)

// Options configures a Server.
type Options struct {
	// Pool executes every job; required. Attach a Store for memoized
	// results across requests and restarts.
	Pool *runner.Pool
	// QueueDepth bounds the number of accepted-but-unstarted jobs
	// (default 64). The running jobs on top of this are bounded by
	// Workers, so accepted work is at most QueueDepth+Workers jobs.
	QueueDepth int
	// Workers is how many jobs execute concurrently (default
	// Pool.Workers()). Simulation parallelism inside a figure or
	// calibration job still belongs to the pool.
	Workers int
	// RetryAfter is the backpressure hint attached to 429 responses
	// (default 1s).
	RetryAfter time.Duration
	// Traces, when non-nil, enables the capture and replay endpoints:
	// captures store containers here, replays load them (flashd
	// -trace-dir). Without it those submissions are rejected with 400.
	Traces *runner.TraceStore
	// Memo, when non-nil, exposes this replica's LOCAL memo backend on
	// the peer store API (/v1/store/{fingerprint} GET/PUT). It must be
	// the backend underneath any DistStore — peers resolve ring
	// ownership by asking us, so answering from the distributed wrapper
	// would bounce their fetch back into the ring.
	Memo runner.Backend
	// Dist, when non-nil, is the replica's distribution layer; it backs
	// /v1/ring, enriches /v1/health with the membership view, and feeds
	// the flashd_store_* series on /metrics. The server does not own it
	// (no Close on Drain) — lifecycle stays with the caller, like Pool.
	Dist *runner.DistStore
}

// Server is the HTTP front end: a bounded job queue feeding the runner
// pool, with fingerprint dedup, per-job cancellation, SSE status
// streaming, and Prometheus metrics. Create with New, expose with
// Handler, stop with Drain (graceful) or Close (abort).
type Server struct {
	pool       *runner.Pool
	collector  *obs.Collector
	flight     *runner.Flight
	queueDepth int
	workers    int
	retryAfter time.Duration
	mux        *http.ServeMux

	baseCtx    context.Context
	baseCancel context.CancelFunc
	queue      chan *jobRecord
	workersWG  sync.WaitGroup

	// mu guards admission state: draining, the job registry, the
	// dedup index, and the enqueue itself (so Drain can close the
	// queue without racing a submit).
	mu       sync.Mutex
	draining bool
	jobs     map[string]*jobRecord
	order    []string
	fpIndex  map[string]*jobRecord
	nextID   int64

	accepted  atomic.Int64
	rejected  atomic.Int64 // queue-full 429s
	refused   atomic.Int64 // draining 503s
	coalesced atomic.Int64 // admission-level dedup joins

	// execGate, when non-nil, is received from at the top of every job
	// execution. Tests set it (before submitting anything) to hold
	// workers at a known point and then close it to release them; it is
	// nil in production.
	execGate chan struct{}

	// sessMu serializes figure jobs: a harness.Session caches
	// calibrations in a plain map and is not safe for concurrent use.
	// The runs inside a figure still fan out across the pool.
	sessMu   sync.Mutex
	sessions map[harness.Scale]*harness.Session

	// traces is the content-addressed container store backing capture
	// and replay jobs (nil = endpoints disabled). images memoizes
	// prepared replay images by trace fingerprint — decode once, replay
	// many across requests; entries are bounded by the number of
	// distinct stored traces.
	traces *runner.TraceStore
	imgMu  sync.Mutex
	images map[string]*machine.ReplayImage

	// memo and dist expose the serving-tier store (see Options.Memo and
	// Options.Dist); both may be nil on a plain single-replica server.
	memo runner.Backend
	dist *runner.DistStore

	storeGets   atomic.Int64 // /v1/store GET hits served
	storeMisses atomic.Int64 // /v1/store GET misses (404)
	storePuts   atomic.Int64 // /v1/store PUT back-fills accepted
}

// New returns a running server (workers started, ready for Handler).
func New(opts Options) *Server {
	if opts.Pool == nil {
		panic("serve: Options.Pool is required")
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 64
	}
	if opts.Workers <= 0 {
		opts.Workers = opts.Pool.Workers()
	}
	if opts.RetryAfter <= 0 {
		opts.RetryAfter = time.Second
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		pool:       opts.Pool,
		queueDepth: opts.QueueDepth,
		workers:    opts.Workers,
		retryAfter: opts.RetryAfter,
		baseCtx:    ctx,
		baseCancel: cancel,
		queue:      make(chan *jobRecord, opts.QueueDepth),
		jobs:       make(map[string]*jobRecord),
		fpIndex:    make(map[string]*jobRecord),
		sessions:   make(map[harness.Scale]*harness.Session),
		traces:     opts.Traces,
		images:     make(map[string]*machine.ReplayImage),
		memo:       opts.Memo,
		dist:       opts.Dist,
	}
	// Every outcome the pool produces is recorded, so /metrics always
	// has data; a collector attached by the caller (e.g. -metrics-out)
	// is reused so the scrape and the file report agree.
	if opts.Pool.Metrics() == nil {
		opts.Pool.SetMetrics(obs.NewCollector())
	}
	s.collector = opts.Pool.Metrics()
	s.flight = runner.NewFlight(opts.Pool, ctx)
	s.mux = http.NewServeMux()
	s.routes()
	for i := 0; i < s.workers; i++ {
		s.workersWG.Add(1)
		go s.worker()
	}
	return s
}

// Handler returns the HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Pool returns the server's pool.
func (s *Server) Pool() *runner.Pool { return s.pool }

// Collector returns the metrics collector the server records into.
func (s *Server) Collector() *obs.Collector { return s.collector }

// Draining reports whether the server has stopped accepting jobs.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain stops admissions (new submissions get 503) and waits for every
// accepted job to reach a terminal state. If ctx expires first, the
// remaining jobs are cancelled (queued ones terminate as canceled;
// running simulations finish their current run) and Drain waits for
// the workers before returning ctx's error. Status and result
// endpoints keep serving throughout, so clients can still collect what
// they were promised; shutting the listener down afterwards is the
// caller's job (flashd: Drain, then http.Server.Shutdown).
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.workersWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.baseCancel()
		<-done
		return fmt.Errorf("drain aborted: %w", ctx.Err())
	}
}

// Close aborts everything: admissions stop, queued and in-flight jobs
// are cancelled. For tests and error paths; production shutdown is
// Drain.
func (s *Server) Close() {
	s.baseCancel()
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	_ = s.Drain(ctx)
}

// worker executes queued jobs until the queue closes.
func (s *Server) worker() {
	defer s.workersWG.Done()
	for rec := range s.queue {
		s.execute(rec)
	}
}

// execute runs one job to its terminal state.
func (s *Server) execute(rec *jobRecord) {
	defer s.unindex(rec)
	if s.execGate != nil {
		<-s.execGate
	}
	if err := rec.ctx.Err(); err != nil {
		rec.finish(StateCanceled, err.Error(), false, nil)
		return
	}
	rec.start()
	switch rec.kind {
	case KindRun:
		out, _ := s.flight.Run(rec.ctx, rec.job)
		if out.Err != nil {
			rec.finish(failState(out.Err), out.Err.Error(), false, nil)
			return
		}
		st := rec.Status()
		st.State = StateDone
		st.Cached = out.Cached
		rec.finish(StateDone, "", out.Cached, RunResponse{Job: st, Result: out.Result})
	case KindCalibration:
		cal, err := s.calibrate(rec.calCfg)
		if err != nil {
			rec.finish(failState(err), err.Error(), false, nil)
			return
		}
		st := rec.Status()
		st.State = StateDone
		rec.finish(StateDone, "", false, CalibrationResponse{
			Job: st, Deltas: cal.Deltas, Report: cal.Report, Diff: cal.RenderDiff(),
		})
	case KindFigure:
		text, data, err := s.runFigure(rec.figure)
		if err != nil {
			rec.finish(failState(err), err.Error(), false, nil)
			return
		}
		st := rec.Status()
		st.State = StateDone
		rec.finish(StateDone, "", false, FigureResponse{Job: st, Figure: rec.figure.Figure, Text: text, Data: data})
	case KindCapture:
		resp, cached, err := s.runCapture(rec.ctx, rec.capture)
		if err != nil {
			rec.finish(failState(err), err.Error(), false, nil)
			return
		}
		st := rec.Status()
		st.State = StateDone
		st.Cached = cached
		resp.Job = st
		rec.finish(StateDone, "", cached, resp)
	case KindReplay:
		resp, cached, err := s.runReplay(rec.ctx, rec.replay)
		if err != nil {
			rec.finish(failState(err), err.Error(), false, nil)
			return
		}
		st := rec.Status()
		st.State = StateDone
		st.Cached = cached
		resp.Job = st
		rec.finish(StateDone, "", cached, resp)
	default:
		rec.finish(StateFailed, fmt.Sprintf("unknown job kind %q", rec.kind), false, nil)
	}
}

// failState maps an execution error to canceled (context death) or
// failed (everything else).
func failState(err error) JobState {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return StateCanceled
	}
	return StateFailed
}

// calibrate closes the loop for one simulator configuration.
func (s *Server) calibrate(cfg machine.Config) (core.Calibration, error) {
	ref := core.NewReference(4, true)
	ref.Pool = s.pool
	cal := core.NewCalibrator(ref)
	cal.Pool = s.pool
	return cal.Calibrate(cfg)
}

// runFigure executes one paper figure through a scale-shared session.
func (s *Server) runFigure(req FigureRequest) (string, any, error) {
	scale := harness.ScaleFull
	if req.Quick {
		scale = harness.ScaleQuick
	}
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	sess, ok := s.sessions[scale]
	if !ok {
		sess = harness.NewSessionWithPool(scale, s.pool)
		s.sessions[scale] = sess
	}
	switch req.Figure {
	case 1:
		res, text, err := sess.Figure1()
		return text, res, err
	case 2:
		res, text, err := sess.Figure2()
		return text, res, err
	case 3:
		res, text, err := sess.Figure3()
		return text, res, err
	case 4:
		res, text, err := sess.Figure4()
		return text, res, err
	case 5:
		curves, text, err := sess.Figure5()
		return text, curves, err
	case 6:
		curves, text, err := sess.Figure6()
		return text, curves, err
	case 7:
		curves, text, err := sess.Figure7()
		return text, curves, err
	default:
		return "", nil, fmt.Errorf("unknown figure %d (want 1-7)", req.Figure)
	}
}

// runCapture executes one capture job: run the workload
// execution-driven with a tap into the trace store. When the container
// already exists the simulation still runs (through the flight, so it
// memoizes and coalesces like any run) but no second container is
// written — store once, replay many.
func (s *Server) runCapture(ctx context.Context, req CaptureRequest) (CaptureResponse, bool, error) {
	if s.traces == nil {
		return CaptureResponse{}, false, fmt.Errorf("no trace store configured (start flashd with -trace-dir)")
	}
	cfg, err := req.Config()
	if err != nil {
		return CaptureResponse{}, false, fmt.Errorf("config: %w", err)
	}
	prog, err := req.Workload.Program(cfg.Procs)
	if err != nil {
		return CaptureResponse{}, false, fmt.Errorf("workload: %w", err)
	}
	fp := runner.TraceFingerprint(cfg, prog)
	if !s.traces.Has(fp) {
		source, err := json.Marshal(req.Workload)
		if err != nil {
			return CaptureResponse{}, false, err
		}
		var res machine.Result
		stored, err := s.traces.Save(fp, func(w io.Writer) error {
			tw, err := trace.NewWriter(w, runner.TraceMeta(cfg, prog, source))
			if err != nil {
				return err
			}
			res, err = machine.RunCapture(cfg, prog, tw)
			return err
		})
		if err != nil {
			return CaptureResponse{}, false, err
		}
		if stored {
			return CaptureResponse{Result: res, Trace: fp, Stored: true}, false, nil
		}
	}
	// Already captured: serve the result like a plain run (memoized when
	// the pool has a store) and point at the existing container.
	out, _ := s.flight.Run(ctx, runner.Job{Config: cfg, Prog: prog})
	if out.Err != nil {
		return CaptureResponse{}, false, out.Err
	}
	return CaptureResponse{Result: out.Result, Trace: fp, Stored: false}, out.Cached, nil
}

// runReplay executes one replay job: load (or reuse) the prepared image
// for the requested trace and run it trace-driven through the flight,
// memoizing under ReplayFingerprint.
func (s *Server) runReplay(ctx context.Context, req ReplayRequest) (ReplayResponse, bool, error) {
	if s.traces == nil {
		return ReplayResponse{}, false, fmt.Errorf("no trace store configured (start flashd with -trace-dir)")
	}
	img, err := s.replayImage(req.Trace)
	if err != nil {
		return ReplayResponse{}, false, err
	}
	if req.Procs == 0 {
		// The machine must match the trace's thread count; default to it
		// rather than ConfigSpec's one-processor default.
		req.Procs = img.Threads()
	}
	cfg, err := req.Config()
	if err != nil {
		return ReplayResponse{}, false, fmt.Errorf("config: %w", err)
	}
	out, _ := s.flight.Run(ctx, runner.Job{Config: cfg, Replay: img})
	if out.Err != nil {
		return ReplayResponse{}, false, out.Err
	}
	return ReplayResponse{Result: out.Result, Trace: req.Trace, Workload: img.Workload()}, out.Cached, nil
}

// replayImage returns the prepared replay image for a stored trace,
// decoding it at most once per server lifetime (the cache grows at most
// one entry per distinct stored container).
func (s *Server) replayImage(fp string) (*machine.ReplayImage, error) {
	s.imgMu.Lock()
	defer s.imgMu.Unlock()
	if img, ok := s.images[fp]; ok {
		return img, nil
	}
	if !s.traces.Has(fp) {
		return nil, fmt.Errorf("no trace %q in the store (capture it first)", fp)
	}
	tr, err := s.traces.Load(fp)
	if err != nil {
		return nil, err
	}
	img, err := machine.PrepareReplay(tr)
	if err != nil {
		return nil, err
	}
	s.images[fp] = img
	return img, nil
}

// admitError classifies a rejected submission.
type admitError int

const (
	admitOK admitError = iota
	admitDraining
	admitFull
)

// admit performs admission control for one submission: dedup against
// active identical jobs, then a non-blocking enqueue into the bounded
// queue. Returns the (possibly shared) record, whether this submission
// coalesced onto an existing job, and the rejection class.
func (s *Server) admit(kind JobKind, fp string, timeoutMS int64, fill func(*jobRecord)) (*jobRecord, bool, admitError) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		s.refused.Add(1)
		return nil, false, admitDraining
	}
	if rec, ok := s.fpIndex[fp]; ok {
		s.coalesced.Add(1)
		return rec, true, admitOK
	}
	ctx, cancel := context.WithCancel(s.baseCtx)
	if timeoutMS > 0 {
		ctx, cancel = context.WithTimeout(s.baseCtx, time.Duration(timeoutMS)*time.Millisecond)
	}
	s.nextID++
	rec := newJobRecord(fmt.Sprintf("j%06d", s.nextID), kind, fp, ctx, cancel)
	fill(rec)
	select {
	case s.queue <- rec:
	default:
		cancel()
		s.nextID--
		s.rejected.Add(1)
		return nil, false, admitFull
	}
	s.jobs[rec.id] = rec
	s.order = append(s.order, rec.id)
	s.fpIndex[fp] = rec
	s.accepted.Add(1)
	return rec, false, admitOK
}

// unindex drops a finished job from the dedup index (the registry keeps
// it for status/result queries).
func (s *Server) unindex(rec *jobRecord) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fpIndex[rec.fp] == rec {
		delete(s.fpIndex, rec.fp)
	}
}

// lookup finds a job by id.
func (s *Server) lookup(id string) (*jobRecord, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.jobs[id]
	return rec, ok
}

// configFingerprint keys non-run jobs: a kind prefix over the config's
// canonical parameter snapshot — the same schema-versioned encoding
// runner.Fingerprint hashes, so dedup stays exactly as sound as the
// memo store's key.
func configFingerprint(kind JobKind, cfg machine.Config) string {
	h := sha256.Sum256(param.Canonical(cfg))
	return string(kind) + ":" + hex.EncodeToString(h[:])
}
