package serve

import (
	"encoding/json"
	"net/http"
	"testing"

	"flashsim/internal/machine"
)

// TestConfigSpecSampling pins the spec → schedule materialization:
// nil means unsampled, {} means the default schedule, and partial
// specs override only the named counts.
func TestConfigSpecSampling(t *testing.T) {
	base := ConfigSpec{Base: "simos-mipsy", Procs: 2}
	cfg, err := base.Config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Sampling.Enabled {
		t.Error("spec without sampling enabled a schedule")
	}

	base.Sampling = &SamplingSpec{}
	cfg, err = base.Config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Sampling != machine.DefaultSampling() {
		t.Errorf("empty sampling spec = %+v, want the default schedule", cfg.Sampling)
	}

	base.Sampling = &SamplingSpec{PeriodInstrs: 50000, ColdState: true}
	cfg, err = base.Config()
	if err != nil {
		t.Fatal(err)
	}
	want := machine.DefaultSampling()
	want.Period = 50000
	want.ColdState = true
	if cfg.Sampling != want {
		t.Errorf("partial sampling spec = %+v, want %+v", cfg.Sampling, want)
	}
}

// TestServerSampledRun submits a sampled run and checks the result
// carries the sampling metadata — and memoizes separately from the
// full-detail run of the same workload.
func TestServerSampledRun(t *testing.T) {
	_, ts, gate := newTestServer(t, Options{})
	close(gate)

	sampledBody := []byte(`{"base":"simos-mipsy","procs":1,
		"sampling":{"period_instrs":5000,"window_instrs":500,"warmup_instrs":100},
		"workload":{"name":"snbench.restart","lines":64}}`)
	resp, data := postJSON(t, ts.URL+"/v1/runs?wait=true", sampledBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sampled submit: status %d, body %s", resp.StatusCode, data)
	}
	var rr RunResponse
	if err := json.Unmarshal(data, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Job.State != StateDone {
		t.Fatalf("job state = %s, want done", rr.Job.State)
	}
	if !rr.Result.Sampled {
		t.Fatalf("sampled run result not marked Sampled: %+v", rr.Result.Sampling)
	}
	if rr.Result.Sampling.Windows == 0 || rr.Result.Sampling.DetailedInstrs == 0 {
		t.Errorf("sampling accounting empty: %+v", rr.Result.Sampling)
	}

	fullBody := []byte(`{"base":"simos-mipsy","procs":1,"workload":{"name":"snbench.restart","lines":64}}`)
	resp, data = postJSON(t, ts.URL+"/v1/runs?wait=true", fullBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("full submit: status %d, body %s", resp.StatusCode, data)
	}
	var full RunResponse
	if err := json.Unmarshal(data, &full); err != nil {
		t.Fatal(err)
	}
	if full.Job.Cached || full.Result.Sampled {
		t.Errorf("full-detail run aliased the sampled one: cached=%v sampled=%v",
			full.Job.Cached, full.Result.Sampled)
	}
}
