package cache

import (
	"testing"

	"flashsim/internal/sim"
)

func TestWriteBufferAbsorbsUpToCapacity(t *testing.T) {
	wb := NewWriteBuffer(4)
	for i := 0; i < 4; i++ {
		proceed := wb.Push(sim.Ticks(i), 1000)
		if proceed != sim.Ticks(i) {
			t.Fatalf("store %d stalled with free slots: %d", i, proceed)
		}
	}
	// Fifth store must wait for the oldest drain.
	if proceed := wb.Push(10, 2000); proceed != 1000 {
		t.Fatalf("full buffer proceed = %d, want 1000", proceed)
	}
	if stalls, stallT := wb.Stalls(); stalls != 1 || stallT != 990 {
		t.Fatalf("stalls=%d stallT=%d", stalls, stallT)
	}
}

func TestWriteBufferExpiry(t *testing.T) {
	wb := NewWriteBuffer(2)
	wb.Push(0, 100)
	wb.Push(0, 100)
	// By t=200 both drained; new stores must not stall.
	if proceed := wb.Push(200, 300); proceed != 200 {
		t.Fatalf("drained buffer stalled: %d", proceed)
	}
	if wb.Occupied(200) != 1 {
		t.Fatalf("occupied %d", wb.Occupied(200))
	}
}

func TestWriteBufferDrainBy(t *testing.T) {
	wb := NewWriteBuffer(4)
	wb.Push(0, 500)
	wb.Push(0, 300)
	if got := wb.DrainBy(100); got != 500 {
		t.Fatalf("drain by = %d, want 500", got)
	}
	// Buffer empty afterwards.
	if got := wb.DrainBy(600); got != 600 {
		t.Fatalf("empty drain = %d", got)
	}
}

func TestWriteBufferOutOfOrderCompletions(t *testing.T) {
	wb := NewWriteBuffer(2)
	wb.Push(0, 900) // slow store
	wb.Push(0, 100) // fast store
	// Third store: one slot frees at 100 (the faster completion).
	if proceed := wb.Push(0, 500); proceed != 100 {
		t.Fatalf("proceed = %d, want 100 (earliest drain)", proceed)
	}
}

func TestMSHRMerge(t *testing.T) {
	m := NewMSHRs(4)
	m.Complete(0x100, 500)
	if done, ok := m.Lookup(0x100, 10); !ok || done != 500 {
		t.Fatalf("merge lookup: %d %v", done, ok)
	}
	if m.Merges() != 1 {
		t.Fatal("merge not counted")
	}
	if _, ok := m.Lookup(0x200, 10); ok {
		t.Fatal("lookup of absent line merged")
	}
}

func TestMSHRCapacityStall(t *testing.T) {
	m := NewMSHRs(2)
	m.Reserve(0x100, 0)
	m.Complete(0x100, 300)
	m.Reserve(0x200, 0)
	m.Complete(0x200, 500)
	// Third miss at t=10: both registers busy; earliest completes 300.
	if issue := m.Reserve(0x300, 10); issue != 300 {
		t.Fatalf("issue = %d, want 300", issue)
	}
	if stalls, _ := m.Stalls(); stalls != 1 {
		t.Fatalf("stalls %d", stalls)
	}
}

func TestMSHRExpiry(t *testing.T) {
	m := NewMSHRs(1)
	m.Reserve(0x100, 0)
	m.Complete(0x100, 100)
	// At t=200 the register is free.
	if issue := m.Reserve(0x200, 200); issue != 200 {
		t.Fatalf("issue = %d", issue)
	}
	if m.Outstanding(50) > 1 {
		t.Fatal("outstanding bound")
	}
}

func TestL2InterfaceDisabled(t *testing.T) {
	l := &L2Interface{Enabled: false, TransferTicks: 100}
	if l.AcquireForRefill(50) != 50 || l.AcquireForTagCheck(50) != 50 {
		t.Fatal("disabled interface must be free")
	}
}

func TestL2InterfaceTransfersSerialize(t *testing.T) {
	l := &L2Interface{Enabled: true, TransferTicks: 100}
	s1 := l.AcquireForRefill(0)
	s2 := l.AcquireForRefill(0)
	if s1 != 0 || s2 != 100 {
		t.Fatalf("transfer starts %d %d", s1, s2)
	}
}

func TestL2InterfaceTagCheckWaitsDuringTransfer(t *testing.T) {
	l := &L2Interface{Enabled: true, TransferTicks: 100}
	l.AcquireForRefill(50) // busy [50,150)
	if got := l.AcquireForTagCheck(75); got != 150 {
		t.Fatalf("tag check during transfer = %d, want 150", got)
	}
	// Before the transfer starts the interface is free — future
	// reservations must not block the past.
	if got := l.AcquireForTagCheck(10); got != 10 {
		t.Fatalf("tag check before transfer = %d, want 10", got)
	}
	// And after it completes.
	if got := l.AcquireForTagCheck(200); got != 200 {
		t.Fatalf("tag check after transfer = %d", got)
	}
}

func TestL2InterfaceStats(t *testing.T) {
	l := &L2Interface{Enabled: true, TransferTicks: 10}
	l.AcquireForRefill(0)
	l.AcquireForTagCheck(5)
	st := l.Stats()
	if st.Uses != 1 || st.Waited == 0 {
		t.Fatalf("stats %+v", st)
	}
}
