package cache

import "flashsim/internal/sim"

// WriteBuffer models the small store buffer between the processor and
// the cache hierarchy. Mipsy "has blocking reads, but supports both
// prefetching and a write buffer"; FLASH's Solo/SimOS configurations use
// a four-entry buffer. A store that finds the buffer full stalls the
// processor until the oldest entry drains.
type WriteBuffer struct {
	entries int
	drains  []sim.Ticks // completion times of in-flight stores, ascending
	stalls  uint64
	stallT  sim.Ticks
}

// NewWriteBuffer creates a write buffer with the given entry count.
func NewWriteBuffer(entries int) *WriteBuffer {
	if entries <= 0 {
		entries = 1
	}
	return &WriteBuffer{entries: entries}
}

// Push records a store issued at time t whose memory operation completes
// at done. It returns the time the *processor* may proceed: t if a slot
// was free, or the drain time of the oldest entry if the buffer was
// full.
func (w *WriteBuffer) Push(t, done sim.Ticks) sim.Ticks {
	w.expire(t)
	proceed := t
	if len(w.drains) >= w.entries {
		oldest := w.drains[0]
		w.drains = w.drains[1:]
		if oldest > proceed {
			w.stalls++
			w.stallT += oldest - proceed
			proceed = oldest
		}
	}
	// Insert keeping ascending order (completions can be out of order
	// only through contention skew; keep it sorted for correctness).
	i := len(w.drains)
	for i > 0 && w.drains[i-1] > done {
		i--
	}
	w.drains = append(w.drains, 0)
	copy(w.drains[i+1:], w.drains[i:])
	w.drains[i] = done
	return proceed
}

// PushPending reserves a slot for a store issued at time t whose
// completion time is not yet known (the miss is deferred to a barrier
// phase). The placeholder sits at the buffer tail as sim.Forever until
// Patch fills it in. ok=false means every slot is held by an unpatched
// placeholder, so the oldest drain time is unknowable and the caller
// must defer the whole store instead; otherwise proceed is when the
// processor may continue (t, or the oldest real entry's drain on a full
// buffer).
func (w *WriteBuffer) PushPending(t sim.Ticks) (proceed sim.Ticks, ok bool) {
	w.expire(t)
	proceed = t
	if len(w.drains) >= w.entries {
		if w.drains[0] == sim.Forever {
			return 0, false
		}
		oldest := w.drains[0]
		w.drains = w.drains[1:]
		if oldest > proceed {
			w.stalls++
			w.stallT += oldest - proceed
			proceed = oldest
		}
	}
	w.drains = append(w.drains, sim.Forever)
	return proceed, true
}

// Patch resolves the oldest placeholder to its real drain time. Stores
// issue in program order per node and the barrier phase executes their
// deferred operations in that same order, so first-placeholder-first is
// FIFO-correct.
func (w *WriteBuffer) Patch(done sim.Ticks) {
	for i, d := range w.drains {
		if d != sim.Forever {
			continue
		}
		copy(w.drains[i:], w.drains[i+1:])
		w.drains = w.drains[:len(w.drains)-1]
		j := len(w.drains)
		for j > 0 && w.drains[j-1] > done {
			j--
		}
		w.drains = append(w.drains, 0)
		copy(w.drains[j+1:], w.drains[j:])
		w.drains[j] = done
		return
	}
}

// DrainBy returns the time by which every buffered store has completed,
// given current time t (used at synchronization points).
func (w *WriteBuffer) DrainBy(t sim.Ticks) sim.Ticks {
	w.expire(t)
	if len(w.drains) == 0 {
		return t
	}
	last := w.drains[len(w.drains)-1]
	w.drains = w.drains[:0]
	if last > t {
		return last
	}
	return t
}

// expire drops entries already drained by time t.
func (w *WriteBuffer) expire(t sim.Ticks) {
	n := 0
	for n < len(w.drains) && w.drains[n] <= t {
		n++
	}
	if n > 0 {
		w.drains = w.drains[n:]
	}
}

// Stalls returns how many stores stalled on a full buffer and the total
// stall time.
func (w *WriteBuffer) Stalls() (uint64, sim.Ticks) { return w.stalls, w.stallT }

// Occupied returns the number of in-flight entries at time t.
func (w *WriteBuffer) Occupied(t sim.Ticks) int {
	w.expire(t)
	return len(w.drains)
}

// MSHRs models the miss status holding registers that bound the number
// of outstanding cache misses (4 on the R10000, per Table 1). Requests
// to a line already outstanding merge; a new miss with all registers
// busy must wait for the earliest completion.
type MSHRs struct {
	n       int
	pending map[uint64]sim.Ticks // line addr -> completion time
	merges  uint64
	stalls  uint64
	stallT  sim.Ticks
}

// NewMSHRs creates an MSHR file with n registers.
func NewMSHRs(n int) *MSHRs {
	if n <= 0 {
		n = 1
	}
	return &MSHRs{n: n, pending: make(map[uint64]sim.Ticks, n)}
}

// Lookup reports whether a miss on lineAddr is already outstanding at
// time t and, if so, when it completes (the new request merges).
func (m *MSHRs) Lookup(lineAddr uint64, t sim.Ticks) (sim.Ticks, bool) {
	m.expire(t)
	done, ok := m.pending[lineAddr]
	if ok {
		m.merges++
	}
	return done, ok
}

// Reserve allocates a register for a miss on lineAddr issued at time t.
// It returns the time the miss may actually be issued to the memory
// system: t if a register is free, else the earliest completion time
// among outstanding misses.
func (m *MSHRs) Reserve(lineAddr uint64, t sim.Ticks) sim.Ticks {
	m.expire(t)
	issue := t
	if len(m.pending) >= m.n {
		earliest := sim.Forever
		var victim uint64
		for a, d := range m.pending {
			if d < earliest || (d == earliest && a < victim) {
				earliest, victim = d, a
			}
		}
		delete(m.pending, victim)
		if earliest > issue {
			m.stalls++
			m.stallT += earliest - issue
			issue = earliest
		}
	}
	return issue
}

// Complete records that the miss on lineAddr completes at done.
func (m *MSHRs) Complete(lineAddr uint64, done sim.Ticks) { m.pending[lineAddr] = done }

// expire retires registers whose misses completed by t.
func (m *MSHRs) expire(t sim.Ticks) {
	for a, d := range m.pending {
		if d <= t {
			delete(m.pending, a)
		}
	}
}

// Merges returns the number of merged (piggybacked) requests.
func (m *MSHRs) Merges() uint64 { return m.merges }

// Stalls returns how many misses stalled for a free register and the
// total stall time.
func (m *MSHRs) Stalls() (uint64, sim.Ticks) { return m.stalls, m.stallT }

// Outstanding returns the number of in-flight misses at time t.
func (m *MSHRs) Outstanding(t sim.Ticks) int {
	m.expire(t)
	return len(m.pending)
}

// L2Interface models the occupancy of the R10000's external
// (secondary-cache) interface. "While data is being returned from the
// memory system and the processor is forwarding this data to the
// external cache, the external cache interface is occupied for the
// entire duration of the cacheline transfer. Even subsequent tag checks
// have to wait." This effect, absent from the untuned processor models,
// made them mispredict back-to-back load latency; the Calibrator enables
// and fits it.
type L2Interface struct {
	// Enabled selects whether occupancy is modeled at all.
	Enabled bool
	// TransferTicks is how long a line refill occupies the interface.
	TransferTicks sim.Ticks

	nextFree sim.Ticks
	windows  [8]struct{ start, end sim.Ticks }
	wpos     int
	uses     uint64
	tagWaits uint64
}

// AcquireForRefill reserves the interface for a line transfer whose
// critical word arrives at time t. Transfers serialize among themselves
// (one external interface). It returns the transfer start: the
// processor restarts on the critical word as the transfer begins, but
// the interface stays occupied for the whole TransferTicks — the R10000
// behavior ("while data is being returned ... the external cache
// interface is occupied for the entire duration of the cacheline
// transfer"), fixed in the R12000.
func (l *L2Interface) AcquireForRefill(t sim.Ticks) sim.Ticks {
	if !l.Enabled {
		return t
	}
	start := t
	if l.nextFree > start {
		start = l.nextFree
	}
	end := start + l.TransferTicks
	l.nextFree = end
	l.windows[l.wpos] = struct{ start, end sim.Ticks }{start, end}
	l.wpos = (l.wpos + 1) % len(l.windows)
	l.uses++
	return start
}

// AcquireForTagCheck delays a tag check that lands inside an in-progress
// line transfer ("even subsequent tag checks have to wait for the
// cacheline transfer to complete"). A check before any reserved transfer
// begins proceeds immediately — future reservations do not block the
// past.
func (l *L2Interface) AcquireForTagCheck(t sim.Ticks) sim.Ticks {
	if !l.Enabled {
		return t
	}
	for moved := true; moved; {
		moved = false
		for _, w := range l.windows {
			if t >= w.start && t < w.end {
				t = w.end
				l.tagWaits++
				moved = true
			}
		}
	}
	return t
}

// Stats exposes the interface counters.
func (l *L2Interface) Stats() sim.Stats {
	return sim.Stats{Uses: l.uses, Waited: sim.Ticks(l.tagWaits)}
}
