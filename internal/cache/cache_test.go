package cache

import (
	"testing"
	"testing/quick"
)

// tiny returns a 4-set, 2-way, 32B-line cache (256 bytes).
func tiny() *Cache {
	return New(Config{Name: "t", Size: 256, LineSize: 32, Ways: 2})
}

func TestConfigValidate(t *testing.T) {
	good := Config{Name: "c", Size: 1024, LineSize: 32, Ways: 2}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Name: "l", Size: 1024, LineSize: 33, Ways: 2},       // line not pow2
		{Name: "w", Size: 1024, LineSize: 32, Ways: 0},       // no ways
		{Name: "s", Size: 1000, LineSize: 32, Ways: 2},       // indivisible
		{Name: "p", Size: 32 * 2 * 3, LineSize: 32, Ways: 2}, // sets not pow2
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %+v should be invalid", c)
		}
	}
}

func TestConfigGeometry(t *testing.T) {
	c := Config{Size: 128 << 10, LineSize: 128, Ways: 2}
	if c.Sets() != 512 {
		t.Fatalf("sets = %d", c.Sets())
	}
	if c.WaySize() != 64<<10 {
		t.Fatalf("way size = %d", c.WaySize())
	}
	if c.LineAddr(0x12345) != 0x12345&^uint64(127) {
		t.Fatal("line addr")
	}
}

func TestReadMissThenHit(t *testing.T) {
	c := tiny()
	if _, hit := c.Access(0x100, false); hit {
		t.Fatal("cold access hit")
	}
	c.Insert(0x100, Shared)
	if st, hit := c.Access(0x100, false); !hit || st != Shared {
		t.Fatalf("hit=%v st=%v", hit, st)
	}
}

func TestWriteToSharedIsUpgradeMiss(t *testing.T) {
	c := tiny()
	c.Insert(0x100, Shared)
	if st, hit := c.Access(0x100, true); hit || st != Shared {
		t.Fatalf("write to Shared must miss for coherence: hit=%v st=%v", hit, st)
	}
}

func TestWriteToExclusiveSilentlyModifies(t *testing.T) {
	c := tiny()
	c.Insert(0x100, Exclusive)
	if st, hit := c.Access(0x100, true); !hit || st != Exclusive {
		t.Fatalf("hit=%v st=%v", hit, st)
	}
	if got := c.Lookup(0x100); got != Modified {
		t.Fatalf("state after silent upgrade = %v", got)
	}
}

func TestLRUEviction(t *testing.T) {
	c := tiny() // 4 sets; same set: addresses 0, 128, 256...
	c.Insert(0, Shared)
	c.Insert(128, Shared)
	c.Access(0, false) // refresh 0; LRU is 128
	v := c.Insert(256, Shared)
	if !v.Valid || v.Addr != 128 {
		t.Fatalf("victim %+v, want addr 128", v)
	}
	if v.Dirty || v.State != Shared {
		t.Fatalf("victim flags %+v", v)
	}
}

func TestDirtyVictim(t *testing.T) {
	c := tiny()
	c.Insert(0, Modified)
	c.Insert(128, Shared)
	v := c.Insert(256, Shared)
	if !v.Valid || v.Addr != 0 || !v.Dirty || v.State != Modified {
		t.Fatalf("victim %+v", v)
	}
	if c.Stats().Writebacks != 1 {
		t.Fatal("writeback not counted")
	}
}

func TestInsertExistingUpdatesInPlace(t *testing.T) {
	c := tiny()
	c.Insert(0x100, Shared)
	v := c.Insert(0x100, Modified)
	if v.Valid {
		t.Fatal("re-insert must not evict")
	}
	if c.Lookup(0x100) != Modified {
		t.Fatal("state not updated")
	}
	if c.Resident() != 1 {
		t.Fatal("duplicate line")
	}
}

func TestInvalidate(t *testing.T) {
	c := tiny()
	c.Insert(0x100, Modified)
	if st := c.Invalidate(0x100); st != Modified {
		t.Fatalf("invalidate returned %v", st)
	}
	if c.Lookup(0x100) != Invalid {
		t.Fatal("line still present")
	}
	if st := c.Invalidate(0x100); st != Invalid {
		t.Fatal("double invalidate")
	}
}

func TestDowngrade(t *testing.T) {
	c := tiny()
	c.Insert(0x100, Modified)
	if st := c.Downgrade(0x100); st != Modified {
		t.Fatalf("downgrade returned %v", st)
	}
	if c.Lookup(0x100) != Shared {
		t.Fatal("line not shared after downgrade")
	}
	if st := c.Downgrade(0x200); st != Invalid {
		t.Fatal("downgrade of absent line")
	}
	// Downgrading a Shared line leaves it Shared.
	if st := c.Downgrade(0x100); st != Shared || c.Lookup(0x100) != Shared {
		t.Fatal("downgrade of shared line")
	}
}

func TestMarkDirty(t *testing.T) {
	c := tiny()
	c.Insert(0x100, Exclusive)
	if !c.MarkDirty(0x100) {
		t.Fatal("mark dirty missed present line")
	}
	if c.Lookup(0x100) != Modified {
		t.Fatal("state not modified")
	}
	if c.MarkDirty(0x900) {
		t.Fatal("mark dirty on absent line")
	}
}

func TestFlush(t *testing.T) {
	c := tiny()
	c.Insert(0x100, Modified)
	c.Insert(0x200, Shared)
	c.Flush()
	if c.Resident() != 0 {
		t.Fatal("flush left lines")
	}
}

func TestInsertInvalidPanics(t *testing.T) {
	c := tiny()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Insert(0x100, Invalid)
}

func TestStateStrings(t *testing.T) {
	for _, s := range []State{Invalid, Shared, Exclusive, Modified} {
		if s.String() == "" {
			t.Errorf("state %d unnamed", s)
		}
	}
}

// TestResidencyBoundProperty: residency never exceeds capacity and the
// most recent insert is always resident.
func TestResidencyBoundProperty(t *testing.T) {
	f := func(addrs []uint16, writes []bool) bool {
		c := tiny()
		capLines := 8
		for i, a := range addrs {
			pa := uint64(a) &^ 31
			w := i < len(writes) && writes[i]
			if _, hit := c.Access(pa, w); !hit {
				st := Shared
				if w {
					st = Modified
				}
				c.Insert(pa, st)
			}
			if c.Resident() > capLines {
				return false
			}
			if c.Lookup(pa) == Invalid {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestConflictSetThrashing: three same-set lines in a two-way cache
// never all survive — the Ocean/Solo mechanism.
func TestConflictSetThrashing(t *testing.T) {
	c := tiny()
	for round := 0; round < 4; round++ {
		for _, pa := range []uint64{0, 128, 256} {
			if _, hit := c.Access(pa, false); !hit {
				c.Insert(pa, Shared)
			}
		}
	}
	st := c.Stats()
	// Round-robin over 3 lines with 2-way LRU misses every time.
	if st.Hits != 0 {
		t.Fatalf("expected pure thrash, got %d hits", st.Hits)
	}
}
