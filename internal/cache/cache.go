// Package cache implements the processor cache hierarchy state: set
// associative tag arrays with MESI-style line states, plus the small
// structures whose modeling fidelity the paper interrogates — the
// 4-entry write buffer, the 4-MSHR outstanding-miss file, and the
// secondary-cache interface whose occupancy the processor models
// initially failed to capture ("while data is being returned from the
// memory system ... the external cache interface is occupied for the
// entire duration of the cache-line transfer").
//
// The package is purely structural: timing decisions live in the
// processor and machine models, which ask the tag arrays what happened.
package cache

import "fmt"

// State is a cache-line coherence state.
type State uint8

const (
	// Invalid: not present.
	Invalid State = iota
	// Shared: present read-only; other caches may hold copies.
	Shared
	// Exclusive: present clean with no other copies; silently
	// upgradeable to Modified.
	Exclusive
	// Modified: present dirty; this cache owns the only copy.
	Modified
)

// String names the state.
func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// Config describes one cache level.
type Config struct {
	Name     string
	Size     uint64 // total bytes
	LineSize uint64 // bytes per line (power of two)
	Ways     int    // associativity
}

// Validate checks internal consistency.
func (c Config) Validate() error {
	if c.LineSize == 0 || c.LineSize&(c.LineSize-1) != 0 {
		return fmt.Errorf("cache %s: line size %d not a power of two", c.Name, c.LineSize)
	}
	if c.Ways <= 0 {
		return fmt.Errorf("cache %s: ways %d", c.Name, c.Ways)
	}
	if c.Size == 0 || c.Size%(c.LineSize*uint64(c.Ways)) != 0 {
		return fmt.Errorf("cache %s: size %d not divisible by line*ways", c.Name, c.Size)
	}
	sets := c.Size / (c.LineSize * uint64(c.Ways))
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache %s: set count %d not a power of two", c.Name, sets)
	}
	return nil
}

// Sets returns the number of sets.
func (c Config) Sets() uint64 { return c.Size / (c.LineSize * uint64(c.Ways)) }

// WaySize returns the bytes covered by one way (Sets * LineSize); the
// number of page colors of this cache is WaySize/PageSize.
func (c Config) WaySize() uint64 { return c.Sets() * c.LineSize }

// LineAddr returns the line-aligned address of pa.
func (c Config) LineAddr(pa uint64) uint64 { return pa &^ (c.LineSize - 1) }

type line struct {
	tag   uint64 // line address
	state State
	seq   uint64 // recency stamp: larger = more recent
}

// Victim describes a line evicted by Insert.
type Victim struct {
	// Valid reports whether an eviction occurred.
	Valid bool
	// Addr is the victim's line address.
	Addr uint64
	// Dirty reports whether the victim requires a writeback.
	Dirty bool
	// State is the victim's pre-eviction state.
	State State
}

// Stats counts cache events.
type Stats struct {
	Hits        uint64
	Misses      uint64
	Evictions   uint64
	Writebacks  uint64
	Invals      uint64 // external invalidations received
	Interventio uint64 // external downgrades/forwards served
}

// Cache is a set-associative tag array with true-LRU replacement.
// The tag store is one flat ways-strided array — set lookup is a mask
// and a multiply, with no per-set slice header to chase on the probe
// path every simulated access takes.
type Cache struct {
	cfg   Config
	lines []line
	ways  int
	clock uint64
	stats Stats

	setMask   uint64
	lineShift uint
}

// New builds an empty cache. It panics on an invalid config (caught by
// Config.Validate), as cache geometry is fixed at machine construction.
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	nsets := cfg.Sets()
	c := &Cache{cfg: cfg, lines: make([]line, nsets*uint64(cfg.Ways)), ways: cfg.Ways, setMask: nsets - 1}
	for ls := cfg.LineSize; ls > 1; ls >>= 1 {
		c.lineShift++
	}
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns accumulated event counts.
func (c *Cache) Stats() Stats { return c.stats }

func (c *Cache) set(pa uint64) []line {
	i := ((pa >> c.lineShift) & c.setMask) * uint64(c.ways)
	return c.lines[i : i+uint64(c.ways)]
}

// Lookup returns the state of the line containing pa (Invalid if not
// present) without updating recency.
func (c *Cache) Lookup(pa uint64) State {
	la := c.cfg.LineAddr(pa)
	for _, ln := range c.set(pa) {
		if ln.state != Invalid && ln.tag == la {
			return ln.state
		}
	}
	return Invalid
}

// Access performs a read (write=false) or write (write=true) probe. It
// returns the pre-access state and whether the access hit outright. A
// write to a Shared line is a miss for coherence purposes (an upgrade is
// required); a write to an Exclusive line silently transitions to
// Modified and hits.
func (c *Cache) Access(pa uint64, write bool) (st State, hit bool) {
	la := c.cfg.LineAddr(pa)
	set := c.set(pa)
	for i := range set {
		ln := &set[i]
		if ln.state == Invalid || ln.tag != la {
			continue
		}
		st = ln.state
		if write {
			switch ln.state {
			case Shared:
				// Upgrade needed: coherence miss.
				c.stats.Misses++
				return st, false
			case Exclusive:
				ln.state = Modified
			}
		}
		c.clock++
		ln.seq = c.clock
		c.stats.Hits++
		return st, true
	}
	c.stats.Misses++
	return Invalid, false
}

// Insert fills the line containing pa with the given state, evicting the
// LRU line of the set if necessary. If the line is already present its
// state is updated in place (upgrade completion).
func (c *Cache) Insert(pa uint64, st State) Victim {
	if st == Invalid {
		panic("cache: Insert with Invalid state")
	}
	la := c.cfg.LineAddr(pa)
	set := c.set(pa)
	c.clock++
	// Present already (upgrade or refetch): update in place.
	for i := range set {
		if set[i].state != Invalid && set[i].tag == la {
			set[i].state = st
			set[i].seq = c.clock
			return Victim{}
		}
	}
	victim := 0
	for i := range set {
		if set[i].state == Invalid {
			victim = i
			break
		}
		if set[i].seq < set[victim].seq {
			victim = i
		}
	}
	v := Victim{}
	if set[victim].state != Invalid {
		v = Victim{Valid: true, Addr: set[victim].tag,
			Dirty: set[victim].state == Modified, State: set[victim].state}
		c.stats.Evictions++
		if v.Dirty {
			c.stats.Writebacks++
		}
	}
	set[victim] = line{tag: la, state: st, seq: c.clock}
	return v
}

// MarkDirty transitions an existing line to Modified (used to propagate
// first-write dirtiness from an inner cache level). It reports whether
// the line was present.
func (c *Cache) MarkDirty(pa uint64) bool {
	la := c.cfg.LineAddr(pa)
	set := c.set(pa)
	for i := range set {
		if set[i].state != Invalid && set[i].tag == la {
			set[i].state = Modified
			return true
		}
	}
	return false
}

// Invalidate removes the line containing pa (external invalidation). It
// reports the state the line was in (Invalid if not present).
func (c *Cache) Invalidate(pa uint64) State {
	la := c.cfg.LineAddr(pa)
	set := c.set(pa)
	for i := range set {
		if set[i].state != Invalid && set[i].tag == la {
			st := set[i].state
			set[i].state = Invalid
			c.stats.Invals++
			return st
		}
	}
	return Invalid
}

// Downgrade transitions the line containing pa to Shared (external
// intervention for a remote read of a dirty/exclusive line). It reports
// the previous state.
func (c *Cache) Downgrade(pa uint64) State {
	la := c.cfg.LineAddr(pa)
	set := c.set(pa)
	for i := range set {
		if set[i].state != Invalid && set[i].tag == la {
			st := set[i].state
			if st == Modified || st == Exclusive {
				set[i].state = Shared
				c.stats.Interventio++
			}
			return st
		}
	}
	return Invalid
}

// Flush empties the cache, leaving statistics intact.
func (c *Cache) Flush() {
	for i := range c.lines {
		c.lines[i] = line{}
	}
}

// Resident returns the number of valid lines (for tests).
func (c *Cache) Resident() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].state != Invalid {
			n++
		}
	}
	return n
}
