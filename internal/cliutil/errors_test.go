package cliutil_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"flashsim/internal/obs"
)

// TestMetricsOutWrittenOnClose: with -metrics-out set and a pool built,
// Close writes a parseable obs.Report even when no runs happened.
func TestMetricsOutWrittenOnClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.json")
	f, err := parse(t, "-metrics-out", path)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.Pool(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("report not written: %v", err)
	}
	var rep obs.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if rep.Schema != obs.ReportSchema {
		t.Fatalf("report schema %d, want %d", rep.Schema, obs.ReportSchema)
	}
}

// TestMetricsOutBadPathFailsAtClose: an unwritable -metrics-out target
// surfaces as a Close error naming the flag, after profiling teardown.
func TestMetricsOutBadPathFailsAtClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "no", "such", "dir", "m.json")
	f, err := parse(t, "-metrics-out", path)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.Pool(); err != nil {
		t.Fatal(err)
	}
	err = f.Close()
	if err == nil {
		t.Fatal("Close must fail when the metrics file cannot be written")
	}
	if !strings.Contains(err.Error(), "-metrics-out") {
		t.Fatalf("error does not name the flag: %v", err)
	}
}

// TestMetricsOutWithoutPoolIsQuietNoop: a command that fails before
// building its pool has nothing to report; Close must not fabricate a
// file or an error.
func TestMetricsOutWithoutPoolIsQuietNoop(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.json")
	f, err := parse(t, "-metrics-out", path)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("no pool was built, yet a metrics file appeared (stat err: %v)", err)
	}
}

// TestBadCacheDirFailsAtPool: a -cache-dir that cannot be created (a
// path component is a regular file) fails Pool construction, not a
// later write.
func TestBadCacheDirFailsAtPool(t *testing.T) {
	file := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := parse(t, "-cache-dir", filepath.Join(file, "nested"))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.Pool(); err == nil {
		t.Fatal("Pool must fail when the cache dir cannot be created")
	}
}

// TestBadArtifactSinksFailAtFinish: unwritable -cpuprofile and -trace
// targets are caught by Finish, before any simulation work starts.
func TestBadArtifactSinksFailAtFinish(t *testing.T) {
	missing := filepath.Join(t.TempDir(), "no", "dir")
	if _, err := parse(t, "-cpuprofile", filepath.Join(missing, "cpu.pb")); err == nil {
		t.Error("bad -cpuprofile must fail Finish")
	}
	if _, err := parse(t, "-trace", filepath.Join(missing, "trace.out")); err == nil {
		t.Error("bad -trace must fail Finish")
	}
}

// TestBadMemProfileFailsAtClose: -memprofile is written at Close; a bad
// path must surface there.
func TestBadMemProfileFailsAtClose(t *testing.T) {
	f, err := parse(t, "-memprofile", filepath.Join(t.TempDir(), "no", "dir", "mem.pb"))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err == nil {
		t.Fatal("Close must fail when the memory profile cannot be written")
	}
}
