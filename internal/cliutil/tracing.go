package cliutil

import (
	"encoding/json"
	"fmt"
	"os"

	"flashsim/internal/emitter"
	"flashsim/internal/machine"
	"flashsim/internal/runner"
	"flashsim/internal/trace"
)

// ForbidTrace rejects -trace-out/-trace-in on commands whose run plan
// spans many (config, workload) tuples — a single container cannot
// describe a sweep. Single-run front ends (flashsim) and the dedicated
// trace CLI (flashtrace) support them.
func (f *Flags) ForbidTrace(cmd string) error {
	if f.TraceOut != "" || f.TraceIn != "" {
		return fmt.Errorf("%s runs many workload/config combinations; -trace-out/-trace-in apply to single runs (use flashsim or flashtrace)", cmd)
	}
	return nil
}

// CaptureRun executes prog under cfg execution-driven while capturing
// its instruction streams into the container file at path. The capture
// bypasses any memo store by design: a cache hit replays a stored
// Result without emitting a single instruction, which can never
// produce a trace. source, when non-nil, is recorded in the container
// meta as the machine-readable workload spec.
func CaptureRun(path string, cfg machine.Config, prog emitter.Program, source json.RawMessage) (machine.Result, error) {
	fh, err := os.Create(path)
	if err != nil {
		return machine.Result{}, fmt.Errorf("-trace-out: %w", err)
	}
	tw, err := trace.NewWriter(fh, runner.TraceMeta(cfg, prog, source))
	if err != nil {
		fh.Close()
		os.Remove(path)
		return machine.Result{}, fmt.Errorf("-trace-out: %w", err)
	}
	res, err := machine.RunCapture(cfg, prog, tw)
	if err != nil {
		fh.Close()
		os.Remove(path) // a partial container must not look like a capture
		return machine.Result{}, err
	}
	if err := fh.Close(); err != nil {
		os.Remove(path)
		return machine.Result{}, fmt.Errorf("-trace-out: %w", err)
	}
	return res, nil
}

// LoadReplay reads the container at path and prepares it for replay.
func LoadReplay(path string) (*machine.ReplayImage, error) {
	tr, err := trace.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("-trace-in: %w", err)
	}
	img, err := machine.PrepareReplay(tr)
	if err != nil {
		return nil, fmt.Errorf("-trace-in: %s: %w", path, err)
	}
	return img, nil
}
