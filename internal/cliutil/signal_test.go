package cliutil_test

import (
	"flag"
	"os"
	"syscall"
	"testing"
	"time"

	"flashsim/internal/cliutil"
)

func TestCacheMaxBytesFlagBoundsTheStore(t *testing.T) {
	for arg, want := range map[string]int64{
		"4096":   4096,
		"1KiB":   1 << 10,
		"64MiB":  64 << 20,
		"2GB":    2 << 30,
		" 512k ": 512 << 10,
		"0":      0,
	} {
		fs := flag.NewFlagSet("test", flag.ContinueOnError)
		f := cliutil.RegisterOn(fs)
		if err := fs.Parse([]string{"-cache-dir", t.TempDir(), "-cache-max-bytes", arg}); err != nil {
			t.Errorf("%q: parse: %v", arg, err)
			continue
		}
		_, store, err := f.Pool()
		if err != nil {
			t.Errorf("%q: pool: %v", arg, err)
			continue
		}
		if got := store.MaxBytes(); got != want {
			t.Errorf("-cache-max-bytes %q: store bound %d, want %d", arg, got, want)
		}
	}
	for _, bad := range []string{"-1", "banana", "12TiB3", ""} {
		fs := flag.NewFlagSet("test", flag.ContinueOnError)
		fs.SetOutput(discard{})
		cliutil.RegisterOn(fs)
		if err := fs.Parse([]string{"-cache-max-bytes", bad}); err == nil {
			t.Errorf("-cache-max-bytes %q: accepted, want error", bad)
		}
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// TestNotifyShutdownDeliversSignal: the handler sees the first
// SIGINT/SIGTERM instead of the runtime's default kill.
func TestNotifyShutdownDeliversSignal(t *testing.T) {
	got := make(chan os.Signal, 1)
	stop := cliutil.NotifyShutdown(func(sig os.Signal) { got <- sig })
	defer stop()
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case sig := <-got:
		if sig != syscall.SIGTERM {
			t.Errorf("handler got %v, want SIGTERM", sig)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("handler never ran")
	}
}
