package cliutil

import (
	"context"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"flashsim/internal/emitter"
	"flashsim/internal/machine"
	"flashsim/internal/param"
	"flashsim/internal/runner"
)

// sampleSettings translates -sample/-sample-cold into sampling.*
// parameter settings. "on" (or "default") selects the default
// schedule; otherwise the spec is period:window:warmup[:phase] in
// instruction counts. Returned settings are validated against the
// registry like any -set.
func (f *Flags) sampleSettings() ([]param.Setting, error) {
	if f.Sample == "" {
		if f.SampleCold {
			return nil, fmt.Errorf("-sample-cold requires -sample")
		}
		return nil, nil
	}
	sc := machine.DefaultSampling()
	if f.Sample != "on" && f.Sample != "default" {
		parts := strings.Split(f.Sample, ":")
		if len(parts) < 3 || len(parts) > 4 {
			return nil, fmt.Errorf("-sample: want 'on' or period:window:warmup[:phase], got %q", f.Sample)
		}
		fields := []*uint64{&sc.Period, &sc.Window, &sc.Warmup, &sc.Phase}
		for i, p := range parts {
			v, err := strconv.ParseUint(p, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("-sample: field %d of %q: %w", i+1, f.Sample, err)
			}
			*fields[i] = v
		}
	}
	sc.ColdState = f.SampleCold
	raw := []string{
		"sampling.enabled=true",
		fmt.Sprintf("sampling.period_instrs=%d", sc.Period),
		fmt.Sprintf("sampling.window_instrs=%d", sc.Window),
		fmt.Sprintf("sampling.warmup_instrs=%d", sc.Warmup),
		fmt.Sprintf("sampling.phase_instrs=%d", sc.Phase),
		fmt.Sprintf("sampling.cold_state=%t", sc.ColdState),
	}
	out := make([]param.Setting, 0, len(raw))
	for _, r := range raw {
		s, err := param.ParseSetting(r)
		if err != nil {
			return nil, fmt.Errorf("-sample: %w", err)
		}
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("-sample: %w", err)
		}
		out = append(out, s)
	}
	return out, nil
}

// RunMode names which execution mode the shared dispatch selected.
type RunMode int

const (
	// ModeExecute is an execution-driven run through the pool.
	ModeExecute RunMode = iota
	// ModeCapture is an execution-driven run with a trace tap; it
	// bypasses the pool because a memoized result emits no instructions
	// and can never fill a trace.
	ModeCapture
	// ModeReplay is a trace-driven run of a loaded container.
	ModeReplay
)

// RunOutcome is ExecuteRun's result: the machine Result plus which
// mode produced it (and, under ModeReplay, the image that was run).
type RunOutcome struct {
	Result machine.Result
	Mode   RunMode
	// Image is the replayed container under ModeReplay.
	Image *machine.ReplayImage
}

// ExecuteRun dispatches one run across the three execution modes the
// shared trace flags select — the run-mode logic every single-run
// front end (flashsim, flashtrace) shares instead of reimplementing:
//
//   - -trace-out captures prog execution-driven into the container
//   - -trace-in (or a preloaded img) replays a container trace-driven
//   - otherwise prog executes through the pool
//
// img, when non-nil, is a container the caller already loaded (e.g.
// to size the machine from the trace's thread count); it forces
// ModeReplay without re-decoding.
func (f *Flags) ExecuteRun(ctx context.Context, pool *runner.Pool, cfg machine.Config, prog emitter.Program, source json.RawMessage, img *machine.ReplayImage) (RunOutcome, error) {
	if f.TraceOut != "" && (f.TraceIn != "" || img != nil) {
		return RunOutcome{}, fmt.Errorf("-trace-out and -trace-in are mutually exclusive (capture or replay, not both)")
	}
	if f.TraceOut != "" {
		res, err := CaptureRun(f.TraceOut, cfg, prog, source)
		return RunOutcome{Result: res, Mode: ModeCapture}, err
	}
	if img == nil && f.TraceIn != "" {
		var err error
		if img, err = LoadReplay(f.TraceIn); err != nil {
			return RunOutcome{Mode: ModeReplay}, err
		}
	}
	if img != nil {
		results, err := pool.Run(ctx, []runner.Job{{Config: cfg, Replay: img}})
		if err != nil {
			return RunOutcome{Mode: ModeReplay}, err
		}
		return RunOutcome{Result: results[0], Mode: ModeReplay, Image: img}, nil
	}
	results, err := pool.Run(ctx, []runner.Job{{Config: cfg, Prog: prog}})
	if err != nil {
		return RunOutcome{}, err
	}
	return RunOutcome{Result: results[0]}, nil
}
