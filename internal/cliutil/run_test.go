package cliutil_test

import (
	"testing"

	"flashsim/internal/machine"
)

func TestSampleFlagDefaultsSchedule(t *testing.T) {
	f, err := parse(t, "-sample", "on")
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := f.Apply(machine.Base(4, true))
	if err != nil {
		t.Fatal(err)
	}
	want := machine.DefaultSampling()
	if cfg.Sampling != want {
		t.Errorf("-sample on applied %+v, want %+v", cfg.Sampling, want)
	}
}

func TestSampleFlagSpecAndCold(t *testing.T) {
	f, err := parse(t, "-sample", "10000:1000:200:50", "-sample-cold")
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := f.Apply(machine.Base(4, true))
	if err != nil {
		t.Fatal(err)
	}
	want := machine.SamplingConfig{
		Enabled: true, Period: 10000, Window: 1000, Warmup: 200, Phase: 50, ColdState: true,
	}
	if cfg.Sampling != want {
		t.Errorf("spec applied %+v, want %+v", cfg.Sampling, want)
	}
}

func TestSampleFlagComposesWithSet(t *testing.T) {
	// An explicit -set wins over the -sample shorthand.
	f, err := parse(t, "-sample", "on", "-set", "sampling.window_instrs=777")
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := f.Apply(machine.Base(4, true))
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.Sampling.Enabled || cfg.Sampling.Window != 777 {
		t.Errorf("-set must win over -sample: %+v", cfg.Sampling)
	}
}

func TestSampleFlagRejectsBadSpecs(t *testing.T) {
	for _, args := range [][]string{
		{"-sample", "10000"},     // too few fields
		{"-sample", "1:2:3:4:5"}, // too many fields
		{"-sample", "a:b:c"},     // not numbers
		{"-sample-cold"},         // cold without a schedule
	} {
		if _, err := parse(t, args...); err == nil {
			t.Errorf("%v should fail Finish", args)
		}
	}
}
