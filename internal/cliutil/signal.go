package cliutil

import (
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
)

// NotifyShutdown runs handler in its own goroutine on the first SIGINT
// or SIGTERM and returns a stop function that disarms the handler (for
// the normal exit path). The handler owns termination: a CLI flushes
// its artifacts and exits, a daemon drains its queue first. A second
// signal while the handler runs kills the process the default way,
// since the subscription is released before the handler starts.
func NotifyShutdown(handler func(os.Signal)) (stop func()) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		sig, ok := <-ch
		if !ok {
			return
		}
		signal.Stop(ch)
		handler(sig)
	}()
	return func() {
		signal.Stop(ch)
		close(ch)
	}
}

// ExitOnSignal arranges for an interrupted CLI to exit cleanly: on
// SIGINT or SIGTERM the artifact sinks are finalized — the
// -metrics-out report is written with whatever ran before the
// interrupt, profiles and traces are closed — and the process exits
// with the conventional 128+signal status. Mains call it after Finish
// and disarm via the returned stop on the normal path (where the
// deferred Close writes the artifacts instead).
func (f *Flags) ExitOnSignal() (stop func()) {
	return NotifyShutdown(func(sig os.Signal) {
		fmt.Fprintf(os.Stderr, "interrupted by %v; flushing artifacts\n", sig)
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
		os.Exit(128 + int(sig.(syscall.Signal)))
	})
}

// sizeFlag is a byte count accepting a plain integer or a
// KiB/MiB/GiB-suffixed value (decimal KB/MB/GB are accepted as the
// same binary units).
type sizeFlag int64

func (s *sizeFlag) String() string { return strconv.FormatInt(int64(*s), 10) }

func (s *sizeFlag) Set(v string) error {
	mult := int64(1)
	upper := strings.ToUpper(strings.TrimSpace(v))
	for suffix, m := range map[string]int64{
		"KIB": 1 << 10, "KB": 1 << 10, "K": 1 << 10,
		"MIB": 1 << 20, "MB": 1 << 20, "M": 1 << 20,
		"GIB": 1 << 30, "GB": 1 << 30, "G": 1 << 30,
	} {
		if strings.HasSuffix(upper, suffix) && len(upper) > len(suffix) {
			upper = strings.TrimSuffix(upper, suffix)
			mult = m
			break
		}
	}
	n, err := strconv.ParseInt(strings.TrimSpace(upper), 10, 64)
	if err != nil {
		return fmt.Errorf("size %q: want bytes or a KiB/MiB/GiB suffix", v)
	}
	if n < 0 {
		return fmt.Errorf("size %q: negative", v)
	}
	*s = sizeFlag(n * mult)
	return nil
}
