package cliutil_test

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"flashsim/internal/cliutil"
	"flashsim/internal/machine"
)

func parse(t *testing.T, args ...string) (*cliutil.Flags, error) {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := cliutil.RegisterOn(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatalf("flag parse: %v", err)
	}
	return f, f.Finish()
}

func TestSetOverridesApply(t *testing.T) {
	f, err := parse(t, "-set", "os.tlb.handler_cycles=65", "-set", "l2.transfer_ns=200")
	if err != nil {
		t.Fatal(err)
	}
	if !f.HasOverrides() {
		t.Error("HasOverrides should be true")
	}
	cfg, err := f.Apply(machine.Base(4, true))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.OS.TLBHandlerCycles != 65 || cfg.L2TransferNS != 200 {
		t.Errorf("overrides not applied: %+v", cfg)
	}
}

func TestInvalidSetFailsAtFinish(t *testing.T) {
	if _, err := parse(t, "-set", "no.such.knob=1"); err == nil {
		t.Error("unknown path must fail Finish")
	}
	if _, err := parse(t, "-set", "os.tlb.handler_cycles=banana"); err == nil {
		t.Error("unparseable value must fail Finish")
	}
	if _, err := parse(t, "-set", "procs"); err == nil {
		t.Error("missing = must fail Finish")
	}
}

func TestConfigFileAndSetCompose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "overrides.json")
	if err := os.WriteFile(path, []byte(`{"os.tlb.handler_cycles": 65, "cpu.clock_mhz": 225}`), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := parse(t, "-config", path, "-set", "cpu.clock_mhz=300")
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := f.Apply(machine.Base(4, true))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.OS.TLBHandlerCycles != 65 {
		t.Errorf("file override lost: %d", cfg.OS.TLBHandlerCycles)
	}
	if cfg.ClockMHz != 300 {
		t.Errorf("-set must win over -config: %d", cfg.ClockMHz)
	}
}

func TestBadConfigFileFailsAtFinish(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`{"made.up.path": 1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := parse(t, "-config", path); err == nil {
		t.Error("config file with unknown paths must fail Finish")
	}
	if _, err := parse(t, "-config", filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing config file must fail Finish")
	}
}

func TestNoOverridesIsIdentity(t *testing.T) {
	f, err := parse(t)
	if err != nil {
		t.Fatal(err)
	}
	if f.HasOverrides() {
		t.Error("no overrides expected")
	}
	in := machine.Base(4, true)
	out, err := f.Apply(in)
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Error("Apply without overrides must be the identity")
	}
}

func TestPoolConstruction(t *testing.T) {
	f, err := parse(t, "-jobs", "2", "-cache-dir", t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	pool, store, err := f.Pool()
	if err != nil {
		t.Fatal(err)
	}
	if pool == nil || store == nil || store.Dir() == "" {
		t.Error("pool/store not built from flags")
	}
}
