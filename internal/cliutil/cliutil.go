// Package cliutil is the shared command-line plumbing of the cmd/
// front ends. Every CLI gets the same knobs with one canonical
// description each — -jobs and -cache-dir (the runner pool), -config
// and -set (machine-parameter overrides through the internal/param
// registry), -cpuprofile/-memprofile/-trace (pprof and execution-trace
// artifacts), -metrics-out (the per-run observability report of
// internal/obs) — plus -list-params for registry introspection, instead
// of five drifting copies of the same flag declarations.
package cliutil

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"strings"

	"flashsim/internal/machine"
	"flashsim/internal/obs"
	"flashsim/internal/param"
	"flashsim/internal/runner"
)

// Canonical help text for the shared flags; cmd mains must not
// re-declare these flags with local wording.
const (
	jobsUsage       = "simulation runs to execute in parallel"
	cacheDirUsage   = "persist memoized run results in this directory"
	cacheMaxUsage   = "evict least-recently-used -cache-dir entries beyond this size (bytes, or with a KiB/MiB/GiB suffix; 0 = unbounded)"
	configUsage     = "apply machine-parameter overrides from this JSON file (a param snapshot or a bare {\"path\": value} object)"
	setUsage        = "override one machine parameter as path=value (repeatable; see -list-params)"
	listParamsUsage = "print the tunable-parameter registry and exit"
	cpuProfileUsage = "write a CPU profile to this file (go tool pprof)"
	memProfileUsage = "write an allocation profile to this file on exit (go tool pprof)"
	traceUsage      = "write a runtime execution trace to this file (go tool trace)"
	metricsOutUsage = "write the aggregated per-run metrics report (obs.Report JSON) to this file on exit"
	traceOutUsage   = "capture the run's instruction streams into this trace container (execution-driven run, bypasses the memo store)"
	traceInUsage    = "replay a previously captured trace container instead of executing the workload (trace-driven run)"
	sampleUsage     = "enable sampled simulation: 'on' for the default schedule, or period:window:warmup[:phase] instruction counts"
	sampleColdUsage = "sampled fast-forward leaves cache/TLB/directory state cold instead of warming it (requires -sample)"
	shardsUsage     = "partition simulated nodes across this many host cores inside each run (results are bit-identical at any value; clamped to the processor count)"
)

// Flags carries the shared flag values after flag.Parse.
type Flags struct {
	Jobs       int
	CacheDir   string
	CacheMax   sizeFlag
	ConfigFile string
	ListParams bool
	CPUProfile string
	MemProfile string
	TraceFile  string
	MetricsOut string
	TraceOut   string
	TraceIn    string
	Sample     string
	SampleCold bool
	Shards     int

	sets     stringList
	settings []param.Setting
	snapshot *param.Snapshot

	cpuFile   *os.File
	traceFile *os.File

	collector *obs.Collector
	pool      *runner.Pool
}

// stringList is a repeatable string flag.
type stringList []string

func (s *stringList) String() string { return strings.Join(*s, ",") }

func (s *stringList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

// Register installs the shared flags on the process flag set. Call
// before flag.Parse, then Finish after it.
func Register() *Flags { return RegisterOn(flag.CommandLine) }

// RegisterOn installs the shared flags on fs.
func RegisterOn(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.IntVar(&f.Jobs, "jobs", runner.DefaultWorkers(), jobsUsage)
	fs.StringVar(&f.CacheDir, "cache-dir", "", cacheDirUsage)
	fs.Var(&f.CacheMax, "cache-max-bytes", cacheMaxUsage)
	fs.StringVar(&f.ConfigFile, "config", "", configUsage)
	fs.Var(&f.sets, "set", setUsage)
	fs.BoolVar(&f.ListParams, "list-params", false, listParamsUsage)
	fs.StringVar(&f.CPUProfile, "cpuprofile", "", cpuProfileUsage)
	fs.StringVar(&f.MemProfile, "memprofile", "", memProfileUsage)
	fs.StringVar(&f.TraceFile, "trace", "", traceUsage)
	fs.StringVar(&f.MetricsOut, "metrics-out", "", metricsOutUsage)
	fs.StringVar(&f.TraceOut, "trace-out", "", traceOutUsage)
	fs.StringVar(&f.TraceIn, "trace-in", "", traceInUsage)
	fs.StringVar(&f.Sample, "sample", "", sampleUsage)
	fs.BoolVar(&f.SampleCold, "sample-cold", false, sampleColdUsage)
	fs.IntVar(&f.Shards, "shards", 1, shardsUsage)
	return f
}

// Finish validates the parsed flags: -list-params prints the registry
// and exits, -config is loaded, and every -set is checked against the
// registry (unknown paths, unparseable values, and bounds violations
// fail here, before any simulation runs).
func (f *Flags) Finish() error {
	if f.ListParams {
		fmt.Print(param.Describe())
		os.Exit(0)
	}
	if f.ConfigFile != "" {
		data, err := os.ReadFile(f.ConfigFile)
		if err != nil {
			return fmt.Errorf("-config: %w", err)
		}
		snap, err := param.ParseSnapshot(data)
		if err != nil {
			return fmt.Errorf("-config %s: %w", f.ConfigFile, err)
		}
		// Surface unknown paths and bad values now, not mid-sweep.
		if _, err := param.ApplySnapshot(machine.Base(1, true), snap); err != nil {
			return fmt.Errorf("-config %s: %w", f.ConfigFile, err)
		}
		f.snapshot = &snap
	}
	f.settings = f.settings[:0]
	// -sample translates to sampling.* parameter settings before the
	// explicit -set overrides, so the schedule flows through Apply into
	// every config the command builds — and therefore into run
	// fingerprints — while a -set sampling.x=y still wins.
	sampleSets, err := f.sampleSettings()
	if err != nil {
		return err
	}
	f.settings = append(f.settings, sampleSets...)
	for _, raw := range f.sets {
		s, err := param.ParseSetting(raw)
		if err != nil {
			return fmt.Errorf("-set %s: %w", raw, err)
		}
		if err := s.Validate(); err != nil {
			return fmt.Errorf("-set %s: %w", raw, err)
		}
		f.settings = append(f.settings, s)
	}
	return f.startProfiling()
}

// startProfiling opens the -cpuprofile and -trace sinks. The matching
// Close writes -memprofile and stops both; mains defer it right after
// Finish.
func (f *Flags) startProfiling() error {
	if f.CPUProfile != "" {
		fh, err := os.Create(f.CPUProfile)
		if err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(fh); err != nil {
			fh.Close()
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		f.cpuFile = fh
	}
	if f.TraceFile != "" {
		fh, err := os.Create(f.TraceFile)
		if err != nil {
			f.stopCPUProfile()
			return fmt.Errorf("-trace: %w", err)
		}
		if err := trace.Start(fh); err != nil {
			fh.Close()
			f.stopCPUProfile()
			return fmt.Errorf("-trace: %w", err)
		}
		f.traceFile = fh
	}
	return nil
}

func (f *Flags) stopCPUProfile() {
	if f.cpuFile == nil {
		return
	}
	pprof.StopCPUProfile()
	f.cpuFile.Close()
	f.cpuFile = nil
}

// Close finalizes the run artifacts: it writes the -metrics-out report,
// stops the CPU profile and execution trace, and writes the -memprofile
// heap snapshot (after a GC, so it reflects live steady-state memory,
// the figure the allocation regression tests pin). Safe to call when no
// artifact flag was given. Error paths that exit through log.Fatal skip
// it, which loses at most a partial artifact.
func (f *Flags) Close() error {
	metricsErr := f.writeMetrics()
	f.stopCPUProfile()
	if f.traceFile != nil {
		trace.Stop()
		f.traceFile.Close()
		f.traceFile = nil
	}
	if f.MemProfile != "" {
		fh, err := os.Create(f.MemProfile)
		if err != nil {
			return fmt.Errorf("-memprofile: %w", err)
		}
		defer fh.Close()
		runtime.GC()
		if err := pprof.Lookup("allocs").WriteTo(fh, 0); err != nil {
			return fmt.Errorf("-memprofile: %w", err)
		}
	}
	return metricsErr
}

// HasOverrides reports whether -config or -set supplied any parameter
// overrides.
func (f *Flags) HasOverrides() bool {
	return f.snapshot != nil || len(f.settings) > 0
}

// Apply returns cfg with the -config snapshot and then every -set
// override applied, in order, plus the -shards execution knob (which is
// not a registry parameter: it never changes results or fingerprints).
// It is a no-op without overrides, so it is safe to install
// unconditionally as a Session override hook.
func (f *Flags) Apply(cfg machine.Config) (machine.Config, error) {
	// -shards 1 (the default) is left unwritten: serial is already the
	// zero value's behavior, and skipping the write keeps Apply an exact
	// identity when no flag was given.
	if f.Shards > 1 {
		cfg.Shards = f.Shards
	}
	var err error
	if f.snapshot != nil {
		cfg, err = param.ApplySnapshot(cfg, *f.snapshot)
		if err != nil {
			return cfg, err
		}
	}
	return param.ApplySettings(cfg, f.settings)
}

// Pool builds the runner pool and memoizing store the flags describe.
// When -metrics-out is set, a metrics collector is attached to the pool
// and its report is written by Close.
func (f *Flags) Pool() (*runner.Pool, *runner.Store, error) {
	store, err := runner.NewBoundedStore(f.CacheDir, int64(f.CacheMax))
	if err != nil {
		return nil, nil, fmt.Errorf("cache: %w", err)
	}
	return f.PoolWith(store), store, nil
}

// PoolWith is Pool over an explicit memo backend — the seam flashd
// uses to run the pool against a shared on-disk or distributed store
// instead of the default in-process one. The -metrics-out wiring is
// identical to Pool's.
func (f *Flags) PoolWith(b runner.Backend) *runner.Pool {
	pool := runner.New(f.Jobs, b)
	if f.MetricsOut != "" {
		f.collector = obs.NewCollector()
		pool.SetMetrics(f.collector)
	}
	f.pool = pool
	return pool
}

// writeMetrics writes the -metrics-out report. A no-op when the flag is
// unset or no pool was ever built (e.g. the command failed during flag
// validation).
func (f *Flags) writeMetrics() error {
	if f.MetricsOut == "" || f.collector == nil {
		return nil
	}
	rep := f.collector.Snapshot()
	if f.pool != nil {
		rep.Runner = f.pool.Stats().Counters()
	}
	if err := rep.WriteFile(f.MetricsOut); err != nil {
		return fmt.Errorf("-metrics-out: %w", err)
	}
	return nil
}

// Settings returns the validated -set overrides (file overrides are in
// the snapshot, retrievable via Apply).
func (f *Flags) Settings() []param.Setting { return f.settings }
