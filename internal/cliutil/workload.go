package cliutil

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"flashsim/internal/emitter"
	"flashsim/internal/workload"
)

// Canonical help text for the shared workload flags.
const (
	appUsage           = "workload name from the registry (see -list-workloads)"
	paramsUsage        = "set one workload parameter as key=value (repeatable; see -list-workloads)"
	fullUsage          = "full (1/16-paper) problem sizes; -full=false selects the quick sizes"
	listWorkloadsUsage = "print the workload registry and exit"
)

// WorkloadFlags is the workload-selection flag block shared by the
// front ends that build a program: -app names a registry entry, -p
// assigns its parameters, -full switches between the full and quick
// default sizes.
type WorkloadFlags struct {
	App  string
	Full bool

	listWorkloads bool
	params        stringList
}

// RegisterWorkload installs the workload flags on the process flag set.
func RegisterWorkload() *WorkloadFlags { return RegisterWorkloadOn(flag.CommandLine) }

// RegisterWorkloadOn installs the workload flags on fs.
func RegisterWorkloadOn(fs *flag.FlagSet) *WorkloadFlags {
	w := &WorkloadFlags{}
	fs.StringVar(&w.App, "app", "fft", appUsage)
	fs.Var(&w.params, "p", paramsUsage)
	fs.BoolVar(&w.Full, "full", true, fullUsage)
	fs.BoolVar(&w.listWorkloads, "list-workloads", false, listWorkloadsUsage)
	return w
}

// Finish handles -list-workloads and validates -app/-p against the
// registry, so bad selections fail before any simulation starts.
func (w *WorkloadFlags) Finish() error {
	if w.listWorkloads {
		fmt.Print(workload.Describe())
		os.Exit(0)
	}
	_, _, err := w.Resolve()
	return err
}

// Resolve looks the selection up in the registry and validates the -p
// assignments against its schema.
func (w *WorkloadFlags) Resolve() (*workload.Definition, workload.Values, error) {
	def, err := workload.Lookup(w.App)
	if err != nil {
		return nil, nil, err
	}
	raw, err := workload.ParseAssignments(w.params)
	if err != nil {
		return nil, nil, err
	}
	vals, err := def.Resolve(raw, !w.Full)
	if err != nil {
		return nil, nil, err
	}
	return def, vals, nil
}

// Program builds the selected program at the given thread count, plus
// the canonical source spec (every parameter resolved) recorded in
// trace containers.
func (w *WorkloadFlags) Program(procs int) (emitter.Program, json.RawMessage, error) {
	def, vals, err := w.Resolve()
	if err != nil {
		return emitter.Program{}, nil, err
	}
	src, err := workload.EncodeSpec(def.Name, vals)
	if err != nil {
		return emitter.Program{}, nil, err
	}
	return def.Build(vals, procs), src, nil
}
