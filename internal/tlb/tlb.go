// Package tlb models the R10000 translation lookaside buffer and the
// cost of its software refill handler.
//
// The paper identifies two distinct TLB modeling failures. Solo omits
// the TLB entirely ("the omission of the TLB ... was more than a
// second-order performance effect"). SimOS models the TLB but not the
// handler cost correctly: the real R10000 refill handler is 14
// instructions yet takes 65 cycles even when everything hits in the
// cache — exception entry/exit overhead, serial dependences, and
// pipeline-flushing coprocessor-0 instructions — while Mipsy charged 25
// cycles and MXS 35. The handler cost here is therefore an explicit,
// tunable parameter: the Calibrator fits it against the reference
// machine's TLB microbenchmark, reproducing the paper's tuning step.
package tlb

// Config describes a TLB model.
type Config struct {
	// Entries is the number of TLB entries (R10000: 64).
	Entries int
	// HandlerCycles is the charged cost of a refill, in processor
	// cycles. Real hardware: 65. Untuned Mipsy: 25. Untuned MXS: 35.
	HandlerCycles uint32
	// HandlerInstrs is the handler length in instructions (14 on the
	// R10000); informational, used for instruction accounting.
	HandlerInstrs uint32
}

// R10000 returns the hardware TLB configuration with the true handler
// cost.
func R10000() Config { return Config{Entries: 64, HandlerCycles: 65, HandlerInstrs: 14} }

// TLB is a fully associative TLB with pseudo-LRU replacement.
type TLB struct {
	cfg     Config
	entries []uint64 // virtual page numbers; index order = recency
	present map[uint64]int
	hits    uint64
	misses  uint64
}

// New creates an empty TLB.
func New(cfg Config) *TLB {
	if cfg.Entries <= 0 {
		panic("tlb: Entries must be positive")
	}
	return &TLB{
		cfg:     cfg,
		entries: make([]uint64, 0, cfg.Entries),
		present: make(map[uint64]int, cfg.Entries),
	}
}

// Config returns the TLB's configuration.
func (t *TLB) Config() Config { return t.cfg }

// Access looks up virtual page vp, refilling on a miss. It reports
// whether the access hit.
func (t *TLB) Access(vp uint64) bool {
	if i, ok := t.present[vp]; ok {
		t.hits++
		t.touch(i)
		return true
	}
	t.misses++
	t.insert(vp)
	return false
}

// Probe reports whether vp is resident without updating any state.
func (t *TLB) Probe(vp uint64) bool {
	_, ok := t.present[vp]
	return ok
}

// Invalidate removes vp if resident (e.g. on page remap), preserving
// the recency order of the remaining entries.
func (t *TLB) Invalidate(vp uint64) {
	i, ok := t.present[vp]
	if !ok {
		return
	}
	copy(t.entries[i:], t.entries[i+1:])
	t.entries = t.entries[:len(t.entries)-1]
	delete(t.present, vp)
	for j := i; j < len(t.entries); j++ {
		t.present[t.entries[j]] = j
	}
}

// Flush empties the TLB (context switch).
func (t *TLB) Flush() {
	t.entries = t.entries[:0]
	for k := range t.present {
		delete(t.present, k)
	}
}

// touch moves entry i to the most-recently-used position, preserving
// the recency order of everything else (index 0 stays least recent).
func (t *TLB) touch(i int) {
	last := len(t.entries) - 1
	if i == last {
		return
	}
	vp := t.entries[i]
	copy(t.entries[i:], t.entries[i+1:])
	t.entries[last] = vp
	for j := i; j <= last; j++ {
		t.present[t.entries[j]] = j
	}
}

// insert adds vp, evicting the least recently used entry if full.
func (t *TLB) insert(vp uint64) {
	if len(t.entries) == t.cfg.Entries {
		victim := t.entries[0]
		copy(t.entries, t.entries[1:])
		t.entries = t.entries[:len(t.entries)-1]
		delete(t.present, victim)
		for j, e := range t.entries {
			t.present[e] = j
		}
	}
	t.entries = append(t.entries, vp)
	t.present[vp] = len(t.entries) - 1
}

// Hits returns the number of TLB hits.
func (t *TLB) Hits() uint64 { return t.hits }

// Misses returns the number of TLB misses.
func (t *TLB) Misses() uint64 { return t.misses }

// Resident returns the number of valid entries.
func (t *TLB) Resident() int { return len(t.entries) }
