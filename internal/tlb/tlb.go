// Package tlb models the R10000 translation lookaside buffer and the
// cost of its software refill handler.
//
// The paper identifies two distinct TLB modeling failures. Solo omits
// the TLB entirely ("the omission of the TLB ... was more than a
// second-order performance effect"). SimOS models the TLB but not the
// handler cost correctly: the real R10000 refill handler is 14
// instructions yet takes 65 cycles even when everything hits in the
// cache — exception entry/exit overhead, serial dependences, and
// pipeline-flushing coprocessor-0 instructions — while Mipsy charged 25
// cycles and MXS 35. The handler cost here is therefore an explicit,
// tunable parameter: the Calibrator fits it against the reference
// machine's TLB microbenchmark, reproducing the paper's tuning step.
package tlb

import "flashsim/internal/obs"

// Config describes a TLB model.
type Config struct {
	// Entries is the number of TLB entries (R10000: 64).
	Entries int
	// HandlerCycles is the charged cost of a refill, in processor
	// cycles. Real hardware: 65. Untuned Mipsy: 25. Untuned MXS: 35.
	HandlerCycles uint32
	// HandlerInstrs is the handler length in instructions (14 on the
	// R10000); informational, used for instruction accounting.
	HandlerInstrs uint32
}

// R10000 returns the hardware TLB configuration with the true handler
// cost.
func R10000() Config { return Config{Entries: 64, HandlerCycles: 65, HandlerInstrs: 14} }

// TLB is a fully associative TLB with exact LRU replacement.
//
// It sits on the critical path of every simulated memory access, so
// recency is tracked with per-slot stamps from a monotonic clock —
// a hit is one stamp store, a refill scans the (at most 64-entry)
// arrays for the minimum stamp. The hit/miss/eviction sequence is
// identical to a recency-ordered list; only the bookkeeping differs.
type TLB struct {
	cfg    Config
	vps    []uint64 // resident virtual page numbers (unordered)
	stamps []uint64 // per-slot recency; larger = more recent
	clock  uint64
	mru    int // slot of the last hit/refill, -1 when unknown
	stats  obs.TLBCounters
}

// New creates an empty TLB.
func New(cfg Config) *TLB {
	if cfg.Entries <= 0 {
		panic("tlb: Entries must be positive")
	}
	return &TLB{
		cfg:    cfg,
		vps:    make([]uint64, 0, cfg.Entries),
		stamps: make([]uint64, 0, cfg.Entries),
		mru:    -1,
	}
}

// Config returns the TLB's configuration.
func (t *TLB) Config() Config { return t.cfg }

// Access looks up virtual page vp, refilling on a miss. It reports
// whether the access hit. Consecutive accesses to one page are the
// common case, so the slot of the previous hit is checked before the
// full scan; the hit/miss/eviction sequence is unchanged.
func (t *TLB) Access(vp uint64) bool {
	if m := t.mru; m >= 0 && t.vps[m] == vp {
		t.stats.Hits++
		t.clock++
		t.stamps[m] = t.clock
		return true
	}
	if i := t.lookup(vp); i >= 0 {
		if i > 0 {
			// Move-to-front so alternating hot pages stay at the head
			// of the scan. Slot order is not semantically meaningful —
			// the stamps alone decide LRU eviction.
			t.vps[0], t.vps[i] = t.vps[i], t.vps[0]
			t.stamps[0], t.stamps[i] = t.stamps[i], t.stamps[0]
			i = 0
		}
		t.stats.Hits++
		t.clock++
		t.stamps[i] = t.clock
		t.mru = i
		return true
	}
	t.stats.Misses++
	t.insert(vp)
	return false
}

// lookup returns vp's slot, or -1. The arrays span at most eight cache
// lines, so a linear scan beats hashing here.
func (t *TLB) lookup(vp uint64) int {
	for i, e := range t.vps {
		if e == vp {
			return i
		}
	}
	return -1
}

// Probe reports whether vp is resident without updating any state.
func (t *TLB) Probe(vp uint64) bool { return t.lookup(vp) >= 0 }

// Invalidate removes vp if resident (e.g. on page remap).
func (t *TLB) Invalidate(vp uint64) {
	i := t.lookup(vp)
	if i < 0 {
		return
	}
	last := len(t.vps) - 1
	t.vps[i] = t.vps[last]
	t.stamps[i] = t.stamps[last]
	t.vps = t.vps[:last]
	t.stamps = t.stamps[:last]
	t.mru = -1
}

// Flush empties the TLB (context switch).
func (t *TLB) Flush() {
	t.vps = t.vps[:0]
	t.stamps = t.stamps[:0]
	t.mru = -1
}

// insert adds vp, evicting the least recently used entry if full.
func (t *TLB) insert(vp uint64) {
	t.clock++
	if len(t.vps) == t.cfg.Entries {
		t.stats.Evictions++
		victim := 0
		for i, s := range t.stamps {
			if s < t.stamps[victim] {
				victim = i
			}
		}
		t.vps[victim] = vp
		t.stamps[victim] = t.clock
		t.mru = victim
		return
	}
	t.vps = append(t.vps, vp)
	t.stamps = append(t.stamps, t.clock)
	t.mru = len(t.vps) - 1
}

// Hits returns the number of TLB hits.
func (t *TLB) Hits() uint64 { return t.stats.Hits }

// Misses returns the number of TLB misses.
func (t *TLB) Misses() uint64 { return t.stats.Misses }

// Evictions returns the number of LRU evictions (misses that displaced
// a resident entry).
func (t *TLB) Evictions() uint64 { return t.stats.Evictions }

// Stats returns the accumulated counters.
func (t *TLB) Stats() obs.TLBCounters { return t.stats }

// Resident returns the number of valid entries.
func (t *TLB) Resident() int { return len(t.vps) }
