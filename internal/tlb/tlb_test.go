package tlb

import (
	"testing"
	"testing/quick"
)

func small() *TLB { return New(Config{Entries: 4, HandlerCycles: 65}) }

func TestHitAfterMiss(t *testing.T) {
	tl := small()
	if tl.Access(1) {
		t.Fatal("first access should miss")
	}
	if !tl.Access(1) {
		t.Fatal("second access should hit")
	}
	if tl.Hits() != 1 || tl.Misses() != 1 {
		t.Fatalf("hits=%d misses=%d", tl.Hits(), tl.Misses())
	}
}

func TestCapacityEviction(t *testing.T) {
	tl := small()
	for vp := uint64(0); vp < 4; vp++ {
		tl.Access(vp)
	}
	tl.Access(4) // evicts LRU = 0
	if tl.Probe(0) {
		t.Fatal("page 0 should have been evicted")
	}
	for vp := uint64(1); vp <= 4; vp++ {
		if !tl.Probe(vp) {
			t.Fatalf("page %d should be resident", vp)
		}
	}
}

func TestLRUTouchOnHit(t *testing.T) {
	tl := small()
	for vp := uint64(0); vp < 4; vp++ {
		tl.Access(vp)
	}
	tl.Access(0) // refresh 0; LRU is now 1
	tl.Access(9)
	if tl.Probe(1) {
		t.Fatal("page 1 should have been evicted")
	}
	if !tl.Probe(0) {
		t.Fatal("page 0 was refreshed and must stay")
	}
}

func TestThrashingWorkingSet(t *testing.T) {
	// Cycling over entries+1 pages with LRU must miss every time —
	// the FFT/Radix pathology.
	tl := small()
	for round := 0; round < 3; round++ {
		for vp := uint64(0); vp < 5; vp++ {
			tl.Access(vp)
		}
	}
	if tl.Hits() != 0 {
		t.Fatalf("LRU cycling should never hit: hits=%d", tl.Hits())
	}
}

func TestInvalidate(t *testing.T) {
	tl := small()
	tl.Access(1)
	tl.Access(2)
	tl.Invalidate(1)
	if tl.Probe(1) {
		t.Fatal("invalidated page resident")
	}
	if !tl.Probe(2) {
		t.Fatal("other page lost")
	}
	tl.Invalidate(99) // absent: no-op
	if tl.Resident() != 1 {
		t.Fatalf("resident=%d", tl.Resident())
	}
}

func TestFlush(t *testing.T) {
	tl := small()
	for vp := uint64(0); vp < 4; vp++ {
		tl.Access(vp)
	}
	tl.Flush()
	if tl.Resident() != 0 {
		t.Fatal("flush left entries")
	}
	if tl.Access(0) {
		t.Fatal("post-flush access should miss")
	}
}

func TestProbeDoesNotPerturb(t *testing.T) {
	tl := small()
	tl.Access(1)
	h, m := tl.Hits(), tl.Misses()
	tl.Probe(1)
	tl.Probe(2)
	if tl.Hits() != h || tl.Misses() != m {
		t.Fatal("probe changed counters")
	}
}

func TestR10000Config(t *testing.T) {
	c := R10000()
	if c.Entries != 64 || c.HandlerCycles != 65 || c.HandlerInstrs != 14 {
		t.Fatalf("R10000 config %+v", c)
	}
}

func TestNewRejectsZeroEntries(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{})
}

// TestResidencyBoundProperty: residency never exceeds capacity, and a
// just-accessed page is always resident.
func TestResidencyBoundProperty(t *testing.T) {
	f := func(pages []uint8) bool {
		tl := New(Config{Entries: 8})
		for _, p := range pages {
			tl.Access(uint64(p))
			if tl.Resident() > 8 {
				return false
			}
			if !tl.Probe(uint64(p)) {
				return false
			}
		}
		return tl.Hits()+tl.Misses() == uint64(len(pages))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
