package apps_test

import (
	"testing"

	"flashsim/internal/apps"
	"flashsim/internal/emitter"
	"flashsim/internal/isa"
	"flashsim/internal/machine"
	"flashsim/internal/memsys"
	"flashsim/internal/osmodel"
)

// quickCfg returns a small, fast machine for app integration tests.
func quickCfg(procs int, kind osmodel.Kind) machine.Config {
	cfg := machine.Base(procs, true)
	cfg.Name = "apps-test"
	cfg.CPU = machine.CPUMipsy
	cfg.ClockMHz = 150
	if kind == osmodel.SimOS {
		cfg.OS = osmodel.DefaultSimOS()
	} else {
		cfg.OS = osmodel.DefaultSolo()
	}
	cfg.Mem = machine.MemFlashLite
	cfg.FlashTiming = memsys.TrueTiming()
	return cfg
}

// countOps tallies instruction kinds in a program's streams. Readers
// are drained concurrently: the emitter threads synchronize at real
// barriers, so draining them one after another would deadlock on
// channel backpressure.
func countOps(t *testing.T, prog emitter.Program) map[isa.Op]uint64 {
	t.Helper()
	_, streams := prog.Launch()
	defer streams.Abort()
	partial := make([]map[isa.Op]uint64, len(streams.Readers))
	done := make(chan int)
	for i, r := range streams.Readers {
		i, r := i, r
		partial[i] = make(map[isa.Op]uint64)
		go func() {
			defer func() { done <- i }()
			for {
				in, ok := r.Next()
				if !ok {
					return
				}
				partial[i][in.Op]++
			}
		}()
	}
	for range streams.Readers {
		<-done
	}
	streams.Wait()
	if err := streams.Err(); err != nil {
		t.Fatal(err)
	}
	counts := make(map[isa.Op]uint64)
	for _, p := range partial {
		for op, n := range p {
			counts[op] += n
		}
	}
	return counts
}

func TestFFTStreamShape(t *testing.T) {
	c := countOps(t, apps.FFT(apps.FFTOpts{LogN: 10, Procs: 2, Prefetch: true}))
	if c[isa.FPMul] == 0 || c[isa.FPAdd] == 0 {
		t.Fatal("FFT emits no floating point")
	}
	if c[isa.FPAdd] != 2*c[isa.FPMul] {
		t.Fatalf("butterfly shape: fpadd=%d fpmul=%d", c[isa.FPAdd], c[isa.FPMul])
	}
	if c[isa.Prefetch] == 0 {
		t.Fatal("prefetching enabled but none emitted")
	}
	if c[isa.Barrier] == 0 {
		t.Fatal("no barriers")
	}
}

func TestFFTDeterministicStream(t *testing.T) {
	a := countOps(t, apps.FFT(apps.FFTOpts{LogN: 10, Procs: 2}))
	b := countOps(t, apps.FFT(apps.FFTOpts{LogN: 10, Procs: 2}))
	for op, n := range a {
		if b[op] != n {
			t.Fatalf("op %v: %d vs %d", op, n, b[op])
		}
	}
}

func TestFFTBlockingVariantsSameWork(t *testing.T) {
	cb := countOps(t, apps.FFT(apps.FFTOpts{LogN: 10, Procs: 1}))
	tb := countOps(t, apps.FFT(apps.FFTOpts{LogN: 10, Procs: 1, TLBBlocked: true}))
	// The blocking fix reorders accesses but does not change the work.
	for _, op := range []isa.Op{isa.Load, isa.Store, isa.FPAdd, isa.FPMul} {
		if cb[op] != tb[op] {
			t.Fatalf("op %v differs across blocking: %d vs %d", op, cb[op], tb[op])
		}
	}
}

func TestFFTTLBBlockingReducesMisses(t *testing.T) {
	// On a SimOS machine, the TLB-blocked transpose must take far
	// fewer TLB misses. LogN=16 so the column span exceeds the TLB.
	if testing.Short() {
		t.Skip("full-size FFT")
	}
	cfg := quickCfg(1, osmodel.SimOS)
	resCB, err := machine.Run(cfg, apps.FFT(apps.FFTOpts{LogN: 16, Procs: 1}))
	if err != nil {
		t.Fatal(err)
	}
	resTB, err := machine.Run(cfg, apps.FFT(apps.FFTOpts{LogN: 16, Procs: 1, TLBBlocked: true}))
	if err != nil {
		t.Fatal(err)
	}
	if resTB.TLBMisses*2 > resCB.TLBMisses {
		t.Fatalf("TLB blocking ineffective: %d vs %d misses", resTB.TLBMisses, resCB.TLBMisses)
	}
	if resTB.Exec >= resCB.Exec {
		t.Fatalf("TLB blocking did not speed up: %d vs %d", resTB.Exec, resCB.Exec)
	}
}

func TestRadixSortsOnEveryConfig(t *testing.T) {
	for _, procs := range []int{1, 3, 4} {
		for _, radix := range []int{32, 256} {
			prog := apps.Radix(apps.RadixOpts{Keys: 1 << 12, Radix: radix, Procs: procs, Verify: true})
			if _, err := machine.Run(quickCfg(procs, osmodel.Solo), prog); err != nil {
				t.Fatalf("radix=%d procs=%d: %v", radix, procs, err)
			}
		}
	}
}

func TestRadixEmitsDividesAndMultiplies(t *testing.T) {
	c := countOps(t, apps.Radix(apps.RadixOpts{Keys: 1 << 10, Radix: 32, Procs: 1}))
	if c[isa.IntDiv] == 0 || c[isa.IntMul] == 0 {
		t.Fatalf("radix must emit high-latency integer ops: div=%d mul=%d", c[isa.IntDiv], c[isa.IntMul])
	}
}

func TestRadixPassCount(t *testing.T) {
	// KeyBits=20: radix 256 -> 3 passes, radix 32 -> 4 passes; divide
	// count is one per key per pass (histogram phase).
	c256 := countOps(t, apps.Radix(apps.RadixOpts{Keys: 1 << 10, Radix: 256, Procs: 1}))
	c32 := countOps(t, apps.Radix(apps.RadixOpts{Keys: 1 << 10, Radix: 32, Procs: 1}))
	if c256[isa.IntDiv] != 3*(1<<10) {
		t.Fatalf("radix 256 divides = %d, want 3 per key", c256[isa.IntDiv])
	}
	if c32[isa.IntDiv] != 4*(1<<10) {
		t.Fatalf("radix 32 divides = %d, want 4 per key", c32[isa.IntDiv])
	}
}

func TestRadixUnplacedHomesEverythingOnNode0(t *testing.T) {
	prog := apps.Radix(apps.RadixOpts{Keys: 1 << 12, Radix: 32, Procs: 4, Unplaced: true})
	space, streams := prog.Launch()
	streams.Abort()
	for _, r := range space.Regions() {
		if r.Name == "keys" || r.Name == "keys2" {
			if r.Place.Kind != emitter.PlaceOnNode || r.Place.Node != 0 {
				t.Fatalf("region %s placement %+v", r.Name, r.Place)
			}
		}
	}
}

func TestLURunsAndEmitsFP(t *testing.T) {
	c := countOps(t, apps.LU(apps.LUOpts{N: 64, Block: 16, Procs: 2}))
	if c[isa.FPMul] == 0 || c[isa.FPDiv] == 0 {
		t.Fatalf("LU fp mix: %v", c)
	}
	prog := apps.LU(apps.LUOpts{N: 64, Block: 16, Procs: 2})
	if _, err := machine.Run(quickCfg(2, osmodel.SimOS), prog); err != nil {
		t.Fatal(err)
	}
}

func TestLURoundsDimensionToBlock(t *testing.T) {
	c1 := countOps(t, apps.LU(apps.LUOpts{N: 60, Block: 16, Procs: 1}))
	c2 := countOps(t, apps.LU(apps.LUOpts{N: 64, Block: 16, Procs: 1}))
	if c1[isa.FPMul] != c2[isa.FPMul] {
		t.Fatalf("N=60 should round to 64: %d vs %d", c1[isa.FPMul], c2[isa.FPMul])
	}
}

func TestOceanRunsOnSoloAndSimOS(t *testing.T) {
	for _, kind := range []osmodel.Kind{osmodel.Solo, osmodel.SimOS} {
		prog := apps.Ocean(apps.OceanOpts{N: 32, Grids: 6, Iters: 1, Procs: 2})
		if _, err := machine.Run(quickCfg(2, kind), prog); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
	}
}

func TestOceanEmitsLocksAndDivides(t *testing.T) {
	c := countOps(t, apps.Ocean(apps.OceanOpts{N: 16, Grids: 6, Iters: 2, Procs: 2}))
	if c[isa.Lock] == 0 || c[isa.Unlock] == 0 {
		t.Fatal("ocean must use the residual lock")
	}
	if c[isa.FPDiv] == 0 {
		t.Fatal("ocean must emit high-latency FP divides")
	}
	if c[isa.Lock] != c[isa.Unlock] {
		t.Fatalf("lock/unlock imbalance: %d vs %d", c[isa.Lock], c[isa.Unlock])
	}
}

func TestCacheMgmtEmitsCacheOps(t *testing.T) {
	c := countOps(t, apps.CacheMgmt(apps.CacheMgmtOpts{Lines: 32, Rounds: 2, Procs: 1}))
	if c[isa.CacheOp] != 64 {
		t.Fatalf("cache ops %d, want 64", c[isa.CacheOp])
	}
	prog := apps.CacheMgmt(apps.CacheMgmtOpts{Lines: 32, Rounds: 2, Procs: 2})
	if _, err := machine.Run(quickCfg(2, osmodel.SimOS), prog); err != nil {
		t.Fatal(err)
	}
}

func TestSoloOceanConflictsExceedSimOS(t *testing.T) {
	// The §3.1.2 page-coloring effect: Solo's allocator gives
	// uniprocessor Ocean a much higher L2 miss rate than IRIX
	// coloring. Needs full-size grids so color phases matter.
	if testing.Short() {
		t.Skip("full-size Ocean")
	}
	prog := func() emitter.Program {
		return apps.Ocean(apps.OceanOpts{N: 128, Grids: 14, Iters: 2, Procs: 1})
	}
	solo, err := machine.Run(quickCfg(1, osmodel.Solo), prog())
	if err != nil {
		t.Fatal(err)
	}
	simos, err := machine.Run(quickCfg(1, osmodel.SimOS), prog())
	if err != nil {
		t.Fatal(err)
	}
	if solo.L2MissRate() < 2*simos.L2MissRate() {
		t.Fatalf("Solo L2 miss rate %.2f%% should far exceed SimOS %.2f%%",
			100*solo.L2MissRate(), 100*simos.L2MissRate())
	}
}
