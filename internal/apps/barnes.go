package apps

import (
	"fmt"

	"flashsim/internal/emitter"
)

// BarnesOpts parameterizes the Barnes-Hut n-body kernel.
type BarnesOpts struct {
	// Bodies is the particle count (default 1024; SPLASH-2's 16K
	// bodies scaled by the study's 1/16 rule).
	Bodies int
	// Steps is the number of time steps (default 4).
	Steps int
	// ThetaPct is the opening angle threshold as a percentage
	// (default 50, i.e. theta = 0.5): a cell whose size/distance ratio
	// is below theta is approximated by its center of mass instead of
	// being opened.
	ThetaPct int
	// Procs is the thread count.
	Procs int
}

func (o *BarnesOpts) norm() {
	if o.Bodies == 0 {
		o.Bodies = 1024
	}
	if o.Steps == 0 {
		o.Steps = 4
	}
	if o.ThetaPct == 0 {
		o.ThetaPct = 50
	}
	if o.Procs == 0 {
		o.Procs = 1
	}
}

const (
	bodyBytes = 64  // position, velocity, mass per body
	cellBytes = 64  // children pointers, center of mass, total mass
	bhLocks   = 32  // hashed cell-insertion locks
	bhLockID  = 128 // lock id base (disjoint from other app lock ids)
)

// bhCell is one octree node of the Go-side oracle tree.
type bhCell struct {
	mid  [3]float64 // spatial center
	half float64    // half-width
	kids [8]int     // child cell index, -1 = empty
	body int        // body index when leaf, -1 otherwise
	com  [3]float64 // center of mass
	mass float64
}

// bhTree is the deterministic octree rebuilt between steps. The tree is
// an oracle: its shape decides which cell addresses the threads emit,
// but the structure itself lives outside the simulated address space's
// data (only its cell slots are backed by the "tree" region).
type bhTree struct {
	cells []bhCell
}

func (t *bhTree) newCell(mid [3]float64, half float64) int {
	c := bhCell{mid: mid, half: half, body: -1}
	for i := range c.kids {
		c.kids[i] = -1
	}
	t.cells = append(t.cells, c)
	return len(t.cells) - 1
}

// octant returns which child octant of cell c position p falls in.
func (t *bhTree) octant(c int, p [3]float64) int {
	o := 0
	for d := 0; d < 3; d++ {
		if p[d] >= t.cells[c].mid[d] {
			o |= 1 << d
		}
	}
	return o
}

func (t *bhTree) childMid(c, o int) ([3]float64, float64) {
	half := t.cells[c].half / 2
	mid := t.cells[c].mid
	for d := 0; d < 3; d++ {
		if o&(1<<d) != 0 {
			mid[d] += half
		} else {
			mid[d] -= half
		}
	}
	return mid, half
}

// insert adds body b at position p below cell c (classic Barnes-Hut:
// one body per leaf, split on collision).
func (t *bhTree) insert(c, b int, pos [][3]float64) {
	for {
		cell := &t.cells[c]
		if cell.body >= 0 {
			// Occupied leaf: push the resident body down, keep going.
			old := cell.body
			cell.body = -1
			if t.cells[c].half < 1e-12 {
				// Degenerate coincident positions: drop into octant 0.
				cell.body = old
				return
			}
			oo := t.octant(c, pos[old])
			mid, half := t.childMid(c, oo)
			k := t.newCell(mid, half)
			t.cells[k].body = old
			t.cells[c].kids[oo] = k
		}
		o := t.octant(c, pos[b])
		if t.cells[c].kids[o] < 0 {
			mid, half := t.childMid(c, o)
			k := t.newCell(mid, half)
			t.cells[k].body = b
			t.cells[c].kids[o] = k
			return
		}
		c = t.cells[c].kids[o]
	}
}

// summarize computes centers of mass bottom-up (post-order).
func (t *bhTree) summarize(c int, pos [][3]float64) (com [3]float64, mass float64) {
	cell := &t.cells[c]
	if cell.body >= 0 {
		cell.com = pos[cell.body]
		cell.mass = 1
		return cell.com, cell.mass
	}
	for _, k := range cell.kids {
		if k < 0 {
			continue
		}
		kc, km := t.summarize(k, pos)
		for d := 0; d < 3; d++ {
			com[d] += kc[d] * km
		}
		mass += km
	}
	if mass > 0 {
		for d := 0; d < 3; d++ {
			com[d] /= mass
		}
	}
	cell.com, cell.mass = com, mass
	return com, mass
}

// path returns the cell indices from the root to body b's leaf.
func (t *bhTree) path(b int, pos [][3]float64, out []int) []int {
	c := 0
	for {
		out = append(out, c)
		cell := &t.cells[c]
		if cell.body == b {
			return out
		}
		k := cell.kids[t.octant(c, pos[b])]
		if k < 0 {
			return out
		}
		c = k
	}
}

func buildBH(pos [][3]float64) *bhTree {
	t := &bhTree{cells: make([]bhCell, 0, 2*len(pos)+8)}
	t.newCell([3]float64{0.5, 0.5, 0.5}, 0.5)
	for b := range pos {
		if b == 0 {
			t.cells[0].body = 0
			continue
		}
		t.insert(0, b, pos)
	}
	t.summarize(0, pos)
	return t
}

type barnesShared struct {
	o      BarnesOpts
	pos    [][3]float64
	vel    [][3]float64
	bodies emitter.Region
	treeR  emitter.Region
	tree   *bhTree
}

// cellAddr maps a Go-side cell index onto the tree region (modulo the
// region's slot count, so unbounded tree growth cannot escape it).
func (sh *barnesShared) cellAddr(c int) uint64 {
	slots := sh.treeR.Size / cellBytes
	return sh.treeR.Base + uint64(c)%slots*cellBytes
}

func (sh *barnesShared) bodyAddr(b int) uint64 {
	return sh.bodies.Base + uint64(b)*bodyBytes
}

// Barnes returns a Barnes-Hut-style octree n-body kernel: per time
// step, every thread inserts its bodies into the shared octree (short
// pointer walks under hashed cell locks), computes forces by a
// data-dependent multipole-acceptance tree walk, and integrates its
// strip of bodies. The octree is rebuilt between steps from the
// deterministically updated positions, so the emitted streams are a
// pure function of (Bodies, Steps, ThetaPct, Procs) — the irregular,
// pointer-chasing sharing pattern the array kernels (FFT, LU, Ocean)
// never produce.
func Barnes(o BarnesOpts) emitter.Program {
	o.norm()
	theta := float64(o.ThetaPct) / 100
	return emitter.Program{
		Name:    "barnes",
		Variant: fmt.Sprintf("n=%d steps=%d", o.Bodies, o.Steps),
		Threads: o.Procs,
		Setup: func(as *emitter.AddressSpace) any {
			sh := &barnesShared{o: o}
			per := (o.Bodies + o.Procs - 1) / o.Procs
			sh.bodies = as.AllocPageAligned("bodies", uint64(o.Bodies)*bodyBytes,
				emitter.Placement{Kind: emitter.PlaceBlocked, Stride: uint64(per) * bodyBytes})
			sh.treeR = as.AllocPageAligned("tree", uint64(4*o.Bodies+64)*cellBytes,
				emitter.Placement{Kind: emitter.PlaceInterleaved})
			sh.pos = make([][3]float64, o.Bodies)
			sh.vel = make([][3]float64, o.Bodies)
			rng := uint64(0x9E3779B97F4A7C15)
			unit := func() float64 {
				rng ^= rng >> 12
				rng ^= rng << 25
				rng ^= rng >> 27
				return float64(rng*0x2545F4914F6CDD1D>>11) / float64(uint64(1)<<53)
			}
			for b := range sh.pos {
				for d := 0; d < 3; d++ {
					sh.pos[b][d] = unit()
					sh.vel[b][d] = (unit() - 0.5) * 1e-3
				}
			}
			sh.tree = buildBH(sh.pos)
			return sh
		},
		Body: func(t *emitter.Thread, shared any) {
			sh := shared.(*barnesShared)
			lo, hi := chunk(o.Bodies, t.ID, t.N)

			// First touch of the owned body strip (placement is blocked,
			// so this also warms the local pages).
			touchRegion(t, sh.bodyAddr(lo), uint64(hi-lo)*bodyBytes, bodyBytes)

			t.Barrier(emitter.BarrierStart)
			pathBuf := make([]int, 0, 64)
			acc := make([][3]float64, hi-lo)
			for step := 0; step < o.Steps; step++ {
				// Phase 1: tree construction. Each thread walks its
				// bodies' root-to-leaf paths in the (already consistent)
				// oracle tree, emitting the loads and locked insert
				// store a concurrent builder performs.
				for b := lo; b < hi; b++ {
					pathBuf = sh.tree.path(b, sh.pos, pathBuf[:0])
					ptr := t.Load(sh.bodyAddr(b), 16, emitter.None, emitter.None)
					leaf := pathBuf[len(pathBuf)-1]
					for _, c := range pathBuf {
						ptr = t.Load(sh.cellAddr(c), 8, ptr, emitter.None)
					}
					lock := bhLockID + uint32(leaf)%bhLocks
					t.Lock(lock)
					t.Store(sh.cellAddr(leaf), 16, ptr, emitter.None)
					t.Unlock(lock)
				}
				t.Barrier(barPhase)

				// Phase 2: force computation — the multipole-acceptance
				// walk. Visiting a cell loads its center of mass through
				// the pointer chain; accepted cells contribute a
				// gravity kernel's worth of floating point.
				for b := lo; b < hi; b++ {
					var a [3]float64
					p := sh.pos[b]
					ptr := t.Load(sh.bodyAddr(b), 16, emitter.None, emitter.None)
					var walk func(c int)
					walk = func(c int) {
						cell := &sh.tree.cells[c]
						if cell.mass == 0 {
							return
						}
						dx := cell.com[0] - p[0]
						dy := cell.com[1] - p[1]
						dz := cell.com[2] - p[2]
						r2 := dx*dx + dy*dy + dz*dz + 1e-9
						ptr = t.Load(sh.cellAddr(c), 16, ptr, emitter.None)
						if cell.body == b {
							return
						}
						if cell.body >= 0 || (2*cell.half)*(2*cell.half) < theta*theta*r2 {
							// Accept: p2p or cell-approximated gravity.
							d1 := t.FPMul(ptr, emitter.None) // r^2 partials
							d2 := t.FPAdd(d1, emitter.None)
							d3 := t.FPDiv(d2, emitter.None) // 1/r^3
							d4 := t.FPMul(d3, d1)
							t.FPAdd(d4, d2)
							inv := cell.mass / (r2 * sqrt(r2))
							a[0] += dx * inv
							a[1] += dy * inv
							a[2] += dz * inv
							return
						}
						for _, k := range cell.kids {
							if k >= 0 {
								walk(k)
							}
						}
					}
					walk(0)
					acc[b-lo] = a
				}
				t.Barrier(barPhase2)

				// Phase 3: integration. Owned bodies advance
				// deterministically; the Go-side state is the input to
				// the next step's tree.
				const dt = 1e-2
				for b := lo; b < hi; b++ {
					v := t.Load(sh.bodyAddr(b), 32, emitter.None, emitter.None)
					m1 := t.FPMul(v, emitter.None)
					s1 := t.FPAdd(m1, v)
					t.FPMul(s1, emitter.None)
					t.Store(sh.bodyAddr(b), 32, s1, emitter.None)
					for d := 0; d < 3; d++ {
						sh.vel[b][d] += acc[b-lo][d] * dt
						nv := sh.pos[b][d] + sh.vel[b][d]*dt
						// Reflect off the unit box to keep the octree
						// domain fixed.
						if nv < 0 {
							nv, sh.vel[b][d] = -nv, -sh.vel[b][d]
						}
						if nv > 1 {
							nv, sh.vel[b][d] = 2-nv, -sh.vel[b][d]
						}
						sh.pos[b][d] = nv
					}
				}
				t.Barrier(barPhase3)
				if t.ID == 0 {
					sh.tree = buildBH(sh.pos)
				}
				t.Barrier(barPhase4)
			}
			t.Barrier(emitter.BarrierEnd)
		},
	}
}

// sqrt is a dependency-free Newton square root (the stdlib math import
// is avoided to keep the oracle arithmetic obviously deterministic
// across platforms: only +,-,*,/ on float64).
func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	g := x
	if g > 1 {
		g = x / 2
	}
	for i := 0; i < 24; i++ {
		g = (g + x/g) / 2
	}
	return g
}
