package apps

import (
	"fmt"

	"flashsim/internal/emitter"
)

// FFTOpts parameterizes the FFT kernel.
type FFTOpts struct {
	// LogN is the log2 of the point count (must be even; default 16,
	// i.e. 64K points = 1/16 of the paper's 1M).
	LogN int
	// Procs is the thread count.
	Procs int
	// TLBBlocked selects the transpose blocking. False reproduces the
	// original SPLASH-2 recommendation (blocked for the primary data
	// cache), which takes "a TLB miss on every store during the
	// transpose phase"; true blocks the column loop so the transpose
	// write working set fits the 64-entry TLB (the paper's fix, worth
	// 14% on one processor and 16% on four).
	TLBBlocked bool
	// TLBBlockCols is the column-block width when TLBBlocked
	// (default 32).
	TLBBlockCols int
	// Prefetch enables the hand-inserted prefetches the SPLASH-2
	// binaries carry.
	Prefetch bool
}

func (o *FFTOpts) norm() {
	if o.LogN == 0 {
		o.LogN = 16
	}
	if o.LogN%2 != 0 {
		o.LogN++
	}
	if o.Procs == 0 {
		o.Procs = 1
	}
	if o.TLBBlockCols == 0 {
		o.TLBBlockCols = 32
	}
}

type fftShared struct {
	n1    int // matrix dimension (sqrt of point count)
	x     emitter.Region
	trans emitter.Region
	umain emitter.Region
}

const complexBytes = 16

// FFT returns the radix-sqrt(n) six-step FFT kernel: transpose, row
// FFTs, transpose, row FFTs, transpose, as in SPLASH-2. The data is an
// n1 x n1 matrix of complex doubles, row-partitioned across processors
// with each strip placed locally.
func FFT(o FFTOpts) emitter.Program {
	o.norm()
	n := 1 << uint(o.LogN)
	n1 := 1 << uint(o.LogN/2)
	variant := "cache-blocked"
	if o.TLBBlocked {
		variant = "tlb-blocked"
	}
	return emitter.Program{
		Name:    "fft",
		Variant: fmt.Sprintf("%s n=%d", variant, n),
		Threads: o.Procs,
		Setup: func(as *emitter.AddressSpace) any {
			sh := &fftShared{n1: n1}
			matrixBytes := uint64(n) * complexBytes
			stripe := matrixBytes / uint64(o.Procs)
			place := emitter.Placement{Kind: emitter.PlaceBlocked, Stride: stripe}
			sh.x = as.AllocPageAligned("x", matrixBytes, place)
			sh.trans = as.AllocPageAligned("trans", matrixBytes, place)
			sh.umain = as.AllocPageAligned("umain", uint64(n1)*complexBytes,
				emitter.Placement{Kind: emitter.PlaceInterleaved})
			return sh
		},
		Body: func(t *emitter.Thread, shared any) {
			sh := shared.(*fftShared)
			fftBody(t, sh, o)
		},
	}
}

func fftAddr(r emitter.Region, n1, row, col int) uint64 {
	return r.Base + uint64(row*n1+col)*complexBytes
}

func fftBody(t *emitter.Thread, sh *fftShared, o FFTOpts) {
	n1 := sh.n1
	lo, hi := chunk(n1, t.ID, t.N)

	// Initialization: touch own strips (first touch places pages) and
	// the twiddle factors.
	rowBytes := uint64(n1) * complexBytes
	touchRegion(t, sh.x.Base+uint64(lo)*rowBytes, uint64(hi-lo)*rowBytes, 128)
	touchRegion(t, sh.trans.Base+uint64(lo)*rowBytes, uint64(hi-lo)*rowBytes, 128)
	if t.ID == 0 {
		touchRegion(t, sh.umain.Base, sh.umain.Size, 128)
	}

	t.Barrier(emitter.BarrierStart)
	transpose(t, sh, o, sh.x, sh.trans, lo, hi)
	t.Barrier(barPhase)
	rowFFTs(t, sh, o, sh.trans, lo, hi)
	t.Barrier(barPhase2)
	transpose(t, sh, o, sh.trans, sh.x, lo, hi)
	t.Barrier(barPhase3)
	rowFFTs(t, sh, o, sh.x, lo, hi)
	t.Barrier(barPhase4)
	transpose(t, sh, o, sh.x, sh.trans, lo, hi)
	t.Barrier(emitter.BarrierEnd)
}

// transpose writes dst[c][r] = src[r][c] for the thread's source rows
// [lo,hi), in 8-row blocks so that the 8 stores filling one destination
// cache line are adjacent (as the SPLASH-2 code does).
//
// In the cache-blocked (original) form the column loop spans the whole
// matrix, so the destination page working set is the full column count —
// far beyond the 64-entry TLB — and every destination line costs a TLB
// refill on top of its write miss. The TLB-blocked form tiles the column
// loop (width TLBBlockCols) so the destination pages stay resident.
func transpose(t *emitter.Thread, sh *fftShared, o FFTOpts, src, dst emitter.Region, lo, hi int) {
	n1 := sh.n1
	const rowBlock = 8 // complex elements per 128-byte destination line
	emitTile := func(rb, c0, c1 int) {
		rbEnd := min(rb+rowBlock, hi)
		for c := c0; c < c1; c++ {
			if o.Prefetch && c+1 < c1 {
				t.Prefetch(fftAddr(dst, n1, c+1, rb))
			}
			var last emitter.Val
			for r := rb; r < rbEnd; r++ {
				v := t.Load(fftAddr(src, n1, r, c), complexBytes, last, emitter.None)
				t.Store(fftAddr(dst, n1, c, r), complexBytes, v, emitter.None)
				last = t.IntALU(emitter.None, emitter.None) // index arithmetic
			}
		}
	}
	if !o.TLBBlocked {
		for rb := lo; rb < hi; rb += rowBlock {
			emitTile(rb, 0, n1)
		}
		return
	}
	w := o.TLBBlockCols
	for c0 := 0; c0 < n1; c0 += w {
		c1 := min(c0+w, n1)
		for rb := lo; rb < hi; rb += rowBlock {
			emitTile(rb, c0, c1)
		}
	}
}

// rowFFTs performs an in-place iterative radix-2 FFT on each owned row.
func rowFFTs(t *emitter.Thread, sh *fftShared, o FFTOpts, m emitter.Region, lo, hi int) {
	n1 := sh.n1
	stages := log2(n1)
	for r := lo; r < hi; r++ {
		for s := 0; s < stages; s++ {
			half := 1 << uint(s)
			for k := 0; k < n1; k += 2 * half {
				for j := 0; j < half; j++ {
					i0 := k + j
					i1 := i0 + half
					if o.Prefetch && j == 0 && k+2*half < n1 {
						t.Prefetch(fftAddr(m, n1, r, k+2*half))
					}
					a := t.Load(fftAddr(m, n1, r, i0), complexBytes, emitter.None, emitter.None)
					b := t.Load(fftAddr(m, n1, r, i1), complexBytes, emitter.None, emitter.None)
					w := t.Load(sh.umain.Base+uint64(j*(n1/(2*half)))*complexBytes, complexBytes, emitter.None, emitter.None)
					bw := t.FPMul(b, w)
					s0 := t.FPAdd(a, bw)
					s1 := t.FPAdd(a, bw)
					t.Store(fftAddr(m, n1, r, i0), complexBytes, s0, emitter.None)
					t.Store(fftAddr(m, n1, r, i1), complexBytes, s1, emitter.None)
					t.IntALU(emitter.None, emitter.None)
				}
			}
		}
	}
}
