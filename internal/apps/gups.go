package apps

import (
	"fmt"

	"flashsim/internal/emitter"
)

// GUPSOpts parameterizes the random-update kernel.
type GUPSOpts struct {
	// LogTable is log2 of the table length in 8-byte words
	// (default 18: 256K words = 2 MB, 512 pages against the 64-entry
	// TLB).
	LogTable int
	// Updates is the read-modify-write count per thread
	// (default 32768).
	Updates int
	// HotPct is the percentage of updates directed at the hot 1/64
	// slice of the table (default 25) — the "hotspot" in
	// random-update hotspot. 0 is classic uniform GUPS.
	HotPct int
	// Procs is the thread count.
	Procs int
	// Unplaced homes every table page on node 0 (the Figure 7 hotspot
	// placement) instead of first-touch distribution.
	Unplaced bool
}

func (o *GUPSOpts) norm() {
	if o.LogTable == 0 {
		o.LogTable = 18
	}
	if o.LogTable < 6 {
		o.LogTable = 6
	}
	if o.Updates == 0 {
		o.Updates = 32768
	}
	if o.HotPct == 0 {
		o.HotPct = 25
	}
	if o.HotPct < 0 {
		o.HotPct = 0
	}
	if o.Procs == 0 {
		o.Procs = 1
	}
}

// GUPS returns a GUPS-style random-update kernel: each thread performs
// Updates independent read-xor-write cycles at pseudo-random table
// words, with HotPct percent of them concentrated on the hot 1/64
// slice. Nearly every access misses the caches and, at table sizes
// beyond 64 pages, the TLB; with Unplaced every miss is additionally a
// remote access to node 0's memory — the pure memory-system stressor
// among the registered workloads.
func GUPS(o GUPSOpts) emitter.Program {
	o.norm()
	words := uint64(1) << o.LogTable
	hotWords := words / 64
	variant := fmt.Sprintf("2^%d words", o.LogTable)
	if o.HotPct > 0 {
		variant += fmt.Sprintf(" hot=%d%%", o.HotPct)
	}
	if o.Unplaced {
		variant += " unplaced"
	}
	place := emitter.Placement{Kind: emitter.PlaceFirstTouch}
	if o.Unplaced {
		place = emitter.Placement{Kind: emitter.PlaceOnNode, Node: 0}
	}
	return emitter.Program{
		Name:    "gups",
		Variant: variant,
		Threads: o.Procs,
		Setup: func(as *emitter.AddressSpace) any {
			return as.AllocPageAligned("table", words*8, place)
		},
		Body: func(t *emitter.Thread, shared any) {
			table := shared.(emitter.Region)
			// Initialization: each thread first-touches a contiguous
			// stripe, spreading the table's pages across all nodes
			// (unless Unplaced pins them to node 0).
			lo, hi := chunk(int(words), t.ID, t.N)
			touchRegion(t, table.Base+uint64(lo)*8, uint64(hi-lo)*8, 64)

			t.Barrier(emitter.BarrierStart)
			var prev emitter.Val
			for i := 0; i < o.Updates; i++ {
				r := t.Rand()
				var idx uint64
				if o.HotPct > 0 && r%100 < uint64(o.HotPct) {
					idx = (r >> 8) % hotWords
				} else {
					idx = (r >> 8) % words
				}
				addr := table.Base + idx*8
				// The RMW cycle: load, xor with the running value,
				// store — the store depends on the load.
				v := t.Load(addr, 8, prev, emitter.None)
				x := t.IntALU(v, prev)
				t.Store(addr, 8, x, emitter.None)
				prev = x
				// Loop overhead: index generation and bounds check.
				t.IntOps(2)
				t.Branch(x)
			}
			t.Barrier(emitter.BarrierEnd)
		},
	}
}
