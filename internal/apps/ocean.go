package apps

import (
	"fmt"

	"flashsim/internal/emitter"
)

// OceanOpts parameterizes the Ocean kernel.
type OceanOpts struct {
	// N is the interior grid dimension (default 128; the paper's
	// 514x514 grids are ~2 MB each against a 2 MB L2, and (130)^2
	// doubles are ~135 KB against the scaled 128 KB L2).
	N int
	// Grids is the number of simultaneously live grids (default 14;
	// real Ocean keeps ~25).
	Grids int
	// Iters is the number of outer time steps (default 4).
	Iters int
	// Procs is the thread count.
	Procs int
	// Prefetch enables hand-inserted prefetches.
	Prefetch bool
}

func (o *OceanOpts) norm() {
	if o.N == 0 {
		o.N = 128
	}
	if o.Grids == 0 {
		o.Grids = 14
	}
	if o.Grids < 3 {
		o.Grids = 3
	}
	if o.Iters == 0 {
		o.Iters = 4
	}
	if o.Procs == 0 {
		o.Procs = 1
	}
}

type oceanShared struct {
	o     OceanOpts
	dim   int // N+2 including boundary
	grids []emitter.Region
}

// sweepPlan lists the (srcA, srcB, dst) grid triples each time step
// touches, echoing real Ocean's sequence of laplacian/jacobi/relax
// passes over its many state grids. The relax flag adds a per-point
// FP divide — Ocean "executes many high-latency floating point
// operations", the second half of the Mipsy unit-latency error.
type sweepSpec struct {
	a, b, dst int
	relax     bool
}

// sweepPlan mixes adjacent-grid triples with same-parity (stride-2)
// triples, as real Ocean's pass sequence does over its ~25 state grids.
// The same-parity triples are the coloring probe: under Solo's
// arena-aligned allocator all even (and all odd) grids share a physical
// color phase, so those sweeps run three same-set streams against the
// two-way caches; under IRIX's virtual coloring the phases differ and
// no sweep conflicts.
func sweepPlan(grids int) []sweepSpec {
	plan := []sweepSpec{
		{0, 1, 2, false},
		{2, 4, 6, false}, // same parity
		{1, 3, 5, true},  // same parity
		{6, 7, 8, false},
		{8, 9, 10, false},
		{10, 11, 12, true},
		{3, 11, 13, false},
	}
	for i := range plan {
		plan[i].a %= grids
		plan[i].b %= grids
		plan[i].dst %= grids
	}
	return plan
}

// Ocean returns the red-black/stencil kernel standing in for SPLASH-2
// Ocean: many same-shaped grids, band-partitioned, swept with 5-point
// stencils that read two grids and write a third, with nearest-neighbor
// communication at band boundaries and a lock-protected global residual
// reduction per time step.
//
// Ocean is the study's page-coloring probe: each grid is a separate
// region, so under Solo's aligned sequential allocator every grid shares
// a color phase and a 3-grid sweep thrashes the 2-way L2 on one
// processor (the 3x miss-rate misprediction of §3.1.2), while IRIX's
// virtual coloring spreads the phases.
func Ocean(o OceanOpts) emitter.Program {
	o.norm()
	return emitter.Program{
		Name:    "ocean",
		Variant: fmt.Sprintf("n=%d grids=%d", o.N, o.Grids),
		Threads: o.Procs,
		Setup: func(as *emitter.AddressSpace) any {
			sh := &oceanShared{o: o, dim: o.N + 2}
			bytes := uint64(sh.dim) * uint64(sh.dim) * 8
			for g := 0; g < o.Grids; g++ {
				sh.grids = append(sh.grids, as.AllocPageAligned(
					fmt.Sprintf("grid%02d", g), bytes,
					emitter.Placement{Kind: emitter.PlaceFirstTouch}))
			}
			return sh
		},
		Body: func(t *emitter.Thread, shared any) {
			oceanBody(t, shared.(*oceanShared))
		},
	}
}

func (sh *oceanShared) addr(g, i, j int) uint64 {
	return sh.grids[g].Base + (uint64(i)*uint64(sh.dim)+uint64(j))*8
}

func oceanBody(t *emitter.Thread, sh *oceanShared) {
	o := sh.o
	lo, hi := chunk(o.N, t.ID, t.N) // interior rows [1..N]
	lo++
	hi++

	// Initialization: grid-by-grid (the order that gives Solo its
	// aligned, phase-identical frames), each thread touching its band.
	rowBytes := uint64(sh.dim) * 8
	for g := range sh.grids {
		start := sh.addr(g, lo-1, 0)
		end := sh.addr(g, hi, 0)
		if t.ID == t.N-1 {
			end = sh.addr(g, hi+1, 0) // bottom boundary row
		}
		touchRegion(t, start, end-start, 128)
		_ = rowBytes
	}

	t.Barrier(emitter.BarrierStart)
	plan := sweepPlan(o.Grids)
	for it := 0; it < o.Iters; it++ {
		for si, sw := range plan {
			sh.sweep(t, sw, lo, hi)
			t.Barrier(barPhase + uint32(si%3))
		}
		// Lock-protected global residual accumulation.
		r := t.Load(sh.addr(plan[0].dst, lo, 1), 8, emitter.None, emitter.None)
		s := t.FPAdd(r, emitter.None)
		t.Lock(1)
		g := t.Load(sh.addr(0, 0, 0), 8, s, emitter.None)
		g2 := t.FPAdd(g, s)
		t.Store(sh.addr(0, 0, 0), 8, g2, emitter.None)
		t.Unlock(1)
		t.Barrier(barPhase5)
	}
	t.Barrier(emitter.BarrierEnd)
}

// sweep emits one stencil pass over the thread's band: for each interior
// point, a 5-point stencil on grid a, a point read of grid b, and a
// store to dst.
func (sh *oceanShared) sweep(t *emitter.Thread, sw sweepSpec, lo, hi int) {
	n := sh.o.N
	for i := lo; i < hi; i++ {
		var carry emitter.Val
		for j := 1; j <= n; j++ {
			if sh.o.Prefetch && j%4 == 1 && j+4 <= n {
				t.Prefetch(sh.addr(sw.a, i, j+4))
			}
			c := t.Load(sh.addr(sw.a, i, j), 8, emitter.None, emitter.None)
			up := t.Load(sh.addr(sw.a, i-1, j), 8, emitter.None, emitter.None)
			dn := t.Load(sh.addr(sw.a, i+1, j), 8, emitter.None, emitter.None)
			lf := t.Load(sh.addr(sw.a, i, j-1), 8, emitter.None, emitter.None)
			rt := t.Load(sh.addr(sw.a, i, j+1), 8, emitter.None, emitter.None)
			s1 := t.FPAdd(up, dn)
			s2 := t.FPAdd(lf, rt)
			s3 := t.FPAdd(s1, s2)
			bv := t.Load(sh.addr(sw.b, i, j), 8, emitter.None, emitter.None)
			m := t.FPMul(s3, bv)
			v := t.FPAdd(m, c)
			if sw.relax {
				v = t.FPDiv(v, s3)
			}
			t.Store(sh.addr(sw.dst, i, j), 8, v, carry)
			carry = v
		}
	}
}
