// Package apps implements the four SPLASH-2 kernels of the study — FFT,
// Radix-Sort, LU, and Ocean — as instrumented programs: the real
// algorithms, written against the emitter API so that every load, store,
// and arithmetic operation appears in the instruction stream with true
// data dependences and real (data-dependent, where applicable) virtual
// addresses.
//
// The paper's application-level experiments are reproduced as variants:
//
//   - FFT blocked for the cache (a TLB miss on every store during the
//     transpose phase) vs. blocked for the TLB (§3.1.2).
//   - Radix-Sort with radix 256 ("a pathological number of TLB misses")
//     vs. radix 32.
//   - Radix-Sort with data placement disabled ("unplaced": every page on
//     node 0, the Figure 7 hotspot).
//
// Problem sizes default to 1/16 of Table 2, matching the 1/16-scale
// cache geometry of machine.ScaledCaches (documented in EXPERIMENTS.md).
package apps

import (
	"flashsim/internal/emitter"
)

// Internal barrier ids (>= 16; 1 and 2 delimit the timed section).
const (
	barPhase uint32 = 16 + iota
	barPhase2
	barPhase3
	barPhase4
	barPhase5
)

// touchRegion emits per-line stores over [base, base+size) — the
// canonical initialization loop, establishing first touch (and hence
// page placement and Solo frame order).
func touchRegion(t *emitter.Thread, base, size, step uint64) {
	var prev emitter.Val
	for off := uint64(0); off < size; off += step {
		t.Store(base+off, uint32(step), prev, emitter.None)
		prev = t.IntALU(emitter.None, emitter.None)
	}
}

// chunk returns the [lo,hi) slice of n items for thread id of nt.
func chunk(n, id, nt int) (lo, hi int) {
	per := n / nt
	rem := n % nt
	lo = id*per + min(id, rem)
	hi = lo + per
	if id < rem {
		hi++
	}
	return
}

// log2 returns floor(log2(n)); n must be a power of two in callers.
func log2(n int) int {
	k := 0
	for 1<<uint(k+1) <= n {
		k++
	}
	return k
}
