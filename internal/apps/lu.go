package apps

import (
	"fmt"

	"flashsim/internal/emitter"
)

// LUOpts parameterizes the blocked dense LU factorization.
type LUOpts struct {
	// N is the matrix dimension (default 160; the paper's 768x768
	// matrix is ~2.3x its 2 MB L2, and 160x160 doubles are ~1.6x the
	// scaled 128 KB L2, preserving the capacity relationship at
	// tractable instruction counts).
	N int
	// Block is the block size (16, as in Table 2).
	Block int
	// Procs is the thread count.
	Procs int
	// Prefetch enables the hand-inserted prefetches.
	Prefetch bool
}

func (o *LUOpts) norm() {
	if o.N == 0 {
		o.N = 160
	}
	if o.Block == 0 {
		o.Block = 16
	}
	if o.Procs == 0 {
		o.Procs = 1
	}
	if o.N%o.Block != 0 {
		o.N = (o.N/o.Block + 1) * o.Block
	}
}

type luShared struct {
	o      LUOpts
	nb     int // blocks per side
	pr, pc int // processor grid
	matrix emitter.Region
}

// LU returns the SPLASH-2-style blocked LU: the matrix is stored
// block-major (each B x B block contiguous) and blocks are 2D-scattered
// over a processor grid; per step the diagonal block is factored, the
// perimeter blocks are solved, and interior blocks receive a rank-B
// update. Dense FP dot products give the kernel abundant ILP — the
// reason MXS (and the real R10000) run it well and unit-latency Mipsy
// models need a 1.5x clock to keep up.
func LU(o LUOpts) emitter.Program {
	o.norm()
	nb := o.N / o.Block
	pr := 1
	for pr*pr < o.Procs {
		pr++
	}
	for o.Procs%pr != 0 {
		pr--
	}
	pc := o.Procs / pr
	return emitter.Program{
		Name:    "lu",
		Variant: fmt.Sprintf("n=%d b=%d", o.N, o.Block),
		Threads: o.Procs,
		Setup: func(as *emitter.AddressSpace) any {
			sh := &luShared{o: o, nb: nb, pr: pr, pc: pc}
			sh.matrix = as.AllocPageAligned("matrix", uint64(o.N)*uint64(o.N)*8,
				emitter.Placement{Kind: emitter.PlaceFirstTouch})
			return sh
		},
		Body: func(t *emitter.Thread, shared any) {
			luBody(t, shared.(*luShared))
		},
	}
}

// owner maps block (bi,bj) onto the processor grid.
func (sh *luShared) owner(bi, bj int) int {
	return (bi%sh.pr)*sh.pc + bj%sh.pc
}

// blockAddr returns the address of element (i,j) of block (bi,bj) in the
// block-major layout.
func (sh *luShared) blockAddr(bi, bj, i, j int) uint64 {
	b := sh.o.Block
	blockBytes := uint64(b*b) * 8
	return sh.matrix.Base + uint64(bi*sh.nb+bj)*blockBytes + uint64(i*b+j)*8
}

func luBody(t *emitter.Thread, sh *luShared) {
	b := sh.o.Block
	nb := sh.nb

	// Initialization: each owner touches its blocks (first-touch
	// placement makes interior updates mostly local).
	for bi := 0; bi < nb; bi++ {
		for bj := 0; bj < nb; bj++ {
			if sh.owner(bi, bj) != t.ID {
				continue
			}
			touchRegion(t, sh.blockAddr(bi, bj, 0, 0), uint64(b*b)*8, 128)
		}
	}

	t.Barrier(emitter.BarrierStart)
	for k := 0; k < nb; k++ {
		// Factor the diagonal block.
		if sh.owner(k, k) == t.ID {
			sh.factorDiag(t, k)
		}
		t.Barrier(barPhase)
		// Perimeter row and column solves.
		for bj := k + 1; bj < nb; bj++ {
			if sh.owner(k, bj) == t.ID {
				sh.solveBlock(t, k, k, bj)
			}
		}
		for bi := k + 1; bi < nb; bi++ {
			if sh.owner(bi, k) == t.ID {
				sh.solveBlock(t, k, bi, k)
			}
		}
		t.Barrier(barPhase2)
		// Interior rank-B updates: C(bi,bj) -= A(bi,k) * B(k,bj).
		for bi := k + 1; bi < nb; bi++ {
			for bj := k + 1; bj < nb; bj++ {
				if sh.owner(bi, bj) == t.ID {
					sh.updateBlock(t, bi, bj, k)
				}
			}
		}
		t.Barrier(barPhase3)
	}
	t.Barrier(emitter.BarrierEnd)
}

// factorDiag emits the unblocked factorization of diagonal block k.
func (sh *luShared) factorDiag(t *emitter.Thread, k int) {
	b := sh.o.Block
	for j := 0; j < b; j++ {
		pivot := t.Load(sh.blockAddr(k, k, j, j), 8, emitter.None, emitter.None)
		for i := j + 1; i < b; i++ {
			a := t.Load(sh.blockAddr(k, k, i, j), 8, emitter.None, emitter.None)
			l := t.FPDiv(a, pivot)
			t.Store(sh.blockAddr(k, k, i, j), 8, l, emitter.None)
			for jj := j + 1; jj < b; jj++ {
				u := t.Load(sh.blockAddr(k, k, j, jj), 8, emitter.None, emitter.None)
				m := t.FPMul(l, u)
				c := t.Load(sh.blockAddr(k, k, i, jj), 8, emitter.None, emitter.None)
				r := t.FPAdd(c, m)
				t.Store(sh.blockAddr(k, k, i, jj), 8, r, emitter.None)
			}
		}
	}
}

// solveBlock emits the triangular solve of block (bi,bj) against
// diagonal block k.
func (sh *luShared) solveBlock(t *emitter.Thread, k, bi, bj int) {
	b := sh.o.Block
	for j := 0; j < b; j++ {
		d := t.Load(sh.blockAddr(k, k, j, j), 8, emitter.None, emitter.None)
		for i := 0; i < b; i++ {
			a := t.Load(sh.blockAddr(bi, bj, i, j), 8, emitter.None, emitter.None)
			r := t.FPDiv(a, d)
			t.Store(sh.blockAddr(bi, bj, i, j), 8, r, emitter.None)
			t.IntALU(emitter.None, emitter.None)
		}
	}
}

// updateBlock emits C(bi,bj) -= A(bi,k) * B(k,bj), the dense dot-product
// kernel where nearly all of LU's time goes.
func (sh *luShared) updateBlock(t *emitter.Thread, bi, bj, k int) {
	b := sh.o.Block
	for i := 0; i < b; i++ {
		if sh.o.Prefetch {
			t.Prefetch(sh.blockAddr(bi, k, min(i+1, b-1), 0))
		}
		for j := 0; j < b; j++ {
			var acc emitter.Val
			for kk := 0; kk < b; kk++ {
				a := t.Load(sh.blockAddr(bi, k, i, kk), 8, emitter.None, emitter.None)
				bb := t.Load(sh.blockAddr(k, bj, kk, j), 8, emitter.None, emitter.None)
				m := t.FPMul(a, bb)
				acc = t.FPAdd(m, acc)
			}
			c := t.Load(sh.blockAddr(bi, bj, i, j), 8, emitter.None, emitter.None)
			r := t.FPAdd(c, acc)
			t.Store(sh.blockAddr(bi, bj, i, j), 8, r, emitter.None)
		}
	}
}
