package apps

import (
	"fmt"

	"flashsim/internal/emitter"
)

// CacheMgmtOpts parameterizes the cache-management microworkload.
type CacheMgmtOpts struct {
	// Lines is the number of buffer lines written and flushed per
	// round (default 256).
	Lines int
	// Rounds repeats the produce/flush cycle (default 8).
	Rounds int
	// Procs is the thread count.
	Procs int
}

func (o *CacheMgmtOpts) norm() {
	if o.Lines == 0 {
		o.Lines = 256
	}
	if o.Rounds == 0 {
		o.Rounds = 8
	}
	if o.Procs == 0 {
		o.Procs = 1
	}
}

// CacheMgmt is a driver-style kernel: fill a buffer, then CACHE
// (hit-writeback-invalidate) every line of it before handing it to a
// device — the usage pattern that exercised the historical MXS bug in
// which a CACHE instruction on a dirty line never signaled completion
// and the processor stalled for ~a million cycles until a timer
// interrupt retried it.
func CacheMgmt(o CacheMgmtOpts) emitter.Program {
	o.norm()
	const lineBytes = 128
	return emitter.Program{
		Name:    "cachemgmt",
		Variant: fmt.Sprintf("lines=%d rounds=%d", o.Lines, o.Rounds),
		Threads: o.Procs,
		Setup: func(as *emitter.AddressSpace) any {
			return as.AllocPageAligned("iobuf", uint64(o.Lines)*lineBytes,
				emitter.Placement{Kind: emitter.PlaceFirstTouch})
		},
		Body: func(t *emitter.Thread, shared any) {
			buf := shared.(emitter.Region)
			lo, hi := chunk(o.Lines, t.ID, t.N)
			t.Barrier(emitter.BarrierStart)
			for r := 0; r < o.Rounds; r++ {
				var prev emitter.Val
				for i := lo; i < hi; i++ {
					t.Store(buf.Base+uint64(i)*lineBytes, 8, prev, emitter.None)
					prev = t.IntALU(emitter.None, emitter.None)
				}
				for i := lo; i < hi; i++ {
					t.CacheOp(buf.Base+uint64(i)*lineBytes, 0)
					t.IntOps(2)
				}
			}
			t.Barrier(emitter.BarrierEnd)
		},
	}
}
