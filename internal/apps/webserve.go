package apps

import (
	"fmt"

	"flashsim/internal/emitter"
)

// WebServeOpts parameterizes the web-serving OS stressor.
type WebServeOpts struct {
	// Requests is the request count per worker thread (default 192).
	Requests int
	// PagesPerReq is how many fresh 4 KB heap pages each request
	// touches (default 2): the fork/exec-style cold-page behavior —
	// every request faults new mappings in, so the kernel's page-fault
	// path dominates exactly as process-per-request servers do.
	PagesPerReq int
	// SyscallsPerReq is the system calls emitted per request
	// (default 6: accept, stat, open, two reads/writes, close).
	SyscallsPerReq int
	// Docs is the document-cache entry count (default 32).
	Docs int
	// ThinkOps is the user-mode integer work per request (default 64).
	ThinkOps int
	// Procs is the worker thread count.
	Procs int
}

func (o *WebServeOpts) norm() {
	if o.Requests == 0 {
		o.Requests = 192
	}
	if o.PagesPerReq == 0 {
		o.PagesPerReq = 2
	}
	if o.SyscallsPerReq == 0 {
		o.SyscallsPerReq = 6
	}
	if o.Docs == 0 {
		o.Docs = 32
	}
	if o.ThinkOps == 0 {
		o.ThinkOps = 64
	}
	if o.Procs == 0 {
		o.Procs = 1
	}
}

const (
	wsPageBytes = 4096
	wsDocLines  = 16 // 128-byte lines per cached document
	wsLineBytes = 128
	wsLockID    = 256 // doc-cache lock id base
	wsLocks     = 8
)

type webShared struct {
	o     WebServeOpts
	heap  emitter.Region
	cache emitter.Region
}

// WebServe returns a web-serving-style OS stressor: each worker thread
// handles a stream of requests, and each request costs a batch of
// system calls, a handful of never-before-touched heap pages (the
// fork/exec allocation pattern — a cold page fault per page, the
// 4000-cycle kernel path), a read of a popular document from the shared
// cache, and an occasional locked cache refresh. Almost all of its time
// is OS model: SimOS charges every syscall and fault, Solo's backdoor
// makes them free, so the workload maximally separates the osmodel
// fidelity rungs (and, at 32-128 nodes, spreads its per-request pages
// by first touch).
func WebServe(o WebServeOpts) emitter.Program {
	o.norm()
	perThread := uint64(o.Requests) * uint64(o.PagesPerReq) * wsPageBytes
	return emitter.Program{
		Name:    "webserve",
		Variant: fmt.Sprintf("req=%d pages=%d sys=%d", o.Requests, o.PagesPerReq, o.SyscallsPerReq),
		Threads: o.Procs,
		Setup: func(as *emitter.AddressSpace) any {
			sh := &webShared{o: o}
			sh.heap = as.AllocPageAligned("reqheap", perThread*uint64(o.Procs),
				emitter.Placement{Kind: emitter.PlaceFirstTouch})
			sh.cache = as.AllocPageAligned("doccache", uint64(o.Docs)*wsDocLines*wsLineBytes,
				emitter.Placement{Kind: emitter.PlaceInterleaved})
			return sh
		},
		Body: func(t *emitter.Thread, shared any) {
			sh := shared.(*webShared)
			arena := sh.heap.Base + uint64(t.ID)*perThread

			// Warm the document cache cooperatively before the timed
			// section (chunked first reads).
			lo, hi := chunk(o.Docs*wsDocLines, t.ID, t.N)
			touchRegion(t, sh.cache.Base+uint64(lo)*wsLineBytes, uint64(hi-lo)*wsLineBytes, wsLineBytes)

			t.Barrier(emitter.BarrierStart)
			next := arena
			for req := 0; req < o.Requests; req++ {
				r := t.Rand()
				// Accept + request parse.
				t.Syscall(1) // accept
				t.Syscall(2) // read request
				t.IntOps(8)

				// Fork/exec-style heap growth: fresh pages, never
				// touched before, each store a cold page fault.
				for pg := 0; pg < o.PagesPerReq; pg++ {
					var prev emitter.Val
					for off := uint64(0); off < wsPageBytes; off += 1024 {
						t.Store(next+off, 64, prev, emitter.None)
						prev = t.IntALU(prev, emitter.None)
					}
					next += wsPageBytes
				}

				// Remaining kernel round trips of the request.
				for s := 2; s < o.SyscallsPerReq; s++ {
					t.Syscall(uint32(3 + s))
					t.IntOps(4)
				}

				// Serve a popular document out of the shared cache.
				doc := (r >> 8) % uint64(o.Docs)
				base := sh.cache.Base + doc*wsDocLines*wsLineBytes
				var p emitter.Val
				for l := 0; l < wsDocLines; l++ {
					p = t.Load(base+uint64(l)*wsLineBytes, 64, p, emitter.None)
				}

				// 1-in-16 requests refresh their document under the
				// cache lock (the writer side of the sharing pattern).
				if r%16 == 0 {
					lock := wsLockID + uint32(doc)%wsLocks
					t.Lock(lock)
					t.Store(base, 64, p, emitter.None)
					t.Store(base+wsLineBytes, 64, p, emitter.None)
					t.Unlock(lock)
				}

				// User-mode think time and the response write.
				t.IntOps(o.ThinkOps)
				t.Branch(p)
			}
			t.Barrier(emitter.BarrierEnd)
		},
	}
}
