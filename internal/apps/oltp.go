package apps

import (
	"fmt"

	"flashsim/internal/emitter"
)

// OLTPOpts parameterizes the transaction-mix kernel.
type OLTPOpts struct {
	// Txns is the transaction count per thread (default 1024).
	Txns int
	// Rows is the table size in rows (default 32768; 128-byte rows,
	// 4 MB of row heap).
	Rows int
	// Ops is the row operations per transaction (default 8).
	Ops int
	// ReadPct is the percentage of row operations that are reads
	// (default 80; the rest write the row under its bucket lock).
	ReadPct int
	// SkewPct is the percentage of operations directed at the popular
	// 1/64 slice of the key space (default 60) — skewed key
	// popularity, the contention knob.
	SkewPct int
	// Procs is the thread count.
	Procs int
}

func (o *OLTPOpts) norm() {
	if o.Txns == 0 {
		o.Txns = 1024
	}
	if o.Rows == 0 {
		o.Rows = 32768
	}
	if o.Rows < 256 {
		o.Rows = 256
	}
	if o.Ops == 0 {
		o.Ops = 8
	}
	if o.ReadPct == 0 {
		o.ReadPct = 80
	}
	if o.ReadPct < 0 {
		o.ReadPct = 0
	}
	if o.SkewPct == 0 {
		o.SkewPct = 60
	}
	if o.SkewPct < 0 {
		o.SkewPct = 0
	}
	if o.Procs == 0 {
		o.Procs = 1
	}
}

const (
	oltpRowBytes  = 128 // one row = one cache line pair
	oltpNodeBytes = 64  // one index node = one line
	oltpFanout    = 64  // index fanout per level
	oltpLocks     = 64  // row bucket locks
	oltpLockID    = 192 // lock id base (disjoint from barnes/ocean ids)
	oltpChase     = 2   // version-chain hops per row operation
)

type oltpShared struct {
	o     OLTPOpts
	index emitter.Region
	rows  emitter.Region
	leaf  emitter.Region
	next  []uint32 // version-chain permutation over rows
	inner int      // inner index nodes (level-1)
}

// OLTP returns an OLTP-style pointer-chasing transaction mix: each
// transaction walks a three-level index (root, inner node, leaf), then
// chases the row's version chain — dependent loads whose addresses come
// off the previous load, the access pattern the calibrated dependent-
// loads microbenchmark prices — and either reads the row or rewrites it
// under its bucket lock. SkewPct concentrates popularity, ReadPct sets
// the read/write mix, so lock contention and directory sharing are both
// dialable from the registry.
func OLTP(o OLTPOpts) emitter.Program {
	o.norm()
	return emitter.Program{
		Name:    "oltp",
		Variant: fmt.Sprintf("rows=%d r/w=%d/%d skew=%d%%", o.Rows, o.ReadPct, 100-o.ReadPct, o.SkewPct),
		Threads: o.Procs,
		Setup: func(as *emitter.AddressSpace) any {
			sh := &oltpShared{o: o}
			sh.inner = (o.Rows + oltpFanout*oltpFanout - 1) / (oltpFanout * oltpFanout)
			if sh.inner < 1 {
				sh.inner = 1
			}
			leaves := (o.Rows + oltpFanout - 1) / oltpFanout
			sh.index = as.AllocPageAligned("index", uint64(1+sh.inner)*oltpNodeBytes,
				emitter.Placement{Kind: emitter.PlaceInterleaved})
			sh.leaf = as.AllocPageAligned("leaves", uint64(leaves)*oltpNodeBytes,
				emitter.Placement{Kind: emitter.PlaceInterleaved})
			sh.rows = as.AllocPageAligned("rows", uint64(o.Rows)*oltpRowBytes,
				emitter.Placement{Kind: emitter.PlaceFirstTouch})
			// The version-chain permutation: row i's predecessor
			// version lives at next[i], a fixed pseudo-random shuffle.
			sh.next = make([]uint32, o.Rows)
			rng := uint64(0x853C49E6748FEA9B)
			for i := range sh.next {
				sh.next[i] = uint32(i)
			}
			for i := len(sh.next) - 1; i > 0; i-- {
				rng ^= rng >> 12
				rng ^= rng << 25
				rng ^= rng >> 27
				j := int((rng * 0x2545F4914F6CDD1D >> 8) % uint64(i+1))
				sh.next[i], sh.next[j] = sh.next[j], sh.next[i]
			}
			return sh
		},
		Body: func(t *emitter.Thread, shared any) {
			sh := shared.(*oltpShared)
			rowAddr := func(r uint32) uint64 {
				return sh.rows.Base + uint64(r)*oltpRowBytes
			}
			// Initialization: threads first-touch disjoint row stripes
			// (the shared-nothing warm-up of a partitioned database),
			// spreading the row heap across all nodes.
			lo, hi := chunk(o.Rows, t.ID, t.N)
			touchRegion(t, rowAddr(uint32(lo)), uint64(hi-lo)*oltpRowBytes, oltpRowBytes)

			hot := uint64(o.Rows) / 64
			if hot == 0 {
				hot = 1
			}
			t.Barrier(emitter.BarrierStart)
			for txn := 0; txn < o.Txns; txn++ {
				// Begin: transaction bookkeeping.
				t.IntOps(4)
				var commit emitter.Val
				for op := 0; op < o.Ops; op++ {
					r := t.Rand()
					var row uint32
					if r%100 < uint64(o.SkewPct) {
						row = uint32((r >> 8) % hot)
					} else {
						row = uint32((r >> 8) % uint64(o.Rows))
					}
					// Index walk: root -> inner -> leaf, each load's
					// address produced by the previous one.
					p := t.Load(sh.index.Base, 8, commit, emitter.None)
					inner := uint64(row) / (oltpFanout * oltpFanout) % uint64(sh.inner)
					p = t.Load(sh.index.Base+(1+inner)*oltpNodeBytes, 8, p, emitter.None)
					leaf := uint64(row) / oltpFanout
					p = t.Load(sh.leaf.Base+leaf*oltpNodeBytes, 8, p, emitter.None)
					// Version-chain chase through the row heap.
					cur := row
					for hop := 0; hop < oltpChase; hop++ {
						p = t.Load(rowAddr(cur), 8, p, emitter.None)
						cur = sh.next[cur]
					}
					if r>>16%100 < uint64(o.ReadPct) {
						// Read: pull the payload, fold into the result.
						v := t.Load(rowAddr(cur)+8, 32, p, emitter.None)
						commit = t.IntALU(v, commit)
					} else {
						// Write: rewrite the row under its bucket lock.
						lock := oltpLockID + uint32(cur)%oltpLocks
						t.Lock(lock)
						v := t.Load(rowAddr(cur)+8, 32, p, emitter.None)
						nv := t.IntALU(v, commit)
						t.Store(rowAddr(cur)+8, 32, nv, emitter.None)
						t.Unlock(lock)
						commit = nv
					}
					t.IntOps(3)
					t.Branch(commit)
				}
				// Commit: serialize the log record (two line writes in
				// the thread's own stripe).
				logRow := uint32(lo) + uint32(txn)%uint32(max(hi-lo, 1))
				t.Store(rowAddr(logRow)+64, 32, commit, emitter.None)
				t.IntMul(commit, emitter.None)
			}
			t.Barrier(emitter.BarrierEnd)
		},
	}
}
