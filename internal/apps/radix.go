package apps

import (
	"fmt"

	"flashsim/internal/emitter"
)

// RadixOpts parameterizes the Radix-Sort kernel.
type RadixOpts struct {
	// Keys is the key count (default 256K; the paper's 2M keys make
	// the destination array span ~2048 pages against the 64-entry TLB,
	// and 256K keys preserve a comfortably TLB-breaking 256 pages).
	Keys int
	// Radix is the digit size (power of two). The traditional value is
	// 256 ("run with a large radix to reduce overhead"), which incurs
	// "a pathological number of TLB misses" during the permutation;
	// the paper's fix reduces it to 32 (31% faster on one processor,
	// 34% on four).
	Radix int
	// KeyBits bounds key values (default 20, giving the paper's 4:3
	// pass ratio between radix 32 and radix 256: passes =
	// ceil(KeyBits/log2(Radix))).
	KeyBits int
	// Procs is the thread count.
	Procs int
	// Unplaced disables data placement, homing every page on node 0 —
	// the Figure 7 hotspot configuration.
	Unplaced bool
	// Verify checks the final array is sorted (Go-side assertion).
	Verify bool
}

func (o *RadixOpts) norm() {
	if o.Keys == 0 {
		o.Keys = 256 << 10
	}
	if o.Radix == 0 {
		o.Radix = 256
	}
	if o.KeyBits == 0 {
		o.KeyBits = 20
	}
	if o.Procs == 0 {
		o.Procs = 1
	}
}

type radixShared struct {
	o       RadixOpts
	keysR   emitter.Region
	keys2R  emitter.Region
	ghistR  emitter.Region
	keys    []uint32
	keys2   []uint32
	hist    [][]uint32 // [proc][digit] counts for the current pass
	offsets [][]uint32 // [proc][digit] global scatter bases
}

// Radix returns the parallel radix sort: per pass, a local histogram, a
// logarithmic parallel prefix exchange, and the permutation whose
// scattered, data-dependent stores are the kernel's defining traffic.
// Digit extraction is emitted as integer divide + remainder, the
// high-latency operations Mipsy's unit-latency model under-predicts
// (the §3.1.3 experiment: +5 cycles per multiply and +19 per divide
// moved SimOS-Mipsy-225 from 0.71 to 1.02 relative time).
func Radix(o RadixOpts) emitter.Program {
	o.norm()
	variant := fmt.Sprintf("radix=%d n=%d", o.Radix, o.Keys)
	if o.Unplaced {
		variant += " unplaced"
	}
	return emitter.Program{
		Name:    "radix",
		Variant: variant,
		Threads: o.Procs,
		Setup: func(as *emitter.AddressSpace) any {
			sh := &radixShared{o: o}
			bytes := uint64(o.Keys) * 4
			place := emitter.Placement{Kind: emitter.PlaceBlocked, Stride: bytes / uint64(o.Procs)}
			if o.Unplaced {
				place = emitter.Placement{Kind: emitter.PlaceOnNode, Node: 0}
			}
			sh.keysR = as.AllocPageAligned("keys", bytes, place)
			sh.keys2R = as.AllocPageAligned("keys2", bytes, place)
			sh.ghistR = as.AllocPageAligned("ghist", uint64(o.Procs*o.Radix)*4,
				emitter.Placement{Kind: emitter.PlaceFirstTouch})
			sh.keys = make([]uint32, o.Keys)
			sh.keys2 = make([]uint32, o.Keys)
			sh.hist = make([][]uint32, o.Procs)
			sh.offsets = make([][]uint32, o.Procs)
			for p := 0; p < o.Procs; p++ {
				sh.hist[p] = make([]uint32, o.Radix)
				sh.offsets[p] = make([]uint32, o.Radix)
			}
			return sh
		},
		Body: func(t *emitter.Thread, shared any) {
			radixBody(t, shared.(*radixShared))
		},
	}
}

func (sh *radixShared) keyAddr(i int) uint64  { return sh.keysR.Base + uint64(i)*4 }
func (sh *radixShared) key2Addr(i int) uint64 { return sh.keys2R.Base + uint64(i)*4 }
func (sh *radixShared) histAddr(p, d int) uint64 {
	return sh.ghistR.Base + uint64(p*sh.o.Radix+d)*4
}

func radixBody(t *emitter.Thread, sh *radixShared) {
	o := sh.o
	lo, hi := chunk(o.Keys, t.ID, t.N)
	logR := log2(o.Radix)
	passes := (o.KeyBits + logR - 1) / logR
	mask := uint32(o.Radix - 1)

	// Initialization: generate and store this thread's keys.
	var prev emitter.Val
	for i := lo; i < hi; i++ {
		sh.keys[i] = uint32(t.Rand()) & ((1 << uint(o.KeyBits)) - 1)
		t.Store(sh.keyAddr(i), 4, prev, emitter.None)
		prev = t.IntALU(emitter.None, emitter.None)
	}
	// Touch own histogram row (places ghist pages first-touch local).
	touchRegion(t, sh.histAddr(t.ID, 0), uint64(o.Radix)*4, 128)

	t.Barrier(emitter.BarrierStart)
	src, dst := sh.keys, sh.keys2
	srcAddr, dstAddr := sh.keyAddr, sh.key2Addr
	for pass := 0; pass < passes; pass++ {
		shift := uint(pass * logR)

		// Phase 1: local histogram over own chunk.
		h := sh.hist[t.ID]
		for d := range h {
			h[d] = 0
		}
		var hv emitter.Val
		for i := lo; i < hi; i++ {
			d := int((src[i] >> shift) & mask)
			h[d]++
			kv := t.Load(srcAddr(i), 4, emitter.None, emitter.None)
			q := t.IntDiv(kv, emitter.None) // key / radix^pass
			dv := t.IntALU(q, emitter.None) // ... mod radix
			cv := t.Load(sh.histAddr(t.ID, d), 4, dv, hv)
			hv = t.IntALU(cv, emitter.None)
			t.Store(sh.histAddr(t.ID, d), 4, hv, dv)
			t.IntOps(4) // index/bounds arithmetic, loop overhead
			t.Branch(dv)
		}
		t.Barrier(barPhase + uint32(pass%2))

		// Phase 2: parallel prefix. Every thread computes the global
		// offsets (cheap in Go); the emitted traffic is the butterfly
		// exchange of histogram rows.
		for d := 1; d < t.N; d <<= 1 {
			partner := t.ID ^ d
			if partner < t.N {
				var acc emitter.Val
				for r := 0; r < o.Radix; r++ {
					pv := t.Load(sh.histAddr(partner, r), 4, emitter.None, emitter.None)
					acc = t.IntALU(pv, acc)
					t.Store(sh.histAddr(t.ID, r), 4, acc, emitter.None)
				}
			}
		}
		off := sh.offsets[t.ID]
		base := uint32(0)
		for d := 0; d < o.Radix; d++ {
			for p := 0; p < t.N; p++ {
				if p == t.ID {
					off[d] = base
				}
				base += sh.hist[p][d]
			}
		}
		t.Barrier(barPhase3 + uint32(pass%2))

		// Phase 3: permutation. Scattered stores across the whole
		// destination array — the TLB-thrashing (radix > TLB entries)
		// and hotspot-sensitive phase.
		var rv emitter.Val
		for i := lo; i < hi; i++ {
			k := src[i]
			d := int((k >> shift) & mask)
			pos := off[d]
			off[d]++
			dst[pos] = k
			kv := t.Load(srcAddr(i), 4, emitter.None, emitter.None)
			q := t.IntMul(kv, emitter.None) // scaled rank/address computation
			dv := t.IntALU(q, emitter.None)
			cv := t.Load(sh.histAddr(t.ID, d), 4, dv, rv)
			t.Store(dstAddr(int(pos)), 4, kv, cv)
			rv = t.IntALU(cv, emitter.None)
			t.Store(sh.histAddr(t.ID, d), 4, rv, emitter.None)
			t.IntOps(4) // index/bounds arithmetic, loop overhead
			t.Branch(dv)
		}
		t.Barrier(barPhase5)

		src, dst = dst, src
		srcAddr, dstAddr = dstAddr, srcAddr
	}
	t.Barrier(emitter.BarrierEnd)

	if o.Verify && t.ID == 0 {
		for i := 1; i < o.Keys; i++ {
			if src[i-1] > src[i] {
				panic(fmt.Sprintf("radix: not sorted at %d: %d > %d", i, src[i-1], src[i]))
			}
		}
	}
}
