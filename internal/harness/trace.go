package harness

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"

	"flashsim/internal/core"
	"flashsim/internal/machine"
	"flashsim/internal/runner"
	"flashsim/internal/trace"
)

// TraceReplayRow is one (workload, detail rung) cell of the
// trace-driven error experiment: how far a core-model-free replay of
// the captured streams lands from the execution-driven run at that
// rung of the CPU-detail ladder.
type TraceReplayRow struct {
	Workload string
	Rung     string
	// Class is the taxonomy class of the rung's trace-driven error:
	// "exact" at the capture rung (classic Mipsy, where replay timing
	// rules coincide with the core's), core.Omission at the detailed
	// rungs (the replay deliberately omits the core detail).
	Class string
	// Relative is replay ExecTicks / execution-driven ExecTicks.
	Relative float64
	// Identical reports bit-identical ExecTicks (expected true exactly
	// at the capture rung).
	Identical bool
}

// TraceReplayData is the trace experiment's structured result.
type TraceReplayData struct {
	Procs int
	Rows  []TraceReplayRow
}

// ExperimentTraceReplay runs every fixed SPLASH-2 workload both
// execution-driven across the CPU-detail ladder (classic SimOS-Mipsy,
// Mipsy with functional-unit latencies, SimOS-MXS) and trace-driven
// from a capture of the classic-Mipsy run, then reports the
// trace-driven error at each rung as taxonomy rows.
//
// The capture rung must agree bit for bit — trace-driven simulation
// adds no error when the replay's timing rules match the core that
// produced the trace. At the detailed rungs the divergence is the cost
// of discarding the core model: an omission-class error, the
// trace-driven analogue of Solo's missing OS or Mipsy's unit
// latencies.
func (s *Session) ExperimentTraceReplay(procs int) (TraceReplayData, string, error) {
	d := TraceReplayData{Procs: procs}
	base, err := s.override(core.SimOSMipsy(procs, 150, true))
	if err != nil {
		return d, "", err
	}
	lat := base
	lat.ModelInstrLatency = true
	lat.Name += " +lat"
	mxs, err := s.override(core.SimOSMXS(procs, true))
	if err != nil {
		return d, "", err
	}

	for _, w := range s.Scale.FixedApps() {
		prog := w.Make(procs)

		// The capture IS the ladder's first rung: one execution-driven
		// run that also records the streams.
		var buf bytes.Buffer
		tw, err := trace.NewWriter(&buf, runner.TraceMeta(base, prog, nil))
		if err != nil {
			return d, "", err
		}
		capRes, err := machine.RunCapture(base, prog, tw)
		if err != nil {
			return d, "", fmt.Errorf("capturing %s: %w", w.Name, err)
		}
		tr, err := trace.Decode(buf.Bytes())
		if err != nil {
			return d, "", fmt.Errorf("decoding %s capture: %w", w.Name, err)
		}
		img, err := machine.PrepareReplay(tr)
		if err != nil {
			return d, "", fmt.Errorf("preparing %s replay: %w", w.Name, err)
		}
		repRes, err := machine.RunReplay(base, img)
		if err != nil {
			return d, "", fmt.Errorf("replaying %s: %w", w.Name, err)
		}

		d.Rows = append(d.Rows, TraceReplayRow{
			Workload:  w.Name,
			Rung:      "mipsy",
			Class:     "exact",
			Relative:  float64(repRes.Exec) / float64(capRes.Exec),
			Identical: reflect.DeepEqual(repRes, capRes),
		})
		for _, rung := range []struct {
			name string
			cfg  machine.Config
		}{{"mipsy+lat", lat}, {"mxs", mxs}} {
			execRes, err := s.runOne(rung.cfg, prog)
			if err != nil {
				return d, "", fmt.Errorf("%s at rung %s: %w", w.Name, rung.name, err)
			}
			d.Rows = append(d.Rows, TraceReplayRow{
				Workload:  w.Name,
				Rung:      rung.name,
				Class:     core.Omission.String(),
				Relative:  float64(repRes.Exec) / float64(execRes.Exec),
				Identical: repRes.Exec == execRes.Exec,
			})
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Trace-driven error across the CPU-detail ladder (%dp; replay ExecTicks relative to execution-driven):\n", procs)
	fmt.Fprintf(&b, "  %-16s %-10s %-14s %8s  %s\n", "workload", "rung", "class", "rel", "identical")
	for _, r := range d.Rows {
		fmt.Fprintf(&b, "  %-16s %-10s %-14s %8.3f  %v\n", r.Workload, r.Rung, r.Class, r.Relative, r.Identical)
	}
	return d, b.String(), nil
}
