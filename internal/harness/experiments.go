package harness

import (
	"fmt"
	"strings"

	"flashsim/internal/core"
	"flashsim/internal/machine"
	"flashsim/internal/proto"
	"flashsim/internal/snbench"
	"flashsim/internal/workload"
)

// Table1 renders the FLASH hardware configuration (Table 1), both the
// paper's full-scale values and the scaled geometry actually simulated.
func Table1() string {
	full := machine.Base(16, false)
	scaled := machine.Base(16, true)
	var b strings.Builder
	b.WriteString("Table 1: FLASH hardware configuration\n")
	row := func(k, v string) { fmt.Fprintf(&b, "  %-28s %s\n", k, v) }
	row("Processor", "MIPS R10000 (MXS full-fidelity model)")
	row("Number of Processors", "1-16")
	row("Processor Clock Speed", "150 MHz")
	row("System Clock Speed", "75 MHz")
	row("Instruction Cache", "32 KB, 64 B line size (modeled as ideal)")
	row("Primary Data Cache", fmt.Sprintf("%d KB, %d B line size (paper: %d KB)",
		scaled.L1D.Size>>10, scaled.L1D.LineSize, full.L1D.Size>>10))
	row("Secondary Cache", fmt.Sprintf("%d KB, %d B line size (paper: %d MB)",
		scaled.L2.Size>>10, scaled.L2.LineSize, full.L2.Size>>20))
	row("Max. IPC", "4")
	row("Max. Outstanding Misses", fmt.Sprintf("%d", scaled.MSHRCount))
	row("Network", "50 ns hops, hypercube")
	row("Memory", "140 ns to first double-word")
	row("Cache Coherence Protocol", "dynamic pointer allocation")
	return b.String()
}

// Table2 renders the problem sizes (Table 2: paper vs. this
// reproduction's scaled sizes).
func Table2(s Scale) string {
	var b strings.Builder
	b.WriteString("Table 2: SPLASH-2 problem sizes (paper -> scaled)\n")
	row := func(app, paper, ours string) { fmt.Fprintf(&b, "  %-12s %-28s %s\n", app, paper, ours) }
	switch s {
	case ScaleQuick:
		row("FFT", "1M points", "4K points (quick)")
		row("Radix-Sort", "2M keys", "32K keys (quick)")
		row("LU", "768x768 matrix, 16x16 blocks", "96x96, 16x16 blocks (quick)")
		row("Ocean", "514x514 grid", "66x66 grid (quick)")
	default:
		row("FFT", "1M points", "64K points")
		row("Radix-Sort", "2M keys", "256K keys")
		row("LU", "768x768 matrix, 16x16 blocks", "160x160, 16x16 blocks")
		row("Ocean", "514x514 grid", "130x130 grid")
	}
	return b.String()
}

// Table3Data holds dependent-load latencies per protocol case (ns).
type Table3Data struct {
	Cases   []proto.Case
	HW      map[proto.Case]float64
	Tuned   map[proto.Case]float64
	Untuned map[proto.Case]float64
}

// Table3 reproduces the dependent-load comparison: hardware vs. tuned
// and untuned FlashLite for the five protocol read cases. The simulator
// column uses SimOS-Mipsy at the hardware clock, as snbench did.
func (s *Session) Table3() (Table3Data, string, error) {
	cal := s.calibrator()
	d := Table3Data{
		Tuned:   make(map[proto.Case]float64),
		Untuned: make(map[proto.Case]float64),
	}
	hw, err := cal.DependentLoadLatencies()
	if err != nil {
		return d, "", err
	}
	d.HW = hw
	d.Cases = []proto.Case{
		proto.LocalClean, proto.LocalDirtyRemote, proto.RemoteClean,
		proto.RemoteDirtyHome, proto.RemoteDirtyRemote,
	}
	untuned, err := s.override(core.SimOSMipsy(4, 150, true))
	if err != nil {
		return d, "", err
	}
	calib, err := s.Calibrate(untuned)
	if err != nil {
		return d, "", err
	}
	tuned := calib.Apply(untuned)
	for _, pc := range d.Cases {
		u, err := cal.SimDepLatency(untuned, pc)
		if err != nil {
			return d, "", err
		}
		tn, err := cal.SimDepLatency(tuned, pc)
		if err != nil {
			return d, "", err
		}
		d.Untuned[pc] = u
		d.Tuned[pc] = tn
	}
	var b strings.Builder
	b.WriteString("Table 3: dependent load latencies (ns; parenthesized = relative to hardware)\n")
	fmt.Fprintf(&b, "  %-22s %10s %18s %18s\n", "Protocol Case", "HW", "Tuned FL", "Untuned FL")
	for _, pc := range d.Cases {
		fmt.Fprintf(&b, "  %-22s %10.0f %10.0f (%.2f) %10.0f (%.2f)\n",
			pc, d.HW[pc], d.Tuned[pc], d.Tuned[pc]/d.HW[pc], d.Untuned[pc], d.Untuned[pc]/d.HW[pc])
	}
	return d, b.String(), nil
}

// Figure1 reproduces the initial uniprocessor comparison: untuned
// simulators, applications blocked as originally recommended.
func (s *Session) Figure1() (core.CompareResult, string, error) {
	cfgs, err := s.UntunedConfigs(1)
	if err != nil {
		return core.CompareResult{}, "", err
	}
	study := core.NewStudy(s.Ref, cfgs...)
	res, err := study.Compare(s.Scale.InitialApps(), 1)
	if err != nil {
		return res, "", err
	}
	return res, renderRelTable("Figure 1: initial uniprocessor SPLASH-2 results before simulator tuning", res), nil
}

// Figure2 reproduces the uniprocessor comparison after the application
// TLB-blocking fixes (FFT blocked for the TLB, radix 256 -> 32),
// simulators still untuned.
func (s *Session) Figure2() (core.CompareResult, string, error) {
	cfgs, err := s.UntunedConfigs(1)
	if err != nil {
		return core.CompareResult{}, "", err
	}
	study := core.NewStudy(s.Ref, cfgs...)
	res, err := study.Compare(s.Scale.FixedApps(), 1)
	if err != nil {
		return res, "", err
	}
	return res, renderRelTable("Figure 2: uniprocessor SPLASH-2 results after blocking fixes", res), nil
}

// Figure3 reproduces the final uniprocessor comparison with tuned
// simulators.
func (s *Session) Figure3() (core.CompareResult, string, error) {
	cfgs, err := s.TunedConfigs(1)
	if err != nil {
		return core.CompareResult{}, "", err
	}
	study := core.NewStudy(s.Ref, cfgs...)
	res, err := study.Compare(s.Scale.FixedApps(), 1)
	if err != nil {
		return res, "", err
	}
	return res, renderRelTable("Figure 3: final uniprocessor SPLASH-2 comparison", res), nil
}

// Figure4 reproduces the final four-processor comparison with tuned
// simulators.
func (s *Session) Figure4() (core.CompareResult, string, error) {
	cfgs, err := s.TunedConfigs(4)
	if err != nil {
		return core.CompareResult{}, "", err
	}
	study := core.NewStudy(s.Ref, cfgs...)
	res, err := study.Compare(s.Scale.FixedApps(), 4)
	if err != nil {
		return res, "", err
	}
	return res, renderRelTable("Figure 4: final 4-processor SPLASH-2 comparison", res), nil
}

// speedupProcs is the Figures 5-6 processor sweep.
var speedupProcs = []int{1, 2, 4, 8, 16}

// Figure5 reproduces the FFT speedup trend study: hardware vs.
// SimOS-MXS vs. SimOS-Mipsy at 300 MHz (the over-driven in-order model
// whose extra request rate invents contention and wrecks the trend).
func (s *Session) Figure5() ([]core.Curve, string, error) {
	w := s.Scale.FFTWorkload(true)
	ta := core.NewTrendAnalyzer(s.Ref)
	hwC, err := ta.HardwareSpeedup(w, speedupProcs)
	if err != nil {
		return nil, "", err
	}
	curves := []core.Curve{hwC}
	for _, base := range []machine.Config{
		core.SimOSMXS(1, true),
		core.SimOSMipsy(1, 300, true),
	} {
		base, err := s.override(base)
		if err != nil {
			return nil, "", err
		}
		cal, err := s.Calibrate(base)
		if err != nil {
			return nil, "", err
		}
		c, err := ta.SimSpeedup(cal.Apply(base), w, speedupProcs)
		if err != nil {
			return nil, "", err
		}
		curves = append(curves, c)
	}
	return curves, renderCurves("Figure 5: speedup trend study for FFT", curves), nil
}

// Figure6 reproduces the Radix speedup study: hardware (poor speedup)
// vs. SimOS-Mipsy 225 (predicts it) vs. Solo-Mipsy 225 (wrongly
// predicts good speedup: IRIX page-coloring conflicts are absent under
// Solo's allocator).
func (s *Session) Figure6() ([]core.Curve, string, error) {
	w := s.Scale.RadixWorkload(32, false)
	ta := core.NewTrendAnalyzer(s.Ref)
	hwC, err := ta.HardwareSpeedup(w, speedupProcs)
	if err != nil {
		return nil, "", err
	}
	curves := []core.Curve{hwC}
	for _, base := range []machine.Config{
		core.SimOSMipsy(1, 225, true),
		core.SoloMipsy(1, 225, true),
	} {
		base, err := s.override(base)
		if err != nil {
			return nil, "", err
		}
		cal, err := s.Calibrate(base)
		if err != nil {
			return nil, "", err
		}
		c, err := ta.SimSpeedup(cal.Apply(base), w, speedupProcs)
		if err != nil {
			return nil, "", err
		}
		curves = append(curves, c)
	}
	return curves, renderCurves("Figure 6: speedup trend study for Radix", curves), nil
}

// Figure7 reproduces the memory-system sensitivity study: unplaced
// Radix-Sort (every page homed on node 0) on 8 and 16 processors, as
// predicted by SimOS-Mipsy 225 over tuned FlashLite, untuned FlashLite,
// and the NUMA model. NUMA correctly predicts terrible speedup but
// misses the MAGIC-occupancy hotspot magnitude.
func (s *Session) Figure7() ([]core.Curve, string, error) {
	w := s.Scale.RadixWorkload(32, true)
	procs := []int{1, 8, 16}
	ta := core.NewTrendAnalyzer(s.Ref)
	hwC, err := ta.HardwareSpeedup(w, procs)
	if err != nil {
		return nil, "", err
	}
	curves := []core.Curve{hwC}

	base, err := s.override(core.SimOSMipsy(1, 225, true))
	if err != nil {
		return nil, "", err
	}
	cal, err := s.Calibrate(base)
	if err != nil {
		return nil, "", err
	}
	tuned := cal.Apply(base)
	tuned.Name = "Tuned FlashLite"
	untuned := base
	untuned.Name = "Untuned FlashLite"
	numa, err := s.override(core.WithNUMA(core.SimOSMipsy(1, 225, true)))
	if err != nil {
		return nil, "", err
	}
	numa.Name = "NUMA"
	for _, cfg := range []machine.Config{tuned, untuned, numa} {
		c, err := ta.SimSpeedup(cfg, w, procs)
		if err != nil {
			return nil, "", err
		}
		curves = append(curves, c)
	}
	return curves, renderCurves("Figure 7: speedup for unplaced Radix-Sort (SimOS-Mipsy 225MHz)", curves), nil
}

// TLBCostData is the §3.1.2 in-text TLB experiment: measured refill
// costs on hardware and both untuned processor models.
type TLBCostData struct {
	HWCycles    float64
	MipsyCycles float64
	MXSCycles   float64
}

// ExperimentTLBCost measures the TLB-refill costs (hardware 65 vs Mipsy
// 25 vs MXS 35).
func (s *Session) ExperimentTLBCost() (TLBCostData, string, error) {
	var d TLBCostData
	cal := s.calibrator()
	hwMeas, err := s.Ref.MeasureAt(snbench.TLBTimer(0, 0, 0), 1)
	if err != nil {
		return d, "", err
	}
	d.HWCycles = snbench.TLBHandlerCycles(hwMeas.Runs[0], s.Ref.ConfigAt(1).ClockMHz, 0, 0, 0)
	mipsy, err := s.override(core.SimOSMipsy(1, 150, true))
	if err != nil {
		return d, "", err
	}
	mxs, err := s.override(core.SimOSMXS(1, true))
	if err != nil {
		return d, "", err
	}
	d.MipsyCycles, err = cal.SimTLBCycles(mipsy)
	if err != nil {
		return d, "", err
	}
	d.MXSCycles, err = cal.SimTLBCycles(mxs)
	if err != nil {
		return d, "", err
	}
	text := fmt.Sprintf("TLB refill cost (measured by snbench TLB timer):\n"+
		"  FLASH hardware: %5.1f cycles (paper: 65)\n"+
		"  SimOS-Mipsy:    %5.1f cycles (paper: 25)\n"+
		"  SimOS-MXS:      %5.1f cycles (paper: 35)\n",
		d.HWCycles, d.MipsyCycles, d.MXSCycles)
	return d, text, nil
}

// BlockingFixData is the §3.1.2 application-fix experiment on hardware.
type BlockingFixData struct {
	FFTGain1, FFTGain4     float64 // fractional improvement from TLB blocking
	RadixGain1, RadixGain4 float64 // fractional improvement from radix 256->32
}

// ExperimentBlockingFixes measures the application-level TLB fixes on
// the hardware: FFT TLB blocking (paper: +14% on 1p, +16% on 4p) and
// radix 256 -> 32 (paper: +31% / +34%).
func (s *Session) ExperimentBlockingFixes() (BlockingFixData, string, error) {
	var d BlockingFixData
	gain := func(before, after core.Workload, procs int) (float64, error) {
		b, err := s.Ref.MeasureAt(before.Make(procs), procs)
		if err != nil {
			return 0, err
		}
		a, err := s.Ref.MeasureAt(after.Make(procs), procs)
		if err != nil {
			return 0, err
		}
		return 1 - float64(a.Mean)/float64(b.Mean), nil
	}
	var err error
	if d.FFTGain1, err = gain(s.Scale.FFTWorkload(false), s.Scale.FFTWorkload(true), 1); err != nil {
		return d, "", err
	}
	if d.FFTGain4, err = gain(s.Scale.FFTWorkload(false), s.Scale.FFTWorkload(true), 4); err != nil {
		return d, "", err
	}
	if d.RadixGain1, err = gain(s.Scale.RadixWorkload(256, false), s.Scale.RadixWorkload(32, false), 1); err != nil {
		return d, "", err
	}
	if d.RadixGain4, err = gain(s.Scale.RadixWorkload(256, false), s.Scale.RadixWorkload(32, false), 4); err != nil {
		return d, "", err
	}
	text := fmt.Sprintf("Application TLB fixes measured on hardware:\n"+
		"  FFT TLB blocking:   +%4.1f%% on 1p (paper 14%%), +%4.1f%% on 4p (paper 16%%)\n"+
		"  Radix 256 -> 32:    +%4.1f%% on 1p (paper 31%%), +%4.1f%% on 4p (paper 34%%)\n",
		100*d.FFTGain1, 100*d.FFTGain4, 100*d.RadixGain1, 100*d.RadixGain4)
	return d, text, nil
}

// MulDivData is the §3.1.3 instruction-latency experiment.
type MulDivData struct {
	RelWithout float64 // SimOS-Mipsy-225 relative time, unit latencies
	RelWith    float64 // same with multiply/divide latencies modeled
}

// ExperimentMulDiv reproduces the multiply/divide correction: adding 5
// cycles per multiply and 19 per divide moved SimOS-Mipsy-225's
// Radix-Sort prediction from 0.71 to ~1.02.
func (s *Session) ExperimentMulDiv() (MulDivData, string, error) {
	var d MulDivData
	w := s.Scale.RadixWorkload(32, false)
	hwMeas, err := s.Ref.MeasureAt(w.Make(1), 1)
	if err != nil {
		return d, "", err
	}
	base, err := s.override(core.SimOSMipsy(1, 225, true))
	if err != nil {
		return d, "", err
	}
	cal, err := s.Calibrate(base)
	if err != nil {
		return d, "", err
	}
	tuned := cal.Apply(base)
	res, err := s.runOne(tuned, w.Make(1))
	if err != nil {
		return d, "", err
	}
	d.RelWithout = float64(res.Exec) / float64(hwMeas.Mean)
	tuned.ModelInstrLatency = true
	res2, err := s.runOne(tuned, w.Make(1))
	if err != nil {
		return d, "", err
	}
	d.RelWith = float64(res2.Exec) / float64(hwMeas.Mean)
	text := fmt.Sprintf("Instruction-latency correction (Radix on SimOS-Mipsy 225MHz, tuned):\n"+
		"  unit latencies:          rel. time %.2f (paper 0.71)\n"+
		"  + 5-cycle mul, 19-cycle div: rel. time %.2f (paper 1.02)\n",
		d.RelWithout, d.RelWith)
	return d, text, nil
}

// defectWorkload maps a defect's workload hint to a concrete workload:
// hints are registry names, resolved at the session's scale with the
// registered defaults; hints naming no registered workload fall back
// to FFT.
func (s *Session) defectWorkload(hint string) core.Workload {
	if _, err := workload.Lookup(hint); err != nil {
		hint = "fft"
	}
	return s.Scale.Workload(hint, nil)
}

// ExperimentDefects quantifies the historical simulator errors: each
// defect is injected into its full-fidelity baseline and measured on a
// workload that exposes it. Relative < 1 means the defect makes the
// simulator optimistic.
func (s *Session) ExperimentDefects() (string, error) {
	var b strings.Builder
	b.WriteString("Defect injection (execution time relative to defect-free simulator):\n")
	for _, d := range core.KnownDefects() {
		w := s.defectWorkload(d.WorkloadHint)
		base, err := s.override(d.Baseline(1, true))
		if err != nil {
			return "", err
		}
		imp, err := core.MeasureDefect(d, base, w, 1)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "  %-26s [%-14s] on %-14s rel %.3f — %s\n",
			d.Name, d.Class, w.Name, imp.Relative, d.Description)
	}
	return b.String(), nil
}
