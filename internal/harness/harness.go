// Package harness turns the library into the paper's evaluation
// section: a named, runnable experiment for every table and figure
// (Tables 1–3, Figures 1–7) plus the in-text experiments (TLB-miss
// cost, application blocking fixes, the multiply/divide latency
// correction, and defect injection). Each experiment returns structured
// data plus a text rendering that mirrors the paper's presentation.
package harness

import (
	"context"
	"fmt"
	"strings"

	"flashsim/internal/core"
	"flashsim/internal/emitter"
	"flashsim/internal/machine"
	"flashsim/internal/runner"
	"flashsim/internal/workload"
)

// Scale selects experiment problem sizes.
type Scale int

const (
	// ScaleFull uses the 1/16-of-paper sizes documented in
	// EXPERIMENTS.md (minutes of wall time for the full suite).
	ScaleFull Scale = iota
	// ScaleQuick uses reduced sizes for tests and benchmarks
	// (seconds); trends hold but TLB effects shrink with footprint.
	ScaleQuick
)

// Workload resolves a registered workload at this scale (quick scale
// selects the registry's quick default sizes) with the given parameter
// overrides. Names and overrides are internal constants here, so a
// registry miss is a programming error and panics.
func (s Scale) Workload(name string, over map[string]any) core.Workload {
	def, err := workload.Lookup(name)
	if err != nil {
		panic(err)
	}
	vals, err := def.Resolve(over, s == ScaleQuick)
	if err != nil {
		panic(err)
	}
	return def.Workload(vals)
}

// FFTWorkload returns the FFT workload; tlbBlocked selects the paper's
// blocking fix.
func (s Scale) FFTWorkload(tlbBlocked bool) core.Workload {
	return s.Workload("fft", map[string]any{"tlb_blocked": tlbBlocked})
}

// RadixWorkload returns Radix-Sort with the given radix; unplaced
// disables data placement (Figure 7).
func (s Scale) RadixWorkload(radix int, unplaced bool) core.Workload {
	return s.Workload("radix", map[string]any{"radix": radix, "unplaced": unplaced})
}

// LUWorkload returns the blocked LU workload.
func (s Scale) LUWorkload() core.Workload {
	return s.Workload("lu", nil)
}

// OceanWorkload returns the Ocean workload.
func (s Scale) OceanWorkload() core.Workload {
	return s.Workload("ocean", nil)
}

// InitialApps returns the four SPLASH-2 workloads as originally tuned
// (FFT blocked for the cache, Radix-Sort with radix 256) — the Figure 1
// inputs.
func (s Scale) InitialApps() []core.Workload {
	return []core.Workload{
		s.FFTWorkload(false),
		s.RadixWorkload(256, false),
		s.LUWorkload(),
		s.OceanWorkload(),
	}
}

// FixedApps returns the workloads after the paper's TLB blocking fixes
// (FFT blocked for the TLB, radix reduced to 32) — Figures 2–4.
func (s Scale) FixedApps() []core.Workload {
	return []core.Workload{
		s.FFTWorkload(true),
		s.RadixWorkload(32, false),
		s.LUWorkload(),
		s.OceanWorkload(),
	}
}

// Session carries the shared state of one evaluation run: the hardware
// reference, the scale, the run-execution pool, and cached calibrations
// (calibrating a simulator is itself a set of machine runs, reused
// across figures).
type Session struct {
	Ref   *core.Reference
	Scale Scale

	// Override, when set, rewrites every *simulator* configuration an
	// experiment builds before it runs — the hook the CLIs use to route
	// -config/-set parameter overrides into the studies. It is applied
	// to untuned and pre-calibration configurations alike, and never to
	// the hardware reference: overriding a simulator knob changes a
	// prediction, the machine being predicted stays fixed. This is what
	// lets `-set os.tlb.handler_cycles=65` reproduce the paper's X1
	// correction with no code changes.
	Override func(machine.Config) (machine.Config, error)

	pool *runner.Pool
	cals map[string]core.Calibration
}

// NewSession builds a session with a 16-processor hardware reference at
// the scaled cache geometry, executing runs serially.
func NewSession(scale Scale) *Session { return NewSessionWithPool(scale, nil) }

// NewSessionWithPool is NewSession with every experiment's runs routed
// through pool (nil = serial). The pool is wired into the reference, so
// the Study, Calibrator, and TrendAnalyzer instances the figures build
// against it inherit it too; a pool with a store memoizes runs across
// figures (figure 3 reuses the reference runs figure 2 paid for).
func NewSessionWithPool(scale Scale, pool *runner.Pool) *Session {
	ref := core.NewReference(16, true)
	ref.Pool = pool
	if scale == ScaleQuick {
		ref.Repeats = 2
	}
	return &Session{Ref: ref, Scale: scale, pool: pool, cals: make(map[string]core.Calibration)}
}

// Pool returns the session's pool (nil when running serially).
func (s *Session) Pool() *runner.Pool { return s.pool }

// calibrator returns a fresh calibrator wired to the session's pool.
func (s *Session) calibrator() *core.Calibrator {
	cal := core.NewCalibrator(s.Ref)
	cal.Pool = s.pool
	return cal
}

// runOne executes a single machine run through the session's pool so it
// participates in memoization; with no pool it is exactly machine.Run.
func (s *Session) runOne(cfg machine.Config, prog emitter.Program) (machine.Result, error) {
	pool := s.pool
	if pool == nil {
		pool = runner.Serial()
	}
	results, err := pool.Run(context.Background(), []runner.Job{{Config: cfg, Prog: prog}})
	if err != nil {
		return machine.Result{}, err
	}
	return results[0], nil
}

// Calibrate returns the (cached) calibration for cfg.
func (s *Session) Calibrate(cfg machine.Config) (core.Calibration, error) {
	if cal, ok := s.cals[cfg.Name]; ok {
		return cal, nil
	}
	cal, err := s.calibrator().Calibrate(cfg)
	if err != nil {
		return cal, err
	}
	s.cals[cfg.Name] = cal
	return cal, nil
}

// override applies the session's parameter override to a simulator
// configuration (identity when unset).
func (s *Session) override(cfg machine.Config) (machine.Config, error) {
	if s.Override == nil {
		return cfg, nil
	}
	out, err := s.Override(cfg)
	if err != nil {
		return cfg, fmt.Errorf("overriding %s: %w", cfg.Name, err)
	}
	return out, nil
}

// UntunedConfigs returns the seven study simulators at the given size,
// with any session override applied.
func (s *Session) UntunedConfigs(procs int) ([]machine.Config, error) {
	var out []machine.Config
	for _, cfg := range core.StandardConfigs(procs, true) {
		cfg, err := s.override(cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, cfg)
	}
	return out, nil
}

// TunedConfigs returns the seven study simulators after closing the
// loop: each calibrated against the hardware reference. Overrides are
// applied before calibration — the tuning loop then corrects whatever
// configuration the user actually asked for.
func (s *Session) TunedConfigs(procs int) ([]machine.Config, error) {
	cfgs, err := s.UntunedConfigs(procs)
	if err != nil {
		return nil, err
	}
	var out []machine.Config
	for _, cfg := range cfgs {
		cal, err := s.Calibrate(cfg)
		if err != nil {
			return nil, fmt.Errorf("calibrating %s: %w", cfg.Name, err)
		}
		out = append(out, cal.Apply(cfg))
	}
	return out, nil
}

// TuningDiffs renders each study simulator's calibration as a registry
// diff — the untuned-to-tuned parameter changes, one block per
// configuration. This is the human-readable form of closing the loop:
// exactly which knobs moved, from what, to what.
func (s *Session) TuningDiffs(procs int) (string, error) {
	cfgs, err := s.UntunedConfigs(procs)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Simulator tuning (parameter corrections from closing the loop):\n")
	for _, cfg := range cfgs {
		cal, err := s.Calibrate(cfg)
		if err != nil {
			return "", fmt.Errorf("calibrating %s: %w", cfg.Name, err)
		}
		fmt.Fprintf(&b, "%s:\n%s", cfg.Name, cal.RenderDiff())
	}
	return b.String(), nil
}

// renderRelTable renders a Figures 1–4 style table: workloads down,
// configurations across, relative execution times in the cells.
func renderRelTable(title string, res core.CompareResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (relative execution time, 1.0 = FLASH hardware; %dp)\n", title, res.Procs)
	fmt.Fprintf(&b, "%-18s", "workload")
	for _, c := range res.Configs {
		b.WriteString(pad(shortName(c), 14))
	}
	b.WriteByte('\n')
	for _, w := range res.Order {
		fmt.Fprintf(&b, "%-18s", w)
		for _, e := range res.Rows[w] {
			b.WriteString(pad(fmt.Sprintf("%.2f", e.Relative), 14))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s + " "
	}
	return strings.Repeat(" ", w-len(s)) + s
}

// shortName compresses config names for table columns.
func shortName(s string) string {
	s = strings.ReplaceAll(s, "SimOS-Mipsy ", "SO-M")
	s = strings.ReplaceAll(s, "SimOS-MXS ", "SO-X")
	s = strings.ReplaceAll(s, "Solo-Mipsy ", "Solo")
	s = strings.ReplaceAll(s, " (tuned)", "*")
	s = strings.ReplaceAll(s, "MHz", "")
	return s
}

// renderCurves renders Figures 5–7 style speedup curves as text.
func renderCurves(title string, curves []core.Curve) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (speedup)\n", title)
	if len(curves) == 0 {
		return b.String()
	}
	fmt.Fprintf(&b, "%-28s", "procs")
	for _, p := range curves[0].Procs {
		fmt.Fprintf(&b, "%8d", p)
	}
	b.WriteByte('\n')
	for _, c := range curves {
		fmt.Fprintf(&b, "%-28s", c.Label)
		for _, s := range c.Speedup {
			fmt.Fprintf(&b, "%8.2f", s)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
