package harness_test

import (
	"strings"
	"testing"

	"bytes"

	"flashsim/internal/harness"
	"flashsim/internal/hw"
	"flashsim/internal/machine"
	"flashsim/internal/param"
	"flashsim/internal/proto"
)

func TestTable1Renders(t *testing.T) {
	out := harness.Table1()
	for _, want := range []string{"150 MHz", "hypercube", "dynamic pointer allocation", "140 ns"} {
		if !strings.Contains(out, want) {
			t.Errorf("table 1 missing %q", want)
		}
	}
}

func TestTable2Renders(t *testing.T) {
	full := harness.Table2(harness.ScaleFull)
	if !strings.Contains(full, "1M points") || !strings.Contains(full, "64K points") {
		t.Error("full-scale table 2 content")
	}
	quick := harness.Table2(harness.ScaleQuick)
	if !strings.Contains(quick, "quick") {
		t.Error("quick-scale table 2 content")
	}
}

func TestTable3ShapeQuick(t *testing.T) {
	s := harness.NewSession(harness.ScaleQuick)
	d, text, err := s.Table3()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "local-clean") {
		t.Error("missing protocol cases in render")
	}
	// Tuned FlashLite must match the hardware closely on every case.
	for _, pc := range d.Cases {
		rel := d.Tuned[pc] / d.HW[pc]
		if rel < 0.9 || rel > 1.1 {
			t.Errorf("%v tuned rel %.2f", pc, rel)
		}
	}
	// The Table 3 ordering must hold on the hardware column.
	if !(d.HW[proto.LocalClean] < d.HW[proto.RemoteClean]) {
		t.Error("local clean not fastest")
	}
	if !(d.HW[proto.RemoteDirtyRemote] > d.HW[proto.RemoteClean]) {
		t.Error("three-hop case not slowest remote")
	}
}

func TestFigure1ShapeQuick(t *testing.T) {
	s := harness.NewSession(harness.ScaleQuick)
	res, text, err := s.Figure1()
	if err != nil {
		t.Fatal(err)
	}
	if text == "" || len(res.Configs) != 7 {
		t.Fatalf("render/configs: %d configs", len(res.Configs))
	}
	// Paper shape: the simulators do not agree with the hardware; the
	// worst error is substantial.
	if res.MaxAbsError() < 0.15 {
		t.Errorf("initial comparison suspiciously accurate: max err %.2f", res.MaxAbsError())
	}
	// Faster Mipsy clocks must predict faster times for every app.
	for _, w := range res.Order {
		e150, _ := res.Entry(w, "SimOS-Mipsy 150MHz")
		e300, _ := res.Entry(w, "SimOS-Mipsy 300MHz")
		if e300.Relative >= e150.Relative {
			t.Errorf("%s: 300MHz (%.2f) not faster than 150MHz (%.2f)", w, e300.Relative, e150.Relative)
		}
	}
}

func TestExperimentTLBCostQuick(t *testing.T) {
	s := harness.NewSession(harness.ScaleQuick)
	d, text, err := s.ExperimentTLBCost()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "FLASH hardware") {
		t.Error("render")
	}
	if d.HWCycles < 55 || d.HWCycles > 75 {
		t.Errorf("hardware TLB cost %.1f, want ~65", d.HWCycles)
	}
	if d.MipsyCycles > d.MXSCycles || d.MXSCycles > d.HWCycles {
		t.Errorf("ordering: mipsy %.1f <= mxs %.1f <= hw %.1f violated",
			d.MipsyCycles, d.MXSCycles, d.HWCycles)
	}
}

func TestWorkloadFactories(t *testing.T) {
	s := harness.ScaleQuick
	for _, w := range append(s.InitialApps(), s.FixedApps()...) {
		prog := w.Make(2)
		if prog.Threads != 2 {
			t.Errorf("%s: threads %d", w.Name, prog.Threads)
		}
	}
}

// TestOverrideReproducesTLBCorrection is the paper's X1 fix as a pure
// parameter override: forcing os.tlb.handler_cycles=65 on every
// simulator makes the untuned models measure the hardware's TLB-refill
// cost, with no code changes.
func TestOverrideReproducesTLBCorrection(t *testing.T) {
	s := harness.NewSession(harness.ScaleQuick)
	s.Override = func(cfg machine.Config) (machine.Config, error) {
		if cfg.OS.TLBHandlerCycles == 0 {
			return cfg, nil // Solo keeps no TLB; nothing to correct
		}
		err := param.SetString(&cfg, "os.tlb.handler_cycles", "65")
		return cfg, err
	}
	d, _, err := s.ExperimentTLBCost()
	if err != nil {
		t.Fatal(err)
	}
	for name, got := range map[string]float64{"Mipsy": d.MipsyCycles, "MXS": d.MXSCycles} {
		if got < d.HWCycles-10 || got > d.HWCycles+10 {
			t.Errorf("%s with override measures %.1f cycles, hardware %.1f", name, got, d.HWCycles)
		}
	}

	// The override feeds the untuned study configs too.
	cfgs, err := s.UntunedConfigs(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range cfgs {
		if cfg.OS.TLBHandlerCycles != 0 && cfg.OS.TLBHandlerCycles != 65 {
			t.Errorf("%s: override not applied (tlb=%d)", cfg.Name, cfg.OS.TLBHandlerCycles)
		}
	}
}

// TestTuningDiffsRender checks that the registry-diff rendering names
// the corrected knobs by dotted path.
func TestTuningDiffsRender(t *testing.T) {
	s := harness.NewSession(harness.ScaleQuick)
	out, err := s.TuningDiffs(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"os.tlb.handler_cycles", "SimOS-Mipsy 150MHz:", "Solo-Mipsy"} {
		if !strings.Contains(out, want) {
			t.Errorf("tuning diff missing %q:\n%s", want, out)
		}
	}
}

func TestTunedConfigsCached(t *testing.T) {
	s := harness.NewSession(harness.ScaleQuick)
	a, err := s.TunedConfigs(1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.TunedConfigs(4) // second call reuses calibrations
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 7 || len(b) != 7 {
		t.Fatalf("config counts %d %d", len(a), len(b))
	}
	for i := range a {
		if !strings.HasSuffix(a[i].Name, "(tuned)") {
			t.Errorf("config %q not marked tuned", a[i].Name)
		}
		if b[i].Procs != 4 {
			t.Errorf("config %q procs %d", b[i].Name, b[i].Procs)
		}
	}
}

// TestOverrideNeverTouchesHardwareReference pins the asymmetry the
// Override doc promises: the hook rewrites every simulator
// configuration an experiment builds, but the machine being predicted
// stays fixed. A grossly wrong override must move the simulators'
// measurements while the hardware reference keeps both its canonical
// parameters and its measured numbers.
func TestOverrideNeverTouchesHardwareReference(t *testing.T) {
	baseline, _, err := harness.NewSession(harness.ScaleQuick).ExperimentTLBCost()
	if err != nil {
		t.Fatal(err)
	}

	s := harness.NewSession(harness.ScaleQuick)
	calls := 0
	s.Override = func(cfg machine.Config) (machine.Config, error) {
		calls++
		if cfg.OS.TLBHandlerCycles == 0 {
			return cfg, nil // Solo keeps no TLB
		}
		err := param.SetString(&cfg, "os.tlb.handler_cycles", "500")
		return cfg, err
	}

	d, _, err := s.ExperimentTLBCost()
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("override hook never invoked; the guarantee is vacuous")
	}
	if d.HWCycles != baseline.HWCycles {
		t.Errorf("hardware measurement moved under a simulator override: %.1f, baseline %.1f",
			d.HWCycles, baseline.HWCycles)
	}
	if d.MipsyCycles < 400 {
		t.Errorf("override did not reach the simulator: Mipsy measures %.1f cycles, want ~500", d.MipsyCycles)
	}

	// The reference's configuration bytes are untouched: still exactly
	// the stock hardware model at every size an experiment might ask.
	for _, procs := range []int{1, 4, 16} {
		got := param.Canonical(s.Ref.ConfigAt(procs))
		want := param.Canonical(hw.Config(procs, true))
		if !bytes.Equal(got, want) {
			t.Errorf("reference config at %dp differs from stock hardware model", procs)
		}
	}
}

func TestExperimentTraceReplayQuick(t *testing.T) {
	s := harness.NewSession(harness.ScaleQuick)
	d, text, err := s.ExperimentTraceReplay(2)
	if err != nil {
		t.Fatal(err)
	}
	if d.Procs != 2 {
		t.Errorf("procs %d", d.Procs)
	}
	// Three ladder rungs per fixed workload, in capture-first order.
	apps := s.Scale.FixedApps()
	if len(d.Rows) != 3*len(apps) {
		t.Fatalf("%d rows for %d workloads", len(d.Rows), len(apps))
	}
	for i, r := range d.Rows {
		switch i % 3 {
		case 0:
			// The capture rung is exact by construction: bit-identical
			// results, relative error exactly 1.
			if r.Rung != "mipsy" || r.Class != "exact" || !r.Identical || r.Relative != 1 {
				t.Errorf("capture rung row %+v", r)
			}
		default:
			// Detailed rungs diverge; that divergence is the omission-class
			// trace-driven error, and it stays within sanity bounds.
			if r.Class != "omission" || r.Identical {
				t.Errorf("detail rung row %+v", r)
			}
			if r.Relative <= 0.2 || r.Relative >= 5 {
				t.Errorf("%s/%s trace-driven error %.3f out of sanity range", r.Workload, r.Rung, r.Relative)
			}
		}
	}
	if !strings.Contains(text, "omission") || !strings.Contains(text, "exact") {
		t.Error("render missing taxonomy classes")
	}
}
