package harness

import (
	"fmt"
	"strings"

	"flashsim/internal/core"
	"flashsim/internal/machine"
)

// SamplingRow is one (workload, machine size) cell of the sampled-
// simulation error experiment: how far a sampled run of the schedule
// lands from the full-detail run it approximates.
type SamplingRow struct {
	Workload string
	Procs    int
	// Class is the taxonomy class of the sampling error: the functional
	// fast-forward deliberately omits the core timing model between
	// windows, so it is an omission-class error like Solo's missing OS.
	Class string
	// Relative is sampled ExecTicks / full-detail ExecTicks.
	Relative float64
	// DetailedFrac is the fraction of committed instructions that ran
	// on the detailed core (windows, including warmup).
	DetailedFrac float64
	// Windows is the total detailed-window count across nodes.
	Windows uint64
}

// SamplingData is the sampling experiment's structured result.
type SamplingData struct {
	// Schedule is the sampling configuration every sampled run used.
	Schedule machine.SamplingConfig
	Rows     []SamplingRow
}

// MaxRelErr returns the largest |Relative - 1| across rows.
func (d SamplingData) MaxRelErr() float64 {
	var max float64
	for _, r := range d.Rows {
		err := r.Relative - 1
		if err < 0 {
			err = -err
		}
		if err > max {
			max = err
		}
	}
	return max
}

// ExperimentSampling runs every fixed SPLASH-2 workload at each
// machine size both full-detail and under the sampling schedule
// (classic SimOS-Mipsy at both fidelities), then reports the sampling
// error per app × machine size as taxonomy rows — the same
// differential machinery as the trace experiment, with the fast-
// forward's omitted core model as the error source.
//
// The schedule comes from the session override when it enables one
// (-sample / -set sampling.*) and defaults to machine.DefaultSampling
// otherwise; the full-detail baseline always runs unsampled, so an
// override cannot silently sample both sides of the comparison.
func (s *Session) ExperimentSampling(sizes ...int) (SamplingData, string, error) {
	if len(sizes) == 0 {
		sizes = []int{2, 4}
	}
	var d SamplingData
	for _, procs := range sizes {
		base, err := s.override(core.SimOSMipsy(procs, 150, true))
		if err != nil {
			return d, "", err
		}
		sampled := base
		if !sampled.Sampling.Enabled {
			sampled.Sampling = machine.DefaultSampling()
		}
		sampled.Name += " sampled"
		base.Sampling = machine.SamplingConfig{}
		d.Schedule = sampled.Sampling

		for _, w := range s.Scale.FixedApps() {
			prog := w.Make(procs)
			full, err := s.runOne(base, prog)
			if err != nil {
				return d, "", fmt.Errorf("%s full-detail at %dp: %w", w.Name, procs, err)
			}
			samp, err := s.runOne(sampled, prog)
			if err != nil {
				return d, "", fmt.Errorf("%s sampled at %dp: %w", w.Name, procs, err)
			}
			if !samp.Sampled {
				return d, "", fmt.Errorf("%s at %dp: sampled config produced an unsampled result", w.Name, procs)
			}
			row := SamplingRow{
				Workload: w.Name,
				Procs:    procs,
				Class:    core.Omission.String(),
				Relative: float64(samp.Exec) / float64(full.Exec),
				Windows:  samp.Sampling.Windows,
			}
			if samp.Instructions > 0 {
				row.DetailedFrac = float64(samp.Sampling.DetailedInstrs) / float64(samp.Instructions)
			}
			d.Rows = append(d.Rows, row)
		}
	}

	var b strings.Builder
	sc := d.Schedule
	fmt.Fprintf(&b, "Sampled-simulation error (schedule %d/%d/%d", sc.Period, sc.Window, sc.Warmup)
	if sc.Phase > 0 {
		fmt.Fprintf(&b, " phase %d", sc.Phase)
	}
	if sc.ColdState {
		fmt.Fprintf(&b, ", cold")
	} else {
		fmt.Fprintf(&b, ", warm")
	}
	fmt.Fprintf(&b, "; sampled ExecTicks relative to full-detail):\n")
	fmt.Fprintf(&b, "  %-16s %5s %-10s %8s %9s %8s\n", "workload", "procs", "class", "rel", "detailed", "windows")
	for _, r := range d.Rows {
		fmt.Fprintf(&b, "  %-16s %5d %-10s %8.3f %8.1f%% %8d\n",
			r.Workload, r.Procs, r.Class, r.Relative, 100*r.DetailedFrac, r.Windows)
	}
	fmt.Fprintf(&b, "  max relative error: %.1f%%\n", 100*d.MaxRelErr())
	return d, b.String(), nil
}
