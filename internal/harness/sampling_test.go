package harness_test

import (
	"strings"
	"testing"

	"flashsim/internal/harness"
	"flashsim/internal/machine"
)

func TestExperimentSamplingQuick(t *testing.T) {
	s := harness.NewSession(harness.ScaleQuick)
	d, text, err := s.ExperimentSampling(2)
	if err != nil {
		t.Fatal(err)
	}
	apps := s.Scale.FixedApps()
	if len(d.Rows) != len(apps) {
		t.Fatalf("got %d rows, want one per workload (%d)", len(d.Rows), len(apps))
	}
	for _, r := range d.Rows {
		if r.Procs != 2 {
			t.Errorf("%s: procs = %d, want 2", r.Workload, r.Procs)
		}
		if r.Class != "omission" {
			t.Errorf("%s: class = %q, want omission", r.Workload, r.Class)
		}
		if r.Relative <= 0 || r.Relative > 1.5 {
			t.Errorf("%s: relative = %g, outside a plausible range", r.Workload, r.Relative)
		}
		if r.DetailedFrac <= 0 || r.DetailedFrac >= 1 {
			t.Errorf("%s: detailed fraction = %g, want in (0, 1)", r.Workload, r.DetailedFrac)
		}
		if r.Windows == 0 {
			t.Errorf("%s: no windows", r.Workload)
		}
	}
	if !d.Schedule.Enabled {
		t.Error("schedule not recorded")
	}
	if !strings.Contains(text, "omission") || !strings.Contains(text, "max relative error") {
		t.Errorf("render missing expected content:\n%s", text)
	}
}

// TestExperimentSamplingHonorsOverride pins that a session override
// enabling a custom schedule samples the sampled side only: the
// baseline stays full-detail, so the comparison stays meaningful.
func TestExperimentSamplingHonorsOverride(t *testing.T) {
	s := harness.NewSession(harness.ScaleQuick)
	s.Override = func(cfg machine.Config) (machine.Config, error) {
		cfg.Sampling.Enabled = true
		cfg.Sampling.Period = 50000
		cfg.Sampling.Window = 10000
		cfg.Sampling.Warmup = 1000
		return cfg, nil
	}
	d, _, err := s.ExperimentSampling(2)
	if err != nil {
		t.Fatal(err)
	}
	if d.Schedule.Period != 50000 || d.Schedule.Window != 10000 {
		t.Errorf("override schedule not used: %+v", d.Schedule)
	}
	for _, r := range d.Rows {
		if r.DetailedFrac <= 0.1 {
			t.Errorf("%s: detailed fraction %g too low for a 20%% window schedule", r.Workload, r.DetailedFrac)
		}
	}
}
