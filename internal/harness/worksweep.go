package harness

import (
	"fmt"
	"strings"

	"flashsim/internal/core"
	"flashsim/internal/machine"
)

// WorkloadTrendRow is one workload of the widened trend study: the
// hardware speedup curve over the processor sweep, and how far the
// untuned and tuned SimOS-Mipsy curves land from it.
type WorkloadTrendRow struct {
	Workload string
	Procs    []int
	Hardware []float64
	Untuned  core.TrendError
	Tuned    core.TrendError
}

// WorkloadSweepData is the structured result of the workload sweep: the
// tuned-vs-untuned trend study plus the sampling-error taxonomy rows,
// both across the widened machine matrix.
type WorkloadSweepData struct {
	Sizes    []int
	Trend    []WorkloadTrendRow
	Sampling SamplingData
}

// ExperimentWorkloadSweep reruns the paper's two scaling analyses over
// registry workloads at server-class machine sizes (default
// core.WideSizes, 32-128 nodes): the trend study — does the simulator
// predict the hardware's speedup curve, before and after closing the
// calibration loop — and the sampled-simulation error taxonomy. Each
// workload resolves through the registry at the session's scale with
// its registered defaults.
func (s *Session) ExperimentWorkloadSweep(names []string, sizes ...int) (WorkloadSweepData, string, error) {
	if len(sizes) == 0 {
		sizes = core.WideSizes
	}
	d := WorkloadSweepData{Sizes: sizes}
	sweep := append([]int{1}, sizes...)

	ta := core.NewTrendAnalyzer(s.Ref)
	ta.Pool = s.pool

	untuned, err := s.override(core.SimOSMipsy(1, 150, true))
	if err != nil {
		return d, "", err
	}
	cal, err := s.Calibrate(untuned)
	if err != nil {
		return d, "", fmt.Errorf("calibrating %s: %w", untuned.Name, err)
	}
	tuned := cal.Apply(untuned)
	tuned.Name += " tuned"

	for _, name := range names {
		w := s.Scale.Workload(name, nil)
		hw, err := ta.HardwareSpeedup(w, sweep)
		if err != nil {
			return d, "", err
		}
		uc, err := ta.SimSpeedup(untuned, w, sweep)
		if err != nil {
			return d, "", err
		}
		tc, err := ta.SimSpeedup(tuned, w, sweep)
		if err != nil {
			return d, "", err
		}
		d.Trend = append(d.Trend, WorkloadTrendRow{
			Workload: w.Name,
			Procs:    sweep,
			Hardware: hw.Speedup,
			Untuned:  core.CompareTrend(hw, uc),
			Tuned:    core.CompareTrend(hw, tc),
		})
	}

	// The sampling-error taxonomy across the same matrix: full-detail
	// vs. sampled SimOS-Mipsy per workload x machine size, the omission
	// class of the error taxonomy (the fast-forward omits the core
	// timing model between windows).
	for _, procs := range sizes {
		base, err := s.override(core.SimOSMipsy(procs, 150, true))
		if err != nil {
			return d, "", err
		}
		sampled := base
		if !sampled.Sampling.Enabled {
			sampled.Sampling = machine.DefaultSampling()
		}
		sampled.Name += " sampled"
		base.Sampling = machine.SamplingConfig{}
		d.Sampling.Schedule = sampled.Sampling

		for _, name := range names {
			w := s.Scale.Workload(name, nil)
			prog := w.Make(procs)
			full, err := s.runOne(base, prog)
			if err != nil {
				return d, "", fmt.Errorf("%s full-detail at %dp: %w", w.Name, procs, err)
			}
			samp, err := s.runOne(sampled, prog)
			if err != nil {
				return d, "", fmt.Errorf("%s sampled at %dp: %w", w.Name, procs, err)
			}
			row := SamplingRow{
				Workload: w.Name,
				Procs:    procs,
				Class:    core.Omission.String(),
				Relative: float64(samp.Exec) / float64(full.Exec),
				Windows:  samp.Sampling.Windows,
			}
			if samp.Instructions > 0 {
				row.DetailedFrac = float64(samp.Sampling.DetailedInstrs) / float64(samp.Instructions)
			}
			d.Sampling.Rows = append(d.Sampling.Rows, row)
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Workload sweep at %v nodes (trend error in predicted speedup vs. hardware):\n", sizes)
	fmt.Fprintf(&b, "  %-16s %-28s %8s %8s %8s %8s\n", "workload", "speedup@"+fmt.Sprint(sizes[len(sizes)-1]), "untuned", "(final)", "tuned", "(final)")
	for _, r := range d.Trend {
		fmt.Fprintf(&b, "  %-16s %-28.2f %7.1f%% %7.1f%% %7.1f%% %7.1f%%\n",
			r.Workload, r.Hardware[len(r.Hardware)-1],
			100*r.Untuned.MaxErr, 100*r.Untuned.FinalErr,
			100*r.Tuned.MaxErr, 100*r.Tuned.FinalErr)
	}
	sc := d.Sampling.Schedule
	fmt.Fprintf(&b, "Sampling error (schedule %d/%d/%d; sampled ExecTicks relative to full-detail):\n",
		sc.Period, sc.Window, sc.Warmup)
	fmt.Fprintf(&b, "  %-16s %5s %-10s %8s %9s %8s\n", "workload", "procs", "class", "rel", "detailed", "windows")
	for _, r := range d.Sampling.Rows {
		fmt.Fprintf(&b, "  %-16s %5d %-10s %8.3f %8.1f%% %8d\n",
			r.Workload, r.Procs, r.Class, r.Relative, 100*r.DetailedFrac, r.Windows)
	}
	fmt.Fprintf(&b, "  max relative error: %.1f%%\n", 100*d.Sampling.MaxRelErr())
	return d, b.String(), nil
}
