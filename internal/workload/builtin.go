package workload

import (
	"fmt"

	"flashsim/internal/apps"
	"flashsim/internal/emitter"
	"flashsim/internal/proto"
	"flashsim/internal/snbench"
)

// caseNames enumerates the protocol-case parameter values of
// snbench.dependent-loads.
func caseNames() []string {
	names := make([]string, 0, int(proto.NumCases))
	for c := proto.Case(0); c < proto.NumCases; c++ {
		names = append(names, c.String())
	}
	return names
}

// ParseCase resolves a protocol-case name validated by the registry's
// enum (so a miss here is a programming error).
func ParseCase(name string) proto.Case {
	for c := proto.Case(0); c < proto.NumCases; c++ {
		if c.String() == name {
			return c
		}
	}
	panic(fmt.Sprintf("workload: unvalidated protocol case %q", name))
}

func init() {
	Register(Definition{
		Name:        "fft",
		Description: "SPLASH-2 radix-sqrt(n) FFT with blocked transposes",
		Params: []Param{
			{Name: "logn", Kind: Int, Usage: "log2 of the point count", Default: 16, Quick: 12, Min: 4, Max: 26},
			{Name: "tlb_blocked", Kind: Bool, Usage: "block the transpose for the TLB (the paper's fix)", Default: true},
			{Name: "prefetch", Kind: Bool, Usage: "issue software prefetches", Default: true},
		},
		Label: func(v Values) string {
			if v.Bool("tlb_blocked") {
				return "FFT"
			}
			return "FFT(cache-blk)"
		},
		Build: func(v Values, procs int) emitter.Program {
			return apps.FFT(apps.FFTOpts{
				LogN:       v.Int("logn"),
				Procs:      procs,
				TLBBlocked: v.Bool("tlb_blocked"),
				Prefetch:   v.Bool("prefetch"),
			})
		},
	})

	Register(Definition{
		Name:        "radix",
		Description: "SPLASH-2 radix sort",
		Params: []Param{
			{Name: "keys", Kind: Int, Usage: "key count", Default: 256 << 10, Quick: 32 << 10, Min: 1 << 10, Max: 1 << 26},
			{Name: "radix", Kind: Int, Usage: "sort radix", Default: 256, Min: 2, Max: 4096},
			{Name: "unplaced", Kind: Bool, Usage: "home all data on node 0 (Figure 7)", Default: false},
			{Name: "verify", Kind: Bool, Usage: "emit a sortedness-check pass after the sort", Default: false},
		},
		Label: func(v Values) string {
			name := fmt.Sprintf("Radix(r=%d)", v.Int("radix"))
			if v.Bool("unplaced") {
				name += "-unplaced"
			}
			return name
		},
		Build: func(v Values, procs int) emitter.Program {
			return apps.Radix(apps.RadixOpts{
				Keys:     v.Int("keys"),
				Radix:    v.Int("radix"),
				Procs:    procs,
				Unplaced: v.Bool("unplaced"),
				Verify:   v.Bool("verify"),
			})
		},
	})

	Register(Definition{
		Name:        "lu",
		Description: "SPLASH-2 blocked dense LU factorization",
		Params: []Param{
			{Name: "n", Kind: Int, Usage: "matrix dimension", Default: 160, Quick: 96, Min: 16, Max: 4096},
			{Name: "prefetch", Kind: Bool, Usage: "issue software prefetches", Default: true},
		},
		Label: func(Values) string { return "LU" },
		Build: func(v Values, procs int) emitter.Program {
			return apps.LU(apps.LUOpts{
				N:        v.Int("n"),
				Procs:    procs,
				Prefetch: v.Bool("prefetch"),
			})
		},
	})

	Register(Definition{
		Name:        "ocean",
		Description: "SPLASH-2 Ocean multigrid current simulation",
		Params: []Param{
			{Name: "n", Kind: Int, Usage: "grid dimension", Default: 128, Quick: 64, Min: 16, Max: 2048},
			{Name: "grids", Kind: Int, Usage: "grid count", Default: 14, Quick: 8, Min: 3, Max: 64},
			{Name: "iters", Kind: Int, Usage: "time steps", Default: 4, Quick: 2, Min: 1, Max: 256},
			{Name: "prefetch", Kind: Bool, Usage: "issue software prefetches", Default: true},
		},
		Label: func(Values) string { return "Ocean" },
		Build: func(v Values, procs int) emitter.Program {
			return apps.Ocean(apps.OceanOpts{
				N:        v.Int("n"),
				Grids:    v.Int("grids"),
				Iters:    v.Int("iters"),
				Procs:    procs,
				Prefetch: v.Bool("prefetch"),
			})
		},
	})

	Register(Definition{
		Name:        "cachemgmt",
		Description: "cache-management stressor (flush/writeback-hint heavy)",
		Params: []Param{
			{Name: "lines", Kind: Int, Usage: "working-set cache lines", Default: 256, Quick: 64, Min: 8, Max: 1 << 20},
			{Name: "rounds", Kind: Int, Usage: "flush/reload rounds", Default: 8, Quick: 2, Min: 1, Max: 1024},
		},
		Label: func(Values) string { return "CacheMgmt" },
		Build: func(v Values, procs int) emitter.Program {
			return apps.CacheMgmt(apps.CacheMgmtOpts{
				Lines:  v.Int("lines"),
				Rounds: v.Int("rounds"),
				Procs:  procs,
			})
		},
	})

	Register(Definition{
		Name:        "barnes",
		Description: "Barnes-Hut octree n-body (lock-protected tree insert, multipole force walk)",
		Params: []Param{
			{Name: "bodies", Kind: Int, Usage: "particle count", Default: 1024, Quick: 256, Min: 16, Max: 1 << 20},
			{Name: "steps", Kind: Int, Usage: "time steps", Default: 4, Quick: 2, Min: 1, Max: 256},
			{Name: "theta_pct", Kind: Int, Usage: "opening angle threshold x100", Default: 50, Min: 1, Max: 200},
		},
		Label: func(Values) string { return "Barnes" },
		Build: func(v Values, procs int) emitter.Program {
			return apps.Barnes(apps.BarnesOpts{
				Bodies:   v.Int("bodies"),
				Steps:    v.Int("steps"),
				ThetaPct: v.Int("theta_pct"),
				Procs:    procs,
			})
		},
	})

	Register(Definition{
		Name:        "gups",
		Description: "GUPS-style random-update hotspot (read-xor-write at random table words)",
		Params: []Param{
			{Name: "log_table", Kind: Int, Usage: "log2 of the table length in words", Default: 18, Quick: 14, Min: 6, Max: 28},
			{Name: "updates", Kind: Int, Usage: "updates per thread", Default: 32768, Quick: 4096, Min: 64, Max: 1 << 26},
			{Name: "hot_pct", Kind: Int, Usage: "percent of updates hitting the hot 1/64 slice (0 = uniform)", Default: 25, Min: 0, Max: 100},
			{Name: "unplaced", Kind: Bool, Usage: "home the table on node 0 instead of first touch", Default: false},
		},
		Label: func(v Values) string {
			if v.Bool("unplaced") {
				return "GUPS-unplaced"
			}
			return "GUPS"
		},
		Build: func(v Values, procs int) emitter.Program {
			hot := v.Int("hot_pct")
			if hot == 0 {
				hot = -1 // norm() maps negative to an explicit 0
			}
			return apps.GUPS(apps.GUPSOpts{
				LogTable: v.Int("log_table"),
				Updates:  v.Int("updates"),
				HotPct:   hot,
				Procs:    procs,
				Unplaced: v.Bool("unplaced"),
			})
		},
	})

	Register(Definition{
		Name:        "oltp",
		Description: "OLTP-style pointer-chasing transaction mix (index walk, version chains, bucket locks)",
		Params: []Param{
			{Name: "txns", Kind: Int, Usage: "transactions per thread", Default: 1024, Quick: 192, Min: 8, Max: 1 << 24},
			{Name: "rows", Kind: Int, Usage: "table rows", Default: 32768, Quick: 4096, Min: 256, Max: 1 << 24},
			{Name: "ops", Kind: Int, Usage: "row operations per transaction", Default: 8, Min: 1, Max: 256},
			{Name: "read_pct", Kind: Int, Usage: "percent of operations that read (rest write under lock)", Default: 80, Min: 0, Max: 100},
			{Name: "skew_pct", Kind: Int, Usage: "percent of operations on the popular 1/64 keys", Default: 60, Min: 0, Max: 100},
		},
		Label: func(Values) string { return "OLTP" },
		Build: func(v Values, procs int) emitter.Program {
			read, skew := v.Int("read_pct"), v.Int("skew_pct")
			if read == 0 {
				read = -1
			}
			if skew == 0 {
				skew = -1
			}
			return apps.OLTP(apps.OLTPOpts{
				Txns:    v.Int("txns"),
				Rows:    v.Int("rows"),
				Ops:     v.Int("ops"),
				ReadPct: read,
				SkewPct: skew,
				Procs:   procs,
			})
		},
	})

	Register(Definition{
		Name:        "webserve",
		Description: "web-serving OS stressor (syscall batches, cold per-request pages, shared doc cache)",
		Params: []Param{
			{Name: "requests", Kind: Int, Usage: "requests per worker thread", Default: 192, Quick: 48, Min: 4, Max: 1 << 20},
			{Name: "pages_per_req", Kind: Int, Usage: "fresh heap pages per request", Default: 2, Min: 1, Max: 64},
			{Name: "syscalls_per_req", Kind: Int, Usage: "system calls per request", Default: 6, Min: 2, Max: 64},
			{Name: "docs", Kind: Int, Usage: "document-cache entries", Default: 32, Min: 1, Max: 1 << 16},
			{Name: "think_ops", Kind: Int, Usage: "user-mode integer ops per request", Default: 64, Min: 1, Max: 1 << 16},
		},
		Label: func(Values) string { return "WebServe" },
		Build: func(v Values, procs int) emitter.Program {
			return apps.WebServe(apps.WebServeOpts{
				Requests:       v.Int("requests"),
				PagesPerReq:    v.Int("pages_per_req"),
				SyscallsPerReq: v.Int("syscalls_per_req"),
				Docs:           v.Int("docs"),
				ThinkOps:       v.Int("think_ops"),
				Procs:          procs,
			})
		},
	})

	Register(Definition{
		Name:        "snbench.dependent-loads",
		Description: "calibration: dependent-load latency for one protocol case (4 procs, fixed)",
		Params: []Param{
			{Name: "case", Kind: String, Usage: "protocol case", Default: proto.RemoteClean.String(), Enum: caseNames()},
			{Name: "lines", Kind: Int, Usage: "chase length in cache lines", Default: snbench.ChaseLines, Min: 4, Max: 1 << 20},
		},
		Build: func(v Values, _ int) emitter.Program {
			return snbench.DependentLoads(ParseCase(v.Str("case")), v.Int("lines"))
		},
	})

	Register(Definition{
		Name:        "snbench.tlb-timer",
		Description: "calibration: TLB-miss handler cost timer (1 proc, fixed)",
		Params: []Param{
			{Name: "pages", Kind: Int, Usage: "pages chased in the miss phase", Default: 128, Min: 2, Max: 1 << 16},
			{Name: "fit_pages", Kind: Int, Usage: "pages chased in the hit phase", Default: 32, Min: 1, Max: 1 << 16},
			{Name: "rounds", Kind: Int, Usage: "chase rounds per phase", Default: 4, Min: 1, Max: 1024},
		},
		Build: func(v Values, _ int) emitter.Program {
			return snbench.TLBTimer(v.Int("pages"), v.Int("fit_pages"), v.Int("rounds"))
		},
	})

	Register(Definition{
		Name:        "snbench.restart",
		Description: "calibration: back-to-back independent-load throughput (1 proc, fixed)",
		Params: []Param{
			{Name: "lines", Kind: Int, Usage: "stream length in cache lines", Default: 1024, Min: 8, Max: 1 << 22},
		},
		Build: func(v Values, _ int) emitter.Program {
			return snbench.Restart(v.Int("lines"))
		},
	})
}
