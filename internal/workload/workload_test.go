package workload_test

import (
	"encoding/json"
	"fmt"
	"hash"
	"hash/fnv"
	"strings"
	"testing"

	"flashsim/internal/emitter"
	"flashsim/internal/isa"
	"flashsim/internal/vm"
	"flashsim/internal/workload"
)

// TestRegistryNames: the registry carries every workload the study
// needs — the five original apps, the four server-class generators,
// and the three calibration microbenchmarks.
func TestRegistryNames(t *testing.T) {
	want := []string{
		"barnes", "cachemgmt", "fft", "gups", "lu", "ocean", "oltp",
		"snbench.dependent-loads", "snbench.restart", "snbench.tlb-timer",
		"webserve",
	}
	got := workload.Names()
	for _, w := range want {
		found := false
		for _, g := range got {
			if g == w {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("registry is missing %q (have %v)", w, got)
		}
	}
	if len(got) < 9 {
		t.Fatalf("registry has %d workloads, want at least 9", len(got))
	}
}

// TestLookupErrorListsNames: a typo'd name comes back with the full
// registered list, so the error is self-correcting.
func TestLookupErrorListsNames(t *testing.T) {
	_, err := workload.Lookup("fff")
	if err == nil {
		t.Fatal("lookup of unknown name succeeded")
	}
	for _, name := range []string{"fft", "gups", "snbench.restart"} {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list %q", err, name)
		}
	}
	if _, err := workload.Lookup(""); err == nil || !strings.Contains(err.Error(), "missing") {
		t.Errorf("empty name error = %v, want a 'missing' error listing names", err)
	}
}

// TestResolveValidation exercises the schema checks: unknown
// parameters, type mismatches, bounds, enums, and the coercions the
// JSON and CLI front ends rely on.
func TestResolveValidation(t *testing.T) {
	def, err := workload.Lookup("gups")
	if err != nil {
		t.Fatal(err)
	}
	for name, raw := range map[string]map[string]any{
		"unknown param": {"logn": 12},
		"type mismatch": {"log_table": "twelve"},
		"bounds":        {"hot_pct": 150},
		"non-integral":  {"updates": 1.5},
	} {
		if _, err := def.Resolve(raw, false); err == nil {
			t.Errorf("%s: Resolve(%v) succeeded, want error", name, raw)
		}
	}
	// Coercions: JSON float64, CLI string, native int all land as int.
	v, err := def.Resolve(map[string]any{"log_table": float64(10), "updates": "128", "unplaced": "true"}, false)
	if err != nil {
		t.Fatal(err)
	}
	if v.Int("log_table") != 10 || v.Int("updates") != 128 || !v.Bool("unplaced") {
		t.Errorf("coerced values wrong: %v", v)
	}
	// Defaults fill the rest; quick selects the quick sizes.
	q, err := def.Resolve(nil, true)
	if err != nil {
		t.Fatal(err)
	}
	if q.Int("log_table") != 14 || q.Int("updates") != 4096 {
		t.Errorf("quick defaults = %d/%d, want 14/4096", q.Int("log_table"), q.Int("updates"))
	}

	dl, err := workload.Lookup("snbench.dependent-loads")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dl.Resolve(map[string]any{"case": "nope"}, false); err == nil {
		t.Error("bad enum value accepted")
	}
	if _, err := dl.Resolve(map[string]any{"case": "remote-clean"}, false); err != nil {
		t.Errorf("valid enum value rejected: %v", err)
	}
}

// TestEncodeSpecCanonical: the wire encoding is deterministic (sorted
// keys) and round-trips through a plain JSON decode.
func TestEncodeSpecCanonical(t *testing.T) {
	spec, err := workload.EncodeSpec("gups", map[string]any{"updates": 128, "log_table": 10})
	if err != nil {
		t.Fatal(err)
	}
	want := `{"name":"gups","log_table":10,"updates":128}`
	if string(spec) != want {
		t.Errorf("EncodeSpec = %s, want %s", spec, want)
	}
	var m map[string]any
	if err := json.Unmarshal(spec, &m); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
}

// drain collects every thread's instructions concurrently — emitter
// threads synchronize at real barriers, so sequential draining would
// deadlock on channel backpressure — and returns them per thread.
func drain(t *testing.T, prog emitter.Program, visit func(thread int, in isa.Instr)) {
	t.Helper()
	_, streams := prog.Launch()
	defer streams.Abort()
	done := make(chan error, len(streams.Readers))
	for i, r := range streams.Readers {
		i, r := i, r
		go func() {
			for {
				in, ok := r.Next()
				if !ok {
					done <- nil
					return
				}
				visit(i, in)
			}
		}()
	}
	for range streams.Readers {
		<-done
	}
	streams.Wait()
	if err := streams.Err(); err != nil {
		t.Fatal(err)
	}
}

// streamHash summarizes a launch: one FNV hash and instruction count
// per thread, over every field of every instruction.
func streamHash(t *testing.T, prog emitter.Program, procs int) ([]uint64, []uint64) {
	t.Helper()
	counts := make([]uint64, procs)
	sums := make([]hash.Hash64, procs)
	for i := range sums {
		sums[i] = fnv.New64a()
	}
	drain(t, prog, func(th int, in isa.Instr) {
		var b [25]byte
		b[0] = byte(in.Op)
		putU64(b[1:], in.Addr)
		putU32(b[9:], in.Size)
		putU32(b[13:], in.Dep1)
		putU32(b[17:], in.Dep2)
		putU32(b[21:], in.Aux)
		sums[th].Write(b[:])
		counts[th]++
	})
	hashes := make([]uint64, procs)
	for i := range sums {
		hashes[i] = sums[i].Sum64()
	}
	return hashes, counts
}

func putU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func putU32(b []byte, v uint32) {
	for i := 0; i < 4; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

// TestDeterministicStreams is the registry-wide determinism property:
// for fixed parameters and thread count, two launches of any
// registered workload emit bit-identical per-thread instruction
// streams. Replay fingerprints, memoization, and sharded execution all
// assume this.
func TestDeterministicStreams(t *testing.T) {
	for _, def := range workload.All() {
		def := def
		t.Run(def.Name, func(t *testing.T) {
			t.Parallel()
			vals, err := def.Resolve(nil, true)
			if err != nil {
				t.Fatal(err)
			}
			const procs = 4
			prog := def.Build(vals, procs)
			n := prog.Threads
			h1, c1 := streamHash(t, prog, n)
			h2, c2 := streamHash(t, def.Build(vals, procs), n)
			for i := 0; i < n; i++ {
				if c1[i] != c2[i] {
					t.Errorf("thread %d: %d instructions vs %d across launches", i, c1[i], c2[i])
				}
				if h1[i] != h2[i] {
					t.Errorf("thread %d: stream hash differs across launches", i)
				}
				if c1[i] == 0 {
					t.Errorf("thread %d emitted nothing", i)
				}
			}
		})
	}
}

// TestFirstTouchSpread: at server-class node counts, the generators
// that place their main data structure by first touch actually spread
// its pages across all nodes. For gups and oltp the spreading happens
// in the pre-BarrierStart initialization stripes (disjoint per thread,
// so cross-thread collection order is irrelevant); for webserve the
// heap arenas are per-thread for the whole run, so every heap touch
// attributes exactly.
func TestFirstTouchSpread(t *testing.T) {
	cases := []struct {
		name       string
		preBarrier bool           // collect only pre-BarrierStart touches
		over       map[string]any // quick defaults too small for 64 nodes
	}{
		// quick log_table 14 is only 32 pages; 16 gives 128, enough
		// for every node at both tested sizes to own at least one.
		{"gups", true, map[string]any{"log_table": 16}},
		{"oltp", true, nil},
		{"webserve", false, nil},
	}
	for _, procs := range []int{32, 64} {
		for _, tc := range cases {
			tc := tc
			t.Run(fmt.Sprintf("%s-%d", tc.name, procs), func(t *testing.T) {
				t.Parallel()
				def, err := workload.Lookup(tc.name)
				if err != nil {
					t.Fatal(err)
				}
				vals, err := def.Resolve(tc.over, true)
				if err != nil {
					t.Fatal(err)
				}
				prog := def.Build(vals, procs)
				space, streams := prog.Launch()
				defer streams.Abort()

				// touches[i] holds thread i's addresses into first-touch
				// regions, in program order per thread.
				touches := make([][]uint64, procs)
				done := make(chan int, procs)
				for i, r := range streams.Readers {
					i, r := i, r
					go func() {
						defer func() { done <- i }()
						collect := true
						for {
							in, ok := r.Next()
							if !ok {
								return
							}
							if tc.preBarrier && in.Op == isa.Barrier && in.Aux == emitter.BarrierStart {
								collect = false
							}
							if collect && (in.Op == isa.Load || in.Op == isa.Store) {
								touches[i] = append(touches[i], in.Addr)
							}
						}
					}()
				}
				for range streams.Readers {
					<-done
				}
				streams.Wait()
				if err := streams.Err(); err != nil {
					t.Fatal(err)
				}

				// Translate only addresses inside first-touch regions,
				// each on the node of the thread that touched it.
				var ftRegions []emitter.Region
				for _, r := range space.Regions() {
					if r.Place.Kind == emitter.PlaceFirstTouch {
						ftRegions = append(ftRegions, r)
					}
				}
				if len(ftRegions) == 0 {
					t.Fatalf("%s has no first-touch region", tc.name)
				}
				inFT := func(a uint64) bool {
					for _, r := range ftRegions {
						if r.Contains(a) {
							return true
						}
					}
					return false
				}
				pt := vm.NewPageTable(space, procs, vm.NewSequentialAllocator(procs, 1))
				nodes := make(map[int32]bool)
				for th, addrs := range touches {
					for _, a := range addrs {
						if !inFT(a) {
							continue
						}
						pp, _ := pt.Translate(a, th) // bool = cold fault, not failure
						nodes[pp.Node] = true
					}
				}
				if len(nodes) != procs {
					t.Errorf("first-touch pages landed on %d/%d nodes", len(nodes), procs)
				}
			})
		}
	}
}
