// Package workload is the central workload registry: every program the
// simulator can run — the SPLASH-2-style kernels, the server-class
// generators, and the calibration microbenchmarks — is registered here
// by name with a typed, validated parameter schema and a generator
// constructor. The CLIs (-app/-p), the harness experiments, and the
// flashd {workload:{...}} job specs all resolve workloads through this
// one table, so a single registration makes a workload reachable from
// every execution mode: exec, sampled, sharded, trace capture/replay,
// and served.
package workload

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"flashsim/internal/core"
	"flashsim/internal/emitter"
)

// Kind is a parameter's type.
type Kind uint8

const (
	Int Kind = iota
	Bool
	String
)

func (k Kind) String() string {
	switch k {
	case Int:
		return "int"
	case Bool:
		return "bool"
	case String:
		return "string"
	}
	return "?"
}

// Param describes one typed parameter of a workload. Parameter names
// double as the JSON keys of flashd workload specs and the -p key=value
// keys of the CLIs.
type Param struct {
	Name  string
	Kind  Kind
	Usage string
	// Default is the full-scale default; Quick, when non-nil, replaces
	// it at quick scale (tests, smoke runs, CI).
	Default any
	Quick   any
	// Min/Max bound Int parameters (enforced when Max > Min).
	Min, Max int
	// Enum restricts String parameters to these values when non-empty.
	Enum []string
}

// Values is a resolved, validated parameter assignment: every parameter
// of the definition present, typed int/bool/string.
type Values map[string]any

// Int returns an int parameter (panics on a name not in the schema —
// a registry bug, not an input error).
func (v Values) Int(name string) int {
	i, ok := v[name].(int)
	if !ok {
		panic(fmt.Sprintf("workload: no int value %q", name))
	}
	return i
}

// Bool returns a bool parameter.
func (v Values) Bool(name string) bool {
	b, ok := v[name].(bool)
	if !ok {
		panic(fmt.Sprintf("workload: no bool value %q", name))
	}
	return b
}

// Str returns a string parameter.
func (v Values) Str(name string) string {
	s, ok := v[name].(string)
	if !ok {
		panic(fmt.Sprintf("workload: no string value %q", name))
	}
	return s
}

// Definition is one registered workload.
type Definition struct {
	// Name is the registry key ("fft", "gups", "snbench.restart", ...).
	Name string
	// Description is the one-line summary shown by -list-workloads.
	Description string
	// Params is the parameter schema, in display order.
	Params []Param
	// Build constructs the program for a complete, validated Values at
	// the given thread count. (Microbenchmarks with intrinsic thread
	// counts may ignore procs.)
	Build func(v Values, procs int) emitter.Program
	// Label renders the study display name ("FFT(cache-blk)",
	// "Radix(r=32)-unplaced"); nil falls back to Name.
	Label func(v Values) string
}

// param looks up a schema entry by name.
func (d *Definition) param(name string) (Param, bool) {
	for _, p := range d.Params {
		if p.Name == name {
			return p, true
		}
	}
	return Param{}, false
}

// registry is the global name -> definition table, populated by
// Register calls from init functions.
var registry = map[string]*Definition{}

// Register adds a definition; duplicate names are a programming error.
func Register(d Definition) {
	if d.Name == "" || d.Build == nil {
		panic("workload: Register needs a name and a builder")
	}
	if _, dup := registry[d.Name]; dup {
		panic("workload: duplicate registration of " + d.Name)
	}
	registry[d.Name] = &d
}

// Names returns every registered workload name, sorted.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// All returns every definition in name order.
func All() []*Definition {
	defs := make([]*Definition, 0, len(registry))
	for _, n := range Names() {
		defs = append(defs, registry[n])
	}
	return defs
}

// Lookup resolves a workload name. The error on a miss lists every
// registered name, so a typo on a CLI flag or in a flashd job spec is
// self-correcting.
func Lookup(name string) (*Definition, error) {
	if name == "" {
		return nil, fmt.Errorf("workload name missing (registered: %s)", strings.Join(Names(), ", "))
	}
	d, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("unknown workload %q (registered: %s)", name, strings.Join(Names(), ", "))
	}
	return d, nil
}

// Describe renders the registry as the -list-workloads text: one
// unindented line per workload followed by its parameter schema.
func Describe() string {
	var b strings.Builder
	for _, d := range All() {
		fmt.Fprintf(&b, "%s\n    %s\n", d.Name, d.Description)
		for _, p := range d.Params {
			def := fmt.Sprintf("%v", p.Default)
			if p.Quick != nil {
				def += fmt.Sprintf(", quick %v", p.Quick)
			}
			fmt.Fprintf(&b, "    %-16s %-6s %s (default %s)\n", p.Name, p.Kind, p.Usage, def)
		}
	}
	return b.String()
}

// Resolve validates a raw parameter assignment against the schema and
// fills the remaining parameters with defaults (Quick defaults when
// quick is set). Raw values may be native Go values, JSON-decoded
// values (float64 numbers), or strings (CLI -p key=value); unknown
// names, type mismatches, bounds violations, and enum misses all fail
// with the accepted parameter list in the message.
func (d *Definition) Resolve(raw map[string]any, quick bool) (Values, error) {
	vals := make(Values, len(d.Params))
	for name, rv := range raw {
		p, ok := d.param(name)
		if !ok {
			return nil, fmt.Errorf("workload %s: unknown parameter %q (accepts: %s)",
				d.Name, name, strings.Join(d.paramNames(), ", "))
		}
		v, err := coerce(p, rv)
		if err != nil {
			return nil, fmt.Errorf("workload %s: parameter %s: %w", d.Name, name, err)
		}
		vals[name] = v
	}
	for _, p := range d.Params {
		if _, ok := vals[p.Name]; ok {
			continue
		}
		def := p.Default
		if quick && p.Quick != nil {
			def = p.Quick
		}
		v, err := coerce(p, def)
		if err != nil {
			panic(fmt.Sprintf("workload %s: bad default for %s: %v", d.Name, p.Name, err))
		}
		vals[p.Name] = v
	}
	return vals, nil
}

func (d *Definition) paramNames() []string {
	names := make([]string, len(d.Params))
	for i, p := range d.Params {
		names[i] = p.Name
	}
	return names
}

// coerce converts a raw value to the parameter's type and checks its
// bounds.
func coerce(p Param, rv any) (any, error) {
	switch p.Kind {
	case Int:
		var i int
		switch x := rv.(type) {
		case int:
			i = x
		case int64:
			i = int(x)
		case uint64:
			i = int(x)
		case float64:
			if x != float64(int(x)) {
				return nil, fmt.Errorf("want an integer, got %v", x)
			}
			i = int(x)
		case json.Number:
			n, err := x.Int64()
			if err != nil {
				return nil, fmt.Errorf("want an integer, got %v", x)
			}
			i = int(n)
		case string:
			n, err := strconv.Atoi(x)
			if err != nil {
				return nil, fmt.Errorf("want an integer, got %q", x)
			}
			i = n
		default:
			return nil, fmt.Errorf("want an integer, got %T", rv)
		}
		if p.Max > p.Min && (i < p.Min || i > p.Max) {
			return nil, fmt.Errorf("%d out of range [%d, %d]", i, p.Min, p.Max)
		}
		return i, nil
	case Bool:
		switch x := rv.(type) {
		case bool:
			return x, nil
		case string:
			b, err := strconv.ParseBool(x)
			if err != nil {
				return nil, fmt.Errorf("want a bool, got %q", x)
			}
			return b, nil
		default:
			return nil, fmt.Errorf("want a bool, got %T", rv)
		}
	case String:
		s, ok := rv.(string)
		if !ok {
			return nil, fmt.Errorf("want a string, got %T", rv)
		}
		if len(p.Enum) > 0 {
			for _, e := range p.Enum {
				if s == e {
					return s, nil
				}
			}
			return nil, fmt.Errorf("%q is not one of %s", s, strings.Join(p.Enum, ", "))
		}
		return s, nil
	}
	return nil, fmt.Errorf("unhandled kind %v", p.Kind)
}

// DisplayName renders the study label for a resolved assignment.
func (d *Definition) DisplayName(v Values) string {
	if d.Label != nil {
		return d.Label(v)
	}
	return d.Name
}

// Workload adapts a resolved definition to the core.Workload shape the
// Reference/Study/TrendAnalyzer machinery consumes.
func (d *Definition) Workload(v Values) core.Workload {
	return core.Workload{
		Name: d.DisplayName(v),
		Make: func(procs int) emitter.Program { return d.Build(v, procs) },
	}
}

// ParseAssignments parses CLI key=value pairs into a raw map for
// Resolve (values stay strings; Resolve coerces per schema).
func ParseAssignments(pairs []string) (map[string]any, error) {
	if len(pairs) == 0 {
		return nil, nil
	}
	raw := make(map[string]any, len(pairs))
	for _, kv := range pairs {
		k, v, ok := strings.Cut(kv, "=")
		if !ok || k == "" {
			return nil, fmt.Errorf("workload parameter %q: want key=value", kv)
		}
		raw[k] = v
	}
	return raw, nil
}

// EncodeSpec renders a workload selection as the canonical JSON object
// of the flashd job specs and trace-container source metadata:
// {"name": ..., <param>: <value>, ...} with parameters sorted by name.
func EncodeSpec(name string, params map[string]any) (json.RawMessage, error) {
	var b strings.Builder
	b.WriteString(`{"name":`)
	nb, err := json.Marshal(name)
	if err != nil {
		return nil, err
	}
	b.Write(nb)
	keys := make([]string, 0, len(params))
	for k := range params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		kb, err := json.Marshal(k)
		if err != nil {
			return nil, err
		}
		vb, err := json.Marshal(params[k])
		if err != nil {
			return nil, err
		}
		b.WriteByte(',')
		b.Write(kb)
		b.WriteByte(':')
		b.Write(vb)
	}
	b.WriteByte('}')
	return json.RawMessage(b.String()), nil
}
