package isa

import (
	"bytes"
	"testing"
)

// FuzzISARoundTrip feeds arbitrary bytes to the decoder and pins three
// properties: DecodeInstr never panics; everything it accepts
// re-encodes to exactly the bytes it consumed (the codec is bijective);
// and a second decode of the re-encoding yields the identical Instr.
func FuzzISARoundTrip(f *testing.F) {
	f.Add(EncodeStream([]Instr{
		{Op: Load, Addr: 0x7f001000, Size: 8, Dep1: 2},
		{Op: IntALU, Dep1: 1, Dep2: 4},
		{Op: Barrier, Aux: 24},
	}))
	f.Add([]byte{byte(Load), flagAddr, 0x81, 0x00}) // overlong varint
	f.Add([]byte{byte(NumOps), 0x00})               // bad opcode
	f.Add([]byte{byte(Nop), 0xff})                  // unknown flags
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		rest := data
		for len(rest) > 0 {
			in, n, err := DecodeInstr(rest)
			if err != nil {
				return // rejection is fine; panicking or misdecoding is not
			}
			if n <= 0 || n > len(rest) {
				t.Fatalf("decode consumed %d of %d bytes", n, len(rest))
			}
			enc := AppendInstr(nil, in)
			if !bytes.Equal(enc, rest[:n]) {
				t.Fatalf("re-encode differs from input:\nin  % x\nout % x (instr %v)", rest[:n], enc, in)
			}
			back, m, err := DecodeInstr(enc)
			if err != nil || m != n || back != in {
				t.Fatalf("second decode disagrees: %v/%d/%v vs %v/%d", back, m, err, in, n)
			}
			rest = rest[n:]
		}
	})
}
