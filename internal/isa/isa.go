// Package isa defines the synthetic instruction set that workloads are
// expressed in and that every processor model consumes.
//
// The study does not interpret real MIPS binaries; instead the SPLASH-2
// kernels are real Go implementations of the algorithms, instrumented so
// that every load, store, and arithmetic operation is emitted as an
// Instr with true data dependences (see internal/emitter). This is the
// "same binary on every platform" requirement of the paper recast for a
// pure-software reproduction: the identical instruction stream is fed to
// Mipsy, MXS, and the hardware reference model.
package isa

import "fmt"

// Op is an instruction kind. The set covers the operations whose timing
// the paper found to matter: integer ALU vs. high-latency integer
// multiply/divide, floating point add/multiply/divide, memory operations
// (including prefetch and the MIPS CACHE op whose mis-modeling was one
// of the MXS bugs), branches, pipeline-flushing coprocessor-0 ops (the
// reason TLB handlers cost 65 cycles on the R10000), system calls, and
// semantic synchronization.
type Op uint8

const (
	// Nop burns an issue slot.
	Nop Op = iota
	// IntALU is a 1-cycle integer operation (add, shift, logic, compare).
	IntALU
	// IntMul is an integer multiply (5 cycles on the R10000).
	IntMul
	// IntDiv is an integer divide (19 cycles on the R10000).
	IntDiv
	// FPAdd is a floating-point add/subtract (2 cycles).
	FPAdd
	// FPMul is a floating-point multiply (2 cycles).
	FPMul
	// FPDiv is a floating-point divide (19 cycles).
	FPDiv
	// Load reads Size bytes at Addr.
	Load
	// Store writes Size bytes at Addr.
	Store
	// Prefetch is a non-binding hint to fetch the line at Addr.
	Prefetch
	// Branch is a conditional branch (subject to prediction in MXS).
	Branch
	// CacheOp is the MIPS CACHE instruction (hit-writeback-invalidate
	// etc.); its mis-modeling was a documented MXS performance bug.
	CacheOp
	// Cop0 is a coprocessor-0 operation that flushes the pipeline
	// (TLB write, status register manipulation). These dominate the
	// cost of the R10000 TLB refill handler.
	Cop0
	// Syscall enters the operating system (emulated by a backdoor in
	// Solo, costed by the OS model in SimOS).
	Syscall
	// Lock acquires the lock identified by Aux.
	Lock
	// Unlock releases the lock identified by Aux.
	Unlock
	// Barrier joins the barrier identified by Aux; all participants
	// must arrive before any proceeds.
	Barrier
	// NumOps is the number of instruction kinds.
	NumOps
)

var opNames = [NumOps]string{
	"nop", "alu", "mul", "div", "fadd", "fmul", "fdiv",
	"load", "store", "pref", "br", "cache", "cop0", "syscall",
	"lock", "unlock", "barrier",
}

// String returns the mnemonic for the op.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// IsMem reports whether the op references memory through the data cache.
func (o Op) IsMem() bool {
	return o == Load || o == Store || o == Prefetch || o == CacheOp
}

// IsSync reports whether the op is a semantic synchronization operation.
func (o Op) IsSync() bool { return o == Lock || o == Unlock || o == Barrier }

// Instr is one instruction of the synthetic ISA.
//
// Dependences are encoded as backward distances: Dep1/Dep2 == k means
// "this instruction consumes the value produced by the instruction k
// positions earlier in this thread's stream" (0 means no dependence).
// Distances rather than register names keep the stream self-contained
// for the out-of-order models.
type Instr struct {
	Op   Op
	Addr uint64 // virtual address for memory ops
	Size uint32 // access size in bytes for memory ops
	Dep1 uint32 // backward distance to first source producer (0 = none)
	Dep2 uint32 // backward distance to second source producer (0 = none)
	Aux  uint32 // lock/barrier id, CACHE sub-op, or syscall number
}

// String renders the instruction for debugging.
func (in Instr) String() string {
	switch {
	case in.Op.IsMem():
		return fmt.Sprintf("%s 0x%x/%d [d1=%d d2=%d]", in.Op, in.Addr, in.Size, in.Dep1, in.Dep2)
	case in.Op.IsSync():
		return fmt.Sprintf("%s #%d", in.Op, in.Aux)
	default:
		return fmt.Sprintf("%s [d1=%d d2=%d]", in.Op, in.Dep1, in.Dep2)
	}
}

// Latency describes the execution latency and issue constraints of an op
// on a particular processor implementation.
type Latency struct {
	// Cycles is the execution latency in processor cycles.
	Cycles uint32
	// Unit is the functional unit class the op issues to.
	Unit Unit
	// FlushesPipe reports whether completing the op drains the
	// pipeline (coprocessor-0 ops on the R10000).
	FlushesPipe bool
}

// Unit is a functional-unit class, used by MXS-style models to enforce
// structural hazards.
type Unit uint8

const (
	// UnitNone needs no functional unit (sync ops, nop).
	UnitNone Unit = iota
	// UnitALU is one of the two integer ALUs.
	UnitALU
	// UnitMulDiv is the (unpipelined) integer multiply/divide unit.
	UnitMulDiv
	// UnitFPAdd is the floating-point adder.
	UnitFPAdd
	// UnitFPMul is the floating-point multiplier (also hosts divide).
	UnitFPMul
	// UnitLS is the load/store (address-generation) unit.
	UnitLS
	// NumUnits is the number of functional-unit classes.
	NumUnits
)

var unitNames = [NumUnits]string{"none", "alu", "muldiv", "fpadd", "fpmul", "ls"}

// String returns the unit class name.
func (u Unit) String() string {
	if int(u) < len(unitNames) {
		return unitNames[u]
	}
	return fmt.Sprintf("unit(%d)", uint8(u))
}

// LatencyTable maps ops to latencies for one processor implementation.
type LatencyTable [NumOps]Latency

// R10000Latencies returns the latency table of the real MIPS R10000 as
// configured in FLASH. These are the numbers the paper quotes when
// correcting Mipsy (5-cycle multiply, 19-cycle divide) and are used
// verbatim by the hardware reference model and by tuned MXS.
func R10000Latencies() LatencyTable {
	var t LatencyTable
	t[Nop] = Latency{Cycles: 1, Unit: UnitALU}
	t[IntALU] = Latency{Cycles: 1, Unit: UnitALU}
	t[IntMul] = Latency{Cycles: 5, Unit: UnitMulDiv}
	t[IntDiv] = Latency{Cycles: 19, Unit: UnitMulDiv}
	t[FPAdd] = Latency{Cycles: 2, Unit: UnitFPAdd}
	t[FPMul] = Latency{Cycles: 2, Unit: UnitFPMul}
	t[FPDiv] = Latency{Cycles: 19, Unit: UnitFPMul}
	t[Load] = Latency{Cycles: 2, Unit: UnitLS}
	t[Store] = Latency{Cycles: 1, Unit: UnitLS}
	t[Prefetch] = Latency{Cycles: 1, Unit: UnitLS}
	t[Branch] = Latency{Cycles: 1, Unit: UnitALU}
	t[CacheOp] = Latency{Cycles: 1, Unit: UnitLS}
	t[Cop0] = Latency{Cycles: 3, Unit: UnitALU, FlushesPipe: true}
	t[Syscall] = Latency{Cycles: 1, Unit: UnitNone}
	t[Lock] = Latency{Cycles: 1, Unit: UnitNone}
	t[Unlock] = Latency{Cycles: 1, Unit: UnitNone}
	t[Barrier] = Latency{Cycles: 1, Unit: UnitNone}
	return t
}

// UnitLatencies returns a degenerate table in which every op takes one
// cycle. This is Mipsy's model: "pipeline effects and functional unit
// latencies are not simulated, so the Mipsy processor executes one
// instruction per cycle in the absence of memory stalls."
func UnitLatencies() LatencyTable {
	var t LatencyTable
	for op := Op(0); op < NumOps; op++ {
		t[op] = Latency{Cycles: 1, Unit: UnitALU}
	}
	t[Load].Unit = UnitLS
	t[Store].Unit = UnitLS
	t[Prefetch].Unit = UnitLS
	return t
}
